package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xst/internal/xlang"
)

func TestRunScript(t *testing.T) {
	dir := t.TempDir()
	script := filepath.Join(dir, "demo.xst")
	src := `# demo script
f := {<a,x>, <b,y>}
f[{<a>}]
card(f)
`
	if err := os.WriteFile(script, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	env := xlang.NewEnv()
	if err := runScript(env, script); err != nil {
		t.Fatal(err)
	}
	// The script's binding persists in the environment.
	if _, ok := env.Lookup("f"); !ok {
		t.Fatal("script binding lost")
	}
}

func TestRunScriptErrors(t *testing.T) {
	dir := t.TempDir()
	script := filepath.Join(dir, "bad.xst")
	os.WriteFile(script, []byte("ok := {1}\n}{broken\n"), 0o644)
	err := runScript(xlang.NewEnv(), script)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %v must carry line number", err)
	}
	if err := runScript(xlang.NewEnv(), filepath.Join(dir, "missing.xst")); err == nil {
		t.Fatal("missing script must fail")
	}
}

func TestEvalLine(t *testing.T) {
	env := xlang.NewEnv()
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	if err := evalLine(env, "x := {1,2}", null); err != nil {
		t.Fatal(err)
	}
	if err := evalLine(env, "}{", null); err == nil {
		t.Fatal("bad expression must error")
	}
}
