// Command xst is a read-eval-print loop for the extended set theory
// expression language (see internal/xlang): set literals with scoped
// members, tuple sugar, the boolean operations, image brackets and the
// full XST builtin library.
//
// Usage:
//
//	xst                  # interactive REPL
//	xst -e '{1,2}+{3}'   # evaluate one expression and exit
//	xst script.xst       # evaluate a file, one statement per line
//
// REPL commands: .help (builtins), .vars (bindings), .quit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"xst/internal/catalog"
	"xst/internal/store"
	"xst/internal/xlang"
)

func main() {
	// Exit status flows out of run so deferred cleanup (closing the
	// database) runs on every path; os.Exit here would skip it.
	os.Exit(run())
}

func run() int {
	expr := flag.String("e", "", "evaluate one expression and exit")
	dbPath := flag.String("db", "", "open a database file and bind its tables as variables")
	flag.Parse()

	env := xlang.NewEnv()
	var db *catalog.Database
	if *dbPath != "" {
		pager, err := store.OpenFilePager(*dbPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xst:", err)
			return 1
		}
		db, err = catalog.Open(pager, 256)
		if err != nil {
			pager.Close()
			fmt.Fprintln(os.Stderr, "xst:", err)
			return 1
		}
		if err := db.BindAll(env); err != nil {
			db.Close()
			fmt.Fprintln(os.Stderr, "xst:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "bound tables: %v\n", db.Names())
	}
	status := 0
	switch {
	case *expr != "":
		if err := evalLine(env, *expr, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "xst:", err)
			status = 1
		}
	case flag.NArg() > 0:
		if err := runScript(env, flag.Arg(0)); err != nil {
			fmt.Fprintln(os.Stderr, "xst:", err)
			status = 1
		}
	default:
		repl(env, db)
	}
	if db != nil {
		if err := db.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "xst: closing database:", err)
			status = 1
		}
	}
	return status
}

func evalLine(env *xlang.Env, line string, out *os.File) error {
	v, err := xlang.Eval(env, line)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, v)
	return nil
}

func runScript(env *xlang.Env, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := evalLine(env, line, os.Stdout); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	return sc.Err()
}

func repl(env *xlang.Env, db *catalog.Database) {
	fmt.Println("xst — extended set theory calculator (.help for builtins, .quit to exit)")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("xst> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == ".quit" || line == ".exit":
			return
		case line == ".tables":
			if db == nil {
				fmt.Println("no database open (use -db)")
				continue
			}
			for _, n := range db.Names() {
				t, _ := db.Table(n)
				fmt.Printf("  %-16s %6d rows  (%s)\n", n, t.Count(), strings.Join(t.Schema().Cols, ", "))
			}
		case line == ".help":
			for _, b := range xlang.Builtins() {
				fmt.Println(" ", b)
			}
			fmt.Println("  operators: + union, & intersect, ~ diff, = equal, <= subset")
			fmt.Println("  images:    R[A]  or  R[A; sigma1, sigma2]")
			fmt.Println("  binding:   name := expr")
		case line == ".vars":
			names := env.Names()
			sort.Strings(names)
			for _, n := range names {
				v, _ := env.Lookup(n)
				fmt.Printf("  %s = %v\n", n, v)
			}
		default:
			if err := evalLine(env, line, os.Stdout); err != nil {
				fmt.Println("error:", err)
			}
		}
	}
}
