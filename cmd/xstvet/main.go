// Command xstvet is the repository's invariant checker: a multichecker
// driver for the five internal/lint analyzers (setmutate, ctxloop,
// valueeq, lockheld, atomicmix) that enforce the algebra's value
// semantics and the server's cancellation and lock discipline.
//
// Usage:
//
//	go run ./cmd/xstvet ./...          # report violations, exit 1 if any
//	go run ./cmd/xstvet -fix ./...     # additionally apply safe rewrites
//	go run ./cmd/xstvet -list          # print the analyzers and exit
//
// Intentional violations are waived in source with
// //lint:ignore <analyzer> <reason> on the same or the preceding line.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"xst/internal/lint"
)

func main() {
	fix := flag.Bool("fix", false, "apply suggested fixes to the source files")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xstvet [-fix] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var findings []lint.Finding
	for _, path := range loader.ModulePackages("xst") {
		pkg, err := loader.LoadSource(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fs, err := lint.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}

	if *fix {
		remaining, applied, err := applyFixes(findings)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "xstvet: applied %d fixes\n", applied)
		findings = remaining
	}

	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "xstvet: %d violations\n", len(findings))
		os.Exit(1)
	}
}

// applyFixes rewrites source files with each finding's resolved edits
// (skipping findings without fixes and overlapping edits), returning the
// unfixed findings and the number applied.
func applyFixes(findings []lint.Finding) ([]lint.Finding, int, error) {
	type edit struct {
		idx int // index into findings
		lint.ResolvedEdit
	}
	byFile := map[string][]edit{}
	for i, f := range findings {
		for _, re := range f.Edits {
			byFile[re.Filename] = append(byFile[re.Filename], edit{idx: i, ResolvedEdit: re})
		}
	}
	fixed := make([]bool, len(findings))
	for file, edits := range byFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, 0, err
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].Start > edits[j].Start })
		prevStart := len(src) + 1
		for _, e := range edits {
			if e.End > prevStart || e.Start < 0 || e.End > len(src) || e.Start > e.End {
				continue // overlapping or out-of-range edit: leave for a rerun
			}
			src = append(src[:e.Start], append([]byte(e.NewText), src[e.End:]...)...)
			prevStart = e.Start
			fixed[e.idx] = true
		}
		if err := os.WriteFile(file, src, 0o644); err != nil {
			return nil, 0, err
		}
	}
	var remaining []lint.Finding
	applied := 0
	for i, f := range findings {
		if fixed[i] {
			applied++
		} else {
			remaining = append(remaining, f)
		}
	}
	return remaining, applied, nil
}
