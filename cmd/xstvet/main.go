// Command xstvet is the repository's invariant checker: a multichecker
// driver for the internal/lint analyzers (setmutate, ctxloop, valueeq,
// lockheld, atomicmix, spanclose, goleak, opclose, connclose,
// sendguard) that enforce the algebra's value semantics and the
// server's cancellation, lock and lifecycle discipline. Analysis is
// interprocedural: function summaries are built across every analyzed
// package before the analyzers run, so a callee that blocks or takes
// ownership of its argument is known at each call site.
//
// Usage:
//
//	go run ./cmd/xstvet ./...          # report violations, exit 1 if any
//	go run ./cmd/xstvet -fix ./...     # additionally apply safe rewrites
//	go run ./cmd/xstvet -json ./...    # findings as a JSON array on stdout
//	go run ./cmd/xstvet -list ./...    # analyzers with per-analyzer wall time
//
// Intentional violations are waived in source with
// //lint:ignore <analyzer> <reason> on the same or the preceding line;
// waivers that no longer suppress anything are themselves reported (and
// deleted by -fix).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"xst/internal/lint"
)

// jsonFinding is the CI-facing diagnostic shape emitted by -json.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
	Fixable  bool   `json:"fixable"`
}

func main() {
	fix := flag.Bool("fix", false, "apply suggested fixes to the source files")
	list := flag.Bool("list", false, "run the analyzers, then list them with wall time and finding counts")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xstvet [-fix] [-json] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Load every package up front and feed the summary store, so each
	// pass sees module-wide interprocedural facts.
	var pkgs []*lint.LoadedPackage
	runner := lint.NewRunner(analyzers)
	for _, path := range loader.ModulePackages("xst") {
		pkg, err := loader.LoadSource(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		pkgs = append(pkgs, pkg)
		runner.AddPackage(pkg)
	}
	runner.Finalize()

	var findings []lint.Finding
	for _, pkg := range pkgs {
		fs, err := runner.Run(pkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}

	if *list {
		timings := runner.Timings()
		counts := map[string]int{}
		for _, f := range findings {
			counts[f.Analyzer]++
		}
		for _, a := range analyzers {
			fmt.Printf("%-10s %8.1fms %4d finding(s)  %s\n",
				a.Name, float64(timings[a.Name].Microseconds())/1000, counts[a.Name], a.Doc)
		}
		return
	}

	if *fix {
		remaining, applied, err := applyFixes(findings)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "xstvet: applied %d fixes\n", applied)
		findings = remaining
	}

	if *jsonOut {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				Analyzer: f.Analyzer,
				File:     f.Position.Filename,
				Line:     f.Position.Line,
				Column:   f.Position.Column,
				Message:  f.Diagnostic.Message,
				Fixable:  len(f.Edits) > 0,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "xstvet: %d violations\n", len(findings))
		os.Exit(1)
	}
}

// applyFixes rewrites source files with each finding's resolved edits
// (skipping findings without fixes and overlapping edits), returning the
// unfixed findings and the number applied.
func applyFixes(findings []lint.Finding) ([]lint.Finding, int, error) {
	type edit struct {
		idx int // index into findings
		lint.ResolvedEdit
	}
	byFile := map[string][]edit{}
	for i, f := range findings {
		for _, re := range f.Edits {
			byFile[re.Filename] = append(byFile[re.Filename], edit{idx: i, ResolvedEdit: re})
		}
	}
	fixed := make([]bool, len(findings))
	for file, edits := range byFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, 0, err
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].Start > edits[j].Start })
		prevStart := len(src) + 1
		for _, e := range edits {
			if e.End > prevStart || e.Start < 0 || e.End > len(src) || e.Start > e.End {
				continue // overlapping or out-of-range edit: leave for a rerun
			}
			src = append(src[:e.Start], append([]byte(e.NewText), src[e.End:]...)...)
			prevStart = e.Start
			fixed[e.idx] = true
		}
		if err := os.WriteFile(file, src, 0o644); err != nil {
			return nil, 0, err
		}
	}
	var remaining []lint.Finding
	applied := 0
	for i, f := range findings {
		if fixed[i] {
			applied++
		} else {
			remaining = append(remaining, f)
		}
	}
	return remaining, applied, nil
}
