// Command xstd is the set-processing backend machine of the
// reproduction: a daemon serving the xlang expression language over TCP
// to many concurrent clients, each in an isolated session over one
// shared database. See internal/server for the wire protocol and
// README.md for usage.
//
//	xstd                          # pure calculator server on :7143
//	xstd -db data.pages           # serve a stored database's tables
//	xstd -addr :9000 -workers 128 -timeout 5s
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes,
// in-flight queries drain (up to -grace), then the database is synced
// and closed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xst/internal/catalog"
	"xst/internal/server"
	"xst/internal/store"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr    = flag.String("addr", ":7143", "listen address")
		dbPath  = flag.String("db", "", "database file to serve (tables bound read-only into every session)")
		frames  = flag.Int("frames", 256, "buffer-pool frames for the database")
		workers = flag.Int("workers", 64, "max concurrently evaluating queries")
		timeout = flag.Duration("timeout", 10*time.Second, "default per-query deadline")
		grace   = flag.Duration("grace", 15*time.Second, "shutdown drain budget")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "", log.LstdFlags)

	var db *catalog.Database
	if *dbPath != "" {
		pager, err := store.OpenFilePager(*dbPath)
		if err != nil {
			logger.Printf("xstd: %v", err)
			return 1
		}
		db, err = catalog.Open(pager, *frames)
		if err != nil {
			pager.Close()
			logger.Printf("xstd: %v", err)
			return 1
		}
		defer func() {
			if err := db.Close(); err != nil {
				logger.Printf("xstd: closing database: %v", err)
			}
		}()
		logger.Printf("xstd: serving tables %v from %s", db.Names(), *dbPath)
	}

	srv, err := server.New(server.Config{
		Addr:           *addr,
		DB:             db,
		MaxWorkers:     *workers,
		DefaultTimeout: *timeout,
		Logf:           logger.Printf,
	})
	if err != nil {
		logger.Printf("xstd: %v", err)
		return 1
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case sig := <-sigc:
		logger.Printf("xstd: %v — draining (grace %v)", sig, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Printf("xstd: forced shutdown: %v", err)
		}
		<-errc // wait for Serve to return
	case err := <-errc:
		if err != nil && err != server.ErrServerClosed {
			logger.Printf("xstd: %v", err)
			return 1
		}
	}

	snap := srv.MetricsSnapshot()
	fmt.Fprintf(os.Stderr, "xstd: served %d queries (%d errors, %d timeouts, %d rejected), latency %s\n",
		snap.QueriesOK+snap.QueriesErr+snap.QueriesTimeout,
		snap.QueriesErr, snap.QueriesTimeout, snap.Rejected, snap.Latency)
	return 0
}
