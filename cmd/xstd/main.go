// Command xstd is the set-processing backend machine of the
// reproduction: a daemon serving the xlang expression language over TCP
// to many concurrent clients, each in an isolated session over one
// shared database. See internal/server for the wire protocol and
// README.md for usage.
//
//	xstd                          # pure calculator server on :7143
//	xstd -db data.pages           # serve a stored database's tables
//	xstd -addr :9000 -workers 128 -timeout 5s
//	xstd -http :7144 -slow-query 250ms -trace-sample 100
//	xstd -fed host1:7143,host2:7143  # federation coordinator over sites
//
// -http starts a sidecar HTTP listener serving the Prometheus-style
// /metrics exposition and the standard net/http/pprof profiling
// endpoints under /debug/pprof/. -slow-query arms the slow-query log
// (span trees of over-threshold queries, also retrievable with the
// `.slow` admin command); -trace-sample N traces 1-in-N statements for
// the `.trace` admin command.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes,
// in-flight queries drain (up to -grace), then the database is synced
// and closed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xst/internal/catalog"
	"xst/internal/fed"
	"xst/internal/server"
	"xst/internal/store"
	"xst/internal/wal"
	"xst/internal/xlang"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr    = flag.String("addr", ":7143", "listen address")
		dbPath  = flag.String("db", "", "database file to serve (tables bound read-only into every session)")
		walPath = flag.String("wal", "", "write-ahead log for -db: replay committed transactions at open, fsync every commit (empty = not durable)")
		frames  = flag.Int("frames", 256, "buffer-pool frames for the database")
		workers = flag.Int("workers", 64, "max concurrently evaluating queries")
		timeout = flag.Duration("timeout", 10*time.Second, "default per-query deadline")
		grace   = flag.Duration("grace", 15*time.Second, "shutdown drain budget")
		httpAdr = flag.String("http", "", "HTTP listen address for /metrics and /debug/pprof/ (empty = off)")
		slowQ   = flag.Duration("slow-query", 0, "trace every statement and log span trees of ones at least this slow (0 = off)")
		sample  = flag.Int("trace-sample", 0, "trace 1-in-N statements for the .trace admin command (0 = off)")
		fedStr  = flag.String("fed", "", "comma-separated site addresses: serve as federation coordinator over remote xstd sites")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "", log.LstdFlags)

	var db *catalog.Database
	if *dbPath != "" {
		pager, err := store.OpenFilePager(*dbPath)
		if err != nil {
			logger.Printf("xstd: %v", err)
			return 1
		}
		if *walPath != "" {
			walLog, err := wal.OpenFileLog(*walPath)
			if err != nil {
				pager.Close()
				logger.Printf("xstd: %v", err)
				return 1
			}
			defer walLog.Close()
			if pager.NumPages() == 0 {
				db, err = catalog.CreateDurable(pager, walLog, *frames)
			} else {
				var redone int
				db, redone, err = catalog.OpenDurable(pager, walLog, *frames)
				if err == nil && redone > 0 {
					logger.Printf("xstd: recovery replayed %d committed transactions from %s", redone, *walPath)
				}
			}
			if err != nil {
				pager.Close()
				logger.Printf("xstd: %v", err)
				return 1
			}
		} else {
			db, err = catalog.Open(pager, *frames)
			if err != nil {
				pager.Close()
				logger.Printf("xstd: %v", err)
				return 1
			}
		}
		defer func() {
			if err := db.Close(); err != nil {
				logger.Printf("xstd: closing database: %v", err)
			}
		}()
		logger.Printf("xstd: serving tables %v from %s", db.Names(), *dbPath)
	}

	// Federation mode: connect the coordinator to the remote sites and
	// route query compilation through it — the server's own sessions,
	// admission control and streaming all apply unchanged.
	var coord *fed.Coordinator
	if *fedStr != "" {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		c, err := fed.Connect(ctx, fed.Config{
			Sites: strings.Split(*fedStr, ","),
			Logf:  logger.Printf,
		})
		cancel()
		if err != nil {
			logger.Printf("xstd: %v", err)
			return 1
		}
		coord = c
		defer coord.Close()
		var names []string
		for _, m := range coord.Tables() {
			names = append(names, m.Name)
		}
		logger.Printf("xstd: coordinating tables %v over %d sites", names, coord.Sites())
	}

	cfg := server.Config{
		Addr:           *addr,
		DB:             db,
		MaxWorkers:     *workers,
		DefaultTimeout: *timeout,
		SlowQuery:      *slowQ,
		TraceSample:    *sample,
		Logf:           logger.Printf,
	}
	if coord != nil {
		cfg.Compile = func(env *xlang.Env, stmt string) (server.Query, error) {
			q, err := coord.Compile(stmt)
			if err != nil {
				return nil, err
			}
			return q, nil
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		logger.Printf("xstd: %v", err)
		return 1
	}
	if coord != nil {
		if err := coord.RegisterMetrics(srv.Registry()); err != nil {
			logger.Printf("xstd: %v", err)
			return 1
		}
	}

	// The observability sidecar: Prometheus text exposition plus the
	// stock pprof handlers, on a separate listener so profiling traffic
	// never competes with the query protocol port.
	var httpSrv *http.Server
	if *httpAdr != "" {
		l, err := net.Listen("tcp", *httpAdr)
		if err != nil {
			logger.Printf("xstd: http listener: %v", err)
			return 1
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			srv.Registry().WriteText(w)
		})
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		httpSrv = &http.Server{Handler: mux}
		logger.Printf("xstd: metrics and pprof on http://%s", l.Addr())
		go func() {
			if err := httpSrv.Serve(l); err != nil && err != http.ErrServerClosed {
				logger.Printf("xstd: http: %v", err)
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case sig := <-sigc:
		logger.Printf("xstd: %v — draining (grace %v)", sig, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Printf("xstd: forced shutdown: %v", err)
		}
		<-errc // wait for Serve to return
	case err := <-errc:
		if err != nil && err != server.ErrServerClosed {
			logger.Printf("xstd: %v", err)
			return 1
		}
	}
	if httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}

	snap := srv.MetricsSnapshot()
	fmt.Fprintf(os.Stderr, "xstd: served %d queries (%d errors, %d timeouts, %d rejected), latency %s\n",
		snap.QueriesOK+snap.QueriesErr+snap.QueriesTimeout,
		snap.QueriesErr, snap.QueriesTimeout, snap.Rejected, snap.Latency)
	return 0
}
