package main

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	"xst/internal/catalog"
	"xst/internal/core"
	"xst/internal/fed"
	"xst/internal/table"
	"xst/internal/trace"
)

// fedMode boots an in-process federation of n xstd sites over a sharded
// synthetic workload, drives the coordinator with a query mix, and
// reports coordinator-side latency alongside each site's own latency
// histogram and the xstd_fed_* shipping counters. With -http set it
// then serves the coordinator registry's /metrics and lingers (the CI
// federation smoke job curls it).
func fedMode(n int, seed uint64, queries int, httpAddr string) int {
	const (
		nUsers  = 5000
		nOrders = 20000
	)
	rng := rand.New(rand.NewSource(int64(seed)))
	usersSchema := table.Schema{Name: "users", Cols: []string{"id", "name", "age"}}
	ordersSchema := table.Schema{Name: "orders", Cols: []string{"oid", "uid", "amount"}}
	users := make([]table.Row, nUsers)
	for i := range users {
		users[i] = table.Row{
			core.Int(i), core.Str(fmt.Sprintf("u%03d", rng.Intn(500))), core.Int(rng.Intn(80)),
		}
	}
	orders := make([]table.Row, nOrders)
	for i := range orders {
		orders[i] = table.Row{
			core.Int(i), core.Int(rng.Intn(nUsers)), core.Int(rng.Intn(1000)),
		}
	}
	var bounds []core.Value
	for i := 1; i < n; i++ {
		bounds = append(bounds, core.Int(i*nOrders/n))
	}

	ctx := context.Background()
	boot := time.Now()
	lf, err := fed.BootLocal(ctx, n, fed.Config{}, func(dbs []*catalog.Database) error {
		if err := fed.CreateSharded(dbs, usersSchema,
			&catalog.Partition{Kind: catalog.PartHash, Col: "id"}, users); err != nil {
			return err
		}
		return fed.CreateSharded(dbs, ordersSchema,
			&catalog.Partition{Kind: catalog.PartRange, Col: "oid", Bounds: bounds}, orders)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "xstbench:", err)
		return 1
	}
	defer lf.Shutdown(ctx)
	fmt.Printf("xstbench: booted %d-site federation in %v (users×%d hash on id, orders×%d range on oid)\n",
		n, time.Since(boot).Round(time.Millisecond), nUsers, nOrders)

	stmts := []string{
		"from users where age > 30",
		"from users group by name count sum(age)",
		"from orders where oid < 1000 select uid, amount",
		"from orders join users on uid = id select oid, amount, name",
		"from users where id = 42",
		"from users select distinct name",
	}
	var lats []time.Duration
	rows := 0
	for i := 0; i < queries; i++ {
		stmt := stmts[i%len(stmts)]
		start := time.Now()
		q, err := lf.Coord.Compile(stmt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xstbench: %s: %v\n", stmt, err)
			return 1
		}
		_, err = q.Run(ctx, func(b []table.Row) error { rows += len(b); return nil })
		if err != nil {
			fmt.Fprintf(os.Stderr, "xstbench: %s: %v\n", stmt, err)
			return 1
		}
		lats = append(lats, time.Since(start))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) time.Duration { return lats[int(p*float64(len(lats)-1))] }
	fmt.Printf("coordinator: %d queries, %d rows — p50 %v, p99 %v\n",
		len(lats), rows, q(0.50).Round(time.Microsecond), q(0.99).Round(time.Microsecond))

	m := lf.Coord.Metrics()
	fmt.Printf("shipping:    %d fragments, %d bytes, %d rows, %d retries, %d errors, %d/%d sites up\n",
		m.Fragments.Value(), m.BytesShipped.Value(), m.RowsShipped.Value(),
		m.Retries.Value(), m.FragErrors.Value(), m.SitesUp.Value(), n)
	for i, srv := range lf.Servers {
		l := srv.MetricsSnapshot().Latency
		fmt.Printf("site %d:      %s — fragment latency p50 %v, p99 %v (n=%d)\n",
			i, lf.Addrs[i], l.P50.Round(time.Microsecond), l.P99.Round(time.Microsecond), l.Count)
	}

	// One forcibly traced federated query: the coordinator's span tree
	// with each site's spans grafted under its remote span — what the CI
	// smoke greps for per-site remote spans.
	traced := "from orders join users on uid = id select oid, amount, name"
	q2, err := lf.Coord.Compile(traced)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xstbench: %s: %v\n", traced, err)
		return 1
	}
	root := trace.NewRoot("query")
	root.SetNote(traced)
	_, err = q2.Run(trace.WithSpan(ctx, root), func([]table.Row) error { return nil })
	root.End()
	if err != nil {
		fmt.Fprintf(os.Stderr, "xstbench: %s: %v\n", traced, err)
		return 1
	}
	snap := root.Snapshot()
	fmt.Printf("distributed trace %s:\n%s", snap.TraceID, snap.Render())

	// The federated system catalog, through the coordinator's own
	// planner: per-site health as query results.
	sq, err := lf.Coord.Compile("from __sys.sites")
	if err != nil {
		fmt.Fprintln(os.Stderr, "xstbench: __sys.sites:", err)
		return 1
	}
	fmt.Println("__sys.sites:")
	if _, err := sq.Run(ctx, func(b []table.Row) error {
		for _, r := range b {
			fmt.Printf("  %s\n", r.Tuple())
		}
		return nil
	}); err != nil {
		fmt.Fprintln(os.Stderr, "xstbench: __sys.sites:", err)
		return 1
	}

	if httpAddr != "" {
		l, err := net.Listen("tcp", httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xstbench:", err)
			return 1
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			lf.Registry.WriteText(w)
		})
		fmt.Printf("xstbench: federation metrics on http://%s/metrics\n", l.Addr())
		if err := http.Serve(l, mux); err != nil {
			fmt.Fprintln(os.Stderr, "xstbench:", err)
			return 1
		}
	}
	return 0
}
