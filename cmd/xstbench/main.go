// Command xstbench regenerates the reproduction's evaluation artifacts:
// every figure, worked example, law table and performance claim, as
// experiments E1–E18 (see DESIGN.md for the index and EXPERIMENTS.md for
// paper-vs-measured records). It doubles as the load generator for a
// running xstd server.
//
// Usage:
//
//	xstbench              # run everything at full scale
//	xstbench -quick       # shrunken workloads (seconds, for CI)
//	xstbench -exp E8      # one experiment
//	xstbench -seed 7      # reseed the randomized workloads
//
// Client (load-generation) mode:
//
//	xstbench -server localhost:7143 -conns 64 -queries 200 \
//	         -stmt 'card({1,2,3}+{4,5})'
//
// drives an xstd server with -conns concurrent connections issuing
// -queries statements each, then prints client-side throughput/latency
// and the server's own .stats ledger.
//
// Federation mode:
//
//	xstbench -sites 3 -queries 120
//
// boots an in-process federation of N xstd sites over a sharded
// synthetic workload, drives the coordinator with a query mix, and
// reports coordinator p50/p99 alongside each site's own latency and the
// xstd_fed_* shipping counters; add -http to serve the coordinator's
// /metrics exposition afterwards (for smoke jobs).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"xst/internal/bench"
	"xst/internal/server"
)

func main() {
	var (
		exp   = flag.String("exp", "", "run a single experiment (E1..E18)")
		quick = flag.Bool("quick", false, "shrink performance workloads")
		seed  = flag.Uint64("seed", 42, "workload seed")

		srvAddr = flag.String("server", "", "client mode: address of a running xstd server")
		conns   = flag.Int("conns", 8, "client mode: concurrent connections")
		queries = flag.Int("queries", 100, "client mode: queries per connection; fed mode: total queries")
		stmt    = flag.String("stmt", "card({1,2,3}+{4,5})", "client mode: statement to evaluate")

		sites   = flag.Int("sites", 0, "fed mode: boot an in-process federation of N sites and benchmark it")
		httpAdr = flag.String("http", "", "fed mode: serve the coordinator /metrics exposition here and linger")
	)
	flag.Parse()

	if *sites > 0 {
		os.Exit(fedMode(*sites, *seed, *queries, *httpAdr))
	}
	if *srvAddr != "" {
		os.Exit(clientMode(*srvAddr, *stmt, *conns, *queries))
	}

	cfg := bench.Config{Quick: *quick, Seed: *seed}
	var results []bench.Result
	if *exp != "" {
		r, ok := bench.ByID(*exp, cfg)
		if !ok {
			fmt.Fprintf(os.Stderr, "xstbench: unknown experiment %q (want E1..E18)\n", *exp)
			os.Exit(2)
		}
		results = []bench.Result{r}
	} else {
		results = bench.All(cfg)
	}

	failures := 0
	for _, r := range results {
		fmt.Println(r.Render())
		if !r.Pass {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "xstbench: %d experiment(s) mismatched\n", failures)
		os.Exit(1)
	}
}

// clientMode generates load against a running xstd server.
func clientMode(addr, stmt string, conns, queries int) int {
	fmt.Printf("xstbench: driving %s with %d conns × %d queries of %q\n",
		addr, conns, queries, stmt)
	rep, err := bench.RunServerLoad(addr, stmt, conns, queries)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xstbench:", err)
		return 1
	}
	fmt.Printf("client:  %d queries in %v — %.0f q/s, p50 %v, p99 %v, %d errors\n",
		rep.Queries, rep.Elapsed.Round(time.Millisecond), rep.QPS,
		rep.P50.Round(time.Microsecond), rep.P99.Round(time.Microsecond), rep.Errors)

	c, err := server.Dial(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xstbench:", err)
		return 1
	}
	defer c.Close()
	snap, err := c.Stats()
	if err != nil {
		fmt.Fprintln(os.Stderr, "xstbench:", err)
		return 1
	}
	fmt.Printf("server:  ok=%d err=%d timeout=%d rejected=%d conns=%d\n",
		snap.QueriesOK, snap.QueriesErr, snap.QueriesTimeout,
		snap.Rejected, snap.ConnsTotal)
	// Server-side latency quantiles come from the registry's
	// xstd_query_latency_seconds histogram (the same series /metrics
	// exports), not from client-side timestamps — so they include queue
	// wait but exclude network time.
	l := snap.Latency
	fmt.Printf("server:  latency p50 %v p90 %v p99 %v max %v mean %v (n=%d)\n",
		l.P50.Round(time.Microsecond), l.P90.Round(time.Microsecond),
		l.P99.Round(time.Microsecond), l.Max.Round(time.Microsecond),
		l.Mean.Round(time.Microsecond), l.Count)
	text, err := c.MetricsText()
	if err != nil {
		fmt.Fprintln(os.Stderr, "xstbench:", err)
		return 1
	}
	fmt.Printf("server:  %d metric series via .metrics\n", strings.Count(text, "# TYPE"))
	return 0
}
