// Command xstbench regenerates the reproduction's evaluation artifacts:
// every figure, worked example, law table and performance claim, as
// experiments E1–E10 (see DESIGN.md for the index and EXPERIMENTS.md for
// paper-vs-measured records).
//
// Usage:
//
//	xstbench              # run everything at full scale
//	xstbench -quick       # shrunken workloads (seconds, for CI)
//	xstbench -exp E8      # one experiment
//	xstbench -seed 7      # reseed the randomized workloads
package main

import (
	"flag"
	"fmt"
	"os"

	"xst/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "", "run a single experiment (E1..E10)")
		quick = flag.Bool("quick", false, "shrink performance workloads")
		seed  = flag.Uint64("seed", 42, "workload seed")
	)
	flag.Parse()

	cfg := bench.Config{Quick: *quick, Seed: *seed}
	var results []bench.Result
	if *exp != "" {
		r, ok := bench.ByID(*exp, cfg)
		if !ok {
			fmt.Fprintf(os.Stderr, "xstbench: unknown experiment %q (want E1..E10)\n", *exp)
			os.Exit(2)
		}
		results = []bench.Result{r}
	} else {
		results = bench.All(cfg)
	}

	failures := 0
	for _, r := range results {
		fmt.Println(r.Render())
		if !r.Pass {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "xstbench: %d experiment(s) mismatched\n", failures)
		os.Exit(1)
	}
}
