package xst_test

import (
	"testing"

	"xst"
)

// TestPublicAPI exercises the whole exported surface the way a
// downstream module would, without touching internal/ packages.
func TestPublicAPI(t *testing.T) {
	// Values and classical algebra.
	a := xst.S(xst.Int(1), xst.Int(2))
	b := xst.S(xst.Int(2), xst.Int(3))
	if got := xst.Union(a, b); got.Len() != 3 {
		t.Fatalf("union = %v", got)
	}
	if got := xst.Intersect(a, b); !xst.Equal(got, xst.S(xst.Int(2))) {
		t.Fatalf("intersect = %v", got)
	}
	if !xst.Subset(xst.Diff(a, b), a) {
		t.Fatal("diff/subset wrong")
	}
	if xst.Compare(xst.Int(1), xst.Int(2)) >= 0 {
		t.Fatal("compare wrong")
	}

	// Scoped membership and tuples.
	person := xst.NewSet(
		xst.M(xst.Str("alice"), xst.Str("name")),
		xst.E(xst.Int(30)),
	)
	if person.Len() != 2 {
		t.Fatal("scoped construction wrong")
	}
	pair := xst.Pair(xst.Str("k"), xst.Str("v"))
	if n, ok := xst.TupLen(pair); !ok || n != 2 {
		t.Fatal("pair recognizer wrong")
	}
	if n, ok := xst.TupLen(xst.Tuple(xst.Int(1), xst.Int(2), xst.Int(3))); !ok || n != 3 {
		t.Fatal("tuple recognizer wrong")
	}
	if !xst.Empty().IsEmpty() {
		t.Fatal("empty wrong")
	}

	// Images.
	phone := xst.S(
		xst.Pair(xst.Str("alice"), xst.Str("x1")),
		xst.Pair(xst.Str("bob"), xst.Str("x2")),
	)
	nums := xst.Image(phone, xst.S(xst.Tuple(xst.Str("alice"))), xst.StdSigma())
	if !xst.Equal(nums, xst.S(xst.Tuple(xst.Str("x1")))) {
		t.Fatalf("image = %v", nums)
	}
	if !xst.Equal(
		xst.SigmaDomain(phone, xst.Positions(1)),
		xst.S(xst.Tuple(xst.Str("alice")), xst.Tuple(xst.Str("bob")))) {
		t.Fatal("σ-domain wrong")
	}
	if xst.SigmaRestrict(phone, xst.Positions(1), xst.S(xst.Tuple(xst.Str("alice")))).Len() != 1 {
		t.Fatal("σ-restriction wrong")
	}

	// Re-scoping.
	if got := xst.ReScopeByScope(xst.Tuple(xst.Str("p"), xst.Str("q")), xst.Positions(2, 1)); !xst.Equal(got, xst.Tuple(xst.Str("q"), xst.Str("p"))) {
		t.Fatalf("re-scope = %v", got)
	}
	if xst.ReScopeByElem(xst.Tuple(xst.Str("p")), xst.Positions(1)).IsEmpty() {
		t.Fatal("re-scope by elem wrong")
	}

	// Products.
	if got := xst.Cartesian(xst.S(xst.Str("a")), xst.S(xst.Str("b"))); got.Len() != 1 {
		t.Fatalf("cartesian = %v", got)
	}
	if got := xst.CrossProduct(xst.S(xst.Tuple(xst.Str("a"))), xst.S(xst.Tuple(xst.Str("b")))); !got.HasClassical(xst.Pair(xst.Str("a"), xst.Str("b"))) {
		t.Fatalf("cross = %v", got)
	}
	cst := xst.RelativeProduct(
		xst.S(xst.Pair(xst.Str("a"), xst.Str("b"))),
		xst.S(xst.Pair(xst.Str("b"), xst.Str("c"))),
		xst.NewSigma(xst.Positions(1), xst.NewSet(xst.M(xst.Int(2), xst.Int(1)))),
		xst.NewSigma(xst.Positions(1), xst.NewSet(xst.M(xst.Int(2), xst.Int(2)))),
	)
	if !xst.Equal(cst, xst.S(xst.Pair(xst.Str("a"), xst.Str("c")))) {
		t.Fatalf("relative product = %v", cst)
	}

	// Processes.
	f := xst.StdProc(phone)
	if !f.IsFunction() {
		t.Fatal("function predicate wrong")
	}
	back := xst.S(
		xst.Pair(xst.Str("x1"), xst.Str("mobile")),
		xst.Pair(xst.Str("x2"), xst.Str("office")),
	)
	h, err := xst.StdCompose(xst.StdProc(back), f)
	if err != nil {
		t.Fatal(err)
	}
	out := h.Apply(xst.S(xst.Tuple(xst.Str("alice"))))
	if !xst.Equal(out, xst.S(xst.Tuple(xst.Str("mobile")))) {
		t.Fatalf("composed apply = %v", out)
	}
	id := xst.Identity(xst.S(xst.Tuple(xst.Str("alice")), xst.Tuple(xst.Str("bob"))))
	if !xst.Compose(xst.StdProc(back), xst.NewProc(phone, xst.StdSigma())).Sig.Equal(
		xst.NewSigma(xst.StdSigma().S1, xst.StdSigma().S2)) {
		t.Fatal("literal compose sigma wrong")
	}
	if !id.IsFunction() {
		t.Fatal("identity wrong")
	}

	// Expression language.
	env := xst.NewEnv()
	v, err := xst.Eval(env, "{1,2} + {3}")
	if err != nil || !xst.Equal(v, xst.S(xst.Int(1), xst.Int(2), xst.Int(3))) {
		t.Fatalf("eval = %v, %v", v, err)
	}
	v, err = xst.EvalProgram(env, "g := {<a,b>}\ng[{<a>}]")
	if err != nil || !xst.Equal(v, xst.S(xst.Tuple(xst.Str("b")))) {
		t.Fatalf("program = %v, %v", v, err)
	}
}
