// Package cst implements the classical-set-theory (CST) baseline the
// paper defines in §3: relations as sets of ordered pairs, image,
// restriction, 1-/2-domain, and element-level functions (Def 3.1–3.9).
// It serves two roles: a correctness comparator (every CST operation must
// agree with its XST realization on classical operands — the paper's
// compatibility claim) and the "record processing" style baseline for the
// performance experiments.
package cst

import (
	"sort"

	"xst/internal/core"
)

// Pair is a classical ordered pair ⟨X, Y⟩.
type Pair struct {
	X, Y core.Value
}

// Relation is a classical relation: a duplicate-free set of ordered
// pairs, held in insertion-independent canonical order.
type Relation struct {
	pairs []Pair
}

// NewRelation builds a relation, deduplicating pairs.
func NewRelation(pairs ...Pair) *Relation {
	r := &Relation{pairs: make([]Pair, len(pairs))}
	copy(r.pairs, pairs)
	r.canonicalize()
	return r
}

func comparePairs(a, b Pair) int {
	if c := core.Compare(a.X, b.X); c != 0 {
		return c
	}
	return core.Compare(a.Y, b.Y)
}

func (r *Relation) canonicalize() {
	sort.Slice(r.pairs, func(i, j int) bool { return comparePairs(r.pairs[i], r.pairs[j]) < 0 })
	w := 0
	for i, p := range r.pairs {
		if i == 0 || comparePairs(p, r.pairs[w-1]) != 0 {
			r.pairs[w] = p
			w++
		}
	}
	r.pairs = r.pairs[:w]
}

// Len returns the number of pairs.
func (r *Relation) Len() int { return len(r.pairs) }

// Pairs returns the canonical pair slice; the caller must not modify it.
func (r *Relation) Pairs() []Pair { return r.pairs }

// Has reports whether ⟨x, y⟩ ∈ R.
func (r *Relation) Has(x, y core.Value) bool {
	p := Pair{X: x, Y: y}
	i := sort.Search(len(r.pairs), func(i int) bool { return comparePairs(r.pairs[i], p) >= 0 })
	return i < len(r.pairs) && comparePairs(r.pairs[i], p) == 0
}

// ElemSet is a classical set of values keyed by canonical encoding.
type ElemSet struct {
	elems map[string]core.Value
}

// NewElemSet builds a classical element set.
func NewElemSet(vs ...core.Value) *ElemSet {
	s := &ElemSet{elems: make(map[string]core.Value, len(vs))}
	for _, v := range vs {
		s.Add(v)
	}
	return s
}

// Add inserts v.
func (s *ElemSet) Add(v core.Value) { s.elems[core.Key(v)] = v }

// Has reports membership.
func (s *ElemSet) Has(v core.Value) bool {
	_, ok := s.elems[core.Key(v)]
	return ok
}

// Len returns the cardinality.
func (s *ElemSet) Len() int { return len(s.elems) }

// Values returns the elements in canonical order.
func (s *ElemSet) Values() []core.Value {
	out := make([]core.Value, 0, len(s.elems))
	for _, v := range s.elems {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return core.Compare(out[i], out[j]) < 0 })
	return out
}

// Equal reports extensional equality.
func (s *ElemSet) Equal(o *ElemSet) bool {
	if s.Len() != o.Len() {
		return false
	}
	for k := range s.elems {
		if _, ok := o.elems[k]; !ok {
			return false
		}
	}
	return true
}

// Image implements Def 3.1: R[A] = { y : ∃x (x ∈ A & ⟨x,y⟩ ∈ R) }.
func (r *Relation) Image(a *ElemSet) *ElemSet {
	out := NewElemSet()
	for _, p := range r.pairs {
		if a.Has(p.X) {
			out.Add(p.Y)
		}
	}
	return out
}

// Restrict implements Def 3.3: R|A = { ⟨x,y⟩ ∈ R : x ∈ A }.
func (r *Relation) Restrict(a *ElemSet) *Relation {
	out := &Relation{}
	for _, p := range r.pairs {
		if a.Has(p.X) {
			out.pairs = append(out.pairs, p)
		}
	}
	return out // already canonical: filtered from canonical order
}

// Domain1 implements Def 3.4: 𝔇₁(R) = { x : ∃y ⟨x,y⟩ ∈ R }.
func (r *Relation) Domain1() *ElemSet {
	out := NewElemSet()
	for _, p := range r.pairs {
		out.Add(p.X)
	}
	return out
}

// Domain2 implements Def 3.5: 𝔇₂(R) = { y : ∃x ⟨x,y⟩ ∈ R }.
func (r *Relation) Domain2() *ElemSet {
	out := NewElemSet()
	for _, p := range r.pairs {
		out.Add(p.Y)
	}
	return out
}

// IsFunction reports whether no two pairs share a first element
// (the premise of Def 3.2).
func (r *Relation) IsFunction() bool {
	for i := 1; i < len(r.pairs); i++ {
		if core.Equal(r.pairs[i].X, r.pairs[i-1].X) {
			return false
		}
	}
	return true
}

// Apply implements Def 3.2: f(a) = b iff f[{a}] = {b}. The boolean
// reports whether the application is defined (exactly one image element).
func (r *Relation) Apply(a core.Value) (core.Value, bool) {
	img := r.Image(NewElemSet(a))
	if img.Len() != 1 {
		return nil, false
	}
	return img.Values()[0], true
}

// RelProduct is the classical relative product R/S =
// { ⟨a,c⟩ : ∃b (⟨a,b⟩ ∈ R & ⟨b,c⟩ ∈ S) }.
func (r *Relation) RelProduct(s *Relation) *Relation {
	byFirst := make(map[string][]core.Value, s.Len())
	for _, p := range s.pairs {
		k := core.Key(p.X)
		byFirst[k] = append(byFirst[k], p.Y)
	}
	out := &Relation{}
	for _, p := range r.pairs {
		for _, c := range byFirst[core.Key(p.Y)] {
			out.pairs = append(out.pairs, Pair{X: p.X, Y: c})
		}
	}
	out.canonicalize()
	return out
}

// Compose returns g∘f as a relation: (g∘f)(x) = g(f(x)).
func Compose(g, f *Relation) *Relation { return f.RelProduct(g) }

// Inverse returns R⁻¹ = { ⟨y,x⟩ : ⟨x,y⟩ ∈ R }.
func (r *Relation) Inverse() *Relation {
	out := &Relation{pairs: make([]Pair, 0, len(r.pairs))}
	for _, p := range r.pairs {
		out.pairs = append(out.pairs, Pair{X: p.Y, Y: p.X})
	}
	out.canonicalize()
	return out
}

// Equal reports extensional equality of relations.
func (r *Relation) Equal(o *Relation) bool {
	if r.Len() != o.Len() {
		return false
	}
	for i := range r.pairs {
		if comparePairs(r.pairs[i], o.pairs[i]) != 0 {
			return false
		}
	}
	return true
}

// ToXST renders the relation as the extended set of classical pairs —
// the embedding used by the compatibility experiments.
func (r *Relation) ToXST() *core.Set {
	b := core.NewBuilder(len(r.pairs))
	for _, p := range r.pairs {
		b.AddClassical(core.Pair(p.X, p.Y))
	}
	return b.Set()
}

// ElemsToXST wraps each element of a classical set into a 1-tuple and
// collects them classically — the input embedding for XST images.
func ElemsToXST(s *ElemSet) *core.Set {
	b := core.NewBuilder(s.Len())
	for _, v := range s.Values() {
		b.AddClassical(core.Tuple(v))
	}
	return b.Set()
}

// XSTToElems unwraps a set of classical 1-tuples back to an element set.
// Members that are not classical 1-tuples report ok = false.
func XSTToElems(s *core.Set) (*ElemSet, bool) {
	out := NewElemSet()
	okAll := true
	s.Each(func(m core.Member) bool {
		sc, isSet := m.Scope.(*core.Set)
		elems, isTup := core.TupleElems(m.Elem)
		if !isSet || !sc.IsEmpty() || !isTup || len(elems) != 1 {
			okAll = false
			return false
		}
		out.Add(elems[0])
		return true
	})
	return out, okAll
}
