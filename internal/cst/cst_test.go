package cst

import (
	"testing"

	"xst/internal/algebra"
	"xst/internal/core"
	"xst/internal/xtest"
)

func pairRel(ps ...[2]int) *Relation {
	pairs := make([]Pair, len(ps))
	for i, p := range ps {
		pairs[i] = Pair{X: core.Int(p[0]), Y: core.Int(p[1])}
	}
	return NewRelation(pairs...)
}

func TestRelationCanonical(t *testing.T) {
	a := pairRel([2]int{2, 2}, [2]int{1, 1}, [2]int{2, 2})
	b := pairRel([2]int{1, 1}, [2]int{2, 2})
	if !a.Equal(b) {
		t.Fatal("dedup/order-insensitivity failed")
	}
	if a.Len() != 2 {
		t.Fatalf("Len = %d", a.Len())
	}
	if !a.Has(core.Int(1), core.Int(1)) || a.Has(core.Int(1), core.Int(2)) {
		t.Fatal("Has wrong")
	}
}

func TestImageRestrictionDomains(t *testing.T) {
	r := pairRel([2]int{1, 10}, [2]int{1, 11}, [2]int{2, 20}, [2]int{3, 30})
	a := NewElemSet(core.Int(1), core.Int(2))

	img := r.Image(a)
	if !img.Equal(NewElemSet(core.Int(10), core.Int(11), core.Int(20))) {
		t.Fatalf("R[A] = %v", img.Values())
	}
	// Def 3.6: R[A] = 𝔇₂(R|A).
	if !img.Equal(r.Restrict(a).Domain2()) {
		t.Fatal("R[A] ≠ 𝔇₂(R|A)")
	}
	if !r.Domain1().Equal(NewElemSet(core.Int(1), core.Int(2), core.Int(3))) {
		t.Fatal("𝔇₁ wrong")
	}
	if r.Domain2().Len() != 4 {
		t.Fatal("𝔇₂ wrong")
	}
}

func TestFunctionApply(t *testing.T) {
	f := pairRel([2]int{1, 10}, [2]int{2, 20})
	if !f.IsFunction() {
		t.Fatal("f is a function")
	}
	if v, ok := f.Apply(core.Int(1)); !ok || !core.Equal(v, core.Int(10)) {
		t.Fatalf("f(1) = %v (%v)", v, ok)
	}
	if _, ok := f.Apply(core.Int(9)); ok {
		t.Fatal("f(9) undefined")
	}
	g := pairRel([2]int{1, 10}, [2]int{1, 11})
	if g.IsFunction() {
		t.Fatal("g is not a function")
	}
	if _, ok := g.Apply(core.Int(1)); ok {
		t.Fatal("ambiguous application must be undefined")
	}
}

func TestRelProductAndCompose(t *testing.T) {
	r := pairRel([2]int{1, 2})
	s := pairRel([2]int{2, 3})
	if !r.RelProduct(s).Equal(pairRel([2]int{1, 3})) {
		t.Fatal("R/S wrong")
	}
	// Compose(g, f) pairs through f then g.
	f := pairRel([2]int{1, 5}, [2]int{2, 6})
	g := pairRel([2]int{5, 100}, [2]int{6, 200})
	h := Compose(g, f)
	if v, _ := h.Apply(core.Int(1)); !core.Equal(v, core.Int(100)) {
		t.Fatal("composition wrong")
	}
}

func TestInverse(t *testing.T) {
	r := pairRel([2]int{1, 2}, [2]int{3, 4})
	if !r.Inverse().Equal(pairRel([2]int{2, 1}, [2]int{4, 3})) {
		t.Fatal("inverse wrong")
	}
	if !r.Inverse().Inverse().Equal(r) {
		t.Fatal("double inverse must be identity")
	}
}

func TestElemSetBasics(t *testing.T) {
	s := NewElemSet(core.Int(1), core.Int(1), core.Str("a"))
	if s.Len() != 2 {
		t.Fatal("dedup failed")
	}
	if !s.Has(core.Str("a")) || s.Has(core.Str("b")) {
		t.Fatal("Has wrong")
	}
	vs := s.Values()
	if len(vs) != 2 || core.Compare(vs[0], vs[1]) >= 0 {
		t.Fatal("Values must be sorted")
	}
}

// TestCSTXSTImageAgreement is the compatibility claim: the CST image and
// the XST image agree on classical operands, across randomized relations.
func TestCSTXSTImageAgreement(t *testing.T) {
	r := xtest.NewRand(0xC57)
	for trial := 0; trial < 300; trial++ {
		var ps []Pair
		n := r.Intn(10)
		for i := 0; i < n; i++ {
			ps = append(ps, Pair{X: core.Int(r.Intn(5)), Y: core.Int(r.Intn(5))})
		}
		rel := NewRelation(ps...)
		var as []core.Value
		for i := 0; i < r.Intn(4); i++ {
			as = append(as, core.Int(r.Intn(6)))
		}
		a := NewElemSet(as...)

		want := rel.Image(a)
		xstOut := algebra.Image(rel.ToXST(), ElemsToXST(a), algebra.StdSigma())
		got, ok := XSTToElems(xstOut)
		if !ok {
			t.Fatalf("trial %d: XST image not classical: %v", trial, xstOut)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d: CST %v vs XST %v (R=%v A=%v)",
				trial, want.Values(), got.Values(), rel.Pairs(), a.Values())
		}
	}
}

// TestCSTXSTRelProductAgreement cross-checks the classical relative
// product against the XST §10 case-1 parameterization.
func TestCSTXSTRelProductAgreement(t *testing.T) {
	r := xtest.NewRand(0xC58)
	for trial := 0; trial < 200; trial++ {
		mk := func() *Relation {
			var ps []Pair
			for i := 0; i < r.Intn(8); i++ {
				ps = append(ps, Pair{X: core.Int(r.Intn(4)), Y: core.Int(r.Intn(4))})
			}
			return NewRelation(ps...)
		}
		f, g := mk(), mk()
		want := f.RelProduct(g).ToXST()
		got := algebra.CSTRelativeProduct(f.ToXST(), g.ToXST())
		if !core.Equal(got, want) {
			t.Fatalf("trial %d: CST %v vs XST %v", trial, want, got)
		}
	}
}

func TestXSTToElemsRejectsNonClassical(t *testing.T) {
	bad := core.NewSet(core.M(core.Tuple(core.Int(1)), core.Int(9)))
	if _, ok := XSTToElems(bad); ok {
		t.Fatal("scoped member must be rejected")
	}
	bad2 := core.S(core.Pair(core.Int(1), core.Int(2)))
	if _, ok := XSTToElems(bad2); ok {
		t.Fatal("2-tuple member must be rejected")
	}
}
