package index

import "xst/internal/store"

// HashIndex is a point-access index from encoded keys to RID postings.
// A committed index may carry delta layers (see WithInserts): reads
// consult the base chain then the local map, so published versions stay
// immutable while commits stack incremental inserts on top.
type HashIndex struct {
	m     map[string][]store.RID
	base  *HashIndex // committed layer underneath, nil when flat
	depth int        // delta layers below this one
	size  int        // distinct keys across the chain (layered only)
}

// NewHashIndex returns an empty hash index.
func NewHashIndex() *HashIndex {
	return &HashIndex{m: map[string][]store.RID{}}
}

// Insert adds rid under key.
func (h *HashIndex) Insert(key string, rid store.RID) {
	h.m[key] = append(h.m[key], rid)
}

// Lookup returns the postings for key (nil if absent). On a layered
// index the base postings come first, then the delta's.
func (h *HashIndex) Lookup(key string) []store.RID {
	if h.base == nil {
		return h.m[key]
	}
	b := h.base.Lookup(key)
	d := h.m[key]
	switch {
	case len(d) == 0:
		return b
	case len(b) == 0:
		return d
	}
	out := make([]store.RID, 0, len(b)+len(d))
	return append(append(out, b...), d...)
}

// Len returns the number of distinct keys.
func (h *HashIndex) Len() int {
	if h.base == nil {
		return len(h.m)
	}
	return h.size
}

// Delete removes one rid from a posting list; it reports whether the rid
// was present. Only flat (mutable, pre-publication) indexes support it.
func (h *HashIndex) Delete(key string, rid store.RID) bool {
	if h.base != nil {
		panic("index: Delete on a layered (published) hash index")
	}
	ps := h.m[key]
	for i, p := range ps {
		if p == rid {
			h.m[key] = append(ps[:i], ps[i+1:]...)
			if len(h.m[key]) == 0 {
				delete(h.m, key)
			}
			return true
		}
	}
	return false
}
