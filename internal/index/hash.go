package index

import "xst/internal/store"

// HashIndex is a point-access index from encoded keys to RID postings.
type HashIndex struct {
	m map[string][]store.RID
}

// NewHashIndex returns an empty hash index.
func NewHashIndex() *HashIndex {
	return &HashIndex{m: map[string][]store.RID{}}
}

// Insert adds rid under key.
func (h *HashIndex) Insert(key string, rid store.RID) {
	h.m[key] = append(h.m[key], rid)
}

// Lookup returns the postings for key (nil if absent).
func (h *HashIndex) Lookup(key string) []store.RID { return h.m[key] }

// Len returns the number of distinct keys.
func (h *HashIndex) Len() int { return len(h.m) }

// Delete removes one rid from a posting list; it reports whether the rid
// was present.
func (h *HashIndex) Delete(key string, rid store.RID) bool {
	ps := h.m[key]
	for i, p := range ps {
		if p == rid {
			h.m[key] = append(ps[:i], ps[i+1:]...)
			if len(h.m[key]) == 0 {
				delete(h.m, key)
			}
			return true
		}
	}
	return false
}
