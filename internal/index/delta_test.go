package index

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"xst/internal/store"
)

func drid(p, s int) store.RID {
	return store.RID{Page: store.PageID(p), Slot: uint16(s)}
}

// WithInserts must leave the base untouched, answer merged lookups, and
// flatten once the layer budget is spent.
func TestHashWithInserts(t *testing.T) {
	base := NewHashIndex()
	for i := 0; i < 100; i++ {
		base.Insert(fmt.Sprintf("k%03d", i), drid(1, i))
	}
	baseLen := base.Len()

	layered := base.WithInserts([]Entry{
		{Key: "k000", RID: drid(2, 0)}, // existing key: posting grows
		{Key: "new1", RID: drid(2, 1)}, // fresh key
	})
	if base.Len() != baseLen || len(base.Lookup("k000")) != 1 || base.Lookup("new1") != nil {
		t.Fatal("WithInserts mutated the base index")
	}
	if got := layered.Lookup("k000"); len(got) != 2 || got[0] != drid(1, 0) || got[1] != drid(2, 0) {
		t.Fatalf("layered lookup k000 = %v", got)
	}
	if got := layered.Lookup("new1"); len(got) != 1 || got[0] != drid(2, 1) {
		t.Fatalf("layered lookup new1 = %v", got)
	}
	if layered.Len() != baseLen+1 {
		t.Fatalf("layered Len = %d, want %d", layered.Len(), baseLen+1)
	}
	if layered.Depth() != 1 {
		t.Fatalf("Depth = %d, want 1", layered.Depth())
	}

	// Stack layers past the cap: the chain must flatten, and lookups
	// must keep answering every layer's entries in insertion order.
	ix := base
	for round := 0; round < maxDeltaDepth+2; round++ {
		ix = ix.WithInserts([]Entry{{Key: "hot", RID: drid(3, round)}})
	}
	if ix.Depth() > maxDeltaDepth {
		t.Fatalf("Depth = %d, want flattened ≤ %d", ix.Depth(), maxDeltaDepth)
	}
	got := ix.Lookup("hot")
	if len(got) != maxDeltaDepth+2 {
		t.Fatalf("hot postings = %v, want %d entries", got, maxDeltaDepth+2)
	}
	for i, r := range got {
		if r != drid(3, i) {
			t.Fatalf("hot postings out of order: %v", got)
		}
	}
	if got := ix.Lookup("k050"); len(got) != 1 || got[0] != drid(1, 50) {
		t.Fatalf("base key lost through flatten: %v", got)
	}
}

// Inserted must path-copy: the old tree keeps answering the old world
// while the new tree includes the inserts, across leaf and interior
// splits and root splits.
func TestBTreeInserted(t *testing.T) {
	old := NewBTree()
	for i := 0; i < 500; i += 2 { // even keys only
		old.Insert(fmt.Sprintf("k%04d", i), drid(1, i))
	}
	oldLen := old.Len()

	var ents []Entry
	for i := 1; i < 500; i += 2 { // odd keys
		ents = append(ents, Entry{Key: fmt.Sprintf("k%04d", i), RID: drid(2, i)})
	}
	ents = append(ents, Entry{Key: "k0000", RID: drid(2, 0)}) // posting append on shared list
	nw := old.Inserted(ents)

	if old.Len() != oldLen {
		t.Fatalf("old tree Len changed: %d → %d", oldLen, old.Len())
	}
	if got := old.Lookup("k0001"); got != nil {
		t.Fatalf("old tree sees new key: %v", got)
	}
	if got := old.Lookup("k0000"); len(got) != 1 {
		t.Fatalf("old tree posting list mutated: %v", got)
	}
	if nw.Len() != oldLen+len(ents)-1 {
		t.Fatalf("new tree Len = %d, want %d", nw.Len(), oldLen+len(ents)-1)
	}
	if got := nw.Lookup("k0001"); len(got) != 1 || got[0] != drid(2, 1) {
		t.Fatalf("new tree missing inserted key: %v", got)
	}
	if got := nw.Lookup("k0000"); len(got) != 2 || got[1] != drid(2, 0) {
		t.Fatalf("new tree posting append: %v", got)
	}

	// Every key, old and new, must come back in order from Range.
	var keys []string
	nw.Range("", "", func(k string, _ []store.RID) bool {
		keys = append(keys, k)
		return true
	})
	if !sort.StringsAreSorted(keys) {
		t.Fatal("Range out of order after persistent inserts")
	}
	if len(keys) != nw.Len() {
		t.Fatalf("Range visited %d keys, Len says %d", len(keys), nw.Len())
	}
}

// The recursive Range must agree with Keys and honor half-open bounds
// on both the mutable and the persistent tree.
func TestBTreeRangeBounds(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 300; i++ {
		bt.Insert(fmt.Sprintf("k%03d", i), drid(1, i))
	}
	nw := bt.Inserted([]Entry{{Key: "k999", RID: drid(2, 0)}})
	for _, tr := range []*BTree{bt, nw} {
		var got []string
		tr.Range("k100", "k110", func(k string, _ []store.RID) bool {
			got = append(got, k)
			return true
		})
		want := []string{"k100", "k101", "k102", "k103", "k104", "k105", "k106", "k107", "k108", "k109"}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Range[k100,k110) = %v", got)
		}
		// Early stop must hold.
		n := 0
		tr.Range("", "", func(string, []store.RID) bool {
			n++
			return n < 5
		})
		if n != 5 {
			t.Fatalf("Range ignored early stop: visited %d", n)
		}
	}
}
