package index

import "xst/internal/store"

// Incremental index maintenance under MVCC. Published index structures
// are immutable — plans compiled against an old planner snapshot keep
// probing them while the catalog publishes successors — so a commit
// cannot Insert into the structure it found. Instead it derives a new
// version that shares almost everything with the old one:
//
//   - HashIndex.WithInserts layers a small delta map over the committed
//     index (reads consult base then delta). Layers cap at
//     maxDeltaDepth; past that the chain is flattened into one map so
//     lookup cost stays O(depth cap), amortized by the flatten.
//   - BTree.Inserted path-copies: each insert clones only the root-to-
//     leaf path (and the touched posting list), leaving every other
//     subtree shared with the committed tree.
//
// Either way the committed structure is never written, so concurrent
// readers need no locks — the same copy-on-write discipline the buffer
// pool applies to page images.

// Entry is one (key, rid) pair staged for incremental maintenance.
type Entry struct {
	Key string
	RID store.RID
}

// maxDeltaDepth bounds how many delta layers may stack on a hash index
// before WithInserts flattens the chain.
const maxDeltaDepth = 4

// WithInserts returns a new index equal to h plus the entries, without
// modifying h. The result layers a delta over h, or flattens the whole
// chain when the layer budget is spent.
func (h *HashIndex) WithInserts(entries []Entry) *HashIndex {
	if h.depth >= maxDeltaDepth {
		return h.flattenWith(entries)
	}
	nw := &HashIndex{m: make(map[string][]store.RID, len(entries)), base: h, depth: h.depth + 1}
	for _, e := range entries {
		nw.m[e.Key] = append(nw.m[e.Key], e.RID)
	}
	nw.size = h.Len()
	for k := range nw.m {
		if h.Lookup(k) == nil {
			nw.size++
		}
	}
	return nw
}

// flattenWith merges the whole delta chain plus entries into one flat
// index (base-first, so posting order matches insertion order).
func (h *HashIndex) flattenWith(entries []Entry) *HashIndex {
	var chain []*HashIndex
	for n := h; n != nil; n = n.base {
		chain = append(chain, n)
	}
	nw := NewHashIndex()
	for i := len(chain) - 1; i >= 0; i-- {
		for k, ps := range chain[i].m {
			nw.m[k] = append(nw.m[k], ps...)
		}
	}
	for _, e := range entries {
		nw.m[e.Key] = append(nw.m[e.Key], e.RID)
	}
	return nw
}

// Depth reports the delta-layer depth (0 for a flat index; tests).
func (h *HashIndex) Depth() int { return h.depth }

// Inserted returns a new tree equal to t plus the entries, without
// modifying t: inserts path-copy from the root down, so the two trees
// share every untouched subtree and posting list.
func (t *BTree) Inserted(entries []Entry) *BTree {
	nt := &BTree{root: t.root, size: t.size}
	for _, e := range entries {
		root, mid, right := nt.root.insertCopy(e.Key, e.RID, nt)
		if right != nil {
			root = &btNode{keys: []string{mid}, children: []*btNode{root, right}}
		}
		nt.root = root
	}
	return nt
}

// clone shallow-copies a node: fresh key/val/child slices, shared
// posting lists and subtrees.
func (n *btNode) clone() *btNode {
	c := &btNode{leaf: n.leaf, keys: append([]string(nil), n.keys...)}
	if n.leaf {
		c.vals = append([][]store.RID(nil), n.vals...)
	} else {
		c.children = append([]*btNode(nil), n.children...)
	}
	return c
}

// insertCopy is btNode.insert in persistent form: it returns the
// replacement for n (a path copy) plus split information. Posting-list
// appends copy the list first — the backing array is shared with the
// committed tree.
func (n *btNode) insertCopy(key string, rid store.RID, t *BTree) (*btNode, string, *btNode) {
	c := n.clone()
	if c.leaf {
		i := lowerBound(c.keys, key)
		if i < len(c.keys) && c.keys[i] == key {
			ps := make([]store.RID, len(c.vals[i])+1)
			copy(ps, c.vals[i])
			ps[len(ps)-1] = rid
			c.vals[i] = ps
			return c, "", nil
		}
		c.keys = append(c.keys, "")
		copy(c.keys[i+1:], c.keys[i:])
		c.keys[i] = key
		c.vals = append(c.vals, nil)
		copy(c.vals[i+1:], c.vals[i:])
		c.vals[i] = []store.RID{rid}
		t.size++
		if len(c.keys) <= btreeOrder {
			return c, "", nil
		}
		mid := len(c.keys) / 2
		right := &btNode{
			leaf: true,
			keys: append([]string(nil), c.keys[mid:]...),
			vals: append([][]store.RID(nil), c.vals[mid:]...),
		}
		c.keys = c.keys[:mid]
		c.vals = c.vals[:mid]
		return c, right.keys[0], right
	}
	i := lowerBound(c.keys, key)
	if i < len(c.keys) && c.keys[i] == key {
		i++
	}
	child, midKey, right := c.children[i].insertCopy(key, rid, t)
	c.children[i] = child
	if right == nil {
		return c, "", nil
	}
	c.keys = append(c.keys, "")
	copy(c.keys[i+1:], c.keys[i:])
	c.keys[i] = midKey
	c.children = append(c.children, nil)
	copy(c.children[i+2:], c.children[i+1:])
	c.children[i+1] = right
	if len(c.keys) <= btreeOrder {
		return c, "", nil
	}
	mid := len(c.keys) / 2
	sep := c.keys[mid]
	r := &btNode{
		keys:     append([]string(nil), c.keys[mid+1:]...),
		children: append([]*btNode(nil), c.children[mid+1:]...),
	}
	c.keys = c.keys[:mid]
	c.children = c.children[:mid+1]
	return c, sep, r
}
