// Package index provides the prestructured access paths the paper's
// performance discussion contrasts with dynamic set restructuring: an
// in-memory B+tree for ordered/range access and a hash index for point
// access. Keys are canonical value encodings (core.Key), values are
// record ids. Experiment E10 compares lookup mixes through these indexes
// against XSP restructure-then-scan plans.
package index

import "xst/internal/store"

// btreeOrder is the maximum number of keys per node.
const btreeOrder = 64

// BTree is an in-memory B+tree from string keys to RID postings.
type BTree struct {
	root *btNode
	size int
}

type btNode struct {
	leaf     bool
	keys     []string
	children []*btNode     // interior: len(keys)+1
	vals     [][]store.RID // leaf: parallel to keys
}

// NewBTree returns an empty tree.
func NewBTree() *BTree {
	return &BTree{root: &btNode{leaf: true}}
}

// Len returns the number of distinct keys.
func (t *BTree) Len() int { return t.size }

// Insert adds rid under key (duplicates append to the posting list).
func (t *BTree) Insert(key string, rid store.RID) {
	mid, right := t.root.insert(key, rid, t)
	if right != nil {
		t.root = &btNode{
			keys:     []string{mid},
			children: []*btNode{t.root, right},
		}
	}
}

// lowerBound returns the first index i with keys[i] >= key.
func lowerBound(keys []string, key string) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		m := (lo + hi) / 2
		if keys[m] < key {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// insert returns a separator key and new right sibling when this node
// split.
func (n *btNode) insert(key string, rid store.RID, t *BTree) (string, *btNode) {
	if n.leaf {
		i := lowerBound(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			n.vals[i] = append(n.vals[i], rid)
			return "", nil
		}
		n.keys = append(n.keys, "")
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = []store.RID{rid}
		t.size++
		if len(n.keys) <= btreeOrder {
			return "", nil
		}
		// Split leaf.
		mid := len(n.keys) / 2
		right := &btNode{
			leaf: true,
			keys: append([]string(nil), n.keys[mid:]...),
			vals: append([][]store.RID(nil), n.vals[mid:]...),
		}
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		return right.keys[0], right
	}
	i := lowerBound(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		i++
	}
	midKey, right := n.children[i].insert(key, rid, t)
	if right == nil {
		return "", nil
	}
	n.keys = append(n.keys, "")
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = midKey
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
	if len(n.keys) <= btreeOrder {
		return "", nil
	}
	// Split interior.
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	r := &btNode{
		keys:     append([]string(nil), n.keys[mid+1:]...),
		children: append([]*btNode(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return sep, r
}

// Lookup returns the postings for a key (nil if absent).
func (t *BTree) Lookup(key string) []store.RID {
	n := t.root
	for !n.leaf {
		i := lowerBound(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			i++
		}
		n = n.children[i]
	}
	i := lowerBound(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		return n.vals[i]
	}
	return nil
}

// Range visits every (key, postings) with lo <= key < hi in key order,
// stopping early on false. An empty hi means unbounded. The walk is a
// recursive in-order descent rather than a leaf chain: persistent
// (path-copied) trees share subtrees across versions, where sibling
// links would dangle into older versions.
func (t *BTree) Range(lo, hi string, fn func(key string, rids []store.RID) bool) {
	t.root.rangeVisit(lo, hi, fn)
}

// rangeVisit reports whether the walk should continue past n.
func (n *btNode) rangeVisit(lo, hi string, fn func(key string, rids []store.RID) bool) bool {
	if n.leaf {
		for i := lowerBound(n.keys, lo); i < len(n.keys); i++ {
			k := n.keys[i]
			if hi != "" && k >= hi {
				return false
			}
			if !fn(k, n.vals[i]) {
				return false
			}
		}
		return true
	}
	i := lowerBound(n.keys, lo)
	if i < len(n.keys) && n.keys[i] == lo {
		i++
	}
	for ; i < len(n.children); i++ {
		if !n.children[i].rangeVisit(lo, hi, fn) {
			return false
		}
		// The separator right of child i is the next child's first key:
		// stop descending once it reaches hi.
		if i < len(n.keys) && hi != "" && n.keys[i] >= hi {
			return false
		}
	}
	return true
}

// Keys returns every key in order (mainly for tests).
func (t *BTree) Keys() []string {
	var out []string
	t.Range("", "", func(k string, _ []store.RID) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Depth returns the tree height (1 for a lone leaf).
func (t *BTree) Depth() int {
	d := 1
	n := t.root
	for !n.leaf {
		d++
		n = n.children[0]
	}
	return d
}
