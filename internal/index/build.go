package index

import (
	"context"
	"fmt"

	"xst/internal/core"
	"xst/internal/store"
	"xst/internal/table"
)

// buildPollEvery bounds how many rows a build walks between ctx polls.
const buildPollEvery = 256

// BuildHash scans the table once and indexes column col under its
// exact-match encoding (core.Key). The returned index answers point
// lookups only; any value kind is indexable.
func BuildHash(ctx context.Context, t *table.Table, col int) (*HashIndex, error) {
	if err := checkCol(t, col); err != nil {
		return nil, err
	}
	idx := NewHashIndex()
	steps := 0
	err := t.Scan(func(rid store.RID, r table.Row) (bool, error) {
		steps++
		if steps%buildPollEvery == 0 && ctx.Err() != nil {
			return false, ctx.Err()
		}
		idx.Insert(core.Key(r[col]), rid)
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return idx, nil
}

// BuildBTree scans the table once and indexes column col under its
// order-preserving encoding (core.OrderKey). Only atoms order-encode,
// so rows whose column holds a non-atom value make the build fail —
// a btree over such a column would silently miss rows on range scans.
func BuildBTree(ctx context.Context, t *table.Table, col int) (*BTree, error) {
	if err := checkCol(t, col); err != nil {
		return nil, err
	}
	idx := NewBTree()
	steps := 0
	err := t.Scan(func(rid store.RID, r table.Row) (bool, error) {
		steps++
		if steps%buildPollEvery == 0 && ctx.Err() != nil {
			return false, ctx.Err()
		}
		if _, ok := core.AtomKeyOf(r[col]); !ok {
			return false, fmt.Errorf("index: column %q holds non-atom %v; btree needs atoms",
				t.Schema().Cols[col], r[col])
		}
		idx.Insert(core.OrderKey(r[col]), rid)
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return idx, nil
}

func checkCol(t *table.Table, col int) error {
	if col < 0 || col >= t.Schema().Arity() {
		return fmt.Errorf("index: column %d out of range for %s", col, t.Schema().Name)
	}
	return nil
}
