package index

import (
	"fmt"
	"sort"
	"testing"

	"xst/internal/store"
	"xst/internal/xtest"
)

func rid(n int) store.RID { return store.RID{Page: store.PageID(n / 100), Slot: uint16(n % 100)} }

func key(n int) string { return fmt.Sprintf("k%06d", n) }

func TestBTreeInsertLookup(t *testing.T) {
	bt := NewBTree()
	const n = 5000
	perm := xtest.NewRand(1)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := n - 1; i > 0; i-- { // Fisher-Yates with deterministic PRNG
		j := perm.Intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	for _, i := range order {
		bt.Insert(key(i), rid(i))
	}
	if bt.Len() != n {
		t.Fatalf("Len = %d", bt.Len())
	}
	for i := 0; i < n; i += 37 {
		got := bt.Lookup(key(i))
		if len(got) != 1 || got[0] != rid(i) {
			t.Fatalf("Lookup(%d) = %v", i, got)
		}
	}
	if bt.Lookup("absent") != nil {
		t.Fatal("absent key must be nil")
	}
	if bt.Depth() < 2 {
		t.Fatal("5000 keys must split the root")
	}
}

func TestBTreeDuplicatePostings(t *testing.T) {
	bt := NewBTree()
	bt.Insert("dup", rid(1))
	bt.Insert("dup", rid(2))
	bt.Insert("dup", rid(3))
	if got := bt.Lookup("dup"); len(got) != 3 {
		t.Fatalf("postings = %v", got)
	}
	if bt.Len() != 1 {
		t.Fatal("duplicate keys count once")
	}
}

func TestBTreeKeysSorted(t *testing.T) {
	bt := NewBTree()
	r := xtest.NewRand(2)
	inserted := map[string]bool{}
	for i := 0; i < 2000; i++ {
		k := key(r.Intn(500))
		inserted[k] = true
		bt.Insert(k, rid(i))
	}
	keys := bt.Keys()
	if len(keys) != len(inserted) {
		t.Fatalf("keys = %d, want %d", len(keys), len(inserted))
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatal("keys out of order")
	}
}

func TestBTreeRange(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 1000; i++ {
		bt.Insert(key(i), rid(i))
	}
	var got []string
	bt.Range(key(100), key(110), func(k string, _ []store.RID) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 10 || got[0] != key(100) || got[9] != key(109) {
		t.Fatalf("range = %v", got)
	}
	// Unbounded hi.
	cnt := 0
	bt.Range(key(990), "", func(string, []store.RID) bool { cnt++; return true })
	if cnt != 10 {
		t.Fatalf("unbounded range = %d", cnt)
	}
	// Early stop.
	cnt = 0
	bt.Range("", "", func(string, []store.RID) bool { cnt++; return cnt < 5 })
	if cnt != 5 {
		t.Fatal("early stop failed")
	}
	// Range starting between keys.
	got = nil
	bt.Range(key(100)+"!", key(102), func(k string, _ []store.RID) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 1 || got[0] != key(101) {
		t.Fatalf("between-keys range = %v", got)
	}
}

func TestBTreeSequentialAndReverseInsert(t *testing.T) {
	for name, step := range map[string]int{"asc": 1, "desc": -1} {
		bt := NewBTree()
		start := 0
		if step < 0 {
			start = 2999
		}
		for i := 0; i < 3000; i++ {
			bt.Insert(key(start+step*i), rid(i))
		}
		if bt.Len() != 3000 {
			t.Fatalf("%s: Len = %d", name, bt.Len())
		}
		if !sort.StringsAreSorted(bt.Keys()) {
			t.Fatalf("%s: unsorted", name)
		}
	}
}

func TestHashIndex(t *testing.T) {
	h := NewHashIndex()
	h.Insert("a", rid(1))
	h.Insert("a", rid(2))
	h.Insert("b", rid(3))
	if got := h.Lookup("a"); len(got) != 2 {
		t.Fatalf("Lookup(a) = %v", got)
	}
	if h.Len() != 2 {
		t.Fatal("Len wrong")
	}
	if !h.Delete("a", rid(1)) {
		t.Fatal("delete failed")
	}
	if h.Delete("a", rid(99)) {
		t.Fatal("deleting absent rid must fail")
	}
	if got := h.Lookup("a"); len(got) != 1 || got[0] != rid(2) {
		t.Fatalf("after delete = %v", got)
	}
	h.Delete("a", rid(2))
	if h.Len() != 1 {
		t.Fatal("empty posting must drop the key")
	}
}

func TestBTreeHashAgree(t *testing.T) {
	bt, h := NewBTree(), NewHashIndex()
	r := xtest.NewRand(3)
	for i := 0; i < 3000; i++ {
		k := key(r.Intn(700))
		bt.Insert(k, rid(i))
		h.Insert(k, rid(i))
	}
	for i := 0; i < 700; i++ {
		a, b := bt.Lookup(key(i)), h.Lookup(key(i))
		if len(a) != len(b) {
			t.Fatalf("key %d: btree %d vs hash %d postings", i, len(a), len(b))
		}
	}
}
