package store

import (
	"sync"
	"sync/atomic"
	"testing"
)

// Concurrency audit of the buffer pool (the parallel scan's shared
// substrate). The pool keeps ONE latch: Get/Unpin/evict all serialize
// on bp.mu, and eviction only ever takes unpinned LRU frames, so a
// pinned reader can never have its page stolen. Frame data is written
// once, under the latch, before the frame becomes visible in bp.frames;
// readers therefore see complete pages without holding the latch.
// These tests pin that down under -race; BenchmarkBufferPoolParallelGet
// measures the latch. Sharding the latch stays off the table until that
// benchmark shows contention dominating (with MemPager a page read is
// one memcpy, so the critical section is already tiny).

// fillPages allocates n pages, each stamped with a pattern derived from
// its id, and returns their ids.
func fillPages(t testing.TB, p Pager, n int) []PageID {
	t.Helper()
	ids := make([]PageID, n)
	buf := make([]byte, PageSize)
	for i := range ids {
		id, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		for j := range buf {
			buf[j] = byte(uint32(id) * 131)
		}
		if err := p.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	return ids
}

// TestBufferPoolConcurrentReaders: many readers over many pages through
// a pool far smaller than the page set, so hits, misses, and evictions
// all interleave. Every read must observe the page's own pattern, and
// no pins may leak.
func TestBufferPoolConcurrentReaders(t *testing.T) {
	pager := NewMemPager()
	ids := fillPages(t, pager, 64)
	pool := NewBufferPool(pager, 8)

	const readers = 8
	const reads = 400
	var wg sync.WaitGroup
	errc := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				id := ids[(seed*31+i*7)%len(ids)]
				f, err := pool.Get(id)
				if err != nil {
					errc <- err
					return
				}
				want := byte(uint32(id) * 131)
				data := f.Data()
				if data[0] != want || data[PageSize-1] != want {
					f.Unpin()
					errc <- errBadPage(id)
					return
				}
				f.Unpin()
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if n := pool.PinnedCount(); n != 0 {
		t.Fatalf("%d frames still pinned after all readers unpinned", n)
	}
	st := pool.Stats()
	if st.Hits+st.Misses != readers*reads {
		t.Fatalf("hits %d + misses %d ≠ %d gets", st.Hits, st.Misses, readers*reads)
	}
	if st.Evictions == 0 {
		t.Fatal("pool never evicted — the test no longer stresses replacement")
	}
}

type errBadPage PageID

func (e errBadPage) Error() string { return "page content mismatch" }

// TestBufferPoolPinUnpinRace hammers one hot page from several
// goroutines while another churns the rest of the pool to keep eviction
// pressure on: the pin counter and LRU membership must stay consistent
// (Unpin panics on any double-unpin the race detector misses).
func TestBufferPoolPinUnpinRace(t *testing.T) {
	pager := NewMemPager()
	ids := fillPages(t, pager, 32)
	pool := NewBufferPool(pager, 4)
	hot := ids[0]

	var stop atomic.Bool
	var readers, churn sync.WaitGroup
	errc := make(chan error, 5)
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 2000; i++ {
				f, err := pool.Get(hot)
				if err != nil {
					errc <- err
					return
				}
				if f.ID() != hot {
					f.Unpin()
					errc <- errBadPage(hot)
					return
				}
				f.Unpin()
			}
		}()
	}
	// Churner: cycles cold pages through the remaining frames until the
	// hot readers finish.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 1; !stop.Load(); i++ {
			f, err := pool.Get(ids[i%(len(ids)-1)+1])
			if err != nil {
				errc <- err
				return
			}
			f.Unpin()
		}
	}()
	readers.Wait()
	stop.Store(true)
	churn.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if n := pool.PinnedCount(); n != 0 {
		t.Fatalf("%d frames still pinned", n)
	}
}

// TestBufferPoolEvictionSkipsPinned: with every frame pinned, Get of a
// new page reports ErrPoolExhausted instead of stealing a pinned frame
// — concurrently, so the error path holds under the latch too.
func TestBufferPoolEvictionSkipsPinned(t *testing.T) {
	pager := NewMemPager()
	ids := fillPages(t, pager, 8)
	pool := NewBufferPool(pager, 4)
	frames := make([]*Frame, 4)
	for i := 0; i < 4; i++ {
		f, err := pool.Get(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = f
	}
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if _, err := pool.Get(ids[4+r%4]); err == nil {
				t.Errorf("Get succeeded with every frame pinned")
			}
		}(r)
	}
	wg.Wait()
	for _, f := range frames {
		want := byte(uint32(f.ID()) * 131)
		if f.Data()[0] != want {
			t.Fatalf("pinned frame %d corrupted under exhaustion pressure", f.ID())
		}
		f.Unpin()
	}
}

// BenchmarkBufferPoolParallelGet measures the single-latch Get path
// under parallel load — the evidence base for the keep-one-latch
// decision (shard only if this shows the latch dominating).
func BenchmarkBufferPoolParallelGet(b *testing.B) {
	pager := NewMemPager()
	ids := fillPages(b, pager, 64)
	pool := NewBufferPool(pager, 64) // all-resident: isolates latch cost
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := ids[int(ctr.Add(1))%len(ids)]
			f, err := pool.Get(id)
			if err != nil {
				b.Fatal(err)
			}
			f.Unpin()
		}
	})
}
