package store

import "encoding/binary"

// SlottedPage lays out variable-length records inside one page:
//
//	header (10 bytes): numSlots u16 | freeStart u16 | freeEnd u16 | next u32
//	slot directory:    numSlots × (offset u16 | length u16), growing up
//	record cells:      growing down from the page end
//
// A deleted record keeps its slot with offset 0xFFFF so record ids stay
// stable. The next field chains heap-file pages.
type SlottedPage []byte

const (
	pageHeaderSize = 10
	slotSize       = 4
	deletedOffset  = 0xFFFF
)

// InitPage formats buf as an empty slotted page.
func InitPage(buf []byte) {
	for i := range buf[:pageHeaderSize] {
		buf[i] = 0
	}
	p := SlottedPage(buf)
	p.setFreeStart(pageHeaderSize)
	p.setFreeEnd(uint16(len(buf)))
	p.SetNext(InvalidPage)
}

func (p SlottedPage) numSlots() uint16      { return binary.LittleEndian.Uint16(p[0:]) }
func (p SlottedPage) setNumSlots(n uint16)  { binary.LittleEndian.PutUint16(p[0:], n) }
func (p SlottedPage) freeStart() uint16     { return binary.LittleEndian.Uint16(p[2:]) }
func (p SlottedPage) setFreeStart(v uint16) { binary.LittleEndian.PutUint16(p[2:], v) }
func (p SlottedPage) freeEnd() uint16       { return binary.LittleEndian.Uint16(p[4:]) }
func (p SlottedPage) setFreeEnd(v uint16)   { binary.LittleEndian.PutUint16(p[4:], v) }

// Next returns the chained page id.
func (p SlottedPage) Next() PageID { return PageID(binary.LittleEndian.Uint32(p[6:])) }

// SetNext sets the chained page id.
func (p SlottedPage) SetNext(id PageID) { binary.LittleEndian.PutUint32(p[6:], uint32(id)) }

// NumSlots reports the slot-directory size (including deleted slots).
func (p SlottedPage) NumSlots() int { return int(p.numSlots()) }

// FreeSpace reports the bytes available for one more record (including
// its slot entry).
func (p SlottedPage) FreeSpace() int {
	free := int(p.freeEnd()) - int(p.freeStart()) - slotSize
	if free < 0 {
		return 0
	}
	return free
}

func (p SlottedPage) slot(i int) (off, ln uint16) {
	base := pageHeaderSize + i*slotSize
	return binary.LittleEndian.Uint16(p[base:]), binary.LittleEndian.Uint16(p[base+2:])
}

func (p SlottedPage) setSlot(i int, off, ln uint16) {
	base := pageHeaderSize + i*slotSize
	binary.LittleEndian.PutUint16(p[base:], off)
	binary.LittleEndian.PutUint16(p[base+2:], ln)
}

// Insert stores rec and returns its slot index, or ok=false when the
// page lacks space. Records longer than the page payload are rejected.
func (p SlottedPage) Insert(rec []byte) (int, bool) {
	if len(rec) > p.FreeSpace() {
		return 0, false
	}
	slot := int(p.numSlots())
	end := p.freeEnd() - uint16(len(rec))
	copy(p[end:], rec)
	p.setSlot(slot, end, uint16(len(rec)))
	p.setNumSlots(uint16(slot + 1))
	p.setFreeStart(uint16(pageHeaderSize + (slot+1)*slotSize))
	p.setFreeEnd(end)
	return slot, true
}

// Get returns the record in a slot. The returned bytes alias the page;
// callers must copy before unpinning. ok is false for deleted or
// out-of-range slots.
func (p SlottedPage) Get(slot int) ([]byte, bool) {
	if slot < 0 || slot >= p.NumSlots() {
		return nil, false
	}
	off, ln := p.slot(slot)
	if off == deletedOffset {
		return nil, false
	}
	return p[off : off+ln], true
}

// Delete tombstones a slot. It reports whether a live record was removed.
// Space is not compacted; ids stay stable.
func (p SlottedPage) Delete(slot int) bool {
	if slot < 0 || slot >= p.NumSlots() {
		return false
	}
	off, _ := p.slot(slot)
	if off == deletedOffset {
		return false
	}
	p.setSlot(slot, deletedOffset, 0)
	return true
}

// Each calls fn with every live record in slot order, stopping early on
// false.
func (p SlottedPage) Each(fn func(slot int, rec []byte) bool) {
	n := p.NumSlots()
	for i := 0; i < n; i++ {
		if rec, ok := p.Get(i); ok {
			if !fn(i, rec) {
				return
			}
		}
	}
}
