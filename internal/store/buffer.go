package store

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Stats counts buffer-pool activity. The set-vs-record experiments read
// these counters to compare page-touch behavior.
type Stats struct {
	Hits      uint64 // page found in pool
	Misses    uint64 // page read from the pager
	Evictions uint64 // frames reclaimed
	Writes    uint64 // dirty pages written back
}

// ErrPoolExhausted reports that every frame is pinned.
var ErrPoolExhausted = errors.New("store: buffer pool exhausted (all frames pinned)")

// Frame is a pinned page in the pool. Callers must Unpin when done and
// MarkDirty after mutating Data.
type Frame struct {
	id    PageID
	data  []byte
	pins  int
	dirty bool
	elem  *list.Element // position in LRU list when unpinned
	pool  *BufferPool
}

// ID returns the page id held by the frame.
func (f *Frame) ID() PageID { return f.id }

// Data returns the page bytes. Valid while the frame is pinned. The
// read is synchronized because a transaction commit replaces the slice
// (pointer swap) rather than mutating it in place; holders of the
// returned slice keep reading the image they resolved.
func (f *Frame) Data() []byte {
	f.pool.mu.Lock()
	d := f.data
	f.pool.mu.Unlock()
	return d
}

// MarkDirty records that the page must be written back before eviction.
func (f *Frame) MarkDirty() {
	f.pool.mu.Lock()
	f.dirty = true
	f.pool.mu.Unlock()
}

// Unpin releases one pin. Unpinned frames become eviction candidates.
func (f *Frame) Unpin() {
	f.pool.mu.Lock()
	defer f.pool.mu.Unlock()
	if f.pins <= 0 {
		panic("store: Unpin of unpinned frame")
	}
	f.pins--
	if f.pins == 0 {
		f.elem = f.pool.lru.PushBack(f)
	}
}

// BufferPool caches pages over a pager with LRU replacement. It also
// carries the MVCC state (see view.go): the commit epoch, refcounts of
// epochs pinned by active Views, and superseded page images retained
// for them.
type BufferPool struct {
	mu     sync.Mutex
	pager  Pager
	frames map[PageID]*Frame
	lru    *list.List // unpinned frames, front = oldest
	cap    int
	stats  Stats

	epoch    uint64                   // last committed epoch
	active   map[uint64]int           // epoch → pinned-view count
	versions map[PageID][]pageVersion // superseded images, ascending super

	// MVCC health telemetry (view.go): when each active epoch was first
	// pinned, how many superseded images pruning has dropped over the
	// pool's lifetime, and an optional per-prune observation hook.
	pinnedAt  map[uint64]time.Time
	reclaimed uint64
	onPrune   func(images int)
}

// NewBufferPool builds a pool with the given frame capacity (≥ 1).
func NewBufferPool(p Pager, frames int) *BufferPool {
	if frames < 1 {
		panic("store: buffer pool needs at least one frame")
	}
	return &BufferPool{
		pager:    p,
		frames:   make(map[PageID]*Frame, frames),
		lru:      list.New(),
		cap:      frames,
		active:   map[uint64]int{},
		versions: map[PageID][]pageVersion{},
		pinnedAt: map[uint64]time.Time{},
	}
}

// Stats returns a snapshot of the counters.
func (bp *BufferPool) Stats() Stats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// ResetStats zeroes the counters (between experiment phases).
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	bp.stats = Stats{}
	bp.mu.Unlock()
}

// Get pins the page into the pool, reading it from the pager on a miss.
func (bp *BufferPool) Get(id PageID) (*Frame, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.getLocked(id)
}

// getLocked is Get with bp.mu already held (shared with View.Page).
func (bp *BufferPool) getLocked(id PageID) (*Frame, error) {
	if f, ok := bp.frames[id]; ok {
		bp.stats.Hits++
		if f.pins == 0 {
			bp.lru.Remove(f.elem)
			f.elem = nil
		}
		f.pins++
		return f, nil
	}
	bp.stats.Misses++
	if len(bp.frames) >= bp.cap {
		if err := bp.evictLocked(); err != nil {
			return nil, err
		}
	}
	f := &Frame{id: id, data: make([]byte, PageSize), pins: 1, pool: bp}
	if err := bp.pager.ReadPage(id, f.data); err != nil {
		return nil, err
	}
	bp.frames[id] = f
	return f, nil
}

// Allocate creates a fresh page and returns it pinned.
func (bp *BufferPool) Allocate() (*Frame, error) {
	id, err := bp.pager.Allocate()
	if err != nil {
		return nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if len(bp.frames) >= bp.cap {
		if err := bp.evictLocked(); err != nil {
			return nil, err
		}
	}
	f := &Frame{id: id, data: make([]byte, PageSize), pins: 1, pool: bp}
	bp.frames[id] = f
	return f, nil
}

func (bp *BufferPool) evictLocked() error {
	front := bp.lru.Front()
	if front == nil {
		return ErrPoolExhausted
	}
	victim := front.Value.(*Frame)
	bp.lru.Remove(front)
	victim.elem = nil
	if victim.dirty {
		if err := bp.pager.WritePage(victim.id, victim.data); err != nil {
			return err
		}
		bp.stats.Writes++
	}
	delete(bp.frames, victim.id)
	bp.stats.Evictions++
	return nil
}

// FlushAll writes every dirty frame back to the pager. Pinned frames are
// flushed but stay resident.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, f := range bp.frames {
		if !f.dirty {
			continue
		}
		if err := bp.pager.WritePage(f.id, f.data); err != nil {
			return err
		}
		f.dirty = false
		bp.stats.Writes++
	}
	return nil
}

// PinnedCount reports how many frames are currently pinned (for tests
// and leak checks).
func (bp *BufferPool) PinnedCount() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	n := 0
	for _, f := range bp.frames {
		if f.pins > 0 {
			n++
		}
	}
	return n
}

func (bp *BufferPool) String() string {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return fmt.Sprintf("pool{frames=%d/%d hits=%d misses=%d evictions=%d writes=%d}",
		len(bp.frames), bp.cap, bp.stats.Hits, bp.stats.Misses, bp.stats.Evictions, bp.stats.Writes)
}
