package store

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

func TestMemPagerBasics(t *testing.T) {
	p := NewMemPager()
	id, err := p.Allocate()
	if err != nil || id != 0 {
		t.Fatalf("Allocate = %d, %v", id, err)
	}
	buf := make([]byte, PageSize)
	buf[0] = 0xAB
	if err := p.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := p.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAB {
		t.Fatal("read back wrong")
	}
	if p.NumPages() != 1 {
		t.Fatal("NumPages wrong")
	}
	if err := p.ReadPage(9, got); err == nil {
		t.Fatal("out-of-bounds read must fail")
	}
	if err := p.WritePage(9, got); err == nil {
		t.Fatal("out-of-bounds write must fail")
	}
}

func TestFilePagerPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	p, err := OpenFilePager(path)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := p.Allocate()
	buf := make([]byte, PageSize)
	copy(buf, "persisted")
	if err := p.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := OpenFilePager(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.NumPages() != 1 {
		t.Fatalf("NumPages after reopen = %d", p2.NumPages())
	}
	got := make([]byte, PageSize)
	if err := p2.ReadPage(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("persisted")) {
		t.Fatal("persistence failed")
	}
}

func TestSlottedPageInsertGetDelete(t *testing.T) {
	buf := make([]byte, PageSize)
	InitPage(buf)
	p := SlottedPage(buf)

	s1, ok := p.Insert([]byte("alpha"))
	if !ok {
		t.Fatal("insert failed")
	}
	s2, ok := p.Insert([]byte("beta"))
	if !ok || s2 == s1 {
		t.Fatal("second insert failed")
	}
	if rec, ok := p.Get(s1); !ok || string(rec) != "alpha" {
		t.Fatalf("Get(s1) = %q, %v", rec, ok)
	}
	if rec, ok := p.Get(s2); !ok || string(rec) != "beta" {
		t.Fatalf("Get(s2) = %q, %v", rec, ok)
	}
	if !p.Delete(s1) {
		t.Fatal("delete failed")
	}
	if _, ok := p.Get(s1); ok {
		t.Fatal("deleted slot must not read")
	}
	if p.Delete(s1) {
		t.Fatal("double delete must fail")
	}
	// s2 unaffected, ids stable.
	if rec, _ := p.Get(s2); string(rec) != "beta" {
		t.Fatal("neighbor slot corrupted")
	}
	if _, ok := p.Get(99); ok {
		t.Fatal("out-of-range slot")
	}
}

func TestSlottedPageFillsUp(t *testing.T) {
	buf := make([]byte, PageSize)
	InitPage(buf)
	p := SlottedPage(buf)
	rec := bytes.Repeat([]byte("x"), 100)
	n := 0
	for {
		if _, ok := p.Insert(rec); !ok {
			break
		}
		n++
	}
	// 100-byte records + 4-byte slots into 4086 payload bytes: 39 fit.
	if n != (PageSize-pageHeaderSize)/(100+slotSize) {
		t.Fatalf("packed %d records", n)
	}
	if p.FreeSpace() >= 104 {
		t.Fatal("free space accounting wrong")
	}
}

func TestSlottedPageEach(t *testing.T) {
	buf := make([]byte, PageSize)
	InitPage(buf)
	p := SlottedPage(buf)
	for i := 0; i < 5; i++ {
		p.Insert([]byte{byte(i)})
	}
	p.Delete(2)
	var seen []byte
	p.Each(func(_ int, rec []byte) bool {
		seen = append(seen, rec[0])
		return true
	})
	if !bytes.Equal(seen, []byte{0, 1, 3, 4}) {
		t.Fatalf("Each saw %v", seen)
	}
	n := 0
	p.Each(func(int, []byte) bool { n++; return false })
	if n != 1 {
		t.Fatal("Each must stop early")
	}
}

func TestBufferPoolHitMissEvict(t *testing.T) {
	pager := NewMemPager()
	for i := 0; i < 4; i++ {
		pager.Allocate()
	}
	bp := NewBufferPool(pager, 2)

	f0, err := bp.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	f0.Data()[0] = 7
	f0.MarkDirty()
	f0.Unpin()

	f0b, _ := bp.Get(0) // hit
	if f0b.Data()[0] != 7 {
		t.Fatal("cached data lost")
	}
	f0b.Unpin()

	bp.Get(1) // miss, fills pool (leaked pin on purpose below)
	f1, _ := bp.Get(1)
	f1.Unpin()
	f1.Unpin() // release both pins

	// Touch two more pages to force eviction of page 0 (dirty).
	f2, _ := bp.Get(2)
	f2.Unpin()
	f3, _ := bp.Get(3)
	f3.Unpin()

	st := bp.Stats()
	if st.Hits != 2 || st.Misses != 4 || st.Evictions < 2 || st.Writes < 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Dirty page 0 must have reached the pager.
	buf := make([]byte, PageSize)
	pager.ReadPage(0, buf)
	if buf[0] != 7 {
		t.Fatal("dirty eviction did not write back")
	}
}

func TestBufferPoolExhaustion(t *testing.T) {
	pager := NewMemPager()
	pager.Allocate()
	pager.Allocate()
	bp := NewBufferPool(pager, 1)
	f, err := bp.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bp.Get(1); err == nil {
		t.Fatal("pinned-full pool must refuse")
	}
	f.Unpin()
	if _, err := bp.Get(1); err != nil {
		t.Fatalf("after unpin: %v", err)
	}
}

func TestBufferPoolFlushAll(t *testing.T) {
	pager := NewMemPager()
	bp := NewBufferPool(pager, 4)
	f, _ := bp.Allocate()
	InitPage(f.Data())
	SlottedPage(f.Data()).Insert([]byte("keep"))
	f.MarkDirty()
	f.Unpin()
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	pager.ReadPage(f.ID(), buf)
	if rec, ok := SlottedPage(buf).Get(0); !ok || string(rec) != "keep" {
		t.Fatal("flush lost data")
	}
}

func TestUnpinPanicsWhenUnpinned(t *testing.T) {
	pager := NewMemPager()
	pager.Allocate()
	bp := NewBufferPool(pager, 1)
	f, _ := bp.Get(0)
	f.Unpin()
	defer func() {
		if recover() == nil {
			t.Fatal("double Unpin must panic")
		}
	}()
	f.Unpin()
}

func newTestHeap(t *testing.T, frames int) (*HeapFile, *BufferPool) {
	t.Helper()
	bp := NewBufferPool(NewMemPager(), frames)
	h, err := CreateHeap(bp)
	if err != nil {
		t.Fatal(err)
	}
	return h, bp
}

func TestHeapAppendGetDelete(t *testing.T) {
	h, _ := newTestHeap(t, 8)
	rid1, err := h.Append([]byte("one"))
	if err != nil {
		t.Fatal(err)
	}
	rid2, _ := h.Append([]byte("two"))
	if got, _ := h.Get(rid1); string(got) != "one" {
		t.Fatal("Get rid1 wrong")
	}
	if got, _ := h.Get(rid2); string(got) != "two" {
		t.Fatal("Get rid2 wrong")
	}
	if h.Count() != 2 {
		t.Fatal("Count wrong")
	}
	if err := h.Delete(rid1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(rid1); err == nil {
		t.Fatal("deleted record must not read")
	}
	if err := h.Delete(rid1); err == nil {
		t.Fatal("double delete must fail")
	}
	if h.Count() != 1 {
		t.Fatal("Count after delete wrong")
	}
}

func TestHeapGrowsAcrossPages(t *testing.T) {
	h, _ := newTestHeap(t, 8)
	rec := bytes.Repeat([]byte("r"), 500)
	const n = 50 // 50 × 504 bytes ≫ one page
	var rids []RID
	for i := 0; i < n; i++ {
		r := append([]byte{byte(i)}, rec...)
		rid, err := h.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	pages, err := h.Pages()
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) < 5 {
		t.Fatalf("chain has %d pages, expected several", len(pages))
	}
	for i, rid := range rids {
		got, err := h.Get(rid)
		if err != nil || got[0] != byte(i) {
			t.Fatalf("record %d corrupted: %v", i, err)
		}
	}
}

func TestHeapScanOrderAndEarlyStop(t *testing.T) {
	h, _ := newTestHeap(t, 8)
	for i := 0; i < 10; i++ {
		h.Append([]byte{byte(i)})
	}
	var seen []byte
	if err := h.Scan(func(_ RID, rec []byte) bool {
		seen = append(seen, rec[0])
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if seen[i] != byte(i) {
			t.Fatalf("scan order wrong: %v", seen)
		}
	}
	n := 0
	h.Scan(func(RID, []byte) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatal("early stop failed")
	}
}

func TestHeapScanPages(t *testing.T) {
	h, _ := newTestHeap(t, 8)
	rec := bytes.Repeat([]byte("p"), 900)
	for i := 0; i < 20; i++ {
		h.Append(rec)
	}
	total, calls := 0, 0
	h.ScanPages(func(_ PageID, recs [][]byte) bool {
		calls++
		total += len(recs)
		return true
	})
	if total != 20 {
		t.Fatalf("page scan saw %d records", total)
	}
	if calls >= 20 {
		t.Fatal("page scan must batch records per page")
	}
}

func TestHeapRecordTooLarge(t *testing.T) {
	h, _ := newTestHeap(t, 4)
	if _, err := h.Append(make([]byte, PageSize)); err == nil {
		t.Fatal("oversized record must fail")
	}
}

func TestOpenHeapRecount(t *testing.T) {
	bp := NewBufferPool(NewMemPager(), 8)
	h, _ := CreateHeap(bp)
	var rid RID
	for i := 0; i < 25; i++ {
		r, _ := h.Append(bytes.Repeat([]byte{byte(i)}, 300))
		if i == 3 {
			rid = r
		}
	}
	h.Delete(rid)

	h2, err := OpenHeap(bp, h.FirstPage())
	if err != nil {
		t.Fatal(err)
	}
	if h2.Count() != 24 {
		t.Fatalf("reopened count = %d, want 24", h2.Count())
	}
	// Appends continue on the tail page.
	if _, err := h2.Append([]byte("more")); err != nil {
		t.Fatal(err)
	}
	if h2.Count() != 25 {
		t.Fatal("append after reopen failed")
	}
}

func TestNoPinLeaksAfterOperations(t *testing.T) {
	h, bp := newTestHeap(t, 8)
	for i := 0; i < 40; i++ {
		h.Append(bytes.Repeat([]byte{1}, 200))
	}
	h.Scan(func(RID, []byte) bool { return true })
	h.ScanPages(func(PageID, [][]byte) bool { return true })
	h.Pages()
	if n := bp.PinnedCount(); n != 0 {
		t.Fatalf("%d frames still pinned", n)
	}
}

func TestBufferPoolStatsString(t *testing.T) {
	bp := NewBufferPool(NewMemPager(), 2)
	if s := bp.String(); s == "" {
		t.Fatal("String empty")
	}
	bp.ResetStats()
	if st := bp.Stats(); st != (Stats{}) {
		t.Fatalf("reset failed: %+v", st)
	}
}

func TestHeapStress(t *testing.T) {
	h, bp := newTestHeap(t, 3) // tiny pool forces constant eviction
	var rids []RID
	for i := 0; i < 300; i++ {
		rid, err := h.Append([]byte(fmt.Sprintf("record-%03d-%s", i, bytes.Repeat([]byte("z"), i%50))))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	for i, rid := range rids {
		got, err := h.Get(rid)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !bytes.HasPrefix(got, []byte(fmt.Sprintf("record-%03d", i))) {
			t.Fatalf("record %d corrupted: %q", i, got)
		}
	}
	if bp.PinnedCount() != 0 {
		t.Fatal("pin leak under stress")
	}
}

func TestBufferPoolConcurrentAccess(t *testing.T) {
	pager := NewMemPager()
	const pages = 32
	for i := 0; i < pages; i++ {
		pager.Allocate()
	}
	bp := NewBufferPool(pager, 8)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := PageID((seed*31 + i*7) % pages)
				f, err := bp.Get(id)
				if err != nil {
					errs <- err
					return
				}
				_ = f.Data()[0]
				f.Unpin()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if bp.PinnedCount() != 0 {
		t.Fatal("pins leaked under concurrency")
	}
}
