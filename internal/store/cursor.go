package store

// HeapCursor is a pull-style record cursor over a heap file. Unlike
// Scan, which holds one pin per page while pushing records, the cursor
// pins and unpins the page on *every* Next call — the record-at-a-time
// access discipline whose page-touch cost the set-processing experiments
// measure.
type HeapCursor struct {
	heap *HeapFile
	page PageID
	slot int
	done bool
}

// NewCursor returns a cursor positioned before the first record.
func (h *HeapFile) NewCursor() *HeapCursor {
	return &HeapCursor{heap: h, page: h.first}
}

// Next returns the next live record (copied) and its rid. ok is false at
// the end of the heap.
func (c *HeapCursor) Next() (RID, []byte, bool, error) {
	for !c.done {
		fr, err := c.heap.io.Page(c.page)
		if err != nil {
			return RID{}, nil, false, err
		}
		p := SlottedPage(fr.Data())
		n := p.NumSlots()
		for c.slot < n {
			slot := c.slot
			c.slot++
			if rec, ok := p.Get(slot); ok {
				out := make([]byte, len(rec))
				copy(out, rec)
				fr.Unpin()
				return RID{Page: c.page, Slot: uint16(slot)}, out, true, nil
			}
		}
		next := p.Next()
		fr.Unpin()
		if next == InvalidPage {
			c.done = true
			break
		}
		c.page = next
		c.slot = 0
	}
	return RID{}, nil, false, nil
}

// Reset repositions the cursor at the beginning.
func (c *HeapCursor) Reset() {
	c.page = c.heap.first
	c.slot = 0
	c.done = false
}

// PageCursor is a pull-style page cursor over a heap file: each Next
// call pins one page, hands its live records to fn, and unpins before
// returning — the set-at-a-time access discipline in pull form, so a
// batch-iterator engine can pace the scan instead of being pushed
// through a callback. The record slices passed to fn alias the pinned
// page and must not be retained past fn's return; decode or copy them
// inside fn.
type PageCursor struct {
	heap *HeapFile
	page PageID
}

// NewPageCursor returns a page cursor positioned before the first page.
func (h *HeapFile) NewPageCursor() *PageCursor {
	return &PageCursor{heap: h, page: h.first}
}

// Next visits the next page. It returns false when the chain is
// exhausted. An error from fn stops the cursor and is returned.
func (c *PageCursor) Next(fn func(page PageID, recs [][]byte) error) (bool, error) {
	if c.page == InvalidPage {
		return false, nil
	}
	fr, err := c.heap.io.Page(c.page)
	if err != nil {
		return false, err
	}
	p := SlottedPage(fr.Data())
	var recs [][]byte
	p.Each(func(_ int, rec []byte) bool {
		recs = append(recs, rec)
		return true
	})
	id := c.page
	c.page = p.Next()
	err = fn(id, recs)
	fr.Unpin()
	return true, err
}

// Reset repositions the cursor at the first page.
func (c *PageCursor) Reset() { c.page = c.heap.first }
