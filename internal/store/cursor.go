package store

// HeapCursor is a pull-style record cursor over a heap file. Unlike
// Scan, which holds one pin per page while pushing records, the cursor
// pins and unpins the page on *every* Next call — the record-at-a-time
// access discipline whose page-touch cost the set-processing experiments
// measure.
type HeapCursor struct {
	heap *HeapFile
	page PageID
	slot int
	done bool
}

// NewCursor returns a cursor positioned before the first record.
func (h *HeapFile) NewCursor() *HeapCursor {
	return &HeapCursor{heap: h, page: h.first}
}

// Next returns the next live record (copied) and its rid. ok is false at
// the end of the heap.
func (c *HeapCursor) Next() (RID, []byte, bool, error) {
	for !c.done {
		fr, err := c.heap.pool.Get(c.page)
		if err != nil {
			return RID{}, nil, false, err
		}
		p := SlottedPage(fr.Data())
		n := p.NumSlots()
		for c.slot < n {
			slot := c.slot
			c.slot++
			if rec, ok := p.Get(slot); ok {
				out := make([]byte, len(rec))
				copy(out, rec)
				fr.Unpin()
				return RID{Page: c.page, Slot: uint16(slot)}, out, true, nil
			}
		}
		next := p.Next()
		fr.Unpin()
		if next == InvalidPage {
			c.done = true
			break
		}
		c.page = next
		c.slot = 0
	}
	return RID{}, nil, false, nil
}

// Reset repositions the cursor at the beginning.
func (c *HeapCursor) Reset() {
	c.page = c.heap.first
	c.slot = 0
	c.done = false
}
