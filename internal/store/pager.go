// Package store implements the paged storage substrate beneath the
// extended-set processing engine: fixed-size pages provided by a pager
// (in-memory or file-backed), a buffer pool with LRU replacement and
// pin/unpin accounting, slotted pages holding variable-length records,
// and heap files chaining pages into scannable collections.
//
// The 1977 paper targets very large, distributed, backend stores; this
// package is the laptop-scale simulation of that substrate (see
// DESIGN.md §3). Its purpose in the reproduction is to make page touches
// *observable*: every experiment that compares set-at-a-time against
// record-at-a-time processing reads this package's counters.
package store

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// PageSize is the fixed page size in bytes.
const PageSize = 4096

// PageID identifies a page within a pager.
type PageID uint32

// InvalidPage is the nil page id (page 0 is valid; the invalid marker is
// the all-ones id).
const InvalidPage = PageID(^uint32(0))

// Pager provides raw page storage.
type Pager interface {
	// Allocate appends a zeroed page and returns its id.
	Allocate() (PageID, error)
	// ReadPage fills buf (PageSize bytes) with the page contents.
	ReadPage(id PageID, buf []byte) error
	// WritePage stores buf (PageSize bytes) as the page contents.
	WritePage(id PageID, buf []byte) error
	// NumPages reports how many pages have been allocated.
	NumPages() int
	// Close releases resources.
	Close() error
}

// ErrPageBounds reports access to an unallocated page.
var ErrPageBounds = errors.New("store: page id out of bounds")

// MemPager is an in-memory pager.
type MemPager struct {
	mu    sync.Mutex
	pages [][]byte
}

// NewMemPager returns an empty in-memory pager.
func NewMemPager() *MemPager { return &MemPager{} }

// Allocate implements Pager.
func (m *MemPager) Allocate() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pages = append(m.pages, make([]byte, PageSize))
	return PageID(len(m.pages) - 1), nil
}

// ReadPage implements Pager.
func (m *MemPager) ReadPage(id PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("%w: %d", ErrPageBounds, id)
	}
	copy(buf, m.pages[id])
	return nil
}

// WritePage implements Pager.
func (m *MemPager) WritePage(id PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("%w: %d", ErrPageBounds, id)
	}
	copy(m.pages[id], buf)
	return nil
}

// NumPages implements Pager.
func (m *MemPager) NumPages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pages)
}

// Close implements Pager.
func (m *MemPager) Close() error { return nil }

// FilePager is a file-backed pager.
type FilePager struct {
	mu   sync.Mutex
	f    *os.File
	n    int
	path string
}

// OpenFilePager opens or creates a page file at path.
func OpenFilePager(path string) (*FilePager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("store: %s has partial page (size %d)", path, st.Size())
	}
	return &FilePager{f: f, n: int(st.Size() / PageSize), path: path}, nil
}

// Allocate implements Pager.
func (p *FilePager) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := PageID(p.n)
	zero := make([]byte, PageSize)
	if _, err := p.f.WriteAt(zero, int64(p.n)*PageSize); err != nil {
		return 0, err
	}
	p.n++
	return id, nil
}

// ReadPage implements Pager.
func (p *FilePager) ReadPage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) >= p.n {
		return fmt.Errorf("%w: %d", ErrPageBounds, id)
	}
	_, err := p.f.ReadAt(buf[:PageSize], int64(id)*PageSize)
	return err
}

// WritePage implements Pager.
func (p *FilePager) WritePage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) >= p.n {
		return fmt.Errorf("%w: %d", ErrPageBounds, id)
	}
	_, err := p.f.WriteAt(buf[:PageSize], int64(id)*PageSize)
	return err
}

// NumPages implements Pager.
func (p *FilePager) NumPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

// Sync flushes the file to stable storage.
func (p *FilePager) Sync() error { return p.f.Sync() }

// Close implements Pager.
func (p *FilePager) Close() error { return p.f.Close() }
