package store

import (
	"context"
	"errors"
	"sort"
	"time"
)

// This file is the MVCC face of the buffer pool: a monotonically
// increasing commit epoch, Views that pin an epoch for the lifetime of
// a streaming read, and version-correct page resolution so a scan
// opened before a commit keeps seeing the pre-commit world while
// writers install new epochs concurrently.
//
// The protocol relies on image immutability at commit: CommitPages
// *swaps* each frame's byte slice for the transaction's after-image
// instead of writing into the shared buffer, and parks the superseded
// slice in a version list while any View that could still read it is
// active. A View therefore resolves a page to a concrete []byte under
// the pool mutex once, and that slice is never mutated afterwards.
// (Legacy non-transactional writers mutate frames in place and provide
// no snapshot guarantee; a database driven through catalog
// transactions never does.)

// PageHandle is a reference to one page image: the read/write surface
// shared by pool frames, transaction shadows, and view pages.
type PageHandle interface {
	// ID returns the page id.
	ID() PageID
	// Data returns the page bytes.
	Data() []byte
	// MarkDirty records a mutation (panics on read-only handles).
	MarkDirty()
	// Unpin releases the handle.
	Unpin()
}

// PageIO is a source of page handles: the buffer pool (latest images),
// a wal transaction shadow (uncommitted writes), or an epoch-pinned
// View (snapshot reads). Heap files read and write through it, which
// is what lets one heap implementation serve all three worlds.
type PageIO interface {
	// Page returns a handle on an existing page.
	Page(id PageID) (PageHandle, error)
	// AllocatePage creates a fresh page (read-only sources refuse).
	AllocatePage() (PageHandle, error)
}

// Page implements PageIO for the pool (latest images).
func (bp *BufferPool) Page(id PageID) (PageHandle, error) { return bp.Get(id) }

// AllocatePage implements PageIO for the pool.
func (bp *BufferPool) AllocatePage() (PageHandle, error) { return bp.Allocate() }

// ErrReadOnlyView reports a write through a snapshot view.
var ErrReadOnlyView = errors.New("store: write through a read-only view")

// pageVersion is a superseded page image: valid for views whose epoch
// is below super (and above any earlier version's super).
type pageVersion struct {
	super uint64 // epoch of the commit that replaced this image
	data  []byte
}

// View is a consistent read view of the pool at one commit epoch.
// Pages committed after the view was taken stay invisible; pages it
// resolves are immutable images. Release it when the read finishes so
// superseded images can be dropped.
type View struct {
	bp       *BufferPool
	epoch    uint64
	released bool
}

// NewView pins the current commit epoch and returns its view.
func (bp *BufferPool) NewView() *View {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.active[bp.epoch]++
	if bp.active[bp.epoch] == 1 {
		bp.pinnedAt[bp.epoch] = time.Now()
	}
	return &View{bp: bp, epoch: bp.epoch}
}

// Epoch reports the pool's current commit epoch.
func (bp *BufferPool) Epoch() uint64 {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.epoch
}

// Epoch reports the view's pinned commit epoch.
func (v *View) Epoch() uint64 { return v.epoch }

// Pool returns the buffer pool the view snapshots. Tables over a
// different pool (session scratch tables, federation mirrors) must not
// resolve their pages through this view.
func (v *View) Pool() *BufferPool { return v.bp }

// Release unpins the view's epoch and prunes page versions no active
// view can reach. Releasing twice is a no-op.
func (v *View) Release() {
	if v == nil || v.released {
		return
	}
	v.released = true
	bp := v.bp
	bp.mu.Lock()
	bp.active[v.epoch]--
	if bp.active[v.epoch] <= 0 {
		delete(bp.active, v.epoch)
		delete(bp.pinnedAt, v.epoch)
	}
	reclaimed := bp.pruneVersionsLocked()
	hook := bp.onPrune
	bp.mu.Unlock()
	// The hook runs outside the pool mutex: prune observations feed a
	// metrics histogram and must never extend the lock's critical
	// section.
	if hook != nil && reclaimed > 0 {
		hook(reclaimed)
	}
}

// pruneVersionsLocked drops versions below every active view's epoch
// and returns how many superseded images it reclaimed.
func (bp *BufferPool) pruneVersionsLocked() int {
	if len(bp.versions) == 0 {
		return 0
	}
	reclaimed := 0
	if len(bp.active) == 0 {
		for _, vs := range bp.versions {
			reclaimed += len(vs)
		}
		bp.versions = map[PageID][]pageVersion{}
		bp.reclaimed += uint64(reclaimed)
		return reclaimed
	}
	min := uint64(^uint64(0))
	for e := range bp.active {
		if e < min {
			min = e
		}
	}
	for id, vs := range bp.versions {
		i := 0
		for i < len(vs) && vs[i].super <= min {
			i++
		}
		if i == len(vs) {
			reclaimed += len(vs)
			delete(bp.versions, id)
		} else if i > 0 {
			reclaimed += i
			bp.versions[id] = vs[i:]
		}
	}
	bp.reclaimed += uint64(reclaimed)
	return reclaimed
}

// SetPruneHook installs a per-prune observer called with the number of
// superseded images each version-chain prune reclaims (outside the pool
// mutex). One observer; nil clears it.
func (bp *BufferPool) SetPruneHook(fn func(images int)) {
	bp.mu.Lock()
	bp.onPrune = fn
	bp.mu.Unlock()
}

// EpochPin describes one pinned snapshot epoch: its refcount and when
// its first still-active pin was taken.
type EpochPin struct {
	Epoch uint64
	Refs  int
	Since time.Time
}

// ActivePins reports the pinned snapshot epochs, ascending — the
// `__sys.txns` view's rows.
func (bp *BufferPool) ActivePins() []EpochPin {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	out := make([]EpochPin, 0, len(bp.active))
	for e, refs := range bp.active {
		out = append(out, EpochPin{Epoch: e, Refs: refs, Since: bp.pinnedAt[e]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Epoch < out[j].Epoch })
	return out
}

// OldestPinnedAge reports how long the oldest still-pinned snapshot has
// been held, or 0 with none active — the gauge that exposes long-pinned
// snapshots holding superseded pages alive.
func (bp *BufferPool) OldestPinnedAge() time.Duration {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	var oldest time.Time
	for _, at := range bp.pinnedAt {
		if oldest.IsZero() || at.Before(oldest) {
			oldest = at
		}
	}
	if oldest.IsZero() {
		return 0
	}
	return time.Since(oldest)
}

// SupersededImages reports how many superseded page images the pool
// currently retains for active views (VersionedPages counts pages; a
// page may carry several images).
func (bp *BufferPool) SupersededImages() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	n := 0
	for _, vs := range bp.versions {
		n += len(vs)
	}
	return n
}

// ReclaimedImages reports the lifetime total of superseded images
// dropped by version-chain pruning.
func (bp *BufferPool) ReclaimedImages() uint64 {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.reclaimed
}

// viewPage is a resolved snapshot page: an immutable image captured
// under the pool mutex, plus the pinned frame when the image is the
// frame's current one.
type viewPage struct {
	id   PageID
	data []byte
	fr   *Frame // nil when serving a superseded version
}

func (p *viewPage) ID() PageID   { return p.id }
func (p *viewPage) Data() []byte { return p.data }
func (p *viewPage) MarkDirty()   { panic("store: MarkDirty through a read-only view") }
func (p *viewPage) Unpin() {
	if p.fr != nil {
		p.fr.Unpin()
		p.fr = nil
	}
}

// Page implements PageIO: the page image as of the view's epoch.
func (v *View) Page(id PageID) (PageHandle, error) {
	bp := v.bp
	bp.mu.Lock()
	for _, pv := range bp.versions[id] {
		if pv.super > v.epoch {
			bp.mu.Unlock()
			return &viewPage{id: id, data: pv.data}, nil
		}
	}
	// Current image: pin the frame and capture its slice while the
	// mutex is held, so a concurrent commit's pointer swap cannot slip
	// a newer image under us.
	f, err := bp.getLocked(id)
	if err != nil {
		bp.mu.Unlock()
		return nil, err
	}
	data := f.data
	bp.mu.Unlock()
	return &viewPage{id: id, data: data, fr: f}, nil
}

// AllocatePage implements PageIO: views are read-only.
func (v *View) AllocatePage() (PageHandle, error) { return nil, ErrReadOnlyView }

// CommitPages atomically installs a committed transaction's page
// after-images and advances the commit epoch. Existing pages whose
// current image may still be read by an active view first have that
// image parked in the version list; fresh reports pages allocated by
// the transaction itself, which no older view can reach. Every image
// is also written through to the pager, so the base store is current
// as of the last commit (the write-ahead log protects the fsync gap).
// The pool takes ownership of the image slices. It returns the new
// commit epoch.
func (bp *BufferPool) CommitPages(pages map[PageID][]byte, fresh map[PageID]bool) (uint64, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	next := bp.epoch + 1
	for id, img := range pages {
		if len(bp.active) > 0 && !fresh[id] {
			var old []byte
			if f, ok := bp.frames[id]; ok {
				old = f.data // superseded below; immutable from here on
			} else {
				old = make([]byte, PageSize)
				if err := bp.pager.ReadPage(id, old); err != nil {
					return 0, err
				}
			}
			bp.versions[id] = append(bp.versions[id], pageVersion{super: next, data: old})
		}
		if err := bp.pager.WritePage(id, img); err != nil {
			return 0, err
		}
		bp.stats.Writes++
		if f, ok := bp.frames[id]; ok {
			f.data = img
			f.dirty = false // base just got this image
		}
	}
	bp.epoch = next
	return next, nil
}

// ActiveViews reports how many views are pinned (tests, metrics).
func (bp *BufferPool) ActiveViews() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	n := 0
	for _, c := range bp.active {
		n += c
	}
	return n
}

// VersionedPages reports how many pages carry superseded images
// retained for active views (tests, metrics).
func (bp *BufferPool) VersionedPages() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.versions)
}

// viewKey carries a *View through a context.
type viewKey struct{}

// WithView returns a context carrying the view; operators opened under
// it resolve table pages at the view's epoch.
func WithView(ctx context.Context, v *View) context.Context {
	return context.WithValue(ctx, viewKey{}, v)
}

// ViewFrom returns the context's view, or nil.
func ViewFrom(ctx context.Context) *View {
	v, _ := ctx.Value(viewKey{}).(*View)
	return v
}
