package store

import (
	"errors"
	"fmt"
)

// RID identifies a record inside a heap file.
type RID struct {
	Page PageID
	Slot uint16
}

func (r RID) String() string { return fmt.Sprintf("%d.%d", r.Page, r.Slot) }

// ErrRecordTooLarge reports a record that cannot fit in an empty page.
var ErrRecordTooLarge = errors.New("store: record larger than page payload")

// ErrNoRecord reports a Get/Delete of a missing record.
var ErrNoRecord = errors.New("store: no such record")

// HeapFile is an append-oriented record collection: a chain of slotted
// pages reached through a page source. It is the physical home of
// stored extended sets. The source is usually a buffer pool, but the
// same heap code also runs against a wal transaction shadow
// (uncommitted writes) or an epoch-pinned snapshot view — see WithIO.
type HeapFile struct {
	io    PageIO
	first PageID
	last  PageID
	count int
}

// CreateHeap starts a heap file with one empty page.
func CreateHeap(io PageIO) (*HeapFile, error) {
	f, err := io.AllocatePage()
	if err != nil {
		return nil, err
	}
	InitPage(f.Data())
	f.MarkDirty()
	id := f.ID()
	f.Unpin()
	return &HeapFile{io: io, first: id, last: id}, nil
}

// OpenHeap reattaches to an existing chain headed at first. The record
// count is recomputed by walking the chain.
func OpenHeap(io PageIO, first PageID) (*HeapFile, error) {
	h := &HeapFile{io: io, first: first, last: first}
	id := first
	for id != InvalidPage {
		fr, err := io.Page(id)
		if err != nil {
			return nil, err
		}
		p := SlottedPage(fr.Data())
		p.Each(func(int, []byte) bool { h.count++; return true })
		next := p.Next()
		h.last = id
		fr.Unpin()
		id = next
	}
	return h, nil
}

// FirstPage returns the head page id (persist it to reopen the heap).
func (h *HeapFile) FirstPage() PageID { return h.first }

// Count returns the number of live records.
func (h *HeapFile) Count() int { return h.count }

// Pages walks the chain and returns the page ids in order.
func (h *HeapFile) Pages() ([]PageID, error) {
	var out []PageID
	id := h.first
	for id != InvalidPage {
		out = append(out, id)
		fr, err := h.io.Page(id)
		if err != nil {
			return nil, err
		}
		id = SlottedPage(fr.Data()).Next()
		fr.Unpin()
	}
	return out, nil
}

// Append stores rec at the tail, growing the chain as needed.
func (h *HeapFile) Append(rec []byte) (RID, error) {
	if len(rec) > PageSize-pageHeaderSize-slotSize {
		return RID{}, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(rec))
	}
	fr, err := h.io.Page(h.last)
	if err != nil {
		return RID{}, err
	}
	p := SlottedPage(fr.Data())
	if slot, ok := p.Insert(rec); ok {
		fr.MarkDirty()
		fr.Unpin()
		h.count++
		return RID{Page: h.last, Slot: uint16(slot)}, nil
	}
	// Grow the chain.
	nf, err := h.io.AllocatePage()
	if err != nil {
		fr.Unpin()
		return RID{}, err
	}
	InitPage(nf.Data())
	np := SlottedPage(nf.Data())
	slot, ok := np.Insert(rec)
	if !ok {
		nf.Unpin()
		fr.Unpin()
		return RID{}, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(rec))
	}
	nf.MarkDirty()
	p.SetNext(nf.ID())
	fr.MarkDirty()
	fr.Unpin()
	h.last = nf.ID()
	nf.Unpin()
	h.count++
	return RID{Page: h.last, Slot: uint16(slot)}, nil
}

// Get copies the record at rid.
func (h *HeapFile) Get(rid RID) ([]byte, error) {
	fr, err := h.io.Page(rid.Page)
	if err != nil {
		return nil, err
	}
	defer fr.Unpin()
	rec, ok := SlottedPage(fr.Data()).Get(int(rid.Slot))
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoRecord, rid)
	}
	out := make([]byte, len(rec))
	copy(out, rec)
	return out, nil
}

// Delete tombstones the record at rid.
func (h *HeapFile) Delete(rid RID) error {
	fr, err := h.io.Page(rid.Page)
	if err != nil {
		return err
	}
	defer fr.Unpin()
	if !SlottedPage(fr.Data()).Delete(int(rid.Slot)) {
		return fmt.Errorf("%w: %v", ErrNoRecord, rid)
	}
	fr.MarkDirty()
	h.count--
	return nil
}

// Scan visits every live record in chain order. The record bytes passed
// to fn alias the pinned page and must not be retained; fn returning
// false stops the scan.
func (h *HeapFile) Scan(fn func(rid RID, rec []byte) bool) error {
	id := h.first
	for id != InvalidPage {
		fr, err := h.io.Page(id)
		if err != nil {
			return err
		}
		p := SlottedPage(fr.Data())
		stop := false
		p.Each(func(slot int, rec []byte) bool {
			if !fn(RID{Page: id, Slot: uint16(slot)}, rec) {
				stop = true
				return false
			}
			return true
		})
		next := p.Next()
		fr.Unpin()
		if stop {
			return nil
		}
		id = next
	}
	return nil
}

// ScanPages visits whole pages in chain order, the set-at-a-time access
// path: fn receives every live record of one page in a single call.
func (h *HeapFile) ScanPages(fn func(page PageID, recs [][]byte) bool) error {
	id := h.first
	for id != InvalidPage {
		fr, err := h.io.Page(id)
		if err != nil {
			return err
		}
		p := SlottedPage(fr.Data())
		var recs [][]byte
		p.Each(func(_ int, rec []byte) bool {
			recs = append(recs, rec)
			return true
		})
		next := p.Next()
		cont := fn(id, recs)
		fr.Unpin()
		if !cont {
			return nil
		}
		id = next
	}
	return nil
}

// WithIO returns a shallow clone of the heap bound to a different page
// source: a wal transaction shadow for uncommitted writes, or a
// snapshot View for epoch-pinned reads. The clone shares page ids with
// the original but none of its mutable bookkeeping, so appending
// through a transactional clone leaves the committed heap untouched
// until the transaction publishes it.
func (h *HeapFile) WithIO(io PageIO) *HeapFile {
	c := *h
	c.io = io
	return &c
}

// IO returns the heap's page source.
func (h *HeapFile) IO() PageIO { return h.io }
