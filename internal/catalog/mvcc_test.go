package catalog

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"xst/internal/core"
	"xst/internal/store"
	"xst/internal/table"
)

// Snapshot isolation, differentially: a view pinned before a commit
// must keep answering the exact pre-commit row set — compared against a
// materialized oracle — no matter how many transactions land after the
// pin, while an unpinned read sees the latest world.

func mvccRows(batch, n int) []table.Row {
	rows := make([]table.Row, n)
	for i := range rows {
		rows[i] = table.Row{core.Int(int64(batch)), core.Int(int64(i))}
	}
	return rows
}

func scanAll(t *testing.T, tab *table.Table) []string {
	t.Helper()
	var out []string
	err := tab.Scan(func(_ store.RID, r table.Row) (bool, error) {
		out = append(out, fmt.Sprint(r))
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSnapshotIsolation(t *testing.T) {
	db, err := Create(store.NewMemPager(), 512)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(table.Schema{Name: "ev", Cols: []string{"b", "i"}}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := db.Load(ctx, "ev", mvccRows(0, 40)); err != nil {
		t.Fatal(err)
	}

	// Pin, record the oracle, then commit ten more batches.
	rt := db.BeginRead()
	defer rt.View.Release()
	pinned, _ := db.Table("ev")
	oracle := scanAll(t, pinned.At(rt.View))
	if len(oracle) != 40 {
		t.Fatalf("oracle has %d rows, want 40", len(oracle))
	}
	for b := 1; b <= 10; b++ {
		if err := db.Load(ctx, "ev", mvccRows(b, 40)); err != nil {
			t.Fatal(err)
		}
	}

	// The pinned view still answers exactly the oracle; the committed
	// world has moved on.
	cur, _ := db.Table("ev")
	if got := scanAll(t, cur.At(rt.View)); fmt.Sprint(got) != fmt.Sprint(oracle) {
		t.Fatalf("pinned view diverged from oracle:\n got %d rows\nwant %d rows", len(got), len(oracle))
	}
	if got := scanAll(t, cur); len(got) != 11*40 {
		t.Fatalf("latest read sees %d rows, want %d", len(got), 11*40)
	}

	// A view pinned now sees all eleven batches even while later
	// commits land.
	rt2 := db.BeginRead()
	defer rt2.View.Release()
	if err := db.Load(ctx, "ev", mvccRows(11, 40)); err != nil {
		t.Fatal(err)
	}
	if got := scanAll(t, cur.At(rt2.View)); len(got) != 11*40 {
		t.Fatalf("second view sees %d rows, want %d", len(got), 11*40)
	}
}

// Concurrent readers each pin a snapshot at a random moment while a
// writer streams commits; every reader must observe a whole number of
// batches, and exactly the number current at its pin.
func TestSnapshotIsolationConcurrent(t *testing.T) {
	db, err := Create(store.NewMemPager(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(table.Schema{Name: "ev", Cols: []string{"b", "i"}}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const batch, nBatches, readers = 25, 30, 8

	var wg sync.WaitGroup
	errs := make(chan error, readers)
	start := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-start
			count := func(tab *table.Table, v *store.View) (int, error) {
				n := 0
				err := tab.At(v).Scan(func(store.RID, table.Row) (bool, error) {
					n++
					return true, nil
				})
				return n, err
			}
			for k := 0; k < 6; k++ {
				rt := db.BeginRead()
				tab, err := db.Table("ev")
				if err != nil {
					rt.View.Release()
					errs <- err
					return
				}
				n, err := count(tab, rt.View)
				if err == nil {
					// The writer keeps committing; a second pass
					// through the same view must see the same world.
					var n2 int
					if n2, err = count(tab, rt.View); err == nil && n2 != n {
						err = fmt.Errorf("reader %d: view unstable, %d then %d rows", r, n, n2)
					}
				}
				rt.View.Release()
				if err != nil {
					errs <- err
					return
				}
				if n%batch != 0 {
					errs <- fmt.Errorf("reader %d saw %d rows — mid-transaction state leaked", r, n)
					return
				}
			}
		}(r)
	}
	close(start)
	for b := 0; b < nBatches; b++ {
		if err := db.Load(ctx, "ev", mvccRows(b, batch)); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
