package catalog

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xst/internal/core"
	"xst/internal/store"
	"xst/internal/table"
	"xst/internal/wal"
	"xst/internal/xtest"
)

// Kill-the-process crash recovery: a victim process commits batch after
// batch into a durable database until it is SIGKILLed mid-stream, then
// the parent reopens the files and checks that exactly a prefix of the
// committed batches survived — every committed batch whole, the torn
// tail gone, catalog, __meta and indexes all consistent.

const crashBatch = 50

func crashSchema() table.Schema {
	return table.Schema{Name: "events", Cols: []string{"batch", "seq"}}
}

func openCrashDB(dir string) (*Database, int, error) {
	pager, err := store.OpenFilePager(filepath.Join(dir, "base.pages"))
	if err != nil {
		return nil, 0, err
	}
	log, err := wal.OpenFileLog(filepath.Join(dir, "wal.log"))
	if err != nil {
		return nil, 0, err
	}
	if pager.NumPages() == 0 {
		db, err := CreateDurable(pager, log, 256)
		return db, 0, err
	}
	return OpenDurable(pager, log, 256)
}

// TestCrashVictim is the subprocess body: it creates the events table
// (and a hash index on batch), then commits batches of crashBatch rows
// forever, announcing each commit on stdout so the parent knows when to
// pull the trigger. Not a test in ordinary runs.
func TestCrashVictim(t *testing.T) {
	dir, ok := xtest.InVictim()
	if !ok {
		t.Skip("crash victim body; run via TestCrashRecovery")
	}
	db, _, err := openCrashDB(dir)
	if err != nil {
		t.Fatalf("victim open: %v", err)
	}
	if _, err := db.CreateTable(crashSchema()); err != nil {
		t.Fatalf("victim create: %v", err)
	}
	if _, err := db.CreateIndex(context.Background(), "events", "batch", IndexHash); err != nil {
		t.Fatalf("victim index: %v", err)
	}
	for b := 0; ; b++ {
		rows := make([]table.Row, crashBatch)
		for i := range rows {
			rows[i] = table.Row{core.Int(int64(b)), core.Int(int64(i))}
		}
		if err := db.Load(context.Background(), "events", rows); err != nil {
			t.Fatalf("victim load: %v", err)
		}
		fmt.Printf("COMMITTED %d\n", b)
		os.Stdout.Sync()
	}
}

func TestCrashRecovery(t *testing.T) {
	if _, ok := xtest.InVictim(); ok {
		t.Skip("victim process runs only its own body")
	}
	dir := t.TempDir()
	cmd := xtest.Victim(t, "TestCrashVictim", dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Let a handful of commits land, then SIGKILL with a commit very
	// likely in flight (the victim commits continuously).
	sc := bufio.NewScanner(out)
	committed := -1
	deadline := time.Now().Add(30 * time.Second)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "COMMITTED ") {
			continue
		}
		fmt.Sscanf(line, "COMMITTED %d", &committed)
		if committed >= 5 || time.Now().After(deadline) {
			break
		}
	}
	if committed < 0 {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("victim never committed a batch")
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	db, redone, err := openCrashDB(dir)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db.Close()
	t.Logf("victim acknowledged %d batches; recovery replayed %d transactions", committed+1, redone)

	tab, err := db.Table("events")
	if err != nil {
		t.Fatalf("events table lost: %v", err)
	}
	// Atomicity: a whole number of batches, at least every acknowledged
	// one (acknowledged = fsynced before the print).
	n := tab.Count()
	if n%crashBatch != 0 {
		t.Fatalf("recovered %d rows — not a whole number of %d-row batches (torn commit visible)", n, crashBatch)
	}
	if n < (committed+1)*crashBatch {
		t.Fatalf("recovered %d rows < %d acknowledged", n, (committed+1)*crashBatch)
	}
	// Batch integrity: batches 0..k-1 each present exactly once, with
	// every seq.
	seen := map[int64]map[int64]bool{}
	err = tab.Scan(func(_ store.RID, r table.Row) (bool, error) {
		b := int64(r[0].(core.Int))
		q := int64(r[1].(core.Int))
		if seen[b] == nil {
			seen[b] = map[int64]bool{}
		}
		if seen[b][q] {
			return false, fmt.Errorf("duplicate row (%d,%d)", b, q)
		}
		seen[b][q] = true
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	k := n / crashBatch
	for b := 0; b < k; b++ {
		if len(seen[int64(b)]) != crashBatch {
			t.Fatalf("batch %d has %d rows, want %d", b, len(seen[int64(b)]), crashBatch)
		}
	}
	// The index declaration survived and was rebuilt over the recovered
	// heap.
	idxs := db.Indexes("events")
	if len(idxs) != 1 || idxs[0].Hash == nil {
		t.Fatalf("index on events lost after recovery: %+v", idxs)
	}
	if got := len(idxs[0].Hash.Lookup(core.Key(core.Int(0)))); got != crashBatch {
		t.Fatalf("index lookup batch 0: %d rids, want %d", got, crashBatch)
	}
	// The recovered database accepts and persists new transactions.
	if err := db.Load(context.Background(), "events",
		[]table.Row{{core.Int(int64(k)), core.Int(0)}}); err != nil {
		t.Fatalf("post-recovery load: %v", err)
	}
	if got, _ := db.Table("events"); got.Count() != n+1 {
		t.Fatalf("post-recovery count %d, want %d", got.Count(), n+1)
	}
}
