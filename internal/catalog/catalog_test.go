package catalog

import (
	"errors"
	"path/filepath"
	"testing"

	"xst/internal/core"
	"xst/internal/store"
	"xst/internal/table"
	"xst/internal/xlang"
)

func usersSchema() table.Schema {
	return table.Schema{Name: "users", Cols: []string{"id", "name"}}
}

func TestCreateAndUse(t *testing.T) {
	db, err := Create(store.NewMemPager(), 32)
	if err != nil {
		t.Fatal(err)
	}
	u, err := db.CreateTable(usersSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Insert(table.Row{core.Int(1), core.Str("ada")}); err != nil {
		t.Fatal(err)
	}
	got, err := db.Table("users")
	if err != nil || got != u {
		t.Fatal("Table lookup failed")
	}
	if _, err := db.Table("nope"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("want ErrNoTable, got %v", err)
	}
	if _, err := db.CreateTable(usersSchema()); !errors.Is(err, ErrTableExists) {
		t.Fatalf("want ErrTableExists, got %v", err)
	}
	if names := db.Names(); len(names) != 1 || names[0] != "users" {
		t.Fatalf("Names = %v", names)
	}
}

func TestCreateRequiresEmptyPager(t *testing.T) {
	p := store.NewMemPager()
	p.Allocate()
	if _, err := Create(p, 8); err == nil {
		t.Fatal("Create over non-empty pager must fail")
	}
	if _, err := Open(store.NewMemPager(), 8); err == nil {
		t.Fatal("Open over empty pager must fail")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.pages")
	pager, err := store.OpenFilePager(path)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Create(pager, 64)
	if err != nil {
		t.Fatal(err)
	}
	u, err := db.CreateTable(usersSchema())
	if err != nil {
		t.Fatal(err)
	}
	o, err := db.CreateTable(table.Schema{Name: "orders", Cols: []string{"oid", "uid"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := u.Insert(table.Row{core.Int(i), core.Str("user")}); err != nil {
			t.Fatal(err)
		}
		if _, err := o.Insert(table.Row{core.Int(i), core.Int(i % 37)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	pager2, err := store.OpenFilePager(path)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Open(pager2, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if names := db2.Names(); len(names) != 2 {
		t.Fatalf("Names after reopen = %v", names)
	}
	u2, err := db2.Table("users")
	if err != nil {
		t.Fatal(err)
	}
	if u2.Count() != 500 {
		t.Fatalf("users count after reopen = %d", u2.Count())
	}
	// Data intact.
	row, err := u2.Get(mustRID(t, u2))
	if err != nil || len(row) != 2 {
		t.Fatalf("row after reopen: %v %v", row, err)
	}
	// Schema intact.
	if u2.Schema().Col("name") != 1 {
		t.Fatalf("schema after reopen = %v", u2.Schema())
	}
	// Appends keep working after reopen.
	if _, err := u2.Insert(table.Row{core.Int(500), core.Str("late")}); err != nil {
		t.Fatal(err)
	}
	if u2.Count() != 501 {
		t.Fatal("append after reopen failed")
	}
}

// mustRID returns the rid of the first row.
func mustRID(t *testing.T, tb *table.Table) store.RID {
	t.Helper()
	var rid store.RID
	found := false
	tb.Scan(func(r store.RID, _ table.Row) (bool, error) {
		rid, found = r, true
		return false, nil
	})
	if !found {
		t.Fatal("empty table")
	}
	return rid
}

func TestCatalogSetShape(t *testing.T) {
	db, _ := Create(store.NewMemPager(), 16)
	db.CreateTable(usersSchema())
	cs := db.CatalogSet()
	if cs.Len() != 1 {
		t.Fatalf("catalog set = %v", cs)
	}
	entry := cs.Members()[0].Elem
	elems, ok := core.TupleElems(entry)
	if !ok || len(elems) != 3 {
		t.Fatalf("entry shape = %v", entry)
	}
	if !core.Equal(elems[0], core.Str("users")) {
		t.Fatalf("entry name = %v", elems[0])
	}
}

func TestManyTablesCatalogGrowth(t *testing.T) {
	db, _ := Create(store.NewMemPager(), 512)
	for i := 0; i < 50; i++ {
		name := "t" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		if _, err := db.CreateTable(table.Schema{Name: name, Cols: []string{"a", "b", "c"}}); err != nil {
			t.Fatalf("table %d: %v", i, err)
		}
	}
	if len(db.Names()) != 50 {
		t.Fatalf("names = %d", len(db.Names()))
	}
}

func TestMemPersistenceRoundTrip(t *testing.T) {
	// Sync + Open over the same MemPager simulates restart without files.
	pager := store.NewMemPager()
	db, _ := Create(pager, 32)
	u, _ := db.CreateTable(usersSchema())
	u.Insert(table.Row{core.Int(7), core.Str("x")})
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(pager, 32)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := db2.Table("users")
	if err != nil || u2.Count() != 1 {
		t.Fatalf("reopen over mem pager: %v count=%d", err, u2.Count())
	}
}

func TestBindAll(t *testing.T) {
	db, _ := Create(store.NewMemPager(), 32)
	u, _ := db.CreateTable(usersSchema())
	u.Insert(table.Row{core.Int(1), core.Str("ada")})
	u.Insert(table.Row{core.Int(2), core.Str("bob")})

	env := xlang.NewEnv()
	if err := db.BindAll(env); err != nil {
		t.Fatal(err)
	}
	// The table is now a queryable extended set in the language.
	v, err := xlang.Eval(env, "users[{<1>}]")
	if err != nil {
		t.Fatal(err)
	}
	want := core.S(core.Tuple(core.Str("ada")))
	if !core.Equal(v, want) {
		t.Fatalf("users[{<1>}] = %v, want %v", v, want)
	}
	if v, _ := xlang.Eval(env, "card(users)"); !core.Equal(v, core.Int(2)) {
		t.Fatalf("card(users) = %v", v)
	}
}

func TestVacuumTable(t *testing.T) {
	pager := store.NewMemPager()
	db, _ := Create(pager, 64)
	u, _ := db.CreateTable(usersSchema())
	var rids []store.RID
	for i := 0; i < 60; i++ {
		rid, _ := u.Insert(table.Row{core.Int(i), core.Str("n")})
		rids = append(rids, rid)
	}
	for i := 0; i < 60; i += 3 {
		u.Delete(rids[i])
	}
	compact, err := db.VacuumTable("users")
	if err != nil {
		t.Fatal(err)
	}
	if compact.Count() != 40 {
		t.Fatalf("compacted count = %d, want 40", compact.Count())
	}
	// The catalog now points at the compacted heap: reopen and check.
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(pager, 64)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := db2.Table("users")
	if err != nil || u2.Count() != 40 {
		t.Fatalf("reopened vacuumed table: count=%d err=%v", u2.Count(), err)
	}
	if _, err := db.VacuumTable("nope"); err == nil {
		t.Fatal("vacuum of absent table must fail")
	}
}
