package catalog

import (
	"context"

	"xst/internal/plan"
	"xst/internal/store"
	"xst/internal/table"
	"xst/internal/wal"
)

// Durable databases: the same Database, but with the wal.Manager bound
// to a real log instead of the discard log, so every transaction's
// fsync makes it crash-safe, and Open replays whatever the last
// process didn't live to apply.
//
// Recovery invariant: the base pager always holds a prefix of commit
// history (commits write through it after the log fsync), and the log
// holds every commit since the last checkpoint. Reopen therefore
// replays the log's committed transactions over the base — idempotent,
// since page images are absolute — and a torn tail (the transaction a
// crash interrupted mid-append) has no commit marker, so it vanishes
// atomically.

// defaultAutoCheckpoint is the log-size threshold (bytes) at which a
// commit folds the log into the base; see SetAutoCheckpoint.
const defaultAutoCheckpoint = 8 << 20

// CreateDurable formats a fresh database whose mutations are logged to
// log. The formatted base is synced before first use so recovery never
// replays over a half-formatted file.
func CreateDurable(pager store.Pager, log wal.Log, frames int) (*Database, error) {
	db, err := Create(pager, frames)
	if err != nil {
		return nil, err
	}
	if err := db.pool.FlushAll(); err != nil {
		return nil, err
	}
	if s, ok := pager.(interface{ Sync() error }); ok {
		if err := s.Sync(); err != nil {
			return nil, err
		}
	}
	db.mgr = wal.NewManager(pager, log)
	return db, nil
}

// OpenDurable reopens a database, replaying the log's committed
// transactions first (crash recovery), then folding the replayed log
// into the base and truncating it so the next crash has less to redo.
// It returns the database and how many transactions were redone.
func OpenDurable(pager store.Pager, log wal.Log, frames int) (*Database, int, error) {
	redone, err := wal.Recover(pager, log)
	if err != nil {
		return nil, 0, err
	}
	mgr, err := wal.ResumeManager(pager, log)
	if err != nil {
		return nil, 0, err
	}
	db, err := Open(pager, frames)
	if err != nil {
		return nil, 0, err
	}
	db.mgr = mgr
	if err := mgr.Checkpoint(); err != nil {
		return nil, 0, err
	}
	return db, redone, nil
}

// WAL exposes the transaction manager (metrics hooks, sync modes).
func (db *Database) WAL() *wal.Manager { return db.mgr }

// SetAutoCheckpoint sets the logged-bytes threshold past which a
// commit checkpoints automatically; 0 disables.
func (db *Database) SetAutoCheckpoint(bytes int64) {
	db.writeMu.Lock()
	db.autoCk = bytes
	db.writeMu.Unlock()
}

// Checkpoint folds the write-ahead log into the base pager and
// truncates it, shrinking recovery work to zero as of now. It waits
// for any in-flight transaction; snapshot readers are unaffected.
func (db *Database) Checkpoint() error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if err := db.Sync(); err != nil {
		return err
	}
	return db.mgr.Checkpoint()
}

// NewView pins a snapshot view of the database at the current commit
// epoch. Release it when done. Scans run under store.WithView(ctx,v)
// then return exactly the rows committed before the pin, regardless of
// concurrent commits.
func (db *Database) NewView() *store.View { return db.pool.NewView() }

// ReadTxn pairs a pinned snapshot view with the planner catalog that
// was current at the same instant, so a query compiled against Snap
// never probes an index holding record ids from a commit the View
// cannot see.
type ReadTxn struct {
	View *store.View
	Snap *plan.Catalog
}

// BeginRead atomically pins the current epoch and planner snapshot.
// Commits publish both under the same lock, so the pair is always
// mutually consistent. Release the View when the read finishes.
func (db *Database) BeginRead() ReadTxn {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return ReadTxn{View: db.pool.NewView(), Snap: db.snap}
}

// Load appends rows to a table as one atomic transaction — one log
// fsync for the whole batch, which is the group-commit-shaped batching
// that keeps durable load throughput close to the in-memory path.
func (db *Database) Load(ctx context.Context, name string, rows []table.Row) error {
	tx := db.Begin()
	if err := tx.Insert(name, rows...); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit(ctx)
}
