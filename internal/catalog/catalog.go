// Package catalog makes the storage substrate durable: a Database owns
// one pager, keeps a catalog of its tables on page 0, and can be closed
// and reopened with every table intact. In the spirit of the paper, the
// catalog itself is an extended set —
//
//	{ ⟨name, firstPage, ⟨col1, …, coln⟩⟩ , … }
//
// serialized with the canonical value codec onto the catalog page, so
// the system's metadata has the same mathematical identity as its data.
package catalog

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"xst/internal/core"
	"xst/internal/index"
	"xst/internal/plan"
	"xst/internal/stats"
	"xst/internal/store"
	"xst/internal/table"
	"xst/internal/wal"
	"xst/internal/xlang"
)

// catalogPage is the fixed location of the catalog root.
const catalogPage = store.PageID(0)

// metaTable is the hidden system table holding collected statistics and
// index declarations as rows ⟨kind, tbl, payload⟩. It persists through
// the ordinary catalog entry on page 0 but is excluded from Names and
// BindAll — "__"-prefixed names are reserved (sessions use them for
// scratch tables, which never reach the catalog).
const metaTable = "__meta"

// Index kinds recorded in __meta entries.
const (
	// IndexHash answers point (equality) lookups.
	IndexHash = "hash"
	// IndexBTree answers ordered range scans over atom columns.
	IndexBTree = "btree"
)

// Index is one declared index: its definition (persisted) plus the
// built in-memory structure (rebuilt at Open/Analyze/Vacuum). The
// structures are immutable once published — rebuilds swap in fresh
// ones, so plans compiled against an old snapshot stay safe.
type Index struct {
	Table string
	Col   string
	Kind  string
	Hash  *index.HashIndex
	BTree *index.BTree
}

// Partition kinds recorded in catalog entries.
const (
	// PartHash marks a table hash-partitioned on a column: a row lives
	// on site Digest(row[col]) % Sites.
	PartHash = "hash"
	// PartRange marks a table range-partitioned on a column under the
	// canonical value order: site i owns rows with Bounds[i-1] ≤ v <
	// Bounds[i] (site 0 is unbounded below, the last site unbounded
	// above), so len(Bounds) == Sites-1.
	PartRange = "range"
)

// Partition records how a table is sharded across a federation: which
// site's slice this database holds, how many sites there are, and the
// placement rule. It is the fourth element of a catalog entry —
// optional, so databases written before federation existed still open.
type Partition struct {
	// Kind is PartHash or PartRange.
	Kind string
	// Col is the partitioning column name.
	Col string
	// Site is this database's ordinal in the federation.
	Site int
	// Sites is the federation size.
	Sites int
	// Bounds are the range split points (PartRange only), ascending,
	// len == Sites-1.
	Bounds []core.Value
}

// valid performs structural checks shared by SetPartition and decode.
func (p Partition) valid() error {
	switch p.Kind {
	case PartHash:
		if len(p.Bounds) != 0 {
			return fmt.Errorf("catalog: hash partition carries bounds")
		}
	case PartRange:
		if len(p.Bounds) != p.Sites-1 {
			return fmt.Errorf("catalog: range partition needs %d bounds, has %d", p.Sites-1, len(p.Bounds))
		}
	default:
		return fmt.Errorf("catalog: unknown partition kind %q", p.Kind)
	}
	if p.Col == "" {
		return fmt.Errorf("catalog: partition without column")
	}
	if p.Sites < 1 || p.Site < 0 || p.Site >= p.Sites {
		return fmt.Errorf("catalog: partition site %d/%d out of range", p.Site, p.Sites)
	}
	return nil
}

// ErrNoTable reports a lookup of an undefined table.
var ErrNoTable = errors.New("catalog: no such table")

// ErrTableExists reports a duplicate CreateTable.
var ErrTableExists = errors.New("catalog: table already exists")

// ErrCatalogFull reports a catalog that no longer fits its page.
var ErrCatalogFull = errors.New("catalog: catalog page full")

// Database is a durable collection of tables over one pager.
//
// The mutex covers the metadata maps and the planner snapshot, not page
// I/O: readers (Table, Names, PlanCatalog) take the read lock, mutators
// (CreateTable, Analyze, CreateIndex, VacuumTable) the write lock.
// Compiled queries hold *table.Table and index-structure pointers
// directly, so running scans never contend with catalog changes.
type Database struct {
	pager  store.Pager
	pool   *store.BufferPool
	mu     sync.RWMutex
	tables map[string]*table.Table
	parts  map[string]Partition
	statsC map[string]*stats.TableStats
	idxs   map[string][]*Index
	// snap is the current planner catalog, rebuilt eagerly on every
	// metadata mutation and handed out as an immutable snapshot.
	snap *plan.Catalog

	// mgr runs every mutation as a wal transaction (txn.go). Databases
	// built by Create/Open log to a discard log — transactional but not
	// durable; CreateDurable/OpenDurable bind a real log.
	mgr *wal.Manager
	// writeMu serializes writers for the lifetime of a transaction
	// (single-writer, many-snapshot-readers). db.mu stays read-mostly:
	// commits hold it only for the instant that publishes new state.
	writeMu sync.Mutex
	// autoCk checkpoints the log once it exceeds this many bytes.
	autoCk int64
}

func newDatabase(pager store.Pager, pool *store.BufferPool) *Database {
	return &Database{
		pager:  pager,
		pool:   pool,
		tables: map[string]*table.Table{},
		parts:  map[string]Partition{},
		statsC: map[string]*stats.TableStats{},
		idxs:   map[string][]*Index{},
		snap:   &plan.Catalog{},
		mgr:    wal.NewManager(pager, wal.NewNullLog()),
		autoCk: defaultAutoCheckpoint,
	}
}

// Create formats a fresh database on the pager (which must be empty) and
// returns it with the given buffer-pool frame budget.
func Create(pager store.Pager, frames int) (*Database, error) {
	if pager.NumPages() != 0 {
		return nil, fmt.Errorf("catalog: pager not empty (%d pages)", pager.NumPages())
	}
	pool := store.NewBufferPool(pager, frames)
	f, err := pool.Allocate()
	if err != nil {
		return nil, err
	}
	if f.ID() != catalogPage {
		f.Unpin()
		return nil, fmt.Errorf("catalog: catalog page allocated as %d", f.ID())
	}
	f.Unpin()
	db := newDatabase(pager, pool)
	if err := db.writeCatalog(); err != nil {
		return nil, err
	}
	return db, nil
}

// Open reattaches to a database previously written by Create + Sync.
func Open(pager store.Pager, frames int) (*Database, error) {
	if pager.NumPages() == 0 {
		return nil, errors.New("catalog: pager empty; use Create")
	}
	pool := store.NewBufferPool(pager, frames)
	db := newDatabase(pager, pool)

	f, err := pool.Get(catalogPage)
	if err != nil {
		return nil, err
	}
	raw := make([]byte, store.PageSize)
	copy(raw, f.Data())
	f.Unpin()

	set, err := decodeCatalog(raw)
	if err != nil {
		return nil, err
	}
	for _, m := range set.Members() {
		name, first, schema, part, err := decodeEntry(m.Elem)
		if err != nil {
			return nil, err
		}
		t, err := table.Open(pool, schema, first)
		if err != nil {
			return nil, err
		}
		db.tables[name] = t
		if part != nil {
			db.parts[name] = *part
		}
	}
	if err := db.loadMeta(); err != nil {
		return nil, err
	}
	db.rebuildSnapLocked()
	return db, nil
}

// Pool exposes the buffer pool (statistics, advanced use).
func (db *Database) Pool() *store.BufferPool { return db.pool }

// CreateTable defines a new table and persists the catalog, as one
// transaction.
func (db *Database) CreateTable(schema table.Schema) (*table.Table, error) {
	tx := db.Begin()
	if _, err := tx.CreateTable(schema); err != nil {
		tx.Abort()
		return nil, err
	}
	if err := tx.Commit(context.Background()); err != nil {
		return nil, err
	}
	return db.Table(schema.Name)
}

// Table returns a defined table.
func (db *Database) Table(name string) (*table.Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tableLocked(name)
}

func (db *Database) tableLocked(name string) (*table.Table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// Names lists the defined tables, sorted. Reserved "__"-prefixed system
// tables (the statistics/index store) are omitted.
func (db *Database) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		if strings.HasPrefix(n, "__") {
			continue
		}
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// VacuumTable compacts a table (dropping tombstones and half-empty
// pages) and repoints the catalog at the compacted copy, as one
// transaction — readers holding a pre-vacuum snapshot keep scanning
// the old heap, whose pages become garbage only logically (page ids
// are never reused but never reclaimed — there is no free-space map).
func (db *Database) VacuumTable(name string) (*table.Table, error) {
	tx := db.Begin()
	if err := tx.Vacuum(name); err != nil {
		tx.Abort()
		return nil, err
	}
	if err := tx.Commit(context.Background()); err != nil {
		return nil, err
	}
	return db.Table(name)
}

// Sync flushes every dirty page and rewrites the catalog.
func (db *Database) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.writeCatalog(); err != nil {
		return err
	}
	return db.pool.FlushAll()
}

// Close syncs and closes the pager.
func (db *Database) Close() error {
	if err := db.Sync(); err != nil {
		db.pager.Close()
		return err
	}
	return db.pager.Close()
}

// SetPartition records how a table is sharded across a federation and
// persists the catalog, as one transaction. The column must exist in
// the table's schema.
func (db *Database) SetPartition(name string, p Partition) error {
	tx := db.Begin()
	if err := tx.SetPartition(name, p); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit(context.Background())
}

// Partition reports a table's recorded partition, if any.
func (db *Database) Partition(name string) (Partition, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	p, ok := db.parts[name]
	return p, ok
}

// CatalogSet renders the catalog as its extended set — the value that is
// actually stored on page 0. Partitioned tables carry a fourth tuple
// element ⟨kind, col, site, sites, ⟨bounds…⟩⟩.
func (db *Database) CatalogSet() *core.Set {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.catalogSetLocked()
}

func (db *Database) catalogSetLocked() *core.Set {
	return catalogSetOf(db.tables, db.parts)
}

// writeCatalog persists page 0; callers hold the write lock (or have
// exclusive access during Create/Open).
func (db *Database) writeCatalog() error {
	enc := core.Encode(db.catalogSetLocked())
	if len(enc)+4 > store.PageSize {
		return fmt.Errorf("%w: %d bytes", ErrCatalogFull, len(enc))
	}
	f, err := db.pool.Get(catalogPage)
	if err != nil {
		return err
	}
	defer f.Unpin()
	data := f.Data()
	data[0] = byte(len(enc))
	data[1] = byte(len(enc) >> 8)
	copy(data[2:], enc)
	f.MarkDirty()
	return nil
}

// BindAll loads every table of the database into an expression-language
// environment twice over: as its materialized extended set, so the REPL
// can query stored data symbolically (`users[{<1>}]` etc.), and as a
// table binding, so query statements (`from users where …`) stream it
// through the planner without materializing. It also wires the
// database's planner catalog into the environment, making query
// compilation cost-based; the provider re-resolves per query, so clones
// of env see statistics refreshed by a later Analyze.
func (db *Database) BindAll(env *xlang.Env) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for name, t := range db.tables {
		if strings.HasPrefix(name, "__") {
			continue
		}
		s, err := t.ToXST()
		if err != nil {
			return fmt.Errorf("catalog: binding %q: %w", name, err)
		}
		env.Bind(name, s)
		env.BindTable(name, t)
	}
	env.BindPlanCatalog(db.PlanCatalog)
	db.bindSysViews(env)
	return nil
}

// Analyze collects fresh statistics for every user table, rebuilds
// every declared index, persists both to the hidden __meta table, and
// republishes the planner snapshot — one transaction. It returns the
// number of tables analyzed. This is the `.analyze` admin command's
// engine.
func (db *Database) Analyze(ctx context.Context) (int, error) {
	tx := db.Begin()
	n, err := tx.analyze(ctx)
	if err != nil {
		tx.Abort()
		return 0, err
	}
	if err := tx.Commit(ctx); err != nil {
		return 0, err
	}
	return n, nil
}

// Stats reports the persisted statistics for one table, if analyzed.
func (db *Database) Stats(name string) (*stats.TableStats, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ts, ok := db.statsC[name]
	return ts, ok
}

// StatsCatalog returns the persisted statistics keyed by table name (a
// fresh map; the TableStats values are shared and immutable).
func (db *Database) StatsCatalog() stats.Catalog {
	db.mu.RLock()
	defer db.mu.RUnlock()
	cat := make(stats.Catalog, len(db.statsC))
	for name, ts := range db.statsC {
		cat[name] = ts
	}
	return cat
}

// CreateIndex declares and builds an index on table.col, persists the
// declaration, and republishes the planner snapshot — one transaction.
// Kind is IndexHash (point lookups) or IndexBTree (ordered ranges;
// atom columns only).
func (db *Database) CreateIndex(ctx context.Context, tbl, col, kind string) (*Index, error) {
	tx := db.Begin()
	// The writer lock (held by the transaction) excludes concurrent
	// metadata mutation, so the catalog read below needs only a brief
	// RLock — released before Commit, which takes db.mu itself.
	ix, err := func() (*Index, error) {
		db.mu.RLock()
		defer db.mu.RUnlock()
		if strings.HasPrefix(tbl, "__") {
			return nil, fmt.Errorf("%w: %q", ErrNoTable, tbl)
		}
		t, err := db.tableLocked(tbl)
		if err != nil {
			return nil, err
		}
		if t.Schema().Col(col) < 0 {
			return nil, fmt.Errorf("catalog: index column %q not in %s(%s)", col, tbl, t.Schema().Cols)
		}
		if kind != IndexHash && kind != IndexBTree {
			return nil, fmt.Errorf("catalog: unknown index kind %q (want %s or %s)", kind, IndexHash, IndexBTree)
		}
		for _, ix := range db.idxs[tbl] {
			if ix.Col == col && ix.Kind == kind {
				return nil, fmt.Errorf("catalog: index on %s.%s (%s) already exists", tbl, col, kind)
			}
		}
		ix := &Index{Table: tbl, Col: col, Kind: kind}
		if err := buildIndexOn(ctx, t, ix); err != nil {
			return nil, err
		}
		tx.newIdxs = map[string][]*Index{tbl: append(append([]*Index{}, db.idxs[tbl]...), ix)}
		tx.metaDirty = true
		return ix, nil
	}()
	if err != nil {
		tx.Abort()
		return nil, err
	}
	if err := tx.Commit(ctx); err != nil {
		return nil, err
	}
	return ix, nil
}

// Indexes reports the declared indexes on a table.
func (db *Database) Indexes(tbl string) []*Index {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]*Index(nil), db.idxs[tbl]...)
}

// PlanCatalog returns the current planner catalog snapshot (statistics
// plus built indexes). The snapshot is immutable — mutations publish a
// fresh one — so callers may hold it across a whole query.
func (db *Database) PlanCatalog() *plan.Catalog {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.snap
}

// rebuildSnapLocked republishes the planner catalog from the current
// statistics and index structures. Always a fresh value: snapshots
// already handed out stay internally consistent.
func (db *Database) rebuildSnapLocked() {
	snap := &plan.Catalog{Stats: make(stats.Catalog, len(db.statsC))}
	for name, ts := range db.statsC {
		snap.Stats[name] = ts
	}
	names := make([]string, 0, len(db.idxs))
	for name := range db.idxs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t, ok := db.tables[name]
		if !ok {
			continue
		}
		for _, ix := range db.idxs[name] {
			ti := &plan.TableIndex{Table: t, Col: ix.Col, Hash: ix.Hash, BTree: ix.BTree}
			if ix.Kind == IndexBTree {
				ti.Kind = plan.BTreeIdx
			}
			snap.Indexes = append(snap.Indexes, ti)
		}
	}
	db.snap = snap
}

var metaSchema = table.Schema{Name: metaTable, Cols: []string{"kind", "tbl", "payload"}}

// loadMeta restores statistics and index declarations from __meta at
// Open time, rebuilding every index structure. Called before the
// database is shared, so no locking.
func (db *Database) loadMeta() error {
	t, ok := db.tables[metaTable]
	if !ok {
		return nil
	}
	type idxDef struct{ tbl, col, kind string }
	var defs []idxDef
	err := t.Scan(func(_ store.RID, r table.Row) (bool, error) {
		if len(r) != 3 {
			return false, fmt.Errorf("catalog: bad __meta row %v", r)
		}
		kind, kok := r[0].(core.Str)
		tbl, tok := r[1].(core.Str)
		if !kok || !tok {
			return false, fmt.Errorf("catalog: bad __meta row %v", r)
		}
		switch string(kind) {
		case "stats":
			ts, err := stats.DecodeTableStats(r[2])
			if err != nil {
				return false, fmt.Errorf("catalog: __meta stats for %q: %w", tbl, err)
			}
			db.statsC[string(tbl)] = ts
		case "index":
			elems, ok := core.TupleElems(r[2])
			if !ok || len(elems) != 2 {
				return false, fmt.Errorf("catalog: bad __meta index payload %v", r[2])
			}
			col, cok := elems[0].(core.Str)
			ikind, iok := elems[1].(core.Str)
			if !cok || !iok {
				return false, fmt.Errorf("catalog: bad __meta index payload %v", r[2])
			}
			defs = append(defs, idxDef{tbl: string(tbl), col: string(col), kind: string(ikind)})
		default:
			return false, fmt.Errorf("catalog: unknown __meta kind %q", kind)
		}
		return true, nil
	})
	if err != nil {
		return err
	}
	for _, d := range defs {
		t, ok := db.tables[d.tbl]
		if !ok {
			return fmt.Errorf("%w: %q (from __meta index)", ErrNoTable, d.tbl)
		}
		ix := &Index{Table: d.tbl, Col: d.col, Kind: d.kind}
		if err := buildIndexOn(context.Background(), t, ix); err != nil {
			return err
		}
		db.idxs[d.tbl] = append(db.idxs[d.tbl], ix)
	}
	return nil
}

func decodeCatalog(raw []byte) (*core.Set, error) {
	n := int(raw[0]) | int(raw[1])<<8
	if n+2 > len(raw) {
		return nil, errors.New("catalog: corrupt catalog length")
	}
	v, err := core.DecodeFull(raw[2 : 2+n])
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	s, ok := v.(*core.Set)
	if !ok {
		return nil, errors.New("catalog: catalog value is not a set")
	}
	return s, nil
}

func decodeEntry(v core.Value) (name string, first store.PageID, schema table.Schema, part *Partition, err error) {
	elems, ok := core.TupleElems(v)
	if !ok || len(elems) < 3 || len(elems) > 4 {
		return "", 0, table.Schema{}, nil, fmt.Errorf("catalog: bad entry %v", v)
	}
	n, ok := elems[0].(core.Str)
	if !ok {
		return "", 0, table.Schema{}, nil, fmt.Errorf("catalog: bad name in %v", v)
	}
	pg, ok := elems[1].(core.Int)
	if !ok || pg < 0 {
		return "", 0, table.Schema{}, nil, fmt.Errorf("catalog: bad page in %v", v)
	}
	colVals, ok := core.TupleElems(elems[2])
	if !ok {
		return "", 0, table.Schema{}, nil, fmt.Errorf("catalog: bad columns in %v", v)
	}
	cols := make([]string, len(colVals))
	for i, cv := range colVals {
		cs, ok := cv.(core.Str)
		if !ok {
			return "", 0, table.Schema{}, nil, fmt.Errorf("catalog: bad column %v", cv)
		}
		cols[i] = string(cs)
	}
	if len(elems) == 4 {
		if part, err = decodePartition(elems[3]); err != nil {
			return "", 0, table.Schema{}, nil, err
		}
	}
	return string(n), store.PageID(pg), table.Schema{Name: string(n), Cols: cols}, part, nil
}

func decodePartition(v core.Value) (*Partition, error) {
	elems, ok := core.TupleElems(v)
	if !ok || len(elems) != 5 {
		return nil, fmt.Errorf("catalog: bad partition %v", v)
	}
	kind, kok := elems[0].(core.Str)
	col, cok := elems[1].(core.Str)
	site, sok := elems[2].(core.Int)
	sites, tok := elems[3].(core.Int)
	bounds, bok := core.TupleElems(elems[4])
	if !kok || !cok || !sok || !tok || !bok {
		return nil, fmt.Errorf("catalog: bad partition %v", v)
	}
	p := Partition{Kind: string(kind), Col: string(col), Site: int(site), Sites: int(sites)}
	if len(bounds) > 0 {
		p.Bounds = append([]core.Value(nil), bounds...)
	}
	if err := p.valid(); err != nil {
		return nil, err
	}
	return &p, nil
}
