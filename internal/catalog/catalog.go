// Package catalog makes the storage substrate durable: a Database owns
// one pager, keeps a catalog of its tables on page 0, and can be closed
// and reopened with every table intact. In the spirit of the paper, the
// catalog itself is an extended set —
//
//	{ ⟨name, firstPage, ⟨col1, …, coln⟩⟩ , … }
//
// serialized with the canonical value codec onto the catalog page, so
// the system's metadata has the same mathematical identity as its data.
package catalog

import (
	"errors"
	"fmt"
	"sort"

	"xst/internal/core"
	"xst/internal/store"
	"xst/internal/table"
	"xst/internal/xlang"
)

// catalogPage is the fixed location of the catalog root.
const catalogPage = store.PageID(0)

// Partition kinds recorded in catalog entries.
const (
	// PartHash marks a table hash-partitioned on a column: a row lives
	// on site Digest(row[col]) % Sites.
	PartHash = "hash"
	// PartRange marks a table range-partitioned on a column under the
	// canonical value order: site i owns rows with Bounds[i-1] ≤ v <
	// Bounds[i] (site 0 is unbounded below, the last site unbounded
	// above), so len(Bounds) == Sites-1.
	PartRange = "range"
)

// Partition records how a table is sharded across a federation: which
// site's slice this database holds, how many sites there are, and the
// placement rule. It is the fourth element of a catalog entry —
// optional, so databases written before federation existed still open.
type Partition struct {
	// Kind is PartHash or PartRange.
	Kind string
	// Col is the partitioning column name.
	Col string
	// Site is this database's ordinal in the federation.
	Site int
	// Sites is the federation size.
	Sites int
	// Bounds are the range split points (PartRange only), ascending,
	// len == Sites-1.
	Bounds []core.Value
}

// valid performs structural checks shared by SetPartition and decode.
func (p Partition) valid() error {
	switch p.Kind {
	case PartHash:
		if len(p.Bounds) != 0 {
			return fmt.Errorf("catalog: hash partition carries bounds")
		}
	case PartRange:
		if len(p.Bounds) != p.Sites-1 {
			return fmt.Errorf("catalog: range partition needs %d bounds, has %d", p.Sites-1, len(p.Bounds))
		}
	default:
		return fmt.Errorf("catalog: unknown partition kind %q", p.Kind)
	}
	if p.Col == "" {
		return fmt.Errorf("catalog: partition without column")
	}
	if p.Sites < 1 || p.Site < 0 || p.Site >= p.Sites {
		return fmt.Errorf("catalog: partition site %d/%d out of range", p.Site, p.Sites)
	}
	return nil
}

// ErrNoTable reports a lookup of an undefined table.
var ErrNoTable = errors.New("catalog: no such table")

// ErrTableExists reports a duplicate CreateTable.
var ErrTableExists = errors.New("catalog: table already exists")

// ErrCatalogFull reports a catalog that no longer fits its page.
var ErrCatalogFull = errors.New("catalog: catalog page full")

// Database is a durable collection of tables over one pager.
type Database struct {
	pager  store.Pager
	pool   *store.BufferPool
	tables map[string]*table.Table
	parts  map[string]Partition
}

// Create formats a fresh database on the pager (which must be empty) and
// returns it with the given buffer-pool frame budget.
func Create(pager store.Pager, frames int) (*Database, error) {
	if pager.NumPages() != 0 {
		return nil, fmt.Errorf("catalog: pager not empty (%d pages)", pager.NumPages())
	}
	pool := store.NewBufferPool(pager, frames)
	f, err := pool.Allocate()
	if err != nil {
		return nil, err
	}
	if f.ID() != catalogPage {
		f.Unpin()
		return nil, fmt.Errorf("catalog: catalog page allocated as %d", f.ID())
	}
	f.Unpin()
	db := &Database{pager: pager, pool: pool, tables: map[string]*table.Table{}, parts: map[string]Partition{}}
	if err := db.writeCatalog(); err != nil {
		return nil, err
	}
	return db, nil
}

// Open reattaches to a database previously written by Create + Sync.
func Open(pager store.Pager, frames int) (*Database, error) {
	if pager.NumPages() == 0 {
		return nil, errors.New("catalog: pager empty; use Create")
	}
	pool := store.NewBufferPool(pager, frames)
	db := &Database{pager: pager, pool: pool, tables: map[string]*table.Table{}, parts: map[string]Partition{}}

	f, err := pool.Get(catalogPage)
	if err != nil {
		return nil, err
	}
	raw := make([]byte, store.PageSize)
	copy(raw, f.Data())
	f.Unpin()

	set, err := decodeCatalog(raw)
	if err != nil {
		return nil, err
	}
	for _, m := range set.Members() {
		name, first, schema, part, err := decodeEntry(m.Elem)
		if err != nil {
			return nil, err
		}
		t, err := table.Open(pool, schema, first)
		if err != nil {
			return nil, err
		}
		db.tables[name] = t
		if part != nil {
			db.parts[name] = *part
		}
	}
	return db, nil
}

// Pool exposes the buffer pool (statistics, advanced use).
func (db *Database) Pool() *store.BufferPool { return db.pool }

// CreateTable defines a new table and persists the catalog.
func (db *Database) CreateTable(schema table.Schema) (*table.Table, error) {
	if _, ok := db.tables[schema.Name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrTableExists, schema.Name)
	}
	t, err := table.Create(db.pool, schema)
	if err != nil {
		return nil, err
	}
	db.tables[schema.Name] = t
	if err := db.writeCatalog(); err != nil {
		delete(db.tables, schema.Name)
		return nil, err
	}
	return t, nil
}

// Table returns a defined table.
func (db *Database) Table(name string) (*table.Table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// Names lists the defined tables, sorted.
func (db *Database) Names() []string {
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// VacuumTable compacts a table (dropping tombstones and half-empty
// pages) and repoints the catalog at the compacted copy. The old heap's
// pages become garbage (page ids are never reused but never reclaimed —
// the simulation does not implement a free-space map).
func (db *Database) VacuumTable(name string) (*table.Table, error) {
	t, err := db.Table(name)
	if err != nil {
		return nil, err
	}
	compact, err := t.Vacuum()
	if err != nil {
		return nil, err
	}
	db.tables[name] = compact
	if err := db.writeCatalog(); err != nil {
		db.tables[name] = t
		return nil, err
	}
	return compact, nil
}

// Sync flushes every dirty page and rewrites the catalog.
func (db *Database) Sync() error {
	if err := db.writeCatalog(); err != nil {
		return err
	}
	return db.pool.FlushAll()
}

// Close syncs and closes the pager.
func (db *Database) Close() error {
	if err := db.Sync(); err != nil {
		db.pager.Close()
		return err
	}
	return db.pager.Close()
}

// SetPartition records how a table is sharded across a federation and
// persists the catalog. The column must exist in the table's schema.
func (db *Database) SetPartition(name string, p Partition) error {
	t, err := db.Table(name)
	if err != nil {
		return err
	}
	if err := p.valid(); err != nil {
		return err
	}
	if t.Schema().Col(p.Col) < 0 {
		return fmt.Errorf("catalog: partition column %q not in %s(%s)",
			p.Col, name, t.Schema().Cols)
	}
	prev, had := db.parts[name]
	db.parts[name] = p
	if err := db.writeCatalog(); err != nil {
		if had {
			db.parts[name] = prev
		} else {
			delete(db.parts, name)
		}
		return err
	}
	return nil
}

// Partition reports a table's recorded partition, if any.
func (db *Database) Partition(name string) (Partition, bool) {
	p, ok := db.parts[name]
	return p, ok
}

// CatalogSet renders the catalog as its extended set — the value that is
// actually stored on page 0. Partitioned tables carry a fourth tuple
// element ⟨kind, col, site, sites, ⟨bounds…⟩⟩.
func (db *Database) CatalogSet() *core.Set {
	b := core.NewBuilder(len(db.tables))
	for name, t := range db.tables {
		cols := make([]core.Value, len(t.Schema().Cols))
		for i, c := range t.Schema().Cols {
			cols[i] = core.Str(c)
		}
		elems := []core.Value{core.Str(name), core.Int(int64(t.FirstPage())), core.Tuple(cols...)}
		if p, ok := db.parts[name]; ok {
			elems = append(elems, core.Tuple(core.Str(p.Kind), core.Str(p.Col),
				core.Int(int64(p.Site)), core.Int(int64(p.Sites)), core.Tuple(p.Bounds...)))
		}
		b.AddClassical(core.Tuple(elems...))
	}
	return b.Set()
}

func (db *Database) writeCatalog() error {
	enc := core.Encode(db.CatalogSet())
	if len(enc)+4 > store.PageSize {
		return fmt.Errorf("%w: %d bytes", ErrCatalogFull, len(enc))
	}
	f, err := db.pool.Get(catalogPage)
	if err != nil {
		return err
	}
	defer f.Unpin()
	data := f.Data()
	data[0] = byte(len(enc))
	data[1] = byte(len(enc) >> 8)
	copy(data[2:], enc)
	f.MarkDirty()
	return nil
}

// BindAll loads every table of the database into an expression-language
// environment twice over: as its materialized extended set, so the REPL
// can query stored data symbolically (`users[{<1>}]` etc.), and as a
// table binding, so query statements (`from users where …`) stream it
// through the planner without materializing.
func (db *Database) BindAll(env *xlang.Env) error {
	for name, t := range db.tables {
		s, err := t.ToXST()
		if err != nil {
			return fmt.Errorf("catalog: binding %q: %w", name, err)
		}
		env.Bind(name, s)
		env.BindTable(name, t)
	}
	return nil
}

func decodeCatalog(raw []byte) (*core.Set, error) {
	n := int(raw[0]) | int(raw[1])<<8
	if n+2 > len(raw) {
		return nil, errors.New("catalog: corrupt catalog length")
	}
	v, err := core.DecodeFull(raw[2 : 2+n])
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	s, ok := v.(*core.Set)
	if !ok {
		return nil, errors.New("catalog: catalog value is not a set")
	}
	return s, nil
}

func decodeEntry(v core.Value) (name string, first store.PageID, schema table.Schema, part *Partition, err error) {
	elems, ok := core.TupleElems(v)
	if !ok || len(elems) < 3 || len(elems) > 4 {
		return "", 0, table.Schema{}, nil, fmt.Errorf("catalog: bad entry %v", v)
	}
	n, ok := elems[0].(core.Str)
	if !ok {
		return "", 0, table.Schema{}, nil, fmt.Errorf("catalog: bad name in %v", v)
	}
	pg, ok := elems[1].(core.Int)
	if !ok || pg < 0 {
		return "", 0, table.Schema{}, nil, fmt.Errorf("catalog: bad page in %v", v)
	}
	colVals, ok := core.TupleElems(elems[2])
	if !ok {
		return "", 0, table.Schema{}, nil, fmt.Errorf("catalog: bad columns in %v", v)
	}
	cols := make([]string, len(colVals))
	for i, cv := range colVals {
		cs, ok := cv.(core.Str)
		if !ok {
			return "", 0, table.Schema{}, nil, fmt.Errorf("catalog: bad column %v", cv)
		}
		cols[i] = string(cs)
	}
	if len(elems) == 4 {
		if part, err = decodePartition(elems[3]); err != nil {
			return "", 0, table.Schema{}, nil, err
		}
	}
	return string(n), store.PageID(pg), table.Schema{Name: string(n), Cols: cols}, part, nil
}

func decodePartition(v core.Value) (*Partition, error) {
	elems, ok := core.TupleElems(v)
	if !ok || len(elems) != 5 {
		return nil, fmt.Errorf("catalog: bad partition %v", v)
	}
	kind, kok := elems[0].(core.Str)
	col, cok := elems[1].(core.Str)
	site, sok := elems[2].(core.Int)
	sites, tok := elems[3].(core.Int)
	bounds, bok := core.TupleElems(elems[4])
	if !kok || !cok || !sok || !tok || !bok {
		return nil, fmt.Errorf("catalog: bad partition %v", v)
	}
	p := Partition{Kind: string(kind), Col: string(col), Site: int(site), Sites: int(sites)}
	if len(bounds) > 0 {
		p.Bounds = append([]core.Value(nil), bounds...)
	}
	if err := p.valid(); err != nil {
		return nil, err
	}
	return &p, nil
}
