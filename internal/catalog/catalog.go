// Package catalog makes the storage substrate durable: a Database owns
// one pager, keeps a catalog of its tables on page 0, and can be closed
// and reopened with every table intact. In the spirit of the paper, the
// catalog itself is an extended set —
//
//	{ ⟨name, firstPage, ⟨col1, …, coln⟩⟩ , … }
//
// serialized with the canonical value codec onto the catalog page, so
// the system's metadata has the same mathematical identity as its data.
package catalog

import (
	"errors"
	"fmt"
	"sort"

	"xst/internal/core"
	"xst/internal/store"
	"xst/internal/table"
	"xst/internal/xlang"
)

// catalogPage is the fixed location of the catalog root.
const catalogPage = store.PageID(0)

// ErrNoTable reports a lookup of an undefined table.
var ErrNoTable = errors.New("catalog: no such table")

// ErrTableExists reports a duplicate CreateTable.
var ErrTableExists = errors.New("catalog: table already exists")

// ErrCatalogFull reports a catalog that no longer fits its page.
var ErrCatalogFull = errors.New("catalog: catalog page full")

// Database is a durable collection of tables over one pager.
type Database struct {
	pager  store.Pager
	pool   *store.BufferPool
	tables map[string]*table.Table
}

// Create formats a fresh database on the pager (which must be empty) and
// returns it with the given buffer-pool frame budget.
func Create(pager store.Pager, frames int) (*Database, error) {
	if pager.NumPages() != 0 {
		return nil, fmt.Errorf("catalog: pager not empty (%d pages)", pager.NumPages())
	}
	pool := store.NewBufferPool(pager, frames)
	f, err := pool.Allocate()
	if err != nil {
		return nil, err
	}
	if f.ID() != catalogPage {
		f.Unpin()
		return nil, fmt.Errorf("catalog: catalog page allocated as %d", f.ID())
	}
	f.Unpin()
	db := &Database{pager: pager, pool: pool, tables: map[string]*table.Table{}}
	if err := db.writeCatalog(); err != nil {
		return nil, err
	}
	return db, nil
}

// Open reattaches to a database previously written by Create + Sync.
func Open(pager store.Pager, frames int) (*Database, error) {
	if pager.NumPages() == 0 {
		return nil, errors.New("catalog: pager empty; use Create")
	}
	pool := store.NewBufferPool(pager, frames)
	db := &Database{pager: pager, pool: pool, tables: map[string]*table.Table{}}

	f, err := pool.Get(catalogPage)
	if err != nil {
		return nil, err
	}
	raw := make([]byte, store.PageSize)
	copy(raw, f.Data())
	f.Unpin()

	set, err := decodeCatalog(raw)
	if err != nil {
		return nil, err
	}
	for _, m := range set.Members() {
		name, first, schema, err := decodeEntry(m.Elem)
		if err != nil {
			return nil, err
		}
		t, err := table.Open(pool, schema, first)
		if err != nil {
			return nil, err
		}
		db.tables[name] = t
	}
	return db, nil
}

// Pool exposes the buffer pool (statistics, advanced use).
func (db *Database) Pool() *store.BufferPool { return db.pool }

// CreateTable defines a new table and persists the catalog.
func (db *Database) CreateTable(schema table.Schema) (*table.Table, error) {
	if _, ok := db.tables[schema.Name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrTableExists, schema.Name)
	}
	t, err := table.Create(db.pool, schema)
	if err != nil {
		return nil, err
	}
	db.tables[schema.Name] = t
	if err := db.writeCatalog(); err != nil {
		delete(db.tables, schema.Name)
		return nil, err
	}
	return t, nil
}

// Table returns a defined table.
func (db *Database) Table(name string) (*table.Table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// Names lists the defined tables, sorted.
func (db *Database) Names() []string {
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// VacuumTable compacts a table (dropping tombstones and half-empty
// pages) and repoints the catalog at the compacted copy. The old heap's
// pages become garbage (page ids are never reused but never reclaimed —
// the simulation does not implement a free-space map).
func (db *Database) VacuumTable(name string) (*table.Table, error) {
	t, err := db.Table(name)
	if err != nil {
		return nil, err
	}
	compact, err := t.Vacuum()
	if err != nil {
		return nil, err
	}
	db.tables[name] = compact
	if err := db.writeCatalog(); err != nil {
		db.tables[name] = t
		return nil, err
	}
	return compact, nil
}

// Sync flushes every dirty page and rewrites the catalog.
func (db *Database) Sync() error {
	if err := db.writeCatalog(); err != nil {
		return err
	}
	return db.pool.FlushAll()
}

// Close syncs and closes the pager.
func (db *Database) Close() error {
	if err := db.Sync(); err != nil {
		db.pager.Close()
		return err
	}
	return db.pager.Close()
}

// CatalogSet renders the catalog as its extended set — the value that is
// actually stored on page 0.
func (db *Database) CatalogSet() *core.Set {
	b := core.NewBuilder(len(db.tables))
	for name, t := range db.tables {
		cols := make([]core.Value, len(t.Schema().Cols))
		for i, c := range t.Schema().Cols {
			cols[i] = core.Str(c)
		}
		entry := core.Tuple(core.Str(name), core.Int(int64(t.FirstPage())), core.Tuple(cols...))
		b.AddClassical(entry)
	}
	return b.Set()
}

func (db *Database) writeCatalog() error {
	enc := core.Encode(db.CatalogSet())
	if len(enc)+4 > store.PageSize {
		return fmt.Errorf("%w: %d bytes", ErrCatalogFull, len(enc))
	}
	f, err := db.pool.Get(catalogPage)
	if err != nil {
		return err
	}
	defer f.Unpin()
	data := f.Data()
	data[0] = byte(len(enc))
	data[1] = byte(len(enc) >> 8)
	copy(data[2:], enc)
	f.MarkDirty()
	return nil
}

// BindAll loads every table of the database into an expression-language
// environment twice over: as its materialized extended set, so the REPL
// can query stored data symbolically (`users[{<1>}]` etc.), and as a
// table binding, so query statements (`from users where …`) stream it
// through the planner without materializing.
func (db *Database) BindAll(env *xlang.Env) error {
	for name, t := range db.tables {
		s, err := t.ToXST()
		if err != nil {
			return fmt.Errorf("catalog: binding %q: %w", name, err)
		}
		env.Bind(name, s)
		env.BindTable(name, t)
	}
	return nil
}

func decodeCatalog(raw []byte) (*core.Set, error) {
	n := int(raw[0]) | int(raw[1])<<8
	if n+2 > len(raw) {
		return nil, errors.New("catalog: corrupt catalog length")
	}
	v, err := core.DecodeFull(raw[2 : 2+n])
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	s, ok := v.(*core.Set)
	if !ok {
		return nil, errors.New("catalog: catalog value is not a set")
	}
	return s, nil
}

func decodeEntry(v core.Value) (name string, first store.PageID, schema table.Schema, err error) {
	elems, ok := core.TupleElems(v)
	if !ok || len(elems) != 3 {
		return "", 0, table.Schema{}, fmt.Errorf("catalog: bad entry %v", v)
	}
	n, ok := elems[0].(core.Str)
	if !ok {
		return "", 0, table.Schema{}, fmt.Errorf("catalog: bad name in %v", v)
	}
	pg, ok := elems[1].(core.Int)
	if !ok || pg < 0 {
		return "", 0, table.Schema{}, fmt.Errorf("catalog: bad page in %v", v)
	}
	colVals, ok := core.TupleElems(elems[2])
	if !ok {
		return "", 0, table.Schema{}, fmt.Errorf("catalog: bad columns in %v", v)
	}
	cols := make([]string, len(colVals))
	for i, cv := range colVals {
		cs, ok := cv.(core.Str)
		if !ok {
			return "", 0, table.Schema{}, fmt.Errorf("catalog: bad column %v", cv)
		}
		cols[i] = string(cs)
	}
	return string(n), store.PageID(pg), table.Schema{Name: string(n), Cols: cols}, nil
}
