// Package catalog makes the storage substrate durable: a Database owns
// one pager, keeps a catalog of its tables on page 0, and can be closed
// and reopened with every table intact. In the spirit of the paper, the
// catalog itself is an extended set —
//
//	{ ⟨name, firstPage, ⟨col1, …, coln⟩⟩ , … }
//
// serialized with the canonical value codec onto the catalog page, so
// the system's metadata has the same mathematical identity as its data.
package catalog

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"xst/internal/core"
	"xst/internal/index"
	"xst/internal/plan"
	"xst/internal/stats"
	"xst/internal/store"
	"xst/internal/table"
	"xst/internal/xlang"
)

// catalogPage is the fixed location of the catalog root.
const catalogPage = store.PageID(0)

// metaTable is the hidden system table holding collected statistics and
// index declarations as rows ⟨kind, tbl, payload⟩. It persists through
// the ordinary catalog entry on page 0 but is excluded from Names and
// BindAll — "__"-prefixed names are reserved (sessions use them for
// scratch tables, which never reach the catalog).
const metaTable = "__meta"

// Index kinds recorded in __meta entries.
const (
	// IndexHash answers point (equality) lookups.
	IndexHash = "hash"
	// IndexBTree answers ordered range scans over atom columns.
	IndexBTree = "btree"
)

// Index is one declared index: its definition (persisted) plus the
// built in-memory structure (rebuilt at Open/Analyze/Vacuum). The
// structures are immutable once published — rebuilds swap in fresh
// ones, so plans compiled against an old snapshot stay safe.
type Index struct {
	Table string
	Col   string
	Kind  string
	Hash  *index.HashIndex
	BTree *index.BTree
}

// Partition kinds recorded in catalog entries.
const (
	// PartHash marks a table hash-partitioned on a column: a row lives
	// on site Digest(row[col]) % Sites.
	PartHash = "hash"
	// PartRange marks a table range-partitioned on a column under the
	// canonical value order: site i owns rows with Bounds[i-1] ≤ v <
	// Bounds[i] (site 0 is unbounded below, the last site unbounded
	// above), so len(Bounds) == Sites-1.
	PartRange = "range"
)

// Partition records how a table is sharded across a federation: which
// site's slice this database holds, how many sites there are, and the
// placement rule. It is the fourth element of a catalog entry —
// optional, so databases written before federation existed still open.
type Partition struct {
	// Kind is PartHash or PartRange.
	Kind string
	// Col is the partitioning column name.
	Col string
	// Site is this database's ordinal in the federation.
	Site int
	// Sites is the federation size.
	Sites int
	// Bounds are the range split points (PartRange only), ascending,
	// len == Sites-1.
	Bounds []core.Value
}

// valid performs structural checks shared by SetPartition and decode.
func (p Partition) valid() error {
	switch p.Kind {
	case PartHash:
		if len(p.Bounds) != 0 {
			return fmt.Errorf("catalog: hash partition carries bounds")
		}
	case PartRange:
		if len(p.Bounds) != p.Sites-1 {
			return fmt.Errorf("catalog: range partition needs %d bounds, has %d", p.Sites-1, len(p.Bounds))
		}
	default:
		return fmt.Errorf("catalog: unknown partition kind %q", p.Kind)
	}
	if p.Col == "" {
		return fmt.Errorf("catalog: partition without column")
	}
	if p.Sites < 1 || p.Site < 0 || p.Site >= p.Sites {
		return fmt.Errorf("catalog: partition site %d/%d out of range", p.Site, p.Sites)
	}
	return nil
}

// ErrNoTable reports a lookup of an undefined table.
var ErrNoTable = errors.New("catalog: no such table")

// ErrTableExists reports a duplicate CreateTable.
var ErrTableExists = errors.New("catalog: table already exists")

// ErrCatalogFull reports a catalog that no longer fits its page.
var ErrCatalogFull = errors.New("catalog: catalog page full")

// Database is a durable collection of tables over one pager.
//
// The mutex covers the metadata maps and the planner snapshot, not page
// I/O: readers (Table, Names, PlanCatalog) take the read lock, mutators
// (CreateTable, Analyze, CreateIndex, VacuumTable) the write lock.
// Compiled queries hold *table.Table and index-structure pointers
// directly, so running scans never contend with catalog changes.
type Database struct {
	pager  store.Pager
	pool   *store.BufferPool
	mu     sync.RWMutex
	tables map[string]*table.Table
	parts  map[string]Partition
	statsC map[string]*stats.TableStats
	idxs   map[string][]*Index
	// snap is the current planner catalog, rebuilt eagerly on every
	// metadata mutation and handed out as an immutable snapshot.
	snap *plan.Catalog
}

func newDatabase(pager store.Pager, pool *store.BufferPool) *Database {
	return &Database{
		pager:  pager,
		pool:   pool,
		tables: map[string]*table.Table{},
		parts:  map[string]Partition{},
		statsC: map[string]*stats.TableStats{},
		idxs:   map[string][]*Index{},
		snap:   &plan.Catalog{},
	}
}

// Create formats a fresh database on the pager (which must be empty) and
// returns it with the given buffer-pool frame budget.
func Create(pager store.Pager, frames int) (*Database, error) {
	if pager.NumPages() != 0 {
		return nil, fmt.Errorf("catalog: pager not empty (%d pages)", pager.NumPages())
	}
	pool := store.NewBufferPool(pager, frames)
	f, err := pool.Allocate()
	if err != nil {
		return nil, err
	}
	if f.ID() != catalogPage {
		f.Unpin()
		return nil, fmt.Errorf("catalog: catalog page allocated as %d", f.ID())
	}
	f.Unpin()
	db := newDatabase(pager, pool)
	if err := db.writeCatalog(); err != nil {
		return nil, err
	}
	return db, nil
}

// Open reattaches to a database previously written by Create + Sync.
func Open(pager store.Pager, frames int) (*Database, error) {
	if pager.NumPages() == 0 {
		return nil, errors.New("catalog: pager empty; use Create")
	}
	pool := store.NewBufferPool(pager, frames)
	db := newDatabase(pager, pool)

	f, err := pool.Get(catalogPage)
	if err != nil {
		return nil, err
	}
	raw := make([]byte, store.PageSize)
	copy(raw, f.Data())
	f.Unpin()

	set, err := decodeCatalog(raw)
	if err != nil {
		return nil, err
	}
	for _, m := range set.Members() {
		name, first, schema, part, err := decodeEntry(m.Elem)
		if err != nil {
			return nil, err
		}
		t, err := table.Open(pool, schema, first)
		if err != nil {
			return nil, err
		}
		db.tables[name] = t
		if part != nil {
			db.parts[name] = *part
		}
	}
	if err := db.loadMeta(); err != nil {
		return nil, err
	}
	db.rebuildSnapLocked()
	return db, nil
}

// Pool exposes the buffer pool (statistics, advanced use).
func (db *Database) Pool() *store.BufferPool { return db.pool }

// CreateTable defines a new table and persists the catalog.
func (db *Database) CreateTable(schema table.Schema) (*table.Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[schema.Name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrTableExists, schema.Name)
	}
	t, err := table.Create(db.pool, schema)
	if err != nil {
		return nil, err
	}
	db.tables[schema.Name] = t
	if err := db.writeCatalog(); err != nil {
		delete(db.tables, schema.Name)
		return nil, err
	}
	db.rebuildSnapLocked()
	return t, nil
}

// Table returns a defined table.
func (db *Database) Table(name string) (*table.Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tableLocked(name)
}

func (db *Database) tableLocked(name string) (*table.Table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// Names lists the defined tables, sorted. Reserved "__"-prefixed system
// tables (the statistics/index store) are omitted.
func (db *Database) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		if strings.HasPrefix(n, "__") {
			continue
		}
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// VacuumTable compacts a table (dropping tombstones and half-empty
// pages) and repoints the catalog at the compacted copy. The old heap's
// pages become garbage (page ids are never reused but never reclaimed —
// the simulation does not implement a free-space map).
func (db *Database) VacuumTable(name string) (*table.Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.tableLocked(name)
	if err != nil {
		return nil, err
	}
	compact, err := t.Vacuum()
	if err != nil {
		return nil, err
	}
	db.tables[name] = compact
	if err := db.writeCatalog(); err != nil {
		db.tables[name] = t
		return nil, err
	}
	// Indexes hold RIDs into the old heap — rebuild them over the copy.
	if err := db.rebuildIndexesLocked(name); err != nil {
		return nil, err
	}
	db.rebuildSnapLocked()
	return compact, nil
}

// Sync flushes every dirty page and rewrites the catalog.
func (db *Database) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.writeCatalog(); err != nil {
		return err
	}
	return db.pool.FlushAll()
}

// Close syncs and closes the pager.
func (db *Database) Close() error {
	if err := db.Sync(); err != nil {
		db.pager.Close()
		return err
	}
	return db.pager.Close()
}

// SetPartition records how a table is sharded across a federation and
// persists the catalog. The column must exist in the table's schema.
func (db *Database) SetPartition(name string, p Partition) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.tableLocked(name)
	if err != nil {
		return err
	}
	if err := p.valid(); err != nil {
		return err
	}
	if t.Schema().Col(p.Col) < 0 {
		return fmt.Errorf("catalog: partition column %q not in %s(%s)",
			p.Col, name, t.Schema().Cols)
	}
	prev, had := db.parts[name]
	db.parts[name] = p
	if err := db.writeCatalog(); err != nil {
		if had {
			db.parts[name] = prev
		} else {
			delete(db.parts, name)
		}
		return err
	}
	return nil
}

// Partition reports a table's recorded partition, if any.
func (db *Database) Partition(name string) (Partition, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	p, ok := db.parts[name]
	return p, ok
}

// CatalogSet renders the catalog as its extended set — the value that is
// actually stored on page 0. Partitioned tables carry a fourth tuple
// element ⟨kind, col, site, sites, ⟨bounds…⟩⟩.
func (db *Database) CatalogSet() *core.Set {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.catalogSetLocked()
}

func (db *Database) catalogSetLocked() *core.Set {
	b := core.NewBuilder(len(db.tables))
	for name, t := range db.tables {
		cols := make([]core.Value, len(t.Schema().Cols))
		for i, c := range t.Schema().Cols {
			cols[i] = core.Str(c)
		}
		elems := []core.Value{core.Str(name), core.Int(int64(t.FirstPage())), core.Tuple(cols...)}
		if p, ok := db.parts[name]; ok {
			elems = append(elems, core.Tuple(core.Str(p.Kind), core.Str(p.Col),
				core.Int(int64(p.Site)), core.Int(int64(p.Sites)), core.Tuple(p.Bounds...)))
		}
		b.AddClassical(core.Tuple(elems...))
	}
	return b.Set()
}

// writeCatalog persists page 0; callers hold the write lock (or have
// exclusive access during Create/Open).
func (db *Database) writeCatalog() error {
	enc := core.Encode(db.catalogSetLocked())
	if len(enc)+4 > store.PageSize {
		return fmt.Errorf("%w: %d bytes", ErrCatalogFull, len(enc))
	}
	f, err := db.pool.Get(catalogPage)
	if err != nil {
		return err
	}
	defer f.Unpin()
	data := f.Data()
	data[0] = byte(len(enc))
	data[1] = byte(len(enc) >> 8)
	copy(data[2:], enc)
	f.MarkDirty()
	return nil
}

// BindAll loads every table of the database into an expression-language
// environment twice over: as its materialized extended set, so the REPL
// can query stored data symbolically (`users[{<1>}]` etc.), and as a
// table binding, so query statements (`from users where …`) stream it
// through the planner without materializing. It also wires the
// database's planner catalog into the environment, making query
// compilation cost-based; the provider re-resolves per query, so clones
// of env see statistics refreshed by a later Analyze.
func (db *Database) BindAll(env *xlang.Env) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for name, t := range db.tables {
		if strings.HasPrefix(name, "__") {
			continue
		}
		s, err := t.ToXST()
		if err != nil {
			return fmt.Errorf("catalog: binding %q: %w", name, err)
		}
		env.Bind(name, s)
		env.BindTable(name, t)
	}
	env.BindPlanCatalog(db.PlanCatalog)
	return nil
}

// Analyze collects fresh statistics for every user table, rebuilds
// every declared index, persists both to the hidden __meta table, and
// republishes the planner snapshot. It returns the number of tables
// analyzed. This is the `.analyze` admin command's engine.
func (db *Database) Analyze(ctx context.Context) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	fresh := map[string]*stats.TableStats{}
	for name, t := range db.tables {
		if strings.HasPrefix(name, "__") {
			continue
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		ts, err := stats.Collect(t)
		if err != nil {
			return 0, fmt.Errorf("catalog: analyze %q: %w", name, err)
		}
		fresh[name] = ts
	}
	for name := range db.idxs {
		if err := db.rebuildIndexesLocked(name); err != nil {
			return 0, err
		}
	}
	db.statsC = fresh
	if err := db.persistMetaLocked(); err != nil {
		return 0, err
	}
	db.rebuildSnapLocked()
	return len(fresh), nil
}

// Stats reports the persisted statistics for one table, if analyzed.
func (db *Database) Stats(name string) (*stats.TableStats, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ts, ok := db.statsC[name]
	return ts, ok
}

// StatsCatalog returns the persisted statistics keyed by table name (a
// fresh map; the TableStats values are shared and immutable).
func (db *Database) StatsCatalog() stats.Catalog {
	db.mu.RLock()
	defer db.mu.RUnlock()
	cat := make(stats.Catalog, len(db.statsC))
	for name, ts := range db.statsC {
		cat[name] = ts
	}
	return cat
}

// CreateIndex declares and builds an index on table.col, persists the
// declaration, and republishes the planner snapshot. Kind is IndexHash
// (point lookups) or IndexBTree (ordered ranges; atom columns only).
func (db *Database) CreateIndex(ctx context.Context, tbl, col, kind string) (*Index, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if strings.HasPrefix(tbl, "__") {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, tbl)
	}
	t, err := db.tableLocked(tbl)
	if err != nil {
		return nil, err
	}
	if t.Schema().Col(col) < 0 {
		return nil, fmt.Errorf("catalog: index column %q not in %s(%s)", col, tbl, t.Schema().Cols)
	}
	if kind != IndexHash && kind != IndexBTree {
		return nil, fmt.Errorf("catalog: unknown index kind %q (want %s or %s)", kind, IndexHash, IndexBTree)
	}
	for _, ix := range db.idxs[tbl] {
		if ix.Col == col && ix.Kind == kind {
			return nil, fmt.Errorf("catalog: index on %s.%s (%s) already exists", tbl, col, kind)
		}
	}
	ix := &Index{Table: tbl, Col: col, Kind: kind}
	if err := db.buildIndexLocked(ctx, ix); err != nil {
		return nil, err
	}
	db.idxs[tbl] = append(db.idxs[tbl], ix)
	if err := db.persistMetaLocked(); err != nil {
		db.idxs[tbl] = db.idxs[tbl][:len(db.idxs[tbl])-1]
		return nil, err
	}
	db.rebuildSnapLocked()
	return ix, nil
}

// Indexes reports the declared indexes on a table.
func (db *Database) Indexes(tbl string) []*Index {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]*Index(nil), db.idxs[tbl]...)
}

// PlanCatalog returns the current planner catalog snapshot (statistics
// plus built indexes). The snapshot is immutable — mutations publish a
// fresh one — so callers may hold it across a whole query.
func (db *Database) PlanCatalog() *plan.Catalog {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.snap
}

// buildIndexLocked (re)builds ix's in-memory structure from its table.
func (db *Database) buildIndexLocked(ctx context.Context, ix *Index) error {
	t, err := db.tableLocked(ix.Table)
	if err != nil {
		return err
	}
	col := t.Schema().Col(ix.Col)
	if col < 0 {
		return fmt.Errorf("catalog: index column %q not in %s(%s)", ix.Col, ix.Table, t.Schema().Cols)
	}
	switch ix.Kind {
	case IndexHash:
		h, err := index.BuildHash(ctx, t, col)
		if err != nil {
			return fmt.Errorf("catalog: building hash index %s.%s: %w", ix.Table, ix.Col, err)
		}
		ix.Hash = h
	case IndexBTree:
		bt, err := index.BuildBTree(ctx, t, col)
		if err != nil {
			return fmt.Errorf("catalog: building btree index %s.%s: %w", ix.Table, ix.Col, err)
		}
		ix.BTree = bt
	default:
		return fmt.Errorf("catalog: unknown index kind %q", ix.Kind)
	}
	return nil
}

// rebuildIndexesLocked refreshes every index structure on one table —
// required after Vacuum (RIDs move) and Analyze (rows changed since the
// structures were built).
func (db *Database) rebuildIndexesLocked(name string) error {
	for _, ix := range db.idxs[name] {
		if err := db.buildIndexLocked(context.Background(), ix); err != nil {
			return err
		}
	}
	return nil
}

// rebuildSnapLocked republishes the planner catalog from the current
// statistics and index structures. Always a fresh value: snapshots
// already handed out stay internally consistent.
func (db *Database) rebuildSnapLocked() {
	snap := &plan.Catalog{Stats: make(stats.Catalog, len(db.statsC))}
	for name, ts := range db.statsC {
		snap.Stats[name] = ts
	}
	names := make([]string, 0, len(db.idxs))
	for name := range db.idxs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t, ok := db.tables[name]
		if !ok {
			continue
		}
		for _, ix := range db.idxs[name] {
			ti := &plan.TableIndex{Table: t, Col: ix.Col, Hash: ix.Hash, BTree: ix.BTree}
			if ix.Kind == IndexBTree {
				ti.Kind = plan.BTreeIdx
			}
			snap.Indexes = append(snap.Indexes, ti)
		}
	}
	db.snap = snap
}

var metaSchema = table.Schema{Name: metaTable, Cols: []string{"kind", "tbl", "payload"}}

// persistMetaLocked rewrites the __meta table from the in-memory
// statistics and index declarations: a fresh heap is filled and the
// catalog repointed (the Vacuum idiom — old pages become garbage).
func (db *Database) persistMetaLocked() error {
	t, err := table.Create(db.pool, metaSchema)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(db.statsC))
	for name := range db.statsC {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		row := table.Row{core.Str("stats"), core.Str(name), db.statsC[name].Value()}
		if _, err := t.Insert(row); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range db.idxs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, ix := range db.idxs[name] {
			row := table.Row{core.Str("index"), core.Str(name), core.Tuple(core.Str(ix.Col), core.Str(ix.Kind))}
			if _, err := t.Insert(row); err != nil {
				return err
			}
		}
	}
	prev, had := db.tables[metaTable]
	db.tables[metaTable] = t
	if err := db.writeCatalog(); err != nil {
		if had {
			db.tables[metaTable] = prev
		} else {
			delete(db.tables, metaTable)
		}
		return err
	}
	return nil
}

// loadMeta restores statistics and index declarations from __meta at
// Open time, rebuilding every index structure. Called before the
// database is shared, so no locking.
func (db *Database) loadMeta() error {
	t, ok := db.tables[metaTable]
	if !ok {
		return nil
	}
	type idxDef struct{ tbl, col, kind string }
	var defs []idxDef
	err := t.Scan(func(_ store.RID, r table.Row) (bool, error) {
		if len(r) != 3 {
			return false, fmt.Errorf("catalog: bad __meta row %v", r)
		}
		kind, kok := r[0].(core.Str)
		tbl, tok := r[1].(core.Str)
		if !kok || !tok {
			return false, fmt.Errorf("catalog: bad __meta row %v", r)
		}
		switch string(kind) {
		case "stats":
			ts, err := stats.DecodeTableStats(r[2])
			if err != nil {
				return false, fmt.Errorf("catalog: __meta stats for %q: %w", tbl, err)
			}
			db.statsC[string(tbl)] = ts
		case "index":
			elems, ok := core.TupleElems(r[2])
			if !ok || len(elems) != 2 {
				return false, fmt.Errorf("catalog: bad __meta index payload %v", r[2])
			}
			col, cok := elems[0].(core.Str)
			ikind, iok := elems[1].(core.Str)
			if !cok || !iok {
				return false, fmt.Errorf("catalog: bad __meta index payload %v", r[2])
			}
			defs = append(defs, idxDef{tbl: string(tbl), col: string(col), kind: string(ikind)})
		default:
			return false, fmt.Errorf("catalog: unknown __meta kind %q", kind)
		}
		return true, nil
	})
	if err != nil {
		return err
	}
	for _, d := range defs {
		ix := &Index{Table: d.tbl, Col: d.col, Kind: d.kind}
		if err := db.buildIndexLocked(context.Background(), ix); err != nil {
			return err
		}
		db.idxs[d.tbl] = append(db.idxs[d.tbl], ix)
	}
	return nil
}

func decodeCatalog(raw []byte) (*core.Set, error) {
	n := int(raw[0]) | int(raw[1])<<8
	if n+2 > len(raw) {
		return nil, errors.New("catalog: corrupt catalog length")
	}
	v, err := core.DecodeFull(raw[2 : 2+n])
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	s, ok := v.(*core.Set)
	if !ok {
		return nil, errors.New("catalog: catalog value is not a set")
	}
	return s, nil
}

func decodeEntry(v core.Value) (name string, first store.PageID, schema table.Schema, part *Partition, err error) {
	elems, ok := core.TupleElems(v)
	if !ok || len(elems) < 3 || len(elems) > 4 {
		return "", 0, table.Schema{}, nil, fmt.Errorf("catalog: bad entry %v", v)
	}
	n, ok := elems[0].(core.Str)
	if !ok {
		return "", 0, table.Schema{}, nil, fmt.Errorf("catalog: bad name in %v", v)
	}
	pg, ok := elems[1].(core.Int)
	if !ok || pg < 0 {
		return "", 0, table.Schema{}, nil, fmt.Errorf("catalog: bad page in %v", v)
	}
	colVals, ok := core.TupleElems(elems[2])
	if !ok {
		return "", 0, table.Schema{}, nil, fmt.Errorf("catalog: bad columns in %v", v)
	}
	cols := make([]string, len(colVals))
	for i, cv := range colVals {
		cs, ok := cv.(core.Str)
		if !ok {
			return "", 0, table.Schema{}, nil, fmt.Errorf("catalog: bad column %v", cv)
		}
		cols[i] = string(cs)
	}
	if len(elems) == 4 {
		if part, err = decodePartition(elems[3]); err != nil {
			return "", 0, table.Schema{}, nil, err
		}
	}
	return string(n), store.PageID(pg), table.Schema{Name: string(n), Cols: cols}, part, nil
}

func decodePartition(v core.Value) (*Partition, error) {
	elems, ok := core.TupleElems(v)
	if !ok || len(elems) != 5 {
		return nil, fmt.Errorf("catalog: bad partition %v", v)
	}
	kind, kok := elems[0].(core.Str)
	col, cok := elems[1].(core.Str)
	site, sok := elems[2].(core.Int)
	sites, tok := elems[3].(core.Int)
	bounds, bok := core.TupleElems(elems[4])
	if !kok || !cok || !sok || !tok || !bok {
		return nil, fmt.Errorf("catalog: bad partition %v", v)
	}
	p := Partition{Kind: string(kind), Col: string(col), Site: int(site), Sites: int(sites)}
	if len(bounds) > 0 {
		p.Bounds = append([]core.Value(nil), bounds...)
	}
	if err := p.valid(); err != nil {
		return nil, err
	}
	return &p, nil
}
