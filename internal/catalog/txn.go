package catalog

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"xst/internal/core"
	"xst/internal/index"
	"xst/internal/stats"
	"xst/internal/store"
	"xst/internal/table"
	"xst/internal/trace"
	"xst/internal/wal"
)

// Transactions: every mutation path — inserts and loads, table
// creation, vacuum, partition declarations, statistics and index
// persistence — runs inside a wal transaction and commits atomically.
//
// The shape is single-writer, many-snapshot-readers:
//
//   - Begin takes the database's writer lock for the transaction's
//     whole lifetime; writers serialize, readers never wait.
//   - All page mutations go through a txnIO adapter: reads fall through
//     to the committed image in the buffer pool, writes collect in the
//     wal transaction's shadow. Nothing committed is touched while the
//     statement runs, so an abort is free and readers keep scanning.
//   - Commit appends the after-images and a commit marker to the log,
//     fsyncs, then installs the images through store.CommitPages —
//     which advances the MVCC epoch and parks superseded images for
//     active snapshot views — and finally publishes the new table
//     structs, layered indexes, and planner snapshot under db.mu, all
//     while a snapshot reader observes either the whole commit or none
//     of it.
//
// Incremental index maintenance rides the same commit: each declared
// index on a table that received inserts is republished as a layered
// copy-on-write successor (index.WithInserts / BTree.Inserted), so a
// point lookup right after a load takes the index path without waiting
// for the next .analyze.

// txnIO adapts a wal.Txn to store.PageIO: reads resolve shadow-first
// then fall through to the committed image in the pool; the first
// MarkDirty on a page installs its buffer into the shadow.
type txnIO struct {
	tx   *wal.Txn
	pool *store.BufferPool
}

// txnPage is one page handle inside a transaction. buf is either the
// live shadow buffer (inShadow) or a private copy of the committed
// image that joins the shadow on the first MarkDirty.
type txnPage struct {
	io       *txnIO
	id       store.PageID
	buf      []byte
	inShadow bool
}

func (p *txnPage) ID() store.PageID { return p.id }
func (p *txnPage) Data() []byte     { return p.buf }
func (p *txnPage) Unpin()           {}

func (p *txnPage) MarkDirty() {
	if !p.inShadow {
		p.io.tx.Install(p.id, p.buf)
		p.inShadow = true
	}
}

// Page implements store.PageIO.
func (io *txnIO) Page(id store.PageID) (store.PageHandle, error) {
	if img, ok := io.tx.ShadowPage(id); ok {
		return &txnPage{io: io, id: id, buf: img, inShadow: true}, nil
	}
	fr, err := io.pool.Get(id)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, store.PageSize)
	copy(buf, fr.Data())
	fr.Unpin()
	return &txnPage{io: io, id: id, buf: buf}, nil
}

// AllocatePage implements store.PageIO. The id comes from the base
// pager (ids are never reused, so an abort just strands a zero page);
// the zeroed image sits in the shadow already.
func (io *txnIO) AllocatePage() (store.PageHandle, error) {
	id, err := io.tx.Allocate()
	if err != nil {
		return nil, err
	}
	img, _ := io.tx.ShadowPage(id)
	return &txnPage{io: io, id: id, buf: img, inShadow: true}, nil
}

// insertRec is one staged row for incremental index maintenance.
type insertRec struct {
	rid store.RID
	row table.Row
}

// tableState is one table touched by a transaction: the writable clone
// bound to the transaction's shadow, the rows it inserted (for index
// layering at commit), and whether the heap was replaced outright
// (create/vacuum/meta rewrite), which forces a full index rebuild
// instead of layering.
type tableState struct {
	t        *table.Table
	ins      []insertRec
	replaced bool
}

// Txn is one atomic statement against the database: reads see the
// committed state plus the transaction's own writes; Commit publishes
// everything (pages, catalog, indexes, planner snapshot) in one epoch,
// and Abort discards it all. Exactly one of Commit/Abort must be
// called; Begin holds the writer lock until then.
type Txn struct {
	db        *Database
	wtx       *wal.Txn
	io        *txnIO
	tables    map[string]*tableState
	parts     map[string]Partition
	newStats  map[string]*stats.TableStats // full replacement when non-nil
	newIdxs   map[string][]*Index          // per-table replacement
	catDirty  bool
	metaDirty bool
	done      bool
}

// Begin starts a transaction. Writers serialize: Begin blocks until
// the previous transaction commits or aborts. Snapshot readers are
// never blocked.
func (db *Database) Begin() *Txn {
	db.writeMu.Lock()
	wtx := db.mgr.Begin()
	return &Txn{
		db:     db,
		wtx:    wtx,
		io:     &txnIO{tx: wtx, pool: db.pool},
		tables: map[string]*tableState{},
	}
}

// state returns the transaction's writable clone of a table, creating
// it from the committed table on first touch.
func (tx *Txn) state(name string) (*tableState, error) {
	if st, ok := tx.tables[name]; ok {
		return st, nil
	}
	t, err := tx.db.Table(name)
	if err != nil {
		return nil, err
	}
	st := &tableState{t: t.WithIO(tx.io)}
	tx.tables[name] = st
	return st, nil
}

// Table returns the transaction's writable view of a table: its pages
// resolve shadow-first, so the transaction reads its own writes while
// the committed table stays untouched.
func (tx *Txn) Table(name string) (*table.Table, error) {
	if tx.done {
		return nil, wal.ErrTxnDone
	}
	st, err := tx.state(name)
	if err != nil {
		return nil, err
	}
	return st.t, nil
}

// Insert appends rows to a table within the transaction, recording
// them for incremental index maintenance at commit.
func (tx *Txn) Insert(name string, rows ...table.Row) error {
	if tx.done {
		return wal.ErrTxnDone
	}
	st, err := tx.state(name)
	if err != nil {
		return err
	}
	for _, r := range rows {
		rid, err := st.t.Insert(r)
		if err != nil {
			return err
		}
		st.ins = append(st.ins, insertRec{rid: rid, row: r})
	}
	return nil
}

// CreateTable defines a new table within the transaction. The returned
// table is shadow-bound; read the committed clone from the database
// after Commit.
func (tx *Txn) CreateTable(schema table.Schema) (*table.Table, error) {
	if tx.done {
		return nil, wal.ErrTxnDone
	}
	if _, ok := tx.tables[schema.Name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrTableExists, schema.Name)
	}
	tx.db.mu.RLock()
	_, exists := tx.db.tables[schema.Name]
	tx.db.mu.RUnlock()
	if exists {
		return nil, fmt.Errorf("%w: %q", ErrTableExists, schema.Name)
	}
	t, err := table.CreateIn(tx.io, tx.db.pool, schema)
	if err != nil {
		return nil, err
	}
	tx.tables[schema.Name] = &tableState{t: t, replaced: true}
	tx.catDirty = true
	return t, nil
}

// SetPartition stages a partition declaration for a table. It reads
// the table only to validate the column — deliberately not through
// tx.state, so commit does not republish a fresh table struct for a
// metadata-only change (callers holding the current struct keep it).
func (tx *Txn) SetPartition(name string, p Partition) error {
	if tx.done {
		return wal.ErrTxnDone
	}
	var t *table.Table
	if st, ok := tx.tables[name]; ok {
		t = st.t
	} else {
		var err error
		if t, err = tx.db.Table(name); err != nil {
			return err
		}
	}
	if err := p.valid(); err != nil {
		return err
	}
	if t.Schema().Col(p.Col) < 0 {
		return fmt.Errorf("catalog: partition column %q not in %s(%s)",
			p.Col, name, t.Schema().Cols)
	}
	if tx.parts == nil {
		tx.parts = map[string]Partition{}
	}
	tx.parts[name] = p
	tx.catDirty = true
	return nil
}

// Vacuum rewrites a table into a fresh compact heap inside the
// transaction. Its indexes are rebuilt over the copy at commit.
func (tx *Txn) Vacuum(name string) error {
	if tx.done {
		return wal.ErrTxnDone
	}
	st, err := tx.state(name)
	if err != nil {
		return err
	}
	compact, err := table.CreateIn(tx.io, tx.db.pool, st.t.Schema())
	if err != nil {
		return err
	}
	err = st.t.Scan(func(_ store.RID, r table.Row) (bool, error) {
		_, err := compact.Insert(r)
		return true, err
	})
	if err != nil {
		return err
	}
	st.t = compact
	st.ins = nil
	st.replaced = true
	tx.catDirty = true
	// Record ids move when the heap is rewritten, so every index on the
	// table is rebuilt over the compacted copy (reading through the
	// shadow — the copy is not committed yet) and staged for publish.
	old := tx.db.idxs[name]
	if staged, ok := tx.newIdxs[name]; ok {
		old = staged
	}
	if len(old) > 0 {
		rebuilt := make([]*Index, 0, len(old))
		for _, ix := range old {
			nw := &Index{Table: ix.Table, Col: ix.Col, Kind: ix.Kind}
			if err := buildIndexOn(context.Background(), compact, nw); err != nil {
				return err
			}
			rebuilt = append(rebuilt, nw)
		}
		if tx.newIdxs == nil {
			tx.newIdxs = map[string][]*Index{}
		}
		tx.newIdxs[name] = rebuilt
		tx.metaDirty = true
	}
	return nil
}

// Abort discards the transaction and releases the writer lock. Safe to
// call after Commit (a no-op), so `defer tx.Abort()` is a valid unwind
// guard.
func (tx *Txn) Abort() {
	if tx.done {
		return
	}
	tx.done = true
	tx.wtx.Abort()
	tx.db.writeMu.Unlock()
}

// Commit makes the transaction durable and visible: catalog page and
// __meta rewrites join the shadow, the wal logs and fsyncs every
// after-image, the buffer pool installs them under a new MVCC epoch,
// and the table structs / layered indexes / planner snapshot publish
// atomically with that epoch. On error the transaction is dead (the
// writer lock is released); the database keeps serving its last
// committed state.
func (tx *Txn) Commit(ctx context.Context) error {
	if tx.done {
		return wal.ErrTxnDone
	}
	tx.done = true
	db := tx.db
	defer db.writeMu.Unlock()
	if tx.metaDirty {
		if err := tx.stageMeta(); err != nil {
			tx.wtx.Abort()
			return err
		}
	}
	if tx.catDirty {
		if err := tx.stageCatalogPage(); err != nil {
			tx.wtx.Abort()
			return err
		}
	}

	sp := trace.SpanOf(ctx).Start("wal")
	sp.AddBatches(tx.wtx.Pages())
	db.mu.Lock()
	err := tx.wtx.CommitWith(func(pages map[store.PageID][]byte, fresh map[store.PageID]bool) error {
		_, err := db.pool.CommitPages(pages, fresh)
		return err
	})
	if err != nil {
		db.mu.Unlock()
		sp.End()
		return err
	}
	tx.publishLocked()
	db.mu.Unlock()
	sp.End()

	// Auto-checkpoint: fold the log into the base once it outgrows the
	// threshold. Still under writeMu, so no transaction is in flight.
	if db.autoCk > 0 && db.mgr.LoggedBytes() >= db.autoCk {
		if err := db.mgr.Checkpoint(); err != nil {
			return fmt.Errorf("catalog: auto checkpoint: %w", err)
		}
	}
	return nil
}

// stageMeta rewrites the hidden __meta table (statistics + index
// declarations) into a fresh shadow-bound heap — the same rewrite
// persistMeta does outside transactions, but atomic with the commit.
func (tx *Txn) stageMeta() error {
	db := tx.db
	mt, err := table.CreateIn(tx.io, db.pool, metaSchema)
	if err != nil {
		return err
	}
	statsC := tx.newStats
	if statsC == nil {
		statsC = db.StatsCatalog()
	}
	decls := tx.mergedIdxDecls()
	if err := fillMeta(mt, statsC, decls); err != nil {
		return err
	}
	tx.tables[metaTable] = &tableState{t: mt, replaced: true}
	tx.catDirty = true
	return nil
}

// mergedIdxDecls returns the transaction's view of the per-table index
// lists: committed, overlaid with staged replacements.
func (tx *Txn) mergedIdxDecls() map[string][]*Index {
	db := tx.db
	db.mu.RLock()
	out := make(map[string][]*Index, len(db.idxs))
	for name, list := range db.idxs {
		out[name] = list
	}
	db.mu.RUnlock()
	for name, list := range tx.newIdxs {
		if len(list) == 0 {
			delete(out, name)
			continue
		}
		out[name] = list
	}
	return out
}

// stageCatalogPage writes the merged catalog set onto page 0 through
// the transaction shadow.
func (tx *Txn) stageCatalogPage() error {
	db := tx.db
	db.mu.RLock()
	tables := make(map[string]*table.Table, len(db.tables)+len(tx.tables))
	for name, t := range db.tables {
		tables[name] = t
	}
	parts := make(map[string]Partition, len(db.parts)+len(tx.parts))
	for name, p := range db.parts {
		parts[name] = p
	}
	db.mu.RUnlock()
	for name, st := range tx.tables {
		tables[name] = st.t
	}
	for name, p := range tx.parts {
		parts[name] = p
	}
	enc := core.Encode(catalogSetOf(tables, parts))
	if len(enc)+4 > store.PageSize {
		return fmt.Errorf("%w: %d bytes", ErrCatalogFull, len(enc))
	}
	fr, err := tx.io.Page(catalogPage)
	if err != nil {
		return err
	}
	data := fr.Data()
	data[0] = byte(len(enc))
	data[1] = byte(len(enc) >> 8)
	copy(data[2:], enc)
	fr.MarkDirty()
	fr.Unpin()
	return nil
}

// publishLocked installs the transaction's results into the live
// database maps; db.mu is held, so readers see the new tables, parts,
// stats, indexes and planner snapshot at once — and, because the MVCC
// epoch advanced in the same critical section, a BeginRead either
// pairs the old snapshot with the old epoch or the new with the new.
func (tx *Txn) publishLocked() {
	db := tx.db
	for name, st := range tx.tables {
		db.tables[name] = st.t.WithIO(db.pool)
	}
	for name, p := range tx.parts {
		db.parts[name] = p
	}
	if tx.newStats != nil {
		db.statsC = tx.newStats
	}
	for name, list := range tx.newIdxs {
		if len(list) == 0 {
			delete(db.idxs, name)
			continue
		}
		db.idxs[name] = list
	}
	// Incremental index maintenance: tables that took inserts republish
	// each declared index as a layered copy-on-write successor over the
	// committed structure. Replaced heaps (create/vacuum) were already
	// rebuilt in full via newIdxs.
	for name, st := range tx.tables {
		if st.replaced || len(st.ins) == 0 {
			continue
		}
		if _, staged := tx.newIdxs[name]; staged {
			continue
		}
		old := db.idxs[name]
		if len(old) == 0 {
			continue
		}
		fresh := make([]*Index, len(old))
		for i, ix := range old {
			fresh[i] = layerIndex(ix, db.tables[name], st.ins)
		}
		db.idxs[name] = fresh
	}
	db.rebuildSnapLocked()
}

// layerIndex derives the incremental successor of one index from the
// staged inserts. A row whose key cannot be derived (non-atom under a
// btree) falls back to sharing the old structure — the same rows would
// have failed a full rebuild, so staying stale is the conservative
// choice.
func layerIndex(ix *Index, t *table.Table, ins []insertRec) *Index {
	col := t.Schema().Col(ix.Col)
	if col < 0 {
		return ix
	}
	out := &Index{Table: ix.Table, Col: ix.Col, Kind: ix.Kind}
	switch ix.Kind {
	case IndexHash:
		if ix.Hash == nil {
			return ix
		}
		entries := make([]index.Entry, 0, len(ins))
		for _, in := range ins {
			entries = append(entries, index.Entry{Key: core.Key(in.row[col]), RID: in.rid})
		}
		out.Hash = ix.Hash.WithInserts(entries)
	case IndexBTree:
		if ix.BTree == nil {
			return ix
		}
		entries := make([]index.Entry, 0, len(ins))
		for _, in := range ins {
			if _, ok := core.AtomKeyOf(in.row[col]); !ok {
				return ix
			}
			entries = append(entries, index.Entry{Key: core.OrderKey(in.row[col]), RID: in.rid})
		}
		out.BTree = ix.BTree.Inserted(entries)
	default:
		return ix
	}
	return out
}

// catalogSetOf renders a catalog set from explicit table/partition
// maps (shared by the committed path and the transaction's merge).
func catalogSetOf(tables map[string]*table.Table, parts map[string]Partition) *core.Set {
	b := core.NewBuilder(len(tables))
	for name, t := range tables {
		cols := make([]core.Value, len(t.Schema().Cols))
		for i, c := range t.Schema().Cols {
			cols[i] = core.Str(c)
		}
		elems := []core.Value{core.Str(name), core.Int(int64(t.FirstPage())), core.Tuple(cols...)}
		if p, ok := parts[name]; ok {
			elems = append(elems, core.Tuple(core.Str(p.Kind), core.Str(p.Col),
				core.Int(int64(p.Site)), core.Int(int64(p.Sites)), core.Tuple(p.Bounds...)))
		}
		b.AddClassical(core.Tuple(elems...))
	}
	return b.Set()
}

// fillMeta writes the statistics and index-declaration rows into a
// fresh __meta table (shared by persistMeta and stageMeta).
func fillMeta(t *table.Table, statsC map[string]*stats.TableStats, idxs map[string][]*Index) error {
	names := make([]string, 0, len(statsC))
	for name := range statsC {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		row := table.Row{core.Str("stats"), core.Str(name), statsC[name].Value()}
		if _, err := t.Insert(row); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range idxs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, ix := range idxs[name] {
			row := table.Row{core.Str("index"), core.Str(name), core.Tuple(core.Str(ix.Col), core.Str(ix.Kind))}
			if _, err := t.Insert(row); err != nil {
				return err
			}
		}
	}
	return nil
}

// analyzeTxn is Analyze's transactional engine: collect fresh
// statistics and rebuilt indexes from the committed tables, stage them
// with a __meta rewrite, and commit.
func (tx *Txn) analyze(ctx context.Context) (int, error) {
	db := tx.db
	db.mu.RLock()
	tables := make(map[string]*table.Table, len(db.tables))
	for name, t := range db.tables {
		tables[name] = t
	}
	decls := make(map[string][]*Index, len(db.idxs))
	for name, list := range db.idxs {
		decls[name] = list
	}
	db.mu.RUnlock()

	fresh := map[string]*stats.TableStats{}
	for name, t := range tables {
		if strings.HasPrefix(name, "__") {
			continue
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		ts, err := stats.Collect(t)
		if err != nil {
			return 0, fmt.Errorf("catalog: analyze %q: %w", name, err)
		}
		fresh[name] = ts
	}
	tx.newIdxs = map[string][]*Index{}
	for name, list := range decls {
		t, ok := tables[name]
		if !ok {
			continue
		}
		rebuilt := make([]*Index, 0, len(list))
		for _, ix := range list {
			nix := &Index{Table: ix.Table, Col: ix.Col, Kind: ix.Kind}
			if err := buildIndexOn(ctx, t, nix); err != nil {
				return 0, err
			}
			rebuilt = append(rebuilt, nix)
		}
		tx.newIdxs[name] = rebuilt
	}
	tx.newStats = fresh
	tx.metaDirty = true
	return len(fresh), nil
}

// buildIndexOn (re)builds ix's structure from an explicit table.
func buildIndexOn(ctx context.Context, t *table.Table, ix *Index) error {
	col := t.Schema().Col(ix.Col)
	if col < 0 {
		return fmt.Errorf("catalog: index column %q not in %s(%s)", ix.Col, ix.Table, t.Schema().Cols)
	}
	switch ix.Kind {
	case IndexHash:
		h, err := index.BuildHash(ctx, t, col)
		if err != nil {
			return fmt.Errorf("catalog: building hash index %s.%s: %w", ix.Table, ix.Col, err)
		}
		ix.Hash = h
	case IndexBTree:
		bt, err := index.BuildBTree(ctx, t, col)
		if err != nil {
			return fmt.Errorf("catalog: building btree index %s.%s: %w", ix.Table, ix.Col, err)
		}
		ix.BTree = bt
	default:
		return fmt.Errorf("catalog: unknown index kind %q", ix.Kind)
	}
	return nil
}
