package catalog

import (
	"context"
	"strings"
	"testing"

	"xst/internal/core"
	"xst/internal/plan"
	"xst/internal/store"
	"xst/internal/table"
	"xst/internal/xlang"
)

// seedOrders creates an orders table ⟨id, region, amount⟩ with n rows,
// ids 0..n-1 and two regions split evenly.
func seedOrders(t *testing.T, db *Database, n int) *table.Table {
	t.Helper()
	tab, err := db.CreateTable(table.Schema{Name: "orders", Cols: []string{"id", "region", "amount"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		region := "east"
		if i%2 == 1 {
			region = "west"
		}
		if _, err := tab.Insert(table.Row{core.Int(i), core.Str(region), core.Int(i * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func TestAnalyzePersistsStats(t *testing.T) {
	pager := store.NewMemPager()
	db, err := Create(pager, 64)
	if err != nil {
		t.Fatal(err)
	}
	seedOrders(t, db, 100)

	if _, ok := db.Stats("orders"); ok {
		t.Fatal("stats present before analyze")
	}
	n, err := db.Analyze(context.Background())
	if err != nil || n != 1 {
		t.Fatalf("Analyze = %d, %v", n, err)
	}
	ts, ok := db.Stats("orders")
	if !ok || ts.Rows != 100 {
		t.Fatalf("Stats(orders) = %+v, %v", ts, ok)
	}
	if d := ts.Columns[1].Distinct; d != 2 {
		t.Fatalf("region distinct = %d, want 2", d)
	}
	if cat := db.PlanCatalog(); cat.Stats["orders"] != ts {
		t.Fatal("PlanCatalog does not carry the analyzed stats")
	}
	// The hidden __meta table must not leak into user-facing listings.
	for _, name := range db.Names() {
		if strings.HasPrefix(name, "__") {
			t.Fatalf("Names leaks %q", name)
		}
	}

	// Restart: statistics come back without re-analyzing.
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(pager, 64)
	if err != nil {
		t.Fatal(err)
	}
	ts2, ok := db2.Stats("orders")
	if !ok || ts2.Rows != 100 || ts2.Columns[1].Distinct != 2 {
		t.Fatalf("reopened stats = %+v, %v", ts2, ok)
	}
	// Histogram bounds survive the round trip too.
	if len(ts2.Columns[0].Bounds()) != len(ts.Columns[0].Bounds()) {
		t.Fatalf("bounds lost: %d vs %d", len(ts2.Columns[0].Bounds()), len(ts.Columns[0].Bounds()))
	}
}

func TestCreateIndexValidatesAndPersists(t *testing.T) {
	pager := store.NewMemPager()
	db, err := Create(pager, 64)
	if err != nil {
		t.Fatal(err)
	}
	seedOrders(t, db, 50)
	ctx := context.Background()

	if _, err := db.CreateIndex(ctx, "nope", "id", IndexHash); err == nil {
		t.Fatal("index on absent table must fail")
	}
	if _, err := db.CreateIndex(ctx, "orders", "nope", IndexHash); err == nil {
		t.Fatal("index on absent column must fail")
	}
	if _, err := db.CreateIndex(ctx, "orders", "id", "trie"); err == nil {
		t.Fatal("unknown index kind must fail")
	}
	if _, err := db.CreateIndex(ctx, "__meta", "kind", IndexHash); err == nil {
		t.Fatal("index on system table must fail")
	}
	if _, err := db.CreateIndex(ctx, "orders", "id", IndexHash); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex(ctx, "orders", "id", IndexHash); err == nil {
		t.Fatal("duplicate index must fail")
	}
	if _, err := db.CreateIndex(ctx, "orders", "id", IndexBTree); err != nil {
		t.Fatal(err)
	}
	ixs := db.Indexes("orders")
	if len(ixs) != 2 || ixs[0].Hash == nil || ixs[1].BTree == nil {
		t.Fatalf("Indexes = %+v", ixs)
	}

	// Restart: declarations come back and structures are rebuilt.
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(pager, 64)
	if err != nil {
		t.Fatal(err)
	}
	ixs2 := db2.Indexes("orders")
	if len(ixs2) != 2 {
		t.Fatalf("reopened Indexes = %+v", ixs2)
	}
	for _, ix := range ixs2 {
		if ix.Kind == IndexHash && ix.Hash == nil {
			t.Fatal("hash structure not rebuilt at Open")
		}
		if ix.Kind == IndexBTree && ix.BTree == nil {
			t.Fatal("btree structure not rebuilt at Open")
		}
	}
	snap := db2.PlanCatalog()
	if len(snap.Indexes) != 2 {
		t.Fatalf("reopened PlanCatalog has %d indexes", len(snap.Indexes))
	}
}

// compileExplain compiles a query against a fresh session over db and
// returns its plan rendering plus the executed result cardinality.
func compileExplain(t *testing.T, db *Database, src string) (string, int) {
	t.Helper()
	env := xlang.NewEnv()
	if err := db.BindAll(env); err != nil {
		t.Fatal(err)
	}
	q, err := xlang.CompileQuery(env, src)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	if _, err := q.Run(context.Background(), func(b []table.Row) error {
		rows += len(b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return plan.Explain(q.Node), rows
}

func TestQueriesUseIndexAfterAnalyze(t *testing.T) {
	db, err := Create(store.NewMemPager(), 64)
	if err != nil {
		t.Fatal(err)
	}
	seedOrders(t, db, 200)
	ctx := context.Background()

	before, n := compileExplain(t, db, "from orders where id = 5")
	if strings.Contains(before, "indexscan") || n != 1 {
		t.Fatalf("before index: rows=%d plan:\n%s", n, before)
	}

	if _, err := db.CreateIndex(ctx, "orders", "id", IndexHash); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex(ctx, "orders", "region", IndexHash); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Analyze(ctx); err != nil {
		t.Fatal(err)
	}

	// Point lookup on a near-unique column: the index wins.
	after, n := compileExplain(t, db, "from orders where id = 5")
	if !strings.Contains(after, "indexscan") || n != 1 {
		t.Fatalf("after index: rows=%d plan:\n%s", n, after)
	}
	// 50%-selective predicate: reading half the table through the index
	// costs more than one sequential pass, so the planner keeps the scan.
	wide, n := compileExplain(t, db, `from orders where region = "east"`)
	if strings.Contains(wide, "indexscan") || n != 100 {
		t.Fatalf("wide predicate should full-scan: rows=%d plan:\n%s", n, wide)
	}
}

func TestVacuumRebuildsIndexes(t *testing.T) {
	db, err := Create(store.NewMemPager(), 64)
	if err != nil {
		t.Fatal(err)
	}
	tab := seedOrders(t, db, 90)
	ctx := context.Background()
	if _, err := db.CreateIndex(ctx, "orders", "id", IndexHash); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Analyze(ctx); err != nil {
		t.Fatal(err)
	}
	// Delete a third of the rows, vacuum (RIDs move), then look up a
	// surviving row through the rebuilt index.
	if err := tab.Scan(func(rid store.RID, r table.Row) (bool, error) {
		if int(r[0].(core.Int))%3 == 0 {
			return true, tab.Delete(rid)
		}
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.VacuumTable("orders"); err != nil {
		t.Fatal(err)
	}
	got, n := compileExplain(t, db, "from orders where id = 7")
	if !strings.Contains(got, "indexscan") || n != 1 {
		t.Fatalf("post-vacuum lookup: rows=%d plan:\n%s", n, got)
	}
	if _, n := compileExplain(t, db, "from orders where id = 9"); n != 0 {
		t.Fatalf("deleted row resurfaced: rows=%d", n)
	}
}
