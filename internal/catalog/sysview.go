package catalog

import (
	"context"
	"sort"
	"time"

	"xst/internal/core"
	"xst/internal/sysview"
	"xst/internal/table"
	"xst/internal/xlang"
)

// This file publishes the database's own durability and planner state
// as `__sys.*` virtual tables — the storage-layer half of the system
// catalog (the server adds queries/metrics/slow, the federation
// coordinator adds sites). Each view's Rows function reads live state
// at query open, so `from __sys.wal` always answers for *now*, not for
// when the server started.

// SysTables returns the database-derived system views: WAL/MVCC health
// (__sys.wal), pinned snapshot epochs (__sys.txns), declared indexes
// (__sys.indexes) and per-column statistics (__sys.stats).
func (db *Database) SysTables() []*sysview.Table {
	return []*sysview.Table{
		sysview.Standard(sysview.Wal,
			"write-ahead-log and MVCC version-chain health", db.walRows),
		sysview.Standard(sysview.Txns,
			"pinned MVCC snapshot epochs and their ages", db.txnRows),
		sysview.Standard(sysview.Indexes,
			"declared indexes visible to the planner", db.indexRows),
		sysview.Standard(sysview.Stats,
			"per-column statistics from the last analyze", db.statRows),
	}
}

// walRows is one row of durability health: commit epoch, log bytes
// since checkpoint, retained superseded images, pinned snapshots with
// the oldest pin's age, and the lifetime checkpoint count.
func (db *Database) walRows(context.Context) ([]table.Row, error) {
	pool := db.Pool()
	return []table.Row{{
		core.Int(int64(pool.Epoch())),
		core.Int(db.WAL().LoggedBytes()),
		core.Int(int64(pool.SupersededImages())),
		core.Int(int64(len(pool.ActivePins()))),
		core.Int(pool.OldestPinnedAge().Microseconds()),
		core.Int(db.WAL().Checkpoints()),
	}}, nil
}

// txnRows is one row per pinned snapshot epoch, oldest first.
func (db *Database) txnRows(context.Context) ([]table.Row, error) {
	pins := db.Pool().ActivePins()
	now := time.Now()
	out := make([]table.Row, 0, len(pins))
	for _, p := range pins {
		out = append(out, table.Row{
			core.Int(int64(p.Epoch)),
			core.Int(int64(p.Refs)),
			core.Int(now.Sub(p.Since).Microseconds()),
		})
	}
	return out, nil
}

// indexRows is one row per declared index with its built entry count.
func (db *Database) indexRows(context.Context) ([]table.Row, error) {
	names := db.Names()
	sort.Strings(names)
	var out []table.Row
	for _, tbl := range names {
		for _, ix := range db.Indexes(tbl) {
			entries := 0
			switch {
			case ix.Hash != nil:
				entries = ix.Hash.Len()
			case ix.BTree != nil:
				entries = ix.BTree.Len()
			}
			out = append(out, table.Row{
				core.Str(ix.Table), core.Str(ix.Col), core.Str(ix.Kind),
				core.Int(int64(entries)),
			})
		}
	}
	return out, nil
}

// statRows is one row per analyzed column: table, column, row count,
// distinct count — the numbers plan costing actually reads.
func (db *Database) statRows(context.Context) ([]table.Row, error) {
	cat := db.StatsCatalog()
	names := make([]string, 0, len(cat))
	for n := range cat {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []table.Row
	for _, tbl := range names {
		t, err := db.Table(tbl)
		if err != nil {
			continue
		}
		cols := t.Schema().Cols
		ts := cat[tbl]
		for i, c := range ts.Columns {
			if i >= len(cols) {
				break
			}
			out = append(out, table.Row{
				core.Str(tbl), core.Str(cols[i]),
				core.Int(int64(ts.Rows)), core.Int(int64(c.Distinct)),
			})
		}
	}
	return out, nil
}

// bindSysViews registers the database's system views in env, so
// `from __sys.wal where …` compiles onto the same operator tree as a
// stored-table query.
func (db *Database) bindSysViews(env *xlang.Env) {
	for _, t := range db.SysTables() {
		env.BindVirtual(t.Name, t)
	}
}
