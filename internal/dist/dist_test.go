package dist

import (
	"sort"
	"testing"

	"xst/internal/core"
	"xst/internal/table"
	"xst/internal/workload"
	"xst/internal/xsp"
	"xst/internal/xtest"
)

// buildCluster loads a users/orders dataset into nSites partitions:
// users hash-partitioned on id, orders hash-partitioned on uid (so
// CoLocated is valid for the uid = id join).
func buildCluster(t testing.TB, nSites, users, orders int) *Cluster {
	t.Helper()
	c := NewCluster(nSites, 128)
	if err := c.CreateTable(workload.UsersSchema()); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(workload.OrdersSchema()); err != nil {
		t.Fatal(err)
	}
	r := xtest.NewRand(11)
	for i := 0; i < users; i++ {
		row := table.Row{core.Int(i), core.Str("city-" + string(rune('a'+r.Intn(5)))), core.Int(r.Intn(100))}
		if err := c.InsertHash("users", 0, row); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < orders; i++ {
		row := table.Row{core.Int(i), core.Int(r.Intn(users)), core.Int(r.Intn(1000))}
		if err := c.InsertHash("orders", 1, row); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestClusterBasics(t *testing.T) {
	c := buildCluster(t, 4, 200, 600)
	if c.Count("users") != 200 || c.Count("orders") != 600 {
		t.Fatalf("counts = %d/%d", c.Count("users"), c.Count("orders"))
	}
	// Hash partitioning spreads rows: no site owns everything.
	for _, s := range c.Sites {
		u, _ := s.Table("users")
		if u.Count() == 0 || u.Count() == 200 {
			t.Fatalf("site %d owns %d users", s.ID, u.Count())
		}
	}
	// Duplicate table creation fails.
	if _, err := c.Sites[0].CreateTable(workload.UsersSchema()); err == nil {
		t.Fatal("duplicate CreateTable must fail")
	}
	if _, ok := c.Sites[0].Table("nope"); ok {
		t.Fatal("absent table lookup must fail")
	}
}

func TestInsertRoundRobin(t *testing.T) {
	c := NewCluster(3, 32)
	if err := c.CreateTable(workload.UsersSchema()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if err := c.InsertRoundRobin("users", i, table.Row{core.Int(i), core.Str("x"), core.Int(0)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range c.Sites {
		u, _ := s.Table("users")
		if u.Count() != 3 {
			t.Fatalf("site %d owns %d rows, want 3", s.ID, u.Count())
		}
	}
	if err := c.InsertRoundRobin("nope", 0, table.Row{}); err == nil {
		t.Fatal("insert into absent table must fail")
	}
	if err := NewCluster(1, 8).InsertHash("nope", 0, table.Row{core.Int(1)}); err == nil {
		t.Fatal("hash insert into absent table must fail")
	}
}

func TestScatterRestrict(t *testing.T) {
	c := buildCluster(t, 3, 300, 0)
	c.Net.Reset()
	rows, err := c.ScatterRestrict("users",
		func(r table.Row) bool { return core.Equal(r[1], core.Str("city-a")) }, "city-a")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !core.Equal(r[1], core.Str("city-a")) {
			t.Fatalf("leaked row %v", r)
		}
	}
	// Every site ships exactly once.
	if st := c.Net.Stats(); st.Messages != 3 {
		t.Fatalf("messages = %d, want 3", st.Messages)
	}
	if _, err := c.ScatterRestrict("nope", nil, ""); err == nil {
		t.Fatal("scatter over absent table must fail")
	}
}

func rowsFingerprint(rows []table.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = string(table.EncodeRow(nil, r))
	}
	sort.Strings(out)
	return out
}

func TestAllStrategiesAgree(t *testing.T) {
	c := buildCluster(t, 4, 150, 500)
	spec := JoinSpec{
		Left: "orders", Right: "users",
		LeftCol: 1, RightCol: 0,
		LeftPred:     func(r table.Row) bool { return core.Compare(r[2], core.Int(500)) < 0 },
		LeftPredName: "amount<500",
	}
	var want []string
	for _, strat := range []Strategy{ShipAll, Broadcast, SemiJoin, CoLocated} {
		rows, err := c.Join(spec, strat)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		got := rowsFingerprint(rows)
		if want == nil {
			want = got
			if len(want) == 0 {
				t.Fatal("join produced no rows; workload degenerate")
			}
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("%v produced %d rows, want %d", strat, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v row %d differs", strat, i)
			}
		}
	}
}

func TestSemijoinShipsLess(t *testing.T) {
	c := buildCluster(t, 4, 400, 2000)
	// Highly selective left predicate: semijoin should ship far less of
	// the right table than ship-all.
	spec := JoinSpec{
		Left: "orders", Right: "users",
		LeftCol: 1, RightCol: 0,
		LeftPred:     func(r table.Row) bool { return core.Compare(r[2], core.Int(20)) < 0 },
		LeftPredName: "amount<20",
	}
	c.Net.Reset()
	if _, err := c.Join(spec, ShipAll); err != nil {
		t.Fatal(err)
	}
	shipAll := c.Net.Stats()

	c.Net.Reset()
	if _, err := c.Join(spec, SemiJoin); err != nil {
		t.Fatal(err)
	}
	semi := c.Net.Stats()

	if semi.Bytes >= shipAll.Bytes {
		t.Fatalf("semijoin shipped %d bytes, ship-all %d: no reduction", semi.Bytes, shipAll.Bytes)
	}
}

func TestCoLocatedShipsOnlyResults(t *testing.T) {
	c := buildCluster(t, 4, 200, 800)
	spec := JoinSpec{Left: "orders", Right: "users", LeftCol: 1, RightCol: 0}

	c.Net.Reset()
	rows, err := c.Join(spec, CoLocated)
	if err != nil {
		t.Fatal(err)
	}
	co := c.Net.Stats()

	c.Net.Reset()
	if _, err := c.Join(spec, ShipAll); err != nil {
		t.Fatal(err)
	}
	all := c.Net.Stats()

	// Co-located ships one result set per site.
	if co.Messages != uint64(len(c.Sites)) {
		t.Fatalf("co-located messages = %d, want %d", co.Messages, len(c.Sites))
	}
	if len(rows) != 800 {
		t.Fatalf("joined rows = %d, want 800", len(rows))
	}
	// And must not ship base-table bytes twice like ship-all does.
	if co.Bytes >= all.Bytes+1 && all.Bytes > 0 {
		t.Logf("co-located %d bytes vs ship-all %d bytes", co.Bytes, all.Bytes)
	}
}

func TestBroadcastCostsScaleWithSites(t *testing.T) {
	spec := JoinSpec{Left: "orders", Right: "users", LeftCol: 1, RightCol: 0}
	measure := func(nSites int) uint64 {
		c := buildCluster(t, nSites, 100, 300)
		c.Net.Reset()
		if _, err := c.Join(spec, Broadcast); err != nil {
			t.Fatal(err)
		}
		return c.Net.Stats().Bytes
	}
	if b2, b6 := measure(2), measure(6); b6 <= b2 {
		t.Fatalf("broadcast bytes must grow with sites: %d (2 sites) vs %d (6 sites)", b2, b6)
	}
}

func TestUnknownStrategy(t *testing.T) {
	c := buildCluster(t, 2, 10, 10)
	if _, err := c.Join(JoinSpec{Left: "orders", Right: "users"}, Strategy(99)); err == nil {
		t.Fatal("unknown strategy must fail")
	}
	if s := Strategy(99).String(); s == "" {
		t.Fatal("strategy string")
	}
}

func TestDistributedMatchesSingleNode(t *testing.T) {
	// The distributed join over 4 sites equals a single-node XSP join on
	// the union of partitions.
	c := buildCluster(t, 4, 120, 480)
	spec := JoinSpec{Left: "orders", Right: "users", LeftCol: 1, RightCol: 0}
	distRows, err := c.Join(spec, SemiJoin)
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild single-node tables from the partitions.
	single := NewSite(99, 256)
	users, _ := single.CreateTable(workload.UsersSchema())
	orders, _ := single.CreateTable(workload.OrdersSchema())
	for _, s := range c.Sites {
		u, _ := s.Table("users")
		rows, err := xsp.NewPipeline(u).Collect()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			users.Insert(r)
		}
		o, _ := s.Table("orders")
		rows, err = xsp.NewPipeline(o).Collect()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			orders.Insert(r)
		}
	}
	j := &xsp.Join{Left: orders, Right: users, LeftCol: 1, RightCol: 0}
	localRows, err := j.Collect(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, b := rowsFingerprint(distRows), rowsFingerprint(localRows)
	if len(a) != len(b) {
		t.Fatalf("distributed %d rows vs single-node %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestChooseStrategyShapes(t *testing.T) {
	base := CostInputs{
		LeftRows: 10_000, RightRows: 1_000,
		LeftRowBytes: 20, RightRowBytes: 20, KeyBytes: 4,
		LeftSelectivity: 1.0, Sites: 4, JoinRows: 10_000,
	}
	// Co-partitioned with a big result is still cheapest when valid and
	// the result is not blown up.
	co := base
	co.CoPartitioned = true
	co.JoinRows = 1_000
	if got := ChooseStrategy(co); got != CoLocated {
		t.Fatalf("co-partitioned small result chose %v", got)
	}
	// Highly selective probe side → semijoin.
	sel := base
	sel.LeftSelectivity = 0.01
	sel.JoinRows = 100
	if got := ChooseStrategy(sel); got != SemiJoin {
		t.Fatalf("selective probe chose %v", got)
	}
	// Unselective, not co-partitioned → ship-all beats broadcast for a
	// right table of similar size.
	if got := ChooseStrategy(base); got != ShipAll && got != SemiJoin {
		t.Fatalf("baseline chose %v", got)
	}
	// CoLocated must never be chosen when invalid.
	bad := sel
	bad.CoPartitioned = false
	if got := ChooseStrategy(bad); got == CoLocated {
		t.Fatal("invalid co-located chosen")
	}
	if EstimateBytes(base, Strategy(99)) < 1<<59 {
		t.Fatal("unknown strategy must be infinitely expensive")
	}
}

// TestChooseStrategyAgreesWithMeasurement: on a real cluster workload,
// the chooser's pick is within a small factor of the best measured
// strategy's bytes.
func TestChooseStrategyAgreesWithMeasurement(t *testing.T) {
	c := buildCluster(t, 4, 400, 2000)
	spec := JoinSpec{
		Left: "orders", Right: "users", LeftCol: 1, RightCol: 0,
		LeftPred:     func(r table.Row) bool { return core.Compare(r[2], core.Int(20)) < 0 },
		LeftPredName: "amount<20",
	}
	measured := map[Strategy]uint64{}
	var rows int
	for _, s := range []Strategy{ShipAll, Broadcast, SemiJoin} {
		c.Net.Reset()
		got, err := c.Join(spec, s)
		if err != nil {
			t.Fatal(err)
		}
		rows = len(got)
		measured[s] = c.Net.Stats().Bytes
	}
	in := CostInputs{
		LeftRows: 2000, RightRows: 400,
		LeftRowBytes: 15, RightRowBytes: 20, KeyBytes: 3,
		LeftSelectivity: 0.02, Sites: 4, JoinRows: rows,
	}
	pick := ChooseStrategy(in)
	best := ShipAll
	for s, b := range measured {
		if b < measured[best] {
			best = s
		}
	}
	if measured[pick] > 3*measured[best] {
		t.Fatalf("chooser picked %v (%d bytes), best was %v (%d bytes)",
			pick, measured[pick], best, measured[best])
	}
}

// TestSemiJoinKeyCoverage pins the corrected semijoin cost model: the
// matched-right fraction is key coverage (shipped distinct keys over
// right rows), not the left selectivity. With an unselective left side
// over a large right table, the old model charged nearly the whole
// right side to the semijoin and picked ShipAll; coverage-based costing
// makes SemiJoin the clear winner.
func TestSemiJoinKeyCoverage(t *testing.T) {
	in := CostInputs{
		LeftRows: 100, RightRows: 10000,
		LeftRowBytes: 100, RightRowBytes: 20, KeyBytes: 8,
		LeftSelectivity: 1.0, Sites: 4, JoinRows: 100,
	}
	// leftShip 10_000 + keyShip 100*8*4 = 3_200 + rightAll 200_000 *
	// coverage (100/10_000 = 0.01) = 2_000.
	if got, want := EstimateBytes(in, SemiJoin), 15200.0; got != want {
		t.Fatalf("semijoin bytes = %v, want %v", got, want)
	}
	if got := ChooseStrategy(in); got != SemiJoin {
		t.Fatalf("small-left/large-right join chose %v, want SemiJoin", got)
	}
	// Coverage saturates at 1: a left side with more keys than right
	// rows cannot match more than the whole right table.
	big := in
	big.LeftRows = 50000
	if got := EstimateBytes(big, SemiJoin); got < float64(big.RightRows*big.RightRowBytes) {
		t.Fatalf("saturated coverage must still ship the whole right side, got %v", got)
	}
	// Degenerate empty right side must not divide by zero.
	empty := in
	empty.RightRows = 0
	if got := EstimateBytes(empty, SemiJoin); got != 10000+3200 {
		t.Fatalf("empty right side bytes = %v", got)
	}
}

// TestSemiJoinDistinctKeyCap pins the cost model before and after
// statistics arrive: with LeftKeyDistinct unset every restricted left
// row ships a key (the sampled heuristic); a persisted distinct count
// caps the shipment and can flip the chosen strategy.
func TestSemiJoinDistinctKeyCap(t *testing.T) {
	in := CostInputs{
		LeftRows: 1000, RightRows: 1000,
		LeftRowBytes: 20, RightRowBytes: 20, KeyBytes: 9,
		LeftSelectivity: 1.0, Sites: 4,
	}
	// Before: leftShip 20_000 + keyShip 1000*9*4 = 36_000 + rightAll
	// 20_000 * coverage 1 = 76_000; ShipAll (40_000) wins.
	if got, want := EstimateBytes(in, SemiJoin), 76000.0; got != want {
		t.Fatalf("semijoin bytes without stats = %v, want %v", got, want)
	}
	if got := ChooseStrategy(in); got != ShipAll {
		t.Fatalf("without stats chose %v, want ShipAll", got)
	}
	// After .analyze: 50 distinct keys. keyShip 50*9*4 = 1_800,
	// coverage 50/1000 = 0.05 → rightShip 1_000; total 22_800 beats
	// ShipAll.
	in.LeftKeyDistinct = 50
	if got, want := EstimateBytes(in, SemiJoin), 22800.0; got != want {
		t.Fatalf("semijoin bytes with stats = %v, want %v", got, want)
	}
	if got := ChooseStrategy(in); got != SemiJoin {
		t.Fatalf("with stats chose %v, want SemiJoin", got)
	}
	// A distinct count above the restricted row estimate is ignored —
	// there cannot be more shipped keys than surviving rows.
	in.LeftKeyDistinct = 5000
	if got, want := EstimateBytes(in, SemiJoin), 76000.0; got != want {
		t.Fatalf("oversized distinct must not inflate keys: %v, want %v", got, want)
	}
}
