package dist

// Strategy selection: a byte-cost model over the four join strategies,
// in the spirit of classical distributed query optimization. The
// coordinator knows partition counts and the (estimated) selectivity of
// the left-side restriction; each strategy's network bytes follow
// directly.

// CostInputs describes a distributed equi-join for strategy selection.
type CostInputs struct {
	// LeftRows and RightRows are total row counts across partitions.
	LeftRows, RightRows int
	// LeftRowBytes / RightRowBytes are average serialized row sizes.
	LeftRowBytes, RightRowBytes int
	// KeyBytes is the average serialized join-key size.
	KeyBytes int
	// LeftSelectivity is the fraction of left rows surviving the
	// restriction (1 = no restriction).
	LeftSelectivity float64
	// LeftKeyDistinct is the number of distinct join-key values on the
	// left side, when known from collected statistics (0 = unknown).
	// SemiJoin ships each distinct key once, so this caps its key
	// shipment; the zero value preserves the sampled heuristic.
	LeftKeyDistinct int
	// Sites is the cluster size.
	Sites int
	// CoPartitioned reports both tables hash-partitioned on the join
	// key, making CoLocated valid.
	CoPartitioned bool
	// JoinRows estimates the result cardinality (for result shipping).
	JoinRows int
}

// EstimateBytes predicts the network bytes a strategy moves. Result
// shipment depends on where the join runs: ShipAll and SemiJoin join at
// the coordinator, so the joined rows never cross the network again and
// only the inputs count; Broadcast and CoLocated join at the sites, so
// the result itself must ship back and resultBytes is charged.
func EstimateBytes(in CostInputs, s Strategy) float64 {
	leftShip := float64(in.LeftRows) * in.LeftSelectivity * float64(in.LeftRowBytes)
	rightAll := float64(in.RightRows * in.RightRowBytes)
	resultBytes := float64(in.JoinRows * (in.LeftRowBytes + in.RightRowBytes))
	switch s {
	case ShipAll:
		return leftShip + rightAll
	case Broadcast:
		// Gather right once, then one copy per left site, plus results.
		return rightAll*float64(1+in.Sites) + resultBytes
	case SemiJoin:
		distinctKeys := float64(in.LeftRows) * in.LeftSelectivity
		if in.LeftKeyDistinct > 0 && float64(in.LeftKeyDistinct) < distinctKeys {
			distinctKeys = float64(in.LeftKeyDistinct)
		}
		keyShip := distinctKeys * float64(in.KeyBytes) * float64(in.Sites)
		// Matching right rows ≈ key coverage: the fraction of the right
		// side whose key appears in the shipped set, not the left-side
		// selectivity (a highly selective left restriction still covers
		// the whole right side when both have many rows per key).
		frac := 1.0
		if in.RightRows > 0 {
			frac = distinctKeys / float64(in.RightRows)
			if frac > 1 {
				frac = 1
			}
		}
		return leftShip + keyShip + rightAll*frac
	case CoLocated:
		if !in.CoPartitioned {
			return 1 << 60 // invalid: effectively infinite
		}
		return resultBytes
	default:
		return 1 << 60
	}
}

// ChooseStrategy returns the strategy with the lowest estimated bytes.
func ChooseStrategy(in CostInputs) Strategy {
	best := ShipAll
	bestCost := EstimateBytes(in, ShipAll)
	for _, s := range []Strategy{Broadcast, SemiJoin, CoLocated} {
		if c := EstimateBytes(in, s); c < bestCost {
			best, bestCost = s, c
		}
	}
	return best
}
