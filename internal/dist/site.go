// Package dist simulates the distributed backend the 1977 paper targets:
// a cluster of storage sites, each owning a horizontal partition of every
// table in its own buffer pool, and a coordinator that executes XSP
// queries across them. The network is simulated by counting every byte
// and message that crosses site boundaries — the quantity distributed
// query strategies optimize — so experiments can compare shipping whole
// partitions against semijoin-reduced shipping (experiment E11) without
// real sockets. All execution is set-at-a-time: sites exchange *sets* of
// rows, never single records, which is precisely the paper's thesis
// applied to distribution.
package dist

import (
	"fmt"
	"sync"

	"xst/internal/core"
	"xst/internal/store"
	"xst/internal/table"
	"xst/internal/xsp"
)

// Site is one storage node: a buffer pool and the local partitions.
type Site struct {
	ID     int
	Pool   *store.BufferPool
	tables map[string]*table.Table
}

// NewSite builds a site with its own pool.
func NewSite(id, frames int) *Site {
	return &Site{
		ID:     id,
		Pool:   store.NewBufferPool(store.NewMemPager(), frames),
		tables: map[string]*table.Table{},
	}
}

// CreateTable makes the local partition of a table.
func (s *Site) CreateTable(schema table.Schema) (*table.Table, error) {
	if _, ok := s.tables[schema.Name]; ok {
		return nil, fmt.Errorf("dist: site %d already has table %q", s.ID, schema.Name)
	}
	t, err := table.Create(s.Pool, schema)
	if err != nil {
		return nil, err
	}
	s.tables[schema.Name] = t
	return t, nil
}

// Table returns the local partition.
func (s *Site) Table(name string) (*table.Table, bool) {
	t, ok := s.tables[name]
	return t, ok
}

// NetStats counts simulated network traffic.
type NetStats struct {
	Messages uint64
	Bytes    uint64
}

// Network is the simulated interconnect: every row set shipped between
// sites passes through Ship, which serializes rows with the table codec
// to measure realistic byte volumes.
type Network struct {
	mu    sync.Mutex
	stats NetStats
}

// Ship accounts one transfer of rows from one site to another and
// returns the same rows (zero-copy locally; the cost model is the
// point). A nil/empty shipment still costs one message.
func (n *Network) Ship(rows []table.Row) []table.Row {
	bytes := uint64(0)
	var buf []byte
	for _, r := range rows {
		buf = table.EncodeRow(buf[:0], r)
		bytes += uint64(len(buf))
	}
	n.mu.Lock()
	n.stats.Messages++
	n.stats.Bytes += bytes
	n.mu.Unlock()
	return rows
}

// ShipKeys accounts a transfer of bare key values (for semijoins).
func (n *Network) ShipKeys(keys []core.Value) []core.Value {
	bytes := uint64(0)
	var buf []byte
	for _, k := range keys {
		buf = core.AppendEncode(buf[:0], k)
		bytes += uint64(len(buf))
	}
	n.mu.Lock()
	n.stats.Messages++
	n.stats.Bytes += bytes
	n.mu.Unlock()
	return keys
}

// Stats snapshots the counters.
func (n *Network) Stats() NetStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Reset zeroes the counters.
func (n *Network) Reset() {
	n.mu.Lock()
	n.stats = NetStats{}
	n.mu.Unlock()
}

// Cluster is a set of sites plus the coordinator's network.
type Cluster struct {
	Sites []*Site
	Net   *Network
}

// NewCluster builds n sites with the given per-site frame budget.
func NewCluster(n, frames int) *Cluster {
	c := &Cluster{Net: &Network{}}
	for i := 0; i < n; i++ {
		c.Sites = append(c.Sites, NewSite(i, frames))
	}
	return c
}

// CreateTable creates the table's partition on every site.
func (c *Cluster) CreateTable(schema table.Schema) error {
	for _, s := range c.Sites {
		if _, err := s.CreateTable(schema); err != nil {
			return err
		}
	}
	return nil
}

// InsertHash routes a row to the site owning its partition key (hash of
// column keyCol).
func (c *Cluster) InsertHash(name string, keyCol int, r table.Row) error {
	site := c.Sites[int(core.Digest(r[keyCol])%uint64(len(c.Sites)))]
	t, ok := site.Table(name)
	if !ok {
		return fmt.Errorf("dist: no table %q on site %d", name, site.ID)
	}
	_, err := t.Insert(r)
	return err
}

// InsertRoundRobin spreads rows evenly regardless of content.
func (c *Cluster) InsertRoundRobin(name string, i int, r table.Row) error {
	site := c.Sites[i%len(c.Sites)]
	t, ok := site.Table(name)
	if !ok {
		return fmt.Errorf("dist: no table %q on site %d", name, site.ID)
	}
	_, err := t.Insert(r)
	return err
}

// Count sums the partition counts.
func (c *Cluster) Count(name string) int {
	n := 0
	for _, s := range c.Sites {
		if t, ok := s.Table(name); ok {
			n += t.Count()
		}
	}
	return n
}

// partitions returns the local partitions of a table, one per site.
func (c *Cluster) partitions(name string) ([]*table.Table, error) {
	out := make([]*table.Table, len(c.Sites))
	for i, s := range c.Sites {
		t, ok := s.Table(name)
		if !ok {
			return nil, fmt.Errorf("dist: no table %q on site %d", name, s.ID)
		}
		out[i] = t
	}
	return out, nil
}

// ScatterRestrict runs a restriction on every site in parallel and
// gathers the shipped results at the coordinator — the distributed form
// of the σ-Restriction.
func (c *Cluster) ScatterRestrict(name string, pred xsp.Pred, label string) ([]table.Row, error) {
	parts, err := c.partitions(name)
	if err != nil {
		return nil, err
	}
	type resp struct {
		rows []table.Row
		err  error
	}
	ch := make(chan resp, len(parts))
	for _, p := range parts {
		go func(t *table.Table) {
			rows, err := xsp.NewPipeline(t, &xsp.Restrict{Pred: pred, Name: label}).Collect()
			ch <- resp{rows: rows, err: err}
		}(p)
	}
	var out []table.Row
	for range parts {
		r := <-ch
		if r.err != nil {
			return nil, r.err
		}
		out = append(out, c.Net.Ship(r.rows)...)
	}
	return out, nil
}
