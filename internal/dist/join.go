package dist

import (
	"fmt"

	"xst/internal/core"
	"xst/internal/table"
	"xst/internal/xsp"
)

// Strategy selects a distributed join algorithm.
type Strategy int

const (
	// ShipAll ships every partition of both tables to the coordinator
	// and joins there — the naive baseline.
	ShipAll Strategy = iota
	// Broadcast ships the (smaller) right table to every left site,
	// joins locally, and ships only results.
	Broadcast
	// SemiJoin ships the distinct join keys of the (filtered) left side
	// to the right sites, which return only matching rows — the classic
	// reducer; in XST terms the key set is an image and the reduction a
	// restriction by it.
	SemiJoin
	// CoLocated joins partition-locally, valid only when both tables are
	// hash-partitioned on the join key; ships only results.
	CoLocated
)

func (s Strategy) String() string {
	switch s {
	case ShipAll:
		return "ship-all"
	case Broadcast:
		return "broadcast"
	case SemiJoin:
		return "semijoin"
	case CoLocated:
		return "co-located"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// JoinSpec describes a distributed equi-join with an optional left-side
// restriction (the common shape: filter one side, join the other).
type JoinSpec struct {
	Left, Right       string // table names
	LeftCol, RightCol int    // join columns
	LeftPred          xsp.Pred
	LeftPredName      string
}

func (c *Cluster) leftOps(spec JoinSpec) []xsp.Op {
	if spec.LeftPred == nil {
		return nil
	}
	return []xsp.Op{&xsp.Restrict{Pred: spec.LeftPred, Name: spec.LeftPredName}}
}

// Join executes the spec under the given strategy and returns the joined
// rows (left ++ right). All strategies return the same multiset; they
// differ in how much crosses the network.
func (c *Cluster) Join(spec JoinSpec, strat Strategy) ([]table.Row, error) {
	switch strat {
	case ShipAll:
		return c.joinShipAll(spec)
	case Broadcast:
		return c.joinBroadcast(spec)
	case SemiJoin:
		return c.joinSemi(spec)
	case CoLocated:
		return c.joinCoLocated(spec)
	default:
		return nil, fmt.Errorf("dist: unknown strategy %v", strat)
	}
}

// collectLocal runs ops over a partition and returns the rows without
// network accounting (site-local work).
func collectLocal(t *table.Table, ops []xsp.Op) ([]table.Row, error) {
	return xsp.NewPipeline(t, ops...).Collect()
}

func hashJoinRows(left, right []table.Row, lcol, rcol int) []table.Row {
	build := make(map[string][]table.Row, len(right))
	for _, r := range right {
		k := core.Key(r[rcol])
		build[k] = append(build[k], r)
	}
	var out []table.Row
	for _, l := range left {
		for _, r := range build[core.Key(l[lcol])] {
			row := make(table.Row, 0, len(l)+len(r))
			row = append(row, l...)
			row = append(row, r...)
			out = append(out, row)
		}
	}
	return out
}

func (c *Cluster) joinShipAll(spec JoinSpec) ([]table.Row, error) {
	lparts, err := c.partitions(spec.Left)
	if err != nil {
		return nil, err
	}
	rparts, err := c.partitions(spec.Right)
	if err != nil {
		return nil, err
	}
	var left, right []table.Row
	for _, p := range lparts {
		rows, err := collectLocal(p, c.leftOps(spec))
		if err != nil {
			return nil, err
		}
		left = append(left, c.Net.Ship(rows)...)
	}
	for _, p := range rparts {
		rows, err := collectLocal(p, nil)
		if err != nil {
			return nil, err
		}
		right = append(right, c.Net.Ship(rows)...)
	}
	return hashJoinRows(left, right, spec.LeftCol, spec.RightCol), nil
}

func (c *Cluster) joinBroadcast(spec JoinSpec) ([]table.Row, error) {
	rparts, err := c.partitions(spec.Right)
	if err != nil {
		return nil, err
	}
	// Gather the right table once...
	var right []table.Row
	for _, p := range rparts {
		rows, err := collectLocal(p, nil)
		if err != nil {
			return nil, err
		}
		right = append(right, c.Net.Ship(rows)...)
	}
	lparts, err := c.partitions(spec.Left)
	if err != nil {
		return nil, err
	}
	var out []table.Row
	for _, p := range lparts {
		// ...then broadcast it to every left site (one shipment each).
		localRight := c.Net.Ship(right)
		left, err := collectLocal(p, c.leftOps(spec))
		if err != nil {
			return nil, err
		}
		joined := hashJoinRows(left, localRight, spec.LeftCol, spec.RightCol)
		out = append(out, c.Net.Ship(joined)...)
	}
	return out, nil
}

func (c *Cluster) joinSemi(spec JoinSpec) ([]table.Row, error) {
	lparts, err := c.partitions(spec.Left)
	if err != nil {
		return nil, err
	}
	// 1. Each left site computes its (filtered) partition and the
	// distinct join-key set — an image 𝔇 of the restriction.
	var left []table.Row
	keySet := map[string]core.Value{}
	for _, p := range lparts {
		rows, err := collectLocal(p, c.leftOps(spec))
		if err != nil {
			return nil, err
		}
		left = append(left, c.Net.Ship(rows)...)
		for _, r := range rows {
			keySet[core.Key(r[spec.LeftCol])] = r[spec.LeftCol]
		}
	}
	keys := make([]core.Value, 0, len(keySet))
	for _, v := range keySet {
		keys = append(keys, v)
	}
	// 2. Ship the key set to each right site; they return only the
	// matching rows (a restriction by the shipped set).
	rparts, err := c.partitions(spec.Right)
	if err != nil {
		return nil, err
	}
	var right []table.Row
	for _, p := range rparts {
		localKeys := c.Net.ShipKeys(keys)
		member := make(map[string]bool, len(localKeys))
		for _, k := range localKeys {
			member[core.Key(k)] = true
		}
		rows, err := collectLocal(p, []xsp.Op{&xsp.Restrict{
			Pred: func(r table.Row) bool { return member[core.Key(r[spec.RightCol])] },
			Name: "semijoin-reduce",
		}})
		if err != nil {
			return nil, err
		}
		right = append(right, c.Net.Ship(rows)...)
	}
	return hashJoinRows(left, right, spec.LeftCol, spec.RightCol), nil
}

func (c *Cluster) joinCoLocated(spec JoinSpec) ([]table.Row, error) {
	lparts, err := c.partitions(spec.Left)
	if err != nil {
		return nil, err
	}
	rparts, err := c.partitions(spec.Right)
	if err != nil {
		return nil, err
	}
	var out []table.Row
	for i := range c.Sites {
		left, err := collectLocal(lparts[i], c.leftOps(spec))
		if err != nil {
			return nil, err
		}
		right, err := collectLocal(rparts[i], nil)
		if err != nil {
			return nil, err
		}
		joined := hashJoinRows(left, right, spec.LeftCol, spec.RightCol)
		out = append(out, c.Net.Ship(joined)...)
	}
	return out, nil
}
