package relational

import (
	"testing"

	"xst/internal/core"
	"xst/internal/store"
	"xst/internal/table"
)

// makeUsers creates a users table: (id int, city str, score int).
func makeUsers(t testing.TB, n int) *table.Table {
	t.Helper()
	pool := store.NewBufferPool(store.NewMemPager(), 64)
	tbl, err := table.Create(pool, table.Schema{Name: "users", Cols: []string{"id", "city", "score"}})
	if err != nil {
		t.Fatal(err)
	}
	cities := []string{"ann-arbor", "boston", "chicago"}
	for i := 0; i < n; i++ {
		row := table.Row{core.Int(i), core.Str(cities[i%3]), core.Int(i % 10)}
		if _, err := tbl.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// makeOrders creates an orders table: (uid int, amount int).
func makeOrders(t testing.TB, n, users int) *table.Table {
	t.Helper()
	pool := store.NewBufferPool(store.NewMemPager(), 64)
	tbl, err := table.Create(pool, table.Schema{Name: "orders", Cols: []string{"uid", "amount"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		row := table.Row{core.Int(i % users), core.Int(i * 7 % 100)}
		if _, err := tbl.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestTableScan(t *testing.T) {
	tbl := makeUsers(t, 120)
	rows, err := Collect(NewTableScan(tbl))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 120 {
		t.Fatalf("scanned %d rows", len(rows))
	}
	if !core.Equal(rows[7][0], core.Int(7)) {
		t.Fatal("scan order wrong")
	}
}

func TestNextBeforeOpen(t *testing.T) {
	tbl := makeUsers(t, 3)
	s := NewTableScan(tbl)
	if _, _, err := s.Next(); err == nil {
		t.Fatal("Next before Open must fail")
	}
	j := &NestedLoopJoin{Left: NewTableScan(tbl), Right: NewTableScan(tbl)}
	if _, _, err := j.Next(); err == nil {
		t.Fatal("join Next before Open must fail")
	}
}

func TestFilter(t *testing.T) {
	tbl := makeUsers(t, 100)
	city := tbl.Schema().Col("city")
	it := &Filter{Child: NewTableScan(tbl), Pred: ColEq(city, core.Str("boston"))}
	n, err := Count(it)
	if err != nil {
		t.Fatal(err)
	}
	if n != 33 {
		t.Fatalf("boston rows = %d, want 33", n)
	}
}

func TestPredicateCombinators(t *testing.T) {
	r := table.Row{core.Int(5), core.Str("x")}
	if !And(ColGE(0, core.Int(5)), ColLess(0, core.Int(6)))(r) {
		t.Fatal("And failed")
	}
	if !Or(ColEq(1, core.Str("y")), ColEq(1, core.Str("x")))(r) {
		t.Fatal("Or failed")
	}
	if Not(ColEq(0, core.Int(5)))(r) {
		t.Fatal("Not failed")
	}
	if !ColRange(0, core.Int(0), core.Int(10))(r) || ColRange(0, core.Int(6), core.Int(9))(r) {
		t.Fatal("ColRange failed")
	}
	if ColEqCol(0, 1)(r) {
		t.Fatal("ColEqCol failed")
	}
}

func TestProject(t *testing.T) {
	tbl := makeUsers(t, 10)
	it := &Project{Child: NewTableScan(tbl), Cols: []int{2, 0}}
	rows, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows[0]) != 2 || !core.Equal(rows[3][1], core.Int(3)) {
		t.Fatalf("projected rows wrong: %v", rows[3])
	}
	sch := it.Schema()
	if sch.Cols[0] != "score" || sch.Cols[1] != "id" {
		t.Fatalf("schema = %v", sch.Cols)
	}
	bad := &Project{Child: NewTableScan(tbl), Cols: []int{9}}
	if err := bad.Open(); err == nil {
		t.Fatal("out-of-range projection must fail")
	}
}

func TestLimit(t *testing.T) {
	tbl := makeUsers(t, 50)
	rows, err := Collect(&Limit{Child: NewTableScan(tbl), N: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("limit returned %d", len(rows))
	}
}

func TestSort(t *testing.T) {
	tbl := makeUsers(t, 40)
	score := tbl.Schema().Col("score")
	it := &Sort{Child: NewTableScan(tbl), Col: score}
	rows, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if core.Compare(rows[i-1][score], rows[i][score]) > 0 {
			t.Fatal("not sorted")
		}
	}
	if _, _, err := (&Sort{Child: NewTableScan(tbl), Col: 0}).Next(); err == nil {
		t.Fatal("Sort Next before Open must fail")
	}
}

func TestNestedLoopJoin(t *testing.T) {
	users := makeUsers(t, 12)
	orders := makeOrders(t, 30, 12)
	j := &NestedLoopJoin{
		Left:     NewTableScan(orders),
		Right:    NewTableScan(users),
		LeftCol:  0, // uid
		RightCol: 0, // id
	}
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 30 {
		t.Fatalf("join produced %d rows, want 30", len(rows))
	}
	for _, r := range rows {
		if !core.Equal(r[0], r[2]) {
			t.Fatalf("join key mismatch in %v", r)
		}
		if len(r) != 5 {
			t.Fatalf("joined arity = %d", len(r))
		}
	}
	sch := j.Schema()
	if sch.Cols[0] != "orders.uid" || sch.Cols[2] != "users.id" {
		t.Fatalf("join schema = %v", sch.Cols)
	}
}

func TestHashJoinAgreesWithNLJ(t *testing.T) {
	users := makeUsers(t, 20)
	orders := makeOrders(t, 55, 20)
	nlj := &NestedLoopJoin{Left: NewTableScan(orders), Right: NewTableScan(users), LeftCol: 0, RightCol: 0}
	hj := &HashJoin{Left: NewTableScan(orders), Right: NewTableScan(users), LeftCol: 0, RightCol: 0}
	a, err := Collect(nlj)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(hj)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("NLJ %d rows vs HJ %d rows", len(a), len(b))
	}
	// Compare as multisets of encoded rows.
	count := map[string]int{}
	for _, r := range a {
		count[string(table.EncodeRow(nil, r))]++
	}
	for _, r := range b {
		count[string(table.EncodeRow(nil, r))]--
	}
	for k, v := range count {
		if v != 0 {
			t.Fatalf("row multiset mismatch at %q: %d", k, v)
		}
	}
}

func TestGroupCount(t *testing.T) {
	tbl := makeUsers(t, 99)
	city := tbl.Schema().Col("city")
	g := &GroupCount{Child: NewTableScan(tbl), Col: city}
	rows, err := Collect(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("groups = %d", len(rows))
	}
	for _, r := range rows {
		if !core.Equal(r[1], core.Int(33)) {
			t.Fatalf("group %v count = %v, want 33", r[0], r[1])
		}
	}
	if sch := g.Schema(); sch.Cols[1] != "count" {
		t.Fatalf("schema = %v", sch.Cols)
	}
}

func TestComposedPipeline(t *testing.T) {
	// σ(city = chicago) → π(id) → sort → limit 3.
	tbl := makeUsers(t, 60)
	city := tbl.Schema().Col("city")
	pipe := &Limit{
		N: 3,
		Child: &Sort{
			Col: 0,
			Child: &Project{
				Cols: []int{0},
				Child: &Filter{
					Child: NewTableScan(tbl),
					Pred:  ColEq(city, core.Str("chicago")),
				},
			},
		},
	}
	rows, err := Collect(pipe)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || !core.Equal(rows[0][0], core.Int(2)) {
		t.Fatalf("pipeline rows = %v", rows)
	}
}

func TestScanTouchesPagesPerRecord(t *testing.T) {
	// The record-at-a-time discipline: one pool access per record, so
	// hits+misses is at least the row count.
	tbl := makeUsers(t, 300)
	tbl.Pool().ResetStats()
	if _, err := Collect(NewTableScan(tbl)); err != nil {
		t.Fatal(err)
	}
	st := tbl.Pool().Stats()
	if st.Hits+st.Misses < 300 {
		t.Fatalf("record scan touched pool only %d times for 300 rows", st.Hits+st.Misses)
	}
}

func TestMergeJoinAgreesWithHashJoin(t *testing.T) {
	users := makeUsers(t, 25)
	orders := makeOrders(t, 80, 25)
	mj := &MergeJoin{Left: NewTableScan(orders), Right: NewTableScan(users), LeftCol: 0, RightCol: 0}
	hj := &HashJoin{Left: NewTableScan(orders), Right: NewTableScan(users), LeftCol: 0, RightCol: 0}
	a, err := Collect(mj)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(hj)
	if err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	for _, r := range a {
		count[string(table.EncodeRow(nil, r))]++
	}
	for _, r := range b {
		count[string(table.EncodeRow(nil, r))]--
	}
	for k, v := range count {
		if v != 0 {
			t.Fatalf("merge/hash multiset mismatch at %q: %d", k, v)
		}
	}
	// Merge join output is ordered by the join key.
	for i := 1; i < len(a); i++ {
		if core.Compare(a[i-1][0], a[i][0]) > 0 {
			t.Fatal("merge join output unordered")
		}
	}
}

func TestMergeJoinDuplicateRuns(t *testing.T) {
	// Both sides carry duplicate keys: runs must cross-product.
	pool := store.NewBufferPool(store.NewMemPager(), 16)
	l, _ := table.Create(pool, table.Schema{Name: "l", Cols: []string{"k", "v"}})
	r, _ := table.Create(pool, table.Schema{Name: "r", Cols: []string{"k", "w"}})
	for i := 0; i < 3; i++ {
		l.Insert(table.Row{core.Int(1), core.Int(i)})
		r.Insert(table.Row{core.Int(1), core.Int(10 + i)})
	}
	l.Insert(table.Row{core.Int(2), core.Int(99)})
	mj := &MergeJoin{Left: NewTableScan(l), Right: NewTableScan(r), LeftCol: 0, RightCol: 0}
	rows, err := Collect(mj)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("run join produced %d rows, want 9", len(rows))
	}
	if _, _, err := (&MergeJoin{Left: NewTableScan(l), Right: NewTableScan(r)}).Next(); err == nil {
		t.Fatal("Next before Open must fail")
	}
}

func TestIndexScan(t *testing.T) {
	users := makeUsers(t, 60)
	idx, err := BuildHashIndex(users, users.Schema().Col("city"))
	if err != nil {
		t.Fatal(err)
	}
	is := &IndexScan{Table: users, Index: idx, Key: core.Str("boston")}
	rows, err := Collect(is)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("index scan found %d rows, want 20", len(rows))
	}
	for _, r := range rows {
		if !core.Equal(r[1], core.Str("boston")) {
			t.Fatalf("wrong row %v", r)
		}
	}
	// Agreement with a full filter scan.
	n, _ := Count(&Filter{Child: NewTableScan(users), Pred: ColEq(1, core.Str("boston"))})
	if n != len(rows) {
		t.Fatalf("index scan %d vs filter %d", len(rows), n)
	}
	// Absent key yields nothing; Next before Open errors.
	missing := &IndexScan{Table: users, Index: idx, Key: core.Str("nowhere")}
	if n, _ := Count(missing); n != 0 {
		t.Fatal("absent key must be empty")
	}
	if _, _, err := (&IndexScan{Table: users, Index: idx, Key: core.Str("x")}).Next(); err == nil {
		t.Fatal("Next before Open must fail")
	}
}

func TestIndexScanComposesWithOperators(t *testing.T) {
	users := makeUsers(t, 90)
	idx, _ := BuildHashIndex(users, users.Schema().Col("city"))
	pipe := &Project{
		Cols: []int{0},
		Child: &Filter{
			Child: &IndexScan{Table: users, Index: idx, Key: core.Str("chicago")},
			Pred:  ColLess(2, core.Int(5)),
		},
	}
	rows, err := Collect(pipe)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("composed index pipeline empty")
	}
}

func TestIndexRangeScan(t *testing.T) {
	users := makeUsers(t, 200) // ids 0..199
	bt, err := BuildBTreeIndex(users, 0)
	if err != nil {
		t.Fatal(err)
	}
	rs := &IndexRangeScan{Table: users, Index: bt, Lo: core.Int(50), Hi: core.Int(60)}
	rows, err := Collect(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("range scan found %d rows, want 10", len(rows))
	}
	for i, r := range rows {
		if !core.Equal(r[0], core.Int(50+i)) {
			t.Fatalf("range order wrong at %d: %v", i, r[0])
		}
	}
	// Unbounded above.
	rs2 := &IndexRangeScan{Table: users, Index: bt, Lo: core.Int(195)}
	n, err := Count(rs2)
	if err != nil || n != 5 {
		t.Fatalf("unbounded range = %d, %v", n, err)
	}
	// Agreement with a filter scan across multi-byte boundaries (the
	// order-key property: 127/128 and beyond sort numerically).
	rs3 := &IndexRangeScan{Table: users, Index: bt, Lo: core.Int(120), Hi: core.Int(140)}
	got, _ := Count(rs3)
	want, _ := Count(&Filter{Child: NewTableScan(users), Pred: ColRange(0, core.Int(120), core.Int(140))})
	if got != want {
		t.Fatalf("range scan %d vs filter %d", got, want)
	}
	if _, _, err := (&IndexRangeScan{Table: users, Index: bt}).Next(); err == nil {
		t.Fatal("Next before Open must fail")
	}
}
