// Package relational implements the record-at-a-time baseline engine:
// Volcano-style pull iterators (scan, filter, project, nested-loop join,
// hash join, sort, limit, aggregate) over stored tables. Every operator
// moves ONE row per Next call and the table scan touches the buffer pool
// once per record — the "record processing" discipline the paper's set-
// processing thesis argues against. The XSP engine (internal/xsp)
// answers the same queries set-at-a-time; the benchmarks compare the
// two on identical tables.
package relational

import (
	"errors"
	"fmt"
	"sort"

	"xst/internal/core"
	"xst/internal/table"
)

// Iterator is the Volcano operator interface.
type Iterator interface {
	// Open prepares the operator; it must be called before Next.
	Open() error
	// Next produces the next row; ok is false at end of stream.
	Next() (table.Row, bool, error)
	// Close releases resources. Close after Open is mandatory.
	Close() error
	// Schema describes the produced rows.
	Schema() table.Schema
}

// ErrNotOpen reports Next on an unopened iterator.
var ErrNotOpen = errors.New("relational: iterator not open")

// Collect drains an iterator into a slice, handling Open/Close.
func Collect(it Iterator) ([]table.Row, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	var out []table.Row
	for {
		r, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, r)
	}
}

// Count drains an iterator and returns the row count.
func Count(it Iterator) (int, error) {
	if err := it.Open(); err != nil {
		return 0, err
	}
	defer it.Close()
	n := 0
	for {
		_, ok, err := it.Next()
		if err != nil {
			return 0, err
		}
		if !ok {
			return n, nil
		}
		n++
	}
}

// TableScan reads a stored table one record per Next.
type TableScan struct {
	Table  *table.Table
	cursor *table.Cursor
}

// NewTableScan builds a scan over t.
func NewTableScan(t *table.Table) *TableScan { return &TableScan{Table: t} }

// Open implements Iterator.
func (s *TableScan) Open() error {
	s.cursor = s.Table.NewCursor()
	return nil
}

// Next implements Iterator.
func (s *TableScan) Next() (table.Row, bool, error) {
	if s.cursor == nil {
		return nil, false, ErrNotOpen
	}
	_, row, ok, err := s.cursor.Next()
	return row, ok, err
}

// Close implements Iterator.
func (s *TableScan) Close() error {
	s.cursor = nil
	return nil
}

// Schema implements Iterator.
func (s *TableScan) Schema() table.Schema { return s.Table.Schema() }

// Filter passes rows matching a predicate.
type Filter struct {
	Child Iterator
	Pred  Pred
}

// Open implements Iterator.
func (f *Filter) Open() error { return f.Child.Open() }

// Next implements Iterator.
func (f *Filter) Next() (table.Row, bool, error) {
	for {
		r, ok, err := f.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if f.Pred(r) {
			return r, true, nil
		}
	}
}

// Close implements Iterator.
func (f *Filter) Close() error { return f.Child.Close() }

// Schema implements Iterator.
func (f *Filter) Schema() table.Schema { return f.Child.Schema() }

// Project keeps the given column indexes, in order.
type Project struct {
	Child Iterator
	Cols  []int
}

// Open implements Iterator.
func (p *Project) Open() error {
	in := p.Child.Schema()
	for _, c := range p.Cols {
		if c < 0 || c >= in.Arity() {
			return fmt.Errorf("relational: project column %d out of range", c)
		}
	}
	return p.Child.Open()
}

// Next implements Iterator.
func (p *Project) Next() (table.Row, bool, error) {
	r, ok, err := p.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(table.Row, len(p.Cols))
	for i, c := range p.Cols {
		out[i] = r[c]
	}
	return out, true, nil
}

// Close implements Iterator.
func (p *Project) Close() error { return p.Child.Close() }

// Schema implements Iterator.
func (p *Project) Schema() table.Schema {
	in := p.Child.Schema()
	cols := make([]string, len(p.Cols))
	for i, c := range p.Cols {
		cols[i] = in.Cols[c]
	}
	return table.Schema{Name: in.Name, Cols: cols}
}

// Limit stops after N rows.
type Limit struct {
	Child Iterator
	N     int
	seen  int
}

// Open implements Iterator.
func (l *Limit) Open() error {
	l.seen = 0
	return l.Child.Open()
}

// Next implements Iterator.
func (l *Limit) Next() (table.Row, bool, error) {
	if l.seen >= l.N {
		return nil, false, nil
	}
	r, ok, err := l.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return r, true, nil
}

// Close implements Iterator.
func (l *Limit) Close() error { return l.Child.Close() }

// Schema implements Iterator.
func (l *Limit) Schema() table.Schema { return l.Child.Schema() }

// Sort materializes the child and emits rows ordered by column Col under
// the canonical value order.
type Sort struct {
	Child Iterator
	Col   int
	rows  []table.Row
	pos   int
}

// Open implements Iterator.
func (s *Sort) Open() error {
	rows, err := Collect(s.Child)
	if err != nil {
		return err
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return core.Compare(rows[i][s.Col], rows[j][s.Col]) < 0
	})
	s.rows = rows
	s.pos = 0
	return nil
}

// Next implements Iterator.
func (s *Sort) Next() (table.Row, bool, error) {
	if s.rows == nil {
		return nil, false, ErrNotOpen
	}
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

// Close implements Iterator.
func (s *Sort) Close() error {
	s.rows = nil
	return nil
}

// Schema implements Iterator.
func (s *Sort) Schema() table.Schema { return s.Child.Schema() }
