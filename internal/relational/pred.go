package relational

import (
	"xst/internal/core"
	"xst/internal/table"
)

// Pred is a row predicate.
type Pred func(table.Row) bool

// ColEq matches rows whose column col equals v.
func ColEq(col int, v core.Value) Pred {
	return func(r table.Row) bool { return core.Equal(r[col], v) }
}

// ColLess matches rows with row[col] < v in the canonical order.
func ColLess(col int, v core.Value) Pred {
	return func(r table.Row) bool { return core.Compare(r[col], v) < 0 }
}

// ColGE matches rows with row[col] >= v.
func ColGE(col int, v core.Value) Pred {
	return func(r table.Row) bool { return core.Compare(r[col], v) >= 0 }
}

// ColRange matches lo <= row[col] < hi.
func ColRange(col int, lo, hi core.Value) Pred {
	return func(r table.Row) bool {
		return core.Compare(r[col], lo) >= 0 && core.Compare(r[col], hi) < 0
	}
}

// ColEqCol matches rows whose columns a and b hold equal values.
func ColEqCol(a, b int) Pred {
	return func(r table.Row) bool { return core.Equal(r[a], r[b]) }
}

// And conjoins predicates.
func And(ps ...Pred) Pred {
	return func(r table.Row) bool {
		for _, p := range ps {
			if !p(r) {
				return false
			}
		}
		return true
	}
}

// Or disjoins predicates.
func Or(ps ...Pred) Pred {
	return func(r table.Row) bool {
		for _, p := range ps {
			if p(r) {
				return true
			}
		}
		return false
	}
}

// Not negates a predicate.
func Not(p Pred) Pred { return func(r table.Row) bool { return !p(r) } }
