package relational

import (
	"xst/internal/core"
	"xst/internal/index"
	"xst/internal/store"
	"xst/internal/table"
)

// IndexScan fetches the rows matching one key through a hash index —
// the prestructured point-access path as a Volcano operator. Each Next
// fetches one posting's record (a per-record page touch, like every
// record-at-a-time operator).
type IndexScan struct {
	Table *table.Table
	Index *index.HashIndex
	Key   core.Value

	rids []store.RID
	pos  int
	open bool
}

// BuildHashIndex scans the table once and indexes the given column.
func BuildHashIndex(t *table.Table, col int) (*index.HashIndex, error) {
	idx := index.NewHashIndex()
	err := t.Scan(func(rid store.RID, r table.Row) (bool, error) {
		idx.Insert(core.Key(r[col]), rid)
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return idx, nil
}

// Open implements Iterator.
func (s *IndexScan) Open() error {
	s.rids = s.Index.Lookup(core.Key(s.Key))
	s.pos = 0
	s.open = true
	return nil
}

// Next implements Iterator.
func (s *IndexScan) Next() (table.Row, bool, error) {
	if !s.open {
		return nil, false, ErrNotOpen
	}
	for s.pos < len(s.rids) {
		rid := s.rids[s.pos]
		s.pos++
		row, err := s.Table.Get(rid)
		if err != nil {
			return nil, false, err
		}
		return row, true, nil
	}
	return nil, false, nil
}

// Close implements Iterator.
func (s *IndexScan) Close() error {
	s.open = false
	s.rids = nil
	return nil
}

// Schema implements Iterator.
func (s *IndexScan) Schema() table.Schema { return s.Table.Schema() }
