package relational

import (
	"sort"

	"xst/internal/core"
	"xst/internal/table"
)

// NestedLoopJoin joins left and right on LeftCol = RightCol by
// rescanning the right child for every left row — the classic
// record-at-a-time join with quadratic record touches. Output rows are
// the concatenation left ++ right.
type NestedLoopJoin struct {
	Left, Right       Iterator
	LeftCol, RightCol int
	cur               table.Row // current left row
	rightOpen         bool
	open              bool
}

// Open implements Iterator.
func (j *NestedLoopJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	j.open = true
	j.cur = nil
	j.rightOpen = false
	return nil
}

// Next implements Iterator.
func (j *NestedLoopJoin) Next() (table.Row, bool, error) {
	if !j.open {
		return nil, false, ErrNotOpen
	}
	for {
		if j.cur == nil {
			l, ok, err := j.Left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.cur = l
			if j.rightOpen {
				if err := j.Right.Close(); err != nil {
					return nil, false, err
				}
			}
			if err := j.Right.Open(); err != nil {
				return nil, false, err
			}
			j.rightOpen = true
		}
		for {
			r, ok, err := j.Right.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				j.cur = nil
				break
			}
			if core.Equal(j.cur[j.LeftCol], r[j.RightCol]) {
				out := make(table.Row, 0, len(j.cur)+len(r))
				out = append(out, j.cur...)
				out = append(out, r...)
				return out, true, nil
			}
		}
	}
}

// Close implements Iterator.
func (j *NestedLoopJoin) Close() error {
	j.open = false
	if j.rightOpen {
		j.rightOpen = false
		if err := j.Right.Close(); err != nil {
			j.Left.Close()
			return err
		}
	}
	return j.Left.Close()
}

// Schema implements Iterator.
func (j *NestedLoopJoin) Schema() table.Schema {
	l, r := j.Left.Schema(), j.Right.Schema()
	cols := make([]string, 0, len(l.Cols)+len(r.Cols))
	for _, c := range l.Cols {
		cols = append(cols, l.Name+"."+c)
	}
	for _, c := range r.Cols {
		cols = append(cols, r.Name+"."+c)
	}
	return table.Schema{Name: l.Name + "⋈" + r.Name, Cols: cols}
}

// HashJoin materializes the right child into a hash table keyed on
// RightCol, then streams the left child probing per row.
type HashJoin struct {
	Left, Right       Iterator
	LeftCol, RightCol int
	build             map[string][]table.Row
	pending           []table.Row
	cur               table.Row
	open              bool
}

// Open implements Iterator.
func (j *HashJoin) Open() error {
	rows, err := Collect(j.Right)
	if err != nil {
		return err
	}
	j.build = make(map[string][]table.Row, len(rows))
	for _, r := range rows {
		k := core.Key(r[j.RightCol])
		j.build[k] = append(j.build[k], r)
	}
	if err := j.Left.Open(); err != nil {
		return err
	}
	j.open = true
	j.pending = nil
	return nil
}

// Next implements Iterator.
func (j *HashJoin) Next() (table.Row, bool, error) {
	if !j.open {
		return nil, false, ErrNotOpen
	}
	for {
		if len(j.pending) > 0 {
			r := j.pending[0]
			j.pending = j.pending[1:]
			out := make(table.Row, 0, len(j.cur)+len(r))
			out = append(out, j.cur...)
			out = append(out, r...)
			return out, true, nil
		}
		l, ok, err := j.Left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		j.cur = l
		j.pending = j.build[core.Key(l[j.LeftCol])]
	}
}

// Close implements Iterator.
func (j *HashJoin) Close() error {
	j.open = false
	j.build = nil
	return j.Left.Close()
}

// Schema implements Iterator.
func (j *HashJoin) Schema() table.Schema {
	nl := NestedLoopJoin{Left: j.Left, Right: j.Right}
	return nl.Schema()
}

// GroupCount aggregates the child by column Col and emits (value, count)
// rows in canonical value order.
type GroupCount struct {
	Child Iterator
	Col   int
	rows  []table.Row
	pos   int
}

// Open implements Iterator.
func (g *GroupCount) Open() error {
	rows, err := Collect(g.Child)
	if err != nil {
		return err
	}
	counts := map[string]int{}
	vals := map[string]core.Value{}
	for _, r := range rows {
		k := core.Key(r[g.Col])
		counts[k]++
		vals[k] = r[g.Col]
	}
	g.rows = g.rows[:0]
	for k, v := range vals {
		g.rows = append(g.rows, table.Row{v, core.Int(counts[k])})
	}
	sortRowsByCol(g.rows, 0)
	g.pos = 0
	return nil
}

// Next implements Iterator.
func (g *GroupCount) Next() (table.Row, bool, error) {
	if g.pos >= len(g.rows) {
		return nil, false, nil
	}
	r := g.rows[g.pos]
	g.pos++
	return r, true, nil
}

// Close implements Iterator.
func (g *GroupCount) Close() error {
	g.rows = nil
	return nil
}

// Schema implements Iterator.
func (g *GroupCount) Schema() table.Schema {
	in := g.Child.Schema()
	return table.Schema{Name: in.Name + "#", Cols: []string{in.Cols[g.Col], "count"}}
}

func sortRowsByCol(rows []table.Row, col int) {
	sort.Slice(rows, func(i, j int) bool {
		return core.Compare(rows[i][col], rows[j][col]) < 0
	})
}
