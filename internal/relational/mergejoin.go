package relational

import (
	"xst/internal/core"
	"xst/internal/table"
)

// MergeJoin joins two children on LeftCol = RightCol by sorting both
// inputs on their keys and advancing two cursors — the third classic
// join algorithm next to nested loops and hashing. Like Sort it
// materializes its inputs; its advantage is ordered output and no hash
// table. Matching key runs are joined run-against-run.
type MergeJoin struct {
	Left, Right       Iterator
	LeftCol, RightCol int

	lrows, rrows []table.Row
	li, ri       int
	pending      []table.Row
	open         bool
}

// Open implements Iterator.
func (j *MergeJoin) Open() error {
	l, err := Collect(j.Left)
	if err != nil {
		return err
	}
	r, err := Collect(j.Right)
	if err != nil {
		return err
	}
	sortRowsByCol(l, j.LeftCol)
	sortRowsByCol(r, j.RightCol)
	j.lrows, j.rrows = l, r
	j.li, j.ri = 0, 0
	j.pending = nil
	j.open = true
	return nil
}

// Next implements Iterator.
func (j *MergeJoin) Next() (table.Row, bool, error) {
	if !j.open {
		return nil, false, ErrNotOpen
	}
	for {
		if len(j.pending) > 0 {
			out := j.pending[0]
			j.pending = j.pending[1:]
			return out, true, nil
		}
		if j.li >= len(j.lrows) || j.ri >= len(j.rrows) {
			return nil, false, nil
		}
		lkey := j.lrows[j.li][j.LeftCol]
		rkey := j.rrows[j.ri][j.RightCol]
		switch c := core.Compare(lkey, rkey); {
		case c < 0:
			j.li++
		case c > 0:
			j.ri++
		default:
			lEnd := j.li
			for lEnd < len(j.lrows) && core.Equal(j.lrows[lEnd][j.LeftCol], lkey) {
				lEnd++
			}
			rEnd := j.ri
			for rEnd < len(j.rrows) && core.Equal(j.rrows[rEnd][j.RightCol], rkey) {
				rEnd++
			}
			for _, l := range j.lrows[j.li:lEnd] {
				for _, r := range j.rrows[j.ri:rEnd] {
					row := make(table.Row, 0, len(l)+len(r))
					row = append(row, l...)
					row = append(row, r...)
					j.pending = append(j.pending, row)
				}
			}
			j.li, j.ri = lEnd, rEnd
		}
	}
}

// Close implements Iterator.
func (j *MergeJoin) Close() error {
	j.open = false
	j.lrows, j.rrows, j.pending = nil, nil, nil
	return nil
}

// Schema implements Iterator.
func (j *MergeJoin) Schema() table.Schema {
	nl := NestedLoopJoin{Left: j.Left, Right: j.Right}
	return nl.Schema()
}
