package relational

import (
	"xst/internal/core"
	"xst/internal/index"
	"xst/internal/store"
	"xst/internal/table"
)

// IndexRangeScan streams the rows with Lo <= column < Hi through a
// B+tree index, in key order — the ordered prestructured access path.
// Keys use core.OrderKey, whose byte order matches the canonical value
// order for atoms. A nil Hi means unbounded above.
type IndexRangeScan struct {
	Table  *table.Table
	Index  *index.BTree
	Lo, Hi core.Value

	rids []store.RID
	pos  int
	open bool
}

// BuildBTreeIndex scans the table once and indexes the given column in a
// B+tree.
func BuildBTreeIndex(t *table.Table, col int) (*index.BTree, error) {
	bt := index.NewBTree()
	err := t.Scan(func(rid store.RID, r table.Row) (bool, error) {
		bt.Insert(core.OrderKey(r[col]), rid)
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return bt, nil
}

// Open implements Iterator. The qualifying rids are gathered from the
// leaf chain up front (they are small relative to the rows).
func (s *IndexRangeScan) Open() error {
	lo := ""
	if s.Lo != nil {
		lo = core.OrderKey(s.Lo)
	}
	hi := ""
	if s.Hi != nil {
		hi = core.OrderKey(s.Hi)
	}
	s.rids = s.rids[:0]
	s.Index.Range(lo, hi, func(_ string, rids []store.RID) bool {
		s.rids = append(s.rids, rids...)
		return true
	})
	s.pos = 0
	s.open = true
	return nil
}

// Next implements Iterator.
func (s *IndexRangeScan) Next() (table.Row, bool, error) {
	if !s.open {
		return nil, false, ErrNotOpen
	}
	if s.pos >= len(s.rids) {
		return nil, false, nil
	}
	rid := s.rids[s.pos]
	s.pos++
	row, err := s.Table.Get(rid)
	if err != nil {
		return nil, false, err
	}
	return row, true, nil
}

// Close implements Iterator.
func (s *IndexRangeScan) Close() error {
	s.open = false
	s.rids = nil
	return nil
}

// Schema implements Iterator.
func (s *IndexRangeScan) Schema() table.Schema { return s.Table.Schema() }
