// Package sysview exposes the engine's own runtime state as virtual
// `__sys.*` tables — on-demand computed relations queryable through the
// same `from …` algebra as stored data. The XST reading is the
// intensional set {x ∈ __sys.queries : P(x)}: observability is not a
// parallel API but one more family of sets the planner, executor,
// server protocol and federation all handle unchanged.
//
// A Table pairs a fixed schema with a Rows function evaluated when the
// query's operator tree opens, so every query sees the state as of its
// own execution. Tables satisfy the xlang.VirtualTable interface
// structurally (Schema/EstRows/NewOp) and enter plans as plan.Source
// leaves; providers are registered by the layers that own the state
// (catalog: wal/txns/indexes/stats, server: queries/metrics/slow,
// federation coordinator: sites).
package sysview

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"xst/internal/exec"
	"xst/internal/table"
)

// Canonical view names. The "__sys." prefix keeps the namespace out of
// stored-table names (the catalog reserves "__"-prefixed names).
const (
	Queries = "__sys.queries"
	Metrics = "__sys.metrics"
	Slow    = "__sys.slow"
	Txns    = "__sys.txns"
	Wal     = "__sys.wal"
	Sites   = "__sys.sites"
	Indexes = "__sys.indexes"
	Stats   = "__sys.stats"
)

// StandardCols fixes the column set of each standard view. Shared so
// the federation coordinator can declare site-matching stubs without a
// live local instance, and so tests can pin the schemas.
var StandardCols = map[string][]string{
	// One row per in-flight or recently finished statement.
	Queries: {"qid", "stmt", "state", "phase", "dur_us", "rows", "dop", "epoch"},
	// The metrics registry flattened: one row per series.
	Metrics: {"name", "kind", "value"},
	// The slow-query ring: over-threshold statements with attribution.
	Slow: {"stmt", "dur_us", "rows", "dop", "epoch"},
	// One row per pinned MVCC snapshot epoch.
	Txns: {"epoch", "refs", "age_us"},
	// One row of WAL/MVCC health for this database.
	Wal: {"epoch", "wal_bytes", "superseded_pages", "pinned_snapshots", "oldest_pin_us", "checkpoints"},
	// Federation coordinator only: one row per remote site.
	Sites: {"site", "addr", "up", "fragments", "retries", "failures", "bytes", "latency_us"},
	// Declared indexes visible to the planner.
	Indexes: {"tbl", "col", "kind", "entries"},
	// Per-column `.analyze` statistics the planner costs with.
	Stats: {"tbl", "col", "rows", "distinct"},
}

// Table is one system view: a fixed schema plus a Rows function
// computing the current state. Rows is called once per query execution
// (at operator open) and must return retainable rows — never aliases
// into scratch the caller could race on.
type Table struct {
	Name string
	Help string
	Cols []string
	// Est is the planner's cardinality guess; 0 means a small default.
	Est float64
	// Rows computes the view's rows under the query's context.
	Rows func(ctx context.Context) ([]table.Row, error)
}

// Schema implements the xlang.VirtualTable shape.
func (t *Table) Schema() table.Schema {
	return table.Schema{Name: t.Name, Cols: t.Cols}
}

// EstRows implements the xlang.VirtualTable shape.
func (t *Table) EstRows() float64 {
	if t.Est > 0 {
		return t.Est
	}
	return 64
}

// NewOp implements the xlang.VirtualTable shape: a fresh single-use
// operator that materializes the view when opened.
func (t *Table) NewOp() (exec.Operator, error) {
	if t.Rows == nil {
		return nil, fmt.Errorf("sysview: %s has no row producer", t.Name)
	}
	return &op{t: t}, nil
}

// Standard returns a Table with the canonical columns for name. It
// panics on an unknown name — providers register only the fixed set.
func Standard(name, help string, rows func(ctx context.Context) ([]table.Row, error)) *Table {
	cols, ok := StandardCols[name]
	if !ok {
		panic("sysview: no standard columns for " + name)
	}
	return &Table{Name: name, Help: help, Cols: cols, Rows: rows}
}

// Registry collects the views one process serves. Registration happens
// at construction time (catalog open, server start, coordinator
// connect); reads are per-query.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*Table
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*Table{}}
}

// Register adds t, rejecting duplicates and empty names.
func (r *Registry) Register(t *Table) error {
	if t.Name == "" {
		return fmt.Errorf("sysview: empty view name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[t.Name]; dup {
		return fmt.Errorf("sysview: duplicate view %q", t.Name)
	}
	r.byName[t.Name] = t
	return nil
}

// Get fetches a registered view by name.
func (r *Registry) Get(name string) (*Table, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.byName[name]
	return t, ok
}

// Tables returns the registered views sorted by name.
func (r *Registry) Tables() []*Table {
	r.mu.RLock()
	out := make([]*Table, 0, len(r.byName))
	for _, t := range r.byName {
		out = append(out, t)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// op materializes one view at Open and streams it out in batches. The
// emitted batches alias the materialized slice — scratch per the exec
// contract, owned by this operator until Close.
type op struct {
	t      *Table
	ctx    context.Context
	buf    []table.Row
	off    int
	opened bool
	st     exec.OpStats
}

// Open computes the view's rows.
func (o *op) Open(ctx context.Context) error {
	o.st = exec.OpStats{}
	rows, err := o.t.Rows(ctx)
	if err != nil {
		return fmt.Errorf("sysview: %s: %w", o.t.Name, err)
	}
	o.ctx, o.buf, o.off, o.opened = ctx, rows, 0, true
	o.st.HeldRows = len(rows)
	return nil
}

// Next emits the next batch of materialized rows.
func (o *op) Next() ([]table.Row, error) {
	if !o.opened {
		return nil, fmt.Errorf("exec: %s: Next before Open", o)
	}
	if err := o.ctx.Err(); err != nil {
		return nil, err
	}
	if o.off >= len(o.buf) {
		return nil, nil
	}
	end := o.off + exec.MaxBatchRows
	if end > len(o.buf) {
		end = len(o.buf)
	}
	out := o.buf[o.off:end]
	o.off = end
	o.st.RowsOut += len(out)
	o.st.Batches++
	if len(out) > o.st.MaxBatch {
		o.st.MaxBatch = len(out)
	}
	return out, nil
}

// Close releases the materialized rows.
func (o *op) Close() error {
	o.buf, o.opened = nil, false
	return nil
}

// OutSchema implements exec.Operator.
func (o *op) OutSchema() table.Schema { return o.t.Schema() }

// Stats implements exec.Operator.
func (o *op) Stats() exec.OpStats { return o.st }

// Children implements exec.Operator.
func (o *op) Children() []exec.Operator { return nil }

func (o *op) String() string { return "sysview(" + o.t.Name + ")" }
