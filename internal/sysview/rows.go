package sysview

import (
	"xst/internal/core"
	"xst/internal/metrics"
	"xst/internal/table"
	"xst/internal/trace"
)

// MetricsRows flattens a registry snapshot into __sys.metrics rows:
// (name, kind, value), with histograms reporting their observation
// count — the same Value the registry's JSON snapshot carries, so the
// view and the `.metrics` admin snapshot agree by construction.
func MetricsRows(snap []metrics.MetricSnapshot) []table.Row {
	out := make([]table.Row, 0, len(snap))
	for _, m := range snap {
		out = append(out, table.Row{core.Str(m.Name), core.Str(m.Kind), core.Int(m.Value)})
	}
	return out
}

// SlowRows projects the slow-query ring's span trees into __sys.slow
// rows: (stmt, dur_us, rows, dop, epoch). The statement is the root
// span's note; row counts come from the root or, when the root carries
// none, its exec child — the same tree the `.slow` admin command
// returns, so the view and the admin snapshot agree by construction.
func SlowRows(snaps []trace.SpanSnapshot) []table.Row {
	out := make([]table.Row, 0, len(snaps))
	for i := range snaps {
		s := &snaps[i]
		rows := s.Rows
		if rows == 0 {
			if e := s.Find("exec"); e != nil {
				rows = e.Rows
			}
		}
		out = append(out, table.Row{
			core.Str(s.Note),
			core.Int(s.DurNS / 1e3),
			core.Int(rows),
			core.Int(int64(s.DOP)),
			core.Int(s.Epoch),
		})
	}
	return out
}
