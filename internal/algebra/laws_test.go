package algebra

import (
	"testing"

	"xst/internal/core"
	"xst/internal/xtest"
)

// The laws below are Consequence 7.1 (domain), Consequence C.1 (image)
// and Consequence 8.1 (function properties) checked over randomized
// extended sets. Experiment E7 re-runs the same checks as a reported
// table; these tests are its correctness anchor.

const lawTrials = 400

func lawRand() (*xtest.Rand, xtest.Config) {
	return xtest.NewRand(0xE7), xtest.DefaultConfig()
}

// randSigma draws a small scope set biased toward positional scopes so
// that re-scoping actually fires.
func randSigma(r *xtest.Rand) *core.Set {
	n := 1 + r.Intn(3)
	b := core.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(core.Int(1+r.Intn(4)), core.Int(1+r.Intn(4)))
	}
	return b.Set()
}

func randSigmaPair(r *xtest.Rand) Sigma {
	return NewSigma(randSigma(r), randSigma(r))
}

// randCarrier draws a set of small tuples, the typical carrier shape.
func randCarrier(r *xtest.Rand, cfg xtest.Config) *core.Set {
	n := r.Intn(5)
	b := core.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddClassical(cfg.Tuple(r, 4))
	}
	return b.Set()
}

// TestDomainLaws71 checks Consequence 7.1(a)–(e).
func TestDomainLaws71(t *testing.T) {
	r, cfg := lawRand()
	for i := 0; i < lawTrials; i++ {
		q, s := randCarrier(r, cfg), randCarrier(r, cfg)
		sigma := randSigma(r)

		// (a) 𝔇_σ(Q ∪ S) = 𝔇_σ(Q) ∪ 𝔇_σ(S)
		if !core.Equal(SigmaDomain(core.Union(q, s), sigma),
			core.Union(SigmaDomain(q, sigma), SigmaDomain(s, sigma))) {
			t.Fatalf("7.1(a) failed: Q=%v S=%v σ=%v", q, s, sigma)
		}
		// (b) 𝔇_σ(Q ∩ S) ⊆ 𝔇_σ(Q) ∩ 𝔇_σ(S)
		if !core.Subset(SigmaDomain(core.Intersect(q, s), sigma),
			core.Intersect(SigmaDomain(q, sigma), SigmaDomain(s, sigma))) {
			t.Fatalf("7.1(b) failed: Q=%v S=%v σ=%v", q, s, sigma)
		}
		// (c) 𝔇_σ(Q) ∼ 𝔇_σ(S) ⊆ 𝔇_σ(Q ∼ S)
		if !core.Subset(core.Diff(SigmaDomain(q, sigma), SigmaDomain(s, sigma)),
			SigmaDomain(core.Diff(q, s), sigma)) {
			t.Fatalf("7.1(c) failed: Q=%v S=%v σ=%v", q, s, sigma)
		}
		// (d) Q ⊆ S → 𝔇_σ(Q) ⊆ 𝔇_σ(S)
		sub := core.Intersect(q, s)
		if !core.Subset(SigmaDomain(sub, sigma), SigmaDomain(s, sigma)) {
			t.Fatalf("7.1(d) failed: sub=%v S=%v σ=%v", sub, s, sigma)
		}
		// (e) 𝔇_∅(Q) = ∅
		if !SigmaDomain(q, core.Empty()).IsEmpty() {
			t.Fatalf("7.1(e) failed: Q=%v", q)
		}
	}
}

// TestImageLawsC1 checks Consequence C.1(a)–(k).
func TestImageLawsC1(t *testing.T) {
	r, cfg := lawRand()
	for i := 0; i < lawTrials; i++ {
		q, rr := randCarrier(r, cfg), randCarrier(r, cfg)
		a, b := randCarrier(r, cfg), randCarrier(r, cfg)
		sig := randSigmaPair(r)

		// (a) Q[A ∪ B]_σ = Q[A]_σ ∪ Q[B]_σ
		if !core.Equal(Image(q, core.Union(a, b), sig),
			core.Union(Image(q, a, sig), Image(q, b, sig))) {
			t.Fatalf("C.1(a) failed: Q=%v A=%v B=%v σ=%v", q, a, b, sig)
		}
		// (b) Q[A ∩ B]_σ ⊆ Q[A]_σ ∩ Q[B]_σ
		if !core.Subset(Image(q, core.Intersect(a, b), sig),
			core.Intersect(Image(q, a, sig), Image(q, b, sig))) {
			t.Fatalf("C.1(b) failed: Q=%v A=%v B=%v", q, a, b)
		}
		// (c) Q[A]_σ ∼ Q[B]_σ ⊆ Q[A ∼ B]_σ
		if !core.Subset(core.Diff(Image(q, a, sig), Image(q, b, sig)),
			Image(q, core.Diff(a, b), sig)) {
			t.Fatalf("C.1(c) failed: Q=%v A=%v B=%v", q, a, b)
		}
		// (d) A ⊆ B → Q[A]_σ ⊆ Q[B]_σ
		sub := core.Intersect(a, b)
		if !core.Subset(Image(q, sub, sig), Image(q, b, sig)) {
			t.Fatalf("C.1(d) failed: sub=%v B=%v", sub, b)
		}
		// (g) Q[∅]_σ = ∅, ∅[A]_σ = ∅, Q[A]_∅ = ∅
		if !Image(q, core.Empty(), sig).IsEmpty() ||
			!Image(core.Empty(), a, sig).IsEmpty() ||
			!Image(q, a, NewSigma(core.Empty(), core.Empty())).IsEmpty() {
			t.Fatal("C.1(g) failed")
		}
		// (i) (Q ∪ R)[A]_σ = Q[A]_σ ∪ R[A]_σ
		if !core.Equal(Image(core.Union(q, rr), a, sig),
			core.Union(Image(q, a, sig), Image(rr, a, sig))) {
			t.Fatalf("C.1(i) failed: Q=%v R=%v A=%v", q, rr, a)
		}
		// (j) (Q ∩ R)[A]_σ ⊆ Q[A]_σ ∩ R[A]_σ
		if !core.Subset(Image(core.Intersect(q, rr), a, sig),
			core.Intersect(Image(q, a, sig), Image(rr, a, sig))) {
			t.Fatalf("C.1(j) failed")
		}
		// (k) Q[A]_σ ∼ R[A]_σ ⊆ (Q ∼ R)[A]_σ
		if !core.Subset(core.Diff(Image(q, a, sig), Image(rr, a, sig)),
			Image(core.Diff(q, rr), a, sig)) {
			t.Fatalf("C.1(k) failed")
		}
		// (f) Q[A]_{⟨σ,γ⟩} = 𝔇_γ(Q |_σ A) — definitional identity.
		if !core.Equal(Image(q, a, sig), SigmaDomain(SigmaRestrict(q, sig.S1, a), sig.S2)) {
			t.Fatal("C.1(f) failed")
		}
	}
}

// TestImageLawC1e checks (e): Q[𝔇_σ(Q) ∩ A]_{⟨σ,γ⟩} = Q[A]_{⟨σ,γ⟩} for
// the standard positional σ over pair carriers, where domain members are
// exactly the singleton probes.
func TestImageLawC1e(t *testing.T) {
	r, cfg := lawRand()
	sig := StdSigma()
	for i := 0; i < lawTrials; i++ {
		q := cfg.Relation(r, r.Intn(6), 4, 4)
		// Inputs drawn from 1-tuple space, half overlapping the domain.
		b := core.NewBuilder(3)
		for j := 0; j < 3; j++ {
			b.AddClassical(core.Tuple(core.Int(r.Intn(6))))
		}
		a := b.Set()
		dom := SigmaDomain(q, sig.S1)
		if !core.Equal(Image(q, core.Intersect(dom, a), sig), Image(q, a, sig)) {
			t.Fatalf("C.1(e) failed: Q=%v A=%v", q, a)
		}
		// (h) 𝔇_σ(Q) ∩ A = ∅ → Q[A]_σ = ∅
		if core.Intersect(dom, a).IsEmpty() {
			if got := Image(q, a, sig); !got.IsEmpty() {
				t.Fatalf("C.1(h) failed: Q=%v A=%v img=%v", q, a, got)
			}
		}
	}
}

// TestFunctionLaws81 checks Consequence 8.1(a)–(c):
// application distributes over carrier union, and is sub-distributive
// over intersection and difference.
func TestFunctionLaws81(t *testing.T) {
	r, cfg := lawRand()
	for i := 0; i < lawTrials; i++ {
		f, g := randCarrier(r, cfg), randCarrier(r, cfg)
		x := randCarrier(r, cfg)
		sig := randSigmaPair(r)

		fx := Image(f, x, sig)
		gx := Image(g, x, sig)
		// (a) (f ∪ g)_(σ)(x) = f_(σ)(x) ∪ g_(σ)(x)
		if !core.Equal(Image(core.Union(f, g), x, sig), core.Union(fx, gx)) {
			t.Fatalf("8.1(a) failed: f=%v g=%v x=%v", f, g, x)
		}
		// (b) (f ∩ g)_(σ)(x) ⊆ f_(σ)(x) ∩ g_(σ)(x)
		if !core.Subset(Image(core.Intersect(f, g), x, sig), core.Intersect(fx, gx)) {
			t.Fatalf("8.1(b) failed")
		}
		// (c) f_(σ)(x) ∼ g_(σ)(x) ⊆ (f ∼ g)_(σ)(x)
		if !core.Subset(core.Diff(fx, gx), Image(core.Diff(f, g), x, sig)) {
			t.Fatalf("8.1(c) failed")
		}
	}
}
