// Package algebra implements the extended-set operations of XST: the two
// re-scoping operations, σ-domain, σ-restriction, image, tuple
// concatenation, cross products, tagging, σ-value extraction and the
// generalized relative product. Definition numbers refer to Childs'
// formal text ("Functions as Set Behavior"), whose operation set is the
// published specification of the Extended Set Theory operations.
package algebra

import "xst/internal/core"

// ReScopeByScope implements Def 7.3, A^{/σ/}:
//
//	A^{/σ/} = { x^w : ∃s ( x ∈_s A  &  s ∈_w σ ) }
//
// Each member x of A whose scope s occurs as an *element* of σ is kept,
// re-scoped to the scope(s) that s carries inside σ. Members whose scope
// does not occur in σ are dropped. Non-set operands have no members and
// yield ∅.
//
// Example (paper): {a^x, b^y, c^z}^{/{x^1, y^2, z^3}/} = {a^1, b^2, c^3}.
func ReScopeByScope(a core.Value, sigma *core.Set) *core.Set {
	as, ok := a.(*core.Set)
	if !ok || as.IsEmpty() || sigma.IsEmpty() {
		return core.Empty()
	}
	b := core.NewBuilder(as.Len())
	for _, m := range as.Members() {
		for _, w := range sigma.ScopesOf(m.Scope) {
			b.Add(m.Elem, w)
		}
	}
	return b.Set()
}

// ComposeScopes returns the scope set κ with A^{/σ/}^{/τ/} = A^{/κ/}
// for every A: κ carries s ↦ v exactly when σ carries s ↦ w and τ
// carries w ↦ v for some w —
//
//	κ = { s^v : ∃w ( s ∈_w σ  &  w ∈_v τ ) }
//
// the membership-level relative product of the two scope sets. This is
// the algebraic identity behind fusing consecutive re-scopes (and hence
// consecutive projections) into one operation.
func ComposeScopes(sigma, tau *core.Set) *core.Set {
	b := core.NewBuilder(sigma.Len())
	for _, m := range sigma.Members() {
		for _, v := range tau.ScopesOf(m.Scope) {
			b.Add(m.Elem, v)
		}
	}
	return b.Set()
}

// ReScopeByElem implements Def 7.5, A^{\σ\}:
//
//	A^{\σ\} = { x^w : ∃s ( x ∈_s A  &  w ∈_s σ ) }
//
// Each member x of A is re-scoped to the element(s) of σ that appear
// under x's scope s. Non-set operands yield ∅.
//
// Example (paper): {a^1, b^2, c^3}^{\{w^1, v^2, t^3}\} = {a^w, b^v, c^t}.
func ReScopeByElem(a core.Value, sigma *core.Set) *core.Set {
	as, ok := a.(*core.Set)
	if !ok || as.IsEmpty() || sigma.IsEmpty() {
		return core.Empty()
	}
	b := core.NewBuilder(as.Len())
	for _, m := range as.Members() {
		for _, w := range sigma.ElemsUnder(m.Scope) {
			b.Add(m.Elem, w)
		}
	}
	return b.Set()
}
