package algebra

import "xst/internal/core"

// RelativeProduct implements Def 10.1, the generalized relative product
//
//	F /_{⟨σ1,σ2⟩}^{⟨ω1,ω2⟩} G =
//	  { z^τ : ∃x,s,y,t ( x ∈_s F & y ∈_t G &
//	                     x^{/σ2/} = y^{/ω1/} & s^{/σ2/} = t^{/ω1/} &
//	                     z = x^{/σ1/} ∪ y^{/ω2/} & τ = s^{/σ1/} ∪ t^{/ω2/} ) }
//
// σ2 selects the join key inside F's members, ω1 the join key inside G's
// members; σ1 and ω2 select and re-index what each side contributes to
// the output. This one operation specializes to the CST relative product,
// natural join, semijoin, projection-join and the composition operator of
// Def 11.1, depending on the four scope sets — the paper's §10 lists
// eight useful parameterizations, reproduced by experiment E3.
//
// The implementation is a hash join on the canonical encoding of the
// (key-element, key-scope) pair, so it runs in O(|F| + |G| + out).
func RelativeProduct(f, g *core.Set, sigma, omega Sigma) *core.Set {
	if f.IsEmpty() || g.IsEmpty() {
		return core.Empty()
	}
	type half struct {
		contrib      *core.Set // x^{/σ1/} or y^{/ω2/}
		contribScope *core.Set // s^{/σ1/} or t^{/ω2/}
	}
	// Build side: index G by its ω1 key.
	build := make(map[string][]half, g.Len())
	var keyBuf []byte
	makeKey := func(ke, ks *core.Set) string {
		keyBuf = keyBuf[:0]
		keyBuf = core.AppendEncode(keyBuf, ke)
		keyBuf = core.AppendEncode(keyBuf, ks)
		return string(keyBuf)
	}
	for _, m := range g.Members() {
		k := makeKey(ReScopeByScope(m.Elem, omega.S1), ReScopeByScope(m.Scope, omega.S1))
		build[k] = append(build[k], half{
			contrib:      ReScopeByScope(m.Elem, omega.S2),
			contribScope: ReScopeByScope(m.Scope, omega.S2),
		})
	}
	out := core.NewBuilder(f.Len())
	for _, m := range f.Members() {
		k := makeKey(ReScopeByScope(m.Elem, sigma.S2), ReScopeByScope(m.Scope, sigma.S2))
		matches := build[k]
		if len(matches) == 0 {
			continue
		}
		fe := ReScopeByScope(m.Elem, sigma.S1)
		fs := ReScopeByScope(m.Scope, sigma.S1)
		for _, h := range matches {
			out.Add(core.Union(fe, h.contrib), core.Union(fs, h.contribScope))
		}
	}
	return out.Set()
}

// RelProdSpec packages a full relative-product parameterization: the two
// scope pairs ⟨σ1,σ2⟩ and ⟨ω1,ω2⟩.
type RelProdSpec struct {
	Sigma Sigma
	Omega Sigma
}

// Apply runs the relative product under this specification.
func (s RelProdSpec) Apply(f, g *core.Set) *core.Set {
	return RelativeProduct(f, g, s.Sigma, s.Omega)
}

// ScopeSet builds the scope set {p1^i1, …, pn^in} from (element, index)
// pairs — the notation {1^1, 2^3} of the paper's §10 parameter lists.
func ScopeSet(pairs ...[2]int) *core.Set {
	b := core.NewBuilder(len(pairs))
	for _, p := range pairs {
		b.Add(core.Int(p[0]), core.Int(p[1]))
	}
	return b.Set()
}

// Section10Specs returns the eight relative-product parameterizations
// listed in §10 of the formal text, in the paper's order:
//
//  1. ⟨a,b⟩/⟨b,c⟩ → ⟨a,c⟩       (CST relative product)
//  2. ⟨a,b⟩/⟨b,c⟩ → ⟨a,b,c⟩     (key-preserving join)
//  3. ⟨a,b⟩/⟨a,c⟩ → ⟨a,b,c⟩     (first-key join, F keeps both)
//  4. ⟨a,b⟩/⟨a,c⟩ → ⟨b,c⟩       (first-key join, key dropped)
//  5. ⟨a,b⟩/⟨c,b⟩ → ⟨a,c,b⟩     (second-key join, G keeps both)
//  6. ⟨a,b⟩/⟨c,b⟩ → ⟨a,c⟩       (second-key join, key dropped)
//  7. 3-tuple/4-tuple → 8-tuple  (wide reorder with duplication)
//  8. 5-tuple/6-tuple → 8-tuple  (natural join on a 3-position key)
func Section10Specs() []RelProdSpec {
	p := func(pairs ...[2]int) *core.Set { return ScopeSet(pairs...) }
	return []RelProdSpec{
		{NewSigma(p([2]int{1, 1}), p([2]int{2, 1})), NewSigma(p([2]int{1, 1}), p([2]int{2, 2}))},
		{NewSigma(p([2]int{1, 1}), p([2]int{2, 1})), NewSigma(p([2]int{1, 1}), p([2]int{1, 2}, [2]int{2, 3}))},
		{NewSigma(p([2]int{1, 1}, [2]int{2, 2}), p([2]int{1, 1})), NewSigma(p([2]int{1, 1}), p([2]int{2, 3}))},
		{NewSigma(p([2]int{2, 1}), p([2]int{1, 1})), NewSigma(p([2]int{1, 1}), p([2]int{2, 2}))},
		{NewSigma(p([2]int{1, 1}), p([2]int{2, 1})), NewSigma(p([2]int{2, 1}), p([2]int{1, 2}, [2]int{2, 3}))},
		{NewSigma(p([2]int{1, 1}), p([2]int{2, 1})), NewSigma(p([2]int{2, 1}), p([2]int{1, 2}))},
		{NewSigma(p([2]int{2, 1}, [2]int{3, 2}, [2]int{1, 3}), p([2]int{2, 1}, [2]int{3, 2})),
			NewSigma(p([2]int{4, 1}, [2]int{3, 2}), p([2]int{2, 4}, [2]int{4, 5}, [2]int{3, 6}, [2]int{1, 7}, [2]int{1, 8}))},
		{NewSigma(p([2]int{1, 1}, [2]int{2, 2}, [2]int{3, 3}, [2]int{4, 4}, [2]int{5, 5}), p([2]int{1, 1}, [2]int{2, 2}, [2]int{3, 3})),
			NewSigma(p([2]int{1, 1}, [2]int{2, 2}, [2]int{3, 3}), p([2]int{4, 6}, [2]int{5, 7}, [2]int{6, 8}))},
	}
}

// CSTRelativeProduct is the classical relative product F/G =
// { ⟨a,c⟩ : ∃b ⟨a,b⟩ ∈ F & ⟨b,c⟩ ∈ G }, realized as the §10 case-1
// parameterization σ = ⟨{1¹},{2¹}⟩, ω = ⟨{1¹},{2²}⟩.
func CSTRelativeProduct(f, g *core.Set) *core.Set {
	spec := RelProdSpec{
		Sigma: NewSigma(ScopeSet([2]int{1, 1}), ScopeSet([2]int{2, 1})),
		Omega: NewSigma(ScopeSet([2]int{1, 1}), ScopeSet([2]int{2, 2})),
	}
	return spec.Apply(f, g)
}
