package algebra

import (
	"context"

	"xst/internal/core"
)

// BigUnion implements ⋃A: the union of all set-valued elements of A.
// Scopes inside the element sets are preserved; non-set elements
// contribute nothing. (⋃∅ = ∅.)
func BigUnion(a *core.Set) *core.Set {
	b := core.NewBuilder(a.Len())
	for _, m := range a.Members() {
		if s, ok := m.Elem.(*core.Set); ok {
			b.AddSet(s)
		}
	}
	return b.Set()
}

// TransitiveClosure returns R⁺ for a set of classical pairs: the
// smallest transitive relation containing R, computed by semi-naive
// iteration of the CST relative product (each round joins only the
// newly discovered pairs against R). Non-pair members are ignored.
func TransitiveClosure(r *core.Set) *core.Set {
	s, _ := TransitiveClosureCtx(context.Background(), r)
	return s
}

// TransitiveClosureCtx is TransitiveClosure under a cancellation
// context: the pair filter polls every ctxCheckEvery members and the
// semi-naive iteration once per round (each round is one relative
// product — the expensive unit).
func TransitiveClosureCtx(ctx context.Context, r *core.Set) (*core.Set, error) {
	// Keep only the pair members.
	pairs := core.NewBuilder(r.Len())
	steps := 0
	for _, m := range r.Members() {
		if steps++; steps%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if n, ok := core.TupLen(m.Elem); ok && n == 2 {
			pairs.AddMember(m)
		}
	}
	closure := pairs.Set()
	delta := closure
	for !delta.IsEmpty() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		next := CSTRelativeProduct(delta, closure)
		delta = core.Diff(next, closure)
		closure = core.Union(closure, delta)
	}
	return closure, nil
}

// ReflexiveTransitiveClosure returns R* = R⁺ ∪ {⟨x,x⟩ : x in field(R)}.
func ReflexiveTransitiveClosure(r *core.Set) *core.Set {
	s, _ := ReflexiveTransitiveClosureCtx(context.Background(), r)
	return s
}

// ReflexiveTransitiveClosureCtx is ReflexiveTransitiveClosure under a
// cancellation context.
func ReflexiveTransitiveClosureCtx(ctx context.Context, r *core.Set) (*core.Set, error) {
	plus, err := TransitiveClosureCtx(ctx, r)
	if err != nil {
		return nil, err
	}
	b := core.NewBuilder(plus.Len())
	b.AddSet(plus)
	steps := 0
	for _, m := range plus.Members() {
		if steps++; steps%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		elems, ok := core.TupleElems(m.Elem)
		if !ok || len(elems) != 2 {
			continue
		}
		b.AddClassical(core.Pair(elems[0], elems[0]))
		b.AddClassical(core.Pair(elems[1], elems[1]))
	}
	return b.Set(), nil
}
