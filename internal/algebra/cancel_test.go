package algebra

import (
	"context"
	"testing"

	"xst/internal/core"
	"xst/internal/xtest"
)

// tuples builds the classical set {(0), (1), … (n-1)} of 1-tuples.
// (chain, the test relation builder, lives in closure_test.go.)
func tuples(n int) *core.Set {
	b := core.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddClassical(core.Tuple(core.Int(i)))
	}
	return b.Set()
}

func TestTransitiveClosureCtxCancel(t *testing.T) {
	// 2000 pairs: the pair filter alone polls ~7 times (every 256
	// members), and each semi-naive round polls once more — the 3rd poll
	// must abort the operation long before the quadratic closure builds.
	r := chain(2000)
	xtest.AssertCancelAborts(t, 3, func(ctx context.Context) error {
		_, err := TransitiveClosureCtx(ctx, r)
		return err
	})
}

func TestReflexiveTransitiveClosureCtxCancel(t *testing.T) {
	r := chain(2000)
	xtest.AssertCancelAborts(t, 3, func(ctx context.Context) error {
		_, err := ReflexiveTransitiveClosureCtx(ctx, r)
		return err
	})
}

func TestCrossProductCtxCancel(t *testing.T) {
	// 200×200 = 40k concat steps, polled every 256: the 5th poll lands
	// ~3% of the way in.
	a, b := tuples(200), tuples(200)
	xtest.AssertCancelAborts(t, 5, func(ctx context.Context) error {
		_, err := CrossProductCtx(ctx, a, b)
		return err
	})
}

func TestCartesianCtxCancel(t *testing.T) {
	a, b := tuples(200), tuples(200)
	xtest.AssertCancelAborts(t, 5, func(ctx context.Context) error {
		_, err := CartesianCtx(ctx, a, b)
		return err
	})
}
