package algebra

import (
	"testing"

	"xst/internal/core"
	"xst/internal/xtest"
)

// Deeper randomized properties of the XST operations beyond the paper's
// stated consequences.

const propTrials = 300

// TestRestrictionAlwaysSubset: R |_σ A ⊆ R for arbitrary operands.
func TestRestrictionAlwaysSubset(t *testing.T) {
	r := xtest.NewRand(0xA1)
	cfg := xtest.DefaultConfig()
	for i := 0; i < propTrials; i++ {
		rel := cfg.Set(r)
		a := cfg.Set(r)
		sigma := randPositionsSigma(r).S1
		got := SigmaRestrict(rel, sigma, a)
		if !core.Subset(got, rel) {
			t.Fatalf("R|A ⊄ R: R=%v A=%v σ=%v got=%v", rel, a, sigma, got)
		}
	}
}

// TestRestrictionMonotoneInA: A ⊆ B → R |_σ A ⊆ R |_σ B.
func TestRestrictionMonotoneInA(t *testing.T) {
	r := xtest.NewRand(0xA2)
	cfg := xtest.DefaultConfig()
	for i := 0; i < propTrials; i++ {
		rel, a, b := cfg.Set(r), cfg.Set(r), cfg.Set(r)
		sub := core.Intersect(a, b)
		sigma := randPositionsSigma(r).S1
		if !core.Subset(SigmaRestrict(rel, sigma, sub), SigmaRestrict(rel, sigma, b)) {
			t.Fatalf("monotonicity failed: R=%v sub=%v B=%v", rel, sub, b)
		}
	}
}

// TestRestrictionIdempotent: (R |_σ A) |_σ A = R |_σ A.
func TestRestrictionIdempotent(t *testing.T) {
	r := xtest.NewRand(0xA3)
	cfg := xtest.DefaultConfig()
	for i := 0; i < propTrials; i++ {
		rel, a := cfg.Set(r), cfg.Set(r)
		sigma := randPositionsSigma(r).S1
		once := SigmaRestrict(rel, sigma, a)
		twice := SigmaRestrict(once, sigma, a)
		if !core.Equal(once, twice) {
			t.Fatalf("idempotence failed: R=%v A=%v σ=%v", rel, a, sigma)
		}
	}
}

// TestDomainMonotone: Q ⊆ R → 𝔇_σ(Q) ⊆ 𝔇_σ(R) (Consequence 7.1(d)).
func TestDomainMonotone(t *testing.T) {
	r := xtest.NewRand(0xA4)
	cfg := xtest.DefaultConfig()
	for i := 0; i < propTrials; i++ {
		q, rel := cfg.Set(r), cfg.Set(r)
		sub := core.Intersect(q, rel)
		sigma := randPositionsSigma(r).S1
		if !core.Subset(SigmaDomain(sub, sigma), SigmaDomain(rel, sigma)) {
			t.Fatalf("domain monotonicity failed")
		}
	}
}

// TestReScopeIdentity: re-scoping a tuple by the identity positions
// ⟨1..n⟩ reproduces it.
func TestReScopeIdentity(t *testing.T) {
	r := xtest.NewRand(0xA5)
	cfg := xtest.DefaultConfig()
	for i := 0; i < propTrials; i++ {
		tp := cfg.Tuple(r, 5)
		n, _ := core.TupLen(tp)
		ps := make([]int, n)
		for j := range ps {
			ps[j] = j + 1
		}
		if !core.Equal(ReScopeByScope(tp, Positions(ps...)), tp) {
			t.Fatalf("identity re-scope changed %v", tp)
		}
	}
}

// TestReScopeComposition: re-scoping by σ then by the positions of σ's
// codomain equals re-scoping by the composed scope set — spot-checked
// via permutations: applying a permutation and its inverse round-trips.
func TestReScopePermutationRoundTrip(t *testing.T) {
	r := xtest.NewRand(0xA6)
	cfg := xtest.DefaultConfig()
	for i := 0; i < propTrials; i++ {
		tp := cfg.Tuple(r, 5)
		n, _ := core.TupLen(tp)
		// Random permutation of 1..n.
		perm := make([]int, n)
		for j := range perm {
			perm[j] = j + 1
		}
		for j := n - 1; j > 0; j-- {
			k := r.Intn(j + 1)
			perm[j], perm[k] = perm[k], perm[j]
		}
		// forward: position perm[j] → j+1; inverse: j+1 → perm[j].
		fwd := core.NewBuilder(n)
		inv := core.NewBuilder(n)
		for j, p := range perm {
			fwd.Add(core.Int(p), core.Int(j+1))
			inv.Add(core.Int(j+1), core.Int(p))
		}
		once := ReScopeByScope(tp, fwd.Set())
		back := ReScopeByScope(once, inv.Set())
		if !core.Equal(back, tp) {
			t.Fatalf("permutation round-trip failed: %v -> %v -> %v", tp, once, back)
		}
	}
}

// TestCrossProductCardinality: |A ⊗ B| ≤ |A|·|B| with equality on
// duplicate-free tuple sets of uniform arity.
func TestCrossProductCardinality(t *testing.T) {
	r := xtest.NewRand(0xA7)
	for i := 0; i < propTrials; i++ {
		mk := func(arity, n int) *core.Set {
			b := core.NewBuilder(n)
			for j := 0; j < n; j++ {
				xs := make([]core.Value, arity)
				for k := range xs {
					xs[k] = core.Int(r.Intn(50) + j*100)
				}
				b.AddClassical(core.Tuple(xs...))
			}
			return b.Set()
		}
		a := mk(1+r.Intn(2), 1+r.Intn(4))
		b := mk(1+r.Intn(2), 1+r.Intn(4))
		got := CrossProduct(a, b)
		if got.Len() > a.Len()*b.Len() {
			t.Fatalf("|A⊗B| = %d > %d", got.Len(), a.Len()*b.Len())
		}
	}
}

// TestCartesianMatchesDirectPairs: A × B via Def 9.7 equals the direct
// pair construction on classical sets.
func TestCartesianMatchesDirectPairs(t *testing.T) {
	r := xtest.NewRand(0xA8)
	cfg := xtest.DefaultConfig()
	for i := 0; i < propTrials; i++ {
		mkClassical := func() *core.Set {
			n := r.Intn(4)
			b := core.NewBuilder(n)
			for j := 0; j < n; j++ {
				b.AddClassical(cfg.Atom(r))
			}
			return b.Set()
		}
		a, b := mkClassical(), mkClassical()
		want := core.NewBuilder(a.Len() * b.Len())
		for _, am := range a.Members() {
			for _, bm := range b.Members() {
				want.AddClassical(core.Pair(am.Elem, bm.Elem))
			}
		}
		if got := Cartesian(a, b); !core.Equal(got, want.Set()) {
			t.Fatalf("A×B mismatch: A=%v B=%v got=%v", a, b, got)
		}
	}
}

// TestRelativeProductMatchesNestedLoops: the hash-join implementation of
// Def 10.1 agrees with a direct nested-loop evaluation of the
// definition.
func TestRelativeProductMatchesNestedLoops(t *testing.T) {
	r := xtest.NewRand(0xA9)
	cfg := xtest.DefaultConfig()
	specs := Section10Specs()
	for i := 0; i < propTrials; i++ {
		f := relationOfTuples(r, cfg, 5)
		g := relationOfTuples(r, cfg, 5)
		spec := specs[r.Intn(len(specs))]
		got := spec.Apply(f, g)
		want := relativeProductNaive(f, g, spec.Sigma, spec.Omega)
		if !core.Equal(got, want) {
			t.Fatalf("hash join ≠ naive: f=%v g=%v spec=%+v\ngot=%v\nwant=%v", f, g, spec, got, want)
		}
	}
}

func relationOfTuples(r *xtest.Rand, cfg xtest.Config, maxRows int) *core.Set {
	n := r.Intn(maxRows + 1)
	b := core.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddClassical(cfg.Tuple(r, 6))
	}
	return b.Set()
}

// relativeProductNaive evaluates Def 10.1 by direct double iteration.
func relativeProductNaive(f, g *core.Set, sigma, omega Sigma) *core.Set {
	b := core.NewBuilder(f.Len())
	for _, fm := range f.Members() {
		fKey := ReScopeByScope(fm.Elem, sigma.S2)
		fKeyScope := ReScopeByScope(fm.Scope, sigma.S2)
		for _, gm := range g.Members() {
			gKey := ReScopeByScope(gm.Elem, omega.S1)
			gKeyScope := ReScopeByScope(gm.Scope, omega.S1)
			if !core.Equal(fKey, gKey) || !core.Equal(fKeyScope, gKeyScope) {
				continue
			}
			z := core.Union(ReScopeByScope(fm.Elem, sigma.S1), ReScopeByScope(gm.Elem, omega.S2))
			tau := core.Union(ReScopeByScope(fm.Scope, sigma.S1), ReScopeByScope(gm.Scope, omega.S2))
			b.Add(z, tau)
		}
	}
	return b.Set()
}

func randPositionsSigma(r *xtest.Rand) Sigma {
	mk := func() *core.Set {
		n := 1 + r.Intn(3)
		b := core.NewBuilder(n)
		for i := 0; i < n; i++ {
			b.Add(core.Int(1+r.Intn(4)), core.Int(1+r.Intn(4)))
		}
		return b.Set()
	}
	return NewSigma(mk(), mk())
}

// TestComposeScopesLaw: (A^{/σ/})^{/τ/} = A^{/ComposeScopes(σ,τ)/} on
// randomized operands — the re-scope fusion identity.
func TestComposeScopesLaw(t *testing.T) {
	r := xtest.NewRand(0xAA)
	cfg := xtest.DefaultConfig()
	for i := 0; i < propTrials; i++ {
		a := cfg.Set(r)
		sigma := randPositionsSigma(r).S1
		tau := randPositionsSigma(r).S1
		stepwise := ReScopeByScope(ReScopeByScope(a, sigma), tau)
		fused := ReScopeByScope(a, ComposeScopes(sigma, tau))
		if !core.Equal(stepwise, fused) {
			t.Fatalf("fusion law failed: A=%v σ=%v τ=%v\nstepwise=%v\nfused=%v",
				a, sigma, tau, stepwise, fused)
		}
	}
}

// TestComposeScopesDomainFusion: 𝔇_τ(𝔇_σ(R)) = 𝔇_{σ∘τ}(R) on sets of
// tuples, the projection-fusion corollary.
func TestComposeScopesDomainFusion(t *testing.T) {
	r := xtest.NewRand(0xAB)
	cfg := xtest.DefaultConfig()
	for i := 0; i < propTrials; i++ {
		rel := relationOfTuples(r, cfg, 5)
		sigma := randPositionsSigma(r).S1
		tau := randPositionsSigma(r).S1
		stepwise := SigmaDomain(SigmaDomain(rel, sigma), tau)
		fused := SigmaDomain(rel, ComposeScopes(sigma, tau))
		if !core.Equal(stepwise, fused) {
			t.Fatalf("projection fusion failed: R=%v σ=%v τ=%v", rel, sigma, tau)
		}
	}
}
