package algebra

import (
	"testing"

	"xst/internal/core"
)

// section10Specs aliases the exported catalog for the tests below.
func section10Specs() []RelProdSpec { return Section10Specs() }

func pairs(ps ...[2]string) *core.Set {
	b := core.NewBuilder(len(ps))
	for _, p := range ps {
		b.AddClassical(core.Tuple(str(p[0]), str(p[1])))
	}
	return b.Set()
}

// TestCSTRelativeProduct checks the classical case:
// {⟨a,b⟩}/{⟨b,c⟩} = {⟨a,c⟩}.
func TestCSTRelativeProduct(t *testing.T) {
	f := pairs([2]string{"a", "b"})
	g := pairs([2]string{"b", "c"})
	got := CSTRelativeProduct(f, g)
	want := pairs([2]string{"a", "c"})
	wantEqual(t, got, want)
}

// TestSection10Case1 — CST relative product via spec 1.
func TestSection10Case1(t *testing.T) {
	spec := section10Specs()[0]
	got := spec.Apply(pairs([2]string{"a", "b"}), pairs([2]string{"b", "c"}))
	wantEqual(t, got, pairs([2]string{"a", "c"}))
}

// TestSection10Case2 — key-preserving join: ⟨a,b⟩/⟨b,c⟩ → ⟨a,b,c⟩.
func TestSection10Case2(t *testing.T) {
	spec := section10Specs()[1]
	got := spec.Apply(pairs([2]string{"a", "b"}), pairs([2]string{"b", "c"}))
	wantEqual(t, got, core.S(core.Tuple(str("a"), str("b"), str("c"))))
}

// TestSection10Case3 — F keeps both positions, matched on firsts:
// ⟨a,b⟩/⟨a,c⟩ → ⟨a,b,c⟩.
func TestSection10Case3(t *testing.T) {
	spec := section10Specs()[2]
	got := spec.Apply(pairs([2]string{"a", "b"}), pairs([2]string{"a", "c"}))
	wantEqual(t, got, core.S(core.Tuple(str("a"), str("b"), str("c"))))
}

// TestSection10Case4 — drop the shared key: ⟨a,b⟩/⟨a,c⟩ → ⟨b,c⟩.
func TestSection10Case4(t *testing.T) {
	spec := section10Specs()[3]
	got := spec.Apply(pairs([2]string{"a", "b"}), pairs([2]string{"a", "c"}))
	wantEqual(t, got, pairs([2]string{"b", "c"}))
}

// TestSection10Case5 — match on seconds, G contributes both:
// ⟨a,b⟩/⟨c,b⟩ → ⟨a,c,b⟩.
func TestSection10Case5(t *testing.T) {
	spec := section10Specs()[4]
	got := spec.Apply(pairs([2]string{"a", "b"}), pairs([2]string{"c", "b"}))
	wantEqual(t, got, core.S(core.Tuple(str("a"), str("c"), str("b"))))
}

// TestSection10Case6 — match on seconds, firsts out: ⟨a,b⟩/⟨c,b⟩ → ⟨a,c⟩.
func TestSection10Case6(t *testing.T) {
	spec := section10Specs()[5]
	got := spec.Apply(pairs([2]string{"a", "b"}), pairs([2]string{"c", "b"}))
	wantEqual(t, got, pairs([2]string{"a", "c"}))
}

// TestSection10Case7 — wide reordering join of a 3-tuple with a 4-tuple
// into an 8-tuple with duplicated contributions.
func TestSection10Case7(t *testing.T) {
	spec := section10Specs()[6]
	f := core.S(core.Tuple(str("a"), str("b"), str("c")))
	g := core.S(core.Tuple(str("d"), str("e"), str("c"), str("b")))
	got := spec.Apply(f, g)
	want := core.S(core.Tuple(
		str("b"), str("c"), str("a"), str("e"), str("b"), str("c"), str("d"), str("d"),
	))
	wantEqual(t, got, want)
}

// TestSection10Case8 — natural-join shape: 5-tuple ⋈ 6-tuple on a
// 3-position key into an 8-tuple.
func TestSection10Case8(t *testing.T) {
	spec := section10Specs()[7]
	f := core.S(core.Tuple(str("k1"), str("k2"), str("k3"), str("f4"), str("f5")))
	g := core.S(core.Tuple(str("k1"), str("k2"), str("k3"), str("g4"), str("g5"), str("g6")))
	got := spec.Apply(f, g)
	want := core.S(core.Tuple(
		str("k1"), str("k2"), str("k3"), str("f4"), str("f5"), str("g4"), str("g5"), str("g6"),
	))
	wantEqual(t, got, want)
}

func TestRelativeProductNoMatch(t *testing.T) {
	spec := section10Specs()[0]
	got := spec.Apply(pairs([2]string{"a", "b"}), pairs([2]string{"x", "y"}))
	if !got.IsEmpty() {
		t.Fatalf("mismatched keys must produce ∅, got %v", got)
	}
}

func TestRelativeProductManyToMany(t *testing.T) {
	// Two F rows share a key with two G rows: 4 outputs.
	f := pairs([2]string{"a", "k"}, [2]string{"b", "k"})
	g := pairs([2]string{"k", "x"}, [2]string{"k", "y"})
	got := CSTRelativeProduct(f, g)
	want := pairs([2]string{"a", "x"}, [2]string{"a", "y"}, [2]string{"b", "x"}, [2]string{"b", "y"})
	wantEqual(t, got, want)
}

func TestRelativeProductEmptyOperands(t *testing.T) {
	spec := section10Specs()[0]
	if !spec.Apply(core.Empty(), pairs([2]string{"a", "b"})).IsEmpty() {
		t.Fatal("∅/G = ∅")
	}
	if !spec.Apply(pairs([2]string{"a", "b"}), core.Empty()).IsEmpty() {
		t.Fatal("F/∅ = ∅")
	}
}

// TestRelativeProductScopePropagation checks that membership scopes join
// through s^{/σ1/} ∪ t^{/ω2/} like elements do.
func TestRelativeProductScopePropagation(t *testing.T) {
	f := core.NewSet(core.M(core.Tuple(str("a"), str("b")), core.Tuple(str("F1"), str("F2"))))
	g := core.NewSet(core.M(core.Tuple(str("b"), str("c")), core.Tuple(str("F2"), str("G2"))))
	got := CSTRelativeProduct(f, g)
	want := core.NewSet(core.M(core.Tuple(str("a"), str("c")), core.Tuple(str("F1"), str("G2"))))
	wantEqual(t, got, want)
}
