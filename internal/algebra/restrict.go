package algebra

import "xst/internal/core"

// SigmaRestrict implements Def 7.6, the σ-Restriction R |_σ A:
//
//	R |_σ A = { z^w : z ∈_w R  &  ∃a,s ( a ∈_s A  &  a^{\σ\} ⊆ z  &  s^{\σ\} ⊆ w ) }
//
// It keeps exactly those members of R that are "matched" by some member
// of A on the positions selected by σ — the element a, re-scoped by
// element through σ, must be contained in the candidate z, and likewise
// for the scopes. This is the access operation of XST: selection by
// partial content, with the selector pattern living in σ.
//
// The result is a subset of R (same members, same scopes), so
// R |_σ A ⊆ R always holds.
func SigmaRestrict(r *core.Set, sigma *core.Set, a *core.Set) *core.Set {
	if r.IsEmpty() || a.IsEmpty() {
		return core.Empty()
	}
	// Precompute the probe patterns from A once.
	type probe struct {
		elem  *core.Set // a^{\σ\}
		scope *core.Set // s^{\σ\}
	}
	probes := make([]probe, 0, a.Len())
	for _, am := range a.Members() {
		probes = append(probes, probe{
			elem:  ReScopeByElem(am.Elem, sigma),
			scope: ReScopeByElem(am.Scope, sigma),
		})
	}
	b := core.NewBuilder(r.Len())
	for _, m := range r.Members() {
		ze, zok := m.Elem.(*core.Set)
		we, wok := m.Scope.(*core.Set)
		for _, p := range probes {
			// ∅ ⊆ anything, so empty probes match any member; non-empty
			// probes require set-valued candidates.
			if !p.elem.IsEmpty() && (!zok || !core.Subset(p.elem, ze)) {
				continue
			}
			if !p.scope.IsEmpty() && (!wok || !core.Subset(p.scope, we)) {
				continue
			}
			b.AddMember(m)
			break
		}
	}
	return b.Set()
}

// Image implements Def 3.10 / 7.1, the XST image:
//
//	R[A]_{⟨σ1,σ2⟩} = 𝔇_{σ2}( R |_{σ1} A )
//
// read as "the σ2-domain of the σ1-restriction": first select the members
// of R matched by A on the σ1 positions, then project them onto the σ2
// positions. With σ1 = ⟨1⟩, σ2 = ⟨2⟩ over classical pairs this is the CST
// image R[A] up to 1-tuple wrapping.
func Image(r *core.Set, a *core.Set, sigma Sigma) *core.Set {
	return SigmaDomain(SigmaRestrict(r, sigma.S1, a), sigma.S2)
}

// Sigma is the scope pair σ = ⟨σ1, σ2⟩ that parameterizes images,
// processes and relative products: σ1 selects input positions, σ2 selects
// output positions.
type Sigma struct {
	S1 *core.Set
	S2 *core.Set
}

// NewSigma builds σ = ⟨σ1, σ2⟩.
func NewSigma(s1, s2 *core.Set) Sigma { return Sigma{S1: s1, S2: s2} }

// StdSigma is σ = ⟨⟨1⟩, ⟨2⟩⟩ — input matched on position 1, output taken
// from position 2 — the scope pair under which XST processes coincide
// with CST functions on sets of pairs.
func StdSigma() Sigma {
	return Sigma{S1: core.Tuple(core.Int(1)), S2: core.Tuple(core.Int(2))}
}

// InverseStdSigma is τ = ⟨⟨2⟩, ⟨1⟩⟩, the inverse direction of StdSigma
// (Example 8.1(b)).
func InverseStdSigma() Sigma {
	return Sigma{S1: core.Tuple(core.Int(2)), S2: core.Tuple(core.Int(1))}
}

// Positions builds the scope set ⟨p1, …, pn⟩ = {p1^1, …, pn^n} used to
// select and reorder tuple positions, e.g. Positions(3, 1) re-scopes
// position 3 to 1 and position 1 to 2 (the paper's 𝔇_⟨3,1⟩ example).
func Positions(ps ...int) *core.Set {
	xs := make([]core.Value, len(ps))
	for i, p := range ps {
		xs[i] = core.Int(p)
	}
	return core.Tuple(xs...)
}

// Value renders σ as the value ⟨σ1, σ2⟩ for display and hashing.
func (s Sigma) Value() *core.Set { return core.Pair(s.S1, s.S2) }

// Equal reports structural equality of scope pairs.
func (s Sigma) Equal(o Sigma) bool {
	return core.Equal(s.S1, o.S1) && core.Equal(s.S2, o.S2)
}

func (s Sigma) String() string { return s.Value().String() }
