package algebra

import (
	"testing"

	"xst/internal/core"
)

func TestIndexedElems(t *testing.T) {
	if ms, ok := IndexedElems(core.Tuple(str("a"), str("b"))); !ok || len(ms) != 2 {
		t.Fatal("tuple must be an indexed set")
	}
	if ms, ok := IndexedElems(core.Empty()); !ok || len(ms) != 0 {
		t.Fatal("∅ is the empty indexed set")
	}
	// Tagged singleton {b^2} is indexed (index 2) without being a tuple.
	if _, ok := IndexedElems(core.NewSet(core.M(str("b"), core.Int(2)))); !ok {
		t.Fatal("{b^2} must be indexed")
	}
	if _, ok := IndexedElems(core.S(str("a"))); ok {
		t.Fatal("classical member (scope ∅) is not indexed")
	}
	if _, ok := IndexedElems(str("a")); ok {
		t.Fatal("atom is not indexed")
	}
	if _, ok := IndexedElems(core.NewSet(core.M(str("a"), core.Int(1)), core.M(str("b"), core.Int(1)))); ok {
		t.Fatal("duplicate index is not indexed")
	}
}

func TestIndexedConcatMatchesDef92OnTuples(t *testing.T) {
	x := core.Tuple(str("a"), str("b"))
	y := core.Tuple(str("c"))
	got, ok := IndexedConcat(x, y)
	if !ok {
		t.Fatal("concat failed")
	}
	want, _ := core.Concat(x, y)
	if !core.Equal(got, want) {
		t.Fatalf("IndexedConcat = %v, want Def 9.2 result %v", got, want)
	}
}

func TestIndexedConcatPreservesPlacedIndices(t *testing.T) {
	// {a^1} · {b^2} = {a^1, b^2} = ⟨a,b⟩ — the Def 9.7 building block.
	x := core.NewSet(core.M(str("a"), core.Int(1)))
	y := core.NewSet(core.M(str("b"), core.Int(2)))
	got, ok := IndexedConcat(x, y)
	if !ok || !core.Equal(got, core.Pair(str("a"), str("b"))) {
		t.Fatalf("{a^1}·{b^2} = %v, want ⟨a,b⟩", got)
	}
	// Colliding indices shift: ⟨a,b⟩ · {c^1} = ⟨a,b,c⟩.
	got, ok = IndexedConcat(core.Pair(str("a"), str("b")), core.NewSet(core.M(str("c"), core.Int(1))))
	if !ok || !core.Equal(got, core.Tuple(str("a"), str("b"), str("c"))) {
		t.Fatalf("shift failed: %v", got)
	}
}

func TestCrossProductDef93(t *testing.T) {
	a := core.S(core.Tuple(str("a")), core.Tuple(str("b")))
	b := core.S(core.Tuple(str("x")))
	got := CrossProduct(a, b)
	want := core.S(
		core.Tuple(str("a"), str("x")),
		core.Tuple(str("b"), str("x")),
	)
	if !core.Equal(got, want) {
		t.Fatalf("A⊗B = %v, want %v", got, want)
	}
}

func TestCrossProductAssociative(t *testing.T) {
	// Theorem 9.4 on tuple-valued operands.
	a := core.S(core.Tuple(str("a")), core.Tuple(str("b")))
	b := core.S(core.Tuple(str("x"), str("y")))
	c := core.S(core.Tuple(core.Int(1)), core.Tuple(core.Int(2)))
	l := CrossProduct(CrossProduct(a, b), c)
	r := CrossProduct(a, CrossProduct(b, c))
	if !core.Equal(l, r) {
		t.Fatalf("(A⊗B)⊗C = %v ≠ A⊗(B⊗C) = %v", l, r)
	}
	if l.Len() != 4 {
		t.Fatalf("|A⊗B⊗C| = %d, want 4", l.Len())
	}
}

func TestCrossProductSkipsNonIndexed(t *testing.T) {
	a := core.S(str("atom")) // not indexed
	b := core.S(core.Tuple(str("x")))
	if got := CrossProduct(a, b); !got.IsEmpty() {
		t.Fatalf("non-indexed pairs contribute nothing, got %v", got)
	}
}

func TestTagDef95(t *testing.T) {
	// Classical scope stays ∅ (Def 9.6)...
	a := core.S(str("p"))
	got := Tag(a, core.Int(1))
	want := core.S(core.NewSet(core.M(str("p"), core.Int(1))))
	if !core.Equal(got, want) {
		t.Fatalf("A^(1) = %v, want %v", got, want)
	}
	// ...while a non-∅ scope is wrapped alongside (Def 9.5).
	b := core.NewSet(core.M(str("p"), str("s")))
	got = Tag(b, core.Int(2))
	wantMember := core.M(
		core.NewSet(core.M(str("p"), core.Int(2))),
		core.NewSet(core.M(str("s"), core.Int(2))),
	)
	if !core.Equal(got, core.NewSet(wantMember)) {
		t.Fatalf("tagged scoped member = %v", got)
	}
}

func TestCartesianDef97(t *testing.T) {
	a := core.S(str("a"), str("b"))
	b := core.S(core.Int(1))
	got := Cartesian(a, b)
	want := core.S(
		core.Pair(str("a"), core.Int(1)),
		core.Pair(str("b"), core.Int(1)),
	)
	if !core.Equal(got, want) {
		t.Fatalf("A×B = %v, want %v", got, want)
	}
}

func TestCartesianCardinality(t *testing.T) {
	a := core.S(core.Int(1), core.Int(2), core.Int(3))
	b := core.S(str("x"), str("y"))
	if got := Cartesian(a, b); got.Len() != 6 {
		t.Fatalf("|A×B| = %d, want 6", got.Len())
	}
	if !Cartesian(a, core.Empty()).IsEmpty() {
		t.Fatal("A×∅ = ∅")
	}
}

// TestSquareRootExample reproduces Example 9.1: the square-root relation
// as an extended set with sign scopes, and 𝒱_σ extraction.
func TestSquareRootExample(t *testing.T) {
	sqrt16 := core.NewSet(
		core.M(core.Tuple(core.Int(2)), core.Tuple(str("+"))),
		core.M(core.Tuple(core.Int(-2)), core.Tuple(str("-"))),
		core.M(core.Tuple(str("2i")), core.Tuple(str("i"))),
		core.M(core.Tuple(str("-2i")), core.Tuple(str("-i"))),
	)
	cases := []struct {
		sigma core.Value
		want  core.Value
	}{
		{str("+"), core.Int(2)},
		{str("-"), core.Int(-2)},
		{str("i"), str("2i")},
		{str("-i"), str("-2i")},
	}
	for _, c := range cases {
		got, ok := SigmaValue(sqrt16, c.sigma)
		if !ok || !core.Equal(got, c.want) {
			t.Fatalf("𝒱_%v(√16) = %v (%v), want %v", c.sigma, got, ok, c.want)
		}
	}
	if _, ok := SigmaValue(sqrt16, str("?")); ok {
		t.Fatal("𝒱 under absent scope must be undefined")
	}
}

func TestSigmaValueDisagreement(t *testing.T) {
	x := core.NewSet(
		core.M(core.Tuple(core.Int(1)), core.Tuple(str("s"))),
		core.M(core.Tuple(core.Int(2)), core.Tuple(str("s"))),
	)
	if _, ok := SigmaValue(x, str("s")); ok {
		t.Fatal("two distinct values under one scope: 𝒱 undefined")
	}
}

func TestClassicalValue(t *testing.T) {
	x := core.S(core.Tuple(core.Int(7)))
	got, ok := ClassicalValue(x)
	if !ok || !core.Equal(got, core.Int(7)) {
		t.Fatalf("𝒱({⟨7⟩}) = %v (%v)", got, ok)
	}
	if _, ok := ClassicalValue(core.Empty()); ok {
		t.Fatal("𝒱(∅) undefined")
	}
}

// TestTheorem910 checks the CST embedding: for f ⊆ A×B functional and
// σ = ⟨⟨1⟩,⟨2⟩⟩, f(x) = 𝒱(f_(σ)({⟨x⟩})).
func TestTheorem910(t *testing.T) {
	table := map[int]string{1: "one", 2: "two", 3: "three"}
	b := core.NewBuilder(len(table))
	for k, v := range table {
		b.AddClassical(core.Pair(core.Int(k), core.Str(v)))
	}
	f := b.Set()
	for k, v := range table {
		out := Image(f, core.S(core.Tuple(core.Int(k))), StdSigma())
		got, ok := ClassicalValue(out)
		if !ok || !core.Equal(got, core.Str(v)) {
			t.Fatalf("f(%d) = %v (%v), want %q", k, got, ok, v)
		}
	}
}
