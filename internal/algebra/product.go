package algebra

import (
	"context"
	"sort"

	"xst/internal/core"
)

// IndexedElems returns the members of v ordered by their integer scopes
// when v is an "indexed set" — a set all of whose scopes are positive,
// pairwise-distinct integers. Tuples (Def 9.1) are the indexed sets whose
// indices are exactly 1…n; tagged sets such as {y^2} are indexed without
// being tuples. The empty set is the empty indexed set.
func IndexedElems(v core.Value) ([]core.Member, bool) {
	s, ok := v.(*core.Set)
	if !ok {
		return nil, false
	}
	out := s.CopyMembers()
	seen := map[core.Int]bool{}
	for _, m := range out {
		i, ok := m.Scope.(core.Int)
		if !ok || i < 1 || seen[i] {
			return nil, false
		}
		seen[i] = true
	}
	sort.Slice(out, func(a, b int) bool {
		return out[a].Scope.(core.Int) < out[b].Scope.(core.Int)
	})
	return out, true
}

// IndexedConcat generalizes tuple concatenation (Def 9.2) to indexed
// sets: the elements of y, in index order, are appended after the largest
// index of x. On tuples it coincides exactly with Def 9.2 and with
// core.Concat; on tagged singletons it reproduces the pair construction
// {x^1} · {y^2} = {x^1, y^2} = ⟨x, y⟩ that Def 9.7 relies on, because an
// index already in place is preserved when it does not collide.
func IndexedConcat(x, y core.Value) (*core.Set, bool) {
	xm, ok := IndexedElems(x)
	if !ok {
		return nil, false
	}
	ym, ok := IndexedElems(y)
	if !ok {
		return nil, false
	}
	maxIdx := core.Int(0)
	for _, m := range xm {
		if i := m.Scope.(core.Int); i > maxIdx {
			maxIdx = i
		}
	}
	b := core.NewBuilder(len(xm) + len(ym))
	for _, m := range xm {
		b.AddMember(m)
	}
	next := maxIdx + 1
	for _, m := range ym {
		i := m.Scope.(core.Int)
		if i >= next {
			// Keep the existing index; later elements must follow it.
			b.Add(m.Elem, i)
			next = i + 1
		} else {
			b.Add(m.Elem, next)
			next++
		}
	}
	return b.Set(), true
}

// CrossProduct implements Def 9.3, the XST cross product:
//
//	A ⊗ B = { (x·y)^(s·t) : x ∈_s A  &  y ∈_t B }
//
// Pairs for which either concatenation is undefined (non-indexed
// operands) contribute nothing, mirroring the definition's implicit
// requirement that x·y exist. Theorem 9.4 (associativity) holds for
// tuple-valued operands.
func CrossProduct(a, b *core.Set) *core.Set {
	s, _ := CrossProductCtx(context.Background(), a, b)
	return s
}

// ctxCheckEvery is how many inner-loop iterations the cancellable
// algebra operations run between context checks — frequent enough that
// a deadline aborts within microseconds, rare enough to stay off the
// profile.
const ctxCheckEvery = 256

// crossBuilderCap caps the builder preallocation: a·b pairs can be
// asked for speculatively (and then cancelled), so the quadratic
// capacity must not be reserved up front.
const crossBuilderCap = 1 << 12

// CrossProductCtx is CrossProduct under a cancellation context: the
// pair loop — the hot recursion of a server-side `cross` query — checks
// ctx periodically and aborts with ctx.Err() once the deadline passes.
func CrossProductCtx(ctx context.Context, a, b *core.Set) (*core.Set, error) {
	n := a.Len() * b.Len()
	if n > crossBuilderCap {
		n = crossBuilderCap
	}
	out := core.NewBuilder(n)
	steps := 0
	for _, am := range a.Members() {
		for _, bm := range b.Members() {
			if steps++; steps%ctxCheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			elem, ok := IndexedConcat(am.Elem, bm.Elem)
			if !ok {
				continue
			}
			scope, ok := IndexedConcat(am.Scope, bm.Scope)
			if !ok {
				continue
			}
			out.Add(elem, scope)
		}
	}
	return out.Set(), nil
}

// Tag implements Def 9.5/9.6, A^(a): every element x of A is wrapped as
// the singleton {x^a}; a non-∅ membership scope s is wrapped the same way
// as {s^a}, while the ∅ scope stays ∅.
func Tag(a *core.Set, tag core.Value) *core.Set {
	b := core.NewBuilder(a.Len())
	for _, m := range a.Members() {
		elem := core.NewSet(core.M(m.Elem, tag))
		scope := core.Value(core.Empty())
		if sc, ok := m.Scope.(*core.Set); !ok || !sc.IsEmpty() {
			scope = core.NewSet(core.M(m.Scope, tag))
		}
		b.Add(elem, scope)
	}
	return b.Set()
}

// Cartesian implements Def 9.7, the CST Cartesian product recovered
// inside XST: A × B = A^(1) ⊗ B^(2). On classical sets it yields exactly
// { ⟨x,y⟩ : x ∈ A & y ∈ B } with classical scopes.
func Cartesian(a, b *core.Set) *core.Set {
	s, _ := CartesianCtx(context.Background(), a, b)
	return s
}

// CartesianCtx is Cartesian under a cancellation context.
func CartesianCtx(ctx context.Context, a, b *core.Set) (*core.Set, error) {
	return CrossProductCtx(ctx, Tag(a, core.Int(1)), Tag(b, core.Int(2)))
}

// SigmaValue implements Def 9.8: 𝒱_σ(x) = b iff every 1-tuple member
// ⟨y⟩ ∈_⟨σ⟩ x has y = b. It reports false when x has no such member or
// when the members disagree.
func SigmaValue(x *core.Set, sigma core.Value) (core.Value, bool) {
	return valueUnder(x, core.Tuple(sigma))
}

// ClassicalValue implements Def 9.9: 𝒱(x) = b iff every classical
// 1-tuple member ⟨y⟩ ∈ x has y = b.
func ClassicalValue(x *core.Set) (core.Value, bool) {
	return valueUnder(x, core.Empty())
}

func valueUnder(x *core.Set, scope core.Value) (core.Value, bool) {
	var out core.Value
	for _, m := range x.Members() {
		if !core.Equal(m.Scope, scope) {
			continue
		}
		elems, ok := core.TupleElems(m.Elem)
		if !ok || len(elems) != 1 {
			continue
		}
		if out != nil && !core.Equal(out, elems[0]) {
			return nil, false
		}
		out = elems[0]
	}
	return out, out != nil
}
