package algebra

import (
	"testing"

	"xst/internal/core"
)

// tupleScoped builds the member ⟨elems...⟩^⟨scopes...⟩ inside a set.
func pairScoped(e1, e2, s1, s2 core.Value) core.Member {
	return core.M(core.Tuple(e1, e2), core.Tuple(s1, s2))
}

// example81F is f = {⟨a,x⟩^⟨A,Z⟩, ⟨b,y⟩^⟨B,Y⟩, ⟨c,x⟩^⟨A,Z⟩} from
// Example 8.1. (The third member carries ⟨A,Z⟩ per the paper's computed
// domains: 𝔇_{σ1}(f) = {⟨a⟩^⟨A⟩, ⟨b⟩^⟨B⟩, ⟨c⟩^⟨A⟩}.)
func example81F() *core.Set {
	return core.NewSet(
		pairScoped(str("a"), str("x"), str("A"), str("Z")),
		pairScoped(str("b"), str("y"), str("B"), str("Y")),
		pairScoped(str("c"), str("x"), str("A"), str("Z")),
	)
}

// TestExample81Forward checks f_(σ)({⟨a⟩^⟨A⟩}) = {⟨x⟩^⟨Z⟩} with
// σ = ⟨⟨1⟩, ⟨2⟩⟩.
func TestExample81Forward(t *testing.T) {
	f := example81F()
	in := core.NewSet(core.M(core.Tuple(str("a")), core.Tuple(str("A"))))
	got := Image(f, in, StdSigma())
	want := core.NewSet(core.M(core.Tuple(str("x")), core.Tuple(str("Z"))))
	wantEqual(t, got, want)
}

// TestExample81Inverse checks f_(τ)({⟨x⟩^⟨Z⟩}) = {⟨a⟩^⟨A⟩, ⟨c⟩^⟨A⟩} with
// τ = ⟨⟨2⟩, ⟨1⟩⟩ — the inverse behaves as a process but not a function.
func TestExample81Inverse(t *testing.T) {
	f := example81F()
	in := core.NewSet(core.M(core.Tuple(str("x")), core.Tuple(str("Z"))))
	got := Image(f, in, InverseStdSigma())
	want := core.NewSet(
		core.M(core.Tuple(str("a")), core.Tuple(str("A"))),
		core.M(core.Tuple(str("c")), core.Tuple(str("A"))),
	)
	wantEqual(t, got, want)
}

// TestExample81Domains checks the paper's stated σ1- and σ2-domains.
func TestExample81Domains(t *testing.T) {
	f := example81F()
	d1 := SigmaDomain(f, StdSigma().S1)
	want1 := core.NewSet(
		core.M(core.Tuple(str("a")), core.Tuple(str("A"))),
		core.M(core.Tuple(str("b")), core.Tuple(str("B"))),
		core.M(core.Tuple(str("c")), core.Tuple(str("A"))),
	)
	wantEqual(t, d1, want1)
	d2 := SigmaDomain(f, StdSigma().S2)
	want2 := core.NewSet(
		core.M(core.Tuple(str("x")), core.Tuple(str("Z"))),
		core.M(core.Tuple(str("y")), core.Tuple(str("Y"))),
	)
	wantEqual(t, d2, want2)
}

// TestRestrictionIsSubset checks R |_σ A ⊆ R on assorted operands.
func TestRestrictionIsSubset(t *testing.T) {
	f := example81F()
	probes := []*core.Set{
		core.S(core.Tuple(str("a"))),
		core.S(core.Empty()),
		core.Empty(),
		f,
	}
	for _, a := range probes {
		got := SigmaRestrict(f, StdSigma().S1, a)
		if !core.Subset(got, f) {
			t.Fatalf("restriction by %v not a subset: %v", a, got)
		}
	}
}

// TestUniversalProbeMatchesAll checks the {∅^∅} input selects every
// member (∅ ⊆ z for all z), so the image is the full σ2-domain.
func TestUniversalProbeMatchesAll(t *testing.T) {
	f := example81F()
	got := Image(f, core.S(core.Empty()), StdSigma())
	wantEqual(t, got, SigmaDomain(f, StdSigma().S2))
}

// TestCSTImageEquivalence checks Def 3.6 against the XST realization on a
// classical relation: R[A] = 𝔇₂(R|A), computed with σ = ⟨⟨1⟩,⟨2⟩⟩ and
// 1-tuple-wrapped inputs/outputs.
func TestCSTImageEquivalence(t *testing.T) {
	r := core.S(
		core.Pair(core.Int(1), str("p")),
		core.Pair(core.Int(1), str("q")),
		core.Pair(core.Int(2), str("r")),
	)
	a := core.S(core.Tuple(core.Int(1)))
	got := Image(r, a, StdSigma())
	want := core.S(core.Tuple(str("p")), core.Tuple(str("q")))
	wantEqual(t, got, want)
}

func TestImageEmptyCases(t *testing.T) {
	f := example81F()
	sig := StdSigma()
	if !Image(f, core.Empty(), sig).IsEmpty() {
		t.Fatal("Q[∅]_σ must be ∅")
	}
	if !Image(core.Empty(), core.S(str("a")), sig).IsEmpty() {
		t.Fatal("∅[A]_σ must be ∅")
	}
	if !Image(f, core.S(core.Tuple(str("a"))), NewSigma(core.Empty(), core.Empty())).IsEmpty() {
		t.Fatal("Q[A]_∅ must be ∅")
	}
}
