package algebra_test

import (
	"fmt"

	"xst/internal/algebra"
	"xst/internal/core"
)

func ExampleImage() {
	// R[A]_{⟨σ1,σ2⟩} — the paper's data-access primitive.
	phone := core.S(
		core.Pair(core.Str("alice"), core.Str("555-0100")),
		core.Pair(core.Str("bob"), core.Str("555-0199")),
		core.Pair(core.Str("alice"), core.Str("555-0177")),
	)
	who := core.S(core.Tuple(core.Str("alice")))
	fmt.Println(algebra.Image(phone, who, algebra.StdSigma()))
	// Output:
	// {<"555-0100">, <"555-0177">}
}

func ExampleReScopeByScope() {
	// Def 7.3: {a^x, b^y, c^z}^{/{x^1, y^2, z^3}/} = {a^1, b^2, c^3}.
	a := core.NewSet(
		core.M(core.Str("a"), core.Str("x")),
		core.M(core.Str("b"), core.Str("y")),
		core.M(core.Str("c"), core.Str("z")),
	)
	sigma := core.NewSet(
		core.M(core.Str("x"), core.Int(1)),
		core.M(core.Str("y"), core.Int(2)),
		core.M(core.Str("z"), core.Int(3)),
	)
	fmt.Println(algebra.ReScopeByScope(a, sigma))
	// Output:
	// <"a","b","c">
}

func ExampleSigmaDomain() {
	// 𝔇_⟨3,1⟩ reorders tuple positions: third then first.
	r := core.S(core.Tuple(core.Str("a"), core.Str("b"), core.Str("c")))
	fmt.Println(algebra.SigmaDomain(r, algebra.Positions(3, 1)))
	// Output:
	// {<"c","a">}
}

func ExampleCSTRelativeProduct() {
	f := core.S(core.Pair(core.Str("a"), core.Str("b")))
	g := core.S(core.Pair(core.Str("b"), core.Str("c")))
	fmt.Println(algebra.CSTRelativeProduct(f, g))
	// Output:
	// {<"a","c">}
}

func ExampleTransitiveClosure() {
	r := core.S(
		core.Pair(core.Int(1), core.Int(2)),
		core.Pair(core.Int(2), core.Int(3)),
	)
	fmt.Println(algebra.TransitiveClosure(r))
	// Output:
	// {<1,2>, <1,3>, <2,3>}
}
