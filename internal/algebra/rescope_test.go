package algebra

import (
	"testing"

	"xst/internal/core"
)

func str(s string) core.Value { return core.Str(s) }

// scoped builds {e1^s1, e2^s2, ...} from alternating element/scope values.
func scoped(pairs ...core.Value) *core.Set {
	if len(pairs)%2 != 0 {
		panic("scoped: odd argument count")
	}
	b := core.NewBuilder(len(pairs) / 2)
	for i := 0; i < len(pairs); i += 2 {
		b.Add(pairs[i], pairs[i+1])
	}
	return b.Set()
}

func wantEqual(t *testing.T, got, want core.Value) {
	t.Helper()
	if !core.Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestReScopeByScopePaperExample checks the Def 7.3 example:
// {a^x, b^y, c^z}^{/{x^1, y^2, z^3}/} = {a^1, b^2, c^3}.
func TestReScopeByScopePaperExample(t *testing.T) {
	a := scoped(str("a"), str("x"), str("b"), str("y"), str("c"), str("z"))
	sigma := scoped(str("x"), core.Int(1), str("y"), core.Int(2), str("z"), core.Int(3))
	got := ReScopeByScope(a, sigma)
	want := scoped(str("a"), core.Int(1), str("b"), core.Int(2), str("c"), core.Int(3))
	wantEqual(t, got, want)
}

// TestReScopeByElemPaperExample checks the Def 7.5 example:
// {a^1, b^2, c^3}^{\{w^1, v^2, t^3}\} = {a^w, b^v, c^t}.
func TestReScopeByElemPaperExample(t *testing.T) {
	a := scoped(str("a"), core.Int(1), str("b"), core.Int(2), str("c"), core.Int(3))
	sigma := scoped(str("w"), core.Int(1), str("v"), core.Int(2), str("t"), core.Int(3))
	got := ReScopeByElem(a, sigma)
	want := scoped(str("a"), str("w"), str("b"), str("v"), str("c"), str("t"))
	wantEqual(t, got, want)
}

func TestReScopeDropsUnmatched(t *testing.T) {
	a := scoped(str("a"), core.Int(1), str("b"), core.Int(9))
	sigma := scoped(core.Int(1), core.Int(1))
	got := ReScopeByScope(a, sigma)
	wantEqual(t, got, scoped(str("a"), core.Int(1)))
}

func TestReScopeByScopeMultipleTargets(t *testing.T) {
	// One source scope occurring twice in σ fans the member out.
	a := scoped(str("a"), core.Int(1))
	sigma := scoped(core.Int(1), str("u"), core.Int(1), str("v"))
	got := ReScopeByScope(a, sigma)
	wantEqual(t, got, scoped(str("a"), str("u"), str("a"), str("v")))
}

func TestReScopeOfNonSetIsEmpty(t *testing.T) {
	sigma := scoped(core.Int(1), core.Int(1))
	if !ReScopeByScope(core.Int(7), sigma).IsEmpty() {
		t.Fatal("re-scope of atom must be empty")
	}
	if !ReScopeByElem(core.Int(7), sigma).IsEmpty() {
		t.Fatal("re-scope of atom must be empty")
	}
}

func TestReScopeEmptySigma(t *testing.T) {
	a := scoped(str("a"), core.Int(1))
	if !ReScopeByScope(a, core.Empty()).IsEmpty() {
		t.Fatal("A^{/∅/} must be ∅")
	}
	if !ReScopeByElem(a, core.Empty()).IsEmpty() {
		t.Fatal("A^{\\∅\\} must be ∅")
	}
}

func TestReScopeTupleReordering(t *testing.T) {
	// ⟨a,b,c⟩ re-scoped by ⟨3,1⟩ = {3^1, 1^2} picks positions 3 then 1.
	tup := core.Tuple(str("a"), str("b"), str("c"))
	got := ReScopeByScope(tup, Positions(3, 1))
	wantEqual(t, got, core.Tuple(str("c"), str("a")))
}
