package algebra

import "xst/internal/core"

// SigmaDomain implements Def 7.4, the σ-Domain:
//
//	𝔇_σ(R) = { x^s : ∃z,w ( z ∈_w R  &  x = z^{/σ/} ≠ ∅  &  s = w^{/σ/} ) }
//
// Every member z of R is re-scoped through σ; members whose re-scope is
// empty vanish. The member's own scope w is re-scoped the same way, so
// scope structure travels with the data — this is how XST keeps physical
// layout (scopes) attached to logical content (elements).
//
// With σ = ⟨2⟩ and R a set of classical pairs {x^1, y^2}, 𝔇_σ is exactly
// the CST 2-domain (range); with σ = ⟨1⟩ it is the CST 1-domain.
func SigmaDomain(r *core.Set, sigma *core.Set) *core.Set {
	if sigma.IsEmpty() {
		return core.Empty() // Consequence 7.1(e): 𝔇_∅(R) = ∅.
	}
	b := core.NewBuilder(r.Len())
	for _, m := range r.Members() {
		x := ReScopeByScope(m.Elem, sigma)
		if x.IsEmpty() {
			continue
		}
		s := ReScopeByScope(m.Scope, sigma)
		b.Add(x, s)
	}
	return b.Set()
}

// Domain1 is the CST 1-domain 𝔇₁ (Def 3.4) realized as 𝔇_⟨1⟩.
func Domain1(r *core.Set) *core.Set { return SigmaDomain(r, core.Tuple(core.Int(1))) }

// Domain2 is the CST 2-domain 𝔇₂ (Def 3.5) realized as 𝔇_⟨2⟩.
func Domain2(r *core.Set) *core.Set { return SigmaDomain(r, core.Tuple(core.Int(2))) }
