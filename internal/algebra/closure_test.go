package algebra

import (
	"testing"

	"xst/internal/core"
	"xst/internal/xtest"
)

func TestBigUnion(t *testing.T) {
	a := core.S(
		core.S(core.Int(1), core.Int(2)),
		core.S(core.Int(2), core.Int(3)),
		core.Int(99), // atom: ignored
	)
	got := BigUnion(a)
	wantEqual(t, got, core.S(core.Int(1), core.Int(2), core.Int(3)))
	if !BigUnion(core.Empty()).IsEmpty() {
		t.Fatal("⋃∅ = ∅")
	}
	// Scoped members inside elements survive.
	b := core.S(core.NewSet(core.M(core.Int(1), core.Str("s"))))
	wantEqual(t, BigUnion(b), core.NewSet(core.M(core.Int(1), core.Str("s"))))
}

func chain(n int) *core.Set {
	b := core.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddClassical(core.Pair(core.Int(i), core.Int(i+1)))
	}
	return b.Set()
}

func TestTransitiveClosureChain(t *testing.T) {
	// 0→1→2→3: closure has n(n+1)/2 pairs for a length-n chain.
	got := TransitiveClosure(chain(3))
	if got.Len() != 6 {
		t.Fatalf("closure of 3-chain has %d pairs, want 6", got.Len())
	}
	if !got.HasClassical(core.Pair(core.Int(0), core.Int(3))) {
		t.Fatal("missing 0→3")
	}
	if got.HasClassical(core.Pair(core.Int(3), core.Int(0))) {
		t.Fatal("spurious 3→0")
	}
}

func TestTransitiveClosureCycle(t *testing.T) {
	r := core.S(
		core.Pair(core.Int(0), core.Int(1)),
		core.Pair(core.Int(1), core.Int(2)),
		core.Pair(core.Int(2), core.Int(0)),
	)
	got := TransitiveClosure(r)
	// A 3-cycle closes to the complete relation on 3 nodes: 9 pairs.
	if got.Len() != 9 {
		t.Fatalf("closure of 3-cycle has %d pairs, want 9", got.Len())
	}
	if !got.HasClassical(core.Pair(core.Int(1), core.Int(1))) {
		t.Fatal("cycle must reach itself")
	}
}

func TestTransitiveClosureProperties(t *testing.T) {
	rnd := xtest.NewRand(0xC10)
	cfg := xtest.DefaultConfig()
	for trial := 0; trial < 100; trial++ {
		r := cfg.Relation(rnd, 1+rnd.Intn(10), 5, 5)
		plus := TransitiveClosure(r)
		// Contains R.
		if !core.Subset(r, plus) {
			t.Fatalf("R ⊄ R⁺: %v vs %v", r, plus)
		}
		// Idempotent.
		if !core.Equal(TransitiveClosure(plus), plus) {
			t.Fatal("R⁺ not idempotent")
		}
		// Transitive: R⁺/R⁺ ⊆ R⁺.
		if !core.Subset(CSTRelativeProduct(plus, plus), plus) {
			t.Fatal("R⁺ not transitive")
		}
	}
}

func TestTransitiveClosureIgnoresNonPairs(t *testing.T) {
	r := core.S(
		core.Pair(core.Int(1), core.Int(2)),
		core.Tuple(core.Int(9)), // 1-tuple: dropped
		core.Int(7),             // atom: dropped
	)
	got := TransitiveClosure(r)
	wantEqual(t, got, core.S(core.Pair(core.Int(1), core.Int(2))))
}

func TestReflexiveTransitiveClosure(t *testing.T) {
	got := ReflexiveTransitiveClosure(chain(2))
	// 0→1→2: R⁺ = {01,12,02} plus reflexive {00,11,22} = 6.
	if got.Len() != 6 {
		t.Fatalf("R* has %d pairs, want 6", got.Len())
	}
	for i := 0; i <= 2; i++ {
		if !got.HasClassical(core.Pair(core.Int(i), core.Int(i))) {
			t.Fatalf("missing reflexive pair %d", i)
		}
	}
	if !ReflexiveTransitiveClosure(core.Empty()).IsEmpty() {
		t.Fatal("∅* = ∅")
	}
}
