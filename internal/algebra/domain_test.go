package algebra

import (
	"testing"

	"xst/internal/core"
)

// TestSigmaDomainExample1 checks 𝔇_{A^1,C^2}({{a^A, b^B, c^C}}) =
// {{a^1, c^2}} (first Def 7.4 example).
func TestSigmaDomainExample1(t *testing.T) {
	inner := scoped(str("a"), str("A"), str("b"), str("B"), str("c"), str("C"))
	r := core.S(inner)
	sigma := scoped(str("A"), core.Int(1), str("C"), core.Int(2))
	got := SigmaDomain(r, sigma)
	want := core.S(scoped(str("a"), core.Int(1), str("c"), core.Int(2)))
	wantEqual(t, got, want)
}

// TestSigmaDomainExample2 checks
// 𝔇_⟨3,1⟩({{a^1,b^2,c^3}^{A^1,B^2,C^3}}) = {⟨c,a⟩^⟨C,A⟩}.
func TestSigmaDomainExample2(t *testing.T) {
	elem := core.Tuple(str("a"), str("b"), str("c"))
	scope := scoped(str("A"), core.Int(1), str("B"), core.Int(2), str("C"), core.Int(3))
	r := core.NewSet(core.M(elem, scope))
	got := SigmaDomain(r, Positions(3, 1))
	want := core.NewSet(core.M(core.Tuple(str("c"), str("a")), core.Tuple(str("C"), str("A"))))
	wantEqual(t, got, want)
}

// TestSigmaDomainExample3 checks the third Def 7.4 example with fan-out
// scopes: 𝔇_{3^1,1^2,y^9,v^5,v^7,R^A}({{a^1,b^2,c^3}^{x^y,w^v,z^R}}) =
// {⟨c,a⟩^{x^9,w^5,w^7,z^A}}.
func TestSigmaDomainExample3(t *testing.T) {
	elem := core.Tuple(str("a"), str("b"), str("c"))
	scope := scoped(str("x"), str("y"), str("w"), str("v"), str("z"), str("R"))
	r := core.NewSet(core.M(elem, scope))
	sigma := scoped(
		core.Int(3), core.Int(1),
		core.Int(1), core.Int(2),
		str("y"), core.Int(9),
		str("v"), core.Int(5),
		str("v"), core.Int(7),
		str("R"), str("A"),
	)
	got := SigmaDomain(r, sigma)
	wantScope := scoped(
		str("x"), core.Int(9),
		str("w"), core.Int(5),
		str("w"), core.Int(7),
		str("z"), str("A"),
	)
	want := core.NewSet(core.M(core.Tuple(str("c"), str("a")), wantScope))
	wantEqual(t, got, want)
}

func TestSigmaDomainEmptySigma(t *testing.T) {
	r := core.S(core.Pair(str("a"), str("b")))
	if !SigmaDomain(r, core.Empty()).IsEmpty() {
		t.Fatal("𝔇_∅(R) must be ∅ (Consequence 7.1(e))")
	}
}

func TestDomain12OnPairs(t *testing.T) {
	r := core.S(
		core.Pair(core.Int(1), str("x")),
		core.Pair(core.Int(2), str("y")),
		core.Pair(core.Int(3), str("x")),
	)
	d1 := Domain1(r)
	want1 := core.S(core.Tuple(core.Int(1)), core.Tuple(core.Int(2)), core.Tuple(core.Int(3)))
	wantEqual(t, d1, want1)
	d2 := Domain2(r)
	want2 := core.S(core.Tuple(str("x")), core.Tuple(str("y")))
	wantEqual(t, d2, want2)
}

// TestSigmaDomainDropsNonSurviving checks that members whose σ re-scope
// is empty vanish (the "≠ ∅" clause of Def 7.4).
func TestSigmaDomainDropsNonSurviving(t *testing.T) {
	r := core.S(
		core.Pair(str("a"), str("b")),
		core.Tuple(str("only-first")), // 1-tuple: no position 2
	)
	got := Domain2(r)
	wantEqual(t, got, core.S(core.Tuple(str("b"))))
}
