package exec

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"xst/internal/core"
	"xst/internal/table"
	"xst/internal/trace"
	"xst/internal/xsp"
)

// workerSpan opens a per-worker trace span ("<phase>[i]") under the
// context's active span — nil (free) when the query is untraced. The
// names mirror the exchange vocabulary: gather workers, build workers,
// aggregation partials.
func workerSpan(ctx context.Context, phase string, i int) *trace.Span {
	sp := trace.SpanOf(ctx)
	if sp == nil {
		return nil
	}
	return sp.Start(phase + "[" + strconv.Itoa(i) + "]")
}

// Parallel (exchange-style) operators: the paper's §12 claim that whole
// sets can be "physically partitioned and every partition processed as
// a set, in parallel" as a property of the operator tree itself.
//
// The shape is morsel-driven: a table's heap pages are dealt out of a
// shared table.MorselSource to N identical worker subtrees (MorselScan
// leaves plus whatever per-worker operators the planner stacks on
// them), and a Gather at the pipeline break funnels worker batches back
// into the single-goroutine pull contract. Blocking operators
// parallelize their own sanctioned materializations: HashBuild builds a
// partitioned hash index from N build workers, ProbeJoin probes it from
// N probe workers, and ParallelGroupAgg folds per-worker xsp.AggState
// accumulators with a merge stage.
//
// Cross-goroutine batch ownership (see DESIGN.md §9): the serial
// "scratch owned by the operator" rule assumes producer and consumer
// alternate on one goroutine, which no longer holds across an exchange.
// Gather therefore clones every batch out of worker scratch before it
// crosses the channel — unless the worker root implements Retainer and
// vouches that its batches are freshly allocated and never reused.

// Retainer marks operators whose Next batches (slice and rows) are
// freshly allocated and never reused by a later Next, so an exchange
// may ship them across goroutines without cloning.
type Retainer interface{ RetainableBatches() bool }

// retainableBatches reports whether op's batches may cross goroutines
// uncloned.
func retainableBatches(op Operator) bool {
	r, ok := op.(Retainer)
	return ok && r.RetainableBatches()
}

// cloneBatch copies a batch out of operator scratch.
func cloneBatch(rows []table.Row) []table.Row {
	out := make([]table.Row, len(rows))
	for i, r := range rows {
		out[i] = r.Clone()
	}
	return out
}

// MorselScan is one parallel-scan worker: it claims heap pages (morsels)
// from a shared table.MorselSource and emits each page's rows as
// batches. N MorselScans over one source partition the table
// dynamically — fast workers claim more pages. Rows are fresh decoded
// copies and the emitted arrays are never rewritten, so batches are
// retainable (Retainer).
type MorselScan struct {
	src   *table.MorselSource
	ctx   context.Context
	pend  []table.Row
	stats OpStats
	open  bool
}

// NewMorselScan returns a scan worker pulling from src.
func NewMorselScan(src *table.MorselSource) *MorselScan { return &MorselScan{src: src} }

// Open implements Operator. Bind pins the shared source to the
// context's snapshot view (first worker wins; the others adopt its
// epoch-consistent page list), so all N workers scan one snapshot.
func (s *MorselScan) Open(ctx context.Context) error {
	s.stats = OpStats{}
	defer s.stats.timed(time.Now())
	s.ctx = ctx
	if err := s.src.Bind(ctx); err != nil {
		return err
	}
	s.pend = nil
	s.open = true
	return ctx.Err()
}

// Next implements Operator: one claimed page per refill, polled against
// the context so a deadline aborts between morsels.
func (s *MorselScan) Next() ([]table.Row, error) {
	defer s.stats.timed(time.Now())
	if !s.open {
		return nil, errOpen(s)
	}
	for {
		if len(s.pend) > 0 {
			n := min(len(s.pend), MaxBatchRows)
			out := s.pend[:n]
			s.pend = s.pend[n:]
			s.stats.emitted(out)
			return out, nil
		}
		if err := s.ctx.Err(); err != nil {
			return nil, err
		}
		id, ok := s.src.Next()
		if !ok {
			return nil, nil
		}
		rows, err := s.src.Table().ReadPageRows(id)
		if err != nil {
			return nil, err
		}
		s.stats.RowsIn += len(rows)
		s.pend = rows
	}
}

// Close implements Operator.
func (s *MorselScan) Close() error {
	s.open = false
	s.pend = nil
	return nil
}

// RetainableBatches implements Retainer.
func (s *MorselScan) RetainableBatches() bool { return true }

// OutSchema implements Operator.
func (s *MorselScan) OutSchema() table.Schema { return s.src.Table().Schema() }

// Stats implements Operator.
func (s *MorselScan) Stats() OpStats { return s.stats }

// Children implements Operator.
func (s *MorselScan) Children() []Operator { return nil }

func (s *MorselScan) String() string { return "morselscan(" + s.src.Table().Schema().Name + ")" }

// Gather funnels N worker subtrees back into the pull contract: Open
// spawns one goroutine per worker, each draining its subtree into a
// bounded channel; Next receives. The contract:
//
//   - bounded: the channel holds at most one batch per worker, so rows
//     in flight stay O(workers × MaxBatchRows) — HeldRows reports the
//     observed peak;
//   - first-error-wins: the first worker error (or context cancellation)
//     cancels a derived context that every worker polls, and Next
//     returns that error once the channel drains;
//   - prompt shutdown: Close cancels, drains, and joins every worker
//     goroutine before returning, so no goroutine outlives the tree;
//   - ownership: batches are cloned out of worker scratch before they
//     cross the channel unless the worker root is a Retainer, after
//     which they belong to Gather's consumer under the usual serial
//     rule.
//
// aux operators are shared dependencies of the workers (e.g. the
// HashBuild that ProbeJoin workers probe): Open opens them in order,
// under the derived context, before any worker starts.
type Gather struct {
	workers []Operator
	aux     []Operator

	parent   context.Context
	ctx      context.Context
	cancel   context.CancelFunc
	ch       chan []table.Row
	wg       sync.WaitGroup
	errOnce  sync.Once
	firstErr error
	inFlight atomic.Int64
	peak     atomic.Int64
	stats    OpStats
	open     bool
	done     bool
}

// NewGather exchanges the outputs of workers, opening the shared aux
// operators first.
func NewGather(workers []Operator, aux ...Operator) *Gather {
	if len(workers) == 0 {
		panic("exec: Gather needs at least one worker")
	}
	return &Gather{workers: workers, aux: aux}
}

// Open implements Operator: opens aux dependencies, then starts one
// producer goroutine per worker plus a closer that seals the channel
// when all producers exit.
func (g *Gather) Open(ctx context.Context) error {
	g.stats = OpStats{}
	defer g.stats.timed(time.Now())
	g.open = true
	g.done = false
	g.firstErr = nil
	g.errOnce = sync.Once{}
	g.inFlight.Store(0)
	g.peak.Store(0)
	g.parent = ctx
	g.ctx, g.cancel = context.WithCancel(ctx)
	for _, a := range g.aux {
		if err := a.Open(g.ctx); err != nil {
			return err
		}
	}
	g.ch = make(chan []table.Row, len(g.workers))
	for i, w := range g.workers {
		g.wg.Add(1)
		go func(i int, w Operator) {
			defer g.wg.Done()
			g.produce(i, w)
		}(i, w)
	}
	go func() {
		g.wg.Wait()
		close(g.ch)
	}()
	return nil
}

// produce drains one worker subtree into the exchange channel.
func (g *Gather) produce(i int, w Operator) {
	wsp := workerSpan(g.parent, "worker", i)
	defer wsp.End()
	if err := w.Open(g.ctx); err != nil {
		g.fail(err)
		return
	}
	retain := retainableBatches(w)
	for {
		// Poll the caller's context, not just the derived one: the
		// derived context only observes cancellation that has already
		// propagated, while deadline/countdown contexts cancel inside
		// their own Err method — the per-batch poll the Operator
		// contract promises.
		if err := g.parent.Err(); err != nil {
			g.fail(err)
			return
		}
		rows, err := w.Next()
		if err != nil {
			g.fail(err)
			return
		}
		if rows == nil {
			return
		}
		wsp.AddRows(len(rows))
		wsp.AddBatches(1)
		batch := rows
		if !retain {
			batch = cloneBatch(rows)
		}
		n := g.inFlight.Add(int64(len(batch)))
		for {
			p := g.peak.Load()
			if n <= p || g.peak.CompareAndSwap(p, n) {
				break
			}
		}
		select {
		case g.ch <- batch:
		case <-g.ctx.Done():
			g.inFlight.Add(-int64(len(batch)))
			g.fail(g.ctx.Err())
			return
		}
	}
}

// fail records the first worker error and cancels every sibling.
func (g *Gather) fail(err error) {
	g.errOnce.Do(func() {
		g.firstErr = err
		g.cancel()
	})
}

// Next implements Operator: receives the next worker batch. Order
// across workers is arbitrary; order within one worker is preserved.
func (g *Gather) Next() ([]table.Row, error) {
	defer g.stats.timed(time.Now())
	if !g.open {
		return nil, errOpen(g)
	}
	if g.done {
		return nil, g.firstErr
	}
	rows, ok := <-g.ch
	if !ok {
		// Channel closed after every producer exited: the closer's
		// close(ch) orders their g.firstErr writes before this read.
		g.done = true
		return nil, g.firstErr
	}
	g.inFlight.Add(-int64(len(rows)))
	g.stats.RowsIn += len(rows)
	g.stats.emitted(rows)
	return rows, nil
}

// Close implements Operator: cancels workers, drains the channel until
// the closer seals it (joining every producer goroutine), then closes
// the worker and aux subtrees.
func (g *Gather) Close() error {
	g.open = false
	if g.cancel != nil {
		g.cancel()
	}
	if g.ch != nil {
		for range g.ch {
		}
		g.ch = nil
	}
	var first error
	for _, w := range g.workers {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, a := range g.aux {
		if err := a.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Workers returns the fan-out width of the exchange.
func (g *Gather) Workers() int { return len(g.workers) }

// OutSchema implements Operator.
func (g *Gather) OutSchema() table.Schema { return g.workers[0].OutSchema() }

// Stats implements Operator. HeldRows is the peak number of rows in
// flight inside the exchange (queued plus being sent).
func (g *Gather) Stats() OpStats {
	st := g.stats
	st.HeldRows = int(g.peak.Load())
	return st
}

// Children implements Operator: shared aux first, then the workers.
func (g *Gather) Children() []Operator {
	out := make([]Operator, 0, len(g.aux)+len(g.workers))
	out = append(out, g.aux...)
	out = append(out, g.workers...)
	return out
}

func (g *Gather) String() string { return fmt.Sprintf("gather[%d]", len(g.workers)) }

// ParallelScan deals t's heap pages to n MorselScan workers behind a
// Gather — the parallel form of Scan.
func ParallelScan(t *table.Table, n int) (*Gather, error) {
	src, err := t.NewMorselSource()
	if err != nil {
		return nil, err
	}
	workers := make([]Operator, n)
	for i := range workers {
		workers[i] = NewMorselScan(src)
	}
	return NewGather(workers), nil
}

// buildPart is one hash partition of a parallel join build.
type buildPart struct {
	atoms map[core.AtomKey][]table.Row
	sets  map[string][]table.Row
}

// HashBuild is the parallel build side of a partitioned hash join: Open
// drains N builder subtrees concurrently, each routing its (cloned)
// rows into per-partition buckets by key digest, then builds the
// partitions' hash maps in parallel — two fan-outs with a barrier
// between, all inside Open (the sanctioned blocking phase). After Open
// the partitions are immutable, so any number of ProbeJoin workers may
// probe them concurrently without locks.
//
// HashBuild is an Operator so it can sit in the tree (as a Gather aux
// dependency) for stats and EXPLAIN, but it emits nothing: Next is
// immediately exhausted.
type HashBuild struct {
	builders []Operator
	col      int

	cancel  context.CancelFunc
	parts   []buildPart
	started bool
	stats   OpStats
	open    bool
}

// NewHashBuild builds a partitioned index over the builders' rows keyed
// on column col. All builders must share one output schema (the
// planner's per-worker copies of the build side).
func NewHashBuild(builders []Operator, col int) *HashBuild {
	if len(builders) == 0 {
		panic("exec: HashBuild needs at least one builder")
	}
	return &HashBuild{builders: builders, col: col}
}

// Open implements Operator: the two-phase parallel build.
func (b *HashBuild) Open(ctx context.Context) error {
	b.stats = OpStats{}
	defer b.stats.timed(time.Now())
	b.open = true
	b.started = false
	nparts := len(b.builders)
	wctx, cancel := context.WithCancel(ctx)
	b.cancel = cancel

	// Phase 1: each builder drains its subtree, routing cloned rows
	// into its own per-partition buckets (no shared state, no locks).
	// First-error-wins: the error that triggered the cancellation is the
	// one reported, not a sibling's resulting context.Canceled.
	buckets := make([][][]table.Row, len(b.builders)) // [builder][partition][]row
	var once sync.Once
	var firstErr error
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			cancel()
		})
	}
	var wg sync.WaitGroup
	for i, bl := range b.builders {
		wg.Add(1)
		go func(i int, bl Operator) {
			defer wg.Done()
			bsp := workerSpan(ctx, "build", i)
			defer bsp.End()
			local := make([][]table.Row, nparts)
			if err := bl.Open(wctx); err != nil {
				fail(err)
				return
			}
			retain := retainableBatches(bl)
			for {
				rows, err := bl.Next()
				if err != nil {
					fail(err)
					return
				}
				if rows == nil {
					buckets[i] = local
					return
				}
				if err := wctx.Err(); err != nil {
					fail(err)
					return
				}
				// Poll the caller's context per batch too: deadline and
				// countdown contexts cancel inside Err, which the
				// derived wctx never calls.
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				bsp.AddRows(len(rows))
				bsp.AddBatches(1)
				for _, r := range rows {
					if !retain {
						r = r.Clone()
					}
					p := int(core.Digest(r[b.col]) % uint64(nparts))
					local[p] = append(local[p], r)
				}
			}
		}(i, bl)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	// Phase 2: one goroutine per partition builds its hash maps from
	// every builder's bucket for that partition.
	b.parts = make([]buildPart, nparts)
	held := make([]int, nparts)
	for p := range b.parts {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			part := buildPart{
				atoms: map[core.AtomKey][]table.Row{},
				sets:  map[string][]table.Row{},
			}
			for _, local := range buckets {
				for _, r := range local[p] {
					k := r[b.col]
					if ak, ok := core.AtomKeyOf(k); ok {
						part.atoms[ak] = append(part.atoms[ak], r)
					} else {
						ek := core.Key(k)
						part.sets[ek] = append(part.sets[ek], r)
					}
					held[p]++
				}
			}
			b.parts[p] = part
		}(p)
	}
	wg.Wait()
	for _, h := range held {
		b.stats.HeldRows += h
	}
	b.stats.RowsIn = b.stats.HeldRows
	b.started = true
	return ctx.Err()
}

// lookup returns the build rows matching key k. Read-only after Open;
// safe for concurrent probes.
func (b *HashBuild) lookup(k core.Value) []table.Row {
	part := &b.parts[int(core.Digest(k)%uint64(len(b.parts)))]
	if ak, ok := core.AtomKeyOf(k); ok {
		return part.atoms[ak]
	}
	return part.sets[core.Key(k)]
}

// Next implements Operator: a build emits nothing.
func (b *HashBuild) Next() ([]table.Row, error) {
	if !b.open {
		return nil, errOpen(b)
	}
	return nil, nil
}

// Close implements Operator.
func (b *HashBuild) Close() error {
	b.open = false
	b.started = false
	b.parts = nil
	if b.cancel != nil {
		b.cancel()
	}
	var first error
	for _, bl := range b.builders {
		if err := bl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// OutSchema implements Operator: the build side's schema.
func (b *HashBuild) OutSchema() table.Schema { return b.builders[0].OutSchema() }

// Stats implements Operator.
func (b *HashBuild) Stats() OpStats { return b.stats }

// Children implements Operator.
func (b *HashBuild) Children() []Operator { return b.builders }

func (b *HashBuild) String() string {
	return fmt.Sprintf("hashbuild[%s p=%d]", b.OutSchema().Cols[b.col], len(b.builders))
}

// ProbeJoin is one probe worker of a partitioned hash join: it streams
// its probe subtree against a shared (already-opened) HashBuild.
// buildIsLeft says which logical side the build rows are, so output is
// always left-columns ++ right-columns like HashJoin. Output rows are
// freshly allocated and emitted arrays are never rewritten, so batches
// are retainable.
type ProbeJoin struct {
	probe       Operator
	build       *HashBuild
	probeCol    int
	buildIsLeft bool

	ctx   context.Context
	queue []table.Row
	done  bool
	stats OpStats
	open  bool
}

// NewProbeJoin probes build with probe.probeCol. The HashBuild is a
// shared dependency opened by the enclosing Gather (aux), not by this
// operator; it appears in the Gather's children, not here.
func NewProbeJoin(probe Operator, build *HashBuild, probeCol int, buildIsLeft bool) *ProbeJoin {
	return &ProbeJoin{probe: probe, build: build, probeCol: probeCol, buildIsLeft: buildIsLeft}
}

// Open implements Operator: opens only the probe subtree; the shared
// build must already be open.
func (j *ProbeJoin) Open(ctx context.Context) error {
	j.stats = OpStats{}
	defer j.stats.timed(time.Now())
	j.ctx = ctx
	j.queue = nil
	j.done = false
	j.open = true
	if !j.build.started {
		return fmt.Errorf("exec: %s: probe before its HashBuild opened", j)
	}
	return j.probe.Open(ctx)
}

// Next implements Operator.
func (j *ProbeJoin) Next() ([]table.Row, error) {
	defer j.stats.timed(time.Now())
	if !j.open {
		return nil, errOpen(j)
	}
	for len(j.queue) == 0 {
		if j.done {
			return nil, nil
		}
		if err := j.ctx.Err(); err != nil {
			return nil, err
		}
		rows, err := j.probe.Next()
		if err != nil {
			return nil, err
		}
		if rows == nil {
			j.done = true
			return nil, nil
		}
		j.stats.RowsIn += len(rows)
		// Fresh queue array per refill: previously emitted batches alias
		// the old array and must stay intact (RetainableBatches).
		j.queue = nil
		for _, pr := range rows {
			for _, br := range j.build.lookup(pr[j.probeCol]) {
				l, r := pr, br
				if j.buildIsLeft {
					l, r = br, pr
				}
				row := make(table.Row, 0, len(l)+len(r))
				row = append(row, l...)
				row = append(row, r...)
				j.queue = append(j.queue, row)
			}
		}
	}
	n := min(len(j.queue), MaxBatchRows)
	out := j.queue[:n]
	j.queue = j.queue[n:]
	j.stats.emitted(out)
	return out, nil
}

// Close implements Operator: closes only the probe subtree (the shared
// build belongs to the Gather).
func (j *ProbeJoin) Close() error {
	j.open = false
	j.queue = nil
	return j.probe.Close()
}

// RetainableBatches implements Retainer.
func (j *ProbeJoin) RetainableBatches() bool { return true }

// OutSchema implements Operator: left ++ right, like HashJoin.
func (j *ProbeJoin) OutSchema() table.Schema {
	if j.buildIsLeft {
		return table.JoinSchema(j.build.OutSchema(), j.probe.OutSchema())
	}
	return table.JoinSchema(j.probe.OutSchema(), j.build.OutSchema())
}

// Stats implements Operator.
func (j *ProbeJoin) Stats() OpStats { return j.stats }

// Children implements Operator: the probe subtree only; the shared
// HashBuild is listed once, by the enclosing Gather.
func (j *ProbeJoin) Children() []Operator { return []Operator{j.probe} }

func (j *ProbeJoin) String() string {
	side := "right"
	if j.buildIsLeft {
		side = "left"
	}
	return fmt.Sprintf("probejoin[%s build=%s]",
		j.probe.OutSchema().Cols[j.probeCol], side)
}

// ParallelGroupAgg is the parallel partial-aggregate: Open drains N
// worker subtrees concurrently, each into a private xsp.AggState, then
// folds the partials with AggState.Merge — the classic partial/final
// aggregation split. Like GroupAgg it is a full pipeline breaker, so
// everything happens in Open and Next just chunks the merged result.
// aux operators are shared worker dependencies (e.g. a HashBuild),
// opened before the workers start.
type ParallelGroupAgg struct {
	workers []Operator
	aux     []Operator
	keyCol  int
	aggs    []xsp.Agg

	cancel context.CancelFunc
	queue  []table.Row
	stats  OpStats
	open   bool
}

// NewParallelGroupAgg aggregates the union of the workers' outputs,
// grouping on keyCol.
func NewParallelGroupAgg(workers []Operator, aux []Operator, keyCol int, aggs ...xsp.Agg) *ParallelGroupAgg {
	if len(workers) == 0 {
		panic("exec: ParallelGroupAgg needs at least one worker")
	}
	return &ParallelGroupAgg{workers: workers, aux: aux, keyCol: keyCol, aggs: aggs}
}

// Open implements Operator: parallel partial aggregation, barrier,
// merge.
func (g *ParallelGroupAgg) Open(ctx context.Context) error {
	g.stats = OpStats{}
	defer g.stats.timed(time.Now())
	g.open = true
	wctx, cancel := context.WithCancel(ctx)
	g.cancel = cancel
	for _, a := range g.aux {
		if err := a.Open(wctx); err != nil {
			return err
		}
	}
	// First-error-wins, as in HashBuild: report the error that caused
	// the cancellation, not a sibling's resulting context.Canceled.
	states := make([]*xsp.AggState, len(g.workers))
	var once sync.Once
	var firstErr error
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			cancel()
		})
	}
	var wg sync.WaitGroup
	for i, w := range g.workers {
		wg.Add(1)
		go func(i int, w Operator) {
			defer wg.Done()
			psp := workerSpan(ctx, "partial", i)
			defer psp.End()
			st := xsp.NewAggState(g.keyCol, g.aggs...)
			if err := w.Open(wctx); err != nil {
				fail(err)
				return
			}
			for {
				rows, err := w.Next()
				if err != nil {
					fail(err)
					return
				}
				if rows == nil {
					states[i] = st
					return
				}
				if err := wctx.Err(); err != nil {
					fail(err)
					return
				}
				// Per-batch poll of the caller's context (deadline and
				// countdown contexts cancel inside Err, which the
				// derived wctx never calls).
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				psp.AddRows(len(rows))
				psp.AddBatches(1)
				if err := st.Absorb(rows); err != nil {
					fail(err)
					return
				}
			}
		}(i, w)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	msp := trace.SpanOf(ctx).Start("merge")
	defer msp.End()
	merged := states[0]
	for _, st := range states[1:] {
		if err := merged.Merge(st); err != nil {
			return err
		}
	}
	g.queue = merged.Rows()
	g.stats.RowsIn = merged.RowsIn()
	g.stats.HeldRows = merged.Groups()
	return nil
}

// Next implements Operator.
func (g *ParallelGroupAgg) Next() ([]table.Row, error) {
	defer g.stats.timed(time.Now())
	if !g.open {
		return nil, errOpen(g)
	}
	if len(g.queue) == 0 {
		return nil, nil
	}
	n := min(len(g.queue), MaxBatchRows)
	out := g.queue[:n]
	g.queue = g.queue[n:]
	g.stats.emitted(out)
	return out, nil
}

// Close implements Operator.
func (g *ParallelGroupAgg) Close() error {
	g.open = false
	g.queue = nil
	if g.cancel != nil {
		g.cancel()
	}
	var first error
	for _, w := range g.workers {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, a := range g.aux {
		if err := a.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// RetainableBatches implements Retainer: AggState.Rows allocates fresh
// rows and the chunked arrays are never rewritten.
func (g *ParallelGroupAgg) RetainableBatches() bool { return true }

// Workers returns the partial-aggregation fan-out width.
func (g *ParallelGroupAgg) Workers() int { return len(g.workers) }

// OutSchema implements Operator: (key, agg1, agg2, …) like GroupAgg.
func (g *ParallelGroupAgg) OutSchema() table.Schema {
	in := g.workers[0].OutSchema()
	cols := make([]string, 0, 1+len(g.aggs))
	cols = append(cols, in.Cols[g.keyCol])
	for _, a := range g.aggs {
		if a.Kind == xsp.Count {
			cols = append(cols, "count")
		} else {
			cols = append(cols, fmt.Sprintf("%s(%s)", a.Kind, in.Cols[a.Col]))
		}
	}
	return table.Schema{Name: in.Name, Cols: cols}
}

// Stats implements Operator.
func (g *ParallelGroupAgg) Stats() OpStats { return g.stats }

// Children implements Operator: shared aux first, then the workers.
func (g *ParallelGroupAgg) Children() []Operator {
	out := make([]Operator, 0, len(g.aux)+len(g.workers))
	out = append(out, g.aux...)
	out = append(out, g.workers...)
	return out
}

func (g *ParallelGroupAgg) String() string {
	in := g.workers[0].OutSchema()
	return fmt.Sprintf("pgroupagg[%s x%d w=%d]", in.Cols[g.keyCol], len(g.aggs), len(g.workers))
}
