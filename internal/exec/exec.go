// Package exec is the streaming batch-operator execution core: a
// Volcano-style iterator tree whose unit of exchange is a page-sized
// *batch* of rows rather than a single record. Every query path in the
// repo — the planner (internal/plan), the xlang query statements, and
// the server's streaming responses — compiles to one of these trees, so
// the paper's §12 thesis (whole sets flowing through composed
// operations beat record-at-a-time processing) is the architecture, not
// a special case.
//
// Contract:
//
//   - Open(ctx) acquires resources and performs any sanctioned blocking
//     work (hash-join build side, sort buffering, aggregate
//     accumulation). The context is retained and polled once per batch
//     by the streaming operators.
//   - Next returns the next batch, or (nil, nil) when exhausted. The
//     returned slice — and, for projection-shaped operators, the rows
//     in it — is scratch owned by the operator: consume it before the
//     next Next call and never retain it (clone rows that must
//     outlive the pull loop).
//   - Close releases resources; it is idempotent and safe after a
//     failed Open.
//
// No operator materializes its full input except HashJoin's build side,
// Sort, and GroupAgg's accumulator table — the three places DESIGN.md
// §8 sanctions — so peak intermediate memory is bounded by
// MaxBatchRows plus those explicit pools, which plan.ExecStats reports.
package exec

import (
	"context"
	"fmt"
	"time"

	"xst/internal/table"
	"xst/internal/trace"
)

// MaxBatchRows caps the size of any batch flowing between operators.
// Operators that can amplify their input (join probes, aggregate and
// sort emission) chunk their output at this bound, which is what makes
// "no full-result materialization between operators" checkable: peak
// intermediate rows stay O(MaxBatchRows) regardless of result size.
const MaxBatchRows = 1024

// OpStats counts one operator's activity, reset at Open. Ns is
// inclusive wall time spent inside this operator's Open and Next,
// children included (the tree form of EXPLAIN ANALYZE).
type OpStats struct {
	RowsIn   int   // rows pulled from children
	RowsOut  int   // rows emitted
	Batches  int   // batches emitted
	MaxBatch int   // largest emitted batch
	HeldRows int   // rows retained inside the operator (build/sort/agg pools)
	Ns       int64 // inclusive nanoseconds in Open+Next
}

// Operator is one node of a streaming execution tree.
type Operator interface {
	// Open prepares the subtree under a cancellation context, which is
	// polled once per batch while streaming.
	Open(ctx context.Context) error
	// Next returns the next output batch, or (nil, nil) at end of
	// stream. See the package comment for batch ownership rules.
	Next() ([]table.Row, error)
	// Close releases the subtree's resources.
	Close() error
	// OutSchema reports the operator's output schema.
	OutSchema() table.Schema
	// Stats returns the counters of the last (or current) run.
	Stats() OpStats
	// Children returns the input operators, for tree walks.
	Children() []Operator
	// String names the operator for EXPLAIN output.
	String() string
}

// Walk visits the tree rooted at op in preorder.
func Walk(op Operator, fn func(op Operator, depth int)) {
	var rec func(o Operator, d int)
	rec = func(o Operator, d int) {
		fn(o, d)
		for _, c := range o.Children() {
			rec(c, d+1)
		}
	}
	rec(op, 0)
}

// Collect drains the tree into a materialized, retainable row slice
// (rows cloned out of operator scratch). The tree is opened and closed
// around the drain.
func Collect(ctx context.Context, op Operator) ([]table.Row, error) {
	var out []table.Row
	err := Stream(ctx, op, func(rows []table.Row) error {
		for _, r := range rows {
			out = append(out, r.Clone())
		}
		return nil
	})
	return out, err
}

// Stream opens op, feeds every batch to emit, and closes it. Batches
// passed to emit follow the no-retain rule.
//
// When the context carries a trace span (trace.WithSpan), Stream opens
// an "exec" child with "open", "next" and "close" phases under it, and
// threads the exec span to the operators so parallel workers (Gather,
// HashBuild, ParallelGroupAgg) attach their per-worker spans to the
// same tree. Untraced contexts cost one nil check per phase and
// nothing per batch.
func Stream(ctx context.Context, op Operator, emit func(rows []table.Row) error) error {
	sp := trace.SpanOf(ctx).Start("exec")
	defer sp.End()
	ctx = trace.WithSpan(ctx, sp)
	if err := openSpanned(ctx, sp, op); err != nil {
		op.Close()
		return err
	}
	defer closeSpanned(sp, op)
	nsp := sp.Start("next")
	defer nsp.End()
	for {
		rows, err := op.Next()
		if err != nil {
			return err
		}
		if rows == nil {
			return nil
		}
		nsp.AddRows(len(rows))
		nsp.AddBatches(1)
		if err := emit(rows); err != nil {
			return err
		}
	}
}

// openSpanned runs op.Open under an "open" phase span.
func openSpanned(ctx context.Context, sp *trace.Span, op Operator) error {
	osp := sp.Start("open")
	defer osp.End()
	return op.Open(ctx)
}

// closeSpanned runs op.Close under a "close" phase span.
func closeSpanned(sp *trace.Span, op Operator) error {
	csp := sp.Start("close")
	defer csp.End()
	return op.Close()
}

// Count drains the tree discarding rows and returns the row count.
func Count(ctx context.Context, op Operator) (int, error) {
	n := 0
	err := Stream(ctx, op, func(rows []table.Row) error {
		n += len(rows)
		return nil
	})
	return n, err
}

// timer measures inclusive operator time; use as
// defer st.timed(time.Now()) at the top of Open and Next.
func (s *OpStats) timed(start time.Time) { s.Ns += time.Since(start).Nanoseconds() }

// emitted records one outgoing batch.
func (s *OpStats) emitted(rows []table.Row) {
	s.RowsOut += len(rows)
	s.Batches++
	if len(rows) > s.MaxBatch {
		s.MaxBatch = len(rows)
	}
}

// errOpen reports a Next before Open.
func errOpen(op Operator) error { return fmt.Errorf("exec: %s: Next before Open", op) }
