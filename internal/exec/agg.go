package exec

import (
	"context"
	"fmt"
	"time"

	"xst/internal/table"
	"xst/internal/xsp"
)

// GroupAgg is the streaming aggregate operator: Open drains the child
// into an xsp.AggState — accumulators only, never the input rows — and
// Next emits the (key, agg…) result in MaxBatchRows chunks. The held
// state is one accumulator per distinct key, the aggregate's sanctioned
// materialization.
type GroupAgg struct {
	child  Operator
	keyCol int
	aggs   []xsp.Agg
	queue  []table.Row
	stats  OpStats
	open   bool
}

// NewGroupAgg groups child rows on keyCol and computes aggs per group.
func NewGroupAgg(child Operator, keyCol int, aggs ...xsp.Agg) *GroupAgg {
	return &GroupAgg{child: child, keyCol: keyCol, aggs: aggs}
}

// Open implements Operator, consuming the whole child stream into the
// accumulator table with a per-batch cancellation poll.
func (g *GroupAgg) Open(ctx context.Context) error {
	g.stats = OpStats{}
	defer g.stats.timed(time.Now())
	g.open = true
	if err := g.child.Open(ctx); err != nil {
		return err
	}
	st := xsp.NewAggState(g.keyCol, g.aggs...)
	for {
		rows, err := g.child.Next()
		if err != nil {
			return err
		}
		if rows == nil {
			break
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		g.stats.RowsIn += len(rows)
		if err := st.Absorb(rows); err != nil {
			return err
		}
	}
	g.queue = st.Rows()
	g.stats.HeldRows = st.Groups()
	return nil
}

// Next implements Operator.
func (g *GroupAgg) Next() ([]table.Row, error) {
	defer g.stats.timed(time.Now())
	if !g.open {
		return nil, errOpen(g)
	}
	if len(g.queue) == 0 {
		return nil, nil
	}
	n := min(len(g.queue), MaxBatchRows)
	out := g.queue[:n]
	g.queue = g.queue[n:]
	g.stats.emitted(out)
	return out, nil
}

// Close implements Operator.
func (g *GroupAgg) Close() error {
	g.open = false
	g.queue = nil
	return g.child.Close()
}

// OutSchema implements Operator: (key, agg1, agg2, …) with aggregate
// columns named kind(col).
func (g *GroupAgg) OutSchema() table.Schema {
	in := g.child.OutSchema()
	cols := make([]string, 0, 1+len(g.aggs))
	cols = append(cols, in.Cols[g.keyCol])
	for _, a := range g.aggs {
		if a.Kind == xsp.Count {
			cols = append(cols, "count")
		} else {
			cols = append(cols, fmt.Sprintf("%s(%s)", a.Kind, in.Cols[a.Col]))
		}
	}
	return table.Schema{Name: in.Name, Cols: cols}
}

// Stats implements Operator.
func (g *GroupAgg) Stats() OpStats { return g.stats }

// Children implements Operator.
func (g *GroupAgg) Children() []Operator { return []Operator{g.child} }

func (g *GroupAgg) String() string {
	in := g.child.OutSchema()
	return fmt.Sprintf("groupagg[%s x%d]", in.Cols[g.keyCol], len(g.aggs))
}
