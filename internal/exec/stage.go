package exec

import (
	"context"
	"time"

	"xst/internal/table"
	"xst/internal/xsp"
)

// Stage lifts one batch-at-a-time xsp.Op (Restrict, Project, Distinct)
// into the operator tree: each Next pulls child batches until the op
// yields a non-empty output batch. The op's scratch-reuse contract
// carries over — output batches are invalidated by the next Next.
//
// Stateful ops (xsp.Distinct's seen-set) make a Stage single-use: build
// a fresh tree per execution rather than reopening one.
type Stage struct {
	op    xsp.Op
	child Operator
	stats OpStats
	open  bool
}

// NewStage wraps op over child.
func NewStage(op xsp.Op, child Operator) *Stage {
	return &Stage{op: op, child: child}
}

// Open implements Operator.
func (s *Stage) Open(ctx context.Context) error {
	s.stats = OpStats{}
	defer s.stats.timed(time.Now())
	s.open = true
	return s.child.Open(ctx)
}

// Next implements Operator.
func (s *Stage) Next() ([]table.Row, error) {
	defer s.stats.timed(time.Now())
	if !s.open {
		return nil, errOpen(s)
	}
	for {
		rows, err := s.child.Next()
		if err != nil || rows == nil {
			return nil, err
		}
		s.stats.RowsIn += len(rows)
		out := s.op.Process(rows)
		if len(out) == 0 {
			continue
		}
		s.stats.emitted(out)
		return out, nil
	}
}

// Close implements Operator.
func (s *Stage) Close() error {
	s.open = false
	return s.child.Close()
}

// OutSchema implements Operator.
func (s *Stage) OutSchema() table.Schema {
	return s.op.OutSchema(s.child.OutSchema())
}

// Stats implements Operator.
func (s *Stage) Stats() OpStats { return s.stats }

// Children implements Operator.
func (s *Stage) Children() []Operator { return []Operator{s.child} }

func (s *Stage) String() string { return s.op.String() }
