package exec_test

import (
	"context"
	"sort"
	"testing"

	"xst/internal/algebra"
	"xst/internal/core"
	"xst/internal/exec"
	"xst/internal/store"
	"xst/internal/table"
	"xst/internal/xsp"
	"xst/internal/xtest"
)

func newPool() *store.BufferPool {
	return store.NewBufferPool(store.NewMemPager(), 64)
}

func makeUsers(t testing.TB, pool *store.BufferPool, n int) *table.Table {
	t.Helper()
	tbl, err := table.Create(pool, table.Schema{Name: "users", Cols: []string{"id", "city", "score"}})
	if err != nil {
		t.Fatal(err)
	}
	cities := []string{"ann-arbor", "boston", "chicago"}
	for i := 0; i < n; i++ {
		if _, err := tbl.Insert(table.Row{core.Int(i), core.Str(cities[i%3]), core.Int(i % 10)}); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func makeOrders(t testing.TB, pool *store.BufferPool, n, users int) *table.Table {
	t.Helper()
	tbl, err := table.Create(pool, table.Schema{Name: "orders", Cols: []string{"uid", "amount"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := tbl.Insert(table.Row{core.Int(i % users), core.Int(i)}); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// fingerprint renders rows order-independently for multiset comparison.
func fingerprint(rows []table.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = core.Key(r.Tuple())
	}
	sort.Strings(out)
	return out
}

func sameRows(t *testing.T, got, want []table.Row) {
	t.Helper()
	g, w := fingerprint(got), fingerprint(want)
	if len(g) != len(w) {
		t.Fatalf("row count %d, want %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("row multiset differs at %d:\ngot  %q\nwant %q", i, g[i], w[i])
		}
	}
}

func TestScanBatchesBounded(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 3000)
	op := exec.NewScan(tbl)
	total, batches := 0, 0
	err := exec.Stream(context.Background(), op, func(rows []table.Row) error {
		if len(rows) == 0 || len(rows) > exec.MaxBatchRows {
			t.Fatalf("batch of %d rows (max %d)", len(rows), exec.MaxBatchRows)
		}
		total += len(rows)
		batches++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 3000 {
		t.Fatalf("streamed %d rows, want 3000", total)
	}
	st := op.Stats()
	if st.RowsOut != 3000 || st.Batches != batches || st.MaxBatch > exec.MaxBatchRows {
		t.Fatalf("stats = %+v (saw %d batches)", st, batches)
	}
}

// TestTreeMatchesAlgebra extends the engine↔algebra anchor to the
// streaming tree: a Restrict stage computes exactly the symbolic
// σ-Restriction, and a Project stage the σ-Domain, of the table's
// extended set.
func TestTreeMatchesAlgebra(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 45)
	whole, err := tbl.ToXST()
	if err != nil {
		t.Fatal(err)
	}

	restrict := exec.NewStage(&xsp.Restrict{
		Pred: func(r table.Row) bool { return core.Equal(r[1], core.Str("boston")) },
		Name: "city=boston",
	}, exec.NewScan(tbl))
	rows, err := exec.Collect(context.Background(), restrict)
	if err != nil {
		t.Fatal(err)
	}
	eb := core.NewBuilder(len(rows))
	for _, r := range rows {
		eb.AddClassical(r.Tuple())
	}
	pattern := core.S(core.Tuple(core.Str("boston")))
	sym := algebra.SigmaRestrict(whole, algebra.ScopeSet([2]int{2, 1}), pattern)
	if !core.Equal(eb.Set(), sym) {
		t.Fatalf("tree restriction ≠ σ-Restriction:\ntree=%v\nsym=%v", eb.Set(), sym)
	}

	project := exec.NewStage(&xsp.Project{Cols: []int{0}}, exec.NewScan(tbl))
	prows, err := exec.Collect(context.Background(), project)
	if err != nil {
		t.Fatal(err)
	}
	pb := core.NewBuilder(len(prows))
	for _, r := range prows {
		pb.AddClassical(r.Tuple())
	}
	symProj := algebra.SigmaDomain(whole, algebra.Positions(1))
	if !core.Equal(pb.Set(), symProj) {
		t.Fatalf("tree projection %v ≠ σ-Domain %v", pb.Set(), symProj)
	}
}

// TestHashJoinMatchesRelativeProduct ties the streaming join to Def
// 10.1 the same way the xsp engine's join is tied, for both build-side
// choices.
func TestHashJoinMatchesRelativeProduct(t *testing.T) {
	pool := newPool()
	l, _ := table.Create(pool, table.Schema{Name: "l", Cols: []string{"k", "a"}})
	r, _ := table.Create(pool, table.Schema{Name: "r", Cols: []string{"k", "b"}})
	for i := 0; i < 12; i++ {
		l.Insert(table.Row{core.Int(i % 4), core.Str("a" + string(rune('0'+i)))})
		r.Insert(table.Row{core.Int(i % 3), core.Str("b" + string(rune('0'+i)))})
	}
	lx, _ := l.ToXST()
	rx, _ := r.ToXST()
	spec := algebra.RelProdSpec{
		Sigma: algebra.NewSigma(
			algebra.ScopeSet([2]int{1, 1}, [2]int{2, 2}),
			algebra.ScopeSet([2]int{1, 1}),
		),
		Omega: algebra.NewSigma(
			algebra.ScopeSet([2]int{1, 1}),
			algebra.ScopeSet([2]int{1, 3}, [2]int{2, 4}),
		),
	}
	sym := spec.Apply(lx, rx)

	for _, buildLeft := range []bool{false, true} {
		j := exec.NewHashJoin(exec.NewScan(l), exec.NewScan(r), 0, 0, buildLeft)
		rows, err := exec.Collect(context.Background(), j)
		if err != nil {
			t.Fatal(err)
		}
		engine := core.NewBuilder(len(rows))
		for _, row := range rows {
			engine.AddClassical(row.Tuple())
		}
		if !core.Equal(engine.Set(), sym) {
			t.Fatalf("buildLeft=%v: streaming join ≠ relative product:\nengine=%v\nsym=%v",
				buildLeft, engine.Set(), sym)
		}
	}
}

// TestHashJoinStreamsProbe verifies the tentpole invariant: only the
// build side is held, and emitted batches stay bounded even when the
// join output is much larger than one batch.
func TestHashJoinStreamsProbe(t *testing.T) {
	pool := newPool()
	users := makeUsers(t, pool, 50)
	orders := makeOrders(t, pool, 5000, 50)
	j := exec.NewHashJoin(exec.NewScan(orders), exec.NewScan(users), 0, 0, false)
	err := exec.Stream(context.Background(), j, func(rows []table.Row) error {
		if len(rows) > exec.MaxBatchRows {
			t.Fatalf("join emitted %d rows in one batch (max %d)", len(rows), exec.MaxBatchRows)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.HeldRows != 50 {
		t.Fatalf("join held %d rows, want the 50-row build side only", st.HeldRows)
	}
	if st.RowsOut != 5000 {
		t.Fatalf("join emitted %d rows, want 5000", st.RowsOut)
	}
	if st.MaxBatch > exec.MaxBatchRows {
		t.Fatalf("max batch %d exceeds %d", st.MaxBatch, exec.MaxBatchRows)
	}
}

func TestHashJoinBuildSidesAgree(t *testing.T) {
	pool := newPool()
	users := makeUsers(t, pool, 40)
	orders := makeOrders(t, pool, 200, 40)
	a, err := exec.Collect(context.Background(),
		exec.NewHashJoin(exec.NewScan(orders), exec.NewScan(users), 0, 0, false))
	if err != nil {
		t.Fatal(err)
	}
	b, err := exec.Collect(context.Background(),
		exec.NewHashJoin(exec.NewScan(orders), exec.NewScan(users), 0, 0, true))
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, a, b)
	if len(a) == 0 {
		t.Fatal("expected joined rows")
	}
	for _, r := range a {
		if !core.Equal(r[0], r[2]) {
			t.Fatalf("column order not left++right: %v", r)
		}
	}
}

func TestGroupAggMatchesXSP(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 99)
	aggs := []xsp.Agg{{Kind: xsp.Count}, {Kind: xsp.Sum, Col: 2}, {Kind: xsp.Max, Col: 0}}
	want, err := xsp.GroupAgg(xsp.NewPipeline(tbl), 1, aggs...)
	if err != nil {
		t.Fatal(err)
	}
	g := exec.NewGroupAgg(exec.NewScan(tbl), 1, aggs...)
	got, err := exec.Collect(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, got, want)
	if st := g.Stats(); st.HeldRows != 3 {
		t.Fatalf("aggregate held %d accumulators, want 3 groups", st.HeldRows)
	}
	sch := g.OutSchema()
	wantCols := []string{"city", "count", "sum(score)", "max(id)"}
	for i, c := range wantCols {
		if sch.Cols[i] != c {
			t.Fatalf("schema = %v, want %v", sch.Cols, wantCols)
		}
	}
}

func TestSortAndLimit(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 500)
	s := exec.NewSort(exec.NewScan(tbl), 0, true)
	rows, err := exec.Collect(context.Background(), exec.NewLimit(s, 7))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("limit kept %d rows, want 7", len(rows))
	}
	for i, r := range rows {
		if !core.Equal(r[0], core.Int(499-i)) {
			t.Fatalf("row %d = %v, want id %d", i, r, 499-i)
		}
	}
	if st := s.Stats(); st.HeldRows != 500 {
		t.Fatalf("sort held %d rows, want 500", st.HeldRows)
	}
}

func TestNextBeforeOpenErrors(t *testing.T) {
	op := exec.NewScan(makeUsers(t, newPool(), 5))
	if _, err := op.Next(); err == nil {
		t.Fatal("Next before Open should error")
	}
}

func TestJoinCancelDuringBuild(t *testing.T) {
	pool := newPool()
	users := makeUsers(t, pool, 4000)
	orders := makeOrders(t, pool, 10, 4000)
	xtest.AssertCancelAborts(t, 3, func(ctx context.Context) error {
		j := exec.NewHashJoin(exec.NewScan(orders), exec.NewScan(users), 0, 0, false)
		_, err := exec.Count(ctx, j)
		return err
	})
}

func TestJoinCancelDuringProbe(t *testing.T) {
	pool := newPool()
	users := makeUsers(t, pool, 8)
	orders := makeOrders(t, pool, 8000, 8)
	xtest.AssertCancelAborts(t, 12, func(ctx context.Context) error {
		j := exec.NewHashJoin(exec.NewScan(orders), exec.NewScan(users), 0, 0, false)
		_, err := exec.Count(ctx, j)
		return err
	})
}

func TestGroupAggCancel(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 8000)
	xtest.AssertCancelAborts(t, 3, func(ctx context.Context) error {
		g := exec.NewGroupAgg(exec.NewScan(tbl), 1, xsp.Agg{Kind: xsp.Count})
		_, err := exec.Count(ctx, g)
		return err
	})
}

func TestSortCancel(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 8000)
	xtest.AssertCancelAborts(t, 3, func(ctx context.Context) error {
		s := exec.NewSort(exec.NewScan(tbl), 0, false)
		_, err := exec.Count(ctx, s)
		return err
	})
}
