package exec

import (
	"context"
	"strings"

	"xst/internal/table"
)

// Rename passes its child's batches through untouched but reports a
// schema with the columns relabelled positionally. The federation
// coordinator uses it above a merge aggregation whose columns carry
// partial-form names (e.g. sum(count)) to restore the names the user's
// query produces.
type Rename struct {
	child Operator
	cols  []string
	stats OpStats
	open  bool
}

// NewRename relabels child's output columns; len(cols) must equal the
// child's arity (checked by plan.Compile).
func NewRename(child Operator, cols []string) *Rename {
	return &Rename{child: child, cols: append([]string(nil), cols...)}
}

// Open implements Operator.
func (r *Rename) Open(ctx context.Context) error {
	r.stats = OpStats{}
	r.open = true
	return r.child.Open(ctx)
}

// Next implements Operator.
func (r *Rename) Next() ([]table.Row, error) {
	if !r.open {
		return nil, errOpen(r)
	}
	rows, err := r.child.Next()
	if err != nil || rows == nil {
		return nil, err
	}
	r.stats.RowsIn += len(rows)
	r.stats.emitted(rows)
	return rows, nil
}

// Close implements Operator.
func (r *Rename) Close() error {
	r.open = false
	return r.child.Close()
}

// OutSchema implements Operator.
func (r *Rename) OutSchema() table.Schema {
	return table.Schema{Name: r.child.OutSchema().Name, Cols: r.cols}
}

// Stats implements Operator.
func (r *Rename) Stats() OpStats { return r.stats }

// Children implements Operator.
func (r *Rename) Children() []Operator { return []Operator{r.child} }

// RetainableBatches forwards the child's retention contract: renaming
// touches only the schema, never the batches.
func (r *Rename) RetainableBatches() bool { return retainableBatches(r.child) }

func (r *Rename) String() string { return "rename[" + strings.Join(r.cols, ",") + "]" }
