package exec_test

import (
	"context"
	"testing"

	"xst/internal/core"
	"xst/internal/exec"
	"xst/internal/index"
	"xst/internal/table"
	"xst/internal/xtest"
)

// buildIndexes builds both access paths over users.id.
func buildIndexes(t testing.TB, tbl *table.Table) (*index.HashIndex, *index.BTree) {
	t.Helper()
	h, err := index.BuildHash(context.Background(), tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := index.BuildBTree(context.Background(), tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	return h, bt
}

// scanWhere is the full-scan oracle: every row passing keep.
func scanWhere(t *testing.T, tbl *table.Table, keep func(table.Row) bool) []table.Row {
	t.Helper()
	all, err := exec.Collect(context.Background(), exec.NewScan(tbl))
	if err != nil {
		t.Fatal(err)
	}
	var out []table.Row
	for _, r := range all {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

func TestHashIndexScanPoint(t *testing.T) {
	tbl := makeUsers(t, newPool(), 3000)
	h, _ := buildIndexes(t, tbl)
	got, err := exec.Collect(context.Background(),
		exec.NewHashIndexScan(tbl, h, core.Int(1234), "users.id=1234"))
	if err != nil {
		t.Fatal(err)
	}
	want := scanWhere(t, tbl, func(r table.Row) bool { return core.Equal(r[0], core.Int(1234)) })
	sameRows(t, got, want)

	// Missing key → empty, not an error.
	got, err = exec.Collect(context.Background(),
		exec.NewHashIndexScan(tbl, h, core.Int(-7), "users.id=-7"))
	if err != nil || len(got) != 0 {
		t.Fatalf("missing key: rows=%d err=%v", len(got), err)
	}
}

func TestHashIndexScanDuplicates(t *testing.T) {
	tbl := makeUsers(t, newPool(), 300)
	// Column 2 (score) has 10 distinct values over 300 rows.
	h, err := index.BuildHash(context.Background(), tbl, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.Collect(context.Background(),
		exec.NewHashIndexScan(tbl, h, core.Int(4), "users.score=4"))
	if err != nil {
		t.Fatal(err)
	}
	want := scanWhere(t, tbl, func(r table.Row) bool { return core.Equal(r[2], core.Int(4)) })
	if len(want) != 30 {
		t.Fatalf("oracle rows = %d", len(want))
	}
	sameRows(t, got, want)
}

func TestBTreeIndexScanRanges(t *testing.T) {
	tbl := makeUsers(t, newPool(), 3000)
	_, bt := buildIndexes(t, tbl)
	le := func(a, b core.Value) bool { return core.Compare(a, b) <= 0 }
	lt := func(a, b core.Value) bool { return core.Compare(a, b) < 0 }
	cases := []struct {
		name           string
		lo, hi         core.Value
		loIncl, hiIncl bool
		keep           func(table.Row) bool
	}{
		{"closed", core.Int(100), core.Int(200), true, true,
			func(r table.Row) bool { return le(core.Int(100), r[0]) && le(r[0], core.Int(200)) }},
		{"half open", core.Int(100), core.Int(200), true, false,
			func(r table.Row) bool { return le(core.Int(100), r[0]) && lt(r[0], core.Int(200)) }},
		{"exclusive lo", core.Int(100), core.Int(200), false, true,
			func(r table.Row) bool { return lt(core.Int(100), r[0]) && le(r[0], core.Int(200)) }},
		{"open high", core.Int(2990), nil, true, false,
			func(r table.Row) bool { return le(core.Int(2990), r[0]) }},
		{"open low", nil, core.Int(10), false, false,
			func(r table.Row) bool { return lt(r[0], core.Int(10)) }},
		{"point via btree", core.Int(42), core.Int(42), true, true,
			func(r table.Row) bool { return core.Equal(r[0], core.Int(42)) }},
		{"empty range", core.Int(200), core.Int(100), true, true,
			func(table.Row) bool { return false }},
		{"out of domain", core.Int(5000), core.Int(6000), true, true,
			func(table.Row) bool { return false }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := exec.Collect(context.Background(),
				exec.NewBTreeIndexScan(tbl, bt, tc.lo, tc.hi, tc.loIncl, tc.hiIncl, "users.id range"))
			if err != nil {
				t.Fatal(err)
			}
			sameRows(t, got, scanWhere(t, tbl, tc.keep))
		})
	}
}

func TestIndexScanEmptyTable(t *testing.T) {
	pool := newPool()
	tbl, err := table.Create(pool, table.Schema{Name: "empty", Cols: []string{"x"}})
	if err != nil {
		t.Fatal(err)
	}
	h, bt := buildIndexes(t, tbl)
	for _, op := range []exec.Operator{
		exec.NewHashIndexScan(tbl, h, core.Int(1), "empty.x=1"),
		exec.NewBTreeIndexScan(tbl, bt, nil, nil, false, false, "empty.x all"),
	} {
		rows, err := exec.Collect(context.Background(), op)
		if err != nil || len(rows) != 0 {
			t.Fatalf("%s: rows=%d err=%v", op, len(rows), err)
		}
	}
}

func TestIndexScanNextBeforeOpen(t *testing.T) {
	tbl := makeUsers(t, newPool(), 10)
	h, _ := buildIndexes(t, tbl)
	s := exec.NewHashIndexScan(tbl, h, core.Int(1), "users.id=1")
	if _, err := s.Next(); err == nil {
		t.Fatal("want Next-before-Open error")
	}
}

func TestIndexScanCancelMidRangeGather(t *testing.T) {
	// >256 distinct keys so the Open-time range walk crosses a poll.
	tbl := makeUsers(t, newPool(), 4000)
	_, bt := buildIndexes(t, tbl)
	xtest.AssertCancelAborts(t, 2, func(ctx context.Context) error {
		return exec.Stream(ctx,
			exec.NewBTreeIndexScan(tbl, bt, nil, nil, false, false, "users.id all"),
			func([]table.Row) error { return nil })
	})
}

func TestIndexScanCancelMidFetch(t *testing.T) {
	// Cancel later so the abort lands in the per-batch Next poll.
	tbl := makeUsers(t, newPool(), 4000)
	_, bt := buildIndexes(t, tbl)
	xtest.AssertCancelAborts(t, 20, func(ctx context.Context) error {
		return exec.Stream(ctx,
			exec.NewBTreeIndexScan(tbl, bt, nil, nil, false, false, "users.id all"),
			func([]table.Row) error { return nil })
	})
}

func TestIndexBuildCancel(t *testing.T) {
	tbl := makeUsers(t, newPool(), 4000)
	xtest.AssertCancelAborts(t, 2, func(ctx context.Context) error {
		_, err := index.BuildHash(ctx, tbl, 0)
		return err
	})
	xtest.AssertCancelAborts(t, 2, func(ctx context.Context) error {
		_, err := index.BuildBTree(ctx, tbl, 0)
		return err
	})
}

func TestBTreeBuildRejectsNonAtoms(t *testing.T) {
	pool := newPool()
	tbl, err := table.Create(pool, table.Schema{Name: "sets", Cols: []string{"v"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(table.Row{core.Tuple(core.Int(1), core.Int(2))}); err != nil {
		t.Fatal(err)
	}
	if _, err := index.BuildBTree(context.Background(), tbl, 0); err == nil {
		t.Fatal("want non-atom build error")
	}
	// The hash path indexes any value kind.
	h, err := index.BuildHash(context.Background(), tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Collect(context.Background(),
		exec.NewHashIndexScan(tbl, h, core.Tuple(core.Int(1), core.Int(2)), "sets.v=⟨1,2⟩"))
	if err != nil || len(rows) != 1 {
		t.Fatalf("set-valued point lookup: rows=%d err=%v", len(rows), err)
	}
}

func TestIndexScanStatsBounded(t *testing.T) {
	tbl := makeUsers(t, newPool(), 3000)
	_, bt := buildIndexes(t, tbl)
	op := exec.NewBTreeIndexScan(tbl, bt, nil, nil, false, false, "users.id all")
	rows, err := exec.Collect(context.Background(), op)
	if err != nil {
		t.Fatal(err)
	}
	st := op.Stats()
	if len(rows) != 3000 || st.RowsOut != 3000 || st.RowsIn != 3000 {
		t.Fatalf("rows=%d stats=%+v", len(rows), st)
	}
	if st.MaxBatch > exec.MaxBatchRows {
		t.Fatalf("max batch %d exceeds cap", st.MaxBatch)
	}
	if st.Batches < 3 {
		t.Fatalf("batches = %d, want chunked output", st.Batches)
	}
}
