package exec

import (
	"context"
	"fmt"
	"time"

	"xst/internal/core"
	"xst/internal/index"
	"xst/internal/store"
	"xst/internal/table"
)

// indexPollEvery bounds how many index keys a range walk visits between
// context polls while gathering RIDs at Open.
const indexPollEvery = 256

// IndexScan fetches rows by record id through a prestructured access
// path instead of walking the heap: a hash index answers point lookups,
// a btree answers ordered ranges (lo/hi under core.OrderKey, so only
// atom bounds are legal — the planner gates on that). RIDs are gathered
// at Open (polling the context during long range walks) and fetched in
// MaxBatchRows batches at Next, so peak intermediate rows stay bounded
// by the batch cap like every other operator.
type IndexScan struct {
	tab  *table.Table
	hash *index.HashIndex
	bt   *index.BTree

	eq             core.Value // hash point key
	lo, hi         core.Value // btree range bounds (nil = open)
	loIncl, hiIncl bool
	desc           string

	ctx   context.Context
	src   *table.Table // tab, possibly pinned to the Open ctx's view
	rids  []store.RID
	pos   int
	buf   []table.Row
	stats OpStats
	open  bool
}

// NewHashIndexScan returns a point-lookup scan of t through hash index
// idx: rows whose indexed column equals key. desc labels the choice in
// plans and traces (e.g. "events.id=42").
func NewHashIndexScan(t *table.Table, idx *index.HashIndex, key core.Value, desc string) *IndexScan {
	return &IndexScan{tab: t, hash: idx, eq: key, desc: desc}
}

// NewBTreeIndexScan returns a range scan of t through btree idx: rows
// whose indexed column lies between lo and hi (each bound optional when
// nil, inclusive when its flag is set). Bounds must be atoms.
func NewBTreeIndexScan(t *table.Table, idx *index.BTree, lo, hi core.Value, loIncl, hiIncl bool, desc string) *IndexScan {
	return &IndexScan{tab: t, bt: idx, lo: lo, hi: hi, loIncl: loIncl, hiIncl: hiIncl, desc: desc}
}

// Open implements Operator, resolving the lookup to a RID list.
func (s *IndexScan) Open(ctx context.Context) error {
	s.stats = OpStats{}
	defer s.stats.timed(time.Now())
	s.ctx = ctx
	s.src = s.tab
	if v := store.ViewFrom(ctx); v != nil {
		s.src = s.tab.At(v)
	}
	s.rids = s.rids[:0]
	s.pos = 0
	s.open = true
	if s.hash != nil {
		s.rids = append(s.rids, s.hash.Lookup(core.Key(s.eq))...)
		return ctx.Err()
	}
	lo, hi, err := s.rangeKeys()
	if err != nil {
		return err
	}
	steps := 0
	s.bt.Range(lo, hi, func(_ string, rids []store.RID) bool {
		steps++
		if steps%indexPollEvery == 0 && ctx.Err() != nil {
			return false
		}
		s.rids = append(s.rids, rids...)
		return true
	})
	return ctx.Err()
}

// rangeKeys maps the value bounds onto BTree.Range's half-open string
// interval. OrderKey strings are standalone, so the smallest key above
// OrderKey(v) is OrderKey(v)+"\x00": appending it turns an exclusive lo
// or an inclusive hi into the right half-open bound.
func (s *IndexScan) rangeKeys() (lo, hi string, err error) {
	if s.lo != nil {
		if _, ok := core.AtomKeyOf(s.lo); !ok {
			return "", "", fmt.Errorf("exec: indexscan bound %v is not an atom", s.lo)
		}
		lo = core.OrderKey(s.lo)
		if !s.loIncl {
			lo += "\x00"
		}
	}
	if s.hi != nil {
		if _, ok := core.AtomKeyOf(s.hi); !ok {
			return "", "", fmt.Errorf("exec: indexscan bound %v is not an atom", s.hi)
		}
		hi = core.OrderKey(s.hi)
		if s.hiIncl {
			hi += "\x00"
		}
	}
	return lo, hi, nil
}

// Next implements Operator, fetching up to MaxBatchRows rows by RID.
func (s *IndexScan) Next() ([]table.Row, error) {
	defer s.stats.timed(time.Now())
	if !s.open {
		return nil, errOpen(s)
	}
	if s.pos >= len(s.rids) {
		return nil, nil
	}
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	n := min(len(s.rids)-s.pos, MaxBatchRows)
	s.buf = s.buf[:0]
	for _, rid := range s.rids[s.pos : s.pos+n] {
		r, err := s.src.Get(rid)
		if err != nil {
			return nil, err
		}
		s.buf = append(s.buf, r)
	}
	s.pos += n
	s.stats.RowsIn += n
	s.stats.emitted(s.buf)
	return s.buf, nil
}

// Close implements Operator.
func (s *IndexScan) Close() error {
	s.open = false
	s.src = nil
	s.rids = nil
	s.buf = nil
	return nil
}

// OutSchema implements Operator.
func (s *IndexScan) OutSchema() table.Schema { return s.tab.Schema() }

// Stats implements Operator.
func (s *IndexScan) Stats() OpStats { return s.stats }

// Children implements Operator.
func (s *IndexScan) Children() []Operator { return nil }

func (s *IndexScan) String() string { return "indexscan(" + s.desc + ")" }
