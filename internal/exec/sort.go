package exec

import (
	"context"
	"fmt"
	"sort"
	"time"

	"xst/internal/core"
	"xst/internal/table"
)

// Sort materializes its input — the final sanctioned materialization —
// orders it by one column under the canonical order, and emits it in
// MaxBatchRows chunks.
type Sort struct {
	child Operator
	col   int
	desc  bool
	queue []table.Row
	stats OpStats
	open  bool
}

// NewSort orders child rows by column col (descending if desc).
func NewSort(child Operator, col int, desc bool) *Sort {
	return &Sort{child: child, col: col, desc: desc}
}

// Open implements Operator, buffering and sorting the whole child
// stream; rows are cloned out of child scratch and the context is
// polled every few hundred rows.
func (s *Sort) Open(ctx context.Context) error {
	s.stats = OpStats{}
	defer s.stats.timed(time.Now())
	s.open = true
	if err := s.child.Open(ctx); err != nil {
		return err
	}
	s.queue = s.queue[:0]
	steps := 0
	for {
		rows, err := s.child.Next()
		if err != nil {
			return err
		}
		if rows == nil {
			break
		}
		s.stats.RowsIn += len(rows)
		for _, r := range rows {
			if steps%256 == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			steps++
			s.queue = append(s.queue, r.Clone())
		}
	}
	s.stats.HeldRows = len(s.queue)
	col, desc := s.col, s.desc
	sort.SliceStable(s.queue, func(i, j int) bool {
		c := core.Compare(s.queue[i][col], s.queue[j][col])
		if desc {
			return c > 0
		}
		return c < 0
	})
	return nil
}

// Next implements Operator.
func (s *Sort) Next() ([]table.Row, error) {
	defer s.stats.timed(time.Now())
	if !s.open {
		return nil, errOpen(s)
	}
	if len(s.queue) == 0 {
		return nil, nil
	}
	n := min(len(s.queue), MaxBatchRows)
	out := s.queue[:n]
	s.queue = s.queue[n:]
	s.stats.emitted(out)
	return out, nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	s.open = false
	s.queue = nil
	return s.child.Close()
}

// OutSchema implements Operator.
func (s *Sort) OutSchema() table.Schema { return s.child.OutSchema() }

// Stats implements Operator.
func (s *Sort) Stats() OpStats { return s.stats }

// Children implements Operator.
func (s *Sort) Children() []Operator { return []Operator{s.child} }

func (s *Sort) String() string {
	dir := "asc"
	if s.desc {
		dir = "desc"
	}
	return fmt.Sprintf("sort[%s %s]", s.child.OutSchema().Cols[s.col], dir)
}

// Limit passes through at most n rows, then stops pulling its child —
// the streaming form of a cutoff: upstream work past the limit never
// happens.
type Limit struct {
	child Operator
	n     int
	left  int
	stats OpStats
	open  bool
}

// NewLimit caps child output at n rows.
func NewLimit(child Operator, n int) *Limit {
	return &Limit{child: child, n: n}
}

// Open implements Operator.
func (l *Limit) Open(ctx context.Context) error {
	l.stats = OpStats{}
	defer l.stats.timed(time.Now())
	l.left = l.n
	l.open = true
	return l.child.Open(ctx)
}

// Next implements Operator.
func (l *Limit) Next() ([]table.Row, error) {
	defer l.stats.timed(time.Now())
	if !l.open {
		return nil, errOpen(l)
	}
	if l.left <= 0 {
		return nil, nil
	}
	rows, err := l.child.Next()
	if err != nil || rows == nil {
		return nil, err
	}
	l.stats.RowsIn += len(rows)
	if len(rows) > l.left {
		rows = rows[:l.left]
	}
	l.left -= len(rows)
	l.stats.emitted(rows)
	return rows, nil
}

// Close implements Operator.
func (l *Limit) Close() error {
	l.open = false
	return l.child.Close()
}

// OutSchema implements Operator.
func (l *Limit) OutSchema() table.Schema { return l.child.OutSchema() }

// Stats implements Operator.
func (l *Limit) Stats() OpStats { return l.stats }

// Children implements Operator.
func (l *Limit) Children() []Operator { return []Operator{l.child} }

func (l *Limit) String() string { return fmt.Sprintf("limit[%d]", l.n) }
