package exec_test

import (
	"context"
	"errors"
	"testing"

	"xst/internal/core"
	"xst/internal/exec"
	"xst/internal/table"
	"xst/internal/xsp"
	"xst/internal/xtest"
)

// Parallel operators must be multiset-equivalent to their serial
// counterparts (order across workers is arbitrary), bound their
// in-flight rows, propagate the first error, and leak no goroutines on
// cancellation or early close.

func TestParallelScanMatchesScan(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 3000)
	want, err := exec.Collect(context.Background(), exec.NewScan(tbl))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		g, err := exec.ParallelScan(tbl, workers)
		if err != nil {
			t.Fatal(err)
		}
		if g.Workers() != workers {
			t.Fatalf("Workers() = %d, want %d", g.Workers(), workers)
		}
		var got []table.Row
		err = exec.Stream(context.Background(), g, func(rows []table.Row) error {
			if len(rows) == 0 || len(rows) > exec.MaxBatchRows {
				t.Fatalf("gather batch of %d rows (max %d)", len(rows), exec.MaxBatchRows)
			}
			for _, r := range rows {
				got = append(got, r.Clone())
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, got, want)
	}
}

// TestGatherBoundsInFlightRows: the exchange holds at most one queued
// batch per worker plus one being sent per worker, so the observed peak
// must stay within 2 × workers × MaxBatchRows.
func TestGatherBoundsInFlightRows(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 20000)
	const workers = 4
	g, err := exec.ParallelScan(tbl, workers)
	if err != nil {
		t.Fatal(err)
	}
	n, err := exec.Count(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20000 {
		t.Fatalf("counted %d rows, want 20000", n)
	}
	peak := g.Stats().HeldRows
	if bound := 2 * workers * exec.MaxBatchRows; peak > bound {
		t.Fatalf("gather peak %d rows in flight exceeds bound %d", peak, bound)
	}
	if peak == 0 {
		t.Fatal("gather reported zero peak in-flight rows after streaming 20000")
	}
}

// TestGatherClonesStageBatches runs workers whose roots are Stage
// adapters (not Retainers): Gather must clone their scratch batches
// before they cross goroutines, and the result must still match the
// serial restrict.
func TestGatherClonesStageBatches(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 2000)
	boston := func(r table.Row) bool { return core.Equal(r[1], core.Str("boston")) }

	want, err := exec.Collect(context.Background(), exec.NewStage(
		&xsp.Restrict{Pred: boston, Name: "city=boston"}, exec.NewScan(tbl)))
	if err != nil {
		t.Fatal(err)
	}

	src, err := tbl.NewMorselSource()
	if err != nil {
		t.Fatal(err)
	}
	workers := make([]exec.Operator, 3)
	for i := range workers {
		workers[i] = exec.NewStage(
			&xsp.Restrict{Pred: boston, Name: "city=boston"}, exec.NewMorselScan(src))
	}
	got, err := exec.Collect(context.Background(), exec.NewGather(workers))
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, got, want)
}

// parallelJoin wires the partitioned join by hand: build workers feed a
// shared HashBuild (a Gather aux dependency), probe workers wrap
// ProbeJoins around it.
func parallelJoin(t *testing.T, users, orders *table.Table, workers int) (*exec.Gather, *exec.HashBuild) {
	t.Helper()
	usrc, err := users.NewMorselSource()
	if err != nil {
		t.Fatal(err)
	}
	osrc, err := orders.NewMorselSource()
	if err != nil {
		t.Fatal(err)
	}
	bw := make([]exec.Operator, workers)
	for i := range bw {
		bw[i] = exec.NewMorselScan(usrc)
	}
	hb := exec.NewHashBuild(bw, 0) // users.id
	pw := make([]exec.Operator, workers)
	for i := range pw {
		pw[i] = exec.NewProbeJoin(exec.NewMorselScan(osrc), hb, 0, false) // orders.uid
	}
	return exec.NewGather(pw, hb), hb
}

func TestParallelJoinMatchesHashJoin(t *testing.T) {
	pool := newPool()
	users := makeUsers(t, pool, 60)
	orders := makeOrders(t, pool, 3000, 60)
	want, err := exec.Collect(context.Background(),
		exec.NewHashJoin(exec.NewScan(orders), exec.NewScan(users), 0, 0, false))
	if err != nil {
		t.Fatal(err)
	}

	g, hb := parallelJoin(t, users, orders, 3)
	got, err := exec.Collect(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, got, want)
	if held := hb.Stats().HeldRows; held != 60 {
		t.Fatalf("partitioned build held %d rows, want the 60-row build side", held)
	}
}

func TestParallelGroupAggMatchesGroupAgg(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 999)
	aggs := []xsp.Agg{{Kind: xsp.Count}, {Kind: xsp.Sum, Col: 2}, {Kind: xsp.Min, Col: 0}, {Kind: xsp.Max, Col: 0}}
	serial := exec.NewGroupAgg(exec.NewScan(tbl), 1, aggs...)
	want, err := exec.Collect(context.Background(), serial)
	if err != nil {
		t.Fatal(err)
	}

	src, err := tbl.NewMorselSource()
	if err != nil {
		t.Fatal(err)
	}
	workers := make([]exec.Operator, 4)
	for i := range workers {
		workers[i] = exec.NewMorselScan(src)
	}
	pg := exec.NewParallelGroupAgg(workers, nil, 1, aggs...)
	got, err := exec.Collect(context.Background(), pg)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, got, want)
	if pg.Stats().HeldRows != 3 {
		t.Fatalf("merged aggregate held %d groups, want 3", pg.Stats().HeldRows)
	}
	if sch, want := pg.OutSchema(), serial.OutSchema(); len(sch.Cols) != len(want.Cols) {
		t.Fatalf("schema %v, want %v", sch.Cols, want.Cols)
	}
}

func TestProbeBeforeBuildOpenErrors(t *testing.T) {
	pool := newPool()
	users := makeUsers(t, pool, 30)
	orders := makeOrders(t, pool, 30, 30)
	hb := exec.NewHashBuild([]exec.Operator{exec.NewScan(users)}, 0)
	pj := exec.NewProbeJoin(exec.NewScan(orders), hb, 0, false)
	if err := pj.Open(context.Background()); err == nil {
		pj.Close()
		t.Fatal("ProbeJoin.Open succeeded against an unopened HashBuild")
	}
}

func TestGatherNextBeforeOpenErrors(t *testing.T) {
	g, err := exec.ParallelScan(makeUsers(t, newPool(), 10), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Next(); err == nil {
		t.Fatal("Next before Open should error")
	}
}

// failOp is an error-injecting worker: it emits `after` single-row
// batches, then fails.
type failOp struct {
	after int
	err   error
	n     int
	open  bool
}

func (f *failOp) Open(ctx context.Context) error { f.n = 0; f.open = true; return ctx.Err() }
func (f *failOp) Next() ([]table.Row, error) {
	if !f.open {
		return nil, errors.New("failop: next before open")
	}
	if f.n >= f.after {
		return nil, f.err
	}
	f.n++
	return []table.Row{{core.Int(f.n), core.Str("fail"), core.Int(0)}}, nil
}
func (f *failOp) Close() error { f.open = false; return nil }
func (f *failOp) OutSchema() table.Schema {
	return table.Schema{Name: "fail", Cols: []string{"id", "city", "score"}}
}
func (f *failOp) Stats() exec.OpStats       { return exec.OpStats{} }
func (f *failOp) Children() []exec.Operator { return nil }
func (f *failOp) String() string            { return "failop" }
func (f *failOp) RetainableBatches() bool   { return true }

// TestGatherFirstErrorWins injects a failing worker beside healthy scan
// workers over a large table: the injected error must surface (not the
// siblings' cancellation), and every worker goroutine must exit.
func TestGatherFirstErrorWins(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 20000)
	boom := errors.New("boom")
	xtest.AssertErrorAborts(t, boom, func(ctx context.Context) error {
		src, err := tbl.NewMorselSource()
		if err != nil {
			return err
		}
		workers := []exec.Operator{
			exec.NewMorselScan(src),
			exec.NewMorselScan(src),
			exec.NewMorselScan(src),
			&failOp{after: 1, err: boom},
		}
		_, err = exec.Count(ctx, exec.NewGather(workers))
		return err
	})
}

// TestParallelGroupAggFirstErrorWins: same injection through the
// partial-aggregate fan-out.
func TestParallelGroupAggFirstErrorWins(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 20000)
	boom := errors.New("boom")
	xtest.AssertErrorAborts(t, boom, func(ctx context.Context) error {
		src, err := tbl.NewMorselSource()
		if err != nil {
			return err
		}
		workers := []exec.Operator{
			exec.NewMorselScan(src),
			exec.NewMorselScan(src),
			&failOp{after: 1, err: boom},
		}
		_, err = exec.Count(ctx, exec.NewParallelGroupAgg(workers, nil, 1, xsp.Agg{Kind: xsp.Count}))
		return err
	})
}

func TestParallelScanCancel(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 8000)
	xtest.AssertCancelAborts(t, 3, func(ctx context.Context) error {
		g, err := exec.ParallelScan(tbl, 4)
		if err != nil {
			return err
		}
		_, err = exec.Count(ctx, g)
		return err
	})
}

func TestParallelJoinCancel(t *testing.T) {
	pool := newPool()
	users := makeUsers(t, pool, 4000)
	orders := makeOrders(t, pool, 8000, 4000)
	xtest.AssertCancelAborts(t, 5, func(ctx context.Context) error {
		g, _ := parallelJoin(t, users, orders, 3)
		_, err := exec.Count(ctx, g)
		return err
	})
}

func TestParallelGroupAggCancel(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 8000)
	xtest.AssertCancelAborts(t, 3, func(ctx context.Context) error {
		src, err := tbl.NewMorselSource()
		if err != nil {
			return err
		}
		workers := make([]exec.Operator, 4)
		for i := range workers {
			workers[i] = exec.NewMorselScan(src)
		}
		_, err = exec.Count(ctx, exec.NewParallelGroupAgg(workers, nil, 1, xsp.Agg{Kind: xsp.Count}))
		return err
	})
}

// TestGatherEarlyClose abandons the stream after one batch: Close must
// cancel, drain, and join every producer (the goroutine-leak check is
// the assertion).
func TestGatherEarlyClose(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 20000)
	xtest.AssertCancelAborts(t, 1000, func(ctx context.Context) error {
		g, err := exec.ParallelScan(tbl, 4)
		if err != nil {
			return err
		}
		if err := g.Open(ctx); err != nil {
			g.Close()
			return err
		}
		if _, err := g.Next(); err != nil {
			g.Close()
			return err
		}
		if err := g.Close(); err != nil {
			return err
		}
		return context.Canceled // satisfy the abort-contract assertion
	})
}
