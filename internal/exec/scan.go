package exec

import (
	"context"
	"time"

	"xst/internal/store"
	"xst/internal/table"
)

// Scan streams a stored table page batch by page batch through a
// table.BatchCursor — the pull form of the set-processing access path.
// The consumer paces the scan: one page is pinned, decoded, and
// unpinned per Next, and the stored context is polled per batch so a
// deadline aborts between pages.
type Scan struct {
	tab   *table.Table
	cur   *table.BatchCursor
	ctx   context.Context
	pend  []table.Row
	stats OpStats
	open  bool
}

// NewScan returns a scan operator over t.
func NewScan(t *table.Table) *Scan { return &Scan{tab: t} }

// Open implements Operator. When the context carries a snapshot view
// (store.WithView), the cursor is pinned to that view's commit epoch,
// so the stream returns exactly the rows committed when the view was
// taken even while writers commit new epochs mid-scan.
func (s *Scan) Open(ctx context.Context) error {
	s.stats = OpStats{}
	defer s.stats.timed(time.Now())
	s.ctx = ctx
	tab := s.tab
	if v := store.ViewFrom(ctx); v != nil {
		tab = tab.At(v)
	}
	s.cur = tab.NewBatchCursor()
	s.pend = nil
	s.open = true
	return ctx.Err()
}

// Next implements Operator, emitting one page of rows (split into
// MaxBatchRows chunks if a page somehow exceeds the cap).
func (s *Scan) Next() ([]table.Row, error) {
	defer s.stats.timed(time.Now())
	if !s.open {
		return nil, errOpen(s)
	}
	for {
		if len(s.pend) > 0 {
			n := min(len(s.pend), MaxBatchRows)
			out := s.pend[:n]
			s.pend = s.pend[n:]
			s.stats.emitted(out)
			return out, nil
		}
		if err := s.ctx.Err(); err != nil {
			return nil, err
		}
		_, rows, ok, err := s.cur.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
		s.stats.RowsIn += len(rows)
		s.pend = rows
	}
}

// Close implements Operator.
func (s *Scan) Close() error {
	s.open = false
	s.cur = nil
	s.pend = nil
	return nil
}

// OutSchema implements Operator.
func (s *Scan) OutSchema() table.Schema { return s.tab.Schema() }

// Stats implements Operator.
func (s *Scan) Stats() OpStats { return s.stats }

// Children implements Operator.
func (s *Scan) Children() []Operator { return nil }

func (s *Scan) String() string { return "scan(" + s.tab.Schema().Name + ")" }
