package exec

import (
	"context"
	"time"

	"xst/internal/core"
	"xst/internal/table"
)

// HashJoin is the Relative Product (Def 10.1) in streaming form: Open
// drains the *build* side into a hash index — the one sanctioned
// materialization — and Next streams probe batches against it, so the
// probe side never sits in memory whole. Which side builds is the
// caller's (cost-based) choice via buildLeft; output rows are always
// left-columns ++ right-columns regardless.
//
// The index keys atom join values (Bool/Int/Float/Str) by their
// comparable core.AtomKey — no per-row encoding — falling back to
// canonical encoding for set-valued keys in a separate map, so an
// encoded set can never collide with a Str key.
type HashJoin struct {
	left, right       Operator
	leftCol, rightCol int // key positions in each child's output schema
	buildLeft         bool

	ctx   context.Context
	atoms map[core.AtomKey][]table.Row
	sets  map[string][]table.Row
	queue []table.Row
	done  bool
	stats OpStats
	open  bool
}

// NewHashJoin joins left and right on left.leftCol = right.rightCol,
// building the hash index over the left child if buildLeft.
func NewHashJoin(left, right Operator, leftCol, rightCol int, buildLeft bool) *HashJoin {
	return &HashJoin{left: left, right: right, leftCol: leftCol, rightCol: rightCol, buildLeft: buildLeft}
}

// Open implements Operator: opens both children and consumes the build
// side into the index. Build rows are cloned out of child scratch; the
// context is polled every few hundred rows during the build.
func (j *HashJoin) Open(ctx context.Context) error {
	j.stats = OpStats{}
	defer j.stats.timed(time.Now())
	j.ctx = ctx
	j.atoms = map[core.AtomKey][]table.Row{}
	j.sets = map[string][]table.Row{}
	j.queue = nil
	j.done = false
	j.open = true
	if err := j.left.Open(ctx); err != nil {
		return err
	}
	if err := j.right.Open(ctx); err != nil {
		return err
	}
	build, bcol := j.right, j.rightCol
	if j.buildLeft {
		build, bcol = j.left, j.leftCol
	}
	steps := 0
	for {
		rows, err := build.Next()
		if err != nil {
			return err
		}
		if rows == nil {
			return nil
		}
		j.stats.RowsIn += len(rows)
		for _, r := range rows {
			if steps%256 == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			steps++
			k := r[bcol]
			if ak, ok := core.AtomKeyOf(k); ok {
				j.atoms[ak] = append(j.atoms[ak], r.Clone())
			} else {
				ek := core.Key(k)
				j.sets[ek] = append(j.sets[ek], r.Clone())
			}
			j.stats.HeldRows++
		}
	}
}

// Next implements Operator: pulls probe batches until matches
// accumulate, then emits them in MaxBatchRows chunks. Output rows are
// freshly allocated and retainable.
func (j *HashJoin) Next() ([]table.Row, error) {
	defer j.stats.timed(time.Now())
	if !j.open {
		return nil, errOpen(j)
	}
	probe, pcol := j.left, j.leftCol
	if j.buildLeft {
		probe, pcol = j.right, j.rightCol
	}
	for len(j.queue) == 0 {
		if j.done {
			return nil, nil
		}
		if err := j.ctx.Err(); err != nil {
			return nil, err
		}
		rows, err := probe.Next()
		if err != nil {
			return nil, err
		}
		if rows == nil {
			j.done = true
			return nil, nil
		}
		j.stats.RowsIn += len(rows)
		for _, pr := range rows {
			k := pr[pcol]
			var matches []table.Row
			if ak, ok := core.AtomKeyOf(k); ok {
				matches = j.atoms[ak]
			} else {
				matches = j.sets[core.Key(k)]
			}
			for _, br := range matches {
				l, r := pr, br
				if j.buildLeft {
					l, r = br, pr
				}
				row := make(table.Row, 0, len(l)+len(r))
				row = append(row, l...)
				row = append(row, r...)
				j.queue = append(j.queue, row)
			}
		}
	}
	n := min(len(j.queue), MaxBatchRows)
	out := j.queue[:n]
	j.queue = j.queue[n:]
	j.stats.emitted(out)
	return out, nil
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	j.open = false
	j.atoms = nil
	j.sets = nil
	j.queue = nil
	lerr := j.left.Close()
	rerr := j.right.Close()
	if lerr != nil {
		return lerr
	}
	return rerr
}

// OutSchema implements Operator: left ++ right with colliding names
// auto-qualified, matching the logical plan.Join schema.
func (j *HashJoin) OutSchema() table.Schema {
	return table.JoinSchema(j.left.OutSchema(), j.right.OutSchema())
}

// Stats implements Operator.
func (j *HashJoin) Stats() OpStats { return j.stats }

// Children implements Operator.
func (j *HashJoin) Children() []Operator { return []Operator{j.left, j.right} }

func (j *HashJoin) String() string {
	l, r := j.left.OutSchema(), j.right.OutSchema()
	side := "right"
	if j.buildLeft {
		side = "left"
	}
	return "hashjoin[" + l.Cols[j.leftCol] + "=" + r.Cols[j.rightCol] + " build=" + side + "]"
}
