package xsp

import (
	"context"
	"testing"

	"xst/internal/xtest"
)

// Pipelines poll once per page batch, so a few thousand rows spread over
// many pages give the countdown context plenty of polls to land on.

func TestPipelineCtxCancel(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 4000)
	xtest.AssertCancelAborts(t, 2, func(ctx context.Context) error {
		p := NewPipeline(tbl, &Distinct{})
		_, err := p.CollectCtx(ctx)
		return err
	})
}
