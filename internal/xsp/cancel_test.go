package xsp

import (
	"context"
	"testing"

	"xst/internal/table"
	"xst/internal/xtest"
)

// Pipelines poll once per page batch, so a few thousand rows spread over
// many pages give the countdown context plenty of polls to land on.

func TestPipelineCtxCancel(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 4000)
	xtest.AssertCancelAborts(t, 2, func(ctx context.Context) error {
		p := NewPipeline(tbl, &Distinct{})
		_, err := p.CollectCtx(ctx)
		return err
	})
}

func TestParallelPipelineCtxCancel(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 4000)
	for _, workers := range []int{1, 4, 16} {
		pp := &ParallelPipeline{
			Source:  tbl,
			Factory: func() []Op { return []Op{&Distinct{}} },
			Workers: workers,
		}
		xtest.AssertCancelAborts(t, workers+2, func(ctx context.Context) error {
			return pp.RunCtx(ctx, func([]table.Row) error { return nil })
		})
	}
}
