package xsp

import (
	"errors"
	"sort"
	"testing"

	"xst/internal/core"
	"xst/internal/table"
)

func TestParallelMatchesSequential(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 600)
	factory := func() []Op {
		return []Op{
			&Restrict{Pred: colEq(1, core.Str("boston")), Name: "city"},
			&Project{Cols: []int{0}},
		}
	}
	seq, err := NewPipeline(tbl, factory()...).Collect()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 16} {
		pp := &ParallelPipeline{Source: tbl, Factory: factory, Workers: workers}
		if err := pp.Validate(); err != nil {
			t.Fatal(err)
		}
		par, err := pp.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d rows vs sequential %d", workers, len(par), len(seq))
		}
		a := make([]string, len(par))
		b := make([]string, len(seq))
		for i := range par {
			a[i] = string(table.EncodeRow(nil, par[i]))
			b[i] = string(table.EncodeRow(nil, seq[i]))
		}
		sort.Strings(a)
		sort.Strings(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("workers=%d: row multiset mismatch", workers)
			}
		}
	}
}

func TestParallelCount(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 900)
	pp := &ParallelPipeline{
		Source:  tbl,
		Factory: func() []Op { return nil },
		Workers: 8,
	}
	n, err := pp.Count()
	if err != nil || n != 900 {
		t.Fatalf("parallel count = %d, %v", n, err)
	}
}

func TestParallelEmitError(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 300)
	boom := errors.New("boom")
	pp := &ParallelPipeline{Source: tbl, Factory: func() []Op { return nil }, Workers: 4}
	err := pp.Run(func([]table.Row) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestParallelEmptyTable(t *testing.T) {
	pool := newPool()
	tbl, _ := table.Create(pool, table.Schema{Name: "e", Cols: []string{"x"}})
	pp := &ParallelPipeline{Source: tbl, Factory: func() []Op { return nil }, Workers: 4}
	n, err := pp.Count()
	if err != nil || n != 0 {
		t.Fatalf("empty parallel count = %d, %v", n, err)
	}
}

func TestParallelValidate(t *testing.T) {
	if err := (&ParallelPipeline{}).Validate(); err == nil {
		t.Fatal("missing source must fail")
	}
	pool := newPool()
	tbl := makeUsers(t, pool, 1)
	if err := (&ParallelPipeline{Source: tbl}).Validate(); err == nil {
		t.Fatal("missing factory must fail")
	}
}
