package xsp

import (
	"context"
	"errors"
	"testing"

	"xst/internal/core"
	"xst/internal/store"
	"xst/internal/table"
)

func ctxTestTable(t *testing.T, rows int) *table.Table {
	t.Helper()
	pool := store.NewBufferPool(store.NewMemPager(), 64)
	tb, err := table.Create(pool, table.Schema{Name: "t", Cols: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := tb.Insert(table.Row{core.Int(int64(i)), core.Int(int64(i % 7))}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// TestPipelineRunCtxCancelled: a cancelled context stops the scan
// between batches and surfaces ctx.Err().
func TestPipelineRunCtxCancelled(t *testing.T) {
	tb := ctxTestTable(t, 2000)
	p := NewPipeline(tb, &Restrict{Pred: func(table.Row) bool { return true }, Name: "all"})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := p.RunCtx(ctx, func([]table.Row) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := p.CollectCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("CollectCtx err = %v, want context.Canceled", err)
	}
}

// TestPipelineRunCtxMidScan cancels after the first batch: the scan
// must stop early rather than drain the table.
func TestPipelineRunCtxMidScan(t *testing.T) {
	tb := ctxTestTable(t, 2000)
	p := NewPipeline(tb)
	ctx, cancel := context.WithCancel(context.Background())
	batches := 0
	err := p.RunCtx(ctx, func([]table.Row) error {
		batches++
		cancel()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if batches != 1 {
		t.Fatalf("scan continued for %d batches after cancel", batches)
	}
}
