package xsp

import (
	"fmt"

	"xst/internal/table"
)

// Engine-level boolean operations: the classical set algebra executed
// set-at-a-time over stored tables. Rows compare as whole tuples
// (canonical row encoding), so these are exactly core.Union/Diff/
// Intersect lifted from symbolic sets to paged data —
// TestSetOpsMatchAlgebra pins that identity.

// ErrSchemaMismatch reports set operands with different arities.
var ErrSchemaMismatch = fmt.Errorf("xsp: set operation over mismatched schemas")

func rowKeySet(p *Pipeline) (map[string]bool, error) {
	seen := map[string]bool{}
	err := p.Run(func(rows []table.Row) error {
		for _, r := range rows {
			seen[string(table.EncodeRow(nil, r))] = true
		}
		return nil
	})
	return seen, err
}

func checkArity(a, b *Pipeline) error {
	if a.Schema().Arity() != b.Schema().Arity() {
		return fmt.Errorf("%w: %d vs %d columns", ErrSchemaMismatch,
			a.Schema().Arity(), b.Schema().Arity())
	}
	return nil
}

// Union returns the set union of two pipelines' results (duplicates
// collapse, including duplicates within one input).
func Union(a, b *Pipeline) ([]table.Row, error) {
	if err := checkArity(a, b); err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []table.Row
	add := func(rows []table.Row) error {
		for _, r := range rows {
			k := string(table.EncodeRow(nil, r))
			if !seen[k] {
				seen[k] = true
				out = append(out, r.Clone())
			}
		}
		return nil
	}
	if err := a.Run(add); err != nil {
		return nil, err
	}
	if err := b.Run(add); err != nil {
		return nil, err
	}
	return out, nil
}

// Minus returns a ∼ b: rows of a absent from b (set semantics).
func Minus(a, b *Pipeline) ([]table.Row, error) {
	if err := checkArity(a, b); err != nil {
		return nil, err
	}
	bKeys, err := rowKeySet(b)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []table.Row
	err = a.Run(func(rows []table.Row) error {
		for _, r := range rows {
			k := string(table.EncodeRow(nil, r))
			if !bKeys[k] && !seen[k] {
				seen[k] = true
				out = append(out, r.Clone())
			}
		}
		return nil
	})
	return out, err
}

// Intersect returns a ∩ b (set semantics).
func Intersect(a, b *Pipeline) ([]table.Row, error) {
	if err := checkArity(a, b); err != nil {
		return nil, err
	}
	bKeys, err := rowKeySet(b)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []table.Row
	err = a.Run(func(rows []table.Row) error {
		for _, r := range rows {
			k := string(table.EncodeRow(nil, r))
			if bKeys[k] && !seen[k] {
				seen[k] = true
				out = append(out, r.Clone())
			}
		}
		return nil
	})
	return out, err
}
