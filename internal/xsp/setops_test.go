package xsp

import (
	"testing"

	"xst/internal/core"
	"xst/internal/table"
)

func setOpTables(t *testing.T) (*Pipeline, *Pipeline) {
	t.Helper()
	pool := newPool()
	a, _ := table.Create(pool, table.Schema{Name: "a", Cols: []string{"x"}})
	b, _ := table.Create(pool, table.Schema{Name: "b", Cols: []string{"x"}})
	for i := 0; i < 10; i++ { // a = {0..9}, with duplicates
		a.Insert(table.Row{core.Int(i)})
		if i%2 == 0 {
			a.Insert(table.Row{core.Int(i)})
		}
	}
	for i := 5; i < 15; i++ { // b = {5..14}
		b.Insert(table.Row{core.Int(i)})
	}
	return NewPipeline(a), NewPipeline(b)
}

func rowSet(rows []table.Row) map[int]bool {
	out := map[int]bool{}
	for _, r := range rows {
		out[int(r[0].(core.Int))] = true
	}
	return out
}

func TestEngineUnion(t *testing.T) {
	a, b := setOpTables(t)
	rows, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("union = %d rows, want 15 (dedup)", len(rows))
	}
	got := rowSet(rows)
	for i := 0; i < 15; i++ {
		if !got[i] {
			t.Fatalf("missing %d", i)
		}
	}
}

func TestEngineMinus(t *testing.T) {
	a, b := setOpTables(t)
	rows, err := Minus(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("minus = %d rows, want 5", len(rows))
	}
	got := rowSet(rows)
	for i := 0; i < 5; i++ {
		if !got[i] {
			t.Fatalf("missing %d", i)
		}
	}
	if got[5] {
		t.Fatal("shared row leaked through minus")
	}
}

func TestEngineIntersect(t *testing.T) {
	a, b := setOpTables(t)
	rows, err := Intersect(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("intersect = %d rows, want 5 (5..9)", len(rows))
	}
	got := rowSet(rows)
	for i := 5; i < 10; i++ {
		if !got[i] {
			t.Fatalf("missing %d", i)
		}
	}
}

func TestSetOpsSchemaMismatch(t *testing.T) {
	pool := newPool()
	a, _ := table.Create(pool, table.Schema{Name: "a", Cols: []string{"x"}})
	b, _ := table.Create(pool, table.Schema{Name: "b", Cols: []string{"x", "y"}})
	if _, err := Union(NewPipeline(a), NewPipeline(b)); err == nil {
		t.Fatal("union arity mismatch must fail")
	}
	if _, err := Minus(NewPipeline(a), NewPipeline(b)); err == nil {
		t.Fatal("minus arity mismatch must fail")
	}
	if _, err := Intersect(NewPipeline(a), NewPipeline(b)); err == nil {
		t.Fatal("intersect arity mismatch must fail")
	}
}

// TestSetOpsMatchAlgebra pins the engine ops to the symbolic algebra:
// the engine result equals core.Union/Diff/Intersect of the tables'
// extended sets.
func TestSetOpsMatchAlgebra(t *testing.T) {
	a, b := setOpTables(t)
	ax, err := a.Source.ToXST()
	if err != nil {
		t.Fatal(err)
	}
	bx, err := b.Source.ToXST()
	if err != nil {
		t.Fatal(err)
	}
	toSet := func(rows []table.Row) *core.Set {
		bd := core.NewBuilder(len(rows))
		for _, r := range rows {
			bd.AddClassical(r.Tuple())
		}
		return bd.Set()
	}
	u, _ := Union(a, b)
	if !core.Equal(toSet(u), core.Union(ax, bx)) {
		t.Fatal("engine union ≠ core.Union")
	}
	m, _ := Minus(a, b)
	if !core.Equal(toSet(m), core.Diff(ax, bx)) {
		t.Fatal("engine minus ≠ core.Diff")
	}
	i, _ := Intersect(a, b)
	if !core.Equal(toSet(i), core.Intersect(ax, bx)) {
		t.Fatal("engine intersect ≠ core.Intersect")
	}
}

// TestSetOpsWithRestrictions: set ops compose with pipeline stages.
func TestSetOpsWithRestrictions(t *testing.T) {
	a, b := setOpTables(t)
	evenA := NewPipeline(a.Source, &Restrict{
		Pred: func(r table.Row) bool { return r[0].(core.Int)%2 == 0 },
		Name: "even",
	})
	rows, err := Intersect(evenA, b)
	if err != nil {
		t.Fatal(err)
	}
	got := rowSet(rows)
	if len(got) != 2 || !got[6] || !got[8] {
		t.Fatalf("filtered intersect = %v", got)
	}
}
