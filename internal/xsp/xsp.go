// Package xsp implements the extended-set-processing engine: query
// operators that consume and produce whole row *sets* (page batches)
// instead of single records. Each operator is the executable form of one
// XST operation on the stored extended set:
//
//	Restrict  — σ-Restriction (Def 7.6): keep the members matched by a
//	            selection pattern; realized as a tight selection loop
//	            over each page batch.
//	Project   — σ-Domain (Def 7.4): re-scope members onto the kept
//	            positions; realized as positional projection.
//	Join      — Relative Product (Def 10.1): hash join on the σ2/ω1 key
//	            positions, probing page batches.
//	Distinct  — canonicalization: duplicate members collapse.
//	GroupCount— image partitioning by a key position.
//
// The engine's claim to reproduce is §12's: managing data as sets (page
// batches flowing through composed operations) beats managing it as
// records (one Next call per row). The correctness anchor is that every
// operator provably computes the same set as its symbolic counterpart in
// internal/algebra — see TestXSPMatchesAlgebra.
package xsp

import (
	"context"
	"fmt"

	"xst/internal/core"
	"xst/internal/store"
	"xst/internal/table"
)

// Pred is a row predicate shared with the batch operators.
type Pred func(table.Row) bool

// Op is one set-at-a-time stage: a whole batch in, a whole batch out.
type Op interface {
	// Process filters/transforms a batch. It may return the input slice
	// when nothing changes, or reuse scratch space; callers must not
	// retain the output across calls.
	Process(rows []table.Row) []table.Row
	// OutSchema maps the input schema to the output schema.
	OutSchema(in table.Schema) table.Schema
	// String names the stage with its XST reading.
	String() string
}

// Restrict is the σ-Restriction stage.
type Restrict struct {
	Pred Pred
	Name string // display label, e.g. "city = chicago"
	out  []table.Row
}

// Process implements Op with a selection loop over the batch.
func (r *Restrict) Process(rows []table.Row) []table.Row {
	out := r.out[:0]
	for _, row := range rows {
		if r.Pred(row) {
			out = append(out, row)
		}
	}
	r.out = out
	return out
}

// OutSchema implements Op.
func (r *Restrict) OutSchema(in table.Schema) table.Schema { return in }

func (r *Restrict) String() string { return fmt.Sprintf("restrict[%s]", r.Name) }

// Project is the σ-Domain stage keeping the given positions (0-based).
type Project struct {
	Cols []int
	out  []table.Row
	buf  []core.Value
}

// Process implements Op.
func (p *Project) Process(rows []table.Row) []table.Row {
	out := p.out[:0]
	need := len(rows) * len(p.Cols)
	if cap(p.buf) < need {
		p.buf = make([]core.Value, need)
	}
	buf := p.buf[:0]
	for _, row := range rows {
		start := len(buf)
		for _, c := range p.Cols {
			buf = append(buf, row[c])
		}
		out = append(out, table.Row(buf[start:len(buf):len(buf)]))
	}
	p.out, p.buf = out, buf
	return out
}

// OutSchema implements Op.
func (p *Project) OutSchema(in table.Schema) table.Schema {
	cols := make([]string, len(p.Cols))
	for i, c := range p.Cols {
		cols[i] = in.Cols[c]
	}
	return table.Schema{Name: in.Name, Cols: cols}
}

func (p *Project) String() string { return fmt.Sprintf("project%v", p.Cols) }

// Distinct collapses duplicate rows (set semantics).
type Distinct struct {
	seen map[string]bool
	out  []table.Row
}

// Process implements Op.
func (d *Distinct) Process(rows []table.Row) []table.Row {
	if d.seen == nil {
		d.seen = map[string]bool{}
	}
	out := d.out[:0]
	for _, row := range rows {
		k := string(table.EncodeRow(nil, row))
		if !d.seen[k] {
			d.seen[k] = true
			out = append(out, row)
		}
	}
	d.out = out
	return out
}

// OutSchema implements Op.
func (d *Distinct) OutSchema(in table.Schema) table.Schema { return in }

func (d *Distinct) String() string { return "distinct" }

// Stats counts engine activity for the experiments.
type Stats struct {
	Batches int
	RowsIn  int
	RowsOut int
}

// Pipeline executes a stage chain over a stored table, page batch by
// page batch, with no intermediate materialization — the composed form
// of the query (§11: composition eliminates intermediates).
type Pipeline struct {
	Source *table.Table
	Ops    []Op
	stats  Stats
}

// NewPipeline builds a pipeline.
func NewPipeline(src *table.Table, ops ...Op) *Pipeline {
	return &Pipeline{Source: src, Ops: ops}
}

// Schema returns the output schema of the whole pipeline.
func (p *Pipeline) Schema() table.Schema {
	s := p.Source.Schema()
	for _, op := range p.Ops {
		s = op.OutSchema(s)
	}
	return s
}

// Stats returns the last run's counters.
func (p *Pipeline) Stats() Stats { return p.stats }

// Run streams result batches to emit.
func (p *Pipeline) Run(emit func(rows []table.Row) error) error {
	return p.RunCtx(context.Background(), emit)
}

// RunCtx streams result batches to emit under a cancellation context,
// checked once per page batch — the engine's unit of work — so a query
// deadline aborts a scan between batches with ctx.Err().
func (p *Pipeline) RunCtx(ctx context.Context, emit func(rows []table.Row) error) error {
	p.stats = Stats{}
	return p.Source.ScanBatches(func(_ store.PageID, rows []table.Row) (bool, error) {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		p.stats.Batches++
		p.stats.RowsIn += len(rows)
		for _, op := range p.Ops {
			rows = op.Process(rows)
			if len(rows) == 0 {
				return true, nil
			}
		}
		p.stats.RowsOut += len(rows)
		return true, emit(rows)
	})
}

// Collect materializes the result rows (cloned, safe to retain).
func (p *Pipeline) Collect() ([]table.Row, error) {
	return p.CollectCtx(context.Background())
}

// CollectCtx is Collect under a cancellation context.
func (p *Pipeline) CollectCtx(ctx context.Context) ([]table.Row, error) {
	var out []table.Row
	err := p.RunCtx(ctx, func(rows []table.Row) error {
		for _, r := range rows {
			out = append(out, r.Clone())
		}
		return nil
	})
	return out, err
}

// Count runs the pipeline discarding rows.
func (p *Pipeline) Count() (int, error) {
	n := 0
	err := p.Run(func(rows []table.Row) error {
		n += len(rows)
		return nil
	})
	return n, err
}

// RunStaged executes the same stages the pre-composition way: each stage
// consumes the fully materialized output of the previous one. This is
// the baseline experiment E9 compares against the composed Run.
func (p *Pipeline) RunStaged() ([]table.Row, error) {
	var cur []table.Row
	err := p.Source.ScanBatches(func(_ store.PageID, rows []table.Row) (bool, error) {
		for _, r := range rows {
			cur = append(cur, r.Clone())
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	for _, op := range p.Ops {
		next := make([]table.Row, 0, len(cur))
		// Feed the materialized intermediate through in page-sized
		// chunks so operator scratch reuse stays comparable.
		const chunk = 256
		for i := 0; i < len(cur); i += chunk {
			end := i + chunk
			if end > len(cur) {
				end = len(cur)
			}
			out := op.Process(cur[i:end])
			for _, r := range out {
				next = append(next, r.Clone())
			}
		}
		cur = next
	}
	return cur, nil
}

// GroupCount aggregates rows by a key column set-at-a-time and returns
// (value, count) rows in canonical order. It is GroupAgg with a single
// Count aggregate.
func GroupCount(p *Pipeline, col int) ([]table.Row, error) {
	return GroupAgg(p, col, Agg{Kind: Count})
}
