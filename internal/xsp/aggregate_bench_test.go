package xsp

import (
	"testing"

	"xst/internal/core"
	"xst/internal/table"
)

// BenchmarkGroupAggKeys measures the atom-key fast path against the
// canonical-encoding fallback it replaced: grouping interned scalar
// keys through map[core.Value] skips the per-row core.Key string build
// entirely, which the allocs/op column makes visible.
//
//	go test -bench=GroupAggKeys -benchmem ./internal/xsp/
func BenchmarkGroupAggKeys(b *testing.B) {
	pool := newPool()
	tbl := makeUsers(b, pool, 20000)
	run := func(b *testing.B, forced bool) {
		prev := forceEncodedGroupKeys
		forceEncodedGroupKeys = forced
		defer func() { forceEncodedGroupKeys = prev }()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := GroupAgg(NewPipeline(tbl), 1, Agg{Kind: Count}, Agg{Kind: Sum, Col: 2})
			if err != nil {
				b.Fatal(err)
			}
			if len(rows) != 3 {
				b.Fatalf("groups = %d", len(rows))
			}
		}
	}
	b.Run("atoms", func(b *testing.B) { run(b, false) })
	b.Run("encoded", func(b *testing.B) { run(b, true) })
}

// TestGroupAggKeyPathsAgree pins the fast path to the fallback: both
// keying strategies must produce identical groups, including when atom
// keys and set-valued keys mix in one column.
func TestGroupAggKeyPathsAgree(t *testing.T) {
	pool := newPool()
	tbl, err := table.Create(pool, table.Schema{Name: "mixed", Cols: []string{"k", "v"}})
	if err != nil {
		t.Fatal(err)
	}
	keys := []core.Value{
		core.Int(1), core.Str("a"), core.Bool(true), core.Float(2.5),
		core.S(core.Int(1)),     // set key: must not collide with Int(1)
		core.S(core.Str("a")),   // set key: must not collide with Str("a")
		core.Tuple(core.Int(1)), // tuple key
		core.Str("1"),           // string that looks like an int
	}
	for i := 0; i < 80; i++ {
		if _, err := tbl.Insert(table.Row{keys[i%len(keys)], core.Int(i)}); err != nil {
			t.Fatal(err)
		}
	}
	run := func(forced bool) []table.Row {
		prev := forceEncodedGroupKeys
		forceEncodedGroupKeys = forced
		defer func() { forceEncodedGroupKeys = prev }()
		rows, err := GroupAgg(NewPipeline(tbl), 0, Agg{Kind: Count}, Agg{Kind: Sum, Col: 1})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	fast, slow := run(false), run(true)
	if len(fast) != len(keys) || len(slow) != len(keys) {
		t.Fatalf("group counts: fast=%d slow=%d, want %d", len(fast), len(slow), len(keys))
	}
	for i := range fast {
		for j := range fast[i] {
			if !core.Equal(fast[i][j], slow[i][j]) {
				t.Fatalf("row %d differs: fast=%v slow=%v", i, fast[i], slow[i])
			}
		}
	}
}
