package xsp

import (
	"testing"

	"xst/internal/core"
	"xst/internal/store"
	"xst/internal/table"
)

// XST's selling point over flat relational storage: fields can hold
// whole extended sets — hierarchy without a separate document model.
// These tests store nested sets in table rows and query them with
// set-level predicates, through the same pipeline machinery.

func nestedTable(t testing.TB) *table.Table {
	t.Helper()
	pool := store.NewBufferPool(store.NewMemPager(), 32)
	tbl, err := table.Create(pool, table.Schema{Name: "docs", Cols: []string{"id", "tags", "address"}})
	if err != nil {
		t.Fatal(err)
	}
	tags := func(ss ...string) *core.Set {
		b := core.NewBuilder(len(ss))
		for _, s := range ss {
			b.AddClassical(core.Str(s))
		}
		return b.Set()
	}
	addr := func(city, zip string) *core.Set {
		return core.NewSet(
			core.M(core.Str(city), core.Str("city")),
			core.M(core.Str(zip), core.Str("zip")),
		)
	}
	rows := []table.Row{
		{core.Int(1), tags("db", "theory"), addr("ann-arbor", "48104")},
		{core.Int(2), tags("db", "systems"), addr("boston", "02134")},
		{core.Int(3), tags("theory"), addr("ann-arbor", "48105")},
		{core.Int(4), tags(), addr("chicago", "60601")},
	}
	for _, r := range rows {
		if _, err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestNestedSetsRoundTripThroughStorage(t *testing.T) {
	tbl := nestedTable(t)
	var got []table.Row
	tbl.Scan(func(_ store.RID, r table.Row) (bool, error) {
		got = append(got, r.Clone())
		return true, nil
	})
	if len(got) != 4 {
		t.Fatalf("rows = %d", len(got))
	}
	tags, ok := got[0][1].(*core.Set)
	if !ok || !tags.HasClassical(core.Str("db")) {
		t.Fatalf("nested set lost: %v", got[0][1])
	}
	addr, ok := got[0][2].(*core.Set)
	if !ok || len(addr.ElemsUnder(core.Str("city"))) != 1 {
		t.Fatalf("scoped nested set lost: %v", got[0][2])
	}
}

func TestQueryBySetMembership(t *testing.T) {
	tbl := nestedTable(t)
	// σ(“db” ∈ tags): a membership predicate over a nested field.
	p := NewPipeline(tbl, &Restrict{
		Pred: func(r table.Row) bool {
			s, ok := r[1].(*core.Set)
			return ok && s.HasClassical(core.Str("db"))
		},
		Name: "db∈tags",
	})
	rows, err := p.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("db-tagged rows = %d, want 2", len(rows))
	}
}

func TestQueryBySubset(t *testing.T) {
	tbl := nestedTable(t)
	want := core.S(core.Str("db"), core.Str("theory"))
	p := NewPipeline(tbl, &Restrict{
		Pred: func(r table.Row) bool {
			s, ok := r[1].(*core.Set)
			return ok && core.Subset(want, s)
		},
		Name: "{db,theory}⊆tags",
	})
	rows, err := p.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !core.Equal(rows[0][0], core.Int(1)) {
		t.Fatalf("subset query = %v", rows)
	}
}

func TestQueryByScopedField(t *testing.T) {
	tbl := nestedTable(t)
	// σ(address.city = ann-arbor): read a scoped member inside the
	// nested set — the XST reading of a field access.
	p := NewPipeline(tbl, &Restrict{
		Pred: func(r table.Row) bool {
			s, ok := r[2].(*core.Set)
			return ok && s.Has(core.Str("ann-arbor"), core.Str("city"))
		},
		Name: "city=ann-arbor",
	})
	n, err := p.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("ann-arbor rows = %d, want 2", n)
	}
}

func TestGroupByNestedField(t *testing.T) {
	tbl := nestedTable(t)
	// Group by the whole nested tags value: equal sets group together.
	rows, err := GroupCount(NewPipeline(tbl), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Four distinct tag sets in the fixture.
	if len(rows) != 4 {
		t.Fatalf("tag groups = %d, want 4", len(rows))
	}
}
