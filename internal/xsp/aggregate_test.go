package xsp

import (
	"sort"
	"testing"

	"xst/internal/core"
	"xst/internal/table"
)

func TestGroupAggCountSum(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 90) // cities rotate a,b,c; score = i%10
	rows, err := GroupAgg(NewPipeline(tbl), 1,
		Agg{Kind: Count},
		Agg{Kind: Sum, Col: 2},
		Agg{Kind: Min, Col: 2},
		Agg{Kind: Max, Col: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("groups = %d", len(rows))
	}
	for _, r := range rows {
		if !core.Equal(r[1], core.Int(30)) {
			t.Fatalf("count = %v", r[1])
		}
		// Scores 0..9 appear 3× per city → sum 135.
		if !core.Equal(r[2], core.Int(135)) {
			t.Fatalf("sum = %v", r[2])
		}
		if !core.Equal(r[3], core.Int(0)) || !core.Equal(r[4], core.Int(9)) {
			t.Fatalf("min/max = %v/%v", r[3], r[4])
		}
	}
	// Keys sorted canonically.
	for i := 1; i < len(rows); i++ {
		if core.Compare(rows[i-1][0], rows[i][0]) >= 0 {
			t.Fatal("group keys unsorted")
		}
	}
}

func TestGroupAggSumFloatPromotion(t *testing.T) {
	pool := newPool()
	tbl, _ := table.Create(pool, table.Schema{Name: "m", Cols: []string{"k", "v"}})
	tbl.Insert(table.Row{core.Str("a"), core.Int(1)})
	tbl.Insert(table.Row{core.Str("a"), core.Float(0.5)})
	rows, err := GroupAgg(NewPipeline(tbl), 0, Agg{Kind: Sum, Col: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !core.Equal(rows[0][1], core.Float(1.5)) {
		t.Fatalf("mixed sum = %v", rows[0][1])
	}
}

func TestGroupAggSumNonNumeric(t *testing.T) {
	pool := newPool()
	tbl, _ := table.Create(pool, table.Schema{Name: "m", Cols: []string{"k", "v"}})
	tbl.Insert(table.Row{core.Str("a"), core.Str("nope")})
	if _, err := GroupAgg(NewPipeline(tbl), 0, Agg{Kind: Sum, Col: 1}); err == nil {
		t.Fatal("sum over strings must fail")
	}
}

func TestOrderBy(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 50)
	asc, err := OrderBy(NewPipeline(tbl), 2, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(asc); i++ {
		if core.Compare(asc[i-1][2], asc[i][2]) > 0 {
			t.Fatal("ascending order violated")
		}
	}
	desc, err := OrderBy(NewPipeline(tbl), 2, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(desc); i++ {
		if core.Compare(desc[i-1][2], desc[i][2]) < 0 {
			t.Fatal("descending order violated")
		}
	}
}

func TestTopN(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 200) // ids 0..199 in column 0
	top, err := TopN(NewPipeline(tbl), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 5 {
		t.Fatalf("top = %d rows", len(top))
	}
	for i, want := range []int{199, 198, 197, 196, 195} {
		if !core.Equal(top[i][0], core.Int(want)) {
			t.Fatalf("top[%d] = %v, want %d", i, top[i][0], want)
		}
	}
	// TopN agrees with full sort for random columns.
	full, err := OrderBy(NewPipeline(tbl), 2, true)
	if err != nil {
		t.Fatal(err)
	}
	top2, err := TopN(NewPipeline(tbl), 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	wantVals := make([]string, 7)
	for i := 0; i < 7; i++ {
		wantVals[i] = core.Key(full[i][2])
	}
	gotVals := make([]string, 7)
	for i := 0; i < 7; i++ {
		gotVals[i] = core.Key(top2[i][2])
	}
	sort.Strings(wantVals)
	sort.Strings(gotVals)
	for i := range wantVals {
		if wantVals[i] != gotVals[i] {
			t.Fatalf("TopN values disagree with sort at %d", i)
		}
	}
}

func TestTopNEdgeCases(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 3)
	if rows, _ := TopN(NewPipeline(tbl), 0, 0); rows != nil {
		t.Fatal("TopN(0) must be empty")
	}
	rows, err := TopN(NewPipeline(tbl), 0, 10)
	if err != nil || len(rows) != 3 {
		t.Fatalf("TopN larger than table: %d %v", len(rows), err)
	}
	for i := 1; i < len(rows); i++ {
		if core.Compare(rows[i-1][0], rows[i][0]) < 0 {
			t.Fatal("descending order violated in short TopN")
		}
	}
}
