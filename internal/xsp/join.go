package xsp

import (
	"sort"

	"xst/internal/core"
	"xst/internal/store"
	"xst/internal/table"
)

// Join executes the relative product of two stored tables set-at-a-time:
// the right table is absorbed page-by-page into a hash table on its key
// position (the ω1 re-scope), then the left table streams through in
// page batches probing on its key position (the σ2 re-scope). Output
// rows are left ++ right — the z = x^{/σ1/} ∪ y^{/ω2/} construction with
// the contributions kept at disjoint positions.
type Join struct {
	Left, Right       *table.Table
	LeftCol, RightCol int
	stats             Stats
}

// Stats returns the last run's counters (left-side batches/rows).
func (j *Join) Stats() Stats { return j.stats }

// Schema returns the joined schema.
func (j *Join) Schema() table.Schema {
	l, r := j.Left.Schema(), j.Right.Schema()
	cols := make([]string, 0, len(l.Cols)+len(r.Cols))
	for _, c := range l.Cols {
		cols = append(cols, l.Name+"."+c)
	}
	for _, c := range r.Cols {
		cols = append(cols, r.Name+"."+c)
	}
	return table.Schema{Name: l.Name + "⋈" + r.Name, Cols: cols}
}

// Run streams joined batches to emit. leftOps are applied to left
// batches before probing (composed restriction), rightOps to right
// batches before building.
func (j *Join) Run(leftOps, rightOps []Op, emit func(rows []table.Row) error) error {
	j.stats = Stats{}
	build := map[string][]table.Row{}
	err := j.Right.ScanBatches(func(_ store.PageID, rows []table.Row) (bool, error) {
		for _, op := range rightOps {
			rows = op.Process(rows)
		}
		for _, r := range rows {
			k := core.Key(r[j.RightCol])
			build[k] = append(build[k], r.Clone())
		}
		return true, nil
	})
	if err != nil {
		return err
	}
	var out []table.Row
	return j.Left.ScanBatches(func(_ store.PageID, rows []table.Row) (bool, error) {
		j.stats.Batches++
		j.stats.RowsIn += len(rows)
		for _, op := range leftOps {
			rows = op.Process(rows)
		}
		out = out[:0]
		for _, l := range rows {
			for _, r := range build[core.Key(l[j.LeftCol])] {
				joined := make(table.Row, 0, len(l)+len(r))
				joined = append(joined, l...)
				joined = append(joined, r...)
				out = append(out, joined)
			}
		}
		if len(out) == 0 {
			return true, nil
		}
		j.stats.RowsOut += len(out)
		return true, emit(out)
	})
}

// Collect materializes the join result.
func (j *Join) Collect(leftOps, rightOps []Op) ([]table.Row, error) {
	var out []table.Row
	err := j.Run(leftOps, rightOps, func(rows []table.Row) error {
		out = append(out, rows...)
		return nil
	})
	return out, err
}

// Restructure materializes the source pipeline into a fresh table whose
// rows are reordered by the key column — the paper's "dynamic data
// restructuring": instead of maintaining a prebuilt access structure,
// the set is re-shaped on demand by one set-level pass (a σ-domain
// re-scope at the physical layer). The new table clusters equal keys
// adjacently, so subsequent scans answer key lookups with sequential
// access.
func Restructure(pool *store.BufferPool, p *Pipeline, col int) (*table.Table, error) {
	rows, err := p.Collect()
	if err != nil {
		return nil, err
	}
	sortRows(rows, col)
	out, err := table.Create(pool, p.Schema())
	if err != nil {
		return nil, err
	}
	if err := out.InsertAll(rows); err != nil {
		return nil, err
	}
	return out, nil
}

func sortRows(rows []table.Row, col int) {
	sort.SliceStable(rows, func(i, j int) bool {
		return core.Compare(rows[i][col], rows[j][col]) < 0
	})
}
