package xsp

import (
	"fmt"
	"sort"

	"xst/internal/core"
	"xst/internal/table"
)

// AggKind selects an aggregate function.
type AggKind uint8

// Aggregate kinds. Sum/Min/Max apply to the canonical order (Sum
// requires integer or float columns).
const (
	Count AggKind = iota
	Sum
	Min
	Max
)

func (k AggKind) String() string {
	return [...]string{"count", "sum", "min", "max"}[k]
}

// Agg describes one aggregate over a column.
type Agg struct {
	Kind AggKind
	Col  int // ignored for Count
}

// GroupAgg aggregates a pipeline by a key column, set-at-a-time: batches
// stream through once, accumulators update in place. Output rows are
// (key, agg1, agg2, …) in canonical key order.
func GroupAgg(p *Pipeline, keyCol int, aggs ...Agg) ([]table.Row, error) {
	type acc struct {
		key    core.Value
		counts []int64
		sums   []float64
		isInt  []bool
		mins   []core.Value
		maxs   []core.Value
	}
	groups := map[string]*acc{}
	err := p.Run(func(rows []table.Row) error {
		for _, r := range rows {
			k := core.Key(r[keyCol])
			g := groups[k]
			if g == nil {
				g = &acc{
					key:    r[keyCol],
					counts: make([]int64, len(aggs)),
					sums:   make([]float64, len(aggs)),
					isInt:  make([]bool, len(aggs)),
					mins:   make([]core.Value, len(aggs)),
					maxs:   make([]core.Value, len(aggs)),
				}
				for i := range g.isInt {
					g.isInt[i] = true
				}
				groups[k] = g
			}
			for i, a := range aggs {
				switch a.Kind {
				case Count:
					g.counts[i]++
				case Sum:
					switch v := r[a.Col].(type) {
					case core.Int:
						g.sums[i] += float64(v)
					case core.Float:
						g.sums[i] += float64(v)
						g.isInt[i] = false
					default:
						return fmt.Errorf("xsp: sum over non-numeric %v", v)
					}
				case Min:
					if g.mins[i] == nil || core.Compare(r[a.Col], g.mins[i]) < 0 {
						g.mins[i] = r[a.Col]
					}
				case Max:
					if g.maxs[i] == nil || core.Compare(r[a.Col], g.maxs[i]) > 0 {
						g.maxs[i] = r[a.Col]
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]table.Row, 0, len(groups))
	for _, g := range groups {
		row := make(table.Row, 0, 1+len(aggs))
		row = append(row, g.key)
		for i, a := range aggs {
			switch a.Kind {
			case Count:
				row = append(row, core.Int(g.counts[i]))
			case Sum:
				if g.isInt[i] {
					row = append(row, core.Int(int64(g.sums[i])))
				} else {
					row = append(row, core.Float(g.sums[i]))
				}
			case Min:
				row = append(row, g.mins[i])
			case Max:
				row = append(row, g.maxs[i])
			}
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return core.Compare(out[i][0], out[j][0]) < 0 })
	return out, nil
}

// OrderBy materializes the pipeline and returns rows sorted by the given
// column under the canonical order (descending if desc).
func OrderBy(p *Pipeline, col int, desc bool) ([]table.Row, error) {
	rows, err := p.Collect()
	if err != nil {
		return nil, err
	}
	sort.SliceStable(rows, func(i, j int) bool {
		c := core.Compare(rows[i][col], rows[j][col])
		if desc {
			return c > 0
		}
		return c < 0
	})
	return rows, nil
}

// TopN returns the n largest rows by column col without sorting the
// whole result: a bounded selection maintained set-at-a-time.
func TopN(p *Pipeline, col, n int) ([]table.Row, error) {
	if n <= 0 {
		return nil, nil
	}
	var top []table.Row
	err := p.Run(func(rows []table.Row) error {
		for _, r := range rows {
			if len(top) < n {
				top = append(top, r.Clone())
				if len(top) == n {
					sortRows(top, col)
				}
				continue
			}
			// top is ascending by col; top[0] is the current minimum.
			if core.Compare(r[col], top[0][col]) <= 0 {
				continue
			}
			top[0] = r.Clone()
			// Restore order by bubbling the new row up.
			for i := 1; i < len(top) && core.Compare(top[i-1][col], top[i][col]) > 0; i++ {
				top[i-1], top[i] = top[i], top[i-1]
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(top) < n {
		sortRows(top, col)
	}
	// Return descending (largest first).
	for i, j := 0, len(top)-1; i < j; i, j = i+1, j-1 {
		top[i], top[j] = top[j], top[i]
	}
	return top, nil
}
