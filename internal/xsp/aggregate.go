package xsp

import (
	"fmt"
	"sort"

	"xst/internal/core"
	"xst/internal/table"
)

// AggKind selects an aggregate function.
type AggKind uint8

// Aggregate kinds. Sum/Min/Max apply to the canonical order (Sum
// requires integer or float columns).
const (
	Count AggKind = iota
	Sum
	Min
	Max
)

func (k AggKind) String() string {
	return [...]string{"count", "sum", "min", "max"}[k]
}

// Agg describes one aggregate over a column.
type Agg struct {
	Kind AggKind
	Col  int // ignored for Count
}

// forceEncodedGroupKeys disables the atom-key fast path so benchmarks
// can measure what it saves; never set outside tests.
var forceEncodedGroupKeys = false

type acc struct {
	key    core.Value
	counts []int64
	sums   []float64
	isInt  []bool
	mins   []core.Value
	maxs   []core.Value
}

// AggState accumulates grouped aggregates batch by batch. It is the
// shared core behind GroupAgg, GroupCount, and the streaming aggregate
// operator in internal/exec: feed batches through Absorb, then read the
// result rows once with Rows.
//
// Grouping keys: atom values (Bool/Int/Float/Str) group by their
// comparable core.AtomKey — no per-row encoding. Set-valued keys fall
// back to a second map keyed by the canonical encoding; keeping the two
// maps separate is what makes the fast path sound, since a Str key
// could otherwise collide with an encoded set's byte string.
type AggState struct {
	keyCol int
	aggs   []Agg
	atoms  map[core.AtomKey]*acc
	sets   map[string]*acc
	rows   int
}

// NewAggState returns an empty accumulator grouping on keyCol.
func NewAggState(keyCol int, aggs ...Agg) *AggState {
	return &AggState{
		keyCol: keyCol,
		aggs:   append([]Agg(nil), aggs...),
		atoms:  map[core.AtomKey]*acc{},
		sets:   map[string]*acc{},
	}
}

// Absorb folds one batch into the accumulators. Rows are not retained
// (only their immutable values), so callers may pass operator scratch.
func (s *AggState) Absorb(rows []table.Row) error {
	for _, r := range rows {
		g, err := s.group(r[s.keyCol])
		if err != nil {
			return err
		}
		for i, a := range s.aggs {
			switch a.Kind {
			case Count:
				g.counts[i]++
			case Sum:
				switch v := r[a.Col].(type) {
				case core.Int:
					g.sums[i] += float64(v)
				case core.Float:
					g.sums[i] += float64(v)
					g.isInt[i] = false
				default:
					return fmt.Errorf("xsp: sum over non-numeric %v", v)
				}
			case Min:
				if g.mins[i] == nil || core.Compare(r[a.Col], g.mins[i]) < 0 {
					g.mins[i] = r[a.Col]
				}
			case Max:
				if g.maxs[i] == nil || core.Compare(r[a.Col], g.maxs[i]) > 0 {
					g.maxs[i] = r[a.Col]
				}
			}
		}
	}
	s.rows += len(rows)
	return nil
}

// group finds or creates the accumulator for one key value.
func (s *AggState) group(key core.Value) (*acc, error) {
	if !forceEncodedGroupKeys {
		if ak, ok := core.AtomKeyOf(key); ok {
			g := s.atoms[ak]
			if g == nil {
				g = s.newAcc(key)
				s.atoms[ak] = g
			}
			return g, nil
		}
	}
	k := core.Key(key)
	g := s.sets[k]
	if g == nil {
		g = s.newAcc(key)
		s.sets[k] = g
	}
	return g, nil
}

func (s *AggState) newAcc(key core.Value) *acc {
	g := &acc{
		key:    key,
		counts: make([]int64, len(s.aggs)),
		sums:   make([]float64, len(s.aggs)),
		isInt:  make([]bool, len(s.aggs)),
		mins:   make([]core.Value, len(s.aggs)),
		maxs:   make([]core.Value, len(s.aggs)),
	}
	for i := range g.isInt {
		g.isInt[i] = true
	}
	return g
}

// Merge folds another accumulator built over the same keyCol and aggs
// into s, so partial aggregates computed by independent workers can be
// combined into one result. o must not be used after the merge. All
// four aggregate kinds are decomposable: counts and sums add, min/max
// re-compare, and the int/float promotion for Sum holds only if both
// sides stayed integral.
func (s *AggState) Merge(o *AggState) error {
	if s.keyCol != o.keyCol || len(s.aggs) != len(o.aggs) {
		return fmt.Errorf("xsp: merging incompatible aggregate states")
	}
	for i := range s.aggs {
		if s.aggs[i] != o.aggs[i] {
			return fmt.Errorf("xsp: merging incompatible aggregate states")
		}
	}
	fold := func(dst, src *acc) {
		for i, a := range s.aggs {
			switch a.Kind {
			case Count:
				dst.counts[i] += src.counts[i]
			case Sum:
				dst.sums[i] += src.sums[i]
				dst.isInt[i] = dst.isInt[i] && src.isInt[i]
			case Min:
				if src.mins[i] != nil && (dst.mins[i] == nil || core.Compare(src.mins[i], dst.mins[i]) < 0) {
					dst.mins[i] = src.mins[i]
				}
			case Max:
				if src.maxs[i] != nil && (dst.maxs[i] == nil || core.Compare(src.maxs[i], dst.maxs[i]) > 0) {
					dst.maxs[i] = src.maxs[i]
				}
			}
		}
	}
	for ak, src := range o.atoms {
		if dst := s.atoms[ak]; dst != nil {
			fold(dst, src)
		} else {
			s.atoms[ak] = src
		}
	}
	for k, src := range o.sets {
		if dst := s.sets[k]; dst != nil {
			fold(dst, src)
		} else {
			s.sets[k] = src
		}
	}
	s.rows += o.rows
	return nil
}

// Groups returns the number of distinct keys seen so far.
func (s *AggState) Groups() int { return len(s.atoms) + len(s.sets) }

// RowsIn returns the number of rows absorbed so far.
func (s *AggState) RowsIn() int { return s.rows }

// Rows materializes the aggregate result: (key, agg1, agg2, …) rows in
// canonical key order. The rows are freshly allocated and retainable.
func (s *AggState) Rows() []table.Row {
	out := make([]table.Row, 0, s.Groups())
	emit := func(g *acc) {
		row := make(table.Row, 0, 1+len(s.aggs))
		row = append(row, g.key)
		for i, a := range s.aggs {
			switch a.Kind {
			case Count:
				row = append(row, core.Int(g.counts[i]))
			case Sum:
				if g.isInt[i] {
					row = append(row, core.Int(int64(g.sums[i])))
				} else {
					row = append(row, core.Float(g.sums[i]))
				}
			case Min:
				row = append(row, g.mins[i])
			case Max:
				row = append(row, g.maxs[i])
			}
		}
		out = append(out, row)
	}
	for _, g := range s.atoms {
		emit(g)
	}
	for _, g := range s.sets {
		emit(g)
	}
	sort.Slice(out, func(i, j int) bool { return core.Compare(out[i][0], out[j][0]) < 0 })
	return out
}

// GroupAgg aggregates a pipeline by a key column, set-at-a-time: batches
// stream through once, accumulators update in place. Output rows are
// (key, agg1, agg2, …) in canonical key order.
func GroupAgg(p *Pipeline, keyCol int, aggs ...Agg) ([]table.Row, error) {
	st := NewAggState(keyCol, aggs...)
	if err := p.Run(st.Absorb); err != nil {
		return nil, err
	}
	return st.Rows(), nil
}

// OrderBy materializes the pipeline and returns rows sorted by the given
// column under the canonical order (descending if desc).
func OrderBy(p *Pipeline, col int, desc bool) ([]table.Row, error) {
	rows, err := p.Collect()
	if err != nil {
		return nil, err
	}
	sort.SliceStable(rows, func(i, j int) bool {
		c := core.Compare(rows[i][col], rows[j][col])
		if desc {
			return c > 0
		}
		return c < 0
	})
	return rows, nil
}

// TopN returns the n largest rows by column col without sorting the
// whole result: a bounded selection maintained set-at-a-time.
func TopN(p *Pipeline, col, n int) ([]table.Row, error) {
	if n <= 0 {
		return nil, nil
	}
	var top []table.Row
	err := p.Run(func(rows []table.Row) error {
		for _, r := range rows {
			if len(top) < n {
				top = append(top, r.Clone())
				if len(top) == n {
					sortRows(top, col)
				}
				continue
			}
			// top is ascending by col; top[0] is the current minimum.
			if core.Compare(r[col], top[0][col]) <= 0 {
				continue
			}
			top[0] = r.Clone()
			// Restore order by bubbling the new row up.
			for i := 1; i < len(top) && core.Compare(top[i-1][col], top[i][col]) > 0; i++ {
				top[i-1], top[i] = top[i], top[i-1]
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(top) < n {
		sortRows(top, col)
	}
	// Return descending (largest first).
	for i, j := 0, len(top)-1; i < j; i, j = i+1, j-1 {
		top[i], top[j] = top[j], top[i]
	}
	return top, nil
}
