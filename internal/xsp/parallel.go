package xsp

import (
	"context"
	"fmt"
	"sync"

	"xst/internal/store"
	"xst/internal/table"
)

// OpFactory builds a fresh operator chain. Parallel execution needs one
// chain per worker because operators carry scratch state (selection
// buffers, distinct filters).
type OpFactory func() []Op

// ParallelPipeline executes a stage chain over a table with several
// workers, each owning a disjoint partition of the heap pages — the
// paper-era "backend processors" form of set processing: the set is
// physically partitioned and every partition is processed as a set, in
// parallel. Emit is called from worker goroutines and must be
// thread-safe (Count and Collect below wrap it safely).
type ParallelPipeline struct {
	Source  *table.Table
	Factory OpFactory
	Workers int
}

// Run streams result batches to emit from Workers goroutines.
func (p *ParallelPipeline) Run(emit func(rows []table.Row) error) error {
	return p.RunCtx(context.Background(), emit)
}

// RunCtx is Run under a cancellation context: every worker checks ctx
// before each page it processes, so a deadline stops the whole fan-out
// promptly and RunCtx returns ctx.Err().
func (p *ParallelPipeline) RunCtx(ctx context.Context, emit func(rows []table.Row) error) error {
	workers := p.Workers
	if workers < 1 {
		workers = 1
	}
	pages, err := p.Source.PageIDs()
	if err != nil {
		return err
	}
	if len(pages) == 0 {
		return nil
	}
	if workers > len(pages) {
		workers = len(pages)
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
	}
	// Round-robin page assignment balances chains whose fill varies.
	assign := make([][]store.PageID, workers)
	for i, pg := range pages {
		assign[i%workers] = append(assign[i%workers], pg)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(mine []store.PageID) {
			defer wg.Done()
			ops := p.Factory()
			for _, pg := range mine {
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				rows, err := p.Source.ReadPageRows(pg)
				if err != nil {
					fail(err)
					return
				}
				for _, op := range ops {
					rows = op.Process(rows)
					if len(rows) == 0 {
						break
					}
				}
				if len(rows) == 0 {
					continue
				}
				if err := emit(rows); err != nil {
					fail(err)
					return
				}
			}
		}(assign[w])
	}
	wg.Wait()
	return firstErr
}

// Count runs the pipeline and returns the result row count.
func (p *ParallelPipeline) Count() (int, error) {
	var mu sync.Mutex
	n := 0
	err := p.Run(func(rows []table.Row) error {
		mu.Lock()
		n += len(rows)
		mu.Unlock()
		return nil
	})
	return n, err
}

// Collect materializes the result rows (order unspecified).
func (p *ParallelPipeline) Collect() ([]table.Row, error) {
	var mu sync.Mutex
	var out []table.Row
	err := p.Run(func(rows []table.Row) error {
		mu.Lock()
		for _, r := range rows {
			out = append(out, r.Clone())
		}
		mu.Unlock()
		return nil
	})
	return out, err
}

// Validate reports a misconfigured pipeline early.
func (p *ParallelPipeline) Validate() error {
	if p.Source == nil {
		return fmt.Errorf("xsp: parallel pipeline without source")
	}
	if p.Factory == nil {
		return fmt.Errorf("xsp: parallel pipeline without op factory")
	}
	return nil
}
