package xsp

import (
	"xst/internal/core"
	"xst/internal/store"
	"xst/internal/table"
)

// MergeJoinSorted joins two tables that are already clustered on their
// join keys (e.g. by Restructure): both sides stream through in page
// batches and a co-sequential merge pairs equal-key runs. No hash table
// is built — the restructured physical order *is* the access structure,
// which is exactly the paper's "dynamic restructuring instead of
// prestructured storage" discipline applied to joins.
//
// Both inputs must be non-decreasing on their key columns; Run returns
// ErrUnsorted when it observes a violation.
type MergeJoinSorted struct {
	Left, Right       *table.Table
	LeftCol, RightCol int
}

// ErrUnsorted reports an input that is not clustered on its key.
type ErrUnsorted struct {
	Side string
}

func (e *ErrUnsorted) Error() string {
	return "xsp: merge join input not sorted on key: " + e.Side
}

// rowStream pulls rows page-batch-at-a-time with one-row lookahead.
type rowStream struct {
	rows  []table.Row
	pos   int
	pages []store.PageID
	next  int
	src   *table.Table
}

func newRowStream(t *table.Table) (*rowStream, error) {
	pages, err := t.PageIDs()
	if err != nil {
		return nil, err
	}
	return &rowStream{pages: pages, src: t}, nil
}

// peek returns the current row without consuming it; nil at EOF.
func (s *rowStream) peek() (table.Row, error) {
	for s.pos >= len(s.rows) {
		if s.next >= len(s.pages) {
			return nil, nil
		}
		rows, err := s.src.ReadPageRows(s.pages[s.next])
		if err != nil {
			return nil, err
		}
		s.next++
		s.rows = rows
		s.pos = 0
	}
	return s.rows[s.pos], nil
}

func (s *rowStream) advance() { s.pos++ }

// run collects the maximal run of rows sharing the current key.
func (s *rowStream) run(col int, side string) ([]table.Row, core.Value, error) {
	first, err := s.peek()
	if err != nil || first == nil {
		return nil, nil, err
	}
	key := first[col]
	var out []table.Row
	for {
		r, err := s.peek()
		if err != nil {
			return nil, nil, err
		}
		if r == nil {
			return out, key, nil
		}
		c := core.Compare(r[col], key)
		if c < 0 {
			return nil, nil, &ErrUnsorted{Side: side}
		}
		if c > 0 {
			return out, key, nil
		}
		out = append(out, r.Clone())
		s.advance()
	}
}

// Run streams joined batches (one batch per key-run pair) to emit.
func (j *MergeJoinSorted) Run(emit func(rows []table.Row) error) error {
	ls, err := newRowStream(j.Left)
	if err != nil {
		return err
	}
	rs, err := newRowStream(j.Right)
	if err != nil {
		return err
	}
	lrun, lkey, err := ls.run(j.LeftCol, "left")
	if err != nil {
		return err
	}
	rrun, rkey, err := rs.run(j.RightCol, "right")
	if err != nil {
		return err
	}
	for lrun != nil && rrun != nil {
		switch c := core.Compare(lkey, rkey); {
		case c < 0:
			if lrun, lkey, err = ls.run(j.LeftCol, "left"); err != nil {
				return err
			}
		case c > 0:
			if rrun, rkey, err = rs.run(j.RightCol, "right"); err != nil {
				return err
			}
		default:
			out := make([]table.Row, 0, len(lrun)*len(rrun))
			for _, l := range lrun {
				for _, r := range rrun {
					row := make(table.Row, 0, len(l)+len(r))
					row = append(row, l...)
					row = append(row, r...)
					out = append(out, row)
				}
			}
			if len(out) > 0 {
				if err := emit(out); err != nil {
					return err
				}
			}
			if lrun, lkey, err = ls.run(j.LeftCol, "left"); err != nil {
				return err
			}
			if rrun, rkey, err = rs.run(j.RightCol, "right"); err != nil {
				return err
			}
		}
	}
	return nil
}

// Collect materializes the join result.
func (j *MergeJoinSorted) Collect() ([]table.Row, error) {
	var out []table.Row
	err := j.Run(func(rows []table.Row) error {
		out = append(out, rows...)
		return nil
	})
	return out, err
}
