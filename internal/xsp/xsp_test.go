package xsp

import (
	"testing"

	"xst/internal/algebra"
	"xst/internal/core"
	"xst/internal/store"
	"xst/internal/table"
)

func newPool() *store.BufferPool {
	return store.NewBufferPool(store.NewMemPager(), 64)
}

func makeUsers(t testing.TB, pool *store.BufferPool, n int) *table.Table {
	t.Helper()
	tbl, err := table.Create(pool, table.Schema{Name: "users", Cols: []string{"id", "city", "score"}})
	if err != nil {
		t.Fatal(err)
	}
	cities := []string{"ann-arbor", "boston", "chicago"}
	for i := 0; i < n; i++ {
		if _, err := tbl.Insert(table.Row{core.Int(i), core.Str(cities[i%3]), core.Int(i % 10)}); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func colEq(col int, v core.Value) Pred {
	return func(r table.Row) bool { return core.Equal(r[col], v) }
}

func TestRestrictBatch(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 90)
	p := NewPipeline(tbl, &Restrict{Pred: colEq(1, core.Str("boston")), Name: "city=boston"})
	n, err := p.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 30 {
		t.Fatalf("restricted to %d rows, want 30", n)
	}
	st := p.Stats()
	if st.RowsIn != 90 || st.RowsOut != 30 || st.Batches == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProjectBatch(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 10)
	p := NewPipeline(tbl, &Project{Cols: []int{2, 0}})
	rows, err := p.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 || len(rows[0]) != 2 {
		t.Fatalf("projection shape wrong: %v", rows[0])
	}
	if !core.Equal(rows[4][1], core.Int(4)) {
		t.Fatalf("row 4 = %v", rows[4])
	}
	sch := p.Schema()
	if sch.Cols[0] != "score" || sch.Cols[1] != "id" {
		t.Fatalf("schema = %v", sch.Cols)
	}
}

func TestDistinct(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 60)
	p := NewPipeline(tbl, &Project{Cols: []int{1}}, &Distinct{})
	rows, err := p.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("distinct cities = %d, want 3", len(rows))
	}
}

func TestPipelineComposedEqualsStaged(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 200)
	ops := []Op{
		&Restrict{Pred: colEq(1, core.Str("chicago")), Name: "city"},
		&Restrict{Pred: func(r table.Row) bool { return core.Compare(r[2], core.Int(5)) < 0 }, Name: "score<5"},
		&Project{Cols: []int{0}},
	}
	p := NewPipeline(tbl, ops...)
	composed, err := p.Collect()
	if err != nil {
		t.Fatal(err)
	}
	staged, err := NewPipeline(tbl, ops...).RunStaged()
	if err != nil {
		t.Fatal(err)
	}
	if len(composed) != len(staged) {
		t.Fatalf("composed %d rows vs staged %d rows", len(composed), len(staged))
	}
	for i := range composed {
		if !core.Equal(composed[i][0], staged[i][0]) {
			t.Fatalf("row %d: %v vs %v", i, composed[i], staged[i])
		}
	}
}

func TestGroupCountXSP(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 99)
	rows, err := GroupCount(NewPipeline(tbl), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("groups = %d", len(rows))
	}
	for _, r := range rows {
		if !core.Equal(r[1], core.Int(33)) {
			t.Fatalf("group %v = %v", r[0], r[1])
		}
	}
}

func TestJoin(t *testing.T) {
	pool := newPool()
	users := makeUsers(t, pool, 12)
	orders, err := table.Create(pool, table.Schema{Name: "orders", Cols: []string{"uid", "amount"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		orders.Insert(table.Row{core.Int(i % 12), core.Int(i)})
	}
	j := &Join{Left: orders, Right: users, LeftCol: 0, RightCol: 0}
	rows, err := j.Collect(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 30 {
		t.Fatalf("join rows = %d", len(rows))
	}
	for _, r := range rows {
		if !core.Equal(r[0], r[2]) {
			t.Fatalf("key mismatch: %v", r)
		}
	}
	if j.Schema().Cols[0] != "orders.uid" {
		t.Fatalf("schema = %v", j.Schema().Cols)
	}
	if j.Stats().RowsOut != 30 {
		t.Fatalf("stats = %+v", j.Stats())
	}
}

func TestJoinWithSidedOps(t *testing.T) {
	pool := newPool()
	users := makeUsers(t, pool, 30)
	orders, _ := table.Create(pool, table.Schema{Name: "orders", Cols: []string{"uid", "amount"}})
	for i := 0; i < 90; i++ {
		orders.Insert(table.Row{core.Int(i % 30), core.Int(i)})
	}
	j := &Join{Left: orders, Right: users, LeftCol: 0, RightCol: 0}
	rows, err := j.Collect(
		[]Op{&Restrict{Pred: func(r table.Row) bool { return core.Compare(r[1], core.Int(45)) < 0 }, Name: "amount<45"}},
		[]Op{&Restrict{Pred: colEq(1, core.Str("boston")), Name: "city=boston"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if core.Compare(r[1], core.Int(45)) >= 0 || !core.Equal(r[3], core.Str("boston")) {
			t.Fatalf("sided op leak: %v", r)
		}
	}
	if len(rows) == 0 {
		t.Fatal("expected some joined rows")
	}
}

// TestXSPMatchesAlgebra is the reproduction's engine↔algebra anchor: the
// XSP restriction over stored pages computes exactly the symbolic
// σ-Restriction of the table's extended set, and XSP projection matches
// the σ-Domain.
func TestXSPMatchesAlgebra(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 45)

	// Engine side: σ(city = boston).
	p := NewPipeline(tbl, &Restrict{Pred: colEq(1, core.Str("boston")), Name: "city"})
	engineRows, err := p.Collect()
	if err != nil {
		t.Fatal(err)
	}
	eb := core.NewBuilder(len(engineRows))
	for _, r := range engineRows {
		eb.AddClassical(r.Tuple())
	}
	engineSet := eb.Set()

	// Symbolic side: the selector is the 1-tuple ⟨boston⟩ under
	// σ1 = {2¹}, which re-scopes the pattern onto position 2 of the
	// candidate tuples: a^{\σ1\} = {boston²} ⊆ z.
	whole, err := tbl.ToXST()
	if err != nil {
		t.Fatal(err)
	}
	pattern := core.S(core.Tuple(core.Str("boston")))
	sigma1 := algebra.ScopeSet([2]int{2, 1})
	sym := algebra.SigmaRestrict(whole, sigma1, pattern)
	if !core.Equal(engineSet, sym) {
		t.Fatalf("engine restriction ≠ σ-Restriction:\nengine=%v\nsym=%v", engineSet, sym)
	}

	// Projection: π(id) vs 𝔇_⟨1⟩.
	proj := NewPipeline(tbl, &Project{Cols: []int{0}})
	projRows, err := proj.Collect()
	if err != nil {
		t.Fatal(err)
	}
	pb := core.NewBuilder(len(projRows))
	for _, r := range projRows {
		pb.AddClassical(r.Tuple())
	}
	symProj := algebra.SigmaDomain(whole, algebra.Positions(1))
	if got := pb.Set(); !core.Equal(got, symProj) {
		t.Fatalf("engine projection %v ≠ σ-Domain %v", got, symProj)
	}
}

// TestXSPJoinMatchesRelativeProduct ties the engine join to Def 10.1
// (§10 case 8 shape: match on key positions, concatenate the rest).
func TestXSPJoinMatchesRelativeProduct(t *testing.T) {
	pool := newPool()
	l, _ := table.Create(pool, table.Schema{Name: "l", Cols: []string{"k", "a"}})
	r, _ := table.Create(pool, table.Schema{Name: "r", Cols: []string{"k", "b"}})
	for i := 0; i < 12; i++ {
		l.Insert(table.Row{core.Int(i % 4), core.Str("a" + string(rune('0'+i)))})
		r.Insert(table.Row{core.Int(i % 3), core.Str("b" + string(rune('0'+i)))})
	}
	j := &Join{Left: l, Right: r, LeftCol: 0, RightCol: 0}
	rows, err := j.Collect(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	engine := core.NewBuilder(len(rows))
	for _, row := range rows {
		engine.AddClassical(row.Tuple())
	}

	lx, _ := l.ToXST()
	rx, _ := r.ToXST()
	// σ keeps left positions 1,2 and keys on position 1; ω keys on
	// position 1 and contributes G's pair at positions 3,4.
	spec := algebra.RelProdSpec{
		Sigma: algebra.NewSigma(
			algebra.ScopeSet([2]int{1, 1}, [2]int{2, 2}),
			algebra.ScopeSet([2]int{1, 1}),
		),
		Omega: algebra.NewSigma(
			algebra.ScopeSet([2]int{1, 1}),
			algebra.ScopeSet([2]int{1, 3}, [2]int{2, 4}),
		),
	}
	sym := spec.Apply(lx, rx)
	if !core.Equal(engine.Set(), sym) {
		t.Fatalf("engine join ≠ relative product:\nengine=%v\nsym=%v", engine.Set(), sym)
	}
}

func TestRestructureClustersKeys(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 60)
	re, err := Restructure(pool, NewPipeline(tbl), 1) // cluster by city
	if err != nil {
		t.Fatal(err)
	}
	if re.Count() != 60 {
		t.Fatalf("restructured count = %d", re.Count())
	}
	var last core.Value
	changes := 0
	re.Scan(func(_ store.RID, r table.Row) (bool, error) {
		if last != nil && !core.Equal(last, r[1]) {
			changes++
		}
		last = r[1]
		return true, nil
	})
	if changes != 2 {
		t.Fatalf("city changes along scan = %d, want 2 (clustered)", changes)
	}
}

func TestBatchTouchesPoolPerPage(t *testing.T) {
	pool := newPool()
	tbl := makeUsers(t, pool, 300)
	pool.ResetStats()
	if _, err := NewPipeline(tbl).Count(); err != nil {
		t.Fatal(err)
	}
	st := pool.Stats()
	p := NewPipeline(tbl)
	p.Run(func([]table.Row) error { return nil })
	if int(st.Hits+st.Misses) > p.Stats().Batches+1 {
		t.Fatalf("set scan touched pool %d times for %d pages", st.Hits+st.Misses, p.Stats().Batches)
	}
}
