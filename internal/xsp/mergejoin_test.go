package xsp

import (
	"sort"
	"testing"

	"xst/internal/core"
	"xst/internal/table"
	"xst/internal/xtest"
)

func TestMergeJoinSortedMatchesHashJoin(t *testing.T) {
	pool := newPool()
	l, _ := table.Create(pool, table.Schema{Name: "l", Cols: []string{"k", "a"}})
	r, _ := table.Create(pool, table.Schema{Name: "r", Cols: []string{"k", "b"}})
	rnd := xtest.NewRand(0x77)
	for i := 0; i < 200; i++ {
		l.Insert(table.Row{core.Int(rnd.Intn(30)), core.Int(i)})
		r.Insert(table.Row{core.Int(rnd.Intn(30)), core.Int(1000 + i)})
	}
	// Restructure both sides on the key, then merge.
	ls, err := Restructure(pool, NewPipeline(l), 0)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Restructure(pool, NewPipeline(r), 0)
	if err != nil {
		t.Fatal(err)
	}
	mj := &MergeJoinSorted{Left: ls, Right: rs, LeftCol: 0, RightCol: 0}
	merged, err := mj.Collect()
	if err != nil {
		t.Fatal(err)
	}
	hj := &Join{Left: l, Right: r, LeftCol: 0, RightCol: 0}
	hashed, err := hj.Collect(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != len(hashed) {
		t.Fatalf("merge %d rows vs hash %d rows", len(merged), len(hashed))
	}
	a := make([]string, len(merged))
	b := make([]string, len(hashed))
	for i := range merged {
		a[i] = string(table.EncodeRow(nil, merged[i]))
		b[i] = string(table.EncodeRow(nil, hashed[i]))
	}
	sort.Strings(a)
	sort.Strings(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row multiset mismatch at %d", i)
		}
	}
	// Merge output is key-ordered.
	for i := 1; i < len(merged); i++ {
		if core.Compare(merged[i-1][0], merged[i][0]) > 0 {
			t.Fatal("merge join output unordered")
		}
	}
}

func TestMergeJoinSortedDetectsUnsorted(t *testing.T) {
	pool := newPool()
	l, _ := table.Create(pool, table.Schema{Name: "l", Cols: []string{"k"}})
	r, _ := table.Create(pool, table.Schema{Name: "r", Cols: []string{"k"}})
	l.Insert(table.Row{core.Int(5)})
	l.Insert(table.Row{core.Int(1)}) // violation
	r.Insert(table.Row{core.Int(1)})
	r.Insert(table.Row{core.Int(5)})
	mj := &MergeJoinSorted{Left: l, Right: r, LeftCol: 0, RightCol: 0}
	_, err := mj.Collect()
	if err == nil {
		t.Fatal("unsorted input must be rejected")
	}
	if _, ok := err.(*ErrUnsorted); !ok {
		t.Fatalf("error type = %T", err)
	}
}

func TestMergeJoinSortedEmptyAndDisjoint(t *testing.T) {
	pool := newPool()
	l, _ := table.Create(pool, table.Schema{Name: "l", Cols: []string{"k"}})
	r, _ := table.Create(pool, table.Schema{Name: "r", Cols: []string{"k"}})
	mj := &MergeJoinSorted{Left: l, Right: r, LeftCol: 0, RightCol: 0}
	if rows, err := mj.Collect(); err != nil || len(rows) != 0 {
		t.Fatalf("empty join = %d rows, %v", len(rows), err)
	}
	// Disjoint keys join to nothing.
	l.Insert(table.Row{core.Int(1)})
	l.Insert(table.Row{core.Int(2)})
	r.Insert(table.Row{core.Int(3)})
	r.Insert(table.Row{core.Int(4)})
	if rows, err := mj.Collect(); err != nil || len(rows) != 0 {
		t.Fatalf("disjoint join = %d rows, %v", len(rows), err)
	}
}
