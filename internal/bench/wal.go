package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"xst/internal/catalog"
	"xst/internal/store"
	"xst/internal/wal"
	"xst/internal/workload"
)

// E18DurabilityOverhead measures what the write-ahead log costs: the
// same event stream is loaded into (a) an in-memory database, (b) a
// durable database committing batch-sized transactions — one fsync per
// batch, the group-commit shape Database.Load provides, (c) a durable
// database in relaxed SetNoSync mode, and (d) a durable database
// committing one row per transaction — one fsync per row, the naive
// shape. The claim under test: per-statement fsync regresses throughput
// by far more than 3×, and batching commits amortizes that back —
// batched durable load must beat the naive per-row rate by ≥3×. As a
// correctness anchor, the fsynced database is closed and reopened and
// must recover every row.
func E18DurabilityOverhead(cfg Config) Result {
	const id = "E18"
	rows, batch, naiveRows := 50_000, 500, 1_000
	if cfg.Quick {
		rows, batch, naiveRows = 5_000, 500, 120
	}
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "xst-e18-")
	if err != nil {
		return errResult(id, err)
	}
	defer os.RemoveAll(dir)

	// loadStream commits total rows in chunk-sized transactions.
	loadStream := func(db *catalog.Database, total, chunk int) (time.Duration, error) {
		if _, err := db.CreateTable(workload.EventsSchema()); err != nil {
			return 0, err
		}
		start := time.Now()
		for off := 0; off < total; off += chunk {
			n := chunk
			if total-off < n {
				n = total - off
			}
			if err := db.Load(ctx, "events", workload.EventRows(cfg.Seed, off/chunk, n)); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	openDurable := func(name string) (*catalog.Database, *wal.FileLog, error) {
		pager, err := store.OpenFilePager(filepath.Join(dir, name+".pages"))
		if err != nil {
			return nil, nil, err
		}
		log, err := wal.OpenFileLog(filepath.Join(dir, name+".wal"))
		if err != nil {
			return nil, nil, err
		}
		db, err := catalog.CreateDurable(pager, log, 1024)
		return db, log, err
	}

	// (a) In-memory baseline.
	mem, err := catalog.Create(store.NewMemPager(), 1024)
	if err != nil {
		return errResult(id, err)
	}
	memT, err := loadStream(mem, rows, batch)
	if err != nil {
		return errResult(id, err)
	}

	// (b) Durable, batched commits: one fsync per batch.
	dbF, logF, err := openDurable("fsync")
	if err != nil {
		return errResult(id, err)
	}
	fsyncT, err := loadStream(dbF, rows, batch)
	if err != nil {
		return errResult(id, err)
	}
	if err := dbF.Close(); err != nil {
		return errResult(id, err)
	}
	if err := logF.Close(); err != nil {
		return errResult(id, err)
	}

	// (c) Durable, relaxed: log appends without fsync.
	dbN, _, err := openDurable("nosync")
	if err != nil {
		return errResult(id, err)
	}
	dbN.WAL().SetNoSync(true)
	nosyncT, err := loadStream(dbN, rows, batch)
	if err != nil {
		return errResult(id, err)
	}
	dbN.Close()

	// (d) Durable, naive: one row per transaction, one fsync per row.
	dbR, _, err := openDurable("perrow")
	if err != nil {
		return errResult(id, err)
	}
	naiveT, err := loadStream(dbR, naiveRows, 1)
	if err != nil {
		return errResult(id, err)
	}
	dbR.Close()

	// Reopen the fsynced database: every committed row must be there.
	pager, err := store.OpenFilePager(filepath.Join(dir, "fsync.pages"))
	if err != nil {
		return errResult(id, err)
	}
	log, err := wal.OpenFileLog(filepath.Join(dir, "fsync.wal"))
	if err != nil {
		return errResult(id, err)
	}
	re, _, err := catalog.OpenDurable(pager, log, 1024)
	if err != nil {
		return errResult(id, err)
	}
	defer re.Close()
	tab, err := re.Table("events")
	if err != nil {
		return errResult(id, err)
	}
	recovered := tab.Count()

	rate := func(n int, d time.Duration) float64 {
		if d <= 0 {
			return 0
		}
		return float64(n) / d.Seconds()
	}
	memR, fsyncR, nosyncR, naiveR := rate(rows, memT), rate(rows, fsyncT), rate(rows, nosyncT), rate(naiveRows, naiveT)
	over := func(r float64) string {
		if r == 0 {
			return "inf"
		}
		return fmt.Sprintf("%.2fx", memR/r)
	}
	pass := recovered == rows && fsyncR > 3*naiveR

	lines := tableRows(
		[]string{"mode", "rows", "txn size", "time", "rows/s", "overhead"},
		[][]string{
			{"memory (no wal)", fmt.Sprintf("%d", rows), fmt.Sprintf("%d", batch), memT.String(), fmt.Sprintf("%.0f", memR), "1.00x"},
			{"wal fsync/batch", fmt.Sprintf("%d", rows), fmt.Sprintf("%d", batch), fsyncT.String(), fmt.Sprintf("%.0f", fsyncR), over(fsyncR)},
			{"wal nosync", fmt.Sprintf("%d", rows), fmt.Sprintf("%d", batch), nosyncT.String(), fmt.Sprintf("%.0f", nosyncR), over(nosyncR)},
			{"wal fsync/row", fmt.Sprintf("%d", naiveRows), "1", naiveT.String(), fmt.Sprintf("%.0f", naiveR), over(naiveR)},
		})
	lines = append(lines, fmt.Sprintf("reopen after close: recovered %d/%d rows; batched/naive = %.1fx",
		recovered, rows, fsyncR/naiveR))
	return Result{
		ID:    id,
		Title: "Durability overhead (WAL fsync ablation, group-commit batching)",
		Lines: lines,
		Pass:  pass,
	}
}
