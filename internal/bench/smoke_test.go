package bench

import "testing"

func TestSmokeAll(t *testing.T) {
	for _, r := range All(Config{Quick: true, Seed: 42}) {
		t.Log("\n" + r.Render())
		if !r.Pass {
			t.Errorf("%s failed", r.ID)
		}
	}
}
