package bench

import (
	"fmt"
	"strings"

	"xst/internal/algebra"
	"xst/internal/core"
	"xst/internal/cst"
	"xst/internal/process"
	"xst/internal/spaces"
	"xst/internal/xtest"
)

// E1SpaceLattice regenerates the Appendix D figure: the 16 basic process
// spaces (8 function spaces), their separation across the universe
// family, and the Boolean-lattice structure of the function spaces.
func E1SpaceLattice() Result {
	fam := spaces.DefaultFamily()
	basic := spaces.BasicSpaces()
	fnSpecs := spaces.FunctionSpaces()

	nBasic, _ := fam.DistinctNonEmpty(basic)
	nFn, _ := fam.DistinctNonEmpty(fnSpecs)
	edges := fam.LatticeEdges(fnSpecs)
	consOK := spaces.Consequence61() == nil

	var rows [][]string
	for _, s := range basic {
		rows = append(rows, []string{s.String(), fmt.Sprintf("%d", fam.Count(s))})
	}
	lines := tableRows([]string{"space", "population(family)"}, rows)
	lines = append(lines, "", "function-space lattice (§6 figure):")
	for _, l := range strings.Split(strings.TrimRight(spaces.RenderLattice(fam, fnSpecs), "\n"), "\n") {
		lines = append(lines, "  "+l)
	}
	lines = append(lines,
		"",
		fmt.Sprintf("distinct non-empty basic spaces:    %d (paper: 16)", nBasic),
		fmt.Sprintf("distinct non-empty function spaces: %d (paper: 8)", nFn),
		fmt.Sprintf("function-lattice direct edges:      %d (Boolean 3-cube: 12)", len(edges)),
		fmt.Sprintf("Consequence 6.1 containments:       %v", consOK),
	)
	return Result{
		ID:    "E1",
		Title: "Appendix D lattice: 16 basic process spaces, 8 function spaces",
		Lines: lines,
		Pass:  nBasic == 16 && nFn == 8 && len(edges) == 12 && consOK,
	}
}

// E2RefinedSpaces regenerates the Appendix E figure: the refined marker
// spaces. The function-space count (12) is reproduced exactly; the
// process-space count depends on the marker conventions of the paper's
// unavailable graphic, so both reconstructions are reported: the
// injective-"-" reading and the strict bijective-"-" reading.
func E2RefinedSpaces() Result {
	fam := spaces.DefaultFamily()
	refined := spaces.RefinedSpaces()

	nAll, _ := fam.DistinctNonEmpty(refined)

	var fnSpecs []spaces.Spec
	for _, s := range refined {
		if s.Function {
			fnSpecs = append(fnSpecs, s)
		}
	}
	nFn, fnReps := fam.DistinctNonEmpty(fnSpecs)

	// Strict "-" reading: one-to-one also forbids one-to-many, i.e. the
	// marker implies Function.
	var strict []spaces.Spec
	seen := map[string]bool{}
	for _, s := range refined {
		if s.OneToOne {
			s.Function = true
		}
		if s.Legal() && !seen[s.String()] {
			seen[s.String()] = true
			strict = append(strict, s)
		}
	}
	nStrict, _ := fam.DistinctNonEmpty(strict)

	var rows [][]string
	for _, s := range fnReps {
		rows = append(rows, []string{s.String(), fmt.Sprintf("%d", fam.Count(s))})
	}
	lines := tableRows([]string{"function space", "population(family)"}, rows)
	lines = append(lines, "", "refined function-space lattice (Appendix E figure):")
	for _, l := range strings.Split(strings.TrimRight(spaces.RenderLattice(fam, fnReps), "\n"), "\n") {
		lines = append(lines, "  "+l)
	}
	lines = append(lines,
		"",
		fmt.Sprintf("distinct non-empty refined function spaces: %d (paper: 12)", nFn),
		fmt.Sprintf("refined process spaces, injective '-':      %d (paper figure: 29)", nAll),
		fmt.Sprintf("refined process spaces, strict '-':         %d (paper figure: 29)", nStrict),
	)
	return Result{
		ID:    "E2",
		Title: "Appendix E refinement: 29 process spaces, 12 function spaces",
		Lines: lines,
		Pass:  nFn == 12,
	}
}

// E3RelativeProduct regenerates the §10 table: the eight σ/ω
// parameterizations applied to the paper's operand shapes.
func E3RelativeProduct() Result {
	specs := algebra.Section10Specs()
	str := func(s string) core.Value { return core.Str(s) }
	pair := func(a, b string) *core.Set { return core.S(core.Tuple(str(a), str(b))) }

	type caseSpec struct {
		f, g *core.Set
		want *core.Set
		desc string
	}
	cases := []caseSpec{
		{pair("a", "b"), pair("b", "c"), pair("a", "c"), "⟨a,b⟩/⟨b,c⟩→⟨a,c⟩"},
		{pair("a", "b"), pair("b", "c"), core.S(core.Tuple(str("a"), str("b"), str("c"))), "⟨a,b⟩/⟨b,c⟩→⟨a,b,c⟩"},
		{pair("a", "b"), pair("a", "c"), core.S(core.Tuple(str("a"), str("b"), str("c"))), "⟨a,b⟩/⟨a,c⟩→⟨a,b,c⟩"},
		{pair("a", "b"), pair("a", "c"), pair("b", "c"), "⟨a,b⟩/⟨a,c⟩→⟨b,c⟩"},
		{pair("a", "b"), pair("c", "b"), core.S(core.Tuple(str("a"), str("c"), str("b"))), "⟨a,b⟩/⟨c,b⟩→⟨a,c,b⟩"},
		{pair("a", "b"), pair("c", "b"), pair("a", "c"), "⟨a,b⟩/⟨c,b⟩→⟨a,c⟩"},
		{
			core.S(core.Tuple(str("a"), str("b"), str("c"))),
			core.S(core.Tuple(str("d"), str("e"), str("c"), str("b"))),
			core.S(core.Tuple(str("b"), str("c"), str("a"), str("e"), str("b"), str("c"), str("d"), str("d"))),
			"3-tup/4-tup→8-tup",
		},
		{
			core.S(core.Tuple(str("k1"), str("k2"), str("k3"), str("f4"), str("f5"))),
			core.S(core.Tuple(str("k1"), str("k2"), str("k3"), str("g4"), str("g5"), str("g6"))),
			core.S(core.Tuple(str("k1"), str("k2"), str("k3"), str("f4"), str("f5"), str("g4"), str("g5"), str("g6"))),
			"5-tup⋈6-tup→8-tup",
		},
	}
	pass := true
	var rows [][]string
	for i, c := range cases {
		got := specs[i].Apply(c.f, c.g)
		ok := core.Equal(got, c.want)
		pass = pass && ok
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1), c.desc, fmt.Sprintf("%v", got), fmt.Sprintf("%v", ok),
		})
	}
	return Result{
		ID:    "E3",
		Title: "§10 table: eight relative-product parameterizations",
		Lines: tableRows([]string{"case", "mapping", "result", "match"}, rows),
		Pass:  pass,
	}
}

// E4NestedApplication regenerates Appendix A: both interpretations of
// f_(σ) g_(ω) (h) are non-empty and differ.
func E4NestedApplication() Result {
	str := func(s string) core.Value { return core.Str(s) }
	emp := func(n int) *core.Set {
		xs := make([]core.Value, n)
		for i := range xs {
			xs[i] = core.Empty()
		}
		return core.Tuple(xs...)
	}
	member := func(xs ...string) core.Member {
		vs := make([]core.Value, len(xs))
		for i, x := range xs {
			vs[i] = str(x)
		}
		return core.M(core.Tuple(vs...), emp(len(xs)))
	}
	f := process.New(
		core.NewSet(member("y", "z"), member("a", "x", "b", "k")),
		algebra.NewSigma(algebra.Positions(1, 3), algebra.Positions(2, 4)))
	g := process.New(
		core.NewSet(member("x", "y"), member("a", "b")),
		algebra.StdSigma())
	h := core.NewSet(member("x"))

	seq := f.Apply(g.Apply(h))
	nested := f.ApplyProc(g).Apply(h)
	wantSeq := core.NewSet(member("z"))
	wantNested := core.NewSet(member("k"))

	pass := !seq.IsEmpty() && !nested.IsEmpty() && !core.Equal(seq, nested) &&
		core.Equal(seq, wantSeq) && core.Equal(nested, wantNested)
	return Result{
		ID:    "E4",
		Title: "Appendix A: nested-application ambiguity",
		Lines: []string{
			fmt.Sprintf("f_(σ)(g_(ω)(h))   = %v  (paper: {⟨z⟩})", seq),
			fmt.Sprintf("(f_(σ)(g_(ω)))(h) = %v  (paper: {⟨k⟩})", nested),
			fmt.Sprintf("both non-empty: %v, distinct: %v",
				!seq.IsEmpty() && !nested.IsEmpty(), !core.Equal(seq, nested)),
		},
		Pass: pass,
	}
}

// E5SelfApplication regenerates Appendix B: one carrier f yields all
// four unary behaviors g1..g4 on A = {⟨a⟩,⟨b⟩} by self-application.
func E5SelfApplication() Result {
	tup := func(xs ...string) *core.Set {
		vs := make([]core.Value, len(xs))
		for i, x := range xs {
			vs[i] = core.Str(x)
		}
		return core.Tuple(vs...)
	}
	f := core.S(tup("a", "a", "a", "b", "b"), tup("b", "b", "a", "a", "b"))
	sigma := algebra.StdSigma()
	omega := algebra.NewSigma(algebra.Positions(1), algebra.Positions(1, 3, 4, 5, 2))
	fs, fw := process.New(f, sigma), process.New(f, omega)

	gs := []process.Proc{
		process.Std(core.S(tup("a", "a"), tup("b", "b"))),
		process.Std(core.S(tup("a", "a"), tup("b", "a"))),
		process.Std(core.S(tup("a", "b"), tup("b", "a"))),
		process.Std(core.S(tup("a", "b"), tup("b", "b"))),
	}
	derived := []process.Proc{
		fs,
		fw.ApplyProc(fs),
		fw.ApplyProc(fw).ApplyProc(fs),
		fw.ApplyProc(fw).ApplyProc(fw).ApplyProc(fs),
	}
	names := []string{
		"f_(σ)",
		"f_(ω)(f_(σ))",
		"(f_(ω)(f_(ω)))(f_(σ))",
		"(f_(ω)(f_(ω))(f_(ω)))(f_(σ))",
	}
	pass := true
	var rows [][]string
	for i := range gs {
		ok := derived[i].Equivalent(gs[i])
		pass = pass && ok
		rows = append(rows, []string{
			names[i], fmt.Sprintf("g%d", i+1), fmt.Sprintf("%v", derived[i].F), fmt.Sprintf("%v", ok),
		})
	}
	idOK := fs.Equivalent(process.Identity(core.S(tup("a"), tup("b"))))
	lines := tableRows([]string{"expression", "behaves as", "carrier", "match"}, rows)
	lines = append(lines, "", fmt.Sprintf("f_(σ) = I_A: %v", idOK))
	return Result{
		ID:    "E5",
		Title: "Appendix B: self-application derives g1…g4 from one carrier",
		Lines: lines,
		Pass:  pass && idOK,
	}
}

// E6CSTEmbedding regenerates Example 8.1, Example 9.1 (√16) and
// Theorem 9.10 (every CST function embeds), plus randomized CST↔XST
// agreement on images and relative products.
func E6CSTEmbedding(cfg Config) Result {
	str := func(s string) core.Value { return core.Str(s) }
	// Example 8.1.
	f81 := core.NewSet(
		core.M(core.Tuple(str("a"), str("x")), core.Tuple(str("A"), str("Z"))),
		core.M(core.Tuple(str("b"), str("y")), core.Tuple(str("B"), str("Y"))),
		core.M(core.Tuple(str("c"), str("x")), core.Tuple(str("A"), str("Z"))),
	)
	fwd := algebra.Image(f81, core.NewSet(core.M(core.Tuple(str("a")), core.Tuple(str("A")))), algebra.StdSigma())
	inv := algebra.Image(f81, core.NewSet(core.M(core.Tuple(str("x")), core.Tuple(str("Z")))), algebra.InverseStdSigma())
	ex81 := core.Equal(fwd, core.NewSet(core.M(core.Tuple(str("x")), core.Tuple(str("Z"))))) && inv.Len() == 2

	// Example 9.1.
	sqrt16 := core.NewSet(
		core.M(core.Tuple(core.Int(2)), core.Tuple(str("+"))),
		core.M(core.Tuple(core.Int(-2)), core.Tuple(str("-"))),
		core.M(core.Tuple(str("2i")), core.Tuple(str("i"))),
		core.M(core.Tuple(str("-2i")), core.Tuple(str("-i"))),
	)
	vPlus, okPlus := algebra.SigmaValue(sqrt16, str("+"))
	ex91 := okPlus && core.Equal(vPlus, core.Int(2))

	// Theorem 9.10 + randomized CST↔XST agreement.
	r := xtest.NewRand(cfg.Seed)
	trials := 200
	if cfg.Quick {
		trials = 40
	}
	agree := 0
	for i := 0; i < trials; i++ {
		var ps []cst.Pair
		for j := 0; j < 1+r.Intn(8); j++ {
			ps = append(ps, cst.Pair{X: core.Int(r.Intn(5)), Y: core.Int(r.Intn(5))})
		}
		rel := cst.NewRelation(ps...)
		a := cst.NewElemSet(core.Int(r.Intn(6)), core.Int(r.Intn(6)))
		xOut := algebra.Image(rel.ToXST(), cst.ElemsToXST(a), algebra.StdSigma())
		got, ok := cst.XSTToElems(xOut)
		if ok && got.Equal(rel.Image(a)) {
			agree++
		}
	}
	pass := ex81 && ex91 && agree == trials
	return Result{
		ID:    "E6",
		Title: "§8/§9: CST embedding (Ex 8.1, Ex 9.1, Thm 9.10)",
		Lines: []string{
			fmt.Sprintf("Example 8.1 forward/inverse:       %v", ex81),
			fmt.Sprintf("Example 9.1 𝒱_+(√16) = 2:          %v", ex91),
			fmt.Sprintf("randomized CST↔XST image agreement: %d/%d", agree, trials),
		},
		Pass: pass,
	}
}

// E7AlgebraicLaws regenerates the law tables: Consequence 7.1 (domain),
// C.1 (image) and 8.1 (function properties) verified over randomized
// extended sets, reported law by law.
func E7AlgebraicLaws(cfg Config) Result {
	r := xtest.NewRand(cfg.Seed ^ 0xE7)
	gen := xtest.DefaultConfig()
	trials := 500
	if cfg.Quick {
		trials = 80
	}

	randSigma := func() *core.Set {
		n := 1 + r.Intn(3)
		b := core.NewBuilder(n)
		for i := 0; i < n; i++ {
			b.Add(core.Int(1+r.Intn(4)), core.Int(1+r.Intn(4)))
		}
		return b.Set()
	}
	randCarrier := func() *core.Set {
		n := r.Intn(5)
		b := core.NewBuilder(n)
		for i := 0; i < n; i++ {
			b.AddClassical(gen.Tuple(r, 4))
		}
		return b.Set()
	}

	type law struct {
		name string
		chk  func() bool
	}
	laws := []law{
		{"7.1(a) 𝔇(Q∪S)=𝔇Q∪𝔇S", func() bool {
			q, s, sg := randCarrier(), randCarrier(), randSigma()
			return core.Equal(algebra.SigmaDomain(core.Union(q, s), sg),
				core.Union(algebra.SigmaDomain(q, sg), algebra.SigmaDomain(s, sg)))
		}},
		{"7.1(b) 𝔇(Q∩S)⊆𝔇Q∩𝔇S", func() bool {
			q, s, sg := randCarrier(), randCarrier(), randSigma()
			return core.Subset(algebra.SigmaDomain(core.Intersect(q, s), sg),
				core.Intersect(algebra.SigmaDomain(q, sg), algebra.SigmaDomain(s, sg)))
		}},
		{"7.1(c) 𝔇Q∼𝔇S⊆𝔇(Q∼S)", func() bool {
			q, s, sg := randCarrier(), randCarrier(), randSigma()
			return core.Subset(core.Diff(algebra.SigmaDomain(q, sg), algebra.SigmaDomain(s, sg)),
				algebra.SigmaDomain(core.Diff(q, s), sg))
		}},
		{"7.1(e) 𝔇_∅(Q)=∅", func() bool {
			return algebra.SigmaDomain(randCarrier(), core.Empty()).IsEmpty()
		}},
		{"C.1(a) Q[A∪B]=Q[A]∪Q[B]", func() bool {
			q, a, b := randCarrier(), randCarrier(), randCarrier()
			sg := algebra.NewSigma(randSigma(), randSigma())
			return core.Equal(algebra.Image(q, core.Union(a, b), sg),
				core.Union(algebra.Image(q, a, sg), algebra.Image(q, b, sg)))
		}},
		{"C.1(b) Q[A∩B]⊆Q[A]∩Q[B]", func() bool {
			q, a, b := randCarrier(), randCarrier(), randCarrier()
			sg := algebra.NewSigma(randSigma(), randSigma())
			return core.Subset(algebra.Image(q, core.Intersect(a, b), sg),
				core.Intersect(algebra.Image(q, a, sg), algebra.Image(q, b, sg)))
		}},
		{"C.1(i) (Q∪R)[A]=Q[A]∪R[A]", func() bool {
			q, rr, a := randCarrier(), randCarrier(), randCarrier()
			sg := algebra.NewSigma(randSigma(), randSigma())
			return core.Equal(algebra.Image(core.Union(q, rr), a, sg),
				core.Union(algebra.Image(q, a, sg), algebra.Image(rr, a, sg)))
		}},
		{"C.1(g) ∅ cases", func() bool {
			q, a := randCarrier(), randCarrier()
			sg := algebra.NewSigma(randSigma(), randSigma())
			return algebra.Image(q, core.Empty(), sg).IsEmpty() &&
				algebra.Image(core.Empty(), a, sg).IsEmpty() &&
				algebra.Image(q, a, algebra.NewSigma(core.Empty(), core.Empty())).IsEmpty()
		}},
		{"8.1(a) (f∪g)(x)=f(x)∪g(x)", func() bool {
			f, g, x := randCarrier(), randCarrier(), randCarrier()
			sg := algebra.NewSigma(randSigma(), randSigma())
			return core.Equal(algebra.Image(core.Union(f, g), x, sg),
				core.Union(algebra.Image(f, x, sg), algebra.Image(g, x, sg)))
		}},
		{"8.1(b) (f∩g)(x)⊆f(x)∩g(x)", func() bool {
			f, g, x := randCarrier(), randCarrier(), randCarrier()
			sg := algebra.NewSigma(randSigma(), randSigma())
			return core.Subset(algebra.Image(core.Intersect(f, g), x, sg),
				core.Intersect(algebra.Image(f, x, sg), algebra.Image(g, x, sg)))
		}},
		{"8.1(c) f(x)∼g(x)⊆(f∼g)(x)", func() bool {
			f, g, x := randCarrier(), randCarrier(), randCarrier()
			sg := algebra.NewSigma(randSigma(), randSigma())
			return core.Subset(core.Diff(algebra.Image(f, x, sg), algebra.Image(g, x, sg)),
				algebra.Image(core.Diff(f, g), x, sg))
		}},
	}
	pass := true
	var rows [][]string
	for _, l := range laws {
		ok := 0
		for i := 0; i < trials; i++ {
			if l.chk() {
				ok++
			}
		}
		pass = pass && ok == trials
		rows = append(rows, []string{l.name, fmt.Sprintf("%d/%d", ok, trials)})
	}
	return Result{
		ID:    "E7",
		Title: "Law tables: Consequences 7.1, C.1, 8.1 (randomized)",
		Lines: tableRows([]string{"law", "holds"}, rows),
		Pass:  pass,
	}
}
