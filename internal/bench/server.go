package bench

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"xst/internal/catalog"
	"xst/internal/core"
	"xst/internal/server"
	"xst/internal/store"
	"xst/internal/table"
)

// LoadReport summarizes one client-side load run against a server.
type LoadReport struct {
	Conns   int
	Queries int
	Errors  int
	Elapsed time.Duration
	QPS     float64
	P50     time.Duration
	P99     time.Duration
}

// RunServerLoad opens conns connections to addr and has each evaluate
// stmt perConn times, reporting aggregate throughput and client-side
// latency quantiles.
func RunServerLoad(addr, stmt string, conns, perConn int) (LoadReport, error) {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		lats     []time.Duration
		errs     int
		firstErr error
	)
	start := time.Now()
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mine := make([]time.Duration, 0, perConn)
			c, err := server.Dial(addr)
			if err != nil {
				mu.Lock()
				errs += perConn
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			defer c.Close()
			bad := 0
			for q := 0; q < perConn; q++ {
				t0 := time.Now()
				if _, err := c.Eval(stmt); err != nil {
					bad++
					if firstErr == nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
					}
					continue
				}
				mine = append(mine, time.Since(t0))
			}
			mu.Lock()
			lats = append(lats, mine...)
			errs += bad
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := LoadReport{Conns: conns, Queries: conns * perConn, Errors: errs, Elapsed: elapsed}
	if len(lats) > 0 {
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		rep.P50 = lats[len(lats)/2]
		rep.P99 = lats[len(lats)*99/100]
		rep.QPS = float64(len(lats)) / elapsed.Seconds()
	}
	if firstErr != nil && errs > 0 {
		return rep, fmt.Errorf("%d/%d queries failed (first: %w)", errs, rep.Queries, firstErr)
	}
	return rep, nil
}

// E14ServerThroughput measures the query server end to end: an
// in-process xstd over an in-memory database, driven by 1, 8 and 64
// concurrent client connections. The claim under test is the thesis'
// serving story — the set-processing backend machine sustains many
// concurrent front ends — checked here as: every query answered, the
// server's own accounting agrees with the clients', and concurrency
// does not collapse throughput.
func E14ServerThroughput(cfg Config) Result {
	const id = "E14"
	perConn := 200
	if cfg.Quick {
		perConn = 25
	}

	db, err := makeServerDB()
	if err != nil {
		return errResult(id, err)
	}
	srv, err := server.New(server.Config{DB: db, MaxWorkers: 64})
	if err != nil {
		return errResult(id, err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return errResult(id, err)
	}
	serveDone := make(chan struct{})
	go func() { srv.Serve(lis); close(serveDone) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), cfg.shutdownTimeout())
		defer cancel()
		srv.Shutdown(ctx)
		<-serveDone
	}()
	addr := lis.Addr().String()

	// The workload: a bounded cartesian product over a stored table's
	// element set — enough algebra to be a real query, small enough to
	// measure server overhead rather than one operator.
	stmt := "card(cartesian(elems(people), {1,2,3}))"

	lines := []string{fmt.Sprintf("%-6s %8s %10s %10s %10s", "conns", "queries", "qps", "p50", "p99")}
	pass := true
	total := 0
	for _, conns := range []int{1, 8, 64} {
		rep, err := RunServerLoad(addr, stmt, conns, perConn)
		if err != nil {
			return errResult(id, err)
		}
		total += rep.Queries
		if rep.Errors > 0 {
			pass = false
		}
		lines = append(lines, fmt.Sprintf("%-6d %8d %10.0f %10v %10v",
			conns, rep.Queries, rep.QPS, rep.P50.Round(time.Microsecond), rep.P99.Round(time.Microsecond)))
	}

	// The server's own ledger must agree with the clients'.
	c, err := server.Dial(addr)
	if err != nil {
		return errResult(id, err)
	}
	defer c.Close()
	snap, err := c.Stats()
	if err != nil {
		return errResult(id, err)
	}
	if snap.QueriesOK != uint64(total) {
		pass = false
	}
	lines = append(lines, fmt.Sprintf("server ledger: ok=%d err=%d timeout=%d rejected=%d conns=%d latency[%s]",
		snap.QueriesOK, snap.QueriesErr, snap.QueriesTimeout, snap.Rejected, snap.ConnsTotal, snap.Latency))

	return Result{
		ID:    id,
		Title: "server throughput: concurrent xlang sessions over TCP (§1's backend machine)",
		Lines: lines,
		Pass:  pass,
	}
}

// makeServerDB builds the small in-memory database E14 serves.
func makeServerDB() (*catalog.Database, error) {
	db, err := catalog.Create(store.NewMemPager(), 64)
	if err != nil {
		return nil, err
	}
	t, err := db.CreateTable(table.Schema{Name: "people", Cols: []string{"id", "name"}})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 64; i++ {
		if _, err := t.Insert(table.Row{core.Int(int64(i)), core.Str(fmt.Sprintf("p%02d", i))}); err != nil {
			return nil, err
		}
	}
	return db, db.Sync()
}
