package bench

import (
	"context"
	"fmt"
	"runtime"

	"xst/internal/exec"
	"xst/internal/plan"
	"xst/internal/workload"
)

// E13ParallelSetProcessing measures the 1977 "backend processors"
// story: the stored set physically partitioned across workers, each
// processing its partition set-at-a-time. Since PR 4 the partitioning
// lives in the one execution engine — heap pages are dealt as morsels
// to N worker subtrees behind an exec.Gather (plan.CompileDOP) — so
// this experiment exercises the same operator tree every query runs
// on. The reproduction target is near-linear scan scaling while
// results stay identical to the serial tree. (On one machine the
// "processors" are goroutines over a shared buffer pool, so scaling
// saturates at the pool's latch — the honest analogue of a shared
// interconnect.)
func E13ParallelSetProcessing(cfg Config) Result {
	n := 200_000
	reps := 3
	if cfg.Quick {
		n = 10_000
		reps = 2
	}
	ds, err := workload.Build(workload.Spec{Seed: cfg.Seed, Users: n, Orders: 1, Cities: 50}, 4096)
	if err != nil {
		return errResult("E13", err)
	}
	target := workload.SelectivityValue(50)
	query := func() plan.Node {
		return &plan.Select{
			Child: &plan.Scan{Table: ds.Users},
			Pred:  plan.Cmp{Col: "city", Op: plan.Eq, Val: target},
		}
	}
	count := func(dop int) (int, error) {
		op, err := plan.CompileDOP(query(), dop)
		if err != nil {
			return 0, err
		}
		return exec.Count(context.Background(), op)
	}

	baseCount, err := count(1)
	if err != nil {
		return errResult("E13", err)
	}
	baseT := timeIt(reps, func() {
		_, err = count(1)
	})
	if err != nil {
		return errResult("E13", err)
	}

	pass := true
	rows := [][]string{{"serial tree", baseT.String(), "1.00x", fmt.Sprintf("%d", baseCount)}}
	for _, workers := range []int{1, 2, 4, 8} {
		var got int
		d := timeIt(reps, func() { got, err = count(workers) })
		if err != nil {
			return errResult("E13", err)
		}
		if got != baseCount {
			return errResult("E13", fmt.Errorf("workers=%d: %d rows, want %d", workers, got, baseCount))
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d workers", workers), d.String(), ratio(baseT, d), fmt.Sprintf("%d", got),
		})
		// Parallel overhead must stay bounded at full scale; genuine
		// speedup is only physically possible with >1 CPU, so it is
		// reported, not asserted, and asserted only on multicore hosts.
		// Quick runs assert correctness only (millisecond workloads are
		// dominated by scheduler noise on small hosts).
		if !cfg.Quick && d > 2*baseT {
			pass = false
		}
		if runtime.NumCPU() >= 4 && workers == 4 && d > baseT {
			pass = false
		}
	}
	lines := tableRows([]string{"configuration", "time", "speedup", "rows"}, rows)
	lines = append(lines, "",
		fmt.Sprintf("host CPUs: %d (speedup saturates at the core count; on a 1-CPU host parity is the expected result)", runtime.NumCPU()))
	return Result{
		ID:    "E13",
		Title: "Parallel set processing across partitions (backend processors)",
		Lines: lines,
		Pass:  pass,
	}
}
