package bench

import (
	"fmt"

	"xst/internal/core"
	"xst/internal/dist"
	"xst/internal/table"
	"xst/internal/workload"
	"xst/internal/xtest"
)

// E11DistributedJoin measures the distributed dimension of the paper's
// title claim ("very large, *distributed*, backend information
// systems"): the same equi-join executed across a simulated cluster
// under four shipping strategies, at two left-side selectivities. The
// reproduction target is the classic shape: semijoin reduction wins on
// network bytes when the probe side is selective; co-located joins ship
// only results; broadcast pays per-site.
func E11DistributedJoin(cfg Config) Result {
	sites := 4
	users, orders := 4_000, 20_000
	if cfg.Quick {
		users, orders = 400, 2_000
	}

	c := dist.NewCluster(sites, 256)
	if err := c.CreateTable(workload.UsersSchema()); err != nil {
		return errResult("E11", err)
	}
	if err := c.CreateTable(workload.OrdersSchema()); err != nil {
		return errResult("E11", err)
	}
	r := xtest.NewRand(cfg.Seed)
	for i := 0; i < users; i++ {
		row := table.Row{core.Int(i), core.Str(fmt.Sprintf("city-%02d", r.Intn(20))), core.Int(r.Intn(100))}
		if err := c.InsertHash("users", 0, row); err != nil {
			return errResult("E11", err)
		}
	}
	for i := 0; i < orders; i++ {
		row := table.Row{core.Int(i), core.Int(r.Intn(users)), core.Int(r.Intn(1000))}
		if err := c.InsertHash("orders", 1, row); err != nil {
			return errResult("E11", err)
		}
	}

	selectivities := []struct {
		name  string
		limit core.Int
	}{
		{"50%", 500},
		{"2%", 20},
	}
	strategies := []dist.Strategy{dist.ShipAll, dist.Broadcast, dist.SemiJoin, dist.CoLocated}

	pass := true
	var rows [][]string
	for _, sel := range selectivities {
		limit := sel.limit
		spec := dist.JoinSpec{
			Left: "orders", Right: "users",
			LeftCol: 1, RightCol: 0,
			LeftPred:     func(row table.Row) bool { return core.Compare(row[2], limit) < 0 },
			LeftPredName: "amount<" + limit.String(),
		}
		bytesBy := map[dist.Strategy]uint64{}
		var wantRows int
		for _, strat := range strategies {
			c.Net.Reset()
			var got []table.Row
			var err error
			d := timeIt(2, func() { got, err = c.Join(spec, strat) })
			if err != nil {
				return errResult("E11", err)
			}
			st := c.Net.Stats()
			bytesBy[strat] = st.Bytes
			if wantRows == 0 {
				wantRows = len(got)
			} else if len(got) != wantRows {
				return errResult("E11", fmt.Errorf("%v returned %d rows, want %d", strat, len(got), wantRows))
			}
			rows = append(rows, []string{
				sel.name, strat.String(),
				fmt.Sprintf("%d", st.Bytes), fmt.Sprintf("%d", st.Messages),
				d.String(), fmt.Sprintf("%d", len(got)),
			})
		}
		// Expected shape at high selectivity: semijoin beats ship-all on
		// bytes; co-located beats both base-shipping strategies.
		if sel.limit == 20 {
			if bytesBy[dist.SemiJoin] >= bytesBy[dist.ShipAll] {
				pass = false
			}
			if bytesBy[dist.CoLocated] >= bytesBy[dist.Broadcast] {
				pass = false
			}
		}
	}
	return Result{
		ID:    "E11",
		Title: "Distributed join strategies (title claim: distributed backend)",
		Lines: tableRows([]string{"selectivity", "strategy", "net bytes", "msgs", "time", "rows"}, rows),
		Pass:  pass,
	}
}
