// Package bench regenerates every evaluation artifact of the
// reproduction: experiments E1–E7 mechanically re-derive the paper's
// figures, worked examples and law tables (the theory paper's "results"),
// and E8–E10 measure the performance claims (set vs record processing,
// composition as optimization, dynamic restructuring vs prestructured
// storage). Each experiment returns a Result whose lines are the table
// the harness prints; EXPERIMENTS.md records paper-vs-measured for each.
package bench

import (
	"fmt"
	"strings"
	"time"
)

// Result is one regenerated table/figure.
type Result struct {
	// ID is the experiment id (E1…E10).
	ID string
	// Title names the paper artifact being regenerated.
	Title string
	// Lines is the rendered table, one row per line.
	Lines []string
	// Pass reports whether the artifact matched the paper's expectation
	// (always meaningful for E1–E7; for E8–E10 it checks the claim's
	// direction, e.g. "set processing wins at scale").
	Pass bool
}

// Render formats the result as a titled block.
func (r Result) Render() string {
	var b strings.Builder
	status := "OK"
	if !r.Pass {
		status = "MISMATCH"
	}
	fmt.Fprintf(&b, "== %s: %s [%s]\n", r.ID, r.Title, status)
	for _, l := range r.Lines {
		b.WriteString("   ")
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// Config tunes the costly experiments.
type Config struct {
	// Quick shrinks E8–E10 workloads for test runs.
	Quick bool
	// Seed drives every randomized workload.
	Seed uint64
	// ShutdownTimeout bounds the E14 server drain; 0 means 5s.
	ShutdownTimeout time.Duration
}

// DefaultConfig returns the full-scale configuration.
func DefaultConfig() Config { return Config{Seed: 42} }

// shutdownTimeout returns the configured drain bound or its default.
func (c Config) shutdownTimeout() time.Duration {
	if c.ShutdownTimeout > 0 {
		return c.ShutdownTimeout
	}
	return 5 * time.Second
}

// All runs every experiment in order.
func All(cfg Config) []Result {
	return []Result{
		E1SpaceLattice(),
		E2RefinedSpaces(),
		E3RelativeProduct(),
		E4NestedApplication(),
		E5SelfApplication(),
		E6CSTEmbedding(cfg),
		E7AlgebraicLaws(cfg),
		E8SetVsRecord(cfg),
		E9Composition(cfg),
		E10Restructuring(cfg),
		E11DistributedJoin(cfg),
		E12PlanOptimization(cfg),
		E13ParallelSetProcessing(cfg),
		E14ServerThroughput(cfg),
		E15FederatedShipping(cfg),
		E16IndexVsScan(cfg),
		E17MixedReadWrite(cfg),
		E18DurabilityOverhead(cfg),
	}
}

// ByID runs one experiment by id (e.g. "E3"). ok is false for unknown
// ids.
func ByID(id string, cfg Config) (Result, bool) {
	switch strings.ToUpper(id) {
	case "E1":
		return E1SpaceLattice(), true
	case "E2":
		return E2RefinedSpaces(), true
	case "E3":
		return E3RelativeProduct(), true
	case "E4":
		return E4NestedApplication(), true
	case "E5":
		return E5SelfApplication(), true
	case "E6":
		return E6CSTEmbedding(cfg), true
	case "E7":
		return E7AlgebraicLaws(cfg), true
	case "E8":
		return E8SetVsRecord(cfg), true
	case "E9":
		return E9Composition(cfg), true
	case "E10":
		return E10Restructuring(cfg), true
	case "E11":
		return E11DistributedJoin(cfg), true
	case "E12":
		return E12PlanOptimization(cfg), true
	case "E13":
		return E13ParallelSetProcessing(cfg), true
	case "E14":
		return E14ServerThroughput(cfg), true
	case "E15":
		return E15FederatedShipping(cfg), true
	case "E16":
		return E16IndexVsScan(cfg), true
	case "E17":
		return E17MixedReadWrite(cfg), true
	case "E18":
		return E18DurabilityOverhead(cfg), true
	default:
		return Result{}, false
	}
}

// tableRows renders rows with aligned columns.
func tableRows(header []string, rows [][]string) []string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	out := []string{line(header), line(dashes(widths))}
	for _, r := range rows {
		out = append(out, line(r))
	}
	return out
}

func pad(s string, w int) string {
	for len(s) < w {
		s += " "
	}
	return s
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

// timeIt measures fn over reps runs and returns the best wall time (the
// usual noise-resistant choice for micro-sweeps).
func timeIt(reps int, fn func()) time.Duration {
	best := time.Duration(1<<62 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

func ratio(a, b time.Duration) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", float64(a)/float64(b))
}
