package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"xst/internal/catalog"
	"xst/internal/core"
	"xst/internal/dist"
	"xst/internal/fed"
	"xst/internal/table"
)

// E15FederatedShipping is the shipped-bytes ablation over real sockets:
// the same distributed join forced through each shipping strategy on an
// in-process 3-site federation, recording the bytes each one actually
// moves (the xstd_fed_bytes_shipped_total counter) next to the cost
// model's prediction. The experiment passes when every strategy returns
// the same cardinality and the model's pick lands within a small factor
// of the measured-best strategy — the property the planner's choice
// rests on.
func E15FederatedShipping(cfg Config) Result {
	const id = "E15"
	title := "Federated join shipping — measured bytes vs cost model"
	fail := func(err error) Result {
		return Result{ID: id, Title: title, Lines: []string{err.Error()}, Pass: false}
	}

	nUsers, nOrders := 2000, 8000
	if cfg.Quick {
		nUsers, nOrders = 400, 1600
	}
	rng := rand.New(rand.NewSource(int64(cfg.Seed)))
	usersSchema := table.Schema{Name: "users", Cols: []string{"id", "name", "age"}}
	ordersSchema := table.Schema{Name: "orders", Cols: []string{"oid", "uid", "amount"}}
	users := make([]table.Row, nUsers)
	for i := range users {
		users[i] = table.Row{
			core.Int(i), core.Str(fmt.Sprintf("u%03d", rng.Intn(500))), core.Int(rng.Intn(80)),
		}
	}
	orders := make([]table.Row, nOrders)
	for i := range orders {
		orders[i] = table.Row{
			core.Int(i), core.Int(rng.Intn(nUsers)), core.Int(rng.Intn(1000)),
		}
	}
	var bounds []core.Value
	for i := 1; i < 3; i++ {
		bounds = append(bounds, core.Int(i*nOrders/3))
	}
	populate := func(dbs []*catalog.Database) error {
		if err := fed.CreateSharded(dbs, usersSchema,
			&catalog.Partition{Kind: catalog.PartHash, Col: "id"}, users); err != nil {
			return err
		}
		return fed.CreateSharded(dbs, ordersSchema,
			&catalog.Partition{Kind: catalog.PartRange, Col: "oid", Bounds: bounds}, orders)
	}

	stmt := "from orders join users on uid = id where amount < 100 select oid, amount, name"
	forced := []struct {
		name  string
		strat dist.Strategy
	}{
		{"shipall", dist.ShipAll},
		{"broadcast", dist.Broadcast},
		{"semijoin", dist.SemiJoin},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	measured := map[string]uint64{}
	rowsBy := map[string]int{}
	var in dist.CostInputs
	for _, f := range forced {
		lf, err := fed.BootLocal(ctx, 3, fed.Config{ForceStrategy: f.name}, populate)
		if err != nil {
			return fail(err)
		}
		q, err := lf.Coord.Compile(stmt)
		if err != nil {
			lf.Shutdown(ctx)
			return fail(err)
		}
		rows := 0
		if _, err := q.Run(ctx, func(b []table.Row) error { rows += len(b); return nil }); err != nil {
			lf.Shutdown(ctx)
			return fail(err)
		}
		measured[f.name] = lf.Coord.Metrics().BytesShipped.Value()
		rowsBy[f.name] = rows
		// Build the model's inputs from the coordinator's own sampled
		// metadata (once): the planner's System-R constant for one "<"
		// conjunct is 0.3, and JoinRows uses the true cardinality, as the
		// dist agreement benchmark does.
		if in.Sites == 0 {
			tabs := map[string]*fed.TableMeta{}
			for _, m := range lf.Coord.Tables() {
				tabs[m.Name] = m
			}
			in = dist.CostInputs{
				LeftRows:        tabs["orders"].Rows(),
				RightRows:       tabs["users"].Rows(),
				LeftRowBytes:    tabs["orders"].RowBytes,
				RightRowBytes:   tabs["users"].RowBytes,
				KeyBytes:        9,
				LeftSelectivity: 0.3,
				Sites:           3,
				JoinRows:        rows,
			}
		}
		lf.Shutdown(ctx)
	}

	est := map[string]float64{}
	for _, f := range forced {
		est[f.name] = dist.EstimateBytes(in, f.strat)
	}
	pick, best := forced[0].name, forced[0].name
	var rows [][]string
	for _, f := range forced {
		if est[f.name] < est[pick] {
			pick = f.name
		}
		if measured[f.name] < measured[best] {
			best = f.name
		}
		rows = append(rows, []string{
			f.name,
			fmt.Sprintf("%.0f", est[f.name]),
			fmt.Sprintf("%d", measured[f.name]),
			fmt.Sprintf("%d", rowsBy[f.name]),
		})
	}
	sameRows := rowsBy[forced[0].name] == rowsBy[forced[1].name] &&
		rowsBy[forced[1].name] == rowsBy[forced[2].name]
	pass := sameRows && measured[pick] <= 3*measured[best]

	lines := tableRows([]string{"strategy", "model bytes", "measured bytes", "rows"}, rows)
	lines = append(lines,
		fmt.Sprintf("model pick: %s; measured best: %s; identical results: %v", pick, best, sameRows))
	return Result{ID: id, Title: title, Lines: lines, Pass: pass}
}
