package bench

import (
	"fmt"

	"xst/internal/core"
	"xst/internal/plan"
	"xst/internal/store"
	"xst/internal/table"
	"xst/internal/xtest"
)

// E12PlanOptimization measures the planner ablation DESIGN.md calls out:
// the same logical query executed naively (selection after the join)
// versus after the algebraic rewrites (§12's "optimize the performance
// of that behavior"): merged selections, join pushdown and column
// pruning. The reproduction target is the canonical shape — optimized
// plans touch far fewer join rows and run faster, by a factor that grows
// with the filter's selectivity.
func E12PlanOptimization(cfg Config) Result {
	users, orders := 5_000, 25_000
	reps := 3
	if cfg.Quick {
		users, orders, reps = 500, 2_500, 2
	}
	pool := store.NewBufferPool(store.NewMemPager(), 512)
	u, err := table.Create(pool, table.Schema{Name: "users", Cols: []string{"uid", "city", "score"}})
	if err != nil {
		return errResult("E12", err)
	}
	o, err := table.Create(pool, table.Schema{Name: "orders", Cols: []string{"oid", "ouid", "amount"}})
	if err != nil {
		return errResult("E12", err)
	}
	r := xtest.NewRand(cfg.Seed)
	for i := 0; i < users; i++ {
		u.Insert(table.Row{core.Int(i), core.Str(fmt.Sprintf("city-%02d", r.Intn(20))), core.Int(r.Intn(100))})
	}
	for i := 0; i < orders; i++ {
		o.Insert(table.Row{core.Int(i), core.Int(r.Intn(users)), core.Int(r.Intn(1000))})
	}

	selects := []struct {
		name  string
		limit int
	}{
		{"50%", 500},
		{"5%", 50},
		{"0.5%", 5},
	}
	pass := true
	var rows [][]string
	for _, sel := range selects {
		q := &plan.Project{
			Cols: []string{"oid", "city"},
			Child: &plan.Select{
				Child: &plan.Join{
					Left:    &plan.Scan{Table: o},
					Right:   &plan.Scan{Table: u},
					LeftCol: "ouid", RightCol: "uid",
				},
				Pred: plan.And{
					plan.Cmp{Col: "amount", Op: plan.Lt, Val: core.Int(int64(sel.limit))},
					plan.Cmp{Col: "score", Op: plan.Ge, Val: core.Int(10)},
				},
			},
		}
		var naiveRows, optRows []table.Row
		var naiveStats, optStats plan.ExecStats
		naiveT := timeIt(reps, func() {
			naiveRows, _, naiveStats, err = plan.ExecuteStats(q)
		})
		if err != nil {
			return errResult("E12", err)
		}
		optimized := plan.Optimize(q)
		optT := timeIt(reps, func() {
			optRows, _, optStats, err = plan.ExecuteStats(optimized)
		})
		if err != nil {
			return errResult("E12", err)
		}
		if len(naiveRows) != len(optRows) {
			return errResult("E12", fmt.Errorf("%s: naive %d rows ≠ optimized %d",
				sel.name, len(naiveRows), len(optRows)))
		}
		rows = append(rows, []string{
			sel.name,
			naiveT.String(), fmt.Sprintf("%d", naiveStats.RowsJoined),
			optT.String(), fmt.Sprintf("%d", optStats.RowsJoined),
			ratio(naiveT, optT),
		})
		if optStats.RowsJoined > naiveStats.RowsJoined {
			pass = false
		}
		if !cfg.Quick && sel.limit == 5 && optT > naiveT {
			pass = false
		}
	}
	return Result{
		ID:    "E12",
		Title: "Plan optimization ablation (algebraic rewrites, §12)",
		Lines: tableRows([]string{"selectivity", "naive time", "naive join rows", "optimized time", "opt join rows", "speedup"}, rows),
		Pass:  pass,
	}
}
