package bench

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xst/internal/catalog"
	"xst/internal/store"
	"xst/internal/table"
	"xst/internal/workload"
)

// E17MixedReadWrite is the snapshot-isolation concurrency experiment:
// N streaming readers run full snapshot scans over the events table
// while M writers commit whole batches through the transaction path.
// The claims under test: every scan sees a whole number of committed
// batches (atomic visibility — no torn commits leak), and reader
// throughput with writers streaming stays within an order of magnitude
// of the writer-free baseline (snapshot readers are never blocked by
// the single-writer commit path; they contend only on the buffer-pool
// mutex). Reader p50/p99 with writers on and off are reported side by
// side.
func E17MixedReadWrite(cfg Config) Result {
	const id = "E17"
	spec := workload.DefaultMixedSpec(cfg.Quick)
	db, err := catalog.Create(store.NewMemPager(), 2048)
	if err != nil {
		return errResult(id, err)
	}
	if _, err := db.CreateTable(workload.EventsSchema()); err != nil {
		return errResult(id, err)
	}
	ctx := context.Background()
	if err := db.Load(ctx, "events", workload.EventRows(spec.Seed, 0, spec.Initial)); err != nil {
		return errResult(id, err)
	}

	// One snapshot scan: pin, count through the view, release. Returns
	// the row count and the scan's wall time.
	scanOnce := func() (int, time.Duration, error) {
		start := time.Now()
		rt := db.BeginRead()
		defer rt.View.Release()
		tab, err := db.Table("events")
		if err != nil {
			return 0, 0, err
		}
		n := 0
		err = tab.At(rt.View).Scan(func(store.RID, table.Row) (bool, error) {
			n++
			return true, nil
		})
		return n, time.Since(start), err
	}

	// readerPhase runs spec.Readers goroutines scanning until stop is
	// closed (at least once each), enforcing whole-batch visibility.
	readerPhase := func(stop <-chan struct{}) (lats []time.Duration, err error) {
		var mu sync.Mutex
		var wg sync.WaitGroup
		for r := 0; r < spec.Readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for first := true; ; first = false {
					if !first {
						select {
						case <-stop:
							return
						default:
						}
					}
					n, d, serr := scanOnce()
					if serr == nil && (n < spec.Initial || (n-spec.Initial)%spec.Batch != 0) {
						serr = fmt.Errorf("scan saw %d rows — not initial+k×batch (torn commit visible)", n)
					}
					mu.Lock()
					if serr != nil && err == nil {
						err = serr
					}
					lats = append(lats, d)
					mu.Unlock()
					if serr != nil {
						return
					}
				}
			}()
		}
		wg.Wait()
		return lats, err
	}

	// Baseline: writers off. Each reader scans for a fixed wall budget.
	baseBudget := 400 * time.Millisecond
	if cfg.Quick {
		baseBudget = 150 * time.Millisecond
	}
	stopBase := make(chan struct{})
	time.AfterFunc(baseBudget, func() { close(stopBase) })
	baseStart := time.Now()
	baseLats, err := readerPhase(stopBase)
	if err != nil {
		return errResult(id, err)
	}
	baseElapsed := time.Since(baseStart)

	// Mixed: writers streaming batch commits; readers run until the last
	// batch lands.
	var next atomic.Int64
	writeStart := time.Now()
	stopMix := make(chan struct{})
	var wwg sync.WaitGroup
	var werr atomic.Value
	for w := 0; w < spec.Writers; w++ {
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			for {
				b := int(next.Add(1))
				if b > spec.Batches {
					return
				}
				if err := db.Load(ctx, "events", workload.EventRows(spec.Seed, b, spec.Batch)); err != nil {
					werr.Store(err)
					return
				}
			}
		}()
	}
	go func() { wwg.Wait(); close(stopMix) }()
	mixLats, err := readerPhase(stopMix)
	if err != nil {
		return errResult(id, err)
	}
	writeElapsed := time.Since(writeStart)
	if e, ok := werr.Load().(error); ok {
		return errResult(id, e)
	}

	// Final state: exactly every batch, no more, no less.
	finalN, _, err := scanOnce()
	if err != nil {
		return errResult(id, err)
	}
	wantN := spec.Initial + spec.Batches*spec.Batch
	baseRate := float64(len(baseLats)) / baseElapsed.Seconds()
	mixRate := float64(len(mixLats)) / writeElapsed.Seconds()
	writeRate := float64(spec.Batches*spec.Batch) / writeElapsed.Seconds()

	pass := finalN == wantN && len(mixLats) >= spec.Readers && mixRate > baseRate/10

	rows := [][]string{
		{"writers off", fmt.Sprintf("%d", len(baseLats)),
			quantile(baseLats, 0.50).String(), quantile(baseLats, 0.99).String(),
			fmt.Sprintf("%.0f", baseRate)},
		{"writers on", fmt.Sprintf("%d", len(mixLats)),
			quantile(mixLats, 0.50).String(), quantile(mixLats, 0.99).String(),
			fmt.Sprintf("%.0f", mixRate)},
	}
	lines := tableRows([]string{"phase", "scans", "reader p50", "reader p99", "scans/s"}, rows)
	lines = append(lines,
		fmt.Sprintf("%d writers committed %d×%d rows at %.0f rows/s; final count %d (want %d)",
			spec.Writers, spec.Batches, spec.Batch, writeRate, finalN, wantN))
	return Result{
		ID:    id,
		Title: "Mixed read/write under snapshot isolation (readers vs streaming commits)",
		Lines: lines,
		Pass:  pass,
	}
}

// quantile returns the q-th latency quantile (nearest-rank).
func quantile(durs []time.Duration, q float64) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), durs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)-1))
	return s[i]
}
