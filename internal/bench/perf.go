package bench

import (
	"fmt"

	"xst/internal/core"
	"xst/internal/index"
	"xst/internal/process"
	"xst/internal/relational"
	"xst/internal/store"
	"xst/internal/table"
	"xst/internal/workload"
	"xst/internal/xsp"
)

// E8SetVsRecord measures the paper's central performance claim (§12,
// ref [4]): processing stored data as sets (page batches through
// composed operations) versus as records (one iterator Next per row).
// Selection and join are measured across table sizes; the expected shape
// is set processing winning by a growing factor as tables grow.
func E8SetVsRecord(cfg Config) Result {
	sizes := []int{2_000, 10_000, 50_000}
	reps := 5
	if cfg.Quick {
		sizes = []int{500, 2_000}
		reps = 2
	}
	pass := true
	var rows [][]string
	for _, n := range sizes {
		ds, err := workload.Build(workload.Spec{
			Seed: cfg.Seed, Users: n, Orders: 2 * n, Cities: 50,
		}, 512)
		if err != nil {
			return errResult("E8", err)
		}
		city := workload.SelectivityValue(50)
		cityCol := ds.Users.Schema().Col("city")

		var recSel, setSel int
		recSelT := timeIt(reps, func() {
			recSel, err = relational.Count(&relational.Filter{
				Child: relational.NewTableScan(ds.Users),
				Pred:  relational.ColEq(cityCol, city),
			})
		})
		if err != nil {
			return errResult("E8", err)
		}
		setSelT := timeIt(reps, func() {
			setSel, err = xsp.NewPipeline(ds.Users, &xsp.Restrict{
				Pred: func(r table.Row) bool { return core.Equal(r[cityCol], city) },
				Name: "city",
			}).Count()
		})
		if err != nil || recSel != setSel {
			return errResult("E8", fmt.Errorf("selection disagrees: %d vs %d (%v)", recSel, setSel, err))
		}

		var recJoin, setJoin int
		recJoinT := timeIt(reps, func() {
			recJoin, err = relational.Count(&relational.HashJoin{
				Left:    relational.NewTableScan(ds.Orders),
				Right:   relational.NewTableScan(ds.Users),
				LeftCol: ds.Orders.Schema().Col("uid"), RightCol: 0,
			})
		})
		if err != nil {
			return errResult("E8", err)
		}
		setJoinT := timeIt(reps, func() {
			j := &xsp.Join{Left: ds.Orders, Right: ds.Users,
				LeftCol: ds.Orders.Schema().Col("uid"), RightCol: 0}
			setJoin = 0
			err = j.Run(nil, nil, func(rs []table.Row) error { setJoin += len(rs); return nil })
		})
		if err != nil || recJoin != setJoin {
			return errResult("E8", fmt.Errorf("join disagrees: %d vs %d (%v)", recJoin, setJoin, err))
		}

		rows = append(rows, []string{
			fmt.Sprintf("%d", n), "select",
			recSelT.String(), setSelT.String(), ratio(recSelT, setSelT),
		})
		rows = append(rows, []string{
			fmt.Sprintf("%d", n), "join",
			recJoinT.String(), setJoinT.String(), ratio(recJoinT, setJoinT),
		})
		// Timing direction is asserted only at full scale; quick runs
		// are smoke tests where µs-level noise dominates.
		if !cfg.Quick && n == sizes[len(sizes)-1] && setSelT > recSelT {
			pass = false
		}
	}
	return Result{
		ID:    "E8",
		Title: "Set processing vs record processing (§12 / ref [4])",
		Lines: tableRows([]string{"rows", "query", "record-at-a-time", "set-at-a-time", "speedup"}, rows),
		Pass:  pass,
	}
}

// E9Composition measures Theorem 11.2 as an optimization: executing a
// k-stage process chain stage by stage (materializing every intermediate
// set) versus composing the chain into ONE carrier by relative products
// and applying it once. Both the symbolic level and the storage engine
// level are measured.
func E9Composition(cfg Config) Result {
	domain := 256
	inputs := 64
	ks := []int{2, 3, 4, 5}
	reps := 5
	if cfg.Quick {
		domain, inputs, ks, reps = 64, 16, []int{2, 3}, 2
	}
	pass := true
	var rows [][]string
	for _, k := range ks {
		carriers := workload.RandomChain(cfg.Seed, k, domain)
		stages := make([]process.Proc, k)
		for i, c := range carriers {
			stages[i] = process.Std(c)
		}
		in := core.NewBuilder(inputs)
		for i := 0; i < inputs; i++ {
			in.AddClassical(core.Tuple(core.Int(i * (domain / inputs))))
		}
		x := in.Set()

		var staged, composed *core.Set
		stagedT := timeIt(reps, func() {
			cur := x
			for _, s := range stages {
				cur = s.Apply(cur)
			}
			staged = cur
		})
		var h process.Proc
		buildT := timeIt(reps, func() {
			h = stages[0]
			for _, s := range stages[1:] {
				h = process.MustStdCompose(s, h)
			}
		})
		applyT := timeIt(reps, func() { composed = h.Apply(x) })
		if !core.Equal(staged, composed) {
			return errResult("E9", fmt.Errorf("k=%d: staged ≠ composed", k))
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", k), stagedT.String(), buildT.String(), applyT.String(),
			ratio(stagedT, applyT),
		})
		if !cfg.Quick && k >= 3 && applyT > stagedT {
			pass = false
		}
	}

	// Engine level: staged materialization vs composed pipeline.
	n := 40_000
	if cfg.Quick {
		n = 2_000
	}
	ds, err := workload.Build(workload.Spec{Seed: cfg.Seed, Users: n, Orders: 1, Cities: 50}, 512)
	if err != nil {
		return errResult("E9", err)
	}
	scoreCol := ds.Users.Schema().Col("score")
	cityCol := ds.Users.Schema().Col("city")
	ops := func() []xsp.Op {
		return []xsp.Op{
			&xsp.Restrict{Pred: func(r table.Row) bool {
				return core.Compare(r[scoreCol], core.Int(80)) < 0
			}, Name: "score<80"},
			&xsp.Restrict{Pred: func(r table.Row) bool {
				return core.Compare(r[scoreCol], core.Int(20)) >= 0
			}, Name: "score>=20"},
			&xsp.Restrict{Pred: func(r table.Row) bool {
				return !core.Equal(r[cityCol], core.Str("city-000"))
			}, Name: "city!=0"},
			&xsp.Project{Cols: []int{0}},
		}
	}
	var stagedRows, composedRows int
	stagedT := timeIt(3, func() {
		out, err2 := xsp.NewPipeline(ds.Users, ops()...).RunStaged()
		if err2 != nil {
			err = err2
		}
		stagedRows = len(out)
	})
	if err != nil {
		return errResult("E9", err)
	}
	composedT := timeIt(3, func() {
		composedRows, err = xsp.NewPipeline(ds.Users, ops()...).Count()
	})
	if err != nil || stagedRows != composedRows {
		return errResult("E9", fmt.Errorf("engine staged %d ≠ composed %d (%v)", stagedRows, composedRows, err))
	}
	lines := tableRows(
		[]string{"chain k", "staged apply", "compose build", "composed apply", "apply speedup"}, rows)
	lines = append(lines, "",
		fmt.Sprintf("engine (%d rows, 4 stages): staged %v vs composed %v (%s)",
			n, stagedT, composedT, ratio(stagedT, composedT)))
	if !cfg.Quick && composedT > stagedT {
		pass = false
	}
	return Result{
		ID:    "E9",
		Title: "Composition eliminates intermediates (§11, Thm 11.2)",
		Lines: lines,
		Pass:  pass,
	}
}

// E10Restructuring measures ref [4]'s trade-off: prestructured access
// (a prebuilt hash index probed per key) versus dynamic set
// restructuring (answering a whole batch of lookups with one
// set-at-a-time pass). The expected shape: per-key probing wins for tiny
// batches, one set pass wins as the batch grows, and the index only pays
// off if its build cost is amortized over many batches.
func E10Restructuring(cfg Config) Result {
	n := 50_000
	qs := []int{1, 10, 100, 1_000}
	if cfg.Quick {
		n = 3_000
		qs = []int{1, 10, 100}
	}
	ds, err := workload.Build(workload.Spec{Seed: cfg.Seed, Users: n / 5, Orders: n, Cities: 50}, 512)
	if err != nil {
		return errResult("E10", err)
	}
	uidCol := ds.Orders.Schema().Col("uid")

	// Prestructure: hash index over uid.
	var idx *index.HashIndex
	buildT := timeIt(1, func() {
		idx = index.NewHashIndex()
		err = ds.Orders.Scan(func(rid store.RID, r table.Row) (bool, error) {
			idx.Insert(core.Key(r[uidCol]), rid)
			return true, nil
		})
	})
	if err != nil {
		return errResult("E10", err)
	}

	pass := true
	var rows [][]string
	for _, q := range qs {
		keys := workload.LookupKeys(cfg.Seed^uint64(q), q, n/5, 0)
		// Deduplicate: a batch is a *set* of lookups, and the per-key
		// probe path must answer the same question as the set pass.
		dedup := map[string]core.Value{}
		for _, k := range keys {
			dedup[core.Key(k)] = k
		}
		keys = keys[:0]
		for _, k := range dedup {
			keys = append(keys, k)
		}

		// Per-key index probes (record fetch per rid).
		var probeHits int
		probeT := timeIt(3, func() {
			probeHits = 0
			for _, k := range keys {
				for _, rid := range idx.Lookup(core.Key(k)) {
					if _, err2 := ds.Orders.Get(rid); err2 != nil {
						err = err2
						return
					}
					probeHits++
				}
			}
		})
		if err != nil {
			return errResult("E10", err)
		}

		// Dynamic set pass: one restriction by the key set.
		keySet := make(map[string]bool, len(keys))
		for _, k := range keys {
			keySet[core.Key(k)] = true
		}
		var batchHits int
		batchT := timeIt(3, func() {
			batchHits, err = xsp.NewPipeline(ds.Orders, &xsp.Restrict{
				Pred: func(r table.Row) bool { return keySet[core.Key(r[uidCol])] },
				Name: "uid∈keys",
			}).Count()
		})
		if err != nil || probeHits != batchHits {
			return errResult("E10", fmt.Errorf("q=%d: probe %d ≠ batch %d (%v)", q, probeHits, batchHits, err))
		}

		rows = append(rows, []string{
			fmt.Sprintf("%d", q),
			probeT.String(),
			(buildT + probeT).String(),
			batchT.String(),
			fmt.Sprintf("%d", batchHits),
		})
		if !cfg.Quick && q == 1 && probeT > batchT {
			pass = false // a single probe must beat a full pass
		}
	}
	lines := tableRows(
		[]string{"batch size", "index probes", "build+probes", "one set pass", "rows"}, rows)
	lines = append(lines, "",
		fmt.Sprintf("index build over %d rows: %v (amortize across batches)", n, buildT))

	// Range-access variant: ordered prestructure (B+tree range scan)
	// versus one set pass with a range restriction.
	bt, err := relational.BuildBTreeIndex(ds.Orders, uidCol)
	if err != nil {
		return errResult("E10", err)
	}
	lo, hi := core.Int(int64(n/20)), core.Int(int64(n/10))
	var rangeRows int
	btT := timeIt(3, func() {
		rangeRows, err = relational.Count(&relational.IndexRangeScan{
			Table: ds.Orders, Index: bt, Lo: lo, Hi: hi,
		})
	})
	if err != nil {
		return errResult("E10", err)
	}
	var passRows int
	passT := timeIt(3, func() {
		passRows, err = xsp.NewPipeline(ds.Orders, &xsp.Restrict{
			Pred: func(r table.Row) bool {
				return core.Compare(r[uidCol], lo) >= 0 && core.Compare(r[uidCol], hi) < 0
			},
			Name: "uid range",
		}).Count()
	})
	if err != nil || rangeRows != passRows {
		return errResult("E10", fmt.Errorf("range: btree %d ≠ pass %d (%v)", rangeRows, passRows, err))
	}
	lines = append(lines,
		fmt.Sprintf("range [%v,%v): btree scan %v vs one set pass %v (%d rows)",
			lo, hi, btT, passT, rangeRows))
	return Result{
		ID:    "E10",
		Title: "Dynamic restructuring vs prestructured storage (ref [4])",
		Lines: lines,
		Pass:  pass,
	}
}

func errResult(id string, err error) Result {
	return Result{ID: id, Title: "experiment failed", Lines: []string{err.Error()}, Pass: false}
}
