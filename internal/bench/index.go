package bench

import (
	"context"
	"fmt"
	"strings"

	"xst/internal/core"
	"xst/internal/index"
	"xst/internal/plan"
	"xst/internal/stats"
	"xst/internal/store"
	"xst/internal/table"
	"xst/internal/xtest"
)

// E16IndexVsScan is the access-path crossover ablation: the same point,
// narrow-range and wide predicates run through a full sequential scan
// and through the cost-based planner with statistics and indexes
// available. The reproduction targets: a point lookup through the hash
// index is ≥10× faster than the scan, a ~1% btree range also wins, and
// the planner *refuses* the index for a half-the-table predicate, where
// one sequential pass is cheaper than driving RID lookups through the
// index — every choice visible in the rendered plan.
func E16IndexVsScan(cfg Config) Result {
	const id = "E16"
	rows, reps := 100_000, 3
	if cfg.Quick {
		rows, reps = 5_000, 2
	}
	pool := store.NewBufferPool(store.NewMemPager(), 1024)
	ev, err := table.Create(pool, table.Schema{Name: "events", Cols: []string{"eid", "grp", "val"}})
	if err != nil {
		return errResult(id, err)
	}
	r := xtest.NewRand(cfg.Seed)
	for i := 0; i < rows; i++ {
		grp := "hot"
		if i%2 == 1 {
			grp = "cold"
		}
		ev.Insert(table.Row{core.Int(i), core.Str(grp), core.Int(r.Intn(1000))})
	}
	sc, err := stats.CollectAll(ev)
	if err != nil {
		return errResult(id, err)
	}
	ctx := context.Background()
	hash, err := index.BuildHash(ctx, ev, 0)
	if err != nil {
		return errResult(id, err)
	}
	bt, err := index.BuildBTree(ctx, ev, 2)
	if err != nil {
		return errResult(id, err)
	}
	cat := &plan.Catalog{Stats: sc, Indexes: []*plan.TableIndex{
		{Table: ev, Col: "eid", Kind: plan.HashIdx, Hash: hash},
		{Table: ev, Col: "grp", Kind: plan.HashIdx, Hash: mustHash(ev, 1)},
		{Table: ev, Col: "val", Kind: plan.BTreeIdx, BTree: bt},
	}}

	cases := []struct {
		name      string
		pred      plan.Pred
		wantIndex bool
	}{
		{"point (1 row)", plan.Cmp{Col: "eid", Op: plan.Eq, Val: core.Int(int64(rows / 2))}, true},
		{"range (~1%)", plan.Cmp{Col: "val", Op: plan.Lt, Val: core.Int(10)}, true},
		{"wide (50%)", plan.Cmp{Col: "grp", Op: plan.Eq, Val: core.Str("hot")}, false},
	}
	pass := true
	var out [][]string
	for _, tc := range cases {
		q := &plan.Select{Child: &plan.Scan{Table: ev}, Pred: tc.pred}
		scanPlan := plan.Optimize(q)
		costPlan := plan.OptimizeCatalog(q, cat)
		chosenIndex := strings.Contains(plan.Explain(costPlan), "indexscan")
		if chosenIndex != tc.wantIndex {
			pass = false
		}
		var scanRows, costRows []table.Row
		scanT := timeIt(reps, func() { scanRows, _, err = plan.Execute(scanPlan) })
		if err != nil {
			return errResult(id, err)
		}
		costT := timeIt(reps, func() { costRows, _, err = plan.Execute(costPlan) })
		if err != nil {
			return errResult(id, err)
		}
		if len(scanRows) != len(costRows) {
			return errResult(id, fmt.Errorf("%s: scan %d rows ≠ cost-based %d",
				tc.name, len(scanRows), len(costRows)))
		}
		access := "scan"
		if chosenIndex {
			access = "index"
		}
		out = append(out, []string{
			tc.name, access,
			scanT.String(), costT.String(), ratio(scanT, costT),
			fmt.Sprintf("%d", len(costRows)),
		})
		// The headline claim: the point lookup beats the scan ≥10×.
		if !cfg.Quick && tc.name == "point (1 row)" && scanT < 10*costT {
			pass = false
		}
	}
	return Result{
		ID:    id,
		Title: "Index vs scan crossover (cost-based access paths)",
		Lines: tableRows([]string{"workload", "chosen", "scan time", "planned time", "speedup", "rows"}, out),
		Pass:  pass,
	}
}

// mustHash builds a hash index or returns nil (the planner treats a
// nil structure as unusable, failing the run visibly via plan compile).
func mustHash(t *table.Table, col int) *index.HashIndex {
	h, err := index.BuildHash(context.Background(), t, col)
	if err != nil {
		return nil
	}
	return h
}
