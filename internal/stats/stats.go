// Package stats collects per-table, per-column statistics — row counts,
// exact distinct counts, min/max and equi-depth histograms — and answers
// selectivity questions. The planner uses these to replace its
// System-R-style constants with measured estimates (plan.EstimateRowsWith).
package stats

import (
	"sort"

	"xst/internal/core"
	"xst/internal/store"
	"xst/internal/table"
)

// histogramBuckets is the equi-depth bucket count.
const histogramBuckets = 16

// ColumnStats summarizes one column.
type ColumnStats struct {
	// Distinct is the exact number of distinct values.
	Distinct int
	// Min and Max bound the column under the canonical order.
	Min, Max core.Value
	// bounds holds the histogram bucket upper bounds (equi-depth).
	bounds []core.Value
	// rows is the total row count the histogram describes.
	rows int
}

// TableStats summarizes one table.
type TableStats struct {
	Rows    int
	Columns []ColumnStats
}

// Collect scans the table once and builds statistics for every column.
func Collect(t *table.Table) (*TableStats, error) {
	arity := t.Schema().Arity()
	values := make([][]core.Value, arity)
	distinct := make([]map[string]bool, arity)
	for i := range distinct {
		distinct[i] = map[string]bool{}
	}
	rows := 0
	err := t.Scan(func(_ store.RID, r table.Row) (bool, error) {
		rows++
		for i, v := range r {
			values[i] = append(values[i], v)
			distinct[i][core.Key(v)] = true
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	ts := &TableStats{Rows: rows, Columns: make([]ColumnStats, arity)}
	for i := range ts.Columns {
		ts.Columns[i] = buildColumn(values[i], len(distinct[i]))
	}
	return ts, nil
}

func buildColumn(vals []core.Value, distinct int) ColumnStats {
	cs := ColumnStats{Distinct: distinct, rows: len(vals)}
	if len(vals) == 0 {
		return cs
	}
	sorted := make([]core.Value, len(vals))
	copy(sorted, vals)
	sort.Slice(sorted, func(i, j int) bool { return core.Compare(sorted[i], sorted[j]) < 0 })
	cs.Min, cs.Max = sorted[0], sorted[len(sorted)-1]
	buckets := histogramBuckets
	if buckets > len(sorted) {
		buckets = len(sorted)
	}
	for b := 1; b <= buckets; b++ {
		idx := b*len(sorted)/buckets - 1
		cs.bounds = append(cs.bounds, sorted[idx])
	}
	return cs
}

// SelectivityEq estimates the fraction of rows with column = v, using
// the uniform-within-distinct assumption bounded by the histogram.
func (c ColumnStats) SelectivityEq(v core.Value) float64 {
	if c.rows == 0 || c.Distinct == 0 {
		return 0
	}
	if c.Min != nil && (core.Compare(v, c.Min) < 0 || core.Compare(v, c.Max) > 0) {
		return 0
	}
	return 1.0 / float64(c.Distinct)
}

// SelectivityLess estimates the fraction of rows with column < v from
// the equi-depth histogram: the fraction of bucket bounds below v.
func (c ColumnStats) SelectivityLess(v core.Value) float64 {
	if c.rows == 0 || len(c.bounds) == 0 {
		return 0
	}
	if core.Compare(v, c.Min) <= 0 {
		return 0
	}
	if core.Compare(v, c.Max) > 0 {
		return 1
	}
	below := 0
	for _, b := range c.bounds {
		if core.Compare(b, v) < 0 {
			below++
		}
	}
	return float64(below) / float64(len(c.bounds))
}

// SelectivityRange estimates lo <= column < hi.
func (c ColumnStats) SelectivityRange(lo, hi core.Value) float64 {
	s := c.SelectivityLess(hi) - c.SelectivityLess(lo)
	if s < 0 {
		return 0
	}
	return s
}

// Catalog maps table names to their statistics.
type Catalog map[string]*TableStats

// CollectAll gathers statistics for several tables.
func CollectAll(tables ...*table.Table) (Catalog, error) {
	cat := Catalog{}
	for _, t := range tables {
		ts, err := Collect(t)
		if err != nil {
			return nil, err
		}
		cat[t.Schema().Name] = ts
	}
	return cat, nil
}
