// Package stats collects per-table, per-column statistics — row counts,
// exact distinct counts, min/max and equi-depth histograms — and answers
// selectivity questions. The planner uses these to replace its
// System-R-style constants with measured estimates (plan.EstimateRowsWith).
package stats

import (
	"fmt"
	"sort"

	"xst/internal/core"
	"xst/internal/store"
	"xst/internal/table"
)

// histogramBuckets is the equi-depth bucket count.
const histogramBuckets = 16

// ColumnStats summarizes one column.
type ColumnStats struct {
	// Distinct is the exact number of distinct values.
	Distinct int
	// Min and Max bound the column under the canonical order.
	Min, Max core.Value
	// bounds holds the histogram bucket upper bounds (equi-depth).
	bounds []core.Value
	// rows is the total row count the histogram describes.
	rows int
}

// Rows reports the total row count the column's histogram describes.
func (c ColumnStats) Rows() int { return c.rows }

// Bounds returns the equi-depth histogram bucket upper bounds. The
// returned slice is shared; callers must not mutate it.
func (c ColumnStats) Bounds() []core.Value { return c.bounds }

// NewColumnStats rebuilds a ColumnStats from previously persisted parts
// (the inverse of the accessors above). bounds is retained, not copied.
func NewColumnStats(distinct, rows int, min, max core.Value, bounds []core.Value) ColumnStats {
	return ColumnStats{Distinct: distinct, Min: min, Max: max, bounds: bounds, rows: rows}
}

// TableStats summarizes one table.
type TableStats struct {
	Rows    int
	Columns []ColumnStats
}

// Collect scans the table once and builds statistics for every column.
func Collect(t *table.Table) (*TableStats, error) {
	arity := t.Schema().Arity()
	values := make([][]core.Value, arity)
	distinct := make([]map[string]bool, arity)
	for i := range distinct {
		distinct[i] = map[string]bool{}
	}
	rows := 0
	err := t.Scan(func(_ store.RID, r table.Row) (bool, error) {
		rows++
		for i, v := range r {
			values[i] = append(values[i], v)
			distinct[i][core.Key(v)] = true
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	ts := &TableStats{Rows: rows, Columns: make([]ColumnStats, arity)}
	for i := range ts.Columns {
		ts.Columns[i] = buildColumn(values[i], len(distinct[i]))
	}
	return ts, nil
}

func buildColumn(vals []core.Value, distinct int) ColumnStats {
	cs := ColumnStats{Distinct: distinct, rows: len(vals)}
	if len(vals) == 0 {
		return cs
	}
	sorted := make([]core.Value, len(vals))
	copy(sorted, vals)
	sort.Slice(sorted, func(i, j int) bool { return core.Compare(sorted[i], sorted[j]) < 0 })
	cs.Min, cs.Max = sorted[0], sorted[len(sorted)-1]
	buckets := histogramBuckets
	if buckets > len(sorted) {
		buckets = len(sorted)
	}
	for b := 1; b <= buckets; b++ {
		idx := b*len(sorted)/buckets - 1
		cs.bounds = append(cs.bounds, sorted[idx])
	}
	return cs
}

// SelectivityEq estimates the fraction of rows with column = v, using
// the uniform-within-distinct assumption bounded by the histogram.
func (c ColumnStats) SelectivityEq(v core.Value) float64 {
	if c.rows == 0 || c.Distinct == 0 {
		return 0
	}
	if c.Min != nil && (core.Compare(v, c.Min) < 0 || core.Compare(v, c.Max) > 0) {
		return 0
	}
	return 1.0 / float64(c.Distinct)
}

// SelectivityLess estimates the fraction of rows with column < v from
// the equi-depth histogram: the fraction of bucket bounds below v. The
// result is always in [0, 1]; values outside the observed [Min, Max]
// clamp to 0 or 1 respectively, and a nil v (no bound) yields 1.
func (c ColumnStats) SelectivityLess(v core.Value) float64 {
	if c.rows == 0 || len(c.bounds) == 0 {
		return 0
	}
	if v == nil {
		return 1
	}
	if core.Compare(v, c.Min) <= 0 {
		return 0
	}
	if core.Compare(v, c.Max) > 0 {
		return 1
	}
	below := 0
	for _, b := range c.bounds {
		if core.Compare(b, v) < 0 {
			below++
		}
	}
	return clamp01(float64(below) / float64(len(c.bounds)))
}

// SelectivityRange estimates lo <= column < hi. A nil bound is open on
// that side; an inverted range (lo > hi) selects nothing. The result is
// clamped to [0, 1].
func (c ColumnStats) SelectivityRange(lo, hi core.Value) float64 {
	if c.rows == 0 || len(c.bounds) == 0 {
		return 0
	}
	if lo != nil && hi != nil && core.Compare(lo, hi) > 0 {
		return 0
	}
	less := c.SelectivityLess(hi)
	if lo != nil {
		less -= c.SelectivityLess(lo)
	}
	return clamp01(less)
}

// clamp01 bounds an estimate to [0, 1]; derived combinations (Le as
// Less+Eq, Gt as 1-Less-Eq) can otherwise drift just outside.
func clamp01(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// Value encodes the statistics as an extended-set value so the catalog
// can persist them next to the schema. Layout:
//
//	⟨rows, ⟨col…⟩⟩  where col = ⟨distinct, rows, min, max, ⟨bounds…⟩⟩
//
// Columns that describe zero rows have no min/max and use the short
// form ⟨distinct, rows⟩.
func (t *TableStats) Value() core.Value {
	cols := make([]core.Value, len(t.Columns))
	for i, c := range t.Columns {
		if c.rows == 0 || c.Min == nil {
			cols[i] = core.Tuple(core.Int(int64(c.Distinct)), core.Int(int64(c.rows)))
			continue
		}
		cols[i] = core.Tuple(
			core.Int(int64(c.Distinct)),
			core.Int(int64(c.rows)),
			c.Min,
			c.Max,
			core.Tuple(c.bounds...),
		)
	}
	return core.Tuple(core.Int(int64(t.Rows)), core.Tuple(cols...))
}

// DecodeTableStats is the inverse of TableStats.Value.
func DecodeTableStats(v core.Value) (*TableStats, error) {
	elems, ok := core.TupleElems(v)
	if !ok || len(elems) != 2 {
		return nil, fmt.Errorf("stats: bad table stats %v", v)
	}
	rows, ok := elems[0].(core.Int)
	if !ok || rows < 0 {
		return nil, fmt.Errorf("stats: bad row count in %v", v)
	}
	colVals, ok := core.TupleElems(elems[1])
	if !ok {
		return nil, fmt.Errorf("stats: bad column list in %v", v)
	}
	ts := &TableStats{Rows: int(rows), Columns: make([]ColumnStats, len(colVals))}
	for i, cv := range colVals {
		ce, ok := core.TupleElems(cv)
		if !ok || (len(ce) != 2 && len(ce) != 5) {
			return nil, fmt.Errorf("stats: bad column stats %v", cv)
		}
		distinct, dok := ce[0].(core.Int)
		crows, rok := ce[1].(core.Int)
		if !dok || !rok || distinct < 0 || crows < 0 {
			return nil, fmt.Errorf("stats: bad column counts in %v", cv)
		}
		cs := ColumnStats{Distinct: int(distinct), rows: int(crows)}
		if len(ce) == 5 {
			bounds, bok := core.TupleElems(ce[4])
			if !bok {
				return nil, fmt.Errorf("stats: bad histogram in %v", cv)
			}
			cs.Min, cs.Max = ce[2], ce[3]
			if len(bounds) > 0 {
				cs.bounds = append([]core.Value(nil), bounds...)
			}
		}
		ts.Columns[i] = cs
	}
	return ts, nil
}

// Catalog maps table names to their statistics.
type Catalog map[string]*TableStats

// CollectAll gathers statistics for several tables.
func CollectAll(tables ...*table.Table) (Catalog, error) {
	cat := Catalog{}
	for _, t := range tables {
		ts, err := Collect(t)
		if err != nil {
			return nil, err
		}
		cat[t.Schema().Name] = ts
	}
	return cat, nil
}
