package stats

import (
	"testing"

	"xst/internal/core"
	"xst/internal/store"
	"xst/internal/table"
)

func statTable(t *testing.T, n int) *table.Table {
	t.Helper()
	pool := store.NewBufferPool(store.NewMemPager(), 64)
	tbl, err := table.Create(pool, table.Schema{Name: "t", Cols: []string{"id", "bucket", "label"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		tbl.Insert(table.Row{
			core.Int(i),
			core.Int(i % 10),
			core.Str("label-" + string(rune('a'+i%3))),
		})
	}
	return tbl
}

func TestCollectBasics(t *testing.T) {
	ts, err := Collect(statTable(t, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if ts.Rows != 1000 {
		t.Fatalf("rows = %d", ts.Rows)
	}
	if ts.Columns[0].Distinct != 1000 {
		t.Fatalf("id distinct = %d", ts.Columns[0].Distinct)
	}
	if ts.Columns[1].Distinct != 10 {
		t.Fatalf("bucket distinct = %d", ts.Columns[1].Distinct)
	}
	if ts.Columns[2].Distinct != 3 {
		t.Fatalf("label distinct = %d", ts.Columns[2].Distinct)
	}
	if !core.Equal(ts.Columns[0].Min, core.Int(0)) || !core.Equal(ts.Columns[0].Max, core.Int(999)) {
		t.Fatalf("min/max = %v/%v", ts.Columns[0].Min, ts.Columns[0].Max)
	}
}

func TestSelectivityEq(t *testing.T) {
	ts, _ := Collect(statTable(t, 1000))
	c := ts.Columns[1] // 10 distinct buckets
	if got := c.SelectivityEq(core.Int(3)); got != 0.1 {
		t.Fatalf("eq selectivity = %v", got)
	}
	// Out of range → 0.
	if got := c.SelectivityEq(core.Int(99)); got != 0 {
		t.Fatalf("out-of-range selectivity = %v", got)
	}
}

func TestSelectivityLess(t *testing.T) {
	ts, _ := Collect(statTable(t, 1000))
	c := ts.Columns[0] // uniform ids 0..999
	cases := []struct {
		v  int
		lo float64
		hi float64
	}{
		{0, 0, 0},
		{500, 0.4, 0.6},
		{1000, 0.9, 1.0},
	}
	for _, tc := range cases {
		got := c.SelectivityLess(core.Int(tc.v))
		if got < tc.lo || got > tc.hi {
			t.Fatalf("P(id < %d) = %v, want in [%v, %v]", tc.v, got, tc.lo, tc.hi)
		}
	}
	// Range selectivity ~ 0.25 for a quarter of the domain.
	r := c.SelectivityRange(core.Int(250), core.Int(500))
	if r < 0.15 || r > 0.35 {
		t.Fatalf("range selectivity = %v", r)
	}
	if c.SelectivityRange(core.Int(500), core.Int(250)) != 0 {
		t.Fatal("inverted range must be 0")
	}
}

func TestEmptyTableStats(t *testing.T) {
	pool := store.NewBufferPool(store.NewMemPager(), 8)
	tbl, _ := table.Create(pool, table.Schema{Name: "e", Cols: []string{"x"}})
	ts, err := Collect(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Rows != 0 {
		t.Fatal("rows must be 0")
	}
	c := ts.Columns[0]
	if c.SelectivityEq(core.Int(1)) != 0 || c.SelectivityLess(core.Int(1)) != 0 {
		t.Fatal("empty selectivities must be 0")
	}
}

func TestCollectAll(t *testing.T) {
	a := statTable(t, 10)
	cat, err := CollectAll(a)
	if err != nil {
		t.Fatal(err)
	}
	if cat["t"] == nil || cat["t"].Rows != 10 {
		t.Fatal("catalog wrong")
	}
}

// TestSelectivityBoundaries is the table-driven regression suite for
// the [0,1] clamp, inverted-range, open-bound, and out-of-histogram
// behavior of SelectivityLess/SelectivityRange.
func TestSelectivityBoundaries(t *testing.T) {
	ts, err := Collect(statTable(t, 1000)) // ids uniform 0..999
	if err != nil {
		t.Fatal(err)
	}
	c := ts.Columns[0]
	empty := ColumnStats{}
	cases := []struct {
		name   string
		col    ColumnStats
		lo, hi core.Value
		min    float64
		max    float64
	}{
		{"inverted", c, core.Int(900), core.Int(100), 0, 0},
		{"inverted at bounds", c, core.Int(999), core.Int(0), 0, 0},
		{"below min", c, core.Int(-100), core.Int(-1), 0, 0},
		{"above max", c, core.Int(2000), core.Int(3000), 0, 0},
		{"spanning all", c, core.Int(-100), core.Int(5000), 1, 1},
		{"open low", c, nil, core.Int(500), 0.4, 0.6},
		{"open high", c, core.Int(500), nil, 0.4, 0.6},
		{"open both", c, nil, nil, 1, 1},
		{"degenerate lo=hi", c, core.Int(500), core.Int(500), 0, 0.1},
		{"empty column", empty, core.Int(0), core.Int(10), 0, 0},
		{"empty open", empty, nil, nil, 0, 0},
	}
	for _, tc := range cases {
		got := tc.col.SelectivityRange(tc.lo, tc.hi)
		if got < tc.min || got > tc.max {
			t.Errorf("%s: SelectivityRange = %v, want in [%v, %v]", tc.name, got, tc.min, tc.max)
		}
		if got < 0 || got > 1 {
			t.Errorf("%s: SelectivityRange = %v escapes [0, 1]", tc.name, got)
		}
	}
	lessCases := []struct {
		name string
		v    core.Value
		min  float64
		max  float64
	}{
		{"below min", core.Int(-5), 0, 0},
		{"at min", core.Int(0), 0, 0},
		{"above max", core.Int(5000), 1, 1},
		{"nil is open", nil, 1, 1},
		{"midpoint", core.Int(500), 0.4, 0.6},
	}
	for _, tc := range lessCases {
		got := c.SelectivityLess(tc.v)
		if got < tc.min || got > tc.max {
			t.Errorf("%s: SelectivityLess = %v, want in [%v, %v]", tc.name, got, tc.min, tc.max)
		}
	}
}

func TestStatsCodecRoundTrip(t *testing.T) {
	ts, err := Collect(statTable(t, 500))
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTableStats(ts.Value())
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != ts.Rows || len(got.Columns) != len(ts.Columns) {
		t.Fatalf("round trip shape: rows %d→%d cols %d→%d",
			ts.Rows, got.Rows, len(ts.Columns), len(got.Columns))
	}
	for i := range ts.Columns {
		a, b := ts.Columns[i], got.Columns[i]
		if a.Distinct != b.Distinct || a.rows != b.rows {
			t.Fatalf("col %d counts: %+v vs %+v", i, a, b)
		}
		if !core.Equal(a.Min, b.Min) || !core.Equal(a.Max, b.Max) {
			t.Fatalf("col %d min/max drift", i)
		}
		if len(a.bounds) != len(b.bounds) {
			t.Fatalf("col %d bounds %d vs %d", i, len(a.bounds), len(b.bounds))
		}
		for j := range a.bounds {
			if !core.Equal(a.bounds[j], b.bounds[j]) {
				t.Fatalf("col %d bound %d drift", i, j)
			}
		}
		// Decoded stats answer the same questions.
		if x, y := a.SelectivityEq(core.Int(3)), b.SelectivityEq(core.Int(3)); x != y {
			t.Fatalf("col %d eq selectivity %v vs %v", i, x, y)
		}
		if x, y := a.SelectivityLess(core.Int(200)), b.SelectivityLess(core.Int(200)); x != y {
			t.Fatalf("col %d less selectivity %v vs %v", i, x, y)
		}
	}
	// Empty tables survive the short column form.
	pool := store.NewBufferPool(store.NewMemPager(), 8)
	tbl, _ := table.Create(pool, table.Schema{Name: "e", Cols: []string{"x", "y"}})
	ets, err := Collect(tbl)
	if err != nil {
		t.Fatal(err)
	}
	eg, err := DecodeTableStats(ets.Value())
	if err != nil {
		t.Fatal(err)
	}
	if eg.Rows != 0 || len(eg.Columns) != 2 || eg.Columns[0].Min != nil {
		t.Fatalf("empty round trip: %+v", eg)
	}
	// Corrupt values are rejected, not mis-decoded.
	if _, err := DecodeTableStats(core.Int(7)); err == nil {
		t.Fatal("want error for non-tuple stats value")
	}
	if _, err := DecodeTableStats(core.Tuple(core.Str("x"), core.Tuple())); err == nil {
		t.Fatal("want error for bad row count")
	}
}

func TestSmallTableHistogram(t *testing.T) {
	// Fewer rows than buckets must not panic or misbehave.
	ts, err := Collect(statTable(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	c := ts.Columns[0]
	if got := c.SelectivityLess(core.Int(2)); got <= 0 || got > 1 {
		t.Fatalf("small-table selectivity = %v", got)
	}
}
