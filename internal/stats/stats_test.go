package stats

import (
	"testing"

	"xst/internal/core"
	"xst/internal/store"
	"xst/internal/table"
)

func statTable(t *testing.T, n int) *table.Table {
	t.Helper()
	pool := store.NewBufferPool(store.NewMemPager(), 64)
	tbl, err := table.Create(pool, table.Schema{Name: "t", Cols: []string{"id", "bucket", "label"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		tbl.Insert(table.Row{
			core.Int(i),
			core.Int(i % 10),
			core.Str("label-" + string(rune('a'+i%3))),
		})
	}
	return tbl
}

func TestCollectBasics(t *testing.T) {
	ts, err := Collect(statTable(t, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if ts.Rows != 1000 {
		t.Fatalf("rows = %d", ts.Rows)
	}
	if ts.Columns[0].Distinct != 1000 {
		t.Fatalf("id distinct = %d", ts.Columns[0].Distinct)
	}
	if ts.Columns[1].Distinct != 10 {
		t.Fatalf("bucket distinct = %d", ts.Columns[1].Distinct)
	}
	if ts.Columns[2].Distinct != 3 {
		t.Fatalf("label distinct = %d", ts.Columns[2].Distinct)
	}
	if !core.Equal(ts.Columns[0].Min, core.Int(0)) || !core.Equal(ts.Columns[0].Max, core.Int(999)) {
		t.Fatalf("min/max = %v/%v", ts.Columns[0].Min, ts.Columns[0].Max)
	}
}

func TestSelectivityEq(t *testing.T) {
	ts, _ := Collect(statTable(t, 1000))
	c := ts.Columns[1] // 10 distinct buckets
	if got := c.SelectivityEq(core.Int(3)); got != 0.1 {
		t.Fatalf("eq selectivity = %v", got)
	}
	// Out of range → 0.
	if got := c.SelectivityEq(core.Int(99)); got != 0 {
		t.Fatalf("out-of-range selectivity = %v", got)
	}
}

func TestSelectivityLess(t *testing.T) {
	ts, _ := Collect(statTable(t, 1000))
	c := ts.Columns[0] // uniform ids 0..999
	cases := []struct {
		v  int
		lo float64
		hi float64
	}{
		{0, 0, 0},
		{500, 0.4, 0.6},
		{1000, 0.9, 1.0},
	}
	for _, tc := range cases {
		got := c.SelectivityLess(core.Int(tc.v))
		if got < tc.lo || got > tc.hi {
			t.Fatalf("P(id < %d) = %v, want in [%v, %v]", tc.v, got, tc.lo, tc.hi)
		}
	}
	// Range selectivity ~ 0.25 for a quarter of the domain.
	r := c.SelectivityRange(core.Int(250), core.Int(500))
	if r < 0.15 || r > 0.35 {
		t.Fatalf("range selectivity = %v", r)
	}
	if c.SelectivityRange(core.Int(500), core.Int(250)) != 0 {
		t.Fatal("inverted range must be 0")
	}
}

func TestEmptyTableStats(t *testing.T) {
	pool := store.NewBufferPool(store.NewMemPager(), 8)
	tbl, _ := table.Create(pool, table.Schema{Name: "e", Cols: []string{"x"}})
	ts, err := Collect(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Rows != 0 {
		t.Fatal("rows must be 0")
	}
	c := ts.Columns[0]
	if c.SelectivityEq(core.Int(1)) != 0 || c.SelectivityLess(core.Int(1)) != 0 {
		t.Fatal("empty selectivities must be 0")
	}
}

func TestCollectAll(t *testing.T) {
	a := statTable(t, 10)
	cat, err := CollectAll(a)
	if err != nil {
		t.Fatal(err)
	}
	if cat["t"] == nil || cat["t"].Rows != 10 {
		t.Fatal("catalog wrong")
	}
}

func TestSmallTableHistogram(t *testing.T) {
	// Fewer rows than buckets must not panic or misbehave.
	ts, err := Collect(statTable(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	c := ts.Columns[0]
	if got := c.SelectivityLess(core.Int(2)); got <= 0 || got > 1 {
		t.Fatalf("small-table selectivity = %v", got)
	}
}
