// Package tableio moves stored tables in and out of the two interchange
// formats every downstream user expects: CSV (with type inference on
// import) and JSON lines. Atom values map naturally; set-valued fields
// round-trip through the expression-language notation (core rendering on
// export, xlang parsing on import), so even nested extended sets survive
// a CSV round trip.
package tableio

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"xst/internal/core"
	"xst/internal/store"
	"xst/internal/table"
	"xst/internal/xlang"
)

// ExportCSV writes the table as CSV: header row of column names, then
// one record per row. Atoms render bare (strings unquoted by the CSV
// layer itself); set values render in expression notation.
func ExportCSV(t *table.Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema().Cols); err != nil {
		return err
	}
	err := t.Scan(func(_ store.RID, r table.Row) (bool, error) {
		rec := make([]string, len(r))
		for i, v := range r {
			rec[i] = renderField(v)
		}
		return true, cw.Write(rec)
	})
	if err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func renderField(v core.Value) string {
	switch x := v.(type) {
	case core.Str:
		return string(x)
	case *core.Set:
		return x.String()
	default:
		return v.String()
	}
}

// ImportCSV reads CSV into a fresh table in pool. The first record is
// the header (column names). Field values are inferred: integer, then
// float, then boolean, then set notation (leading '{' or '<'), then
// string.
func ImportCSV(pool *store.BufferPool, name string, r io.Reader) (*table.Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("tableio: reading header: %w", err)
	}
	t, err := table.Create(pool, table.Schema{Name: name, Cols: header})
	if err != nil {
		return nil, err
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("tableio: line %d: %w", line, err)
		}
		row := make(table.Row, len(rec))
		for i, f := range rec {
			v, err := inferValue(f)
			if err != nil {
				return nil, fmt.Errorf("tableio: line %d column %q: %w", line, header[i], err)
			}
			row[i] = v
		}
		if _, err := t.Insert(row); err != nil {
			return nil, fmt.Errorf("tableio: line %d: %w", line, err)
		}
	}
}

func inferValue(f string) (core.Value, error) {
	if i, err := strconv.ParseInt(f, 10, 64); err == nil {
		return core.Int(i), nil
	}
	if fl, err := strconv.ParseFloat(f, 64); err == nil {
		return core.Float(fl), nil
	}
	switch f {
	case "true":
		return core.Bool(true), nil
	case "false":
		return core.Bool(false), nil
	}
	if strings.HasPrefix(f, "{") || strings.HasPrefix(f, "<") {
		v, err := xlang.Eval(xlang.NewEnv(), f)
		if err != nil {
			return nil, fmt.Errorf("parsing set notation: %w", err)
		}
		return v, nil
	}
	return core.Str(f), nil
}

// ExportJSON writes the table as JSON lines: one object per row keyed by
// column name. Atoms map to JSON scalars; set values map to their
// expression-notation strings.
func ExportJSON(t *table.Table, w io.Writer) error {
	enc := json.NewEncoder(w)
	cols := t.Schema().Cols
	return t.Scan(func(_ store.RID, r table.Row) (bool, error) {
		obj := make(map[string]any, len(r))
		for i, v := range r {
			obj[cols[i]] = jsonField(v)
		}
		return true, enc.Encode(obj)
	})
}

func jsonField(v core.Value) any {
	switch x := v.(type) {
	case core.Int:
		return int64(x)
	case core.Float:
		return float64(x)
	case core.Bool:
		return bool(x)
	case core.Str:
		return string(x)
	default:
		return v.String()
	}
}

// ImportJSON reads JSON lines into a fresh table. Every object must
// carry exactly the schema's columns; JSON numbers become Int when
// integral, Float otherwise; strings in set notation are parsed.
func ImportJSON(pool *store.BufferPool, schema table.Schema, r io.Reader) (*table.Table, error) {
	t, err := table.Create(pool, schema)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(r)
	dec.UseNumber()
	for line := 1; ; line++ {
		var obj map[string]any
		if err := dec.Decode(&obj); err == io.EOF {
			return t, nil
		} else if err != nil {
			return nil, fmt.Errorf("tableio: object %d: %w", line, err)
		}
		row := make(table.Row, schema.Arity())
		for i, col := range schema.Cols {
			raw, ok := obj[col]
			if !ok {
				return nil, fmt.Errorf("tableio: object %d missing column %q", line, col)
			}
			v, err := fromJSON(raw)
			if err != nil {
				return nil, fmt.Errorf("tableio: object %d column %q: %w", line, col, err)
			}
			row[i] = v
		}
		if _, err := t.Insert(row); err != nil {
			return nil, err
		}
	}
}

func fromJSON(raw any) (core.Value, error) {
	switch x := raw.(type) {
	case json.Number:
		if i, err := x.Int64(); err == nil {
			return core.Int(i), nil
		}
		f, err := x.Float64()
		if err != nil {
			return nil, err
		}
		return core.Float(f), nil
	case bool:
		return core.Bool(x), nil
	case string:
		if strings.HasPrefix(x, "{") || strings.HasPrefix(x, "<") {
			v, err := xlang.Eval(xlang.NewEnv(), x)
			if err == nil {
				return v, nil
			}
			// Fall back to the literal string on parse failure.
		}
		return core.Str(x), nil
	default:
		return nil, fmt.Errorf("unsupported JSON value %T", raw)
	}
}
