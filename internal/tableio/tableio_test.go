package tableio

import (
	"bytes"
	"strings"
	"testing"

	"xst/internal/core"
	"xst/internal/store"
	"xst/internal/table"
)

func newPool() *store.BufferPool {
	return store.NewBufferPool(store.NewMemPager(), 32)
}

func sampleTable(t *testing.T) *table.Table {
	t.Helper()
	tbl, err := table.Create(newPool(), table.Schema{
		Name: "people", Cols: []string{"id", "name", "score", "active", "tags"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := []table.Row{
		{core.Int(1), core.Str("ada"), core.Float(9.5), core.Bool(true),
			core.S(core.Str("math"), core.Str("cs"))},
		{core.Int(2), core.Str("bob"), core.Float(7.25), core.Bool(false),
			core.Empty()},
	}
	for _, r := range rows {
		if _, err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func rowsEqual(t *testing.T, a, b *table.Table) {
	t.Helper()
	var ra, rb []table.Row
	a.Scan(func(_ store.RID, r table.Row) (bool, error) { ra = append(ra, r.Clone()); return true, nil })
	b.Scan(func(_ store.RID, r table.Row) (bool, error) { rb = append(rb, r.Clone()); return true, nil })
	if len(ra) != len(rb) {
		t.Fatalf("row counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if len(ra[i]) != len(rb[i]) {
			t.Fatalf("row %d arity differs", i)
		}
		for j := range ra[i] {
			if !core.Equal(ra[i][j], rb[i][j]) {
				t.Fatalf("row %d col %d: %v vs %v", i, j, ra[i][j], rb[i][j])
			}
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := sampleTable(t)
	var buf bytes.Buffer
	if err := ExportCSV(tbl, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "id,name,score,active,tags\n") {
		t.Fatalf("header wrong: %q", out)
	}
	re, err := ImportCSV(newPool(), "people", strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, tbl, re)
}

func TestJSONRoundTrip(t *testing.T) {
	tbl := sampleTable(t)
	var buf bytes.Buffer
	if err := ExportJSON(tbl, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"name":"ada"`) {
		t.Fatalf("JSON output wrong: %q", buf.String())
	}
	re, err := ImportJSON(newPool(), tbl.Schema(), bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, tbl, re)
}

func TestImportCSVTypeInference(t *testing.T) {
	src := "a,b,c,d,e\n42,2.5,true,hello,\"{1, 2}\"\n"
	tbl, err := ImportCSV(newPool(), "t", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var row table.Row
	tbl.Scan(func(_ store.RID, r table.Row) (bool, error) { row = r.Clone(); return false, nil })
	wants := []core.Value{
		core.Int(42), core.Float(2.5), core.Bool(true), core.Str("hello"),
		core.S(core.Int(1), core.Int(2)),
	}
	for i, w := range wants {
		if !core.Equal(row[i], w) {
			t.Fatalf("column %d = %v (%T), want %v", i, row[i], row[i], w)
		}
	}
}

func TestImportCSVTupleField(t *testing.T) {
	src := "pair\n\"<a,b>\"\n"
	tbl, err := ImportCSV(newPool(), "t", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var row table.Row
	tbl.Scan(func(_ store.RID, r table.Row) (bool, error) { row = r.Clone(); return false, nil })
	if !core.Equal(row[0], core.Pair(core.Str("a"), core.Str("b"))) {
		t.Fatalf("tuple field = %v", row[0])
	}
}

func TestImportCSVErrors(t *testing.T) {
	if _, err := ImportCSV(newPool(), "t", strings.NewReader("")); err == nil {
		t.Fatal("empty input must fail (no header)")
	}
	// Ragged record.
	if _, err := ImportCSV(newPool(), "t", strings.NewReader("a,b\n1\n")); err == nil {
		t.Fatal("ragged CSV must fail")
	}
	// Broken set notation.
	if _, err := ImportCSV(newPool(), "t", strings.NewReader("a\n\"{1,\"\n")); err == nil {
		t.Fatal("bad set notation must fail")
	}
}

func TestImportJSONErrors(t *testing.T) {
	sch := table.Schema{Name: "t", Cols: []string{"a"}}
	if _, err := ImportJSON(newPool(), sch, strings.NewReader(`{"b": 1}`)); err == nil {
		t.Fatal("missing column must fail")
	}
	if _, err := ImportJSON(newPool(), sch, strings.NewReader(`{"a": [1]}`)); err == nil {
		t.Fatal("unsupported JSON value must fail")
	}
	if _, err := ImportJSON(newPool(), sch, strings.NewReader(`{bad`)); err == nil {
		t.Fatal("malformed JSON must fail")
	}
}

func TestJSONSetNotationFallback(t *testing.T) {
	sch := table.Schema{Name: "t", Cols: []string{"a"}}
	// A string that merely starts with '{' but is not valid notation
	// falls back to a literal string.
	tbl, err := ImportJSON(newPool(), sch, strings.NewReader(`{"a": "{not a set"}`))
	if err != nil {
		t.Fatal(err)
	}
	var row table.Row
	tbl.Scan(func(_ store.RID, r table.Row) (bool, error) { row = r.Clone(); return false, nil })
	if !core.Equal(row[0], core.Str("{not a set")) {
		t.Fatalf("fallback = %v", row[0])
	}
}
