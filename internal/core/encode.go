package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Canonical binary encoding of values. Because sets are canonical, the
// encoding is injective: Encode(a) == Encode(b) iff Equal(a, b). It is
// used both as an exact map key (see Key) and as the on-page codec of the
// storage substrate.
//
// Wire format (all integers little-endian):
//
//	bool:   0x01 b
//	int:    0x02 u64(zigzag)
//	float:  0x03 u64(ieee754 bits, -0 normalized)
//	string: 0x04 uvarint(len) bytes
//	set:    0x05 uvarint(n) then n × (elem, scope) in canonical order

const (
	tagBool   = 0x01
	tagInt    = 0x02
	tagFloat  = 0x03
	tagString = 0x04
	tagSet    = 0x05
)

// AppendEncode appends the canonical encoding of v to dst.
func AppendEncode(dst []byte, v Value) []byte {
	switch x := v.(type) {
	case Bool:
		dst = append(dst, tagBool)
		if x {
			return append(dst, 1)
		}
		return append(dst, 0)
	case Int:
		dst = append(dst, tagInt)
		u := uint64(int64(x)<<1) ^ uint64(int64(x)>>63)
		return binary.AppendUvarint(dst, u)
	case Float:
		dst = append(dst, tagFloat)
		bits := math.Float64bits(float64(x))
		if x == 0 {
			bits = 0
		}
		return binary.LittleEndian.AppendUint64(dst, bits)
	case Str:
		dst = append(dst, tagString)
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		return append(dst, x...)
	case *Set:
		dst = append(dst, tagSet)
		dst = binary.AppendUvarint(dst, uint64(len(x.members)))
		for _, m := range x.members {
			dst = AppendEncode(dst, m.Elem)
			dst = AppendEncode(dst, m.Scope)
		}
		return dst
	default:
		panic(fmt.Sprintf("core: cannot encode %T", v))
	}
}

// Encode returns the canonical encoding of v.
func Encode(v Value) []byte { return AppendEncode(nil, v) }

// Key returns the canonical encoding as a string, suitable as an exact
// map key: Key(a) == Key(b) iff Equal(a, b).
func Key(v Value) string { return string(Encode(v)) }

// OrderKey returns an encoding whose LEXICOGRAPHIC byte order agrees
// with Compare for atoms: two atoms a, b satisfy Compare(a, b) < 0 iff
// OrderKey(a) < OrderKey(b) as strings. This is the key form for ordered
// indexes (B+tree range scans); the exact-match Key remains the cheaper
// choice for hash indexes. Keys are standalone (never concatenated), so
// no terminators are needed.
//
// Sets order after all atoms (matching the kind rank) but only by their
// canonical encoding, which preserves equality and kind-grouping, not
// the full Compare order — range-scanning over set-valued keys is not
// supported.
func OrderKey(v Value) string {
	switch x := v.(type) {
	case Bool:
		if x {
			return string([]byte{tagBool, 1})
		}
		return string([]byte{tagBool, 0})
	case Int:
		var b [9]byte
		b[0] = tagInt
		binary.BigEndian.PutUint64(b[1:], uint64(int64(x))+(1<<63))
		return string(b[:])
	case Float:
		bits := math.Float64bits(float64(x))
		if x == 0 {
			bits = 0
		}
		if bits&(1<<63) != 0 {
			bits = ^bits // negative floats: reverse order
		} else {
			bits |= 1 << 63 // positive floats: after negatives
		}
		var b [9]byte
		b[0] = tagFloat
		binary.BigEndian.PutUint64(b[1:], bits)
		return string(b[:])
	case Str:
		return string(append([]byte{tagString}, x...))
	case *Set:
		return string(append([]byte{tagSet}, Encode(x)...))
	default:
		panic(fmt.Sprintf("core: cannot order-encode %T", v))
	}
}

// ErrCorrupt reports a malformed encoding.
var ErrCorrupt = errors.New("core: corrupt value encoding")

// Decode parses one value from the front of buf and returns it with the
// number of bytes consumed.
func Decode(buf []byte) (Value, int, error) {
	if len(buf) == 0 {
		return nil, 0, ErrCorrupt
	}
	switch buf[0] {
	case tagBool:
		if len(buf) < 2 {
			return nil, 0, ErrCorrupt
		}
		switch buf[1] {
		case 0:
			return Bool(false), 2, nil
		case 1:
			return Bool(true), 2, nil
		default:
			return nil, 0, ErrCorrupt
		}
	case tagInt:
		u, n := binary.Uvarint(buf[1:])
		if n <= 0 {
			return nil, 0, ErrCorrupt
		}
		i := int64(u>>1) ^ -int64(u&1)
		return Int(i), 1 + n, nil
	case tagFloat:
		if len(buf) < 9 {
			return nil, 0, ErrCorrupt
		}
		bits := binary.LittleEndian.Uint64(buf[1:9])
		f := math.Float64frombits(bits)
		if math.IsNaN(f) {
			return nil, 0, ErrCorrupt
		}
		return Float(f), 9, nil
	case tagString:
		l, n := binary.Uvarint(buf[1:])
		if n <= 0 || uint64(len(buf)) < 1+uint64(n)+l {
			return nil, 0, ErrCorrupt
		}
		start := 1 + n
		return Str(buf[start : start+int(l)]), start + int(l), nil
	case tagSet:
		cnt, n := binary.Uvarint(buf[1:])
		if n <= 0 || cnt > uint64(len(buf)) {
			return nil, 0, ErrCorrupt
		}
		off := 1 + n
		ms := make([]Member, 0, cnt)
		for i := uint64(0); i < cnt; i++ {
			elem, k, err := Decode(buf[off:])
			if err != nil {
				return nil, 0, err
			}
			off += k
			scope, k, err := Decode(buf[off:])
			if err != nil {
				return nil, 0, err
			}
			off += k
			ms = append(ms, Member{Elem: elem, Scope: scope})
		}
		return ownSet(ms), off, nil
	default:
		return nil, 0, ErrCorrupt
	}
}

// DecodeFull parses buf as exactly one value with no trailing bytes.
func DecodeFull(buf []byte) (Value, error) {
	v, n, err := Decode(buf)
	if err != nil {
		return nil, err
	}
	if n != len(buf) {
		return nil, ErrCorrupt
	}
	return v, nil
}
