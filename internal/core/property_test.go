package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genValue is a local random-value generator for testing/quick. (The
// shared generator in internal/xtest depends on core, so core's own
// property tests roll their own.)
func genValue(r *rand.Rand, depth int) Value {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			return Int(r.Intn(4))
		case 1:
			return Str(string(rune('a' + r.Intn(3))))
		default:
			return Bool(r.Intn(2) == 0)
		}
	}
	return genSet(r, depth)
}

func genSet(r *rand.Rand, depth int) *Set {
	n := r.Intn(4)
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		scope := Value(Empty())
		if r.Intn(2) == 0 {
			scope = genValue(r, depth-1)
		}
		b.Add(genValue(r, depth-1), scope)
	}
	return b.Set()
}

// setBox adapts *Set to testing/quick generation.
type setBox struct{ S *Set }

func (setBox) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(setBox{S: genSet(r, 2)})
}

var quickCfg = &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}

func TestQuickUnionCommutative(t *testing.T) {
	f := func(a, b setBox) bool { return Equal(Union(a.S, b.S), Union(b.S, a.S)) }
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionAssociative(t *testing.T) {
	f := func(a, b, c setBox) bool {
		return Equal(Union(Union(a.S, b.S), c.S), Union(a.S, Union(b.S, c.S)))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectCommutative(t *testing.T) {
	f := func(a, b setBox) bool { return Equal(Intersect(a.S, b.S), Intersect(b.S, a.S)) }
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// a ∼ (b ∪ c) = (a ∼ b) ∩ (a ∼ c) and a ∼ (b ∩ c) = (a ∼ b) ∪ (a ∼ c).
	f := func(a, b, c setBox) bool {
		l1 := Diff(a.S, Union(b.S, c.S))
		r1 := Intersect(Diff(a.S, b.S), Diff(a.S, c.S))
		l2 := Diff(a.S, Intersect(b.S, c.S))
		r2 := Union(Diff(a.S, b.S), Diff(a.S, c.S))
		return Equal(l1, r1) && Equal(l2, r2)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDistributivity(t *testing.T) {
	f := func(a, b, c setBox) bool {
		l := Intersect(a.S, Union(b.S, c.S))
		r := Union(Intersect(a.S, b.S), Intersect(a.S, c.S))
		return Equal(l, r)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAbsorption(t *testing.T) {
	f := func(a, b setBox) bool {
		return Equal(Union(a.S, Intersect(a.S, b.S)), a.S) &&
			Equal(Intersect(a.S, Union(a.S, b.S)), a.S)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubsetCharacterization(t *testing.T) {
	f := func(a, b setBox) bool {
		return Subset(a.S, b.S) == Equal(Union(a.S, b.S), b.S)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDiffUnionPartition(t *testing.T) {
	// (a ∼ b) ∪ (a ∩ b) = a and the two parts are disjoint.
	f := func(a, b setBox) bool {
		d, i := Diff(a.S, b.S), Intersect(a.S, b.S)
		return Equal(Union(d, i), a.S) && Intersect(d, i).IsEmpty()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEncodeRoundTrip(t *testing.T) {
	f := func(a setBox) bool {
		v, err := DecodeFull(Encode(a.S))
		return err == nil && Equal(v, a.S)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompareConsistentWithEncode(t *testing.T) {
	// Structural equality agrees with encoding equality.
	f := func(a, b setBox) bool {
		return Equal(a.S, b.S) == (Key(a.S) == Key(b.S))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickConcatLength(t *testing.T) {
	f := func(a, b setBox) bool {
		xs, ys := a.S.Elems(), b.S.Elems()
		x, y := Tuple(xs...), Tuple(ys...)
		z, ok := Concat(x, y)
		if !ok {
			return false
		}
		n, ok := TupLen(z)
		return ok && n == len(xs)+len(ys)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRenderParsesStable(t *testing.T) {
	// Rendering is deterministic for equal values.
	f := func(a setBox) bool {
		b := NewSet(a.S.Members()...)
		return a.S.String() == b.String()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}
