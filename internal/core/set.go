package core

import "sort"

// Member is one scoped membership fact: Elem ∈_Scope set. Both fields are
// arbitrary values. The classical "x ∈ A" is Member{Elem: x, Scope: ∅}.
type Member struct {
	Elem  Value
	Scope Value
}

// M builds a member with an explicit scope.
func M(elem, scope Value) Member { return Member{Elem: elem, Scope: scope} }

// E builds a member with the classical (empty-set) scope.
func E(elem Value) Member { return Member{Elem: elem, Scope: Empty()} }

// Set is an immutable extended set: a canonical (sorted, deduplicated)
// sequence of members. The zero value is not valid; use Empty or NewSet.
type Set struct {
	members []Member
	hash    uint64
}

var emptySet = &Set{hash: hashKindUint64(KindSet, 0)}

// Empty returns the empty set ∅.
func Empty() *Set { return emptySet }

// Kind implements Value.
func (*Set) Kind() Kind { return KindSet }

func (s *Set) digest() uint64 { return s.hash }

// NewSet builds a canonical extended set from members. Duplicate
// (element, scope) pairs collapse; order is irrelevant.
func NewSet(members ...Member) *Set {
	if len(members) == 0 {
		return emptySet
	}
	ms := make([]Member, len(members))
	copy(ms, members)
	return ownSet(ms)
}

// ownSet canonicalizes ms in place and wraps it. The caller must not
// retain ms.
func ownSet(ms []Member) *Set {
	if len(ms) == 0 {
		return emptySet
	}
	sort.Slice(ms, func(i, j int) bool { return compareMembers(ms[i], ms[j]) < 0 })
	w := 1
	for i := 1; i < len(ms); i++ {
		if compareMembers(ms[i], ms[w-1]) != 0 {
			ms[w] = ms[i]
			w++
		}
	}
	ms = ms[:w]
	h := hashKindUint64(KindSet, uint64(len(ms)))
	for _, m := range ms {
		h = hashUint64(h, m.Elem.digest())
		h = hashUint64(h, m.Scope.digest())
	}
	return &Set{members: ms, hash: h}
}

// S builds a classical set: every argument becomes a member under the
// empty scope.
func S(elems ...Value) *Set {
	ms := make([]Member, len(elems))
	for i, e := range elems {
		ms[i] = Member{Elem: e, Scope: emptySet}
	}
	return ownSet(ms)
}

// Len returns the number of members (distinct element/scope pairs).
func (s *Set) Len() int { return len(s.members) }

// IsEmpty reports whether s is ∅.
func (s *Set) IsEmpty() bool { return len(s.members) == 0 }

// Members returns the canonical member sequence without copying: the
// returned slice IS the set's identity. The caller must not modify it,
// append to it, sort it, or retain it beyond the enclosing operation —
// a single write silently corrupts Equal, Compare and Digest for every
// alias of the set. Use CopyMembers for a mutable snapshot. The
// setmutate analyzer (cmd/xstvet) enforces this contract.
func (s *Set) Members() []Member { return s.members }

// CopyMembers returns a freshly allocated copy of the canonical member
// sequence, safe to mutate, sort, or retain.
func (s *Set) CopyMembers() []Member {
	out := make([]Member, len(s.members))
	copy(out, s.members)
	return out
}

// Member returns the i-th member in canonical order.
func (s *Set) Member(i int) Member { return s.members[i] }

// Each calls fn for every member in canonical order, stopping early if fn
// returns false.
func (s *Set) Each(fn func(Member) bool) {
	for _, m := range s.members {
		if !fn(m) {
			return
		}
	}
}

// Has reports whether elem ∈_scope s.
func (s *Set) Has(elem, scope Value) bool {
	m := Member{Elem: elem, Scope: scope}
	i := sort.Search(len(s.members), func(i int) bool {
		return compareMembers(s.members[i], m) >= 0
	})
	return i < len(s.members) && compareMembers(s.members[i], m) == 0
}

// HasClassical reports whether elem ∈_∅ s.
func (s *Set) HasClassical(elem Value) bool { return s.Has(elem, emptySet) }

// HasElem reports whether elem belongs to s under any scope.
func (s *Set) HasElem(elem Value) bool {
	i := s.lowerBoundElem(elem)
	return i < len(s.members) && Equal(s.members[i].Elem, elem)
}

// lowerBoundElem returns the index of the first member whose element is
// >= elem.
func (s *Set) lowerBoundElem(elem Value) int {
	return sort.Search(len(s.members), func(i int) bool {
		return Compare(s.members[i].Elem, elem) >= 0
	})
}

// ScopesOf returns every scope under which elem belongs to s, in
// canonical order. The returned slice is subject to the same no-mutate,
// no-retain contract as Members: today it is freshly allocated, but the
// contract keeps a zero-copy implementation possible.
func (s *Set) ScopesOf(elem Value) []Value {
	var scopes []Value
	for i := s.lowerBoundElem(elem); i < len(s.members); i++ {
		if !Equal(s.members[i].Elem, elem) {
			break
		}
		scopes = append(scopes, s.members[i].Scope)
	}
	return scopes
}

// ElemsUnder returns every element that belongs to s under scope, in
// canonical order. Subject to the same no-mutate, no-retain contract as
// Members.
func (s *Set) ElemsUnder(scope Value) []Value {
	var elems []Value
	for _, m := range s.members {
		if Equal(m.Scope, scope) {
			elems = append(elems, m.Elem)
		}
	}
	return elems
}

// Elems returns the distinct elements of s (ignoring scopes), in
// canonical order. Subject to the same no-mutate, no-retain contract as
// Members.
func (s *Set) Elems() []Value {
	var out []Value
	for _, m := range s.members {
		if len(out) == 0 || !Equal(out[len(out)-1], m.Elem) {
			out = append(out, m.Elem)
		}
	}
	return out
}

// Scopes returns the distinct scopes of s, in canonical order. Subject
// to the same no-mutate, no-retain contract as Members.
func (s *Set) Scopes() []Value {
	seen := map[uint64][]Value{}
	var out []Value
	for _, m := range s.members {
		d := m.Scope.digest()
		dup := false
		for _, v := range seen[d] {
			if Equal(v, m.Scope) {
				dup = true
				break
			}
		}
		if !dup {
			seen[d] = append(seen[d], m.Scope)
			out = append(out, m.Scope)
		}
	}
	sort.Slice(out, func(i, j int) bool { return Compare(out[i], out[j]) < 0 })
	return out
}

// IsClassical reports whether every scope of s is ∅, i.e. whether s is a
// classical set.
func (s *Set) IsClassical() bool {
	for _, m := range s.members {
		sc, ok := m.Scope.(*Set)
		if !ok || !sc.IsEmpty() {
			return false
		}
	}
	return true
}

// Builder accumulates members and produces a canonical set. It avoids the
// quadratic cost of repeated Union calls when constructing large sets.
type Builder struct {
	ms []Member
}

// NewBuilder returns a builder with capacity for n members.
func NewBuilder(n int) *Builder { return &Builder{ms: make([]Member, 0, n)} }

// Add appends a member fact elem ∈_scope.
func (b *Builder) Add(elem, scope Value) *Builder {
	b.ms = append(b.ms, Member{Elem: elem, Scope: scope})
	return b
}

// AddClassical appends elem ∈_∅.
func (b *Builder) AddClassical(elem Value) *Builder { return b.Add(elem, emptySet) }

// AddMember appends an existing member.
func (b *Builder) AddMember(m Member) *Builder {
	b.ms = append(b.ms, m)
	return b
}

// AddSet appends every member of s.
func (b *Builder) AddSet(s *Set) *Builder {
	b.ms = append(b.ms, s.members...)
	return b
}

// Len returns the number of accumulated (pre-canonical) members.
func (b *Builder) Len() int { return len(b.ms) }

// Set canonicalizes and returns the accumulated set. The builder is
// invalid afterwards.
func (b *Builder) Set() *Set {
	ms := b.ms
	b.ms = nil
	return ownSet(ms)
}
