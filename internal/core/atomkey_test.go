package core

import "testing"

// TestAtomKeyOf pins the fast-path key to structural equality: atoms
// get the same AtomKey iff Equal holds, across every kind pair that
// could plausibly collide.
func TestAtomKeyOf(t *testing.T) {
	atoms := []Value{
		Bool(false), Bool(true),
		Int(0), Int(1), Int(-1),
		Float(0), Float(1), Float(1.5),
		Str(""), Str("1"), Str("true"),
	}
	for _, a := range atoms {
		ka, ok := AtomKeyOf(a)
		if !ok {
			t.Fatalf("AtomKeyOf(%v) not an atom", a)
		}
		for _, b := range atoms {
			kb, _ := AtomKeyOf(b)
			if (ka == kb) != Equal(a, b) {
				t.Errorf("AtomKeyOf(%v) == AtomKeyOf(%v) is %v, Equal is %v",
					a, b, ka == kb, Equal(a, b))
			}
		}
	}
	// Negative zero normalizes like Key does.
	kz, _ := AtomKeyOf(Float(0.0))
	kn, _ := AtomKeyOf(Float(negZero())) // negZero from value_test.go
	if kz != kn {
		t.Error("AtomKeyOf distinguishes -0.0 from +0.0; Key does not")
	}
	if _, ok := AtomKeyOf(nil); ok {
		t.Error("AtomKeyOf(nil) claimed atom")
	}
	// Sets and tuples are not atoms.
	for _, v := range []Value{S(), S(Int(1)), Tuple(Int(1))} {
		if _, ok := AtomKeyOf(v); ok {
			t.Errorf("AtomKeyOf(%v) claimed atom", v)
		}
	}
}
