package core

import "testing"

func TestPairIsDef72(t *testing.T) {
	p := Pair(Str("x"), Str("y"))
	want := NewSet(M(Str("x"), Int(1)), M(Str("y"), Int(2)))
	if !Equal(p, want) {
		t.Fatalf("⟨x,y⟩ = %v, want {x^1, y^2}", p)
	}
}

func TestTupleRecognizer(t *testing.T) {
	if n, ok := TupLen(Tuple(Int(1), Int(2), Int(3))); !ok || n != 3 {
		t.Fatalf("tup(⟨1,2,3⟩) = %d,%v", n, ok)
	}
	if n, ok := TupLen(Empty()); !ok || n != 0 {
		t.Fatal("∅ is the 0-tuple")
	}
	if _, ok := TupLen(S(Int(1))); ok {
		t.Fatal("classical singleton is not a tuple (scope ∅, not 1)")
	}
	if _, ok := TupLen(NewSet(M(Str("a"), Int(1)), M(Str("b"), Int(3)))); ok {
		t.Fatal("index gap means not a tuple")
	}
	if _, ok := TupLen(Int(5)); ok {
		t.Fatal("atom is not a tuple")
	}
	// Duplicate elements at distinct positions are fine: ⟨a,a⟩.
	if n, ok := TupLen(Tuple(Str("a"), Str("a"))); !ok || n != 2 {
		t.Fatal("⟨a,a⟩ is a 2-tuple")
	}
}

func TestTupleSharedPositions(t *testing.T) {
	// {a^1, b^1} has two members on position 1: not a tuple.
	s := NewSet(M(Str("a"), Int(1)), M(Str("b"), Int(1)))
	if _, ok := TupLen(s); ok {
		t.Fatal("position collision must not be a tuple")
	}
}

func TestTupleElemsOrder(t *testing.T) {
	elems, ok := TupleElems(Tuple(Str("c"), Str("a"), Str("b")))
	if !ok || len(elems) != 3 {
		t.Fatal("TupleElems failed")
	}
	for i, want := range []string{"c", "a", "b"} {
		if !Equal(elems[i], Str(want)) {
			t.Fatalf("position %d = %v, want %q", i+1, elems[i], want)
		}
	}
}

func TestTupleAt(t *testing.T) {
	tp := Tuple(Str("p"), Str("q"))
	if !Equal(TupleAt(tp, 1), Str("p")) || !Equal(TupleAt(tp, 2), Str("q")) {
		t.Fatal("TupleAt wrong")
	}
	for _, bad := range []func(){
		func() { TupleAt(tp, 0) },
		func() { TupleAt(tp, 3) },
		func() { TupleAt(S(Int(1)), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("TupleAt must panic on invalid use")
				}
			}()
			bad()
		}()
	}
}

func TestConcatDef92(t *testing.T) {
	x := Tuple(Str("a"), Str("b"), Str("c"), Str("d"))
	y := Tuple(Str("w"), Str("x"), Str("y"), Str("z"))
	z, ok := Concat(x, y)
	if !ok {
		t.Fatal("Concat of tuples must succeed")
	}
	want := Tuple(Str("a"), Str("b"), Str("c"), Str("d"), Str("w"), Str("x"), Str("y"), Str("z"))
	if !Equal(z, want) {
		t.Fatalf("concat = %v", z)
	}
	// tup(x·y) = n + m.
	if n, _ := TupLen(z); n != 8 {
		t.Fatalf("tup(x·y) = %d, want 8", n)
	}
}

func TestConcatWithEmptyTuple(t *testing.T) {
	x := Tuple(Str("a"))
	if z, ok := Concat(x, Empty()); !ok || !Equal(z, x) {
		t.Fatal("x · ⟨⟩ = x")
	}
	if z, ok := Concat(Empty(), x); !ok || !Equal(z, x) {
		t.Fatal("⟨⟩ · x = x")
	}
}

func TestConcatNonTuple(t *testing.T) {
	if _, ok := Concat(S(Int(1)), Tuple(Int(2))); ok {
		t.Fatal("Concat of non-tuple must fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustConcat must panic on non-tuple")
		}
	}()
	MustConcat(Int(1), Int(2))
}

func TestTupleScoped(t *testing.T) {
	m := TupleScoped(
		[]Value{Str("a"), Str("x")},
		[]Value{Str("A"), Str("Z")},
	)
	if !Equal(m.Elem, Tuple(Str("a"), Str("x"))) || !Equal(m.Scope, Tuple(Str("A"), Str("Z"))) {
		t.Fatal("TupleScoped wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	TupleScoped([]Value{Str("a")}, nil)
}

func TestTupleRendering(t *testing.T) {
	if got := Tuple(Str("a"), Str("b")).String(); got != `<"a","b">` {
		t.Fatalf("tuple renders as %q", got)
	}
	if got := NewSet(M(Int(1), Str("s"))).String(); got != `{1^"s"}` {
		t.Fatalf("scoped member renders as %q", got)
	}
	if got := S(Int(1), Int(2)).String(); got != "{1, 2}" {
		t.Fatalf("classical set renders as %q", got)
	}
}
