package core

import (
	"bytes"
	"testing"
)

func roundTrip(t *testing.T, v Value) {
	t.Helper()
	enc := Encode(v)
	got, err := DecodeFull(enc)
	if err != nil {
		t.Fatalf("decode %v: %v", v, err)
	}
	if !Equal(got, v) {
		t.Fatalf("round trip %v -> %v", v, got)
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	values := []Value{
		Bool(true), Bool(false),
		Int(0), Int(1), Int(-1), Int(1 << 40), Int(-(1 << 40)),
		Float(0), Float(3.14), Float(-2.5e300),
		Str(""), Str("hello"), Str("héllo ∅"),
		Empty(),
		S(Int(1), Int(2)),
		Pair(Str("a"), Str("b")),
		NewSet(M(S(Int(1)), Pair(Int(2), Int(3)))),
		Tuple(Str("a"), Empty(), S(Bool(true))),
	}
	for _, v := range values {
		roundTrip(t, v)
	}
}

func TestEncodeInjective(t *testing.T) {
	a := Encode(NewSet(M(Int(1), Int(2))))
	b := Encode(NewSet(M(Int(2), Int(1))))
	if bytes.Equal(a, b) {
		t.Fatal("distinct values must encode differently")
	}
	// Canonical: construction order must not affect the encoding.
	x := Encode(S(Int(1), Int(2), Int(3)))
	y := Encode(S(Int(3), Int(1), Int(2)))
	if !bytes.Equal(x, y) {
		t.Fatal("equal values must encode identically")
	}
}

func TestKeyAsMapKey(t *testing.T) {
	m := map[string]int{}
	m[Key(S(Int(1), Int(2)))] = 1
	if m[Key(S(Int(2), Int(1)))] != 1 {
		t.Fatal("Key must be order-insensitive")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{0xFF},
		{tagBool},
		{tagBool, 2},
		{tagFloat, 1, 2},
		{tagString, 10, 'a'},
		{tagSet, 200},
	}
	for _, c := range cases {
		if _, _, err := Decode(c); err == nil {
			t.Fatalf("Decode(% x) must fail", c)
		}
	}
	// Trailing garbage must fail DecodeFull but not Decode.
	buf := append(Encode(Int(7)), 0)
	if _, _, err := Decode(buf); err != nil {
		t.Fatal("Decode with trailing bytes must succeed")
	}
	if _, err := DecodeFull(buf); err == nil {
		t.Fatal("DecodeFull with trailing bytes must fail")
	}
}

func TestDecodeRejectsNaN(t *testing.T) {
	buf := []byte{tagFloat, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xf8, 0x7f}
	if _, _, err := Decode(buf); err == nil {
		t.Fatal("NaN payload must be rejected")
	}
}

func TestOrderKeyPreservesAtomOrder(t *testing.T) {
	atoms := []Value{
		Bool(false), Bool(true),
		Int(-1 << 40), Int(-300), Int(-1), Int(0), Int(1), Int(127),
		Int(128), Int(300), Int(500), Int(10000), Int(1 << 40),
		Float(-1e300), Float(-2.5), Float(-0.0), Float(0), Float(0.5),
		Float(2.5), Float(1e300),
		Str(""), Str("a"), Str("ab"), Str("b"),
	}
	for _, a := range atoms {
		for _, b := range atoms {
			cmp := Compare(a, b)
			ka, kb := OrderKey(a), OrderKey(b)
			var kcmp int
			switch {
			case ka < kb:
				kcmp = -1
			case ka > kb:
				kcmp = 1
			}
			if cmp != kcmp {
				t.Fatalf("OrderKey order mismatch: %v vs %v (Compare %d, key %d)", a, b, cmp, kcmp)
			}
		}
	}
}

func TestOrderKeySetsGroupAfterAtoms(t *testing.T) {
	s := S(Int(1))
	if OrderKey(Str("zzz")) >= OrderKey(s) {
		t.Fatal("sets must order after atoms")
	}
	if OrderKey(s) != OrderKey(S(Int(1))) {
		t.Fatal("equal sets must share order keys")
	}
}
