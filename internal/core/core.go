package core
