package core

import "math"

// AtomKey is a comparable map key covering the four atom kinds (Bool,
// Int, Float, Str): for atoms a and b, AtomKey(a) == AtomKey(b) iff
// Equal(a, b), so a map[AtomKey] groups structurally — like keying by
// Key — without building an encoded string per lookup. The Str payload
// shares the value's backing string, so producing an AtomKey never
// allocates.
type AtomKey struct {
	kind Kind
	num  uint64 // Bool/Int payload; Float bits with -0.0 normalized, as in Key
	str  string // Str payload
}

// AtomKeyOf returns v's AtomKey and ok=true when v is an atom.
// Set-valued keys report ok=false and must fall back to Key's canonical
// encoding.
func AtomKeyOf(v Value) (AtomKey, bool) {
	switch x := v.(type) {
	case Bool:
		var n uint64
		if x {
			n = 1
		}
		return AtomKey{kind: KindBool, num: n}, true
	case Int:
		return AtomKey{kind: KindInt, num: uint64(int64(x))}, true
	case Float:
		bits := math.Float64bits(float64(x))
		if x == 0 {
			bits = 0
		}
		return AtomKey{kind: KindFloat, num: bits}, true
	case Str:
		return AtomKey{kind: KindString, str: string(x)}, true
	}
	return AtomKey{}, false
}
