package core

// Tuples in XST are not a separate type: the ordered pair ⟨x, y⟩ is the
// extended set {x^1, y^2} (Def 7.2) and the n-tuple ⟨x1, …, xn⟩ is
// {x1^1, …, xn^n} (Def 9.1). This file provides constructors and the
// tup() recognizer.

// Pair returns the ordered pair ⟨x, y⟩ = {x^1, y^2}.
func Pair(x, y Value) *Set {
	return NewSet(Member{Elem: x, Scope: Int(1)}, Member{Elem: y, Scope: Int(2)})
}

// Tuple returns the n-tuple ⟨x1, …, xn⟩ = {x1^1, …, xn^n}. Tuple() is ∅,
// the 0-tuple.
func Tuple(xs ...Value) *Set {
	ms := make([]Member, len(xs))
	for i, x := range xs {
		ms[i] = Member{Elem: x, Scope: Int(i + 1)}
	}
	return ownSet(ms)
}

// TupleScoped returns the tuple of xs carrying an outer scope sequence:
// the set {x1^s1, …, xn^sn} is not expressible as a plain tuple, so this
// builds {x1^1, …, xn^n} whose *use* sites attach the scope tuple
// ⟨s1,…,sn⟩ at the membership level. It is a convenience for notation
// like ⟨a, x⟩^⟨A, Z⟩: TupleScoped yields the member pair directly.
func TupleScoped(xs, scopes []Value) Member {
	if len(xs) != len(scopes) {
		panic("core: TupleScoped length mismatch")
	}
	return Member{Elem: Tuple(xs...), Scope: Tuple(scopes...)}
}

// TupLen implements the tup() recognizer (Def 9.1): it reports n and true
// iff v is a set of exactly the form {x1^1, …, xn^n}. The empty set is
// the 0-tuple.
func TupLen(v Value) (int, bool) {
	s, ok := v.(*Set)
	if !ok {
		return 0, false
	}
	n := len(s.members)
	seen := make([]bool, n)
	for _, m := range s.members {
		i, ok := m.Scope.(Int)
		if !ok || i < 1 || int(i) > n || seen[i-1] {
			return 0, false
		}
		seen[i-1] = true
	}
	return n, true
}

// IsTuple reports whether v is an n-tuple for some n ≥ 0.
func IsTuple(v Value) bool {
	_, ok := TupLen(v)
	return ok
}

// TupleElems returns the components of an n-tuple in position order, and
// whether v was a tuple at all.
func TupleElems(v Value) ([]Value, bool) {
	n, ok := TupLen(v)
	if !ok {
		return nil, false
	}
	s := v.(*Set)
	out := make([]Value, n)
	for _, m := range s.members {
		out[m.Scope.(Int)-1] = m.Elem
	}
	return out, true
}

// TupleAt returns the i-th component (1-based) of tuple v. It panics if v
// is not a tuple or i is out of range.
func TupleAt(v Value, i int) Value {
	elems, ok := TupleElems(v)
	if !ok {
		panic("core: TupleAt on non-tuple")
	}
	if i < 1 || i > len(elems) {
		panic("core: TupleAt index out of range")
	}
	return elems[i-1]
}

// Concat implements tuple concatenation (Def 9.2): ⟨x1…xn⟩ · ⟨y1…ym⟩ =
// ⟨x1…xn, y1…ym⟩. It reports false if either operand is not a tuple.
func Concat(x, y Value) (*Set, bool) {
	xe, ok := TupleElems(x)
	if !ok {
		return nil, false
	}
	ye, ok := TupleElems(y)
	if !ok {
		return nil, false
	}
	return Tuple(append(append(make([]Value, 0, len(xe)+len(ye)), xe...), ye...)...), true
}

// MustConcat is Concat that panics on non-tuples.
func MustConcat(x, y Value) *Set {
	z, ok := Concat(x, y)
	if !ok {
		panic("core: Concat on non-tuple")
	}
	return z
}
