package core

// Classical (CST-compatible) operations on extended sets. In XST the
// boolean operations act on membership pairs: a member is an (element,
// scope) fact, and union/intersection/difference combine those facts
// exactly as CST combines plain elements. On all-∅-scope sets these
// reduce to the classical operations, which is the compatibility the
// paper requires.

// Union returns a ∪ b.
func Union(a, b *Set) *Set {
	if a.IsEmpty() {
		return b
	}
	if b.IsEmpty() {
		return a
	}
	ms := make([]Member, 0, len(a.members)+len(b.members))
	ms = append(ms, a.members...)
	ms = append(ms, b.members...)
	return ownSet(ms)
}

// UnionAll returns the union of all given sets.
func UnionAll(sets ...*Set) *Set {
	n := 0
	for _, s := range sets {
		n += len(s.members)
	}
	ms := make([]Member, 0, n)
	for _, s := range sets {
		ms = append(ms, s.members...)
	}
	return ownSet(ms)
}

// Intersect returns a ∩ b.
func Intersect(a, b *Set) *Set {
	if a.IsEmpty() || b.IsEmpty() {
		return emptySet
	}
	if len(b.members) < len(a.members) {
		a, b = b, a
	}
	var ms []Member
	for _, m := range a.members {
		if b.Has(m.Elem, m.Scope) {
			ms = append(ms, m)
		}
	}
	return ownSet(ms)
}

// Diff returns a ∼ b (set difference).
func Diff(a, b *Set) *Set {
	if a.IsEmpty() || b.IsEmpty() {
		return a
	}
	var ms []Member
	for _, m := range a.members {
		if !b.Has(m.Elem, m.Scope) {
			ms = append(ms, m)
		}
	}
	return ownSet(ms)
}

// SymDiff returns the symmetric difference (a ∼ b) ∪ (b ∼ a).
func SymDiff(a, b *Set) *Set { return Union(Diff(a, b), Diff(b, a)) }

// Subset reports a ⊆ b.
func Subset(a, b *Set) bool {
	if len(a.members) > len(b.members) {
		return false
	}
	for _, m := range a.members {
		if !b.Has(m.Elem, m.Scope) {
			return false
		}
	}
	return true
}

// ProperSubset reports a ⊂ b with a ≠ b.
func ProperSubset(a, b *Set) bool {
	return len(a.members) < len(b.members) && Subset(a, b)
}

// NonEmptySubset reports the paper's "⊆̷" relation: a ⊆ b and a ≠ ∅.
func NonEmptySubset(a, b *Set) bool { return !a.IsEmpty() && Subset(a, b) }

// Singleton reports Sing(v): v is a set with exactly one member.
func Singleton(v Value) bool {
	s, ok := v.(*Set)
	return ok && len(s.members) == 1
}

// Powerset returns ℘(s): the set of all subsets of s under the classical
// scope. It panics if s has more than 20 members (2^20 subsets) to guard
// against accidental blow-up.
func Powerset(s *Set) *Set {
	n := len(s.members)
	if n > 20 {
		panic("core: Powerset of set with more than 20 members")
	}
	total := 1 << uint(n)
	b := NewBuilder(total)
	for mask := 0; mask < total; mask++ {
		sub := NewBuilder(n)
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				sub.AddMember(s.members[i])
			}
		}
		b.AddClassical(sub.Set())
	}
	return b.Set()
}

// Subsets calls fn with every subset of s, in an unspecified order,
// stopping early if fn returns false. It enumerates lazily and so has no
// size guard, but still costs 2^n calls.
func Subsets(s *Set, fn func(*Set) bool) {
	n := len(s.members)
	if n > 62 {
		panic("core: Subsets of set with more than 62 members")
	}
	total := uint64(1) << uint(n)
	for mask := uint64(0); mask < total; mask++ {
		sub := NewBuilder(n)
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				sub.AddMember(s.members[i])
			}
		}
		if !fn(sub.Set()) {
			return
		}
	}
}

// Card returns the classical cardinality of s: the number of distinct
// elements, ignoring scopes.
func Card(s *Set) int { return len(s.Elems()) }
