// Package core implements the extended-set value model of Childs'
// Extended Set Theory (XST): immutable values that are either atoms
// (integers, floats, strings, booleans) or extended sets — collections of
// (element, scope) membership pairs in which both element and scope are
// themselves arbitrary values.
//
// Classical set theory embeds exactly: a classical set is an extended set
// all of whose scopes are the empty set, and the classical ordered pair
// ⟨x, y⟩ is the extended set {x^1, y^2} (Def 7.2 of the formal text).
//
// All values are kept in canonical form (members sorted under a total
// order with duplicates removed), so structural equality, hashing and
// ordering are well defined and cheap.
package core

import (
	"fmt"
	"math"
	"strconv"
)

// Kind discriminates the value variants.
type Kind uint8

// The value kinds, in their total-order rank.
const (
	KindBool Kind = iota
	KindInt
	KindFloat
	KindString
	KindSet
)

func (k Kind) String() string {
	switch k {
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindSet:
		return "set"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is an immutable XST value: an atom or an extended set.
//
// Implementations are Bool, Int, Float, Str and *Set. Values are deeply
// immutable; it is safe to share them between goroutines.
type Value interface {
	// Kind reports the variant of the value.
	Kind() Kind
	// String renders the value in XST notation.
	String() string
	// digest returns a 64-bit structural hash of the value.
	digest() uint64
}

// Bool is a boolean atom.
type Bool bool

// Int is a signed integer atom.
type Int int64

// Float is a floating-point atom. NaN floats are not valid values; the
// constructors in this package never produce them, and Compare treats all
// NaNs as equal to each other and less than every other float.
type Float float64

// Str is a string atom.
type Str string

// Kind implements Value.
func (Bool) Kind() Kind { return KindBool }

// Kind implements Value.
func (Int) Kind() Kind { return KindInt }

// Kind implements Value.
func (Float) Kind() Kind { return KindFloat }

// Kind implements Value.
func (Str) Kind() Kind { return KindString }

func (b Bool) String() string {
	if b {
		return "true"
	}
	return "false"
}

func (i Int) String() string { return strconv.FormatInt(int64(i), 10) }

func (f Float) String() string {
	s := strconv.FormatFloat(float64(f), 'g', -1, 64)
	// Keep floats visually distinct from ints so rendering round-trips.
	if !containsAny(s, ".eE") && s != "NaN" && s != "+Inf" && s != "-Inf" {
		s += ".0"
	}
	return s
}

func (s Str) String() string { return strconv.Quote(string(s)) }

func containsAny(s, chars string) bool {
	for i := 0; i < len(s); i++ {
		for j := 0; j < len(chars); j++ {
			if s[i] == chars[j] {
				return true
			}
		}
	}
	return false
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func hashUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = hashByte(h, byte(v>>(8*i)))
	}
	return h
}

func hashKindUint64(k Kind, v uint64) uint64 {
	return hashUint64(hashByte(fnvOffset, byte(k)), v)
}

func (b Bool) digest() uint64 {
	if b {
		return hashKindUint64(KindBool, 1)
	}
	return hashKindUint64(KindBool, 0)
}

func (i Int) digest() uint64 { return hashKindUint64(KindInt, uint64(i)) }

func (f Float) digest() uint64 {
	bits := math.Float64bits(float64(f))
	if f == 0 { // normalize -0.0 and +0.0
		bits = 0
	}
	return hashKindUint64(KindFloat, bits)
}

func (s Str) digest() uint64 {
	h := hashByte(fnvOffset, byte(KindString))
	for i := 0; i < len(s); i++ {
		h = hashByte(h, s[i])
	}
	return h
}

// Compare defines the total order on values used for canonical form.
// Values of distinct kinds order by kind rank; atoms order naturally
// within their kind; sets order lexicographically over their canonical
// member sequences (element before scope). It returns -1, 0 or +1.
func Compare(a, b Value) int {
	ka, kb := a.Kind(), b.Kind()
	if ka != kb {
		if ka < kb {
			return -1
		}
		return 1
	}
	switch ka {
	case KindBool:
		x, y := a.(Bool), b.(Bool)
		switch {
		case x == y:
			return 0
		case !bool(x):
			return -1
		default:
			return 1
		}
	case KindInt:
		x, y := a.(Int), b.(Int)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	case KindFloat:
		x, y := float64(a.(Float)), float64(b.(Float))
		xn, yn := math.IsNaN(x), math.IsNaN(y)
		switch {
		case xn && yn:
			return 0
		case xn:
			return -1
		case yn:
			return 1
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	case KindString:
		x, y := a.(Str), b.(Str)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	case KindSet:
		return compareSets(a.(*Set), b.(*Set))
	default:
		panic("core: unknown kind " + ka.String())
	}
}

func compareSets(a, b *Set) int {
	if a == b {
		return 0
	}
	n := len(a.members)
	if len(b.members) < n {
		n = len(b.members)
	}
	for i := 0; i < n; i++ {
		if c := compareMembers(a.members[i], b.members[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a.members) < len(b.members):
		return -1
	case len(a.members) > len(b.members):
		return 1
	default:
		return 0
	}
}

func compareMembers(a, b Member) int {
	if c := Compare(a.Elem, b.Elem); c != 0 {
		return c
	}
	return Compare(a.Scope, b.Scope)
}

// Equal reports whether two values are structurally identical.
func Equal(a, b Value) bool {
	//lint:ignore valueeq Equal IS the structural comparison; identity (interned emptySet, shared subtrees) is its sound fast path
	if a == b {
		return true
	}
	if a.digest() != b.digest() {
		return false
	}
	return Compare(a, b) == 0
}

// Digest returns a 64-bit structural hash of v. Equal values always have
// equal digests; the converse holds only probabilistically, so use Equal
// for decisions and Digest for bucketing.
func Digest(v Value) uint64 { return v.digest() }
