package core_test

import (
	"fmt"

	"xst/internal/core"
)

func ExampleNewSet() {
	// Membership carries a scope: x ∈ₛ A.
	person := core.NewSet(
		core.M(core.Str("alice"), core.Str("name")),
		core.M(core.Int(30), core.Str("age")),
	)
	fmt.Println(person)
	fmt.Println(person.Has(core.Str("alice"), core.Str("name")))
	// Output:
	// {30^"age", "alice"^"name"}
	// true
}

func ExamplePair() {
	// The classical ordered pair is the extended set {x^1, y^2}.
	p := core.Pair(core.Str("key"), core.Str("value"))
	fmt.Println(p)
	n, _ := core.TupLen(p)
	fmt.Println("tup =", n)
	// Output:
	// <"key","value">
	// tup = 2
}

func ExampleUnion() {
	a := core.S(core.Int(1), core.Int(2))
	b := core.S(core.Int(2), core.Int(3))
	fmt.Println(core.Union(a, b))
	fmt.Println(core.Intersect(a, b))
	fmt.Println(core.Diff(a, b))
	// Output:
	// {1, 2, 3}
	// {2}
	// {1}
}

func ExampleConcat() {
	x := core.Tuple(core.Str("a"), core.Str("b"))
	y := core.Tuple(core.Str("c"))
	z, _ := core.Concat(x, y)
	fmt.Println(z)
	// Output:
	// <"a","b","c">
}

func ExampleEncode() {
	// The canonical codec is injective: equal sets encode identically
	// regardless of construction order.
	a := core.S(core.Int(1), core.Int(2))
	b := core.S(core.Int(2), core.Int(1))
	fmt.Println(core.Key(a) == core.Key(b))
	v, _ := core.DecodeFull(core.Encode(a))
	fmt.Println(core.Equal(v, a))
	// Output:
	// true
	// true
}
