package core

import "testing"

// FuzzDecode checks that arbitrary byte strings never panic the decoder
// and that everything it accepts re-encodes canonically (decode∘encode
// is the identity on the decoder's image).
func FuzzDecode(f *testing.F) {
	seeds := []Value{
		Int(0), Int(-1), Int(1 << 40),
		Str("hello"), Bool(true), Float(2.5),
		Empty(), S(Int(1), Int(2)),
		Pair(Str("a"), Str("b")),
		NewSet(M(S(Int(1)), Pair(Int(2), Int(3)))),
	}
	for _, v := range seeds {
		f.Add(Encode(v))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00})
	f.Add([]byte{tagSet, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeFull(data)
		if err != nil {
			return
		}
		// Round trip must be canonical and stable.
		re := Encode(v)
		v2, err := DecodeFull(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !Equal(v, v2) {
			t.Fatalf("round trip changed value: %v vs %v", v, v2)
		}
		// Note: the decoder accepts non-canonical member orders, but the
		// decoded value is canonical, so double-encode is stable.
		re2 := Encode(v2)
		if string(re) != string(re2) {
			t.Fatal("encoding not stable")
		}
	})
}
