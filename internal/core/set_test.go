package core

import "testing"

func TestEmptySet(t *testing.T) {
	e := Empty()
	if !e.IsEmpty() || e.Len() != 0 {
		t.Fatal("Empty() must be empty")
	}
	if NewSet() != e {
		t.Fatal("NewSet() must return the shared empty set")
	}
	if e.String() != "{}" {
		t.Fatalf("∅ renders as %q", e.String())
	}
}

func TestNewSetCanonicalizes(t *testing.T) {
	a := NewSet(E(Int(2)), E(Int(1)), E(Int(2)))
	b := NewSet(E(Int(1)), E(Int(2)))
	if !Equal(a, b) {
		t.Fatal("duplicates must collapse and order must not matter")
	}
	if a.Len() != 2 {
		t.Fatalf("Len = %d, want 2", a.Len())
	}
}

func TestScopedMembershipDistinct(t *testing.T) {
	s := NewSet(M(Int(1), Str("x")), M(Int(1), Str("y")))
	if s.Len() != 2 {
		t.Fatal("same element under two scopes is two members")
	}
	if !s.Has(Int(1), Str("x")) || !s.Has(Int(1), Str("y")) {
		t.Fatal("Has must find both scoped memberships")
	}
	if s.Has(Int(1), Str("z")) {
		t.Fatal("Has must miss absent scope")
	}
	if !s.HasElem(Int(1)) || s.HasElem(Int(2)) {
		t.Fatal("HasElem wrong")
	}
}

func TestScopesOfAndElemsUnder(t *testing.T) {
	s := NewSet(
		M(Int(1), Str("x")), M(Int(1), Str("y")),
		M(Int(2), Str("x")), E(Int(3)),
	)
	sc := s.ScopesOf(Int(1))
	if len(sc) != 2 || !Equal(sc[0], Str("x")) || !Equal(sc[1], Str("y")) {
		t.Fatalf("ScopesOf(1) = %v", sc)
	}
	under := s.ElemsUnder(Str("x"))
	if len(under) != 2 || !Equal(under[0], Int(1)) || !Equal(under[1], Int(2)) {
		t.Fatalf("ElemsUnder(x) = %v", under)
	}
	if got := s.ElemsUnder(Str("zzz")); len(got) != 0 {
		t.Fatalf("ElemsUnder(zzz) = %v", got)
	}
}

func TestElemsAndScopesDedup(t *testing.T) {
	s := NewSet(M(Int(1), Str("x")), M(Int(1), Str("y")), M(Int(2), Str("x")))
	if e := s.Elems(); len(e) != 2 {
		t.Fatalf("Elems = %v", e)
	}
	if sc := s.Scopes(); len(sc) != 2 {
		t.Fatalf("Scopes = %v", sc)
	}
}

func TestIsClassical(t *testing.T) {
	if !S(Int(1), Int(2)).IsClassical() {
		t.Fatal("S() builds classical sets")
	}
	if NewSet(M(Int(1), Int(1))).IsClassical() {
		t.Fatal("scoped member is not classical")
	}
	if !Empty().IsClassical() {
		t.Fatal("∅ is classical")
	}
}

func TestEachEarlyStop(t *testing.T) {
	s := S(Int(1), Int(2), Int(3))
	n := 0
	s.Each(func(Member) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("Each visited %d members, want 2", n)
	}
}

func TestBuilder(t *testing.T) {
	b := NewBuilder(4)
	b.Add(Int(1), Str("s")).AddClassical(Int(2)).AddMember(E(Int(2)))
	b.AddSet(S(Int(3)))
	if b.Len() != 4 {
		t.Fatalf("builder Len = %d", b.Len())
	}
	s := b.Set()
	want := NewSet(M(Int(1), Str("s")), E(Int(2)), E(Int(3)))
	if !Equal(s, want) {
		t.Fatalf("built %v, want %v", s, want)
	}
}

func TestNestedSetsAsElementsAndScopes(t *testing.T) {
	inner := S(Int(1))
	s := NewSet(M(inner, inner))
	if !s.Has(inner, S(Int(1))) {
		t.Fatal("structural lookup of nested set failed")
	}
}

func TestMemberAccessor(t *testing.T) {
	s := S(Int(2), Int(1))
	if !Equal(s.Member(0).Elem, Int(1)) || !Equal(s.Member(1).Elem, Int(2)) {
		t.Fatal("Member(i) must follow canonical order")
	}
}

func TestDeepNesting(t *testing.T) {
	// 1000 levels of set nesting: construction, equality, comparison,
	// hashing, rendering and the codec must all stay iterative-safe.
	deep := func() Value {
		v := Value(Int(0))
		for i := 0; i < 1000; i++ {
			v = S(v)
		}
		return v
	}
	a, b := deep(), deep()
	if !Equal(a, b) {
		t.Fatal("deep equality failed")
	}
	if Compare(a, b) != 0 {
		t.Fatal("deep compare failed")
	}
	if Digest(a) != Digest(b) {
		t.Fatal("deep digest failed")
	}
	enc := Encode(a)
	got, err := DecodeFull(enc)
	if err != nil || !Equal(got, a) {
		t.Fatalf("deep codec failed: %v", err)
	}
	if len(a.(*Set).String()) < 1000 {
		t.Fatal("deep rendering failed")
	}
}

func TestWideSet(t *testing.T) {
	// 100k members: builder, lookup and boolean ops at width.
	b := NewBuilder(100_000)
	for i := 0; i < 100_000; i++ {
		b.AddClassical(Int(i))
	}
	s := b.Set()
	if s.Len() != 100_000 {
		t.Fatalf("wide set len = %d", s.Len())
	}
	if !s.HasClassical(Int(99_999)) || s.HasClassical(Int(100_000)) {
		t.Fatal("wide lookup failed")
	}
	half := NewBuilder(50_000)
	for i := 0; i < 100_000; i += 2 {
		half.AddClassical(Int(i))
	}
	if d := Diff(s, half.Set()); d.Len() != 50_000 {
		t.Fatalf("wide diff = %d", d.Len())
	}
}

func TestCopyMembers(t *testing.T) {
	s := NewSet(E(Int(1)), E(Int(2)), M(Int(3), Int(1)))
	cp := s.CopyMembers()
	if len(cp) != s.Len() {
		t.Fatalf("CopyMembers len = %d, want %d", len(cp), s.Len())
	}
	for i, m := range s.Members() {
		if !Equal(cp[i].Elem, m.Elem) || !Equal(cp[i].Scope, m.Scope) {
			t.Fatalf("CopyMembers[%d] = %v, want %v", i, cp[i], m)
		}
	}
	// The copy must have its own backing array: writes through it must not
	// reach the canonical slice.
	before := s.String()
	cp[0] = M(Int(99), Int(99))
	if s.String() != before {
		t.Fatalf("mutating the copy changed the set: %s", s)
	}
	if &cp[0] == &s.Members()[0] {
		t.Fatal("CopyMembers aliases the canonical slice")
	}
}
