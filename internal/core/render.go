package core

import "strings"

// String renders s in XST notation. Tuples render as ⟨…⟩ sugar
// (ASCII: <…>), classical members render without their ∅ scope, and
// other members render elem^scope. The empty set renders as {}.
func (s *Set) String() string {
	var b strings.Builder
	renderSet(&b, s)
	return b.String()
}

func renderSet(b *strings.Builder, s *Set) {
	if elems, ok := TupleElems(s); ok && len(elems) > 0 {
		b.WriteByte('<')
		for i, e := range elems {
			if i > 0 {
				b.WriteByte(',')
			}
			renderValue(b, e)
		}
		b.WriteByte('>')
		return
	}
	b.WriteByte('{')
	for i, m := range s.members {
		if i > 0 {
			b.WriteByte(',')
			b.WriteByte(' ')
		}
		renderValue(b, m.Elem)
		if sc, ok := m.Scope.(*Set); !ok || !sc.IsEmpty() {
			b.WriteByte('^')
			renderValue(b, m.Scope)
		}
	}
	b.WriteByte('}')
}

func renderValue(b *strings.Builder, v Value) {
	if s, ok := v.(*Set); ok {
		renderSet(b, s)
		return
	}
	b.WriteString(v.String())
}
