package core

import (
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindBool: "bool", KindInt: "int", KindFloat: "float",
		KindString: "string", KindSet: "set", Kind(99): "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestCompareAtoms(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(5), Int(5), 0},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("a"), 1},
		{Str("x"), Str("x"), 0},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
		{Float(1.5), Float(2.5), -1},
		{Float(2.5), Float(2.5), 0},
		{Bool(true), Int(0), -1}, // kind rank
		{Int(9), Float(0.1), -1}, // kind rank, not numeric
		{Float(9), Str(""), -1},  // kind rank
		{Str("z"), Empty(), -1},  // kind rank
		{Empty(), Str("z"), 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareNegativeZero(t *testing.T) {
	if Compare(Float(0), Float(negZero())) != 0 {
		t.Error("+0.0 and -0.0 must compare equal")
	}
	if Digest(Float(0)) != Digest(Float(negZero())) {
		t.Error("+0.0 and -0.0 must hash equal")
	}
}

func negZero() float64 {
	z := 0.0
	return -z
}

func TestCompareSets(t *testing.T) {
	a := S(Int(1), Int(2))
	b := S(Int(1), Int(3))
	if Compare(a, b) >= 0 {
		t.Error("lexicographic member order violated")
	}
	if Compare(S(Int(1)), S(Int(1), Int(2))) >= 0 {
		t.Error("prefix must order before extension")
	}
	if Compare(a, a) != 0 {
		t.Error("self-compare must be 0")
	}
}

func TestCompareTotalOrderProperties(t *testing.T) {
	vals := []Value{
		Bool(false), Bool(true), Int(-3), Int(0), Int(7),
		Float(-1.5), Float(0), Float(3.25), Str(""), Str("ab"),
		Empty(), S(Int(1)), S(Int(1), Int(2)), Pair(Int(1), Int(2)),
		NewSet(M(Int(1), Str("s"))),
	}
	for _, a := range vals {
		for _, b := range vals {
			ab, ba := Compare(a, b), Compare(b, a)
			if ab != -ba {
				t.Fatalf("antisymmetry violated for %v, %v", a, b)
			}
			if (ab == 0) != Equal(a, b) {
				t.Fatalf("Equal/Compare disagree for %v, %v", a, b)
			}
			for _, c := range vals {
				if ab <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
					t.Fatalf("transitivity violated for %v ≤ %v ≤ %v", a, b, c)
				}
			}
		}
	}
}

func TestEqualUsesDigestFastPath(t *testing.T) {
	a := S(Int(1), Int(2), Int(3))
	b := S(Int(3), Int(2), Int(1))
	if !Equal(a, b) {
		t.Error("order-insensitive equality failed")
	}
	if Digest(a) != Digest(b) {
		t.Error("equal values must share digests")
	}
}

func TestDigestDistinguishesScopes(t *testing.T) {
	a := NewSet(M(Int(1), Int(2)))
	b := NewSet(M(Int(2), Int(1)))
	if Equal(a, b) {
		t.Error("{1^2} and {2^1} must differ")
	}
}

func TestAtomStringForms(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(42), "42"},
		{Int(-7), "-7"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Str("hi"), `"hi"`},
		{Float(1.5), "1.5"},
		{Float(2), "2.0"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}
