package core

import "testing"

func TestUnionIntersectDiffBasics(t *testing.T) {
	a := S(Int(1), Int(2), Int(3))
	b := S(Int(2), Int(3), Int(4))
	if got := Union(a, b); !Equal(got, S(Int(1), Int(2), Int(3), Int(4))) {
		t.Fatalf("Union = %v", got)
	}
	if got := Intersect(a, b); !Equal(got, S(Int(2), Int(3))) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := Diff(a, b); !Equal(got, S(Int(1))) {
		t.Fatalf("Diff = %v", got)
	}
	if got := SymDiff(a, b); !Equal(got, S(Int(1), Int(4))) {
		t.Fatalf("SymDiff = %v", got)
	}
}

func TestUnionIdentities(t *testing.T) {
	a := S(Int(1))
	if Union(a, Empty()) != a || Union(Empty(), a) != a {
		t.Fatal("union with ∅ must return the operand unchanged")
	}
	if !Intersect(a, Empty()).IsEmpty() {
		t.Fatal("a ∩ ∅ = ∅")
	}
	if Diff(a, Empty()) != a {
		t.Fatal("a ∼ ∅ = a")
	}
	if !Diff(Empty(), a).IsEmpty() {
		t.Fatal("∅ ∼ a = ∅")
	}
}

func TestScopeAwareBooleans(t *testing.T) {
	// {1^x} and {1^y} are disjoint as membership facts.
	a := NewSet(M(Int(1), Str("x")))
	b := NewSet(M(Int(1), Str("y")))
	if !Intersect(a, b).IsEmpty() {
		t.Fatal("same element, different scopes: intersection empty")
	}
	if got := Union(a, b); got.Len() != 2 {
		t.Fatalf("union keeps both scoped facts: %v", got)
	}
}

func TestUnionAll(t *testing.T) {
	got := UnionAll(S(Int(1)), S(Int(2)), S(Int(1), Int(3)))
	if !Equal(got, S(Int(1), Int(2), Int(3))) {
		t.Fatalf("UnionAll = %v", got)
	}
	if !UnionAll().IsEmpty() {
		t.Fatal("UnionAll() = ∅")
	}
}

func TestSubsetFamily(t *testing.T) {
	a := S(Int(1), Int(2))
	b := S(Int(1), Int(2), Int(3))
	if !Subset(a, b) || Subset(b, a) {
		t.Fatal("Subset wrong")
	}
	if !Subset(a, a) || ProperSubset(a, a) {
		t.Fatal("subset reflexive, proper subset irreflexive")
	}
	if !ProperSubset(a, b) {
		t.Fatal("ProperSubset wrong")
	}
	if !Subset(Empty(), a) || NonEmptySubset(Empty(), a) {
		t.Fatal("∅ ⊆ a but not non-empty-subset")
	}
	if !NonEmptySubset(a, b) {
		t.Fatal("NonEmptySubset wrong")
	}
}

func TestSingleton(t *testing.T) {
	if !Singleton(S(Int(1))) {
		t.Fatal("one-member set is a singleton")
	}
	if Singleton(Empty()) || Singleton(S(Int(1), Int(2))) || Singleton(Int(1)) {
		t.Fatal("Singleton false cases wrong")
	}
	// Two scopes on one element: two members, not a singleton.
	if Singleton(NewSet(M(Int(1), Str("x")), M(Int(1), Str("y")))) {
		t.Fatal("two scoped facts are not a singleton")
	}
}

func TestPowerset(t *testing.T) {
	p := Powerset(S(Int(1), Int(2)))
	if p.Len() != 4 {
		t.Fatalf("℘ of 2-set has %d members, want 4", p.Len())
	}
	if !p.HasClassical(Empty()) || !p.HasClassical(S(Int(1), Int(2))) {
		t.Fatal("℘ must contain ∅ and the set itself")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Powerset must panic above the size guard")
		}
	}()
	big := NewBuilder(21)
	for i := 0; i < 21; i++ {
		big.AddClassical(Int(i))
	}
	Powerset(big.Set())
}

func TestSubsetsEnumeration(t *testing.T) {
	n := 0
	Subsets(S(Int(1), Int(2), Int(3)), func(sub *Set) bool {
		if !Subset(sub, S(Int(1), Int(2), Int(3))) {
			t.Fatalf("non-subset produced: %v", sub)
		}
		n++
		return true
	})
	if n != 8 {
		t.Fatalf("enumerated %d subsets, want 8", n)
	}
	n = 0
	Subsets(S(Int(1), Int(2)), func(*Set) bool { n++; return false })
	if n != 1 {
		t.Fatal("Subsets must stop when fn returns false")
	}
}

func TestCard(t *testing.T) {
	s := NewSet(M(Int(1), Str("x")), M(Int(1), Str("y")), E(Int(2)))
	if Card(s) != 2 {
		t.Fatalf("Card = %d, want 2 (distinct elements)", Card(s))
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (membership facts)", s.Len())
	}
}
