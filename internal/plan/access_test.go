package plan

import (
	"context"
	"strings"
	"testing"

	"xst/internal/core"
	"xst/internal/index"
	"xst/internal/stats"
	"xst/internal/store"
	"xst/internal/table"
	"xst/internal/xsp"
	"xst/internal/xtest"
)

// testTables3 extends testTables with an items table joined to orders,
// all column names globally unique.
func testTables3(t testing.TB, users, orders, items int) (*table.Table, *table.Table, *table.Table) {
	t.Helper()
	pool := store.NewBufferPool(store.NewMemPager(), 256)
	u, err := table.Create(pool, table.Schema{Name: "users", Cols: []string{"uid", "city", "score"}})
	if err != nil {
		t.Fatal(err)
	}
	o, err := table.Create(pool, table.Schema{Name: "orders", Cols: []string{"oid", "ouid", "amount"}})
	if err != nil {
		t.Fatal(err)
	}
	it, err := table.Create(pool, table.Schema{Name: "items", Cols: []string{"iid", "ioid", "price"}})
	if err != nil {
		t.Fatal(err)
	}
	r := xtest.NewRand(23)
	for i := 0; i < users; i++ {
		u.Insert(table.Row{core.Int(i), core.Str("city-" + string(rune('a'+r.Intn(4)))), core.Int(r.Intn(100))})
	}
	for i := 0; i < orders; i++ {
		o.Insert(table.Row{core.Int(i), core.Int(r.Intn(users)), core.Int(r.Intn(1000))})
	}
	for i := 0; i < items; i++ {
		it.Insert(table.Row{core.Int(i), core.Int(r.Intn(orders)), core.Int(r.Intn(50))})
	}
	return u, o, it
}

// fullCatalog collects statistics and builds hash + btree indexes on
// the key and numeric columns of all three tables.
func fullCatalog(t testing.TB, u, o, it *table.Table) *Catalog {
	t.Helper()
	sc, err := stats.CollectAll(u, o, it)
	if err != nil {
		t.Fatal(err)
	}
	cat := &Catalog{Stats: sc}
	ctx := context.Background()
	add := func(tab *table.Table, col string, kind IndexKind) {
		ci := tab.Schema().Col(col)
		ti := &TableIndex{Table: tab, Col: col, Kind: kind}
		if kind == HashIdx {
			if ti.Hash, err = index.BuildHash(ctx, tab, ci); err != nil {
				t.Fatal(err)
			}
		} else {
			if ti.BTree, err = index.BuildBTree(ctx, tab, ci); err != nil {
				t.Fatal(err)
			}
		}
		cat.Indexes = append(cat.Indexes, ti)
	}
	add(u, "uid", HashIdx)
	add(u, "score", BTreeIdx)
	add(u, "city", HashIdx)
	add(o, "oid", HashIdx)
	add(o, "ouid", HashIdx)
	add(o, "amount", BTreeIdx)
	add(it, "iid", HashIdx)
	add(it, "price", BTreeIdx)
	return cat
}

// TestIndexDifferentialEquivalence runs a 24-query suite twice — once
// through the statistics/index-aware optimizer, once through the
// heuristic one — and demands identical rows and schemas. This is the
// planner's soundness net: whatever access path or join order the cost
// model picks, the answer may not change.
func TestIndexDifferentialEquivalence(t *testing.T) {
	u, o, it := testTables3(t, 60, 400, 900)
	cat := fullCatalog(t, u, o, it)

	su := func() Node { return &Scan{Table: u} }
	so := func() Node { return &Scan{Table: o} }
	si := func() Node { return &Scan{Table: it} }
	uo := func() Node {
		return &Join{Left: su(), Right: so(), LeftCol: "uid", RightCol: "ouid"}
	}
	uoi := func() Node {
		return &Join{Left: uo(), Right: si(), LeftCol: "oid", RightCol: "ioid"}
	}
	queries := []Node{
		// 1-6: single-table point and range restrictions.
		&Select{Child: su(), Pred: Cmp{Col: "uid", Op: Eq, Val: core.Int(7)}},
		&Select{Child: su(), Pred: Cmp{Col: "score", Op: Lt, Val: core.Int(10)}},
		&Select{Child: su(), Pred: Cmp{Col: "score", Op: Ge, Val: core.Int(95)}},
		&Select{Child: so(), Pred: Cmp{Col: "oid", Op: Eq, Val: core.Int(399)}},
		&Select{Child: so(), Pred: Cmp{Col: "amount", Op: Gt, Val: core.Int(990)}},
		&Select{Child: si(), Pred: Cmp{Col: "price", Op: Le, Val: core.Int(0)}},
		// 7-10: conjunctions (residual predicates over an index probe).
		&Select{Child: su(), Pred: And{Cmp{Col: "uid", Op: Eq, Val: core.Int(3)}, Cmp{Col: "score", Op: Gt, Val: core.Int(1)}}},
		&Select{Child: so(), Pred: And{Cmp{Col: "amount", Op: Ge, Val: core.Int(100)}, Cmp{Col: "amount", Op: Lt, Val: core.Int(120)}}},
		&Select{Child: su(), Pred: And{Cmp{Col: "city", Op: Eq, Val: core.Str("city-a")}, Cmp{Col: "score", Op: Lt, Val: core.Int(5)}}},
		&Select{Child: si(), Pred: And{Cmp{Col: "iid", Op: Eq, Val: core.Int(1)}, Cmp{Col: "price", Op: Ne, Val: core.Int(3)}}},
		// 11-13: misses and edge values.
		&Select{Child: su(), Pred: Cmp{Col: "uid", Op: Eq, Val: core.Int(-1)}},
		&Select{Child: so(), Pred: Cmp{Col: "amount", Op: Lt, Val: core.Int(-5)}},
		&Select{Child: su(), Pred: Cmp{Col: "city", Op: Eq, Val: core.Str("nowhere")}},
		// 14-16: projections and unary shapes above restrictions.
		&Project{Child: &Select{Child: su(), Pred: Cmp{Col: "uid", Op: Eq, Val: core.Int(9)}}, Cols: []string{"city"}},
		&Distinct{Child: &Project{Child: &Select{Child: so(), Pred: Cmp{Col: "amount", Op: Lt, Val: core.Int(50)}}, Cols: []string{"ouid"}}},
		&Limit{N: 5, Child: &Sort{Col: "score", Child: &Select{Child: su(), Pred: Cmp{Col: "score", Op: Ge, Val: core.Int(90)}}}},
		// 17-20: joins with restrictions pushed through index probes.
		&Select{Child: uo(), Pred: Cmp{Col: "uid", Op: Eq, Val: core.Int(11)}},
		&Select{Child: uo(), Pred: And{Cmp{Col: "score", Op: Lt, Val: core.Int(8)}, Cmp{Col: "amount", Op: Gt, Val: core.Int(900)}}},
		&Project{Child: &Select{Child: uo(), Pred: Cmp{Col: "ouid", Op: Eq, Val: core.Int(5)}}, Cols: []string{"city", "amount"}},
		&GroupBy{Child: &Select{Child: uo(), Pred: Cmp{Col: "score", Op: Ge, Val: core.Int(50)}}, Key: "city", Aggs: []AggSpec{{Kind: xsp.Count}}},
		// 21-24: three-way joins exercising the reorderer.
		uoi(),
		&Select{Child: uoi(), Pred: Cmp{Col: "price", Op: Lt, Val: core.Int(3)}},
		&Select{Child: uoi(), Pred: And{Cmp{Col: "uid", Op: Eq, Val: core.Int(20)}, Cmp{Col: "price", Op: Ge, Val: core.Int(10)}}},
		&Project{Child: &Select{Child: uoi(), Pred: Cmp{Col: "score", Op: Gt, Val: core.Int(80)}}, Cols: []string{"uid", "iid"}},
	}
	if len(queries) != 24 {
		t.Fatalf("suite holds %d queries, want 24", len(queries))
	}
	for i, q := range queries {
		naive, nsch, err := Execute(Optimize(q))
		if err != nil {
			t.Fatalf("query %d heuristic: %v", i+1, err)
		}
		costed, csch, err := Execute(OptimizeCatalog(q, cat))
		if err != nil {
			t.Fatalf("query %d cost-based: %v", i+1, err)
		}
		if strings.Join(nsch.Cols, ",") != strings.Join(csch.Cols, ",") {
			t.Fatalf("query %d: schema changed %v vs %v", i+1, nsch.Cols, csch.Cols)
		}
		sameRows(t, naive, costed)
	}
}

// TestAccessPathChoice pins the crossover: a point lookup on a
// near-unique column runs through the index, a half-the-table predicate
// stays on the sequential scan.
func TestAccessPathChoice(t *testing.T) {
	u, o, it := testTables3(t, 200, 100, 10)
	cat := fullCatalog(t, u, o, it)

	point := OptimizeCatalog(&Select{Child: &Scan{Table: u}, Pred: Cmp{Col: "uid", Op: Eq, Val: core.Int(3)}}, cat)
	if got := Explain(point); !strings.Contains(got, "indexscan") {
		t.Fatalf("point lookup skipped the index:\n%s", got)
	}
	// city has 4 distinct values → 25%: reading a quarter of the table
	// through the index costs more than one sequential pass.
	wide := OptimizeCatalog(&Select{Child: &Scan{Table: u}, Pred: Cmp{Col: "city", Op: Eq, Val: core.Str("city-a")}}, cat)
	if got := Explain(wide); strings.Contains(got, "indexscan") {
		t.Fatalf("25%% predicate chose the index:\n%s", got)
	}
	// A narrow range uses the btree; the residual stays as a filter.
	narrow := OptimizeCatalog(&Select{Child: &Scan{Table: u}, Pred: And{
		Cmp{Col: "score", Op: Ge, Val: core.Int(99)},
		Cmp{Col: "city", Op: Eq, Val: core.Str("city-b")},
	}}, cat)
	if got := Explain(narrow); !strings.Contains(got, "indexscan") || !strings.Contains(got, "select[") {
		t.Fatalf("narrow range should probe btree with residual filter:\n%s", got)
	}
	// Without statistics or indexes nothing changes shape.
	bare := OptimizeCatalog(&Select{Child: &Scan{Table: u}, Pred: Cmp{Col: "uid", Op: Eq, Val: core.Int(3)}}, nil)
	if got := Explain(bare); strings.Contains(got, "indexscan") {
		t.Fatalf("nil catalog produced an index path:\n%s", got)
	}
}

// TestJoinOrderBySelectivity: with three joinable tables the reorderer
// must start from the cheapest pair and keep the projection-restored
// column order; the rewrite must not change results (also covered per
// query in the differential suite).
func TestJoinOrderBySelectivity(t *testing.T) {
	u, o, it := testTables3(t, 30, 300, 1500)
	cat := fullCatalog(t, u, o, it)
	q := &Join{
		Left:    &Join{Left: &Scan{Table: it}, Right: &Scan{Table: o}, LeftCol: "ioid", RightCol: "oid"},
		Right:   &Scan{Table: u},
		LeftCol: "ouid", RightCol: "uid",
	}
	got := OptimizeCatalog(q, cat)
	naive, nsch, err := Execute(Optimize(q))
	if err != nil {
		t.Fatal(err)
	}
	costed, csch, err := Execute(got)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(nsch.Cols, ",") != strings.Join(csch.Cols, ",") {
		t.Fatalf("column order changed: %v vs %v", nsch.Cols, csch.Cols)
	}
	sameRows(t, naive, costed)
	// The greedy seed is the cheapest pair — orders⋈users (≤300 rows),
	// not the parse order's items⋈orders (1500) — so the rebuilt tree
	// attaches items last: the outermost join carries the ioid=oid edge
	// over the inner ouid=uid composite.
	exp := Explain(got)
	outer := strings.Index(exp, "join[ioid=oid]")
	inner := strings.Index(exp, "join[ouid=uid]")
	if outer < 0 || inner < 0 || outer > inner {
		t.Fatalf("reorder should seed orders/users and attach items last:\n%s", exp)
	}
}

// TestExplainAnalyzeCatShowsEstimates: the rendered tree names the
// chosen access path and carries est= next to actual rows.
func TestExplainAnalyzeCatShowsEstimates(t *testing.T) {
	u, o, it := testTables3(t, 120, 60, 10)
	cat := fullCatalog(t, u, o, it)
	n := OptimizeCatalog(&Select{Child: &Scan{Table: u}, Pred: Cmp{Col: "uid", Op: Eq, Val: core.Int(17)}}, cat)
	out, err := ExplainAnalyzeCat(context.Background(), n, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "indexscan") {
		t.Fatalf("analyze output misses access path:\n%s", out)
	}
	if !strings.Contains(out, "est=") || !strings.Contains(out, "rows=1") {
		t.Fatalf("analyze output misses estimates next to actuals:\n%s", out)
	}
}
