package plan

import (
	"context"
	"strings"
	"testing"

	"xst/internal/exec"
	"xst/internal/xsp"
	"xst/internal/xtest"
)

// forceParallel lowers the parallel threshold (and caps the fan-out) so
// test-scale tables compile to real parallel trees, restoring the
// defaults on cleanup.
func forceParallel(t testing.TB, threshold, dop int) {
	t.Helper()
	oldT, oldD := ParallelThreshold, MaxDOP
	ParallelThreshold, MaxDOP = threshold, dop
	t.Cleanup(func() { ParallelThreshold, MaxDOP = oldT, oldD })
}

func TestChooseDOP(t *testing.T) {
	_, o := testTables(t, 50, 400)
	scan := &Scan{Table: o}
	if d := ChooseDOP(scan); d != 1 {
		t.Fatalf("400 rows under default threshold chose dop %d, want 1 (serial)", d)
	}
	forceParallel(t, 64, 4)
	if d := ChooseDOP(scan); d != 4 {
		t.Fatalf("dop = %d, want the MaxDOP cap 4", d)
	}
	MaxDOP = 2
	if d := ChooseDOP(scan); d != 2 {
		t.Fatalf("dop = %d, want the MaxDOP cap 2", d)
	}
	ParallelThreshold = 1000
	MaxDOP = 4
	if d := ChooseDOP(scan); d != 1 {
		t.Fatalf("400 rows under threshold 1000 chose dop %d, want 1", d)
	}
	// Joins parallelize off their largest base input.
	u, _ := testTables(t, 50, 0)
	ParallelThreshold = 64
	j := &Join{Left: &Scan{Table: o}, Right: &Scan{Table: u}, LeftCol: "ouid", RightCol: "uid"}
	if d := ChooseDOP(j); d != 4 {
		t.Fatalf("join dop = %d, want 4 from the 400-row probe side", d)
	}
}

// TestCompileDOPMatchesSerial is the parallel refactor's safety net:
// every corpus plan must produce the same row multiset from the
// parallel tree, the serial tree, and the materialized baseline.
func TestCompileDOPMatchesSerial(t *testing.T) {
	for i, p := range streamPlans(t) {
		serial, err := Compile(p)
		if err != nil {
			t.Fatalf("plan %d compile: %v", i, err)
		}
		want, err := exec.Collect(context.Background(), serial)
		if err != nil {
			t.Fatalf("plan %d serial: %v", i, err)
		}
		par, err := CompileDOP(p, 4)
		if err != nil {
			t.Fatalf("plan %d compile dop=4: %v", i, err)
		}
		got, err := exec.Collect(context.Background(), par)
		if err != nil {
			t.Fatalf("plan %d parallel: %v", i, err)
		}
		sameRows(t, got, want)
		mrows, _, err := ExecuteMaterialized(p)
		if err != nil {
			t.Fatalf("plan %d materialized: %v", i, err)
		}
		sameRows(t, got, mrows)
	}
}

// TestCompileDOPBreakerPlans covers the pipeline breakers: parallel
// partial aggregation and the serial operators (sort, distinct, limit)
// stacked above a parallel spine.
func TestCompileDOPBreakerPlans(t *testing.T) {
	u, o := testTables(t, 60, 400)
	join := func() *Join {
		return &Join{Left: &Scan{Table: o}, Right: &Scan{Table: u}, LeftCol: "ouid", RightCol: "uid"}
	}
	plans := []Node{
		&GroupBy{Child: join(), Key: "city",
			Aggs: []AggSpec{{Kind: xsp.Count}, {Kind: xsp.Sum, Col: "amount"}, {Kind: xsp.Max, Col: "score"}}},
		&GroupBy{Child: &Scan{Table: u}, Key: "city", Aggs: []AggSpec{{Kind: xsp.Count}}},
		// Sort/Limit on the unique oid so the parallel tree's arbitrary
		// interleaving cannot change which rows survive.
		&Sort{Child: join(), Col: "oid", Desc: true},
		&Limit{Child: &Sort{Child: join(), Col: "oid"}, N: 7},
		&Distinct{Child: &Project{Child: &Scan{Table: u}, Cols: []string{"city"}}},
	}
	for i, p := range plans {
		serial, err := Compile(p)
		if err != nil {
			t.Fatalf("plan %d compile: %v", i, err)
		}
		want, err := exec.Collect(context.Background(), serial)
		if err != nil {
			t.Fatalf("plan %d serial: %v", i, err)
		}
		par, err := CompileDOP(p, 4)
		if err != nil {
			t.Fatalf("plan %d compile dop=4: %v", i, err)
		}
		got, err := exec.Collect(context.Background(), par)
		if err != nil {
			t.Fatalf("plan %d parallel: %v", i, err)
		}
		sameRows(t, got, want)
	}
}

// TestCompileDOPFallsBackSerial: a plan whose spine cannot fan out
// (aggregate over a limit) compiles to the plain serial tree — no
// exchange operators appear.
func TestCompileDOPFallsBackSerial(t *testing.T) {
	_, o := testTables(t, 50, 400)
	p := &GroupBy{
		Child: &Limit{Child: &Scan{Table: o}, N: 100},
		Key:   "ouid",
		Aggs:  []AggSpec{{Kind: xsp.Count}},
	}
	op, err := CompileDOP(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	exec.Walk(op, func(o exec.Operator, _ int) {
		switch o.(type) {
		case *exec.Gather, *exec.ParallelGroupAgg, *exec.MorselScan:
			t.Fatalf("non-parallelizable plan compiled a parallel operator: %s", o)
		}
	})
	if _, err := exec.Count(context.Background(), op); err != nil {
		t.Fatal(err)
	}
}

// TestParallelExecStats: the cost-chosen parallel run reports its
// worker fan-out and keeps peak in-flight rows bounded by the exchange,
// while producing the same result as the serial tree.
func TestParallelExecStats(t *testing.T) {
	forceParallel(t, 64, 4)
	u, o := testTables(t, 50, 2000)
	p := &GroupBy{
		Child: &Join{Left: &Scan{Table: o}, Right: &Scan{Table: u}, LeftCol: "ouid", RightCol: "uid"},
		Key:   "city",
		Aggs:  []AggSpec{{Kind: xsp.Count}, {Kind: xsp.Sum, Col: "amount"}},
	}
	rows, _, st, err := ExecuteStats(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers == 0 {
		t.Fatal("parallel plan reported zero workers")
	}
	if st.RowsScanned != 2050 {
		t.Fatalf("scanned %d rows, want 2050", st.RowsScanned)
	}
	if bound := 2 * 4 * exec.MaxBatchRows; st.PeakIntermediateRows > bound {
		t.Fatalf("peak %d rows in flight exceeds exchange bound %d", st.PeakIntermediateRows, bound)
	}

	serial, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exec.Collect(context.Background(), serial)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, rows, want)
}

// TestExecStatsSerialBelowThreshold: with the default threshold,
// test-scale queries keep the serial tree (Workers = 0).
func TestExecStatsSerialBelowThreshold(t *testing.T) {
	u, o := testTables(t, 50, 400)
	p := &Join{Left: &Scan{Table: o}, Right: &Scan{Table: u}, LeftCol: "ouid", RightCol: "uid"}
	_, _, st, err := ExecuteStats(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 0 {
		t.Fatalf("small query fanned out to %d workers, want serial", st.Workers)
	}
}

func TestExplainAnalyzeParallel(t *testing.T) {
	forceParallel(t, 64, 4)
	u, o := testTables(t, 50, 2000)
	j := &Join{Left: &Scan{Table: o}, Right: &Scan{Table: u}, LeftCol: "ouid", RightCol: "uid"}
	out, err := ExplainAnalyze(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gather[4]", "morselscan(orders)", "probejoin[", "hashbuild["} {
		if !strings.Contains(out, want) {
			t.Fatalf("parallel ExplainAnalyze missing %q:\n%s", want, out)
		}
	}
	g := &GroupBy{Child: j, Key: "city", Aggs: []AggSpec{{Kind: xsp.Count}}}
	out, err = ExplainAnalyze(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "pgroupagg[") {
		t.Fatalf("parallel aggregate ExplainAnalyze missing pgroupagg:\n%s", out)
	}
}

func TestParallelExecuteCancel(t *testing.T) {
	forceParallel(t, 64, 4)
	u, o := testTables(t, 50, 8000)
	p := &Join{Left: &Scan{Table: o}, Right: &Scan{Table: u}, LeftCol: "ouid", RightCol: "uid"}
	xtest.AssertCancelAborts(t, 5, func(ctx context.Context) error {
		_, _, err := ExecuteCtx(ctx, p)
		return err
	})
}
