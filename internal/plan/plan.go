// Package plan implements a rule-based query planner over the XSP
// engine: logical plans (scan / select / project / join) with
// predicates-as-data, algebraic rewrite rules (merge selections, push
// selections below joins, prune columns), and compilation into
// set-at-a-time physical execution. It is the systems-level form of the
// paper's §12 claim — data management behavior expressed algebraically
// can be *optimized* by manipulating the algebra, because every rewrite
// here is justified by an XST identity:
//
//	merge-selects     R |_σ A |_σ B        = R |_σ (A ⊓ B)    (restriction composition)
//	push-select       (F ⋈ G) |_σ A        = (F |_σ A) ⋈ G    when σ only touches F's positions
//	prune-columns     𝔇_τ(F ⋈ G)           = 𝔇_τ(𝔇_τ'(F) ⋈ 𝔇_τ''(G))
package plan

import (
	"fmt"
	"strings"

	"xst/internal/core"
	"xst/internal/table"
	"xst/internal/xsp"
)

// Node is a logical plan operator. Plans are immutable trees; rewrites
// build new trees.
type Node interface {
	// Schema reports the output schema (column names qualified as the
	// source tables provide them).
	Schema() table.Schema
	// String renders the subtree.
	String() string
}

// Scan reads a stored table.
type Scan struct {
	Table *table.Table
}

// Schema implements Node.
func (s *Scan) Schema() table.Schema { return s.Table.Schema() }

func (s *Scan) String() string { return "scan(" + s.Table.Schema().Name + ")" }

// Select filters by a predicate expression.
type Select struct {
	Child Node
	Pred  Pred
}

// Schema implements Node.
func (s *Select) Schema() table.Schema { return s.Child.Schema() }

func (s *Select) String() string {
	return fmt.Sprintf("select[%v](%v)", s.Pred, s.Child)
}

// Project keeps named columns, in order.
type Project struct {
	Child Node
	Cols  []string
}

// Schema implements Node.
func (p *Project) Schema() table.Schema {
	in := p.Child.Schema()
	return table.Schema{Name: in.Name, Cols: append([]string(nil), p.Cols...)}
}

func (p *Project) String() string {
	return fmt.Sprintf("project[%s](%v)", strings.Join(p.Cols, ","), p.Child)
}

// Join is an equi-join on named columns; output columns are
// left-then-right, with colliding right-side names auto-qualified as
// "table.col" (see table.JoinSchema) so references never silently
// resolve to the wrong side.
type Join struct {
	Left, Right       Node
	LeftCol, RightCol string
}

// Schema implements Node.
func (j *Join) Schema() table.Schema {
	return table.JoinSchema(j.Left.Schema(), j.Right.Schema())
}

func (j *Join) String() string {
	return fmt.Sprintf("join[%s=%s](%v, %v)", j.LeftCol, j.RightCol, j.Left, j.Right)
}

// Distinct collapses duplicate rows (set semantics — canonicalization).
type Distinct struct {
	Child Node
}

// Schema implements Node.
func (d *Distinct) Schema() table.Schema { return d.Child.Schema() }

func (d *Distinct) String() string { return fmt.Sprintf("distinct(%v)", d.Child) }

// Sort orders rows by one column under the canonical value order.
type Sort struct {
	Child Node
	Col   string
	Desc  bool
}

// Schema implements Node.
func (s *Sort) Schema() table.Schema { return s.Child.Schema() }

func (s *Sort) String() string {
	dir := "asc"
	if s.Desc {
		dir = "desc"
	}
	return fmt.Sprintf("sort[%s %s](%v)", s.Col, dir, s.Child)
}

// Limit keeps the first N rows.
type Limit struct {
	Child Node
	N     int
}

// Schema implements Node.
func (l *Limit) Schema() table.Schema { return l.Child.Schema() }

func (l *Limit) String() string { return fmt.Sprintf("limit[%d](%v)", l.N, l.Child) }

// AggSpec names one aggregate over a column (Col ignored for Count).
type AggSpec struct {
	Kind xsp.AggKind
	Col  string
}

func (a AggSpec) String() string {
	if a.Kind == xsp.Count {
		return "count"
	}
	return fmt.Sprintf("%s(%s)", a.Kind, a.Col)
}

// GroupBy groups on a key column and computes aggregates per group;
// output is (key, agg1, agg2, …) in canonical key order.
type GroupBy struct {
	Child Node
	Key   string
	Aggs  []AggSpec
}

// Schema implements Node.
func (g *GroupBy) Schema() table.Schema {
	in := g.Child.Schema()
	cols := make([]string, 0, 1+len(g.Aggs))
	cols = append(cols, g.Key)
	for _, a := range g.Aggs {
		cols = append(cols, a.String())
	}
	return table.Schema{Name: in.Name, Cols: cols}
}

func (g *GroupBy) String() string {
	parts := make([]string, len(g.Aggs))
	for i, a := range g.Aggs {
		parts[i] = a.String()
	}
	return fmt.Sprintf("group[%s: %s](%v)", g.Key, strings.Join(parts, ","), g.Child)
}

// Pred is a predicate expression the optimizer can inspect: it reports
// which columns it reads, so rewrites can decide which side of a join it
// belongs to.
type Pred interface {
	// Cols returns the column names the predicate reads.
	Cols() []string
	// Eval tests a row under a resolved schema.
	Eval(sch table.Schema, r table.Row) bool
	String() string
}

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (op CmpOp) String() string {
	return [...]string{"=", "!=", "<", "<=", ">", ">="}[op]
}

// Cmp compares one column against a constant.
type Cmp struct {
	Col string
	Op  CmpOp
	Val core.Value
}

// Cols implements Pred.
func (c Cmp) Cols() []string { return []string{c.Col} }

// Eval implements Pred.
func (c Cmp) Eval(sch table.Schema, r table.Row) bool {
	i := sch.Col(c.Col)
	if i < 0 {
		return false
	}
	cmp := core.Compare(r[i], c.Val)
	switch c.Op {
	case Eq:
		return cmp == 0
	case Ne:
		return cmp != 0
	case Lt:
		return cmp < 0
	case Le:
		return cmp <= 0
	case Gt:
		return cmp > 0
	case Ge:
		return cmp >= 0
	default:
		return false
	}
}

func (c Cmp) String() string { return fmt.Sprintf("%s%v%v", c.Col, c.Op, c.Val) }

// And conjoins predicates.
type And []Pred

// Cols implements Pred.
func (a And) Cols() []string {
	var out []string
	for _, p := range a {
		out = append(out, p.Cols()...)
	}
	return out
}

// Eval implements Pred.
func (a And) Eval(sch table.Schema, r table.Row) bool {
	for _, p := range a {
		if !p.Eval(sch, r) {
			return false
		}
	}
	return true
}

func (a And) String() string {
	parts := make([]string, len(a))
	for i, p := range a {
		parts[i] = p.String()
	}
	return strings.Join(parts, "&")
}

// hasCols reports whether every named column exists in the schema.
func hasCols(sch table.Schema, cols []string) bool {
	for _, c := range cols {
		if sch.Col(c) < 0 {
			return false
		}
	}
	return true
}
