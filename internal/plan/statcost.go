package plan

import (
	"xst/internal/stats"
)

// Statistics-backed cardinality estimation: when a stats.Catalog is
// available, measured distinct counts and histograms replace the
// System-R constants of EstimateRows.

// EstimateRowsWith predicts output cardinality using collected
// statistics, falling back to the constant model for tables absent from
// the catalog. Every fallback matches EstimateRows exactly, so an empty
// catalog reproduces the constant model node for node.
func EstimateRowsWith(n Node, cat stats.Catalog) float64 {
	switch x := n.(type) {
	case *Scan:
		if ts, ok := cat[x.Table.Schema().Name]; ok {
			return float64(ts.Rows)
		}
		return float64(x.Table.Count())
	case *IndexAccess:
		return x.Est
	case *Select:
		return EstimateRowsWith(x.Child, cat) * predSelectivityWith(x.Child, x.Pred, cat)
	case *Project:
		return EstimateRowsWith(x.Child, cat)
	case *Join:
		l, r := EstimateRowsWith(x.Left, cat), EstimateRowsWith(x.Right, cat)
		// With distinct counts on the join keys, use the standard
		// |L|·|R| / max(d(L.key), d(R.key)) estimate.
		dl := distinctOf(x.Left, x.LeftCol, cat)
		dr := distinctOf(x.Right, x.RightCol, cat)
		d := dl
		if dr > d {
			d = dr
		}
		if d > 0 {
			return l * r / float64(d)
		}
		if l > r {
			return l
		}
		return r
	case *Distinct:
		return EstimateRowsWith(x.Child, cat)
	case *Sort:
		return EstimateRowsWith(x.Child, cat)
	case *Limit:
		est := EstimateRowsWith(x.Child, cat)
		if n := float64(x.N); n < est {
			return n
		}
		return est
	case *GroupBy:
		// One row per distinct key when the catalog knows the count.
		est := EstimateRowsWith(x.Child, cat)
		if d := distinctOf(x.Child, x.Key, cat); d > 0 {
			if dd := float64(d); dd < est {
				return dd
			}
			return est
		}
		return est * selEq
	case *Source:
		return x.Rows
	case *Rename:
		return EstimateRowsWith(x.Child, cat)
	default:
		return 1
	}
}

// distinctOf finds the distinct count of a column when the node bottoms
// out at a cataloged scan; 0 when unknown.
func distinctOf(n Node, col string, cat stats.Catalog) int {
	switch x := n.(type) {
	case *Scan:
		ts, ok := cat[x.Table.Schema().Name]
		if !ok {
			return 0
		}
		i := x.Table.Schema().Col(col)
		if i < 0 || i >= len(ts.Columns) {
			return 0
		}
		return ts.Columns[i].Distinct
	case *IndexAccess:
		return distinctOf(&Scan{Table: x.Idx.Table}, col, cat)
	case *Select:
		return distinctOf(x.Child, col, cat)
	case *Project:
		return distinctOf(x.Child, col, cat)
	default:
		return 0
	}
}

// columnStats resolves a column's statistics through selects/projects to
// the underlying scan.
func columnStats(n Node, col string, cat stats.Catalog) (stats.ColumnStats, bool) {
	switch x := n.(type) {
	case *Scan:
		ts, ok := cat[x.Table.Schema().Name]
		if !ok {
			return stats.ColumnStats{}, false
		}
		i := x.Table.Schema().Col(col)
		if i < 0 || i >= len(ts.Columns) {
			return stats.ColumnStats{}, false
		}
		return ts.Columns[i], true
	case *IndexAccess:
		return columnStats(&Scan{Table: x.Idx.Table}, col, cat)
	case *Select:
		return columnStats(x.Child, col, cat)
	case *Project:
		return columnStats(x.Child, col, cat)
	default:
		return stats.ColumnStats{}, false
	}
}

func predSelectivityWith(child Node, p Pred, cat stats.Catalog) float64 {
	switch x := p.(type) {
	case Cmp:
		cs, ok := columnStats(child, x.Col, cat)
		if !ok {
			return predSelectivity(p)
		}
		// The derived combinations (Le as Less+Eq, Gt as 1-Less-Eq) can
		// drift just outside [0,1] at histogram edges; clamp them.
		switch x.Op {
		case Eq:
			return cs.SelectivityEq(x.Val)
		case Ne:
			return clampSel(1 - cs.SelectivityEq(x.Val))
		case Lt:
			return cs.SelectivityLess(x.Val)
		case Le:
			return clampSel(cs.SelectivityLess(x.Val) + cs.SelectivityEq(x.Val))
		case Ge:
			return clampSel(1 - cs.SelectivityLess(x.Val))
		case Gt:
			return clampSel(1 - cs.SelectivityLess(x.Val) - cs.SelectivityEq(x.Val))
		default:
			return predSelectivity(p)
		}
	case And:
		// Independence assumption, clamped: conjuncts cannot select more
		// than the most selective one alone claims (and never < 0).
		s := 1.0
		for _, q := range x {
			s *= predSelectivityWith(child, q, cat)
		}
		return clampSel(s)
	default:
		return predSelectivity(p)
	}
}

// clampSel bounds a selectivity to [0, 1].
func clampSel(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// OptimizeCostWith is OptimizeCost driven by measured statistics.
func OptimizeCostWith(n Node, cat stats.Catalog) Node {
	n = Optimize(n)
	n = chooseJoinSidesWith(n, cat)
	return Optimize(n)
}

func chooseJoinSidesWith(n Node, cat stats.Catalog) Node {
	switch x := n.(type) {
	case *Select:
		return &Select{Child: chooseJoinSidesWith(x.Child, cat), Pred: x.Pred}
	case *Project:
		return &Project{Child: chooseJoinSidesWith(x.Child, cat), Cols: x.Cols}
	case *Distinct:
		return &Distinct{Child: chooseJoinSidesWith(x.Child, cat)}
	case *Sort:
		return &Sort{Child: chooseJoinSidesWith(x.Child, cat), Col: x.Col, Desc: x.Desc}
	case *Limit:
		return &Limit{Child: chooseJoinSidesWith(x.Child, cat), N: x.N}
	case *GroupBy:
		return &GroupBy{Child: chooseJoinSidesWith(x.Child, cat), Key: x.Key, Aggs: x.Aggs}
	case *Join:
		left := chooseJoinSidesWith(x.Left, cat)
		right := chooseJoinSidesWith(x.Right, cat)
		if EstimateRowsWith(right, cat) <= EstimateRowsWith(left, cat) {
			return &Join{Left: left, Right: right, LeftCol: x.LeftCol, RightCol: x.RightCol}
		}
		swapped := &Join{Left: right, Right: left, LeftCol: x.RightCol, RightCol: x.LeftCol}
		orig := &Join{Left: left, Right: right, LeftCol: x.LeftCol, RightCol: x.RightCol}
		return &Project{Child: swapped, Cols: orig.Schema().Cols}
	default:
		return n
	}
}
