package plan

// Bottom-up join ordering: a maximal subtree of equi-joins is flattened
// into its base units and predicate edges, then rebuilt greedily by
// estimated cardinality — start from the cheapest pair, repeatedly
// attach the connected unit whose join yields the fewest estimated
// rows. This is the System-R greedy restricted to left-deep trees; with
// three or more units it routinely beats the parse order, and the
// rebuilt tree is wrapped in a projection restoring the original column
// order so the rewrite is observationally pure.
//
// The pass deliberately bails (keeping the parse order) whenever a
// reorder could change meaning, not just cost:
//   - fewer than three units (a pair is fully handled by build-side
//     selection),
//   - any column name appearing in two units (JoinSchema would qualify
//     collisions differently under a different shape),
//   - a predicate that does not resolve to exactly two distinct units,
//   - a non-tree join graph (an unused edge cannot be re-applied: the
//     plan language has no column-to-column residual filter).

// joinEdge is one equi-join predicate between two units.
type joinEdge struct {
	a, b       int    // unit indices
	aCol, bCol string // join columns on each side
	used       bool
}

// orderJoins walks the plan and reorders every maximal join subtree.
func orderJoins(n Node, cat *Catalog) Node {
	switch x := n.(type) {
	case *Select:
		return &Select{Child: orderJoins(x.Child, cat), Pred: x.Pred}
	case *Project:
		return &Project{Child: orderJoins(x.Child, cat), Cols: x.Cols}
	case *Distinct:
		return &Distinct{Child: orderJoins(x.Child, cat)}
	case *Sort:
		return &Sort{Child: orderJoins(x.Child, cat), Col: x.Col, Desc: x.Desc}
	case *Limit:
		return &Limit{Child: orderJoins(x.Child, cat), N: x.N}
	case *GroupBy:
		return &GroupBy{Child: orderJoins(x.Child, cat), Key: x.Key, Aggs: x.Aggs}
	case *Rename:
		return &Rename{Child: orderJoins(x.Child, cat), Cols: x.Cols}
	case *Join:
		return reorderJoinTree(x, cat)
	default:
		return n
	}
}

// reorderJoinTree rebuilds one maximal join subtree by estimated
// cardinality, or returns it untouched when ineligible.
func reorderJoinTree(j *Join, cat *Catalog) Node {
	units, edges, ok := flattenJoins(j, cat)
	if !ok || len(units) < 3 {
		return keepShape(j, units, edges)
	}
	// Unit column names must be pairwise disjoint so any join shape
	// concatenates schemas without qualification.
	seen := map[string]bool{}
	for _, u := range units {
		for _, c := range u.Schema().Cols {
			if seen[c] {
				return keepShape(j, units, edges)
			}
			seen[c] = true
		}
	}
	// Resolve each edge's endpoints to unit indices.
	unitOf := func(col string) int {
		for i, u := range units {
			if u.Schema().Col(col) >= 0 {
				return i
			}
		}
		return -1
	}
	for i := range edges {
		edges[i].a = unitOf(edges[i].aCol)
		edges[i].b = unitOf(edges[i].bCol)
		if edges[i].a < 0 || edges[i].b < 0 || edges[i].a == edges[i].b {
			return keepShape(j, units, edges)
		}
	}
	if len(edges) != len(units)-1 {
		return keepShape(j, units, edges) // cyclic or disconnected graph
	}
	// Seed with the cheapest single edge.
	bestEdge, bestEst := -1, 0.0
	for i, e := range edges {
		cand := &Join{Left: units[e.a], Right: units[e.b], LeftCol: e.aCol, RightCol: e.bCol}
		if est := cat.Estimate(cand); bestEdge < 0 || est < bestEst {
			bestEdge, bestEst = i, est
		}
	}
	e := &edges[bestEdge]
	e.used = true
	in := map[int]bool{e.a: true, e.b: true}
	composite := Node(&Join{Left: units[e.a], Right: units[e.b], LeftCol: e.aCol, RightCol: e.bCol})
	// Greedily attach the connected unit with the cheapest result.
	for len(in) < len(units) {
		bestI, bestEst := -1, 0.0
		var bestJoin *Join
		for i := range edges {
			e := &edges[i]
			if e.used {
				continue
			}
			// Exactly one endpoint inside the composite → candidate
			// attachment; its column sits on the composite (left) side.
			var cCol, uCol string
			var unit int
			switch {
			case in[e.a] && !in[e.b]:
				cCol, uCol, unit = e.aCol, e.bCol, e.b
			case in[e.b] && !in[e.a]:
				cCol, uCol, unit = e.bCol, e.aCol, e.a
			default:
				continue
			}
			cand := &Join{Left: composite, Right: units[unit], LeftCol: cCol, RightCol: uCol}
			if est := cat.Estimate(cand); bestI < 0 || est < bestEst {
				bestI, bestEst, bestJoin = i, est, cand
			}
		}
		if bestI < 0 {
			return keepShape(j, units, edges) // defensive: disconnected
		}
		edges[bestI].used = true
		in[edges[bestI].a], in[edges[bestI].b] = true, true
		composite = bestJoin
	}
	for _, e := range edges {
		if !e.used {
			return keepShape(j, units, edges) // defensive: cycle
		}
	}
	// Restore the original output column order.
	return &Project{Child: composite, Cols: j.Schema().Cols}
}

// flattenJoins splits a join subtree into its non-join units (each
// recursively reordered) and its predicate edges, parse order
// preserved. ok is false when a unit column set overlaps a join column
// ambiguously — callers then keep the original shape.
func flattenJoins(n Node, cat *Catalog) (units []Node, edges []joinEdge, ok bool) {
	var rec func(Node) bool
	rec = func(n Node) bool {
		j, isJoin := n.(*Join)
		if !isJoin {
			units = append(units, orderJoins(n, cat))
			return true
		}
		if !rec(j.Left) || !rec(j.Right) {
			return false
		}
		edges = append(edges, joinEdge{aCol: j.LeftCol, bCol: j.RightCol})
		return true
	}
	return units, edges, rec(n)
}

// keepShape rebuilds the original join tree over the recursively
// reordered units, preserving this subtree's parse order. Units arrive
// in left-to-right flatten order, matching a fresh in-order walk.
func keepShape(j *Join, units []Node, edges []joinEdge) Node {
	pos := 0
	var rebuild func(Node) Node
	rebuild = func(n Node) Node {
		x, isJoin := n.(*Join)
		if !isJoin {
			u := units[pos]
			pos++
			return u
		}
		l := rebuild(x.Left)
		r := rebuild(x.Right)
		return &Join{Left: l, Right: r, LeftCol: x.LeftCol, RightCol: x.RightCol}
	}
	if len(units) == 0 {
		return j
	}
	return rebuild(j)
}
