package plan

import (
	"fmt"
	"strings"
)

// Explain renders the plan as an indented tree with estimated
// cardinalities — the EXPLAIN output of the mini-optimizer:
//
//	project[name,hours]                      est 25
//	└─ join[owner=pid]                       est 250
//	   ├─ select[topic="queries"]            est 50
//	   │  └─ scan(tasks)                     est 500
//	   └─ scan(people)                       est 100
func Explain(n Node) string {
	var b strings.Builder
	explain(&b, n, "", true, true)
	return b.String()
}

func explain(b *strings.Builder, n Node, prefix string, last, top bool) {
	label := nodeLabel(n)
	est := EstimateRows(n)
	var line string
	switch {
	case top:
		line = label
	case last:
		line = prefix + "└─ " + label
	default:
		line = prefix + "├─ " + label
	}
	fmt.Fprintf(b, "%-48s est %.0f\n", line, est)
	kids := children(n)
	for i, k := range kids {
		childPrefix := prefix
		if !top {
			if last {
				childPrefix += "   "
			} else {
				childPrefix += "│  "
			}
		}
		explain(b, k, childPrefix, i == len(kids)-1, false)
	}
}

func nodeLabel(n Node) string {
	switch x := n.(type) {
	case *Scan:
		return "scan(" + x.Table.Schema().Name + ")"
	case *IndexAccess:
		return x.String()
	case *Select:
		return "select[" + x.Pred.String() + "]"
	case *Project:
		return "project[" + strings.Join(x.Cols, ",") + "]"
	case *Join:
		return fmt.Sprintf("join[%s=%s]", x.LeftCol, x.RightCol)
	case *Distinct:
		return "distinct"
	case *Sort:
		dir := "asc"
		if x.Desc {
			dir = "desc"
		}
		return fmt.Sprintf("sort[%s %s]", x.Col, dir)
	case *Limit:
		return fmt.Sprintf("limit[%d]", x.N)
	case *GroupBy:
		return "group[" + x.Key + "]"
	case *Rename:
		return "rename[" + strings.Join(x.Cols, ",") + "]"
	case *Source:
		return x.Label
	default:
		return fmt.Sprintf("%T", n)
	}
}

func children(n Node) []Node {
	switch x := n.(type) {
	case *Select:
		return []Node{x.Child}
	case *Project:
		return []Node{x.Child}
	case *Join:
		return []Node{x.Left, x.Right}
	case *Distinct:
		return []Node{x.Child}
	case *Sort:
		return []Node{x.Child}
	case *Limit:
		return []Node{x.Child}
	case *GroupBy:
		return []Node{x.Child}
	case *Rename:
		return []Node{x.Child}
	default:
		return nil
	}
}
