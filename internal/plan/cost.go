package plan

// Cost-based refinements on top of the rewrite rules: cardinality
// estimation from real table counts and hash-join side selection. The
// executor builds its hash table on the RIGHT child, so the optimizer
// wants the smaller (estimated) input there.

// Selectivity guesses per predicate shape, the classic System-R
// constants: equality is selective, ranges moderate.
const (
	selEq    = 0.1
	selRange = 0.3
	selOther = 0.5
)

// EstimateRows predicts the output cardinality of a plan node using
// exact base-table counts and standard selectivity constants.
func EstimateRows(n Node) float64 {
	switch x := n.(type) {
	case *Scan:
		return float64(x.Table.Count())
	case *IndexAccess:
		return x.Est
	case *Select:
		return EstimateRows(x.Child) * predSelectivity(x.Pred)
	case *Project:
		return EstimateRows(x.Child)
	case *Join:
		l, r := EstimateRows(x.Left), EstimateRows(x.Right)
		// Equi-join estimate: |L|·|R| / max(distinct keys) ≈ the larger
		// side when keys are near-unique on one side.
		if l > r {
			return l
		}
		return r
	case *Distinct:
		return EstimateRows(x.Child)
	case *Sort:
		return EstimateRows(x.Child)
	case *Limit:
		est := EstimateRows(x.Child)
		if n := float64(x.N); n < est {
			return n
		}
		return est
	case *GroupBy:
		// One row per distinct key; guess the equality selectivity.
		return EstimateRows(x.Child) * selEq
	case *Source:
		return x.Rows
	case *Rename:
		return EstimateRows(x.Child)
	default:
		return 1
	}
}

func predSelectivity(p Pred) float64 {
	switch x := p.(type) {
	case Cmp:
		switch x.Op {
		case Eq:
			return selEq
		case Lt, Le, Gt, Ge:
			return selRange
		default:
			return selOther
		}
	case And:
		s := 1.0
		for _, q := range x {
			s *= predSelectivity(q)
		}
		return s
	default:
		return selOther
	}
}

// ChooseJoinSides swaps every join's children so the smaller estimated
// input sits on the build (right) side. Output column ORDER changes with
// a swap, so this is applied only via OptimizeCost, whose contract is
// set-level (the result multiset of rows is preserved up to column
// permutation only when the caller projects; to stay safe, a swapped
// join is wrapped in a projection restoring the original column order).
func ChooseJoinSides(n Node) Node {
	switch x := n.(type) {
	case *Select:
		return &Select{Child: ChooseJoinSides(x.Child), Pred: x.Pred}
	case *Project:
		return &Project{Child: ChooseJoinSides(x.Child), Cols: x.Cols}
	case *Distinct:
		return &Distinct{Child: ChooseJoinSides(x.Child)}
	case *Sort:
		return &Sort{Child: ChooseJoinSides(x.Child), Col: x.Col, Desc: x.Desc}
	case *Limit:
		return &Limit{Child: ChooseJoinSides(x.Child), N: x.N}
	case *GroupBy:
		return &GroupBy{Child: ChooseJoinSides(x.Child), Key: x.Key, Aggs: x.Aggs}
	case *Join:
		left := ChooseJoinSides(x.Left)
		right := ChooseJoinSides(x.Right)
		if EstimateRows(right) <= EstimateRows(left) {
			return &Join{Left: left, Right: right, LeftCol: x.LeftCol, RightCol: x.RightCol}
		}
		// Swap and restore the original column order with a projection.
		swapped := &Join{
			Left: right, Right: left,
			LeftCol: x.RightCol, RightCol: x.LeftCol,
		}
		orig := &Join{Left: left, Right: right, LeftCol: x.LeftCol, RightCol: x.RightCol}
		return &Project{Child: swapped, Cols: orig.Schema().Cols}
	default:
		return n
	}
}

// OptimizeCost runs the rule-based rewrites and then the cost-based
// join-side selection.
func OptimizeCost(n Node) Node {
	return Optimize(ChooseJoinSides(Optimize(n)))
}
