package plan

import (
	"context"
	"strings"
	"testing"

	"xst/internal/core"
	"xst/internal/exec"
	"xst/internal/xsp"
	"xst/internal/xtest"
)

// streamPlans is the differential corpus: every plan shape the two
// executors both support, including a multi-stage query large enough
// that streaming and materialization behave measurably differently.
func streamPlans(t *testing.T) []Node {
	u, o := testTables(t, 60, 400)
	return []Node{
		&Select{
			Child: &Scan{Table: u},
			Pred:  Cmp{Col: "score", Op: Gt, Val: core.Int(40)},
		},
		&Project{
			Child: &Select{Child: &Scan{Table: o}, Pred: Cmp{Col: "amount", Op: Lt, Val: core.Int(500)}},
			Cols:  []string{"ouid", "amount"},
		},
		&Join{Left: &Scan{Table: o}, Right: &Scan{Table: u}, LeftCol: "ouid", RightCol: "uid"},
		&Project{
			Child: &Select{
				Child: &Join{Left: &Scan{Table: o}, Right: &Scan{Table: u}, LeftCol: "ouid", RightCol: "uid"},
				Pred:  And{Cmp{Col: "score", Op: Ge, Val: core.Int(20)}, Cmp{Col: "amount", Op: Lt, Val: core.Int(800)}},
			},
			Cols: []string{"city", "amount"},
		},
	}
}

// TestStreamingMatchesMaterialized is the refactor's safety net: the
// streaming operator tree and the materialized baseline must agree on
// every plan, optimized or not.
func TestStreamingMatchesMaterialized(t *testing.T) {
	for i, p := range streamPlans(t) {
		srows, ssch, err := Execute(p)
		if err != nil {
			t.Fatalf("plan %d streaming: %v", i, err)
		}
		mrows, msch, err := ExecuteMaterialized(p)
		if err != nil {
			t.Fatalf("plan %d materialized: %v", i, err)
		}
		sameRows(t, srows, mrows)
		if strings.Join(ssch.Cols, ",") != strings.Join(msch.Cols, ",") {
			t.Fatalf("plan %d schemas differ: %v vs %v", i, ssch.Cols, msch.Cols)
		}
		orows, _, err := Execute(OptimizeCost(p))
		if err != nil {
			t.Fatalf("plan %d optimized: %v", i, err)
		}
		sameRows(t, srows, orows)
	}
}

// TestPeakIntermediateRowsBounded verifies the tentpole's no-full-
// materialization claim with the counter itself: on a multi-stage query
// whose result far exceeds one batch, the streaming tree never has more
// than MaxBatchRows in flight between operators, while the materialized
// executor's peak is the full intermediate result.
func TestPeakIntermediateRowsBounded(t *testing.T) {
	u, o := testTables(t, 50, 5000)
	p := &Project{
		Child: &Join{Left: &Scan{Table: o}, Right: &Scan{Table: u}, LeftCol: "ouid", RightCol: "uid"},
		Cols:  []string{"city", "amount"},
	}
	_, _, sst, err := ExecuteStats(p)
	if err != nil {
		t.Fatal(err)
	}
	if sst.PeakIntermediateRows > exec.MaxBatchRows {
		t.Fatalf("streaming peak %d rows exceeds one batch (%d)",
			sst.PeakIntermediateRows, exec.MaxBatchRows)
	}
	_, _, mst, err := ExecuteMaterializedStats(p)
	if err != nil {
		t.Fatal(err)
	}
	if mst.PeakIntermediateRows <= exec.MaxBatchRows {
		t.Fatalf("materialized peak %d unexpectedly small — corpus no longer stresses streaming",
			mst.PeakIntermediateRows)
	}
	if sst.RowsJoined != mst.RowsJoined {
		t.Fatalf("executors disagree on join output: %d vs %d", sst.RowsJoined, mst.RowsJoined)
	}
}

// TestSelfJoinAutoQualifies locks the join-collision satellite: a
// self-join's duplicate column names are auto-qualified, resolvable on
// both sides, and flagged as ambiguous only when genuinely duplicated.
func TestSelfJoinAutoQualifies(t *testing.T) {
	u, _ := testTables(t, 20, 0)
	j := &Join{Left: &Scan{Table: u}, Right: &Scan{Table: u}, LeftCol: "uid", RightCol: "uid"}
	sch := j.Schema()
	want := []string{"uid", "city", "score", "users.uid", "users.city", "users.score"}
	if strings.Join(sch.Cols, ",") != strings.Join(want, ",") {
		t.Fatalf("self-join schema = %v, want %v", sch.Cols, want)
	}
	rows, _, err := Execute(&Project{Child: j, Cols: []string{"uid", "users.uid"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("self-join on uid returned %d rows, want 20", len(rows))
	}
	for _, r := range rows {
		if !core.Equal(r[0], r[1]) {
			t.Fatalf("qualified column resolved to wrong side: %v", r)
		}
	}
}

func TestGroupSortLimitPlan(t *testing.T) {
	u, o := testTables(t, 30, 300)
	p := &Limit{
		Child: &Sort{
			Child: &GroupBy{
				Child: &Join{Left: &Scan{Table: o}, Right: &Scan{Table: u}, LeftCol: "ouid", RightCol: "uid"},
				Key:   "city",
				Aggs:  []AggSpec{{Kind: xsp.Count}, {Kind: xsp.Sum, Col: "amount"}},
			},
			Col:  "count",
			Desc: true,
		},
		N: 2,
	}
	rows, sch, err := Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("limit kept %d rows, want 2", len(rows))
	}
	wantCols := []string{"city", "count", "sum(amount)"}
	if strings.Join(sch.Cols, ",") != strings.Join(wantCols, ",") {
		t.Fatalf("schema = %v, want %v", sch.Cols, wantCols)
	}
	if core.Compare(rows[0][1], rows[1][1]) < 0 {
		t.Fatalf("not sorted desc by count: %v", rows)
	}
	// Optimizer must pass the new nodes through unchanged semantics.
	orows, _, err := Execute(OptimizeCost(p))
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, rows, orows)
}

func TestExecuteCancelStreaming(t *testing.T) {
	u, o := testTables(t, 50, 8000)
	p := &Join{Left: &Scan{Table: o}, Right: &Scan{Table: u}, LeftCol: "ouid", RightCol: "uid"}
	xtest.AssertCancelAborts(t, 5, func(ctx context.Context) error {
		_, _, err := ExecuteCtx(ctx, p)
		return err
	})
}

func TestExplainAnalyze(t *testing.T) {
	u, o := testTables(t, 30, 200)
	p := &Select{
		Child: &Join{Left: &Scan{Table: o}, Right: &Scan{Table: u}, LeftCol: "ouid", RightCol: "uid"},
		Pred:  Cmp{Col: "score", Op: Gt, Val: core.Int(10)},
	}
	out, err := ExplainAnalyze(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hashjoin[ouid=uid build=", "scan(orders)", "scan(users)", "rows=", "batches="} {
		if !strings.Contains(out, want) {
			t.Fatalf("ExplainAnalyze output missing %q:\n%s", want, out)
		}
	}
}
