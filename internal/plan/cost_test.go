package plan

import (
	"testing"

	"xst/internal/core"
	"xst/internal/stats"
)

func TestEstimateRows(t *testing.T) {
	u, o := testTables(t, 100, 400)
	if got := EstimateRows(&Scan{Table: u}); got != 100 {
		t.Fatalf("scan estimate = %v", got)
	}
	sel := &Select{Child: &Scan{Table: u}, Pred: Cmp{Col: "city", Op: Eq, Val: core.Str("x")}}
	if got := EstimateRows(sel); got != 10 {
		t.Fatalf("eq-select estimate = %v", got)
	}
	rng := &Select{Child: &Scan{Table: u}, Pred: Cmp{Col: "score", Op: Lt, Val: core.Int(5)}}
	if got := EstimateRows(rng); got != 30 {
		t.Fatalf("range estimate = %v", got)
	}
	and := &Select{Child: &Scan{Table: u}, Pred: And{
		Cmp{Col: "score", Op: Lt, Val: core.Int(5)},
		Cmp{Col: "city", Op: Eq, Val: core.Str("x")},
	}}
	if got := EstimateRows(and); got != 3 {
		t.Fatalf("conjunction estimate = %v", got)
	}
	j := &Join{Left: &Scan{Table: o}, Right: &Scan{Table: u}, LeftCol: "ouid", RightCol: "uid"}
	if got := EstimateRows(j); got != 400 {
		t.Fatalf("join estimate = %v", got)
	}
	if got := EstimateRows(&Project{Child: j, Cols: []string{"oid"}}); got != 400 {
		t.Fatalf("project estimate = %v", got)
	}
}

func TestChooseJoinSidesSwapsLargeBuild(t *testing.T) {
	u, o := testTables(t, 50, 500)
	// Big orders on the build (right) side: should swap.
	n := &Join{Left: &Scan{Table: u}, Right: &Scan{Table: o}, LeftCol: "uid", RightCol: "ouid"}
	opt := ChooseJoinSides(n)
	p, ok := opt.(*Project)
	if !ok {
		t.Fatalf("swap must wrap in projection, got %T", opt)
	}
	j, ok := p.Child.(*Join)
	if !ok {
		t.Fatal("projection child must be the swapped join")
	}
	if j.Left.Schema().Name != "orders" {
		t.Fatalf("probe side = %v, want orders", j.Left.Schema().Name)
	}
	// Already-good plans stay put.
	good := &Join{Left: &Scan{Table: o}, Right: &Scan{Table: u}, LeftCol: "ouid", RightCol: "uid"}
	if _, ok := ChooseJoinSides(good).(*Join); !ok {
		t.Fatal("well-sided join must not be rewritten")
	}
}

func TestOptimizeCostPreservesResults(t *testing.T) {
	u, o := testTables(t, 40, 400)
	plans := []Node{
		// Badly sided join under a selection and projection.
		&Project{
			Cols: []string{"oid", "city"},
			Child: &Select{
				Child: &Join{Left: &Scan{Table: u}, Right: &Scan{Table: o}, LeftCol: "uid", RightCol: "ouid"},
				Pred:  Cmp{Col: "amount", Op: Lt, Val: core.Int(500)},
			},
		},
		// Nested joins.
		&Select{
			Child: &Join{
				Left:    &Join{Left: &Scan{Table: u}, Right: &Scan{Table: o}, LeftCol: "uid", RightCol: "ouid"},
				Right:   &Scan{Table: u},
				LeftCol: "uid", RightCol: "uid",
			},
			Pred: Cmp{Col: "score", Op: Ge, Val: core.Int(50)},
		},
	}
	for i, p := range plans {
		naive, nsch, err := Execute(p)
		if err != nil {
			t.Fatalf("plan %d naive: %v", i, err)
		}
		opt, osch, err := Execute(OptimizeCost(p))
		if err != nil {
			t.Fatalf("plan %d optimized: %v", i, err)
		}
		if len(nsch.Cols) != len(osch.Cols) {
			t.Fatalf("plan %d: schema arity changed %v vs %v", i, nsch.Cols, osch.Cols)
		}
		// Same column names in the same order (swap is projection-fixed).
		for c := range nsch.Cols {
			if nsch.Cols[c] != osch.Cols[c] {
				t.Fatalf("plan %d: column order changed: %v vs %v", i, nsch.Cols, osch.Cols)
			}
		}
		sameRows(t, naive, opt)
	}
}

func TestOptimizeCostFewerBuildRows(t *testing.T) {
	u, o := testTables(t, 30, 900)
	// Naive: builds on 900-row orders. Cost-optimized: swaps to build on
	// the 30-row users.
	n := &Join{Left: &Scan{Table: u}, Right: &Scan{Table: o}, LeftCol: "uid", RightCol: "ouid"}
	naive, _, ns, err := ExecuteStats(n)
	if err != nil {
		t.Fatal(err)
	}
	opt, _, os, err := ExecuteStats(OptimizeCost(n))
	if err != nil {
		t.Fatal(err)
	}
	if len(naive) != len(opt) {
		t.Fatal("row counts differ")
	}
	// Both join the same rows; the cost win is in which side is
	// materialized as the build table, visible as scan order effects.
	// At minimum the rewrite must not inflate work:
	if os.RowsJoined > ns.RowsJoined {
		t.Fatalf("cost rewrite inflated join rows: %d vs %d", os.RowsJoined, ns.RowsJoined)
	}
}

func TestEstimateRowsWithStats(t *testing.T) {
	u, o := testTables(t, 100, 400)
	cat, err := stats.CollectAll(u, o)
	if err != nil {
		t.Fatal(err)
	}
	// Equality on city (4 distinct) → ~25 of 100, far better than the
	// constant model's 10.
	sel := &Select{Child: &Scan{Table: u}, Pred: Cmp{Col: "city", Op: Eq, Val: core.Str("city-a")}}
	got := EstimateRowsWith(sel, cat)
	if got < 20 || got > 30 {
		t.Fatalf("stats eq estimate = %v, want ≈25", got)
	}
	// Join estimate |L|·|R|/max(d) = 400·100/100 = 400.
	j := &Join{Left: &Scan{Table: o}, Right: &Scan{Table: u}, LeftCol: "ouid", RightCol: "uid"}
	if got := EstimateRowsWith(j, cat); got != 400 {
		t.Fatalf("stats join estimate = %v, want 400", got)
	}
	// Missing table falls back to exact count.
	empty := stats.Catalog{}
	if got := EstimateRowsWith(&Scan{Table: u}, empty); got != 100 {
		t.Fatalf("fallback = %v", got)
	}
}

func TestOptimizeCostWithPreservesResults(t *testing.T) {
	u, o := testTables(t, 30, 300)
	cat, err := stats.CollectAll(u, o)
	if err != nil {
		t.Fatal(err)
	}
	q := &Project{
		Cols: []string{"oid", "city"},
		Child: &Select{
			Child: &Join{Left: &Scan{Table: u}, Right: &Scan{Table: o}, LeftCol: "uid", RightCol: "ouid"},
			Pred:  Cmp{Col: "amount", Op: Lt, Val: core.Int(300)},
		},
	}
	naive, _, err := Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := Execute(OptimizeCostWith(q, cat))
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, naive, opt)
}

func TestStatsRangeSelectivityBeatsConstant(t *testing.T) {
	u, _ := testTables(t, 200, 0)
	cat, _ := stats.CollectAll(u)
	// score < 10 over scores 0..99: true selectivity ≈ 0.1; the constant
	// model says 0.3, stats should land near 0.1.
	sel := &Select{Child: &Scan{Table: u}, Pred: Cmp{Col: "score", Op: Lt, Val: core.Int(10)}}
	constant := EstimateRows(sel)
	measured := EstimateRowsWith(sel, cat)
	actual := 0.0
	rows, _, _ := Execute(sel)
	actual = float64(len(rows))
	cErr := abs(constant - actual)
	mErr := abs(measured - actual)
	if mErr > cErr {
		t.Fatalf("stats estimate %v worse than constant %v (actual %v)", measured, constant, actual)
	}
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}
