package plan

import (
	"runtime"

	"xst/internal/exec"
	"xst/internal/table"
	"xst/internal/xsp"
)

// Parallel compilation: the cost model picks a degree of parallelism
// per plan (small inputs stay serial — fan-out costs more than it
// saves), and CompileDOP lowers the parallelizable spine of the plan
// (scan → select → project → join probe) onto N worker subtrees behind
// an exec.Gather, with hash-join builds partitioned across workers
// (exec.HashBuild) and aggregates folded from per-worker partials
// (exec.ParallelGroupAgg). Pipeline breakers that stay serial (Sort,
// Distinct, Limit) sit above the Gather.

// ParallelThreshold is the estimated base-input row count below which
// plans stay serial. Tests may lower it to force parallel plans on
// small fixtures.
var ParallelThreshold = 16384

// MaxDOP caps the degree of parallelism; 0 means min(GOMAXPROCS, 8).
var MaxDOP = 0

// maxDOP resolves the MaxDOP default.
func maxDOP() int {
	if MaxDOP > 0 {
		return MaxDOP
	}
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ChooseDOP picks the degree of parallelism for a plan: 1 (serial)
// unless the largest base table feeding it clears ParallelThreshold,
// then enough workers that each gets a meaningful share of pages,
// capped at MaxDOP.
func ChooseDOP(n Node) int {
	rows := largestScanRows(n)
	if rows < ParallelThreshold {
		return 1
	}
	d := maxDOP()
	// Each worker should get at least a quarter-threshold of rows;
	// fanning out wider than the data just burns goroutines.
	perWorker := ParallelThreshold / 4
	if perWorker < 1 {
		perWorker = 1
	}
	if byWork := rows / perWorker; byWork < d {
		d = byWork
	}
	if d < 2 {
		return 1
	}
	return d
}

// largestScanRows returns the row count of the biggest base table in
// the plan — the driver of parallel benefit, since morsels are dealt
// from base-table pages.
func largestScanRows(n Node) int {
	max := 0
	var rec func(Node)
	rec = func(n Node) {
		switch x := n.(type) {
		case *Scan:
			if c := x.Table.Count(); c > max {
				max = c
			}
		case *IndexAccess:
			// An index leaf feeds only its estimated matches; a pruned
			// probe should not trigger fan-out on the base table's size.
			if c := int(x.Est); c > max {
				max = c
			}
		case *Select:
			rec(x.Child)
		case *Project:
			rec(x.Child)
		case *Join:
			rec(x.Left)
			rec(x.Right)
		case *Distinct:
			rec(x.Child)
		case *Sort:
			rec(x.Child)
		case *Limit:
			rec(x.Child)
		case *GroupBy:
			rec(x.Child)
		}
	}
	rec(n)
	return max
}

// CompileDOP lowers a logical plan to a streaming operator tree with up
// to dop parallel workers per pipeline. dop ≤ 1, or a plan shape with
// no parallelizable spine, degrades to the serial Compile tree — the
// result is always the same rows (order-insensitive; interleaving
// across workers is arbitrary).
func CompileDOP(n Node, dop int) (exec.Operator, error) {
	if dop <= 1 {
		return Compile(n)
	}
	switch x := n.(type) {
	case *GroupBy:
		ws, aux, ok, err := compileWorkers(x.Child, dop)
		if err != nil {
			return nil, err
		}
		if !ok {
			return Compile(n)
		}
		sch := ws[0].OutSchema()
		key, err := colIndex(sch, x.Key, "group key")
		if err != nil {
			closeOps(ws, aux)
			return nil, err
		}
		aggs := make([]xsp.Agg, len(x.Aggs))
		for i, a := range x.Aggs {
			aggs[i] = xsp.Agg{Kind: a.Kind}
			if a.Kind != xsp.Count {
				if aggs[i].Col, err = colIndex(sch, a.Col, "aggregate column"); err != nil {
					closeOps(ws, aux)
					return nil, err
				}
			}
		}
		return exec.NewParallelGroupAgg(ws, aux, key, aggs...), nil
	case *Distinct:
		child, err := CompileDOP(x.Child, dop)
		if err != nil {
			return nil, err
		}
		return exec.NewStage(&xsp.Distinct{}, child), nil
	case *Sort:
		child, err := CompileDOP(x.Child, dop)
		if err != nil {
			return nil, err
		}
		idx, err := colIndex(child.OutSchema(), x.Col, "sort column")
		if err != nil {
			child.Close()
			return nil, err
		}
		return exec.NewSort(child, idx, x.Desc), nil
	case *Limit:
		child, err := CompileDOP(x.Child, dop)
		if err != nil {
			return nil, err
		}
		return exec.NewLimit(child, x.N), nil
	default:
		ws, aux, ok, err := compileWorkers(n, dop)
		if err != nil {
			return nil, err
		}
		if !ok {
			return Compile(n)
		}
		return exec.NewGather(ws, aux...), nil
	}
}

// closeOps closes every operator in the given chains, releasing
// half-built workers on a compile-error unwind.
func closeOps(groups ...[]exec.Operator) {
	for _, ops := range groups {
		for _, op := range ops {
			op.Close()
		}
	}
}

// compileWorkers lowers the parallelizable spine of a plan into dop
// per-worker operator chains plus their shared aux dependencies
// (HashBuilds, ordered dependencies-first so an enclosing
// Gather/ParallelGroupAgg can open them in slice order). ok is false
// for shapes the spine cannot absorb (sorts, nested aggregates, …):
// the caller falls back to the serial tree.
func compileWorkers(n Node, dop int) (workers, aux []exec.Operator, ok bool, err error) {
	switch x := n.(type) {
	case *Scan:
		src, err := x.Table.NewMorselSource()
		if err != nil {
			return nil, nil, false, err
		}
		workers = make([]exec.Operator, dop)
		for i := range workers {
			workers[i] = exec.NewMorselScan(src)
		}
		return workers, nil, true, nil
	case *Select:
		ws, aux, ok, err := compileWorkers(x.Child, dop)
		if err != nil || !ok {
			return nil, nil, ok, err
		}
		pred, sch := x.Pred, ws[0].OutSchema()
		for i, w := range ws {
			// One Stage per worker: each owns its output scratch. Pred
			// evaluation is read-only and shared safely.
			ws[i] = exec.NewStage(&xsp.Restrict{
				Pred: func(r table.Row) bool { return pred.Eval(sch, r) },
				Name: pred.String(),
			}, w)
		}
		return ws, aux, true, nil
	case *Project:
		ws, aux, ok, err := compileWorkers(x.Child, dop)
		if err != nil || !ok {
			return nil, nil, ok, err
		}
		sch := ws[0].OutSchema()
		idx := make([]int, len(x.Cols))
		for i, c := range x.Cols {
			if idx[i], err = colIndex(sch, c, "project column"); err != nil {
				closeOps(ws, aux)
				return nil, nil, false, err
			}
		}
		for i, w := range ws {
			// A fresh xsp.Project per worker: its row buffer is scratch.
			ws[i] = exec.NewStage(&xsp.Project{Cols: append([]int(nil), idx...)}, w)
		}
		return ws, aux, true, nil
	case *Join:
		buildNode, probeNode := x.Right, x.Left
		buildIsLeft := EstimateRows(x.Left) < EstimateRows(x.Right)
		if buildIsLeft {
			buildNode, probeNode = x.Left, x.Right
		}
		pw, paux, pok, err := compileWorkers(probeNode, dop)
		if err != nil {
			return nil, nil, false, err
		}
		if !pok {
			// A join whose probe side cannot fan out stays serial.
			return nil, nil, false, nil
		}
		// Build side: partitioned parallel build when its own spine fans
		// out, else one serial builder chain.
		bw, baux, bok, err := compileWorkers(buildNode, dop)
		if err != nil {
			closeOps(pw, paux)
			return nil, nil, false, err
		}
		if !bok {
			serial, err := Compile(buildNode)
			if err != nil {
				closeOps(pw, paux)
				return nil, nil, false, err
			}
			bw, baux = []exec.Operator{serial}, nil
		}
		lsch, rsch := pw[0].OutSchema(), bw[0].OutSchema()
		if buildIsLeft {
			lsch, rsch = bw[0].OutSchema(), pw[0].OutSchema()
		}
		li, err := colIndex(lsch, x.LeftCol, "join column")
		if err != nil {
			closeOps(pw, paux, bw, baux)
			return nil, nil, false, err
		}
		ri, err := colIndex(rsch, x.RightCol, "join column")
		if err != nil {
			closeOps(pw, paux, bw, baux)
			return nil, nil, false, err
		}
		bcol, pcol := ri, li
		if buildIsLeft {
			bcol, pcol = li, ri
		}
		hb := exec.NewHashBuild(bw, bcol)
		for i, w := range pw {
			pw[i] = exec.NewProbeJoin(w, hb, pcol, buildIsLeft)
		}
		aux = append(aux, baux...)
		aux = append(aux, hb)
		aux = append(aux, paux...)
		return pw, aux, true, nil
	default:
		return nil, nil, false, nil
	}
}
