package plan

// Regression tests for the compile-error unwind leaks xstvet's opclose
// analyzer surfaced: a Compile arm that fails after building a child
// must Close the half-built subtree, or a federation Source leaf keeps
// its scatter state (connections, watchdogs) alive with nothing left to
// release it.

import (
	"context"
	"testing"

	"xst/internal/exec"
	"xst/internal/table"
	"xst/internal/xsp"
)

// closeCountOp is a leaf operator that counts Close calls.
type closeCountOp struct {
	sch    table.Schema
	closed int
}

func (c *closeCountOp) Open(ctx context.Context) error { return nil }
func (c *closeCountOp) Next() ([]table.Row, error)     { return nil, nil }
func (c *closeCountOp) Close() error                   { c.closed++; return nil }
func (c *closeCountOp) OutSchema() table.Schema        { return c.sch }
func (c *closeCountOp) Stats() exec.OpStats            { return exec.OpStats{} }
func (c *closeCountOp) Children() []exec.Operator      { return nil }
func (c *closeCountOp) String() string                 { return "closecount" }

// countedLeaf returns a counting operator and a Source leaf that
// compiles to it.
func countedLeaf(name string, cols ...string) (*closeCountOp, *Source) {
	op := &closeCountOp{sch: table.Schema{Name: name, Cols: cols}}
	return op, &Source{
		Sch:   op.sch,
		Rows:  1,
		Label: name,
		New:   func() (exec.Operator, error) { return op, nil },
	}
}

// mustFailClosed compiles a plan expected to fail and asserts every
// given leaf was closed exactly once by the unwind.
func mustFailClosed(t *testing.T, n Node, leaves ...*closeCountOp) {
	t.Helper()
	if op, err := Compile(n); err == nil {
		op.Close()
		t.Fatalf("Compile(%v) succeeded, want error", n)
	}
	for i, l := range leaves {
		if l.closed != 1 {
			t.Errorf("leaf %d (%s) closed %d times after failed compile, want 1", i, l.sch.Name, l.closed)
		}
	}
}

func TestCompileRenameArityErrorClosesChild(t *testing.T) {
	op, src := countedLeaf("t", "a", "b")
	mustFailClosed(t, &Rename{Child: src, Cols: []string{"only"}}, op)
}

func TestCompileJoinColumnErrorClosesChildren(t *testing.T) {
	lop, lsrc := countedLeaf("l", "a")
	rop, rsrc := countedLeaf("r", "b")
	mustFailClosed(t, &Join{Left: lsrc, Right: rsrc, LeftCol: "missing", RightCol: "b"}, lop, rop)

	lop2, lsrc2 := countedLeaf("l", "a")
	rop2, rsrc2 := countedLeaf("r", "b")
	mustFailClosed(t, &Join{Left: lsrc2, Right: rsrc2, LeftCol: "a", RightCol: "missing"}, lop2, rop2)
}

func TestCompileSortColumnErrorClosesChild(t *testing.T) {
	op, src := countedLeaf("t", "a")
	mustFailClosed(t, &Sort{Child: src, Col: "missing"}, op)
}

func TestCompileGroupByErrorClosesChild(t *testing.T) {
	op, src := countedLeaf("t", "a", "b")
	mustFailClosed(t, &GroupBy{Child: src, Key: "missing"}, op)

	op2, src2 := countedLeaf("t", "a", "b")
	mustFailClosed(t, &GroupBy{Child: src2, Key: "a", Aggs: []AggSpec{{Kind: xsp.Sum, Col: "missing"}}}, op2)
}

// TestCompileDOPSortColumnErrorClosesChild drives the same unwind
// through the parallel compiler's serial-fallback path.
func TestCompileDOPSortColumnErrorClosesChild(t *testing.T) {
	op, src := countedLeaf("t", "a")
	if cop, err := CompileDOP(&Sort{Child: src, Col: "missing"}, 4); err == nil {
		cop.Close()
		t.Fatal("CompileDOP succeeded, want error")
	}
	if op.closed != 1 {
		t.Errorf("leaf closed %d times after failed CompileDOP, want 1", op.closed)
	}
}
