package plan

import (
	"sort"
	"strings"
	"testing"

	"xst/internal/core"
	"xst/internal/store"
	"xst/internal/table"
	"xst/internal/xtest"
)

// Test tables use globally unique column names so join schemas resolve
// unambiguously (the documented requirement).
func testTables(t testing.TB, users, orders int) (*table.Table, *table.Table) {
	t.Helper()
	pool := store.NewBufferPool(store.NewMemPager(), 128)
	u, err := table.Create(pool, table.Schema{Name: "users", Cols: []string{"uid", "city", "score"}})
	if err != nil {
		t.Fatal(err)
	}
	o, err := table.Create(pool, table.Schema{Name: "orders", Cols: []string{"oid", "ouid", "amount"}})
	if err != nil {
		t.Fatal(err)
	}
	r := xtest.NewRand(21)
	for i := 0; i < users; i++ {
		u.Insert(table.Row{core.Int(i), core.Str("city-" + string(rune('a'+r.Intn(4)))), core.Int(r.Intn(100))})
	}
	for i := 0; i < orders; i++ {
		o.Insert(table.Row{core.Int(i), core.Int(r.Intn(users)), core.Int(r.Intn(1000))})
	}
	return u, o
}

func fingerprint(rows []table.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = string(table.EncodeRow(nil, r))
	}
	sort.Strings(out)
	return out
}

func sameRows(t *testing.T, a, b []table.Row) {
	t.Helper()
	fa, fb := fingerprint(a), fingerprint(b)
	if len(fa) != len(fb) {
		t.Fatalf("row counts differ: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestExecuteScanSelectProject(t *testing.T) {
	u, _ := testTables(t, 100, 0)
	p := &Project{
		Cols: []string{"uid"},
		Child: &Select{
			Child: &Scan{Table: u},
			Pred:  Cmp{Col: "city", Op: Eq, Val: core.Str("city-a")},
		},
	}
	rows, sch, err := Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(sch.Cols) != 1 || sch.Cols[0] != "uid" {
		t.Fatalf("schema = %v", sch.Cols)
	}
	if len(rows) == 0 {
		t.Fatal("no rows selected")
	}
	for _, r := range rows {
		if len(r) != 1 {
			t.Fatalf("bad arity: %v", r)
		}
	}
}

func TestCmpOperators(t *testing.T) {
	sch := table.Schema{Cols: []string{"x"}}
	row := table.Row{core.Int(5)}
	cases := []struct {
		op   CmpOp
		val  int
		want bool
	}{
		{Eq, 5, true}, {Eq, 4, false},
		{Ne, 4, true}, {Ne, 5, false},
		{Lt, 6, true}, {Lt, 5, false},
		{Le, 5, true}, {Le, 4, false},
		{Gt, 4, true}, {Gt, 5, false},
		{Ge, 5, true}, {Ge, 6, false},
	}
	for _, c := range cases {
		p := Cmp{Col: "x", Op: c.op, Val: core.Int(c.val)}
		if got := p.Eval(sch, row); got != c.want {
			t.Errorf("5 %v %d = %v, want %v", c.op, c.val, got, c.want)
		}
	}
	// Unknown column is false, not a panic.
	if (Cmp{Col: "nope", Op: Eq, Val: core.Int(1)}).Eval(sch, row) {
		t.Fatal("unknown column must evaluate false")
	}
}

func TestExecuteJoin(t *testing.T) {
	u, o := testTables(t, 20, 60)
	j := &Join{
		Left: &Scan{Table: o}, Right: &Scan{Table: u},
		LeftCol: "ouid", RightCol: "uid",
	}
	rows, sch, err := Execute(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 60 {
		t.Fatalf("join rows = %d", len(rows))
	}
	li, ri := sch.Col("ouid"), sch.Col("uid")
	for _, r := range rows {
		if !core.Equal(r[li], r[ri]) {
			t.Fatalf("key mismatch %v", r)
		}
	}
}

func TestExecuteErrors(t *testing.T) {
	u, o := testTables(t, 5, 5)
	bad := []Node{
		&Join{Left: &Scan{Table: o}, Right: &Scan{Table: u}, LeftCol: "nope", RightCol: "uid"},
		&Project{Child: &Join{Left: &Scan{Table: o}, Right: &Scan{Table: u}, LeftCol: "ouid", RightCol: "uid"}, Cols: []string{"nope"}},
	}
	for _, n := range bad {
		if _, _, err := Execute(n); err == nil {
			t.Fatalf("Execute(%v) must fail", n)
		}
	}
}

func TestMergeSelects(t *testing.T) {
	u, _ := testTables(t, 10, 0)
	n := &Select{
		Child: &Select{
			Child: &Scan{Table: u},
			Pred:  Cmp{Col: "score", Op: Ge, Val: core.Int(10)},
		},
		Pred: Cmp{Col: "score", Op: Lt, Val: core.Int(90)},
	}
	opt := Optimize(n)
	s, ok := opt.(*Select)
	if !ok {
		t.Fatalf("optimized to %T", opt)
	}
	if _, ok := s.Child.(*Scan); !ok {
		t.Fatalf("selects not merged: %v", opt)
	}
	if _, ok := s.Pred.(And); !ok {
		t.Fatal("merged predicate must be a conjunction")
	}
}

func TestPushSelectBelowJoin(t *testing.T) {
	u, o := testTables(t, 10, 30)
	n := &Select{
		Child: &Join{
			Left: &Scan{Table: o}, Right: &Scan{Table: u},
			LeftCol: "ouid", RightCol: "uid",
		},
		Pred: And{
			Cmp{Col: "amount", Op: Lt, Val: core.Int(500)},    // orders side
			Cmp{Col: "city", Op: Eq, Val: core.Str("city-a")}, // users side
		},
	}
	opt := Optimize(n)
	j, ok := opt.(*Join)
	if !ok {
		t.Fatalf("selection not fully pushed: %v", opt)
	}
	if _, ok := j.Left.(*Select); !ok {
		t.Fatalf("left side missing pushed select: %v", opt)
	}
	if _, ok := j.Right.(*Select); !ok {
		t.Fatalf("right side missing pushed select: %v", opt)
	}
}

func TestPushSelectBelowProject(t *testing.T) {
	u, _ := testTables(t, 10, 0)
	n := &Select{
		Child: &Project{Child: &Scan{Table: u}, Cols: []string{"uid", "score"}},
		Pred:  Cmp{Col: "score", Op: Ge, Val: core.Int(50)},
	}
	opt := Optimize(n)
	if _, ok := opt.(*Project); !ok {
		t.Fatalf("select not pushed below project: %v", opt)
	}
}

func TestPruneJoinColumns(t *testing.T) {
	u, o := testTables(t, 10, 30)
	n := &Project{
		Cols: []string{"oid", "city"},
		Child: &Join{
			Left: &Scan{Table: o}, Right: &Scan{Table: u},
			LeftCol: "ouid", RightCol: "uid",
		},
	}
	opt := Optimize(n)
	// The inner join's inputs must now be projections dropping unused
	// columns (amount, score).
	s := opt.String()
	if !strings.Contains(s, "project[oid,ouid]") || !strings.Contains(s, "project[uid,city]") {
		t.Fatalf("join inputs not pruned: %v", s)
	}
}

func TestOptimizePreservesResults(t *testing.T) {
	u, o := testTables(t, 30, 120)
	plans := []Node{
		&Select{
			Child: &Join{Left: &Scan{Table: o}, Right: &Scan{Table: u}, LeftCol: "ouid", RightCol: "uid"},
			Pred: And{
				Cmp{Col: "amount", Op: Lt, Val: core.Int(700)},
				Cmp{Col: "city", Op: Ne, Val: core.Str("city-b")},
			},
		},
		&Project{
			Cols: []string{"oid", "score"},
			Child: &Select{
				Child: &Join{Left: &Scan{Table: o}, Right: &Scan{Table: u}, LeftCol: "ouid", RightCol: "uid"},
				Pred:  Cmp{Col: "score", Op: Ge, Val: core.Int(20)},
			},
		},
		&Select{
			Child: &Select{
				Child: &Project{Child: &Scan{Table: u}, Cols: []string{"uid", "score"}},
				Pred:  Cmp{Col: "score", Op: Ge, Val: core.Int(10)},
			},
			Pred: Cmp{Col: "score", Op: Lt, Val: core.Int(95)},
		},
	}
	for i, p := range plans {
		naive, _, err := Execute(p)
		if err != nil {
			t.Fatalf("plan %d naive: %v", i, err)
		}
		optimized, _, err := Execute(Optimize(p))
		if err != nil {
			t.Fatalf("plan %d optimized: %v", i, err)
		}
		sameRows(t, naive, optimized)
	}
}

func TestOptimizedScansFewerRows(t *testing.T) {
	u, o := testTables(t, 200, 1000)
	n := &Select{
		Child: &Join{Left: &Scan{Table: o}, Right: &Scan{Table: u}, LeftCol: "ouid", RightCol: "uid"},
		Pred:  Cmp{Col: "amount", Op: Lt, Val: core.Int(50)},
	}
	_, _, naiveStats, err := ExecuteStats(n)
	if err != nil {
		t.Fatal(err)
	}
	_, _, optStats, err := ExecuteStats(Optimize(n))
	if err != nil {
		t.Fatal(err)
	}
	if optStats.RowsJoined >= naiveStats.RowsJoined {
		t.Fatalf("pushdown did not reduce join input: %d vs %d",
			optStats.RowsJoined, naiveStats.RowsJoined)
	}
}

func TestOptimizeFixedPoint(t *testing.T) {
	u, o := testTables(t, 10, 20)
	n := &Project{
		Cols: []string{"oid"},
		Child: &Select{
			Child: &Join{Left: &Scan{Table: o}, Right: &Scan{Table: u}, LeftCol: "ouid", RightCol: "uid"},
			Pred:  Cmp{Col: "city", Op: Eq, Val: core.Str("city-a")},
		},
	}
	once := Optimize(n)
	twice := Optimize(once)
	if once.String() != twice.String() {
		t.Fatalf("optimizer not idempotent:\n%v\n%v", once, twice)
	}
}

func TestPlanStrings(t *testing.T) {
	u, _ := testTables(t, 1, 0)
	n := &Project{
		Cols: []string{"uid"},
		Child: &Select{
			Child: &Scan{Table: u},
			Pred:  And{Cmp{Col: "score", Op: Gt, Val: core.Int(1)}},
		},
	}
	s := n.String()
	for _, want := range []string{"project[uid]", "select[", "scan(users)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("plan string %q missing %q", s, want)
		}
	}
}

func TestExplain(t *testing.T) {
	u, o := testTables(t, 50, 200)
	n := &Project{
		Cols: []string{"oid"},
		Child: &Select{
			Child: &Join{Left: &Scan{Table: o}, Right: &Scan{Table: u}, LeftCol: "ouid", RightCol: "uid"},
			Pred:  Cmp{Col: "city", Op: Eq, Val: core.Str("city-a")},
		},
	}
	out := Explain(n)
	for _, want := range []string{
		"project[oid]", "└─ select[", "└─ join[ouid=uid]",
		"├─ scan(orders)", "└─ scan(users)", "est 200",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain output missing %q:\n%s", want, out)
		}
	}
	// Every node on its own line: 5 lines.
	if got := strings.Count(out, "\n"); got != 5 {
		t.Fatalf("Explain has %d lines, want 5:\n%s", got, out)
	}
}
