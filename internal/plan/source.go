package plan

import (
	"fmt"
	"strings"

	"xst/internal/exec"
	"xst/internal/table"
)

// Planner-extension leaves: Source lets an outer planner (the
// federation coordinator, internal/fed) splice an arbitrary operator
// constructor into a logical plan as a leaf, so the coordinator-side
// remainder of a distributed query — merge aggregation, sorting, final
// joins — compiles through the same Compile path as a local plan.
// Rename relabels columns positionally, restoring user-visible names
// above a merge step whose aggregate columns carry partial-form names.

// Source is a leaf whose rows come from a caller-supplied operator
// constructor rather than a stored table. New is invoked once per
// compilation (the exec tree contract is single-use), so a Source's
// closure may carry per-query state such as a network scatter.
type Source struct {
	// Sch is the declared output schema of the constructed operator.
	Sch table.Schema
	// Rows is the cardinality estimate EstimateRows reports, letting
	// cost-based join-side selection see through the leaf.
	Rows float64
	// Label renders the leaf in plans, EXPLAIN output and span trees.
	Label string
	// New constructs the physical operator.
	New func() (exec.Operator, error)
}

// Schema implements Node.
func (s *Source) Schema() table.Schema { return s.Sch }

func (s *Source) String() string { return s.Label }

// Rename passes its child through with output columns relabelled
// positionally; Cols must match the child's arity.
type Rename struct {
	Child Node
	Cols  []string
}

// Schema implements Node.
func (r *Rename) Schema() table.Schema {
	in := r.Child.Schema()
	return table.Schema{Name: in.Name, Cols: append([]string(nil), r.Cols...)}
}

func (r *Rename) String() string {
	return fmt.Sprintf("rename[%s](%v)", strings.Join(r.Cols, ","), r.Child)
}
