package plan

import (
	"fmt"

	"xst/internal/core"
	"xst/internal/table"
	"xst/internal/xsp"
)

// ExecuteMaterialized runs the plan the pre-streaming way: maximal
// scan–select–project chains over one table become a single xsp
// pipeline, but every join child and every remaining operator consumes
// the *fully materialized* output of the one below it. Kept as the
// differential baseline for the streaming tree — equivalence tests and
// BenchmarkStreamVsMaterialize run both paths over the same plans.
func ExecuteMaterialized(n Node) ([]table.Row, table.Schema, error) {
	var st ExecStats
	rows, sch, err := execNode(n, &st)
	return rows, sch, err
}

// ExecuteMaterializedStats is ExecuteMaterialized with physical
// counters; PeakIntermediateRows reports the largest intermediate
// result held between operators.
func ExecuteMaterializedStats(n Node) ([]table.Row, table.Schema, ExecStats, error) {
	var st ExecStats
	rows, sch, err := execNode(n, &st)
	return rows, sch, st, err
}

func (st *ExecStats) intermediate(rows []table.Row) {
	if len(rows) > st.PeakIntermediateRows {
		st.PeakIntermediateRows = len(rows)
	}
}

func execNode(n Node, st *ExecStats) ([]table.Row, table.Schema, error) {
	// A single-table chain compiles to one pipeline.
	if src, ops, ok := compileChain(n); ok {
		st.Pipelines++
		p := xsp.NewPipeline(src, ops...)
		rows, err := p.Collect()
		if err != nil {
			return nil, table.Schema{}, err
		}
		st.RowsScanned += p.Stats().RowsIn
		st.intermediate(rows)
		return rows, n.Schema(), nil
	}
	switch x := n.(type) {
	case *Join:
		lrows, lsch, err := execNode(x.Left, st)
		if err != nil {
			return nil, table.Schema{}, err
		}
		rrows, rsch, err := execNode(x.Right, st)
		if err != nil {
			return nil, table.Schema{}, err
		}
		li, ri := lsch.Col(x.LeftCol), rsch.Col(x.RightCol)
		if li < 0 || ri < 0 {
			return nil, table.Schema{}, fmt.Errorf("plan: join column %q/%q not found", x.LeftCol, x.RightCol)
		}
		build := make(map[string][]table.Row, len(rrows))
		for _, r := range rrows {
			k := core.Key(r[ri])
			build[k] = append(build[k], r)
		}
		var out []table.Row
		for _, l := range lrows {
			for _, r := range build[core.Key(l[li])] {
				row := make(table.Row, 0, len(l)+len(r))
				row = append(row, l...)
				row = append(row, r...)
				out = append(out, row)
			}
		}
		st.RowsJoined += len(out)
		st.intermediate(out)
		return out, x.Schema(), nil
	case *Select:
		rows, sch, err := execNode(x.Child, st)
		if err != nil {
			return nil, table.Schema{}, err
		}
		var out []table.Row
		for _, r := range rows {
			if x.Pred.Eval(sch, r) {
				out = append(out, r)
			}
		}
		st.intermediate(out)
		return out, sch, nil
	case *Project:
		rows, sch, err := execNode(x.Child, st)
		if err != nil {
			return nil, table.Schema{}, err
		}
		idx := make([]int, len(x.Cols))
		for i, c := range x.Cols {
			idx[i] = sch.Col(c)
			if idx[i] < 0 {
				return nil, table.Schema{}, fmt.Errorf("plan: project column %q not found", c)
			}
		}
		out := make([]table.Row, len(rows))
		for i, r := range rows {
			nr := make(table.Row, len(idx))
			for j, k := range idx {
				nr[j] = r[k]
			}
			out[i] = nr
		}
		st.intermediate(out)
		return out, x.Schema(), nil
	default:
		return nil, table.Schema{}, fmt.Errorf("plan: cannot execute %T materialized", n)
	}
}

// compileChain recognizes Select/Project chains rooted at a Scan and
// compiles them into a single XSP pipeline.
func compileChain(n Node) (*table.Table, []xsp.Op, bool) {
	var build func(n Node) (*table.Table, table.Schema, []xsp.Op, bool)
	build = func(n Node) (*table.Table, table.Schema, []xsp.Op, bool) {
		switch x := n.(type) {
		case *Scan:
			return x.Table, x.Table.Schema(), nil, true
		case *Select:
			src, sch, ops, ok := build(x.Child)
			if !ok {
				return nil, table.Schema{}, nil, false
			}
			pred, cur := x.Pred, sch
			ops = append(ops, &xsp.Restrict{
				Pred: func(r table.Row) bool { return pred.Eval(cur, r) },
				Name: pred.String(),
			})
			return src, sch, ops, true
		case *Project:
			src, sch, ops, ok := build(x.Child)
			if !ok {
				return nil, table.Schema{}, nil, false
			}
			idx := make([]int, len(x.Cols))
			for i, c := range x.Cols {
				idx[i] = sch.Col(c)
				if idx[i] < 0 {
					return nil, table.Schema{}, nil, false
				}
			}
			ops = append(ops, &xsp.Project{Cols: idx})
			return src, x.Schema(), ops, true
		default:
			return nil, table.Schema{}, nil, false
		}
	}
	src, _, ops, ok := build(n)
	return src, ops, ok
}
