package plan

import (
	"fmt"

	"xst/internal/core"
	"xst/internal/index"
	"xst/internal/stats"
	"xst/internal/table"
)

// Access-path selection: when the catalog declares indexes, the planner
// can answer a selective predicate through a prestructured set (hash
// point lookup, btree range) instead of a full scan. The decision is
// cost-based — estimated matching rows times a random-access penalty
// against the sequential scan of the whole table — so low-selectivity
// predicates deliberately keep the full scan.

// indexRowCost is the cost of one row fetched by RID relative to one
// row read sequentially by a scan: random access pays for itself only
// when the index prunes at least this factor of the table.
const indexRowCost = 4.0

// IndexKind distinguishes the physical index structures.
type IndexKind uint8

// Index kinds.
const (
	// HashIdx answers equality (point) predicates.
	HashIdx IndexKind = iota
	// BTreeIdx answers ordered range predicates over atom columns.
	BTreeIdx
)

func (k IndexKind) String() string {
	if k == HashIdx {
		return "hash"
	}
	return "btree"
}

// TableIndex is one catalog-declared index the planner may choose.
// Exactly one of Hash/BTree is set, matching Kind. The structures are
// immutable once published: rebuilds swap in fresh ones.
type TableIndex struct {
	Table *table.Table
	Col   string
	Kind  IndexKind
	Hash  *index.HashIndex
	BTree *index.BTree
}

// Catalog bundles what the cost-based optimizer knows beyond the plan
// itself: collected statistics and declared indexes. A nil Catalog (or
// one with no stats) degrades every estimate to the constant model, so
// planning is deterministic whether or not `.analyze` has run.
type Catalog struct {
	Stats   stats.Catalog
	Indexes []*TableIndex
}

// Estimate predicts output cardinality, preferring measured statistics.
func (c *Catalog) Estimate(n Node) float64 {
	if c == nil || len(c.Stats) == 0 {
		return EstimateRows(n)
	}
	return EstimateRowsWith(n, c.Stats)
}

// selOf estimates one predicate's selectivity against child's column
// statistics, falling back to the System-R constants.
func (c *Catalog) selOf(child Node, p Pred) float64 {
	if c == nil || len(c.Stats) == 0 {
		return predSelectivity(p)
	}
	return predSelectivityWith(child, p, c.Stats)
}

// indexesOn lists the declared indexes over t.
func (c *Catalog) indexesOn(t *table.Table) []*TableIndex {
	if c == nil {
		return nil
	}
	var out []*TableIndex
	for _, ix := range c.Indexes {
		if ix.Table == t {
			out = append(out, ix)
		}
	}
	return out
}

// IndexAccess is a leaf node reading a table through an index instead
// of scanning it: a point lookup (Eq, hash or btree) or a btree range
// (Lo/Hi, nil = open, inclusive per flag). The output schema is the
// full table schema — residual predicates stay in a Select above. Est
// is the matching-row estimate frozen at plan time so EXPLAIN shows
// the number the choice was made on.
type IndexAccess struct {
	Idx            *TableIndex
	Eq             core.Value
	Lo, Hi         core.Value
	LoIncl, HiIncl bool
	Est            float64
}

// Schema implements Node.
func (a *IndexAccess) Schema() table.Schema { return a.Idx.Table.Schema() }

func (a *IndexAccess) String() string { return "indexscan(" + a.Desc() + ")" }

// Desc renders the access path: table.col, the bound shape, and the
// index kind (e.g. "events.id=42 hash" or "events.ts∈[10,20) btree").
func (a *IndexAccess) Desc() string {
	col := a.Idx.Table.Schema().Name + "." + a.Idx.Col
	var bound string
	switch {
	case a.Eq != nil:
		bound = fmt.Sprintf("%s=%v", col, a.Eq)
	default:
		lo, hi := "-∞", "+∞"
		lb, rb := "(", ")"
		if a.Lo != nil {
			lo = fmt.Sprint(a.Lo)
			if a.LoIncl {
				lb = "["
			}
		}
		if a.Hi != nil {
			hi = fmt.Sprint(a.Hi)
			if a.HiIncl {
				rb = "]"
			}
		}
		bound = fmt.Sprintf("%s∈%s%s,%s%s", col, lb, lo, hi, rb)
	}
	return bound + " " + a.Idx.Kind.String()
}

// chooseAccessPaths rewrites Select(Scan) leaves onto IndexAccess when
// a declared index covers some conjuncts and the cost model says the
// pruned random fetch beats the sequential scan. Unmatched conjuncts
// remain in a residual Select above the index leaf.
func chooseAccessPaths(n Node, cat *Catalog) Node {
	switch x := n.(type) {
	case *Select:
		if scan, ok := x.Child.(*Scan); ok {
			if out, ok := indexAccessFor(scan, x.Pred, cat); ok {
				return out
			}
			return x
		}
		return &Select{Child: chooseAccessPaths(x.Child, cat), Pred: x.Pred}
	case *Project:
		return &Project{Child: chooseAccessPaths(x.Child, cat), Cols: x.Cols}
	case *Join:
		return &Join{
			Left: chooseAccessPaths(x.Left, cat), Right: chooseAccessPaths(x.Right, cat),
			LeftCol: x.LeftCol, RightCol: x.RightCol,
		}
	case *Distinct:
		return &Distinct{Child: chooseAccessPaths(x.Child, cat)}
	case *Sort:
		return &Sort{Child: chooseAccessPaths(x.Child, cat), Col: x.Col, Desc: x.Desc}
	case *Limit:
		return &Limit{Child: chooseAccessPaths(x.Child, cat), N: x.N}
	case *GroupBy:
		return &GroupBy{Child: chooseAccessPaths(x.Child, cat), Key: x.Key, Aggs: x.Aggs}
	case *Rename:
		return &Rename{Child: chooseAccessPaths(x.Child, cat), Cols: x.Cols}
	default:
		return n
	}
}

// accessCandidate is one way an index could answer some conjuncts.
type accessCandidate struct {
	node    *IndexAccess
	matched map[int]bool
	est     float64
}

// indexAccessFor tries to turn Select(scan, pred) into (residual-)
// Select over an IndexAccess. ok is false when no index wins.
func indexAccessFor(scan *Scan, pred Pred, cat *Catalog) (Node, bool) {
	idxs := cat.indexesOn(scan.Table)
	if len(idxs) == 0 {
		return nil, false
	}
	var conjuncts []Pred
	if a, ok := pred.(And); ok {
		conjuncts = a
	} else {
		conjuncts = []Pred{pred}
	}
	tableRows := cat.Estimate(scan)
	var best *accessCandidate
	for _, ix := range idxs {
		var c *accessCandidate
		if ix.Kind == HashIdx {
			c = hashCandidate(scan, ix, conjuncts, tableRows, cat)
		} else {
			c = btreeCandidate(scan, ix, conjuncts, tableRows, cat)
		}
		if c != nil && (best == nil || c.est < best.est) {
			best = c
		}
	}
	if best == nil || best.est*indexRowCost >= tableRows {
		return nil, false
	}
	var residual And
	for i, p := range conjuncts {
		if !best.matched[i] {
			residual = append(residual, p)
		}
	}
	var out Node = best.node
	if len(residual) > 0 {
		out = &Select{Child: out, Pred: simplify(residual)}
	}
	return out, true
}

// hashCandidate matches the first equality conjunct on the indexed
// column; the hash path answers nothing else.
func hashCandidate(scan *Scan, ix *TableIndex, conjuncts []Pred, rows float64, cat *Catalog) *accessCandidate {
	for i, p := range conjuncts {
		cmp, ok := p.(Cmp)
		if !ok || cmp.Col != ix.Col || cmp.Op != Eq {
			continue
		}
		est := rows * cat.selOf(scan, cmp)
		return &accessCandidate{
			node:    &IndexAccess{Idx: ix, Eq: cmp.Val, Est: est},
			matched: map[int]bool{i: true},
			est:     est,
		}
	}
	return nil
}

// btreeCandidate combines every range/equality conjunct on the indexed
// column into one btree probe. Bounds must be atoms — OrderKey only
// order-encodes atoms, so a set-valued bound would silently miss rows.
func btreeCandidate(scan *Scan, ix *TableIndex, conjuncts []Pred, rows float64, cat *Catalog) *accessCandidate {
	acc := &IndexAccess{Idx: ix}
	matched := map[int]bool{}
	sel := 1.0
	for i, p := range conjuncts {
		cmp, ok := p.(Cmp)
		if !ok || cmp.Col != ix.Col {
			continue
		}
		if _, atom := core.AtomKeyOf(cmp.Val); !atom {
			continue
		}
		switch cmp.Op {
		case Eq:
			// A point probe subsumes any range bounds: lo = hi = v.
			est := rows * cat.selOf(scan, cmp)
			return &accessCandidate{
				node: &IndexAccess{
					Idx: ix, Lo: cmp.Val, Hi: cmp.Val, LoIncl: true, HiIncl: true, Est: est,
				},
				matched: map[int]bool{i: true},
				est:     est,
			}
		case Gt, Ge:
			incl := cmp.Op == Ge
			if acc.Lo == nil || tighterLo(cmp.Val, incl, acc.Lo, acc.LoIncl) {
				acc.Lo, acc.LoIncl = cmp.Val, incl
			}
		case Lt, Le:
			incl := cmp.Op == Le
			if acc.Hi == nil || tighterHi(cmp.Val, incl, acc.Hi, acc.HiIncl) {
				acc.Hi, acc.HiIncl = cmp.Val, incl
			}
		default:
			continue
		}
		matched[i] = true
		sel *= cat.selOf(scan, cmp)
	}
	if len(matched) == 0 {
		return nil
	}
	acc.Est = rows * sel
	return &accessCandidate{node: acc, matched: matched, est: acc.Est}
}

// tighterLo reports whether bound (v, incl) is more restrictive than
// the current lower bound (cur, curIncl): larger value, or exclusive at
// the same value.
func tighterLo(v core.Value, incl bool, cur core.Value, curIncl bool) bool {
	c := core.Compare(v, cur)
	return c > 0 || (c == 0 && curIncl && !incl)
}

// tighterHi is tighterLo mirrored: smaller value, or exclusive at the
// same value.
func tighterHi(v core.Value, incl bool, cur core.Value, curIncl bool) bool {
	c := core.Compare(v, cur)
	return c < 0 || (c == 0 && curIncl && !incl)
}

// OptimizeCatalog is the full cost-based pipeline: rule rewrites, join
// ordering, build-side selection, and access-path selection, all driven
// by the catalog's statistics when present. A nil catalog yields the
// same plans as OptimizeCost plus (index-free) join ordering.
func OptimizeCatalog(n Node, cat *Catalog) Node {
	n = Optimize(n)
	n = orderJoins(n, cat)
	if cat != nil && len(cat.Stats) > 0 {
		n = chooseJoinSidesWith(n, cat.Stats)
	} else {
		n = ChooseJoinSides(n)
	}
	n = Optimize(n)
	return chooseAccessPaths(n, cat)
}
