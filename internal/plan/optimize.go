package plan

// The optimizer applies rewrite rules bottom-up to a fixed point. All
// rules preserve the result multiset; TestOptimizePreservesResults
// verifies this on randomized plans.

// Optimize rewrites the plan to a fixed point of the rule set.
func Optimize(n Node) Node {
	for {
		rewritten, changed := rewrite(n)
		if !changed {
			return rewritten
		}
		n = rewritten
	}
}

func rewrite(n Node) (Node, bool) {
	switch x := n.(type) {
	case *Scan:
		return x, false
	case *Select:
		child, changed := rewrite(x.Child)
		n := &Select{Child: child, Pred: x.Pred}
		if out, ok := mergeSelects(n); ok {
			return out, true
		}
		if out, ok := pushSelectBelowJoin(n); ok {
			return out, true
		}
		if out, ok := pushSelectBelowProject(n); ok {
			return out, true
		}
		return n, changed
	case *Project:
		child, changed := rewrite(x.Child)
		n := &Project{Child: child, Cols: x.Cols}
		if out, ok := collapseProjects(n); ok {
			return out, true
		}
		if out, ok := pruneJoinColumns(n); ok {
			return out, true
		}
		return n, changed
	case *Join:
		l, lc := rewrite(x.Left)
		r, rc := rewrite(x.Right)
		return &Join{Left: l, Right: r, LeftCol: x.LeftCol, RightCol: x.RightCol}, lc || rc
	case *Distinct:
		child, changed := rewrite(x.Child)
		return &Distinct{Child: child}, changed
	case *Sort:
		child, changed := rewrite(x.Child)
		return &Sort{Child: child, Col: x.Col, Desc: x.Desc}, changed
	case *Limit:
		child, changed := rewrite(x.Child)
		return &Limit{Child: child, N: x.N}, changed
	case *GroupBy:
		child, changed := rewrite(x.Child)
		return &GroupBy{Child: child, Key: x.Key, Aggs: x.Aggs}, changed
	default:
		return n, false
	}
}

// mergeSelects flattens Select(Select(x, p), q) into Select(x, q ∧ p):
// restriction composition.
func mergeSelects(s *Select) (Node, bool) {
	inner, ok := s.Child.(*Select)
	if !ok {
		return nil, false
	}
	preds := And{}
	for _, p := range []Pred{s.Pred, inner.Pred} {
		if a, ok := p.(And); ok {
			preds = append(preds, a...)
		} else {
			preds = append(preds, p)
		}
	}
	return &Select{Child: inner.Child, Pred: preds}, true
}

// pushSelectBelowJoin moves a selection whose columns all come from one
// join side onto that side. Conjunctions split: each conjunct moves
// independently if it can.
func pushSelectBelowJoin(s *Select) (Node, bool) {
	j, ok := s.Child.(*Join)
	if !ok {
		return nil, false
	}
	lsch, rsch := j.Left.Schema(), j.Right.Schema()
	conjuncts, isAnd := s.Pred.(And)
	if !isAnd {
		conjuncts = And{s.Pred}
	}
	var toLeft, toRight, stay And
	for _, p := range conjuncts {
		switch {
		case hasCols(lsch, p.Cols()):
			toLeft = append(toLeft, p)
		case hasCols(rsch, p.Cols()):
			toRight = append(toRight, p)
		default:
			stay = append(stay, p)
		}
	}
	if len(toLeft) == 0 && len(toRight) == 0 {
		return nil, false
	}
	left, right := j.Left, j.Right
	if len(toLeft) > 0 {
		left = &Select{Child: left, Pred: simplify(toLeft)}
	}
	if len(toRight) > 0 {
		right = &Select{Child: right, Pred: simplify(toRight)}
	}
	var out Node = &Join{Left: left, Right: right, LeftCol: j.LeftCol, RightCol: j.RightCol}
	if len(stay) > 0 {
		out = &Select{Child: out, Pred: simplify(stay)}
	}
	return out, true
}

// pushSelectBelowProject swaps Select(Project(x)) into Project(Select(x))
// when the projection keeps every column the predicate reads — selection
// on the smaller input is cheaper and unlocks further pushdown.
func pushSelectBelowProject(s *Select) (Node, bool) {
	p, ok := s.Child.(*Project)
	if !ok {
		return nil, false
	}
	if !hasCols(p.Child.Schema(), s.Pred.Cols()) {
		return nil, false
	}
	return &Project{
		Child: &Select{Child: p.Child, Pred: s.Pred},
		Cols:  p.Cols,
	}, true
}

// collapseProjects merges Project(Project(x)).
func collapseProjects(p *Project) (Node, bool) {
	inner, ok := p.Child.(*Project)
	if !ok {
		return nil, false
	}
	return &Project{Child: inner.Child, Cols: p.Cols}, true
}

// pruneJoinColumns narrows a join's inputs to the columns the projection
// (plus the join keys) actually needs — 𝔇-pushdown.
func pruneJoinColumns(p *Project) (Node, bool) {
	j, ok := p.Child.(*Join)
	if !ok {
		return nil, false
	}
	lsch, rsch := j.Left.Schema(), j.Right.Schema()
	need := map[string]bool{j.LeftCol: true, j.RightCol: true}
	for _, c := range p.Cols {
		need[c] = true
	}
	keep := func(all []string) []string {
		var out []string
		for _, c := range all {
			if need[c] {
				out = append(out, c)
			}
		}
		return out
	}
	lKeep := keep(lsch.Cols)
	rKeep := keep(rsch.Cols)
	if len(lKeep) == len(lsch.Cols) && len(rKeep) == len(rsch.Cols) {
		return nil, false
	}
	// Only prune when something is actually dropped and the inner nodes
	// are not already projections (avoid rewrite loops).
	if _, ok := j.Left.(*Project); ok {
		return nil, false
	}
	if _, ok := j.Right.(*Project); ok {
		return nil, false
	}
	return &Project{
		Child: &Join{
			Left:    &Project{Child: j.Left, Cols: lKeep},
			Right:   &Project{Child: j.Right, Cols: rKeep},
			LeftCol: j.LeftCol, RightCol: j.RightCol,
		},
		Cols: p.Cols,
	}, true
}

func simplify(a And) Pred {
	if len(a) == 1 {
		return a[0]
	}
	return a
}
