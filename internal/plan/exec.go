package plan

import (
	"context"
	"fmt"
	"strings"
	"time"

	"xst/internal/exec"
	"xst/internal/table"
	"xst/internal/trace"
	"xst/internal/xsp"
)

// Execution lowers logical plans onto the streaming operator tree
// (internal/exec): every node compiles to a batch iterator, so the only
// full materializations anywhere in a run are the hash-join build side,
// the sort buffer, and the aggregate's accumulator table —
// ExecStats.PeakIntermediateRows verifies nothing else ever holds more
// than one batch. The pre-streaming executor survives as
// ExecuteMaterialized (materialize.go) for differential tests and the
// streaming-vs-materialized benchmarks.

// ExecStats reports physical work done by one execution.
type ExecStats struct {
	// RowsScanned counts rows read from base tables.
	RowsScanned int
	// RowsJoined counts rows emitted by join operators.
	RowsJoined int
	// Pipelines counts streaming scan sources (one per base table; the
	// materialized executor counts compiled single-table pipelines).
	Pipelines int
	// Operators counts physical operators in the tree.
	Operators int
	// PeakIntermediateRows is the largest batch any operator emitted —
	// the most rows ever in flight *between* operators. The streaming
	// tree keeps this ≤ exec.MaxBatchRows regardless of result size;
	// the materialized executor reports its largest intermediate
	// result here instead.
	PeakIntermediateRows int
	// BuildRows counts rows held in hash-join build indexes (the
	// cost-chosen smaller sides).
	BuildRows int
	// SortRows counts rows buffered by sort operators.
	SortRows int
	// GroupRows counts aggregate accumulators (one per distinct key).
	GroupRows int
	// Workers counts parallel workers across the plan's exchanges; 0
	// for a fully serial tree.
	Workers int
}

// Compile lowers a logical plan to a streaming operator tree. Join
// build sides are cost-chosen here (EstimateRows); join inputs with
// colliding column names are rejected rather than silently
// misresolved. The returned tree is single-use: compile a fresh one
// per execution.
func Compile(n Node) (exec.Operator, error) {
	switch x := n.(type) {
	case *Scan:
		return exec.NewScan(x.Table), nil
	case *IndexAccess:
		if x.Idx.Kind == HashIdx {
			if x.Idx.Hash == nil {
				return nil, fmt.Errorf("plan: hash index on %s.%s has no structure", x.Idx.Table.Schema().Name, x.Idx.Col)
			}
			return exec.NewHashIndexScan(x.Idx.Table, x.Idx.Hash, x.Eq, x.Desc()), nil
		}
		if x.Idx.BTree == nil {
			return nil, fmt.Errorf("plan: btree index on %s.%s has no structure", x.Idx.Table.Schema().Name, x.Idx.Col)
		}
		return exec.NewBTreeIndexScan(x.Idx.Table, x.Idx.BTree, x.Lo, x.Hi, x.LoIncl, x.HiIncl, x.Desc()), nil
	case *Select:
		child, err := Compile(x.Child)
		if err != nil {
			return nil, err
		}
		pred, sch := x.Pred, child.OutSchema()
		return exec.NewStage(&xsp.Restrict{
			Pred: func(r table.Row) bool { return pred.Eval(sch, r) },
			Name: pred.String(),
		}, child), nil
	case *Project:
		child, err := Compile(x.Child)
		if err != nil {
			return nil, err
		}
		sch := child.OutSchema()
		idx := make([]int, len(x.Cols))
		for i, c := range x.Cols {
			if idx[i], err = colIndex(sch, c, "project column"); err != nil {
				return nil, err
			}
		}
		return exec.NewStage(&xsp.Project{Cols: idx}, child), nil
	case *Join:
		left, err := Compile(x.Left)
		if err != nil {
			return nil, err
		}
		right, err := Compile(x.Right)
		if err != nil {
			return nil, err
		}
		li, err := colIndex(left.OutSchema(), x.LeftCol, "join column")
		if err != nil {
			left.Close()
			right.Close()
			return nil, err
		}
		ri, err := colIndex(right.OutSchema(), x.RightCol, "join column")
		if err != nil {
			left.Close()
			right.Close()
			return nil, err
		}
		buildLeft := EstimateRows(x.Left) < EstimateRows(x.Right)
		return exec.NewHashJoin(left, right, li, ri, buildLeft), nil
	case *Distinct:
		child, err := Compile(x.Child)
		if err != nil {
			return nil, err
		}
		return exec.NewStage(&xsp.Distinct{}, child), nil
	case *Sort:
		child, err := Compile(x.Child)
		if err != nil {
			return nil, err
		}
		idx, err := colIndex(child.OutSchema(), x.Col, "sort column")
		if err != nil {
			child.Close()
			return nil, err
		}
		return exec.NewSort(child, idx, x.Desc), nil
	case *Limit:
		child, err := Compile(x.Child)
		if err != nil {
			return nil, err
		}
		return exec.NewLimit(child, x.N), nil
	case *Source:
		return x.New()
	case *Rename:
		child, err := Compile(x.Child)
		if err != nil {
			return nil, err
		}
		if got, want := child.OutSchema().Arity(), len(x.Cols); got != want {
			child.Close()
			return nil, fmt.Errorf("plan: rename arity %d over child arity %d", want, got)
		}
		return exec.NewRename(child, x.Cols), nil
	case *GroupBy:
		child, err := Compile(x.Child)
		if err != nil {
			return nil, err
		}
		sch := child.OutSchema()
		key, err := colIndex(sch, x.Key, "group key")
		if err != nil {
			child.Close()
			return nil, err
		}
		aggs := make([]xsp.Agg, len(x.Aggs))
		for i, a := range x.Aggs {
			aggs[i] = xsp.Agg{Kind: a.Kind}
			if a.Kind != xsp.Count {
				if aggs[i].Col, err = colIndex(sch, a.Col, "aggregate column"); err != nil {
					child.Close()
					return nil, err
				}
			}
		}
		return exec.NewGroupAgg(child, key, aggs...), nil
	default:
		return nil, fmt.Errorf("plan: cannot compile %T", n)
	}
}

// colIndex resolves a column name, erroring when it is missing or
// appears more than once — Schema.Col silently resolves the first
// match, which would misread every reference to a shadowed column.
// (Join output schemas auto-qualify collisions, so ambiguity here means
// a source schema itself carries duplicate names.)
func colIndex(sch table.Schema, name, what string) (int, error) {
	idx := -1
	for i, c := range sch.Cols {
		if c != name {
			continue
		}
		if idx >= 0 {
			return -1, fmt.Errorf("plan: %s %q is ambiguous in %s (columns %v); qualify or rename it",
				what, name, sch.Name, sch.Cols)
		}
		idx = i
	}
	if idx < 0 {
		return -1, fmt.Errorf("plan: %s %q not found", what, name)
	}
	return idx, nil
}

// Execute runs the plan and returns the result rows with their schema.
func Execute(n Node) ([]table.Row, table.Schema, error) {
	return ExecuteCtx(context.Background(), n)
}

// ExecuteCtx is Execute under a cancellation context, polled once per
// batch throughout the tree.
func ExecuteCtx(ctx context.Context, n Node) ([]table.Row, table.Schema, error) {
	rows, sch, _, err := ExecuteStatsCtx(ctx, n)
	return rows, sch, err
}

// ExecuteStats runs the plan and also returns physical counters.
func ExecuteStats(n Node) ([]table.Row, table.Schema, ExecStats, error) {
	return ExecuteStatsCtx(context.Background(), n)
}

// ExecuteStatsCtx is ExecuteStats under a cancellation context. The
// degree of parallelism is cost-chosen (ChooseDOP): small inputs run
// the serial tree, large ones fan out across morsel workers.
func ExecuteStatsCtx(ctx context.Context, n Node) ([]table.Row, table.Schema, ExecStats, error) {
	op, err := CompileDOP(n, ChooseDOP(n))
	if err != nil {
		return nil, table.Schema{}, ExecStats{}, err
	}
	rows, err := exec.Collect(ctx, op)
	st := TreeStats(op)
	if err != nil {
		return nil, table.Schema{}, st, err
	}
	return rows, op.OutSchema(), st, nil
}

// TreeStats aggregates a (drained) operator tree's counters into
// ExecStats.
func TreeStats(op exec.Operator) ExecStats {
	var st ExecStats
	exec.Walk(op, func(o exec.Operator, _ int) {
		st.Operators++
		s := o.Stats()
		if s.MaxBatch > st.PeakIntermediateRows {
			st.PeakIntermediateRows = s.MaxBatch
		}
		switch x := o.(type) {
		case *exec.Scan:
			st.Pipelines++
			st.RowsScanned += s.RowsIn
		case *exec.IndexScan:
			st.Pipelines++
			st.RowsScanned += s.RowsIn
		case *exec.MorselScan:
			st.RowsScanned += s.RowsIn
		case *exec.Gather:
			// One parallel pipeline per exchange; its HeldRows is the
			// peak rows in flight across the worker fan-in, the parallel
			// analogue of the largest batch.
			st.Pipelines++
			st.Workers += x.Workers()
			if s.HeldRows > st.PeakIntermediateRows {
				st.PeakIntermediateRows = s.HeldRows
			}
		case *exec.HashJoin:
			st.RowsJoined += s.RowsOut
			st.BuildRows += s.HeldRows
		case *exec.HashBuild:
			st.BuildRows += s.HeldRows
		case *exec.ProbeJoin:
			st.RowsJoined += s.RowsOut
		case *exec.Sort:
			st.SortRows += s.HeldRows
		case *exec.GroupAgg:
			st.GroupRows += s.HeldRows
		case *exec.ParallelGroupAgg:
			st.Pipelines++
			st.Workers += x.Workers()
			st.GroupRows += s.HeldRows
		}
	})
	return st
}

// AttachOpSpans mirrors a drained operator tree under parent as one
// synthetic trace span per operator, carrying the operator's OpStats
// (rows out, batches, max batch, held rows, inclusive time). This is
// the bridge between the executor's counters and the tracer: a traced
// query's span tree and EXPLAIN ANALYZE are the same data, and
// RenderOpSpans formats either. A nil parent is a no-op.
func AttachOpSpans(parent *trace.Span, op exec.Operator) {
	AttachOpSpansEst(parent, op, nil)
}

// AttachOpSpansEst is AttachOpSpans with plan-time row estimates: any
// operator present in est carries its estimate on the span, so the
// rendered tree shows estimated next to actual rows. Build the map with
// OpEstimates; nil est attaches plain spans.
func AttachOpSpansEst(parent *trace.Span, op exec.Operator, est map[exec.Operator]float64) {
	if parent == nil {
		return
	}
	var rec func(p *trace.Span, o exec.Operator)
	rec = func(p *trace.Span, o exec.Operator) {
		st := o.Stats()
		sp := p.Start(o.String())
		sp.SetOpStats(st.RowsOut, st.Batches, st.MaxBatch, st.HeldRows, st.Ns)
		if e, ok := est[o]; ok {
			r := int64(e + 0.5)
			if r < 1 {
				r = 1
			}
			sp.SetEstRows(r)
		}
		for _, c := range o.Children() {
			rec(sp, c)
		}
	}
	rec(parent, op)
}

// OpEstimates pairs a compiled operator tree with its logical plan and
// returns the per-operator cardinality estimates the planner chose the
// plan on. Serial trees compile one operator per plan node, so the
// pairing is positional; when a subtree's shapes diverge (parallel
// fan-outs compile one logical node into many operators) the walk stops
// there — those operators simply carry no estimate.
func OpEstimates(n Node, op exec.Operator, cat *Catalog) map[exec.Operator]float64 {
	m := map[exec.Operator]float64{}
	var rec func(n Node, o exec.Operator)
	rec = func(n Node, o exec.Operator) {
		m[o] = cat.Estimate(n)
		kids, okids := children(n), o.Children()
		if len(kids) != len(okids) {
			return
		}
		for i := range kids {
			rec(kids[i], okids[i])
		}
	}
	rec(n, op)
	return m
}

// RenderOpSpans formats an operator span tree (the children attached
// by AttachOpSpans) in EXPLAIN ANALYZE's layout.
func RenderOpSpans(root trace.SpanSnapshot) string {
	var b strings.Builder
	root.Walk(func(sp trace.SpanSnapshot, depth int) {
		line := strings.Repeat("   ", depth) + sp.Name
		fmt.Fprintf(&b, "%-44s rows=%d batches=%d maxbatch=%d", line, sp.Rows, sp.Batches, sp.MaxBatch)
		if sp.Held > 0 {
			fmt.Fprintf(&b, " held=%d", sp.Held)
		}
		if sp.EstRows > 0 {
			fmt.Fprintf(&b, " est=%d", sp.EstRows)
		}
		fmt.Fprintf(&b, " time=%s\n", time.Duration(sp.DurNS).Round(time.Microsecond))
	})
	return b.String()
}

// ExplainAnalyze compiles the plan, drains it under ctx, and renders
// the physical tree with actual per-operator counters:
//
//	hashjoin[ouid=uid build=right]  rows=60 batches=1 maxbatch=60 held=20 time=0s
//	   scan(orders)                 rows=60 batches=1 maxbatch=60 time=0s
//	   scan(users)                  rows=20 batches=1 maxbatch=20 time=0s
//
// The rendering goes through the same span tree the tracer builds for
// live queries (AttachOpSpans), so `.trace` output and EXPLAIN ANALYZE
// can never drift apart.
func ExplainAnalyze(ctx context.Context, n Node) (string, error) {
	return ExplainAnalyzeCat(ctx, n, nil)
}

// ExplainAnalyzeCat is ExplainAnalyze with a planner catalog: per-span
// `est=` annotations come from the catalog's statistics, so the output
// shows estimated next to actual rows — why the plan was picked and
// how far the guess was off.
func ExplainAnalyzeCat(ctx context.Context, n Node, cat *Catalog) (string, error) {
	op, err := CompileDOP(n, ChooseDOP(n))
	if err != nil {
		return "", err
	}
	est := OpEstimates(n, op, cat)
	if _, err := exec.Count(ctx, op); err != nil {
		return "", err
	}
	root := trace.NewRoot("analyze")
	AttachOpSpansEst(root, op, est)
	root.End()
	snap := root.Snapshot()
	if len(snap.Children) == 0 {
		return "", nil
	}
	return RenderOpSpans(snap.Children[0]), nil
}
