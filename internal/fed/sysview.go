package fed

import (
	"context"
	"fmt"
	"time"

	"xst/internal/core"
	"xst/internal/server"
	"xst/internal/sysview"
	"xst/internal/table"
)

// This file federates the `__sys.*` system catalog: the coordinator
// serves __sys.sites from its own connection-health state, and answers
// every site-local view (__sys.queries, __sys.metrics, __sys.wal, …) by
// fanning the same `from __sys.X` statement out to the sites and
// unioning their rows behind a leading `site` ordinal column — the
// introspection analogue of a partitioned scan.

// fedViews are the site-local views the coordinator federates. Sites
// serve all of them whenever a database is attached; the coordinator
// exposes each with schema {site} ∪ StandardCols[name].
var fedViews = []string{
	sysview.Queries, sysview.Metrics, sysview.Slow,
	sysview.Txns, sysview.Wal, sysview.Indexes, sysview.Stats,
}

// bindSysViews registers the federated system views in the stub
// environment, so `from __sys.wal where site == 2` compiles through the
// ordinary planner; the splitter leaves their plan.Source leaves at the
// coordinator, whose Rows function does the fan-out.
func (c *Coordinator) bindSysViews() {
	c.env.BindVirtual(sysview.Sites, sysview.Standard(sysview.Sites,
		"per-site federation health as seen by this coordinator", c.siteHealthRows))
	for _, name := range fedViews {
		name := name
		cols := append([]string{"site"}, sysview.StandardCols[name]...)
		c.env.BindVirtual(name, &sysview.Table{
			Name: name,
			Help: "union of every site's " + name + ", tagged with the site ordinal",
			Cols: cols,
			Est:  float64(len(c.sites)) * 64,
			Rows: func(ctx context.Context) ([]table.Row, error) {
				return c.gatherSys(ctx, name, len(cols)-1)
			},
		})
	}
}

// siteHealthRows is one __sys.sites row per site: up reflects the most
// recent fragment outcome, counters are the per-site xstd_fed_* series,
// latency is the last completed fragment's wall time.
func (c *Coordinator) siteHealthRows(context.Context) ([]table.Row, error) {
	out := make([]table.Row, 0, len(c.sites))
	for _, st := range c.sites {
		out = append(out, table.Row{
			core.Int(int64(st.id)),
			core.Str(st.addr),
			core.Bool(!st.down.Load()),
			core.Int(int64(st.frags.Value())),
			core.Int(int64(st.retries.Value())),
			core.Int(int64(st.errs.Value())),
			core.Int(int64(st.bytes.Value())),
			core.Int(st.lastLatUS.Load()),
		})
	}
	return out, nil
}

// gatherSys unions one view's rows from every reachable site, each row
// prefixed with its site ordinal. Sites marked down are skipped (their
// absence is itself visible in __sys.sites); an error from a live site
// fails the query rather than silently narrowing the union.
func (c *Coordinator) gatherSys(ctx context.Context, name string, arity int) ([]table.Row, error) {
	var out []table.Row
	for _, st := range c.sites {
		if st.down.Load() {
			continue
		}
		rows, err := c.sysFrom(ctx, st, name, arity)
		if err != nil {
			c.markSite(st, false)
			return nil, fmt.Errorf("fed: site %d (%s): %s: %w", st.id, st.addr, name, err)
		}
		for _, r := range rows {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out = append(out, append(table.Row{core.Int(int64(st.id))}, r...))
		}
	}
	return out, nil
}

// sysFrom streams one site's `from <name>` result to completion over a
// pooled connection.
func (c *Coordinator) sysFrom(ctx context.Context, st *site, name string, arity int) ([]table.Row, error) {
	conn, err := c.getConn(ctx, st)
	if err != nil {
		return nil, err
	}
	wd := watchConn(ctx, conn.conn)
	req := server.Request{Stmt: "from " + name, Wire: true}
	if d, ok := ctx.Deadline(); ok {
		ms := time.Until(d).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.TimeoutMS = ms
	}
	id, nw, err := conn.send(req)
	c.countBytes(st, nw)
	if err != nil {
		wd.halt()
		conn.close()
		return nil, err
	}
	var out []table.Row
	for {
		resp, n, err := conn.recv(id)
		c.countBytes(st, n)
		if err != nil {
			wd.halt()
			conn.close()
			return nil, err
		}
		if resp.Error != "" {
			// The error line is final, so the connection is quiesced.
			wd.halt()
			if ctx.Err() == nil {
				st.put(conn)
			} else {
				conn.close()
			}
			return nil, fmt.Errorf("%s", resp.Error)
		}
		if resp.More {
			rows, err := decodeBatch(resp.Batch, arity)
			if err != nil {
				wd.halt()
				conn.close()
				return nil, err
			}
			out = append(out, rows...)
			continue
		}
		wd.halt()
		if ctx.Err() == nil {
			st.put(conn)
		} else {
			conn.close()
		}
		return out, nil
	}
}
