package fed

import (
	"context"
	"strings"
	"testing"
	"time"

	"xst/internal/core"
	"xst/internal/table"
	"xst/internal/trace"
)

// siteOf reads the leading site-ordinal column of a federated __sys row.
func siteOf(t *testing.T, r table.Row) int {
	t.Helper()
	n, ok := r[0].(core.Int)
	if !ok {
		t.Fatalf("site column is %T, want core.Int", r[0])
	}
	return int(n)
}

// TestFedSysUnion: a federated `from __sys.X` is the union of every
// site's rows behind a site ordinal — one __sys.wal health row per
// site, every site's metrics registry, and predicate pushability on
// the site column via the ordinary planner.
func TestFedSysUnion(t *testing.T) {
	d := makeData(53, 120, 90)
	lf := bootTestFed(t, 3, Config{}, d)
	runFed(t, lf, "from users where age > 10")

	_, rows := runFed(t, lf, "from __sys.wal")
	if len(rows) != 3 {
		t.Fatalf("federated __sys.wal returned %d rows, want one per site", len(rows))
	}
	seen := map[int]bool{}
	for _, r := range rows {
		if len(r) != 7 {
			t.Fatalf("federated __sys.wal arity %d, want 7 (site + 6)", len(r))
		}
		seen[siteOf(t, r)] = true
	}
	for s := 0; s < 3; s++ {
		if !seen[s] {
			t.Fatalf("site %d missing from federated __sys.wal union", s)
		}
	}

	// Every site serves the same registry, so the union splits evenly
	// and every ordinal contributes.
	_, rows = runFed(t, lf, "from __sys.metrics")
	perSite := map[int]int{}
	for _, r := range rows {
		perSite[siteOf(t, r)]++
	}
	if len(perSite) != 3 || perSite[0] != perSite[1] || perSite[1] != perSite[2] {
		t.Fatalf("federated __sys.metrics split %v, want three equal shares", perSite)
	}

	// The view compiles through the normal planner, so predicates work.
	_, rows = runFed(t, lf, "from __sys.wal where site = 1")
	if len(rows) != 1 || siteOf(t, rows[0]) != 1 {
		t.Fatalf("site predicate returned %d rows (first site %v)", len(rows), rows)
	}
}

// TestFedSysQueriesRemote: the site-local query log is visible through
// the union — the fragments a federated statement just ran appear as
// finished entries on their sites.
func TestFedSysQueriesRemote(t *testing.T) {
	d := makeData(59, 120, 90)
	lf := bootTestFed(t, 3, Config{}, d)
	runFed(t, lf, "from users where age > 20")

	_, rows := runFed(t, lf, "from __sys.queries")
	found := 0
	for _, r := range rows {
		stmt, ok := r[2].(core.Str)
		if !ok {
			t.Fatalf("stmt column is %T", r[2])
		}
		if strings.Contains(string(stmt), "from users") && string(r[3].(core.Str)) == "ok" {
			found++
		}
	}
	if found < 3 {
		t.Fatalf("only %d sites logged the fragment statement:\n%v", found, rows)
	}
}

// TestFedSysSites: __sys.sites reports the coordinator's own health
// state — one row per site agreeing with the per-site counters — and a
// killed site flips to down after the failure is observed.
func TestFedSysSites(t *testing.T) {
	d := makeData(61, 120, 90)
	lf := bootTestFed(t, 3, Config{Retries: 1, Backoff: time.Millisecond}, d)
	runFed(t, lf, "from users")
	runFed(t, lf, "from orders where amount > 10")

	_, rows := runFed(t, lf, "from __sys.sites")
	if len(rows) != 3 {
		t.Fatalf("__sys.sites returned %d rows, want 3", len(rows))
	}
	for i, r := range rows {
		if len(r) != 8 {
			t.Fatalf("__sys.sites arity %d, want 8", len(r))
		}
		if siteOf(t, r) != i {
			t.Fatalf("row %d reports site %d", i, siteOf(t, r))
		}
		if up := bool(r[2].(core.Bool)); !up {
			t.Fatalf("site %d reported down while healthy", i)
		}
		st := lf.Coord.sites[i]
		if got := int64(r[3].(core.Int)); got != int64(st.frags.Value()) {
			t.Fatalf("site %d fragments = %d, counter says %d", i, got, st.frags.Value())
		}
		if int64(r[3].(core.Int)) == 0 {
			t.Fatalf("site %d served no fragments after two scans", i)
		}
		if lat := int64(r[7].(core.Int)); lat <= 0 {
			t.Fatalf("site %d last fragment latency = %dµs", i, lat)
		}
	}

	// Kill a site: the next data query burns its retries and marks it
	// down; __sys.sites reflects that, and federated unions then skip it
	// rather than failing forever.
	lf.KillSite(cancelledCtx(), 0)
	q, err := lf.Coord.Compile("from users")
	if err != nil {
		t.Fatal(err)
	}
	if _, err = q.Run(context.Background(), func([]table.Row) error { return nil }); err == nil {
		t.Fatal("scan over killed site succeeded")
	}

	_, rows = runFed(t, lf, "from __sys.sites")
	downs := 0
	for _, r := range rows {
		if !bool(r[2].(core.Bool)) {
			downs++
			if siteOf(t, r) != 0 {
				t.Fatalf("wrong site marked down: %v", r)
			}
		}
	}
	if downs != 1 {
		t.Fatalf("%d sites marked down, want 1", downs)
	}

	_, rows = runFed(t, lf, "from __sys.wal")
	if len(rows) != 2 {
		t.Fatalf("union over degraded federation returned %d rows, want 2 surviving sites", len(rows))
	}
	for _, r := range rows {
		if siteOf(t, r) == 0 {
			t.Fatal("dead site contributed rows to the union")
		}
	}
}

// spanIDs collects every span id in a snapshot tree, checking trace-id
// inheritance along the way.
func spanIDs(t *testing.T, snap trace.SpanSnapshot) []uint64 {
	t.Helper()
	var ids []uint64
	snap.Walk(func(sp trace.SpanSnapshot, _ int) {
		ids = append(ids, sp.ID)
		if sp.TraceID != snap.TraceID {
			t.Fatalf("span %q carries trace id %q, root has %q", sp.Name, sp.TraceID, snap.TraceID)
		}
	})
	return ids
}

// runTraced compiles and runs stmt under a fresh root span, returning
// the finished tree.
func runTraced(t *testing.T, lf *LocalFed, stmt string) (trace.SpanSnapshot, error) {
	t.Helper()
	q, err := lf.Coord.Compile(stmt)
	if err != nil {
		t.Fatal(err)
	}
	root := trace.NewRoot("query")
	root.SetNote(stmt)
	ctx := trace.WithSpan(context.Background(), root)
	_, err = q.Run(ctx, func([]table.Row) error { return nil })
	root.End()
	return root.Snapshot(), err
}

// TestFedTracePropagation: a traced federated query yields ONE span
// tree — the coordinator's — with a remote span per site under exec,
// each carrying the site's own grafted span tree (the fragment's
// compile/exec phases ran on the site), every span sharing the root's
// trace id, and no duplicate span ids anywhere in the merged tree.
func TestFedTracePropagation(t *testing.T) {
	d := makeData(67, 240, 300)
	lf := bootTestFed(t, 3, Config{}, d)

	snap, err := runTraced(t, lf, "from users where age > 10")
	if err != nil {
		t.Fatal(err)
	}
	if snap.TraceID == "" {
		t.Fatal("root span has no trace id")
	}
	ids := spanIDs(t, snap)
	dup := map[uint64]bool{}
	for _, id := range ids {
		if id == 0 {
			t.Fatal("span with zero id in merged tree")
		}
		if dup[id] {
			t.Fatalf("duplicate span id %d in merged tree:\n%s", id, snap.Render())
		}
		dup[id] = true
	}

	for s := 0; s < 3; s++ {
		prefix := "remote[s" + string(rune('0'+s)) + " "
		var rsp *trace.SpanSnapshot
		snap.Walk(func(sp trace.SpanSnapshot, _ int) {
			if rsp == nil && strings.HasPrefix(sp.Name, prefix) {
				c := sp
				rsp = &c
			}
		})
		if rsp == nil {
			t.Fatalf("no span %q in tree:\n%s", prefix, snap.Render())
		}
		// The site's own tree is grafted under the attempt span: its root
		// is the site-side "query" span noted with the fragment statement,
		// with the site's exec phase below it.
		var site *trace.SpanSnapshot
		for i := range rsp.Children {
			if rsp.Children[i].Name == "query" {
				site = &rsp.Children[i]
			}
		}
		if site == nil {
			t.Fatalf("remote span s%d carries no site tree:\n%s", s, snap.Render())
		}
		if !strings.Contains(site.Note, "from users") {
			t.Fatalf("site s%d root note %q does not carry the fragment statement", s, site.Note)
		}
		if site.Find("exec") == nil {
			t.Fatalf("site s%d tree has no exec span:\n%s", s, snap.Render())
		}
		if site.DOP < 1 {
			t.Fatalf("site s%d tree records dop %d", s, site.DOP)
		}
	}
}

// TestFedTraceSiteKillRetry: with a site dead, each fragment attempt
// appears as its own span — the first plus one per retry — every one
// closed with the error that ended it, still without duplicate ids,
// while the surviving sites' spans stay intact. Run under -race in CI,
// this also exercises concurrent attempt-span creation from gather
// workers.
func TestFedTraceSiteKillRetry(t *testing.T) {
	d := makeData(71, 240, 60)
	lf := bootTestFed(t, 3, Config{Retries: 2, Backoff: time.Millisecond}, d)
	lf.KillSite(cancelledCtx(), 0)

	snap, err := runTraced(t, lf, "from users")
	if err == nil {
		t.Fatal("scan over killed site succeeded")
	}
	ids := spanIDs(t, snap)
	dup := map[uint64]bool{}
	for _, id := range ids {
		if dup[id] {
			t.Fatalf("duplicate span id %d:\n%s", id, snap.Render())
		}
		dup[id] = true
	}

	// The dead site's fragment ran its initial attempt plus both
	// configured retries; each is a distinct span closed with the error
	// that ended it. (Spans named "remote[s0 …]" without an error note
	// are the synthetic post-drain operator spans, not attempts.)
	var errSpans, retriesNamed int
	snap.Walk(func(sp trace.SpanSnapshot, _ int) {
		if strings.HasPrefix(sp.Name, "remote[s0 ") && strings.HasPrefix(sp.Note, "error: ") {
			errSpans++
			if strings.Contains(sp.Name, " retry") {
				retriesNamed++
			}
		}
	})
	if errSpans != 3 {
		t.Fatalf("%d dead-site attempt spans carry errors, want 3 (attempt + 2 retries):\n%s",
			errSpans, snap.Render())
	}
	if retriesNamed != 2 {
		t.Fatalf("%d retry attempts named in tree, want 2:\n%s", retriesNamed, snap.Render())
	}
}
