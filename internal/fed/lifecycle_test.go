package fed

// Regression tests for the lifecycle violations xstvet's interprocedural
// analyzers surfaced in this package: Remote.Next abandoning a live
// connection on its ctx-err exit (connclose), gatherCache holding its
// mutex across a network gather so waiters could not honor their own
// deadline (lockheld), and BootLocal's accept loops outliving Shutdown
// (goleak).

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"xst/internal/exec"
	"xst/internal/table"
)

// TestRemoteCancelDropsConn: a Remote whose context dies between
// batches must drop its connection and halt its watchdog on the ctx-err
// exit itself — the conn has unread lines, so leaving it for Close
// risks pooling a dirty connection if the exits ever diverge.
func TestRemoteCancelDropsConn(t *testing.T) {
	d := makeData(51, 4000, 100)
	lf := bootTestFed(t, 1, Config{}, d)
	c := lf.Coord

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := c.remote(c.sites[0], usersSchema, staticFrag("from users"), "test")
	if err := r.Open(ctx); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rows, err := r.Next()
	if err != nil || len(rows) == 0 {
		t.Fatalf("first batch: %d rows, err %v", len(rows), err)
	}
	if r.done {
		t.Fatal("fixture table fits one batch; grow it so cancellation lands mid-stream")
	}
	cancel()
	if _, err := r.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next after cancel = %v, want context.Canceled", err)
	}
	if r.conn != nil || r.wd != nil {
		t.Fatal("cancelled Next abandoned the live connection or its watchdog")
	}
}

// wedgeOp is an operator whose Next blocks until released — a stand-in
// for a gather stuck on an unresponsive site.
type wedgeOp struct {
	entered chan struct{} // closed when Next first blocks
	release chan struct{}
	once    sync.Once
}

func (w *wedgeOp) Open(ctx context.Context) error { return nil }
func (w *wedgeOp) Next() ([]table.Row, error) {
	w.once.Do(func() { close(w.entered) })
	<-w.release
	return nil, nil
}
func (w *wedgeOp) Close() error              { return nil }
func (w *wedgeOp) OutSchema() table.Schema   { return table.Schema{Name: "wedge", Cols: []string{"v"}} }
func (w *wedgeOp) Stats() exec.OpStats       { return exec.OpStats{} }
func (w *wedgeOp) Children() []exec.Operator { return nil }
func (w *wedgeOp) String() string            { return "wedge" }

// TestGatherCacheWaiterHonorsOwnCtx: while the first caller's gather is
// wedged on a stuck site, a second caller whose context is already dead
// must return promptly with its own ctx error instead of queueing on
// the cache's mutex behind the network.
func TestGatherCacheWaiterHonorsOwnCtx(t *testing.T) {
	w := &wedgeOp{entered: make(chan struct{}), release: make(chan struct{})}
	g := &gatherCache{
		newOp: func() (exec.Operator, error) { return w, nil },
		ready: make(chan struct{}),
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.rows(context.Background())
	}()
	<-w.entered // the gatherer is now wedged inside its site read

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	errc := make(chan error, 1)
	go func() {
		_, err := g.rows(ctx)
		errc <- err
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter with a cancelled context is stuck behind the wedged gatherer")
	}

	close(w.release) // unwedge; the gather completes and caches
	wg.Wait()
	if _, err := g.rows(context.Background()); err != nil {
		t.Fatalf("replay after gather completed: %v", err)
	}
}

// TestBootShutdownJoinsServeLoops: Shutdown must not return while any
// site's accept loop is still running — a booted-and-torn-down
// federation leaves the goroutine count where it found it.
func TestBootShutdownJoinsServeLoops(t *testing.T) {
	before := runtime.NumGoroutine()
	d := makeData(53, 60, 30)
	lf, err := BootLocal(context.Background(), 3, Config{}, populateData(d, 3))
	if err != nil {
		t.Fatal(err)
	}
	runFed(t, lf, "from users") // touch every site so sessions exist
	lf.Shutdown(context.Background())
	assertDrained(t, before)
}
