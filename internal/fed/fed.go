// Package fed is the federation subsystem: a coordinator that plans and
// executes one query across N networked xstd sites, each owning hash-
// or range-partitions of the stored tables (ROADMAP "one listener, N
// backend sites").
//
// The coordinator connects to every site, reads its `.schema` catalog
// (columns, row counts, partition specs), and compiles incoming `from …`
// statements with the ordinary single-node planner against a stub
// environment of schema-only tables. The optimized logical tree is then
// split: maximal per-site subtrees — restrict / project / partial
// aggregate / co-located or broadcast join chains — are decompiled back
// into query text and shipped to the owning sites as fragments over the
// xstd wire protocol (batch streaming, wire-encoded rows), while the
// remainder (merge aggregation, sorts, cross-site joins) keeps running
// at the coordinator through the same plan.Compile path via plan.Source
// leaves. Scatter/gather reuses the exec.Gather exchange, so per-site
// cancellation, first-error-wins propagation and bounded buffering are
// the same code paths a local parallel query uses.
//
// Distributed equi-joins choose among dist's four strategies by the
// byte-cost model (dist.ChooseStrategy) fed with catalog statistics;
// broadcast ships the small side to every probe site via `.load`
// scratch tables, semijoin ships the distinct probe keys and gathers
// only the matching right rows. Failure semantics: fragments are
// idempotent (read-only over immutable site data, fresh scratch names
// per attempt), so the coordinator retries a fragment that dies before
// its first row with backoff; after first output, or when retries are
// exhausted — a drained or killed site — the query fails cleanly
// through Gather's first-error-wins path.
package fed

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xst/internal/core"
	"xst/internal/metrics"
	"xst/internal/server"
	"xst/internal/store"
	"xst/internal/table"
	"xst/internal/xlang"
)

// Config describes a federation.
type Config struct {
	// Sites are the xstd addresses, in partition-ordinal order: site i
	// must be the instance whose catalog records partition Site == i.
	Sites []string
	// DialTimeout bounds one site connection attempt (default 5s).
	DialTimeout time.Duration
	// AdminTimeout bounds one admin round trip — .schema at connect,
	// .load during joins (default 10s).
	AdminTimeout time.Duration
	// Retries is how many times a fragment that failed before its first
	// row is re-sent (default 2). Fragments that already streamed rows
	// are never retried: the query fails instead.
	Retries int
	// Backoff is the delay before the first retry, doubling per attempt
	// (default 50ms).
	Backoff time.Duration
	// ForceStrategy, when non-empty ("shipall", "broadcast", "semijoin",
	// "colocated"), overrides cost-based join strategy choice — for the
	// shipped-bytes ablation (EXPERIMENTS E15) and tests.
	ForceStrategy string
	// Logf, when set, receives coordinator lifecycle logs.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.AdminTimeout <= 0 {
		c.AdminTimeout = 10 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
}

// TableMeta is the coordinator's merged view of one federated table.
type TableMeta struct {
	Name string
	Cols []string
	// SiteRows is the row count on each site.
	SiteRows []int
	// RowBytes is the largest per-site sampled encoded row size.
	RowBytes int
	// Distinct maps column name → per-column distinct count, merged as
	// the max across sites (each site's exact count is a lower bound on
	// the federation-wide count). Empty until the sites have been
	// analyzed; consumers treat a missing entry as unknown.
	Distinct map[string]int
	// Part is the partition spec shared by all sites (nil when the
	// table is unpartitioned — rows live wherever they were inserted).
	Part *PartSpec
}

// Rows is the total row count across sites.
func (m *TableMeta) Rows() int {
	n := 0
	for _, r := range m.SiteRows {
		n += r
	}
	return n
}

// PartSpec is the coordinator-side partition description.
type PartSpec struct {
	// Kind is catalog.PartHash or catalog.PartRange.
	Kind string
	// Col is the partitioning column.
	Col string
	// Bounds are the range split points (len = sites-1), ascending:
	// site i owns Bounds[i-1] <= v < Bounds[i].
	Bounds []core.Value
}

// Coordinator plans and executes queries across the federation.
type Coordinator struct {
	cfg    Config
	sites  []*site
	tables map[string]*TableMeta
	env    *xlang.Env
	// stubs maps the schema-only stub tables bound into env back to
	// their names, so the splitter recognizes plan.Scan leaves.
	stubs map[*table.Table]string
	seq   atomic.Uint64
	m     Metrics
}

// site is one backend with its connection pool and per-site counters.
type site struct {
	id   int
	addr string

	mu   sync.Mutex
	idle []*siteConn

	down atomic.Bool
	// lastLatUS is the most recent fragment's wall time in microseconds
	// (__sys.sites' latency column).
	lastLatUS atomic.Int64

	bytes   *metrics.Counter
	rows    *metrics.Counter
	frags   *metrics.Counter
	errs    *metrics.Counter
	retries *metrics.Counter
}

// Metrics are the coordinator's registry series (xstd_fed_*).
type Metrics struct {
	Fragments    metrics.Counter
	FragErrors   metrics.Counter
	Retries      metrics.Counter
	BytesShipped metrics.Counter
	RowsShipped  metrics.Counter
	SitesUp      metrics.Gauge
	FragLatency  metrics.Histogram

	siteBytes   []metrics.Counter
	siteRows    []metrics.Counter
	siteFrags   []metrics.Counter
	siteErrs    []metrics.Counter
	siteRetries []metrics.Counter
}

// Connect dials every site, reads its catalog, and validates that the
// federation is coherent: every table present on all sites with the
// same columns, partition specs (when present) agreeing in kind, column
// and site count, with each site holding its own ordinal.
func Connect(ctx context.Context, cfg Config) (*Coordinator, error) {
	cfg.fill()
	if len(cfg.Sites) == 0 {
		return nil, fmt.Errorf("fed: no sites configured")
	}
	c := &Coordinator{cfg: cfg, tables: map[string]*TableMeta{}}
	c.m.siteBytes = make([]metrics.Counter, len(cfg.Sites))
	c.m.siteRows = make([]metrics.Counter, len(cfg.Sites))
	c.m.siteFrags = make([]metrics.Counter, len(cfg.Sites))
	c.m.siteErrs = make([]metrics.Counter, len(cfg.Sites))
	c.m.siteRetries = make([]metrics.Counter, len(cfg.Sites))
	perSite := make([]map[string]server.TableInfo, len(cfg.Sites))
	for i, addr := range cfg.Sites {
		st := &site{
			id: i, addr: addr,
			bytes: &c.m.siteBytes[i], rows: &c.m.siteRows[i],
			frags: &c.m.siteFrags[i], errs: &c.m.siteErrs[i],
			retries: &c.m.siteRetries[i],
		}
		c.sites = append(c.sites, st)
		infos, err := c.fetchSchema(ctx, st)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("fed: site %d (%s): %w", i, addr, err)
		}
		perSite[i] = map[string]server.TableInfo{}
		for _, ti := range infos {
			perSite[i][ti.Name] = ti
		}
	}
	if err := c.mergeCatalogs(perSite); err != nil {
		c.Close()
		return nil, err
	}
	if err := c.buildStubEnv(); err != nil {
		c.Close()
		return nil, err
	}
	c.bindSysViews()
	c.m.SitesUp.Set(int64(len(c.sites)))
	if cfg.Logf != nil {
		cfg.Logf("fed: %d sites, %d tables", len(c.sites), len(c.tables))
	}
	return c, nil
}

// fetchSchema reads one site's `.schema` catalog over a fresh pooled
// connection.
func (c *Coordinator) fetchSchema(ctx context.Context, st *site) ([]server.TableInfo, error) {
	conn, err := c.getConn(ctx, st)
	if err != nil {
		return nil, err
	}
	resp, err := c.admin(ctx, st, conn, server.Request{Stmt: ".schema"})
	if err != nil {
		conn.close()
		return nil, err
	}
	st.put(conn)
	var infos []server.TableInfo
	if err := json.Unmarshal([]byte(resp.Result), &infos); err != nil {
		return nil, fmt.Errorf("bad .schema payload: %w", err)
	}
	return infos, nil
}

// mergeCatalogs folds the per-site .schema snapshots into TableMetas.
func (c *Coordinator) mergeCatalogs(perSite []map[string]server.TableInfo) error {
	names := map[string]bool{}
	for _, m := range perSite {
		for n := range m {
			names[n] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, name := range sorted {
		meta := &TableMeta{Name: name, SiteRows: make([]int, len(c.sites))}
		for i, m := range perSite {
			ti, ok := m[name]
			if !ok {
				return fmt.Errorf("fed: table %q missing on site %d", name, i)
			}
			if meta.Cols == nil {
				meta.Cols = ti.Cols
			} else if !equalCols(meta.Cols, ti.Cols) {
				return fmt.Errorf("fed: table %q schema differs on site %d: %v vs %v",
					name, i, ti.Cols, meta.Cols)
			}
			meta.SiteRows[i] = ti.Rows
			if ti.RowBytes > meta.RowBytes {
				meta.RowBytes = ti.RowBytes
			}
			for col, d := range ti.Distinct {
				if meta.Distinct == nil {
					meta.Distinct = map[string]int{}
				}
				if d > meta.Distinct[col] {
					meta.Distinct[col] = d
				}
			}
			if ti.Part != nil {
				spec, err := decodePartInfo(ti.Part)
				if err != nil {
					return fmt.Errorf("fed: table %q site %d: %w", name, i, err)
				}
				if ti.Part.Sites != len(c.sites) {
					return fmt.Errorf("fed: table %q partitioned over %d sites, federation has %d",
						name, ti.Part.Sites, len(c.sites))
				}
				if ti.Part.Site != i {
					return fmt.Errorf("fed: table %q on site %d claims partition ordinal %d",
						name, i, ti.Part.Site)
				}
				if meta.Part == nil {
					meta.Part = spec
				} else if meta.Part.Kind != spec.Kind || meta.Part.Col != spec.Col {
					return fmt.Errorf("fed: table %q partition spec differs across sites", name)
				}
			}
		}
		c.tables[name] = meta
	}
	return nil
}

func decodePartInfo(pi *server.PartInfo) (*PartSpec, error) {
	spec := &PartSpec{Kind: pi.Kind, Col: pi.Col}
	for _, b64 := range pi.Bounds {
		raw, err := base64.StdEncoding.DecodeString(b64)
		if err != nil {
			return nil, fmt.Errorf("bad partition bound: %w", err)
		}
		v, _, err := core.Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("bad partition bound: %w", err)
		}
		spec.Bounds = append(spec.Bounds, v)
	}
	return spec, nil
}

func equalCols(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// buildStubEnv binds a schema-only, zero-row stand-in for every
// federated table into a fresh environment, so the ordinary single-node
// parser and optimizer compile statements against the federation
// catalog.
func (c *Coordinator) buildStubEnv() error {
	pool := store.NewBufferPool(store.NewMemPager(), 16)
	env := xlang.NewEnv()
	stubs := map[*table.Table]string{}
	for name, meta := range c.tables {
		t, err := table.Create(pool, table.Schema{Name: name, Cols: meta.Cols})
		if err != nil {
			return fmt.Errorf("fed: stub table %q: %w", name, err)
		}
		env.BindTable(name, t)
		stubs[t] = name
	}
	c.env = env
	c.stubs = stubs
	return nil
}

// RegisterMetrics publishes the coordinator's xstd_fed_* series into a
// registry (typically the front server's).
func (c *Coordinator) RegisterMetrics(reg *metrics.Registry) error {
	type counter struct {
		name, help string
		c          *metrics.Counter
	}
	counters := []counter{
		{"xstd_fed_fragments_total", "Fragments completed across all sites.", &c.m.Fragments},
		{"xstd_fed_fragment_errors_total", "Fragment attempts that failed.", &c.m.FragErrors},
		{"xstd_fed_retries_total", "Fragment retry attempts.", &c.m.Retries},
		{"xstd_fed_bytes_shipped_total", "Wire bytes moved between coordinator and sites.", &c.m.BytesShipped},
		{"xstd_fed_rows_shipped_total", "Rows moved between coordinator and sites.", &c.m.RowsShipped},
	}
	for i := range c.sites {
		counters = append(counters,
			counter{fmt.Sprintf("xstd_fed_site%d_bytes_shipped_total", i),
				fmt.Sprintf("Wire bytes exchanged with site %d.", i), &c.m.siteBytes[i]},
			counter{fmt.Sprintf("xstd_fed_site%d_rows_shipped_total", i),
				fmt.Sprintf("Rows exchanged with site %d.", i), &c.m.siteRows[i]},
			counter{fmt.Sprintf("xstd_fed_site%d_fragments_total", i),
				fmt.Sprintf("Fragments completed by site %d.", i), &c.m.siteFrags[i]},
			counter{fmt.Sprintf("xstd_fed_site%d_fragment_errors_total", i),
				fmt.Sprintf("Fragment attempts failed on site %d.", i), &c.m.siteErrs[i]},
			counter{fmt.Sprintf("xstd_fed_site%d_retries_total", i),
				fmt.Sprintf("Fragment retries against site %d.", i), &c.m.siteRetries[i]},
		)
	}
	for _, e := range counters {
		if err := reg.RegisterCounter(e.name, e.help, e.c); err != nil {
			return err
		}
	}
	if err := reg.RegisterGauge("xstd_fed_sites_up",
		"Sites whose last fragment succeeded (all sites at connect).", &c.m.SitesUp); err != nil {
		return err
	}
	return reg.RegisterHistogram("xstd_fed_fragment_latency_seconds",
		"Per-fragment wall time, dial to final response.", &c.m.FragLatency)
}

// Metrics exposes the coordinator counters for tests and reports.
func (c *Coordinator) Metrics() *Metrics { return &c.m }

// Tables lists the federated catalog (sorted by name).
func (c *Coordinator) Tables() []*TableMeta {
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*TableMeta, len(names))
	for i, n := range names {
		out[i] = c.tables[n]
	}
	return out
}

// Sites reports the federation size.
func (c *Coordinator) Sites() int { return len(c.sites) }

// Close drops all pooled site connections.
func (c *Coordinator) Close() error {
	for _, st := range c.sites {
		st.mu.Lock()
		idle := st.idle
		st.idle = nil
		st.mu.Unlock()
		for _, conn := range idle {
			conn.close()
		}
	}
	return nil
}

// markSite records a fragment outcome for site-health accounting: the
// sites-up gauge counts sites whose most recent fragment succeeded.
func (c *Coordinator) markSite(st *site, ok bool) {
	if st.down.Swap(!ok) == !ok {
		return
	}
	up := int64(0)
	for _, s := range c.sites {
		if !s.down.Load() {
			up++
		}
	}
	c.m.SitesUp.Set(up)
}
