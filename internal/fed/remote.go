package fed

import (
	"context"
	"encoding/base64"
	"fmt"
	"time"

	"xst/internal/exec"
	"xst/internal/server"
	"xst/internal/table"
	"xst/internal/trace"
)

// fragFunc prepares one fragment attempt on a checked-out connection —
// shipping any scratch tables (broadcast build sides, semijoin key
// sets) — and returns the fragment's query request. It is called once
// per attempt; side effects must use fresh scratch names so a retry
// never observes a half-loaded predecessor (`.load` extends an existing
// scratch table rather than replacing it).
type fragFunc func(ctx context.Context, st *site, conn *siteConn, attempt int) (server.Request, error)

// Remote streams one fragment's result from one site: an exec.Operator
// leaf whose batches arrive wire-encoded over the xstd protocol. Open
// dials (or reuses) a pooled connection and sends the fragment with the
// remaining context budget as its site-side deadline; a watchdog
// goroutine force-closes the connection if the context dies mid-stream,
// which is how Gather's first-error-wins cancellation reaches into a
// blocked network read. Attempts that fail before the first row are
// retried with exponential backoff up to the configured budget; after
// rows have streamed the query fails instead (resending would duplicate
// output).
//
// Batches are freshly decoded rows, so Remote is a Retainer and its
// output may cross goroutines uncloned — exactly what Gather wants.
type Remote struct {
	c     *Coordinator
	st    *site
	sch   table.Schema
	fq    fragFunc
	label string

	ctx     context.Context
	conn    *siteConn
	reqID   uint64
	wd      *watchdog
	attempt int
	emitted bool
	done    bool
	start   time.Time
	stats   exec.OpStats
	open    bool
	// asp is the current attempt's runtime span: one per network
	// attempt, so retries appear as distinct spans in the coordinator's
	// tree, a failed attempt closes with its error, and the site's
	// returned span tree grafts under the attempt that fetched it.
	asp *trace.Span
}

func (c *Coordinator) remote(st *site, sch table.Schema, fq fragFunc, label string) *Remote {
	return &Remote{c: c, st: st, sch: sch, fq: fq, label: label}
}

// Open implements Operator: it runs the first attempt, retrying dial
// and send failures within the retry budget.
func (r *Remote) Open(ctx context.Context) error {
	r.stats = exec.OpStats{}
	defer opTimed(&r.stats, time.Now())
	r.ctx = ctx
	r.start = time.Now()
	r.open = true
	r.emitted = false
	r.done = false
	r.attempt = 0
	return r.startAttempt()
}

// startAttempt checks out a connection, prepares the fragment on it and
// sends the query, burning retry budget on failure.
func (r *Remote) startAttempt() error {
	for {
		err := r.tryStart()
		if err == nil {
			return nil
		}
		if rerr := r.retry(err); rerr != nil {
			return rerr
		}
	}
}

func (r *Remote) tryStart() error {
	parent := trace.SpanOf(r.ctx)
	name := fmt.Sprintf("remote[s%d %s]", r.st.id, r.label)
	if r.attempt > 0 {
		name = fmt.Sprintf("%s retry%d", name, r.attempt)
	}
	asp := parent.Start(name)
	conn, err := r.c.getConn(r.ctx, r.st)
	if err != nil {
		asp.EndErr(err)
		return err
	}
	// The watchdog covers scratch-table shipping too: fq's admin round
	// trips carry their own flat deadlines, but a cancelled query must
	// not wait them out.
	wd := watchConn(r.ctx, conn.conn)
	req, err := r.fq(r.ctx, r.st, conn, r.attempt)
	if err == nil {
		req.Wire = true
		// Propagate the trace identity: the site forces tracing under
		// this id and sends its span tree back on the final line.
		req.TraceID = parent.TraceID()
		if d, ok := r.ctx.Deadline(); ok {
			ms := time.Until(d).Milliseconds()
			if ms < 1 {
				ms = 1
			}
			req.TimeoutMS = ms
		}
		var id uint64
		var nw int
		id, nw, err = conn.send(req)
		r.c.countBytes(r.st, nw)
		if err == nil {
			r.conn, r.reqID, r.wd, r.asp = conn, id, wd, asp
			return nil
		}
	}
	asp.EndErr(err)
	wd.halt()
	conn.close()
	return err
}

// retry decides whether err is retryable and sleeps the backoff;
// returning non-nil fails the fragment with that error.
func (r *Remote) retry(err error) error {
	if cerr := r.ctx.Err(); cerr != nil {
		return cerr
	}
	r.c.m.FragErrors.Inc()
	r.st.errs.Inc()
	if r.emitted || r.attempt >= r.c.cfg.Retries {
		r.c.markSite(r.st, false)
		return fmt.Errorf("fed: site %d (%s): %w", r.st.id, r.st.addr, err)
	}
	backoff := r.c.cfg.Backoff << r.attempt
	r.attempt++
	r.c.m.Retries.Inc()
	r.st.retries.Inc()
	if r.c.cfg.Logf != nil {
		r.c.cfg.Logf("fed: site %d fragment attempt %d failed (%v), retrying in %v",
			r.st.id, r.attempt, err, backoff)
	}
	return sleepCtx(r.ctx, backoff)
}

// Next implements Operator.
func (r *Remote) Next() ([]table.Row, error) {
	defer opTimed(&r.stats, time.Now())
	if !r.open {
		return nil, errOpenRemote(r)
	}
	for {
		if r.done {
			return nil, nil
		}
		if err := r.ctx.Err(); err != nil {
			// Terminal like every other error exit below: the stream is
			// mid-flight, so the conn has unread lines and cannot be
			// pooled — drop it and stop its watchdog with it.
			r.endAttempt(err)
			r.dropConn()
			return nil, err
		}
		resp, n, err := r.conn.recv(r.reqID)
		r.c.countBytes(r.st, n)
		r.asp.AddBytes(int64(n))
		if err != nil {
			r.endAttempt(err)
			r.dropConn()
			if rerr := r.retry(err); rerr != nil {
				return nil, rerr
			}
			if rerr := r.startAttempt(); rerr != nil {
				return nil, rerr
			}
			continue
		}
		if resp.Error != "" {
			// A site-side evaluation error is deterministic — the same
			// fragment would fail again — so it is terminal, not retried.
			err := fmt.Errorf("fed: site %d: %s", r.st.id, resp.Error)
			r.endAttempt(err)
			r.dropConn()
			r.c.m.FragErrors.Inc()
			r.st.errs.Inc()
			return nil, err
		}
		if resp.More {
			rows, err := decodeBatch(resp.Batch, r.sch.Arity())
			if err != nil {
				err = fmt.Errorf("fed: site %d: %w", r.st.id, err)
				r.endAttempt(err)
				r.dropConn()
				return nil, err
			}
			r.c.countRows(r.st, len(rows))
			r.asp.AddRows(len(rows))
			if len(rows) == 0 {
				continue
			}
			r.emitted = true
			opEmitted(&r.stats, rows)
			return rows, nil
		}
		// Final line: fragment complete. Graft the site's span tree
		// (fresh local ids) under the attempt, quiesce and pool the conn.
		if resp.Trace != nil {
			r.asp.AttachSnapshot(*resp.Trace)
		}
		r.endAttempt(nil)
		r.done = true
		r.c.m.Fragments.Inc()
		r.st.frags.Inc()
		lat := time.Since(r.start)
		r.c.m.FragLatency.Record(lat)
		r.st.lastLatUS.Store(lat.Microseconds())
		r.c.markSite(r.st, true)
		r.wd.halt()
		r.wd = nil
		if r.ctx.Err() == nil {
			r.st.put(r.conn)
		} else {
			r.conn.close()
		}
		r.conn = nil
		return nil, nil
	}
}

// endAttempt closes the current attempt span (with its error, if the
// attempt failed) — idempotent via the nil reset so the cancellation,
// retry and Close paths cannot double-close one attempt.
func (r *Remote) endAttempt(err error) {
	if r.asp == nil {
		return
	}
	r.asp.EndErr(err)
	r.asp = nil
}

// dropConn abandons the current connection mid-stream.
func (r *Remote) dropConn() {
	if r.wd != nil {
		r.wd.halt()
		r.wd = nil
	}
	if r.conn != nil {
		r.conn.close()
		r.conn = nil
	}
}

// Close implements Operator. An unfinished stream's connection is
// closed rather than pooled: it still has unread lines in it.
func (r *Remote) Close() error {
	r.open = false
	r.endAttempt(nil)
	r.dropConn()
	return nil
}

// OutSchema implements Operator.
func (r *Remote) OutSchema() table.Schema { return r.sch }

// Stats implements Operator.
func (r *Remote) Stats() exec.OpStats { return r.stats }

// Children implements Operator.
func (r *Remote) Children() []exec.Operator { return nil }

// RetainableBatches implements exec.Retainer: batches are freshly
// decoded from the wire and never reused.
func (r *Remote) RetainableBatches() bool { return true }

func (r *Remote) String() string {
	return fmt.Sprintf("remote[s%d %s]", r.st.id, r.label)
}

func errOpenRemote(r *Remote) error {
	return fmt.Errorf("exec: %s: Next before Open", r)
}

// opTimed and opEmitted mirror the exec package's unexported OpStats
// bookkeeping for out-of-package operators.
func opTimed(s *exec.OpStats, start time.Time) { s.Ns += time.Since(start).Nanoseconds() }

func opEmitted(s *exec.OpStats, rows []table.Row) {
	s.RowsOut += len(rows)
	s.Batches++
	if len(rows) > s.MaxBatch {
		s.MaxBatch = len(rows)
	}
}

// decodeBatch decodes one wire batch line's rows.
func decodeBatch(batch []string, arity int) ([]table.Row, error) {
	rows := make([]table.Row, 0, len(batch))
	for _, b64 := range batch {
		raw, err := base64.StdEncoding.DecodeString(b64)
		if err != nil {
			return nil, fmt.Errorf("bad wire row: %w", err)
		}
		row, err := table.DecodeRow(raw)
		if err != nil {
			return nil, fmt.Errorf("bad wire row: %w", err)
		}
		if len(row) != arity {
			return nil, fmt.Errorf("wire row arity %d, want %d", len(row), arity)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
