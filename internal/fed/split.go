package fed

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"sync"

	"xst/internal/core"
	"xst/internal/dist"
	"xst/internal/exec"
	"xst/internal/plan"
	"xst/internal/server"
	"xst/internal/table"
	"xst/internal/xsp"
)

// The splitter walks the optimized single-node plan bottom-up, growing
// per-site fragments as long as operators can be decompiled into the
// query grammar, and cutting over to coordinator-side plan nodes (with
// plan.Source leaves standing in for the scattered fragments) at the
// first operator that cannot. The rewrites are the classic distributed
// forms of the paper's algebraic identities: restriction and projection
// commute with the partition union, aggregation decomposes into
// per-site partials merged at the coordinator, and equi-joins pick a
// shipping discipline by byte cost.

type splitter struct {
	c *Coordinator
	// strategies records each distributed join's chosen strategy, in
	// plan order (for EXPLAIN surfacing and the cost-pinning tests).
	strategies []dist.Strategy
	// fanout tracks the widest scatter, pricing admission at the front
	// server.
	fanout int
}

// piece is either a still-growing fragment or a finished coordinator
// subtree.
type piece struct {
	frag *fragment
	node plan.Node
}

// nodeOf finalizes a piece into a plan node, scattering a live
// fragment.
func (s *splitter) nodeOf(p piece) plan.Node {
	if p.frag != nil {
		return s.source(p.frag)
	}
	return p.node
}

// source wraps a fragment as a plan.Source leaf: compiling the plan
// builds one Remote per (pruned) site under a Gather exchange.
func (s *splitter) source(f *fragment) plan.Node {
	return s.sourceFq(f, f.sch, staticFrag(f.render()), f.render(), f.estRows())
}

// sourceFq is source with an explicit per-attempt fragment function,
// declared schema and label — the join strategies use it to ship
// scratch tables before the fragment text runs.
func (s *splitter) sourceFq(f *fragment, sch table.Schema, fq fragFunc, label string, rows float64) plan.Node {
	c := s.c
	sites := f.sites(c)
	if len(sites) > s.fanout {
		s.fanout = len(sites)
	}
	return &plan.Source{
		Sch:   sch,
		Rows:  rows,
		Label: fmt.Sprintf("fedscatter[%d sites: %s]", len(sites), label),
		New: func() (exec.Operator, error) {
			workers := make([]exec.Operator, len(sites))
			for i, st := range sites {
				workers[i] = c.remote(st, sch, fq, label)
			}
			if len(workers) == 1 {
				return workers[0], nil
			}
			return exec.NewGather(workers), nil
		},
	}
}

// staticFrag is the fragFunc of a self-contained fragment: no scratch
// tables, same text every attempt.
func staticFrag(stmt string) fragFunc {
	return func(ctx context.Context, st *site, conn *siteConn, attempt int) (server.Request, error) {
		return server.Request{Stmt: stmt}, nil
	}
}

// split compiles the optimized plan into its federated form.
func (s *splitter) split(n plan.Node) plan.Node {
	return s.nodeOf(s.rec(n))
}

func (s *splitter) rec(n plan.Node) piece {
	switch x := n.(type) {
	case *plan.Scan:
		name, ok := s.c.stubs[x.Table]
		if !ok {
			// Not a federated table (cannot happen through Compile, which
			// binds only stubs); leave the scan local.
			return piece{node: x}
		}
		return piece{frag: newFragment(name, s.c.tables[name], x.Schema())}

	case *plan.Select:
		p := s.rec(x.Child)
		// Restriction pushes through the partition union whenever its
		// conjuncts render; filtering before a pushed distinct would be
		// fine too, but the optimizer never builds that shape.
		if p.frag != nil && p.frag.plain() {
			if texts, cmps, ok := renderPred(x.Pred); ok {
				p.frag.where = append(p.frag.where, texts...)
				p.frag.preds = append(p.frag.preds, cmps...)
				return p
			}
		}
		return piece{node: &plan.Select{Child: s.nodeOf(p), Pred: x.Pred}}

	case *plan.Project:
		p := s.rec(x.Child)
		// Projection composes with an earlier pushed projection (names
		// are only dropped, never renamed) but must stay above a pushed
		// group/limit/distinct.
		if p.frag != nil && p.frag.plain() && renderableIdents(x.Cols) {
			p.frag.cols = append([]string(nil), x.Cols...)
			p.frag.sch = table.Schema{Name: p.frag.sch.Name, Cols: p.frag.cols}
			return p
		}
		return piece{node: &plan.Project{Child: s.nodeOf(p), Cols: x.Cols}}

	case *plan.Distinct:
		p := s.rec(x.Child)
		// Per-site distinct shrinks shipping; the coordinator re-distincts
		// the union (sites may share values).
		if p.frag != nil && p.frag.plain() {
			p.frag.distinct = true
			return piece{node: &plan.Distinct{Child: s.source(p.frag)}}
		}
		return piece{node: &plan.Distinct{Child: s.nodeOf(p)}}

	case *plan.GroupBy:
		p := s.rec(x.Child)
		if p.frag != nil && p.frag.plain() &&
			renderableIdent(x.Key) && renderableAggs(x.Key, x.Aggs) {
			return piece{node: s.partialAgg(p.frag, x)}
		}
		return piece{node: &plan.GroupBy{Child: s.nodeOf(p), Key: x.Key, Aggs: x.Aggs}}

	case *plan.Sort:
		// Order is a coordinator concern: sites ship unordered partitions.
		p := s.rec(x.Child)
		return piece{node: &plan.Sort{Child: s.nodeOf(p), Col: x.Col, Desc: x.Desc}}

	case *plan.Limit:
		p := s.rec(x.Child)
		// Each site needs at most N rows; the coordinator re-limits the
		// union. Not pushed below a pushed group (partials must be
		// complete).
		if p.frag != nil && p.frag.groupKey == "" {
			if p.frag.limit < 0 || x.N < p.frag.limit {
				p.frag.limit = x.N
			}
			return piece{node: &plan.Limit{Child: s.source(p.frag), N: x.N}}
		}
		return piece{node: &plan.Limit{Child: s.nodeOf(p), N: x.N}}

	case *plan.Join:
		return s.join(x)

	default:
		return piece{node: n}
	}
}

// partialAgg pushes a GroupBy as per-site partial aggregation: sites
// group their partitions, the coordinator merges the partials
// (count→sum of counts, sum→sum, min→min, max→max) and a Rename
// restores the user-visible column names over the merge's partial-form
// ones.
func (s *splitter) partialAgg(f *fragment, g *plan.GroupBy) plan.Node {
	f.groupKey = g.Key
	f.aggs = g.Aggs
	f.cols = nil
	partialCols := []string{g.Key}
	finalCols := []string{g.Key}
	merge := make([]plan.AggSpec, len(g.Aggs))
	for i, a := range g.Aggs {
		name := a.String()
		partialCols = append(partialCols, name)
		finalCols = append(finalCols, name)
		switch a.Kind {
		case xsp.Count:
			merge[i] = plan.AggSpec{Kind: xsp.Sum, Col: name}
		default:
			merge[i] = plan.AggSpec{Kind: a.Kind, Col: name}
		}
	}
	f.sch = table.Schema{Name: f.sch.Name, Cols: partialCols}
	return &plan.Rename{
		Child: &plan.GroupBy{Child: s.source(f), Key: g.Key, Aggs: merge},
		Cols:  finalCols,
	}
}

// join lowers an equi-join between two plain fragments under a
// cost-chosen shipping strategy; anything else falls back to a
// coordinator-side join over gathered inputs (ship-all).
func (s *splitter) join(x *plan.Join) piece {
	lp, rp := s.rec(x.Left), s.rec(x.Right)
	lf, rf := lp.frag, rp.frag
	if lf == nil || rf == nil || !lf.plain() || !rf.plain() ||
		!renderableIdent(x.LeftCol) || !renderableIdent(x.RightCol) {
		return piece{node: &plan.Join{
			Left: s.nodeOf(lp), Right: s.nodeOf(rp),
			LeftCol: x.LeftCol, RightCol: x.RightCol,
		}}
	}
	// Site-side join strategies splice the two column lists together in
	// one site query, so they need disjoint plain names; colliding
	// schemas would come back qualified differently than the
	// coordinator's table.JoinSchema qualifies them.
	disjoint := disjointCols(lf.outCols(), rf.outCols()) &&
		renderableIdents(lf.outCols()) && renderableIdents(rf.outCols())
	in := s.costInputs(lf, rf, x.LeftCol, x.RightCol, disjoint)
	strat := dist.ChooseStrategy(in)
	if forced, ok := forcedStrategy(s.c.cfg.ForceStrategy); ok {
		strat = forced
	}
	if !disjoint && (strat == dist.Broadcast || strat == dist.CoLocated) {
		strat = dist.ShipAll
	}
	// CoLocated is only sound when both sides really are hash-partitioned
	// on the join key (guards a forced override) and single-table (the
	// merged fragment carries one join clause per strategy decision).
	if strat == dist.CoLocated && !in.CoPartitioned {
		strat = dist.ShipAll
	}
	// SemiJoin renders the right side's columns around the shipped key
	// scratch table; unrenderable names fall back to gathering both sides.
	if strat == dist.SemiJoin && !renderableIdents(rf.outCols()) {
		strat = dist.ShipAll
	}
	s.strategies = append(s.strategies, strat)
	switch strat {
	case dist.CoLocated:
		return s.colocated(lf, rf, x)
	case dist.Broadcast:
		return s.broadcast(lf, rf, x)
	case dist.SemiJoin:
		return s.semijoin(lf, rf, x)
	default:
		return piece{node: &plan.Join{
			Left: s.source(lf), Right: s.source(rf),
			LeftCol: x.LeftCol, RightCol: x.RightCol,
		}}
	}
}

// outCols is the fragment's current output column list.
func (f *fragment) outCols() []string {
	if f.cols != nil {
		return f.cols
	}
	return f.sch.Cols
}

func disjointCols(a, b []string) bool {
	seen := make(map[string]bool, len(a))
	for _, c := range a {
		seen[c] = true
	}
	for _, c := range b {
		if seen[c] {
			return false
		}
	}
	return true
}

func forcedStrategy(s string) (dist.Strategy, bool) {
	switch s {
	case "shipall":
		return dist.ShipAll, true
	case "broadcast":
		return dist.Broadcast, true
	case "semijoin":
		return dist.SemiJoin, true
	case "colocated":
		return dist.CoLocated, true
	}
	return 0, false
}

// costInputs lifts the fragment statistics into dist's byte-cost model.
func (s *splitter) costInputs(lf, rf *fragment, lcol, rcol string, disjoint bool) dist.CostInputs {
	in := dist.CostInputs{
		LeftRows:        lf.meta.Rows(),
		RightRows:       rf.meta.Rows(),
		LeftRowBytes:    rowBytesOr(lf.meta.RowBytes),
		RightRowBytes:   rowBytesOr(rf.meta.RowBytes),
		KeyBytes:        9, // tag byte + up to 8 payload bytes, the atom codec's bound
		LeftSelectivity: lf.selectivity(),
		Sites:           len(s.c.sites),
	}
	// Fold the right side's own restriction into its effective size.
	in.RightRows = int(float64(in.RightRows) * rf.selectivity())
	// SemiJoin ships each distinct left key at most once; analyzed
	// sites publish the exact count.
	in.LeftKeyDistinct = lf.distinctOf(lcol)
	// Equi-join cardinality: |L⋈R| ≈ |L|·|R| / max(d(L.k), d(R.k)) when
	// the key's distinct counts are known; otherwise the System-R
	// fallback of per-key uniqueness on the larger side, which reduces
	// to min(|L|,|R|).
	l, r := lf.estRows(), rf.estRows()
	if d := max(in.LeftKeyDistinct, rf.distinctOf(rcol)); d > 0 {
		in.JoinRows = int(l * r / float64(d))
	} else if l < r {
		in.JoinRows = int(l)
	} else {
		in.JoinRows = int(r)
	}
	in.CoPartitioned = disjoint &&
		len(lf.joins) == 0 && len(rf.joins) == 0 &&
		hashPartitionedOn(lf.meta, lcol) && hashPartitionedOn(rf.meta, rcol)
	return in
}

func rowBytesOr(n int) int {
	if n <= 0 {
		return 16
	}
	return n
}

func hashPartitionedOn(m *TableMeta, col string) bool {
	return m.Part != nil && m.Part.Kind == "hash" && m.Part.Col == col
}

// colocated merges both sides into one per-site joined fragment: both
// tables are hash-partitioned on the join key, so matching rows are
// always on the same site and no rows ship at all (beyond results).
func (s *splitter) colocated(lf, rf *fragment, x *plan.Join) piece {
	sch := table.JoinSchema(lf.outSchema(), rf.outSchema())
	f := &fragment{
		table:     lf.table,
		meta:      lf.meta,
		joins:     []fragJoin{{table: rf.table, leftCol: x.LeftCol, rightCol: x.RightCol}},
		joinMetas: []*TableMeta{rf.meta},
		where:     append(append([]string(nil), lf.where...), rf.where...),
		preds:     append(append([]plan.Cmp(nil), lf.preds...), rf.preds...),
		cols:      append(append([]string(nil), lf.outCols()...), rf.outCols()...),
		sch:       sch,
		limit:     -1,
	}
	return piece{frag: f}
}

// outSchema is the fragment's current output schema.
func (f *fragment) outSchema() table.Schema {
	if f.cols == nil {
		return f.sch
	}
	return table.Schema{Name: f.sch.Name, Cols: f.cols}
}

// broadcast gathers the (small) right side once at the coordinator and
// ships a copy to every left site as a scratch table, turning the join
// into a site-local one over the left partitions.
func (s *splitter) broadcast(lf, rf *fragment, x *plan.Join) piece {
	cache := newGatherCache(s, rf)
	sch := table.JoinSchema(lf.outSchema(), rf.outSchema())
	joined := lf.clone()
	joined.cols = append(append([]string(nil), lf.outCols()...), rf.outCols()...)
	joined.sch = sch
	rcols := rf.outCols()
	fq := func(ctx context.Context, st *site, conn *siteConn, attempt int) (server.Request, error) {
		rows, err := cache.rows(ctx)
		if err != nil {
			return server.Request{}, err
		}
		scratch := s.c.scratchName()
		if err := s.c.loadTable(ctx, st, conn, scratch, rcols, rows); err != nil {
			return server.Request{}, err
		}
		g := joined.clone()
		g.joins = append(g.joins, fragJoin{table: scratch, leftCol: x.LeftCol, rightCol: x.RightCol})
		return server.Request{Stmt: g.render()}, nil
	}
	label := fmt.Sprintf("broadcast %s to %s", rf.table, lf.table)
	rows := lf.estRows()
	if r := rf.estRows(); r > rows {
		rows = r
	}
	return piece{node: s.sourceFq(lf, sch, fq, label, rows)}
}

// semijoin gathers the (small, filtered) left side at the coordinator,
// ships only its distinct join keys to the right sites, and gathers the
// matching right rows for a coordinator-side join — dist's
// semijoin-reduced shuffle over real sockets.
func (s *splitter) semijoin(lf, rf *fragment, x *plan.Join) piece {
	cache := newGatherCache(s, lf)
	li := lf.outSchema().Col(x.LeftCol)
	keyCol := freshName("k", rf.outCols())
	rcols := rf.outCols()
	fq := func(ctx context.Context, st *site, conn *siteConn, attempt int) (server.Request, error) {
		keys, err := cache.distinctKeys(ctx, li)
		if err != nil {
			return server.Request{}, err
		}
		scratch := s.c.scratchName()
		if err := s.c.loadTable(ctx, st, conn, scratch, []string{keyCol}, keys); err != nil {
			return server.Request{}, err
		}
		g := rf.clone()
		g.joins = append(g.joins, fragJoin{table: scratch, leftCol: x.RightCol, rightCol: keyCol})
		g.cols = append([]string(nil), rcols...) // drop the shipped key column
		return server.Request{Stmt: g.render()}, nil
	}
	leftSrc := &plan.Source{
		Sch:   lf.outSchema(),
		Rows:  lf.estRows(),
		Label: fmt.Sprintf("fedgather[%s]", lf.render()),
		New: func() (exec.Operator, error) {
			return &replayOp{cache: cache, sch: lf.outSchema()}, nil
		},
	}
	reduced := lf.estRows()
	if r := rf.estRows(); r < reduced {
		reduced = r
	}
	label := fmt.Sprintf("semijoin %s keys into %s", lf.table, rf.table)
	rightSrc := s.sourceFq(rf, rf.outSchema(), fq, label, reduced)
	return piece{node: &plan.Join{
		Left: leftSrc, Right: rightSrc,
		LeftCol: x.LeftCol, RightCol: x.RightCol,
	}}
}

// freshName returns base, suffixed if needed to miss every name in
// taken.
func freshName(base string, taken []string) string {
	name := base
	for i := 2; ; i++ {
		clash := false
		for _, t := range taken {
			if t == name {
				clash = true
				break
			}
		}
		if !clash {
			return name
		}
		name = fmt.Sprintf("%s%d", base, i)
	}
}

func (c *Coordinator) scratchName() string {
	return fmt.Sprintf("__f%d", c.seq.Add(1))
}

// loadTable ships rows into a session-private scratch table on one
// site, chunked to stay far below the protocol's line-size bound.
func (c *Coordinator) loadTable(ctx context.Context, st *site, conn *siteConn, name string, cols []string, rows []table.Row) error {
	const chunk = 256
	var enc []byte
	for off := 0; off < len(rows) || off == 0; off += chunk {
		end := off + chunk
		if end > len(rows) {
			end = len(rows)
		}
		req := struct {
			Table string   `json:"table"`
			Cols  []string `json:"cols"`
			Rows  []string `json:"rows"`
		}{Table: name, Cols: cols}
		for _, r := range rows[off:end] {
			if err := ctx.Err(); err != nil {
				return err
			}
			enc = table.EncodeRow(enc[:0], r)
			req.Rows = append(req.Rows, base64.StdEncoding.EncodeToString(enc))
		}
		payload, err := json.Marshal(req)
		if err != nil {
			return err
		}
		if _, err := c.admin(ctx, st, conn, server.Request{Stmt: ".load " + string(payload)}); err != nil {
			return err
		}
		c.countRows(st, end-off)
		if len(rows) == 0 {
			break
		}
	}
	return nil
}

// gatherCache materializes one fragment at the coordinator exactly once
// per query, shared by the per-site workers that ship it (broadcast
// build sides, semijoin key sets). The first caller gathers under its
// context; later callers and retries replay the cached result (or its
// error — a failed gather is terminal for the query, so replaying the
// error fails fast instead of re-gathering per worker).
type gatherCache struct {
	newOp func() (exec.Operator, error)

	// ready is closed once rowsv/err are final. The gatherer is the only
	// writer and writes strictly before the close, so readers that have
	// seen ready need no lock.
	ready chan struct{}
	rowsv []table.Row
	err   error

	mu      sync.Mutex
	started bool
	keysd   bool
	keysv   []table.Row
}

func newGatherCache(s *splitter, f *fragment) *gatherCache {
	src := s.source(f).(*plan.Source)
	return &gatherCache{newOp: src.New, ready: make(chan struct{})}
}

// rows returns the gathered fragment rows, gathering on first call. The
// mutex is never held across the gather itself — the first caller
// collects under its own context and signals completion by closing
// ready, while every other caller waits on ready or its own ctx. A
// wedged gather therefore cannot strand a waiter whose deadline has
// already expired.
func (g *gatherCache) rows(ctx context.Context) ([]table.Row, error) {
	g.mu.Lock()
	if !g.started {
		g.started = true
		g.mu.Unlock()
		op, err := g.newOp()
		if err != nil {
			g.err = err
		} else {
			g.rowsv, g.err = exec.Collect(ctx, op)
		}
		close(g.ready)
	} else {
		g.mu.Unlock()
	}
	select {
	case <-g.ready:
		return g.rowsv, g.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// distinctKeys projects the cached rows to their distinct values at
// column idx, one single-column row per key, in first-seen order.
func (g *gatherCache) distinctKeys(ctx context.Context, idx int) ([]table.Row, error) {
	rows, err := g.rows(ctx)
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.keysd {
		return g.keysv, nil
	}
	seen := make(map[string]bool, len(rows))
	out := []table.Row{}
	for _, r := range rows {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		k := core.Key(r[idx])
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, table.Row{r[idx]})
	}
	g.keysd = true
	g.keysv = out
	return out, nil
}

// replayOp replays a gatherCache's rows as an operator leaf (the
// already-materialized probe side of a semijoin).
type replayOp struct {
	cache *gatherCache
	sch   table.Schema

	ctx   context.Context
	rows  []table.Row
	pos   int
	stats exec.OpStats
	open  bool
}

func (m *replayOp) Open(ctx context.Context) error {
	m.stats = exec.OpStats{}
	m.ctx = ctx
	m.pos = 0
	m.open = true
	rows, err := m.cache.rows(ctx)
	if err != nil {
		return err
	}
	m.rows = rows
	return nil
}

func (m *replayOp) Next() ([]table.Row, error) {
	if !m.open {
		return nil, fmt.Errorf("exec: %s: Next before Open", m)
	}
	if err := m.ctx.Err(); err != nil {
		return nil, err
	}
	if m.pos >= len(m.rows) {
		return nil, nil
	}
	end := m.pos + exec.MaxBatchRows
	if end > len(m.rows) {
		end = len(m.rows)
	}
	batch := m.rows[m.pos:end]
	m.pos = end
	m.stats.RowsIn += len(batch)
	opEmitted(&m.stats, batch)
	return batch, nil
}

func (m *replayOp) Close() error {
	m.open = false
	return nil
}

func (m *replayOp) OutSchema() table.Schema   { return m.sch }
func (m *replayOp) Stats() exec.OpStats       { return m.stats }
func (m *replayOp) Children() []exec.Operator { return nil }
func (m *replayOp) RetainableBatches() bool   { return true }
func (m *replayOp) String() string            { return "fedgather[" + m.sch.Name + "]" }
