package fed

import (
	"context"
	"fmt"

	"xst/internal/dist"
	"xst/internal/exec"
	"xst/internal/plan"
	"xst/internal/table"
	"xst/internal/trace"
	"xst/internal/xlang"
)

// Query is one compiled federated query. It implements server.Query, so
// an xstd front server with Config.Compile pointed at a Coordinator
// serves federated results through its ordinary admission, deadline,
// streaming and tracing machinery.
//
// A Query is single-use: its plan's Source leaves carry per-query
// gather caches and scratch-table state.
type Query struct {
	c          *Coordinator
	node       plan.Node
	dop        int
	strategies []dist.Strategy
	ran        bool
}

// Compile parses, optimizes and splits one query statement across the
// federation.
func (c *Coordinator) Compile(stmt string) (*Query, error) {
	xq, err := xlang.CompileQuery(c.env, stmt)
	if err != nil {
		return nil, err
	}
	sp := &splitter{c: c}
	node := sp.split(xq.Node)
	dop := sp.fanout
	if dop < 1 {
		dop = 1
	}
	return &Query{c: c, node: node, dop: dop, strategies: sp.strategies}, nil
}

// DOP prices the query for admission: the widest site fan-out of any
// scatter in the plan.
func (q *Query) DOP() int { return q.dop }

// Schema reports the result schema.
func (q *Query) Schema() table.Schema { return q.node.Schema() }

// Plan renders the federated logical plan (scatter leaves labelled with
// their fragment text and site counts).
func (q *Query) Plan() string { return q.node.String() }

// Strategies reports each distributed join's chosen shipping strategy,
// in plan order.
func (q *Query) Strategies() []dist.Strategy {
	return append([]dist.Strategy(nil), q.strategies...)
}

// Run executes the federated plan, streaming result batches to emit.
// When ctx carries a trace span the drained tree is mirrored under it,
// so per-site remote[sN …] spans appear in `.trace` output and
// EXPLAIN ANALYZE alike.
func (q *Query) Run(ctx context.Context, emit func(rows []table.Row) error) (plan.ExecStats, error) {
	if q.ran {
		return plan.ExecStats{}, fmt.Errorf("fed: query already run")
	}
	q.ran = true
	op, err := plan.Compile(q.node)
	if err != nil {
		return plan.ExecStats{}, err
	}
	err = exec.Stream(ctx, op, emit)
	plan.AttachOpSpans(trace.SpanOf(ctx), op)
	return plan.TreeStats(op), err
}

// Explain runs the query to completion, discarding rows, and renders
// the executed tree with per-operator counters — EXPLAIN ANALYZE for a
// federated plan.
func (q *Query) Explain(ctx context.Context) (string, error) {
	if q.ran {
		return "", fmt.Errorf("fed: query already run")
	}
	q.ran = true
	return plan.ExplainAnalyze(ctx, q.node)
}
