package fed

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"xst/internal/server"
)

// siteConn is one pooled protocol connection to a site. Connections are
// checked out for the duration of a fragment (the protocol is
// request-at-a-time per connection, and the server meters admission per
// connection) and returned to the pool only after the final response
// line, so a pooled connection never has unread stream lines in it.
type siteConn struct {
	conn net.Conn
	sc   *bufio.Scanner
	next uint64
}

// dialSite opens a new connection under ctx and the dial timeout.
func dialSite(ctx context.Context, addr string, timeout time.Duration) (*siteConn, error) {
	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	return &siteConn{conn: conn, sc: sc}, nil
}

func (c *siteConn) close() { c.conn.Close() }

// send writes one request line, assigning an id, and reports the wire
// bytes written.
func (c *siteConn) send(req server.Request) (id uint64, n int, err error) {
	c.next++
	req.ID = c.next
	buf, err := json.Marshal(req)
	if err != nil {
		return 0, 0, err
	}
	buf = append(buf, '\n')
	n, err = c.conn.Write(buf)
	return req.ID, n, err
}

// recv reads one response line for request id and reports its wire
// size.
func (c *siteConn) recv(id uint64) (server.Response, int, error) {
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return server.Response{}, 0, err
		}
		return server.Response{}, 0, fmt.Errorf("site closed connection")
	}
	line := c.sc.Bytes()
	var resp server.Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return server.Response{}, len(line), fmt.Errorf("bad response line: %w", err)
	}
	if resp.ID != id {
		return server.Response{}, len(line), fmt.Errorf("response id %d for request %d", resp.ID, id)
	}
	return resp, len(line), nil
}

// getConn checks a connection out of the site pool, dialing if the pool
// is empty.
func (c *Coordinator) getConn(ctx context.Context, st *site) (*siteConn, error) {
	st.mu.Lock()
	if n := len(st.idle); n > 0 {
		conn := st.idle[n-1]
		st.idle = st.idle[:n-1]
		st.mu.Unlock()
		return conn, nil
	}
	st.mu.Unlock()
	return dialSite(ctx, st.addr, c.cfg.DialTimeout)
}

// put returns a quiesced connection to the pool.
func (st *site) put(conn *siteConn) {
	st.mu.Lock()
	st.idle = append(st.idle, conn)
	st.mu.Unlock()
}

// admin runs one non-streaming round trip (".schema", ".load …") under
// a flat deadline, counting its bytes against the site. The deadline is
// the tighter of ctx's and the admin timeout; it is cleared afterwards
// so the connection can host long-streaming fragments.
func (c *Coordinator) admin(ctx context.Context, st *site, conn *siteConn, req server.Request) (server.Response, error) {
	dl := time.Now().Add(c.cfg.AdminTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(dl) {
		dl = d
	}
	if err := conn.conn.SetDeadline(dl); err != nil {
		return server.Response{}, err
	}
	id, nw, err := conn.send(req)
	c.countBytes(st, nw)
	if err != nil {
		return server.Response{}, err
	}
	resp, nr, err := conn.recv(id)
	c.countBytes(st, nr)
	if err != nil {
		return server.Response{}, err
	}
	if err := conn.conn.SetDeadline(time.Time{}); err != nil {
		return server.Response{}, err
	}
	if resp.Error != "" {
		return server.Response{}, fmt.Errorf("%s", resp.Error)
	}
	return resp, nil
}

func (c *Coordinator) countBytes(st *site, n int) {
	if n <= 0 {
		return
	}
	c.m.BytesShipped.Add(uint64(n))
	st.bytes.Add(uint64(n))
}

func (c *Coordinator) countRows(st *site, n int) {
	if n <= 0 {
		return
	}
	c.m.RowsShipped.Add(uint64(n))
	st.rows.Add(uint64(n))
}

// watchdog force-closes a connection when its context dies, unblocking
// any read parked in recv; halt stops it once the stream completes.
type watchdog struct {
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

func watchConn(ctx context.Context, conn net.Conn) *watchdog {
	w := &watchdog{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		select {
		case <-ctx.Done():
			conn.Close()
		case <-w.stop:
		}
	}()
	return w
}

// halt stops the watchdog and waits for it to exit; afterwards the
// watchdog will not touch the connection. If the context already died
// the connection is closed by then — callers check ctx before pooling.
func (w *watchdog) halt() {
	w.once.Do(func() { close(w.stop) })
	<-w.done
}

// sleepCtx waits d or until ctx dies.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
