package fed

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"xst/internal/catalog"
	"xst/internal/core"
	"xst/internal/dist"
	"xst/internal/exec"
	"xst/internal/plan"
	"xst/internal/store"
	"xst/internal/table"
	"xst/internal/xlang"
	"xst/internal/xtest"
)

// testData is the randomized four-table workload every federation test
// shards: hash, range and unpartitioned placements, int-heavy so
// aggregate merges are order-insensitive.
type testData struct {
	users    []table.Row // id, name, age — hash on id
	orders   []table.Row // oid, uid, amount — range on oid
	profiles []table.Row // pid, score — hash on pid (co-located with users)
	tags     []table.Row // tid, tag — unpartitioned
}

var (
	usersSchema    = table.Schema{Name: "users", Cols: []string{"id", "name", "age"}}
	ordersSchema   = table.Schema{Name: "orders", Cols: []string{"oid", "uid", "amount"}}
	profilesSchema = table.Schema{Name: "profiles", Cols: []string{"pid", "score"}}
	tagsSchema     = table.Schema{Name: "tags", Cols: []string{"tid", "tag"}}
)

func makeData(seed uint64, nUsers, nOrders int) testData {
	rng := xtest.NewRand(seed)
	var d testData
	for i := 0; i < nUsers; i++ {
		d.users = append(d.users, table.Row{
			core.Int(i), core.Str(fmt.Sprintf("u%02d", rng.Intn(17))), core.Int(rng.Intn(61)),
		})
		if i%2 == 0 {
			d.profiles = append(d.profiles, table.Row{core.Int(i), core.Int(rng.Intn(100))})
		}
		if i%4 == 0 {
			d.tags = append(d.tags, table.Row{core.Int(i), core.Str(fmt.Sprintf("t%d", rng.Intn(5)))})
		}
	}
	for i := 0; i < nOrders; i++ {
		d.orders = append(d.orders, table.Row{
			core.Int(i), core.Int(rng.Intn(nUsers)), core.Int(rng.Intn(101)),
		})
	}
	return d
}

// orderBounds splits [0, nOrders) into n contiguous ranges.
func orderBounds(n, nOrders int) []core.Value {
	var b []core.Value
	for i := 1; i < n; i++ {
		b = append(b, core.Int(i*nOrders/n))
	}
	return b
}

func populateData(d testData, n int) func(dbs []*catalog.Database) error {
	return func(dbs []*catalog.Database) error {
		if err := CreateSharded(dbs, usersSchema,
			&catalog.Partition{Kind: catalog.PartHash, Col: "id"}, d.users); err != nil {
			return err
		}
		if err := CreateSharded(dbs, ordersSchema,
			&catalog.Partition{Kind: catalog.PartRange, Col: "oid", Bounds: orderBounds(n, len(d.orders))}, d.orders); err != nil {
			return err
		}
		if err := CreateSharded(dbs, profilesSchema,
			&catalog.Partition{Kind: catalog.PartHash, Col: "pid"}, d.profiles); err != nil {
			return err
		}
		return CreateSharded(dbs, tagsSchema, nil, d.tags)
	}
}

func bootTestFed(t *testing.T, n int, cfg Config, d testData) *LocalFed {
	t.Helper()
	ctx := context.Background()
	lf, err := BootLocal(ctx, n, cfg, populateData(d, n))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lf.Shutdown(context.Background()) })
	return lf
}

// mirrorEnv builds the single-node reference: the same rows in ordinary
// unsharded tables bound into a fresh environment.
func mirrorEnv(t *testing.T, d testData) *xlang.Env {
	t.Helper()
	pool := store.NewBufferPool(store.NewMemPager(), 256)
	env := xlang.NewEnv()
	for _, spec := range []struct {
		sch  table.Schema
		rows []table.Row
	}{
		{usersSchema, d.users}, {ordersSchema, d.orders},
		{profilesSchema, d.profiles}, {tagsSchema, d.tags},
	} {
		tab, err := table.Create(pool, spec.sch)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range spec.rows {
			if _, err := tab.Insert(r); err != nil {
				t.Fatal(err)
			}
		}
		env.BindTable(spec.sch.Name, tab)
	}
	return env
}

func runSingle(t *testing.T, env *xlang.Env, stmt string) []table.Row {
	t.Helper()
	xq, err := xlang.CompileQuery(env, stmt)
	if err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
	op, err := plan.Compile(xq.Node)
	if err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
	rows, err := exec.Collect(context.Background(), op)
	if err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
	return rows
}

func runFed(t *testing.T, lf *LocalFed, stmt string) (*Query, []table.Row) {
	t.Helper()
	q, err := lf.Coord.Compile(stmt)
	if err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
	var out []table.Row
	_, err = q.Run(context.Background(), func(rows []table.Row) error {
		for _, r := range rows {
			out = append(out, append(table.Row(nil), r...))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
	return q, out
}

func encodeRows(rows []table.Row) []string {
	out := make([]string, len(rows))
	var buf []byte
	for i, r := range rows {
		buf = table.EncodeRow(buf[:0], r)
		out[i] = string(buf)
	}
	return out
}

// diffRows compares federated output to the single-node reference:
// exact sequence for ordered queries, byte-identical multiset otherwise.
func diffRows(t *testing.T, stmt string, got, want []table.Row, ordered bool) {
	t.Helper()
	g, w := encodeRows(got), encodeRows(want)
	if !ordered {
		sort.Strings(g)
		sort.Strings(w)
	}
	if len(g) != len(w) {
		t.Fatalf("%s: federated %d rows, single-node %d", stmt, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: row %d differs:\n  fed:    %q\n  single: %q", stmt, i, g[i], w[i])
		}
	}
}

// differentialQueries is the query surface the equivalence suite runs:
// every operator the grammar offers, each join strategy's trigger shape,
// and the partition-pruning paths. Join queries carry explicit select
// lists so column order is independent of join-order optimization.
var differentialQueries = []struct {
	stmt    string
	ordered bool
}{
	{"from users", false},
	{"from tags", false},
	{"from users where age > 30", false},
	{"from users where age > 10 and age < 50 select id, age", false},
	{"from users select distinct name", false},
	{"from users where age >= 20 select distinct name", false},
	{"from users group by name count", false},
	{"from users group by name count sum(age)", false},
	{"from orders group by uid count sum(amount)", false},
	{"from orders where amount >= 50 group by uid min(amount) max(amount)", false},
	{"from users order by id", true},
	{"from users order by id desc limit 7", true},
	{"from users where id = 42", false},
	{"from users where id = 43 select name", false},
	{"from orders where oid < 120", false},
	{"from orders where oid >= 150 and oid < 250 select uid, amount", false},
	{"from orders join users on uid = id select uid, amount, age", false},
	{"from orders join users on uid = id where age > 20 select oid, amount, name", false},
	{"from orders join users on uid = id where amount < 10 and age > 5 select oid, name", false},
	{"from users join profiles on id = pid select id, score", false},
	{"from users join profiles on id = pid where age > 30 select name, score", false},
	{"from tags join users on tid = id select tag, name, age", false},
	{"from orders join users on uid = id group by name sum(amount)", false},
	{"from users join profiles on id = pid select id, score order by id limit 11", true},
}

// TestDifferentialEquivalence: a 3-site federation answers the full
// query surface byte-identically to a single node over the same rows.
func TestDifferentialEquivalence(t *testing.T) {
	d := makeData(7, 240, 300)
	lf := bootTestFed(t, 3, Config{}, d)
	env := mirrorEnv(t, d)
	for _, tc := range differentialQueries {
		want := runSingle(t, env, tc.stmt)
		_, got := runFed(t, lf, tc.stmt)
		diffRows(t, tc.stmt, got, want, tc.ordered)
	}
}

// TestDifferentialLimit: limit without order is nondeterministic in
// content but must agree in cardinality.
func TestDifferentialLimit(t *testing.T) {
	d := makeData(11, 120, 90)
	lf := bootTestFed(t, 3, Config{}, d)
	env := mirrorEnv(t, d)
	for _, stmt := range []string{"from users limit 25", "from orders where amount > 10 limit 4"} {
		want := runSingle(t, env, stmt)
		_, got := runFed(t, lf, stmt)
		if len(got) != len(want) {
			t.Fatalf("%s: federated %d rows, single-node %d", stmt, len(got), len(want))
		}
	}
}

// TestDifferentialSites: equivalence holds across federation sizes,
// including a single site and sizes that do not divide the row counts.
func TestDifferentialSites(t *testing.T) {
	for _, n := range []int{1, 2, 5} {
		d := makeData(uint64(100+n), 110, 130)
		lf := bootTestFed(t, n, Config{}, d)
		env := mirrorEnv(t, d)
		for _, tc := range differentialQueries[:12] {
			want := runSingle(t, env, tc.stmt)
			_, got := runFed(t, lf, tc.stmt)
			diffRows(t, fmt.Sprintf("sites=%d %s", n, tc.stmt), got, want, tc.ordered)
		}
	}
}

// TestForcedStrategyEquivalence: every shipping strategy the planner can
// be forced into returns the same rows; colocated falls back safely when
// the join is not co-partitioned.
func TestForcedStrategyEquivalence(t *testing.T) {
	d := makeData(13, 150, 200)
	env := mirrorEnv(t, d)
	queries := []string{
		"from orders join users on uid = id select uid, amount, age",
		"from orders join users on uid = id where age > 20 select oid, amount, name",
		"from users join profiles on id = pid select id, name, score",
	}
	for _, force := range []string{"", "shipall", "broadcast", "semijoin", "colocated"} {
		lf := bootTestFed(t, 3, Config{ForceStrategy: force}, d)
		for _, stmt := range queries {
			want := runSingle(t, env, stmt)
			_, got := runFed(t, lf, stmt)
			diffRows(t, fmt.Sprintf("force=%q %s", force, stmt), got, want, false)
		}
		lf.Shutdown(context.Background())
	}
}

// TestStrategyChoice pins the cost model's picks on the live metadata:
// a broadcast-shaped join (small build side), a semijoin-shaped one
// (selective probe into a large table) and a co-located one.
func TestStrategyChoice(t *testing.T) {
	d := makeData(17, 300, 3000)
	lf := bootTestFed(t, 3, Config{}, d)

	q, _ := runFed(t, lf, "from orders join users on uid = id select oid, amount, name")
	if got := q.Strategies(); len(got) != 1 || got[0] == dist.CoLocated {
		t.Fatalf("orders⋈users strategies = %v", got)
	}

	q, _ = runFed(t, lf, "from users join profiles on id = pid select id, score")
	if got := q.Strategies(); len(got) != 1 || got[0] != dist.CoLocated {
		t.Fatalf("co-partitioned join strategies = %v, want [CoLocated]", got)
	}

	// The cost model must prefer semijoin when a selective left side
	// probes a much larger right side, and broadcast when the right side
	// is tiny relative to the left partitions.
	in := lf.Coord.costProbe("users", "orders", "id", "uid")
	if got := dist.ChooseStrategy(in); got != dist.SemiJoin && got != dist.Broadcast {
		t.Logf("probe inputs %+v chose %v", in, got)
	}
}

// costProbe builds cost inputs from live table metadata (test hook).
func (c *Coordinator) costProbe(left, right, lcol, rcol string) dist.CostInputs {
	lf := newFragment(left, c.tables[left], table.Schema{Name: left, Cols: c.tables[left].Cols})
	rf := newFragment(right, c.tables[right], table.Schema{Name: right, Cols: c.tables[right].Cols})
	s := &splitter{c: c}
	return s.costInputs(lf, rf, lcol, rcol, true)
}

// TestHashPlacementInvariant: under hash partitioning every row lives on
// exactly the site its key digests to — no duplicates, no strays.
func TestHashPlacementInvariant(t *testing.T) {
	d := makeData(19, 200, 50)
	lf := bootTestFed(t, 3, Config{}, d)
	total := 0
	for i, db := range lf.DBs {
		tab, err := db.Table("users")
		if err != nil {
			t.Fatal(err)
		}
		err = tab.Scan(func(_ store.RID, r table.Row) (bool, error) {
			if got := HashSite(r[0], 3); got != i {
				t.Fatalf("row %v on site %d, hashes to %d", r, i, got)
			}
			total++
			return true, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if total != len(d.users) {
		t.Fatalf("placed %d rows, want %d", total, len(d.users))
	}
}

// TestRangePlacementInvariant: range partitioning respects the bounds.
func TestRangePlacementInvariant(t *testing.T) {
	d := makeData(23, 50, 200)
	lf := bootTestFed(t, 3, Config{}, d)
	bounds := orderBounds(3, len(d.orders))
	total := 0
	for i, db := range lf.DBs {
		tab, err := db.Table("orders")
		if err != nil {
			t.Fatal(err)
		}
		err = tab.Scan(func(_ store.RID, r table.Row) (bool, error) {
			if got := RangeSite(r[0], bounds); got != i {
				t.Fatalf("row %v on site %d, ranges to %d", r, i, got)
			}
			total++
			return true, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if total != len(d.orders) {
		t.Fatalf("placed %d rows, want %d", total, len(d.orders))
	}
}

// TestPartitionPruning: a hash-equality probe touches one site and a
// range predicate only the overlapping sites — visible in the scatter
// label and in the shipped-row counters.
func TestPartitionPruning(t *testing.T) {
	d := makeData(29, 240, 300)
	lf := bootTestFed(t, 3, Config{}, d)

	q, err := lf.Coord.Compile("from users where id = 42")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.Plan(), "fedscatter[1 sites") {
		t.Fatalf("hash-eq probe not pruned to one site: %s", q.Plan())
	}

	q, err = lf.Coord.Compile("from orders where oid < 10")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.Plan(), "fedscatter[1 sites") {
		t.Fatalf("range probe not pruned to one site: %s", q.Plan())
	}

	q, err = lf.Coord.Compile("from orders where oid >= 150")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.Plan(), "fedscatter[2 sites") {
		t.Fatalf("range tail not pruned to two sites: %s", q.Plan())
	}
}

// TestFedMetrics: running queries moves the xstd_fed_* registry series —
// fragments, bytes and rows shipped globally and per site, latency
// histogram counts, and the sites-up gauge.
func TestFedMetrics(t *testing.T) {
	d := makeData(31, 240, 300)
	lf := bootTestFed(t, 3, Config{}, d)
	runFed(t, lf, "from users where age > 10")
	runFed(t, lf, "from orders join users on uid = id select oid, amount, name")

	m := lf.Coord.Metrics()
	if m.Fragments.Value() == 0 {
		t.Fatal("no fragments counted")
	}
	if m.BytesShipped.Value() == 0 || m.RowsShipped.Value() == 0 {
		t.Fatalf("shipping counters empty: bytes=%d rows=%d",
			m.BytesShipped.Value(), m.RowsShipped.Value())
	}
	if m.FragLatency.Count() == 0 {
		t.Fatal("no fragment latencies recorded")
	}
	if m.SitesUp.Value() != 3 {
		t.Fatalf("sites up = %d, want 3", m.SitesUp.Value())
	}
	text := lf.Registry.Text()
	for _, series := range []string{
		"xstd_fed_fragments_total", "xstd_fed_bytes_shipped_total",
		"xstd_fed_rows_shipped_total", "xstd_fed_fragment_latency_seconds",
		"xstd_fed_sites_up", "xstd_fed_site0_bytes_shipped_total",
	} {
		if !strings.Contains(text, series) {
			t.Fatalf("registry exposition missing %s:\n%s", series, text)
		}
	}
}

// TestExplainAnalyze: the federated EXPLAIN ANALYZE names the per-site
// scatter leaves.
func TestExplainAnalyze(t *testing.T) {
	d := makeData(37, 120, 60)
	lf := bootTestFed(t, 3, Config{}, d)
	q, err := lf.Coord.Compile("from users where age > 30 group by name count")
	if err != nil {
		t.Fatal(err)
	}
	out, err := q.Explain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gather[3]", "remote[s0 ", "remote[s2 "} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain analyze missing %q:\n%s", want, out)
		}
	}
}

// TestPartitionPersistence: partition metadata survives a catalog
// close/reopen cycle (sharded catalogs are durable).
func TestPartitionPersistence(t *testing.T) {
	pager := store.NewMemPager()
	db, err := catalog.Create(pager, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(usersSchema); err != nil {
		t.Fatal(err)
	}
	want := catalog.Partition{
		Kind: catalog.PartRange, Col: "id", Site: 1, Sites: 3,
		Bounds: []core.Value{core.Int(10), core.Int(20)},
	}
	if err := db.SetPartition("users", want); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = catalog.Open(pager, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	got, ok := db.Partition("users")
	if !ok {
		t.Fatal("partition lost across reopen")
	}
	if got.Kind != want.Kind || got.Col != want.Col || got.Site != want.Site ||
		got.Sites != want.Sites || len(got.Bounds) != 2 ||
		core.Compare(got.Bounds[0], want.Bounds[0]) != 0 ||
		core.Compare(got.Bounds[1], want.Bounds[1]) != 0 {
		t.Fatalf("partition round-trip: got %+v want %+v", got, want)
	}
}

// TestSelectivityUsesDistinctCounts: equality conjuncts switch from the
// System-R constant to 1/distinct once site statistics are merged, and
// the splitter's join-cardinality estimate uses the key's distinct
// count.
func TestSelectivityUsesDistinctCounts(t *testing.T) {
	meta := &TableMeta{Name: "t", Cols: []string{"id", "kind"}, SiteRows: []int{500, 500}}
	f := newFragment("t", meta, table.Schema{Name: "t", Cols: meta.Cols})
	f.preds = append(f.preds, plan.Cmp{Col: "id", Op: plan.Eq, Val: core.Int(7)})
	if got := f.selectivity(); got != 0.1 {
		t.Fatalf("selectivity without stats = %v, want 0.1", got)
	}
	meta.Distinct = map[string]int{"id": 1000, "kind": 2}
	if got := f.selectivity(); got != 1.0/1000 {
		t.Fatalf("selectivity with stats = %v, want 0.001", got)
	}
	// Range conjuncts keep the constant — histograms are not shipped.
	f.preds = []plan.Cmp{{Col: "id", Op: plan.Lt, Val: core.Int(7)}}
	if got := f.selectivity(); got != 0.3 {
		t.Fatalf("range selectivity = %v, want 0.3", got)
	}
	if got := f.distinctOf("kind"); got != 2 {
		t.Fatalf("distinctOf(kind) = %d, want 2", got)
	}
	if got := f.distinctOf("missing"); got != 0 {
		t.Fatalf("distinctOf(missing) = %d, want 0", got)
	}
}
