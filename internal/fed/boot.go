package fed

import (
	"context"
	"fmt"
	"net"
	"sync"

	"xst/internal/catalog"
	"xst/internal/metrics"
	"xst/internal/server"
	"xst/internal/store"
	"xst/internal/table"
)

// LocalFed is an in-process federation: N xstd servers over in-memory
// databases on loopback listeners, plus a connected coordinator — the
// harness behind `xstbench -sites`, the differential equivalence suite
// and the CI federation smoke job.
type LocalFed struct {
	Coord *Coordinator
	// Registry carries the coordinator's xstd_fed_* series.
	Registry *metrics.Registry
	Servers  []*server.Server
	Addrs    []string
	DBs      []*catalog.Database

	// serveWG joins the per-site Serve goroutines: Shutdown returns only
	// after every accept loop has actually exited, so a test that boots
	// and tears down a federation leaves no goroutine behind.
	serveWG sync.WaitGroup
}

// BootLocal builds n in-memory site databases, hands them to populate
// for sharded table creation (see CreateSharded), serves each behind a
// loopback xstd, and connects a coordinator. cfg.Sites is filled in by
// the boot; other Config fields pass through.
func BootLocal(ctx context.Context, n int, cfg Config, populate func(dbs []*catalog.Database) error) (*LocalFed, error) {
	lf := &LocalFed{Registry: metrics.NewRegistry()}
	fail := func(err error) (*LocalFed, error) {
		kill, cancel := context.WithCancel(ctx)
		cancel()
		lf.Shutdown(kill)
		return nil, err
	}
	for i := 0; i < n; i++ {
		db, err := catalog.Create(store.NewMemPager(), 512)
		if err != nil {
			return fail(fmt.Errorf("fed: site %d database: %w", i, err))
		}
		lf.DBs = append(lf.DBs, db)
	}
	if populate != nil {
		if err := populate(lf.DBs); err != nil {
			return fail(err)
		}
	}
	for i, db := range lf.DBs {
		srv, err := server.New(server.Config{DB: db, Logf: cfg.Logf})
		if err != nil {
			return fail(fmt.Errorf("fed: site %d server: %w", i, err))
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(fmt.Errorf("fed: site %d listener: %w", i, err))
		}
		lf.Servers = append(lf.Servers, srv)
		lf.Addrs = append(lf.Addrs, l.Addr().String())
		lf.serveWG.Add(1)
		go func() {
			defer lf.serveWG.Done()
			srv.Serve(l)
		}()
	}
	cfg.Sites = lf.Addrs
	coord, err := Connect(ctx, cfg)
	if err != nil {
		return fail(err)
	}
	lf.Coord = coord
	if err := coord.RegisterMetrics(lf.Registry); err != nil {
		return fail(err)
	}
	return lf, nil
}

// KillSite force-stops one site: pass an already-cancelled context to
// sever its connections immediately (mid-query failure injection), or a
// live one to drain gracefully.
func (lf *LocalFed) KillSite(ctx context.Context, i int) error {
	return lf.Servers[i].Shutdown(ctx)
}

// Shutdown stops the whole federation: coordinator pool first, then the
// site servers under ctx's drain budget, then the databases.
func (lf *LocalFed) Shutdown(ctx context.Context) {
	if lf.Coord != nil {
		lf.Coord.Close()
	}
	for _, srv := range lf.Servers {
		srv.Shutdown(ctx)
	}
	lf.serveWG.Wait()
	for _, db := range lf.DBs {
		db.Close()
	}
}

// CreateSharded creates one table on every site database and routes the
// rows: by the partition rule when part is non-nil (its Site/Sites
// fields are filled per database), round-robin otherwise. This is the
// placement invariant the federation relies on — every row on exactly
// one site.
func CreateSharded(dbs []*catalog.Database, sch table.Schema, part *catalog.Partition, rows []table.Row) error {
	n := len(dbs)
	tabs := make([]*table.Table, n)
	col := -1
	if part != nil {
		if col = sch.Col(part.Col); col < 0 {
			return fmt.Errorf("fed: partition column %q not in %q", part.Col, sch.Name)
		}
	}
	for i, db := range dbs {
		t, err := db.CreateTable(sch)
		if err != nil {
			return err
		}
		if part != nil {
			p := *part
			p.Site = i
			p.Sites = n
			if err := db.SetPartition(sch.Name, p); err != nil {
				return err
			}
		}
		tabs[i] = t
	}
	for i, r := range rows {
		site := i % n
		if part != nil {
			switch part.Kind {
			case catalog.PartHash:
				site = HashSite(r[col], n)
			case catalog.PartRange:
				site = RangeSite(r[col], part.Bounds)
			}
		}
		if _, err := tabs[site].Insert(r); err != nil {
			return err
		}
	}
	return nil
}
