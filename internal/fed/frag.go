package fed

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"unicode"

	"xst/internal/catalog"
	"xst/internal/core"
	"xst/internal/plan"
	"xst/internal/table"
	"xst/internal/xsp"
)

// fragment is one per-site unit of work: a subtree of the optimized
// plan decompiled back into query text so a site's own parser,
// optimizer and executor run it against the local partitions. The
// fields mirror the query grammar (from / join / where / group /
// select / limit); rendering is conservative — anything the grammar
// cannot express verbatim (unprintable literals, keyword-colliding
// column names) simply stays at the coordinator.
type fragment struct {
	table string
	meta  *TableMeta
	// joins are site-local join clauses (co-located or scratch-table
	// joins), applied in order after the base table.
	joins     []fragJoin
	joinMetas []*TableMeta
	// where holds rendered conjuncts; preds the structured forms (for
	// selectivity estimates and partition pruning).
	where []string
	preds []plan.Cmp
	// cols is the pushed projection (nil = whole schema), sch the
	// fragment's current output schema.
	cols []string
	sch  table.Schema
	// distinct, groupKey/aggs and limit are pushed unary operators;
	// groupKey turns the fragment into a per-site partial aggregation.
	distinct bool
	groupKey string
	aggs     []plan.AggSpec
	limit    int
}

type fragJoin struct {
	table    string
	leftCol  string
	rightCol string
}

func newFragment(name string, meta *TableMeta, sch table.Schema) *fragment {
	return &fragment{table: name, meta: meta, sch: sch, limit: -1}
}

// plain reports whether more operators may still be pushed beneath the
// fragment's pushed distinct/group/limit (which must stay outermost).
func (f *fragment) plain() bool {
	return !f.distinct && f.groupKey == "" && f.limit < 0
}

func (f *fragment) clone() *fragment {
	g := *f
	g.joins = append([]fragJoin(nil), f.joins...)
	g.joinMetas = append([]*TableMeta(nil), f.joinMetas...)
	g.where = append([]string(nil), f.where...)
	g.preds = append([]plan.Cmp(nil), f.preds...)
	g.cols = append([]string(nil), f.cols...)
	return &g
}

// render decompiles the fragment into query text for the site parser.
func (f *fragment) render() string {
	var b strings.Builder
	b.WriteString("from ")
	b.WriteString(f.table)
	for _, j := range f.joins {
		fmt.Fprintf(&b, " join %s on %s = %s", j.table, j.leftCol, j.rightCol)
	}
	if len(f.where) > 0 {
		b.WriteString(" where ")
		b.WriteString(strings.Join(f.where, " and "))
	}
	if f.groupKey != "" {
		b.WriteString(" group by ")
		b.WriteString(f.groupKey)
		for _, a := range f.aggs {
			b.WriteString(" ")
			b.WriteString(a.String())
		}
	}
	if f.cols != nil || f.distinct {
		cols := f.cols
		if cols == nil {
			cols = f.sch.Cols
		}
		b.WriteString(" select ")
		if f.distinct {
			b.WriteString("distinct ")
		}
		b.WriteString(strings.Join(cols, ", "))
	}
	if f.limit >= 0 {
		fmt.Fprintf(&b, " limit %d", f.limit)
	}
	return b.String()
}

// queryKeywords are identifiers the grammar consumes structurally;
// columns named after them cannot round-trip through rendered text.
var queryKeywords = map[string]bool{
	"from": true, "join": true, "on": true, "where": true, "and": true,
	"group": true, "by": true, "select": true, "distinct": true,
	"order": true, "asc": true, "desc": true, "limit": true,
	"count": true, "sum": true, "min": true, "max": true,
	"true": true, "false": true,
}

// renderableIdent reports whether a column name survives lexing intact.
func renderableIdent(s string) bool {
	if s == "" || queryKeywords[s] {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || unicode.IsLetter(r):
		case i > 0 && unicode.IsDigit(r):
		default:
			return false
		}
	}
	return true
}

func renderableIdents(cols []string) bool {
	for _, c := range cols {
		if !renderableIdent(c) {
			return false
		}
	}
	return true
}

// renderLit renders a literal in query syntax, refusing values the
// lexer cannot round-trip (strings with exotic control bytes, NaN/Inf).
func renderLit(v core.Value) (string, bool) {
	switch x := v.(type) {
	case core.Int:
		return strconv.FormatInt(int64(x), 10), true
	case core.Bool:
		if x {
			return "true", true
		}
		return "false", true
	case core.Float:
		s := strconv.FormatFloat(float64(x), 'f', -1, 64)
		neg := strings.HasPrefix(s, "-")
		body := strings.TrimPrefix(s, "-")
		if body == "" || body[0] < '0' || body[0] > '9' {
			return "", false // NaN, Inf
		}
		if !strings.Contains(body, ".") {
			body += ".0" // an undotted float would lex as an Int
		}
		if neg {
			body = "-" + body
		}
		return body, true
	case core.Str:
		var b strings.Builder
		b.WriteByte('"')
		for i := 0; i < len(x); i++ {
			c := x[i]
			switch c {
			case '"':
				b.WriteString(`\"`)
			case '\\':
				b.WriteString(`\\`)
			case '\n':
				b.WriteString(`\n`)
			case '\t':
				b.WriteString(`\t`)
			default:
				if c < 0x20 || c == 0x7f {
					return "", false // no escape for it in the lexer
				}
				b.WriteByte(c)
			}
		}
		b.WriteByte('"')
		return b.String(), true
	}
	return "", false
}

// renderCmp renders one comparison conjunct. plan.Cmp.String is for
// humans (it writes "!="); the grammar wants "<>".
func renderCmp(c plan.Cmp) (string, bool) {
	if !renderableIdent(c.Col) {
		return "", false
	}
	lit, ok := renderLit(c.Val)
	if !ok {
		return "", false
	}
	var op string
	switch c.Op {
	case plan.Eq:
		op = "="
	case plan.Ne:
		op = "<>"
	case plan.Lt:
		op = "<"
	case plan.Le:
		op = "<="
	case plan.Gt:
		op = ">"
	case plan.Ge:
		op = ">="
	default:
		return "", false
	}
	return c.Col + " " + op + " " + lit, true
}

// renderPred flattens a predicate into rendered conjuncts; ok is false
// when any part cannot round-trip through query text.
func renderPred(p plan.Pred) (texts []string, cmps []plan.Cmp, ok bool) {
	switch x := p.(type) {
	case plan.Cmp:
		t, ok := renderCmp(x)
		if !ok {
			return nil, nil, false
		}
		return []string{t}, []plan.Cmp{x}, true
	case plan.And:
		for _, q := range x {
			ts, cs, ok := renderPred(q)
			if !ok {
				return nil, nil, false
			}
			texts = append(texts, ts...)
			cmps = append(cmps, cs...)
		}
		return texts, cmps, true
	default:
		return nil, nil, false
	}
}

// renderableAggs reports whether a GroupBy's aggregates round-trip:
// renderable columns and pairwise-distinct output names also distinct
// from the key (duplicate names would make the coordinator's merge
// aggregation resolve the wrong column).
func renderableAggs(key string, aggs []plan.AggSpec) bool {
	seen := map[string]bool{key: true}
	for _, a := range aggs {
		if a.Kind != xsp.Count && !renderableIdent(a.Col) {
			return false
		}
		name := a.String()
		if seen[name] {
			return false
		}
		seen[name] = true
	}
	return true
}

// selectivity estimates the surviving fraction of the fragment's base
// rows under its pushed predicates. Equality conjuncts use 1/distinct
// when the sites have been analyzed (`.analyze` publishes per-column
// distinct counts through .schema); everything else falls back to the
// System-R constants, as plan does without statistics.
func (f *fragment) selectivity() float64 {
	s := 1.0
	for _, p := range f.preds {
		switch p.Op {
		case plan.Eq:
			if d := f.distinctOf(p.Col); d > 0 {
				s *= 1 / float64(d)
			} else {
				s *= 0.1
			}
		case plan.Lt, plan.Le, plan.Gt, plan.Ge:
			s *= 0.3
		default:
			s *= 0.5
		}
	}
	return s
}

// distinctOf resolves a column's merged distinct count across the
// fragment's tables (0 = unknown).
func (f *fragment) distinctOf(col string) int {
	for _, m := range append([]*TableMeta{f.meta}, f.joinMetas...) {
		if m == nil {
			continue
		}
		if d, ok := m.Distinct[col]; ok {
			return d
		}
	}
	return 0
}

// estRows estimates the fragment's output cardinality across all sites.
func (f *fragment) estRows() float64 {
	rows := float64(f.meta.Rows())
	for _, jm := range f.joinMetas {
		if r := float64(jm.Rows()); r > rows {
			rows = r
		}
	}
	est := rows * f.selectivity()
	if f.groupKey != "" {
		est *= 0.1
	}
	if f.limit >= 0 && float64(f.limit) < est {
		est = float64(f.limit)
	}
	return est
}

// sites returns the pruned site list the fragment must visit: for each
// partitioned table it touches, equality and range conjuncts on the
// partition column narrow the candidate set, and the per-table sets
// intersect (a co-located join only matches where both sides hold
// rows). Unprunable fragments visit every site.
func (f *fragment) sites(c *Coordinator) []*site {
	cand := make([]bool, len(c.sites))
	for i := range cand {
		cand[i] = true
	}
	metas := append([]*TableMeta{f.meta}, f.joinMetas...)
	for _, m := range metas {
		if m == nil || m.Part == nil {
			continue
		}
		sub := pruneSites(m.Part, f.preds, len(c.sites))
		for i := range cand {
			cand[i] = cand[i] && sub[i]
		}
	}
	var out []*site
	for i, ok := range cand {
		if ok {
			out = append(out, c.sites[i])
		}
	}
	return out
}

// pruneSites marks which sites can hold rows of one partitioned table
// under the pushed conjuncts.
func pruneSites(part *PartSpec, preds []plan.Cmp, n int) []bool {
	cand := make([]bool, n)
	for i := range cand {
		cand[i] = true
	}
	for _, p := range preds {
		if p.Col != part.Col {
			continue
		}
		sub := make([]bool, n)
		switch part.Kind {
		case catalog.PartHash:
			if p.Op != plan.Eq {
				continue
			}
			sub[int(core.Digest(p.Val)%uint64(n))] = true
		case catalog.PartRange:
			for i := 0; i < n; i++ {
				sub[i] = rangeSiteMatches(part.Bounds, i, p)
			}
		default:
			continue
		}
		for i := range cand {
			cand[i] = cand[i] && sub[i]
		}
	}
	return cand
}

// rangeSiteMatches reports whether range-partition site i — owning
// bounds[i-1] <= v < bounds[i] — can hold rows satisfying p.
func rangeSiteMatches(bounds []core.Value, i int, p plan.Cmp) bool {
	// lo/hi are the site's half-open interval; nil = unbounded.
	var lo, hi core.Value
	if i > 0 {
		lo = bounds[i-1]
	}
	if i < len(bounds) {
		hi = bounds[i]
	}
	switch p.Op {
	case plan.Eq:
		return (lo == nil || core.Compare(p.Val, lo) >= 0) &&
			(hi == nil || core.Compare(p.Val, hi) < 0)
	case plan.Lt:
		return lo == nil || core.Compare(lo, p.Val) < 0
	case plan.Le:
		return lo == nil || core.Compare(lo, p.Val) <= 0
	case plan.Gt, plan.Ge:
		return hi == nil || core.Compare(p.Val, hi) < 0
	default:
		return true
	}
}

// RangeSite places one value under a range spec: the first site whose
// upper bound exceeds it.
func RangeSite(v core.Value, bounds []core.Value) int {
	return sort.Search(len(bounds), func(i int) bool {
		return core.Compare(v, bounds[i]) < 0
	})
}

// HashSite places one value under hash partitioning over n sites.
func HashSite(v core.Value, n int) int {
	return int(core.Digest(v) % uint64(n))
}
