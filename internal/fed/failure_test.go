package fed

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"xst/internal/catalog"
	"xst/internal/core"
	"xst/internal/table"
	"xst/internal/xtest"
)

// cancelledCtx returns an already-dead context (force-kill semantics).
func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// assertDrained polls until the goroutine count returns to its baseline
// (the coordinator's watchdogs, gather workers and the dead site's
// handlers must all exit).
func assertDrained(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, %d before",
				runtime.NumGoroutine(), before)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSiteKillMidQuery: a site force-killed while its partition streams
// fails the query with a clean site-naming error — no hang, no partial
// silent result, no leaked goroutines. Each partition must dwarf the
// socket and stream buffering between site and coordinator: if a site
// could fit its whole result in flight before the kill lands, its
// stream would complete and the kill would be unobservable — so the
// rows carry a ~1KB payload (~10MB per site).
func TestSiteKillMidQuery(t *testing.T) {
	payload := core.Str(strings.Repeat("x", 1000))
	blobs := make([]table.Row, 30000)
	for i := range blobs {
		blobs[i] = table.Row{core.Int(i), payload}
	}
	blobsSchema := table.Schema{Name: "blobs", Cols: []string{"id", "payload"}}
	lf, err := BootLocal(context.Background(), 3, Config{Retries: -1},
		func(dbs []*catalog.Database) error {
			return CreateSharded(dbs, blobsSchema,
				&catalog.Partition{Kind: catalog.PartHash, Col: "id"}, blobs)
		})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lf.Shutdown(context.Background()) })
	before := runtime.NumGoroutine()

	q, err := lf.Coord.Compile("from blobs")
	if err != nil {
		t.Fatal(err)
	}
	killed := false
	var got int
	_, err = q.Run(context.Background(), func(rows []table.Row) error {
		if !killed {
			killed = true
			lf.KillSite(cancelledCtx(), 0)
		}
		got += len(rows)
		return nil
	})
	if err == nil {
		t.Fatalf("query survived mid-stream site kill (%d rows)", got)
	}
	if !strings.Contains(err.Error(), "fed: site") {
		t.Fatalf("kill error does not name the site: %v", err)
	}
	assertDrained(t, before)
}

// TestCancelMidQuery: federated plans abort promptly on context
// cancellation at any poll depth, and every worker goroutine and
// watchdog exits — checked by xtest's countdown-context harness.
func TestCancelMidQuery(t *testing.T) {
	d := makeData(43, 3000, 900)
	lf := bootTestFed(t, 3, Config{}, d)
	stmt := "from orders join users on uid = id select oid, amount, name"
	for _, n := range []int{1, 3, 20} {
		// Warm the connection pools so the aborted run reuses sessions
		// instead of spawning fresh site handlers mid-measurement.
		runFed(t, lf, stmt)
		xtest.AssertCancelAborts(t, n, func(ctx context.Context) error {
			q, err := lf.Coord.Compile(stmt)
			if err != nil {
				return err
			}
			_, err = q.Run(ctx, func([]table.Row) error { return nil })
			return err
		})
	}
}

// TestSiteDownDegradation: with one site dead, queries pruned to the
// surviving sites still answer; queries needing the dead site fail with
// a clean error after exhausting retries, and the health gauge and
// retry counters record it.
func TestSiteDownDegradation(t *testing.T) {
	d := makeData(47, 240, 60)
	lf := bootTestFed(t, 3, Config{Retries: 1, Backoff: time.Millisecond}, d)

	// Pick one user id homed on the doomed site 0 and one on site 1.
	dead, alive := -1, -1
	for id := 0; id < 240 && (dead < 0 || alive < 0); id++ {
		switch HashSite(core.Int(id), 3) {
		case 0:
			if dead < 0 {
				dead = id
			}
		case 1:
			if alive < 0 {
				alive = id
			}
		}
	}
	lf.KillSite(cancelledCtx(), 0)

	if _, rows := runFed(t, lf, queryByID(alive)); len(rows) != 1 {
		t.Fatalf("surviving-site probe returned %d rows", len(rows))
	}

	q, err := lf.Coord.Compile(queryByID(dead))
	if err != nil {
		t.Fatal(err)
	}
	_, err = q.Run(context.Background(), func([]table.Row) error { return nil })
	if err == nil {
		t.Fatal("probe to dead site succeeded")
	}
	if !strings.Contains(err.Error(), "fed: site 0") {
		t.Fatalf("error does not name dead site: %v", err)
	}

	m := lf.Coord.Metrics()
	if m.SitesUp.Value() != 2 {
		t.Fatalf("sites up = %d after kill, want 2", m.SitesUp.Value())
	}
	if m.Retries.Value() < 1 {
		t.Fatal("dead-site probe burned no retries")
	}
	if m.FragErrors.Value() == 0 {
		t.Fatal("dead-site probe counted no fragment errors")
	}
}

func queryByID(id int) string {
	return "from users where id = " + core.Int(id).String()
}
