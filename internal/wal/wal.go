// Package wal adds the reliability substrate the paper's introduction
// promises ("intrinsically reliable systems"): a physical write-ahead
// log over the store.Pager interface with atomic transactions and
// crash recovery.
//
// The design is redo-only page-image logging:
//
//   - A transaction buffers page writes in a shadow map; readers inside
//     the transaction see their own writes.
//   - Commit appends each dirty page's after-image plus a commit marker
//     to the log, *then* applies the images to the base pager. The log
//     is the authority: a crash between log append and base apply is
//     repaired by redo.
//   - Recover scans the log and re-applies the page images of every
//     committed transaction, in log order. Uncommitted tails are
//     ignored, so torn transactions vanish atomically.
//
// The log itself lives behind a tiny append-only interface with an
// in-memory and a file implementation, and the crash tests cut the log
// at every possible record boundary.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"

	"xst/internal/store"
)

// Log is an append-only record store.
type Log interface {
	// Append adds one record.
	Append(rec []byte) error
	// Records returns all records in append order.
	Records() ([][]byte, error)
	// Sync makes appended records durable.
	Sync() error
	// Close releases resources.
	Close() error
	// Reset empties the log (checkpoint truncation).
	Reset() error
}

// record kinds.
const (
	recPage   = 0x50 // 'P': txn u64, page u32, image [PageSize]byte
	recCommit = 0x43 // 'C': txn u64
	recAlloc  = 0x41 // 'A': txn u64, page u32 — page allocation
)

func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }

// MemLog is an in-memory log (tests, crash simulation).
type MemLog struct {
	mu   sync.Mutex
	recs [][]byte
}

// NewMemLog returns an empty in-memory log.
func NewMemLog() *MemLog { return &MemLog{} }

// Append implements Log.
func (l *MemLog) Append(rec []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	cp := make([]byte, len(rec))
	copy(cp, rec)
	l.recs = append(l.recs, cp)
	return nil
}

// Records implements Log.
func (l *MemLog) Records() ([][]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([][]byte, len(l.recs))
	copy(out, l.recs)
	return out, nil
}

// Sync implements Log.
func (l *MemLog) Sync() error { return nil }

// Close implements Log.
func (l *MemLog) Close() error { return nil }

// Reset implements Log: the checkpoint truncation.
func (l *MemLog) Reset() error {
	l.mu.Lock()
	l.recs = nil
	l.mu.Unlock()
	return nil
}

// Truncate keeps only the first n records — the crash-injection hook.
func (l *MemLog) Truncate(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n < len(l.recs) {
		l.recs = l.recs[:n]
	}
}

// Len returns the record count.
func (l *MemLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// FileLog is a length-prefixed file log.
type FileLog struct {
	mu sync.Mutex
	f  *os.File
}

// OpenFileLog opens or creates a log file.
func OpenFileLog(path string) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileLog{f: f}, nil
}

// Append implements Log.
func (l *FileLog) Append(rec []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(rec)))
	if _, err := l.f.Write(hdr[:]); err != nil {
		return err
	}
	_, err := l.f.Write(rec)
	return err
}

// Records implements Log. Truncated trailing records (torn writes) are
// dropped silently — exactly the crash semantics recovery needs.
func (l *FileLog) Records() ([][]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	raw, err := os.ReadFile(l.f.Name())
	if err != nil {
		return nil, err
	}
	var out [][]byte
	for len(raw) >= 4 {
		n := binary.LittleEndian.Uint32(raw)
		if uint32(len(raw)-4) < n {
			break // torn tail
		}
		out = append(out, raw[4:4+n])
		raw = raw[4+n:]
	}
	return out, nil
}

// Sync implements Log.
func (l *FileLog) Sync() error { return l.f.Sync() }

// Close implements Log.
func (l *FileLog) Close() error { return l.f.Close() }

// Reset implements Log: truncates the file (the O_APPEND handle keeps
// writing at the new end).
func (l *FileLog) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Truncate(0)
}

// ErrTxnDone reports use of a finished transaction.
var ErrTxnDone = errors.New("wal: transaction already finished")

// Manager coordinates transactions over a base pager and a log.
type Manager struct {
	mu          sync.Mutex
	base        store.Pager
	log         Log
	nextTxn     uint64
	hooks       Hooks
	noSync      bool
	logBytes    int64 // appended since open/checkpoint
	checkpoints int64 // lifetime log-fold count
}

// NewManager builds a manager. Call Recover first when reopening
// existing storage.
func NewManager(base store.Pager, log Log) *Manager {
	return &Manager{base: base, log: log, nextTxn: 1}
}

// Txn is one atomic unit of page writes.
type Txn struct {
	mgr    *Manager
	id     uint64
	shadow map[store.PageID][]byte
	allocs []store.PageID
	done   bool
}

// Begin starts a transaction.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	id := m.nextTxn
	m.nextTxn++
	hook := m.hooks.Begin
	m.mu.Unlock()
	if hook != nil {
		hook()
	}
	return &Txn{mgr: m, id: id, shadow: map[store.PageID][]byte{}}
}

// Allocate adds a page within the transaction. The allocation itself is
// immediate on the base pager (page ids are never reused, so an aborted
// allocation merely leaves a zero page), but the page contents become
// visible only on commit.
func (t *Txn) Allocate() (store.PageID, error) {
	if t.done {
		return 0, ErrTxnDone
	}
	id, err := t.mgr.base.Allocate()
	if err != nil {
		return 0, err
	}
	t.allocs = append(t.allocs, id)
	t.shadow[id] = make([]byte, store.PageSize)
	return id, nil
}

// ReadPage reads through the shadow map, falling back to the base.
func (t *Txn) ReadPage(id store.PageID, buf []byte) error {
	if t.done {
		return ErrTxnDone
	}
	if img, ok := t.shadow[id]; ok {
		copy(buf, img)
		return nil
	}
	return t.mgr.base.ReadPage(id, buf)
}

// WritePage buffers a page write in the transaction.
func (t *Txn) WritePage(id store.PageID, buf []byte) error {
	if t.done {
		return ErrTxnDone
	}
	img, ok := t.shadow[id]
	if !ok {
		img = make([]byte, store.PageSize)
		t.shadow[id] = img
	}
	copy(img, buf)
	return nil
}

// Abort discards the transaction. Aborting a finished transaction is a
// no-op, so `defer tx.Abort()` is a safe unwind guard around Commit.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.shadow = nil
	t.mgr.mu.Lock()
	hook := t.mgr.hooks.Abort
	t.mgr.mu.Unlock()
	if hook != nil {
		hook()
	}
}

// Commit logs every dirty page and the commit marker, syncs the log,
// then applies the images to the base pager. See CommitWith for the
// variant that hands the images to a buffer pool instead.
func (t *Txn) Commit() error {
	return t.CommitWith(nil)
}

// Recover replays the log onto the base pager: the page images of every
// committed transaction are re-applied in log order; pages of
// uncommitted transactions are ignored. Missing pages are allocated so
// redo works on an empty base. It returns the number of transactions
// redone.
func Recover(base store.Pager, log Log) (int, error) {
	recs, err := log.Records()
	if err != nil {
		return 0, err
	}
	committed := map[uint64]bool{}
	maxTxn := uint64(0)
	for _, rec := range recs {
		if len(rec) >= 9 && rec[0] == recCommit {
			committed[binary.LittleEndian.Uint64(rec[1:])] = true
		}
		if len(rec) >= 9 {
			if id := binary.LittleEndian.Uint64(rec[1:]); id > maxTxn {
				maxTxn = id
			}
		}
	}
	redone := map[uint64]bool{}
	for _, rec := range recs {
		if len(rec) < 13 {
			continue
		}
		txn := binary.LittleEndian.Uint64(rec[1:])
		if !committed[txn] {
			continue
		}
		page := store.PageID(binary.LittleEndian.Uint32(rec[9:]))
		switch rec[0] {
		case recAlloc:
			for store.PageID(base.NumPages()) <= page {
				if _, err := base.Allocate(); err != nil {
					return 0, err
				}
			}
		case recPage:
			if len(rec) != 13+store.PageSize {
				return 0, fmt.Errorf("wal: corrupt page record (%d bytes)", len(rec))
			}
			for store.PageID(base.NumPages()) <= page {
				if _, err := base.Allocate(); err != nil {
					return 0, err
				}
			}
			if err := base.WritePage(page, rec[13:]); err != nil {
				return 0, err
			}
			redone[txn] = true
		}
	}
	return len(redone), nil
}

// ResumeManager builds a manager whose next transaction id follows
// everything in the log (use after Recover).
func ResumeManager(base store.Pager, log Log) (*Manager, error) {
	recs, err := log.Records()
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	for _, rec := range recs {
		if len(rec) >= 9 {
			if id := binary.LittleEndian.Uint64(rec[1:]); id >= next {
				next = id + 1
			}
		}
	}
	bytes := int64(0)
	for _, rec := range recs {
		bytes += int64(len(rec)) + 4
	}
	return &Manager{base: base, log: log, nextTxn: next, logBytes: bytes}, nil
}
