package wal

import (
	"time"

	"xst/internal/store"
)

// This file grows the manager from a standalone redo log into the
// durability engine the catalog drives: commit with a caller-supplied
// apply step (so the buffer pool can install images and advance its
// MVCC epoch atomically), checkpointing (sync the base, truncate the
// log), a discard log for running with durability off, relaxed-sync
// mode, and observation hooks for the server's metrics registry.

// Hooks observe WAL and transaction activity. All fields are optional;
// they are called synchronously on the committing goroutine.
type Hooks struct {
	// Append fires per log record with its encoded size.
	Append func(bytes int)
	// Sync fires per log fsync with its duration.
	Sync func(d time.Duration)
	// Begin fires when a transaction starts.
	Begin func()
	// Commit fires when a transaction commits, with its page count.
	Commit func(pages int)
	// Abort fires when a transaction aborts.
	Abort func()
	// Checkpoint fires when the log is folded into the base, with how
	// long the fold (base sync + log sync + truncate) took.
	Checkpoint func(d time.Duration)
}

// SetHooks installs observation hooks (replacing any previous set).
func (m *Manager) SetHooks(h Hooks) {
	m.mu.Lock()
	m.hooks = h
	m.mu.Unlock()
}

// SetNoSync relaxes durability: commits append to the log but skip the
// fsync, which is only forced at checkpoint. A crash can lose the
// commits since the last sync, but never tears one — recovery still
// stops at the last complete commit record.
func (m *Manager) SetNoSync(v bool) {
	m.mu.Lock()
	m.noSync = v
	m.mu.Unlock()
}

// LoggedBytes reports bytes appended to the log since open or the last
// checkpoint — the auto-checkpoint trigger input.
func (m *Manager) LoggedBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.logBytes
}

// Base returns the manager's base pager.
func (m *Manager) Base() store.Pager { return m.base }

// appendRec appends one record, tracking size and firing the hook.
func (m *Manager) appendRec(rec []byte) error {
	if err := m.log.Append(rec); err != nil {
		return err
	}
	m.mu.Lock()
	m.logBytes += int64(len(rec)) + 4 // + length prefix
	hook := m.hooks.Append
	m.mu.Unlock()
	if hook != nil {
		hook(len(rec))
	}
	return nil
}

// syncLog makes the log durable (honoring NoSync) and times it.
func (m *Manager) syncLog() error {
	m.mu.Lock()
	skip := m.noSync
	hook := m.hooks.Sync
	m.mu.Unlock()
	if skip {
		return nil
	}
	start := time.Now()
	if err := m.log.Sync(); err != nil {
		return err
	}
	if hook != nil {
		hook(time.Since(start))
	}
	return nil
}

// Checkpoint folds the log into the base pager and truncates the log:
// the base is synced first, so a crash at any point either replays a
// still-complete log or reopens an already-complete base. The caller
// must exclude in-flight transactions, and every committed image must
// already be applied to the base — true for both Commit and CommitWith
// through the buffer pool.
func (m *Manager) Checkpoint() error {
	start := time.Now()
	if s, ok := m.base.(interface{ Sync() error }); ok {
		if err := s.Sync(); err != nil {
			return err
		}
	}
	if err := m.log.Sync(); err != nil { // flush any NoSync tail before dropping it
		return err
	}
	if err := m.log.Reset(); err != nil {
		return err
	}
	m.mu.Lock()
	m.logBytes = 0
	m.checkpoints++
	hook := m.hooks.Checkpoint
	m.mu.Unlock()
	if hook != nil {
		hook(time.Since(start))
	}
	return nil
}

// Checkpoints reports how many times the log has been folded into the
// base since the manager was created.
func (m *Manager) Checkpoints() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.checkpoints
}

// CommitWith logs every dirty page plus the commit marker, syncs the
// log, then hands the after-images to apply — the hook through which
// the buffer pool installs them and advances its MVCC epoch. The
// transaction gives up ownership of the image buffers; apply must
// write them through to the base pager (see store.CommitPages). A nil
// apply writes directly to the base, which is plain Commit.
func (t *Txn) CommitWith(apply func(pages map[store.PageID][]byte, fresh map[store.PageID]bool) error) error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	m := t.mgr
	for _, id := range t.allocs {
		rec := make([]byte, 1+8+4)
		rec[0] = recAlloc
		putU64(rec[1:], t.id)
		putU32(rec[9:], uint32(id))
		if err := m.appendRec(rec); err != nil {
			return err
		}
	}
	for id, img := range t.shadow {
		rec := make([]byte, 1+8+4+store.PageSize)
		rec[0] = recPage
		putU64(rec[1:], t.id)
		putU32(rec[9:], uint32(id))
		copy(rec[13:], img)
		if err := m.appendRec(rec); err != nil {
			return err
		}
	}
	commit := make([]byte, 1+8)
	commit[0] = recCommit
	putU64(commit[1:], t.id)
	if err := m.appendRec(commit); err != nil {
		return err
	}
	if err := m.syncLog(); err != nil {
		return err
	}
	pages := t.shadow
	t.shadow = nil
	if apply == nil {
		apply = func(pages map[store.PageID][]byte, _ map[store.PageID]bool) error {
			for id, img := range pages {
				if err := m.base.WritePage(id, img); err != nil {
					return err
				}
			}
			return nil
		}
	}
	fresh := make(map[store.PageID]bool, len(t.allocs))
	for _, id := range t.allocs {
		fresh[id] = true
	}
	if err := apply(pages, fresh); err != nil {
		return err
	}
	m.mu.Lock()
	hook := m.hooks.Commit
	m.mu.Unlock()
	if hook != nil {
		hook(len(pages))
	}
	return nil
}

// Pages reports how many pages the transaction has written so far.
func (t *Txn) Pages() int { return len(t.shadow) }

// NullLog discards everything: a Manager over it runs transactions with
// no durability (the "WAL off" configuration — commits still apply
// atomically through the pool, there is just nothing to replay).
type NullLog struct{}

// NewNullLog returns the discard log.
func NewNullLog() *NullLog { return &NullLog{} }

// Append implements Log.
func (*NullLog) Append([]byte) error { return nil }

// Records implements Log.
func (*NullLog) Records() ([][]byte, error) { return nil, nil }

// Sync implements Log.
func (*NullLog) Sync() error { return nil }

// Close implements Log.
func (*NullLog) Close() error { return nil }

// Reset implements Log.
func (*NullLog) Reset() error { return nil }

// ShadowPage returns the transaction's buffered after-image of id, if
// it has one. The slice is the live buffer: callers owning the
// transaction may mutate it in place.
func (t *Txn) ShadowPage(id store.PageID) ([]byte, bool) {
	if t.done {
		return nil, false
	}
	img, ok := t.shadow[id]
	return img, ok
}

// Install adopts buf as the transaction's after-image of id — the
// zero-copy WritePage used by the buffer-backed page adapter, which
// reads the committed image into a fresh buffer, mutates it, and hands
// the same buffer to the transaction.
func (t *Txn) Install(id store.PageID, buf []byte) {
	if t.done {
		return
	}
	t.shadow[id] = buf
}
