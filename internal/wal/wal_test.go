package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"xst/internal/store"
)

func pageWith(b byte) []byte {
	p := make([]byte, store.PageSize)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestCommitAppliesToBase(t *testing.T) {
	base := store.NewMemPager()
	log := NewMemLog()
	m := NewManager(base, log)

	txn := m.Begin()
	id, err := txn.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.WritePage(id, pageWith(7)); err != nil {
		t.Fatal(err)
	}
	// Before commit the base page is still zero.
	buf := make([]byte, store.PageSize)
	base.ReadPage(id, buf)
	if buf[0] != 0 {
		t.Fatal("uncommitted write leaked to base")
	}
	// The txn sees its own write.
	txn.ReadPage(id, buf)
	if buf[0] != 7 {
		t.Fatal("txn cannot read its own write")
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	base.ReadPage(id, buf)
	if buf[0] != 7 {
		t.Fatal("commit did not apply")
	}
}

func TestAbortDiscards(t *testing.T) {
	base := store.NewMemPager()
	m := NewManager(base, NewMemLog())
	txn := m.Begin()
	id, _ := txn.Allocate()
	txn.WritePage(id, pageWith(9))
	txn.Abort()
	buf := make([]byte, store.PageSize)
	base.ReadPage(id, buf)
	if buf[0] != 0 {
		t.Fatal("aborted write visible")
	}
	if err := txn.Commit(); err != ErrTxnDone {
		t.Fatal("commit after abort must fail")
	}
	if _, err := txn.Allocate(); err != ErrTxnDone {
		t.Fatal("allocate after abort must fail")
	}
	if err := txn.WritePage(id, buf); err != ErrTxnDone {
		t.Fatal("write after abort must fail")
	}
	if err := txn.ReadPage(id, buf); err != ErrTxnDone {
		t.Fatal("read after abort must fail")
	}
}

func TestRecoveryReplaysCommitted(t *testing.T) {
	log := NewMemLog()
	// Build a log from one base...
	base1 := store.NewMemPager()
	m := NewManager(base1, log)
	t1 := m.Begin()
	p1, _ := t1.Allocate()
	t1.WritePage(p1, pageWith(1))
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	t2 := m.Begin()
	p2, _ := t2.Allocate()
	t2.WritePage(p2, pageWith(2))
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}

	// ...then recover onto a completely fresh base.
	base2 := store.NewMemPager()
	n, err := Recover(base2, log)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("redone %d txns, want 2", n)
	}
	buf := make([]byte, store.PageSize)
	base2.ReadPage(p1, buf)
	if buf[0] != 1 {
		t.Fatal("txn1 lost")
	}
	base2.ReadPage(p2, buf)
	if buf[0] != 2 {
		t.Fatal("txn2 lost")
	}
}

func TestCrashAtEveryLogPrefix(t *testing.T) {
	// Build a reference log of 3 committed txns, then crash-truncate at
	// every record boundary and verify atomicity: a txn is either fully
	// present or fully absent after recovery.
	log := NewMemLog()
	base := store.NewMemPager()
	m := NewManager(base, log)
	var pages []store.PageID
	for i := 0; i < 3; i++ {
		txn := m.Begin()
		a, _ := txn.Allocate()
		b, _ := txn.Allocate()
		txn.WritePage(a, pageWith(byte(10+i)))
		txn.WritePage(b, pageWith(byte(20+i)))
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
		pages = append(pages, a, b)
	}
	full, _ := log.Records()

	for cut := 0; cut <= len(full); cut++ {
		partial := NewMemLog()
		for _, r := range full[:cut] {
			partial.Append(r)
		}
		fresh := store.NewMemPager()
		if _, err := Recover(fresh, partial); err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		// Check each txn's pair of pages is all-or-nothing.
		buf := make([]byte, store.PageSize)
		for i := 0; i < 3; i++ {
			a, b := pages[2*i], pages[2*i+1]
			var av, bv byte
			if int(a) < fresh.NumPages() {
				fresh.ReadPage(a, buf)
				av = buf[0]
			}
			if int(b) < fresh.NumPages() {
				fresh.ReadPage(b, buf)
				bv = buf[0]
			}
			applied := av == byte(10+i) && bv == byte(20+i)
			absent := av == 0 && bv == 0
			if !applied && !absent {
				t.Fatalf("cut=%d txn%d torn: a=%d b=%d", cut, i, av, bv)
			}
		}
	}
}

func TestUncommittedInvisibleAfterRecovery(t *testing.T) {
	log := NewMemLog()
	base := store.NewMemPager()
	m := NewManager(base, log)

	good := m.Begin()
	pg, _ := good.Allocate()
	good.WritePage(pg, pageWith(5))
	if err := good.Commit(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-commit of a second txn: append its page
	// record but no commit marker.
	bad := m.Begin()
	pb, _ := bad.Allocate()
	bad.WritePage(pb, pageWith(6))
	// Manually append only the page record (what a crash between page
	// append and commit append leaves behind).
	rec := make([]byte, 13+store.PageSize)
	rec[0] = recPage
	rec[1] = 99 // txn id 99, never committed
	copy(rec[13:], pageWith(6))
	log.Append(rec)

	fresh := store.NewMemPager()
	if _, err := Recover(fresh, log); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, store.PageSize)
	fresh.ReadPage(pg, buf)
	if buf[0] != 5 {
		t.Fatal("committed txn lost")
	}
	if int(pb) < fresh.NumPages() {
		fresh.ReadPage(pb, buf)
		if buf[0] == 6 {
			t.Fatal("uncommitted txn visible")
		}
	}
}

func TestFileLogRoundTripAndTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := [][]byte{{1, 2, 3}, {4}, bytes.Repeat([]byte{9}, 5000)}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	got, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || !bytes.Equal(got[2], recs[2]) {
		t.Fatalf("file log round trip: %d records", len(got))
	}
	l.Close()

	// Torn tail: append garbage length prefix; Records must drop it.
	l2, _ := OpenFileLog(path)
	l2.Append([]byte{7, 7})
	l2.Close()
	raw, _ := filepath.Glob(path)
	_ = raw
	// Truncate the file by 1 byte to tear the last record.
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFile(path, data[:len(data)-1]); err != nil {
		t.Fatal(err)
	}
	l3, _ := OpenFileLog(path)
	defer l3.Close()
	got, err = l3.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("torn tail not dropped: %d records", len(got))
	}
}

func TestFileBackedEndToEndRecovery(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.pages")
	logPath := filepath.Join(dir, "wal.log")

	base, err := store.OpenFilePager(basePath)
	if err != nil {
		t.Fatal(err)
	}
	log, err := OpenFileLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(base, log)
	txn := m.Begin()
	id, _ := txn.Allocate()
	txn.WritePage(id, pageWith(42))
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	base.Close()
	log.Close()

	// "Crash": reopen a fresh base file elsewhere, recover from log.
	base2, err := store.OpenFilePager(filepath.Join(dir, "restored.pages"))
	if err != nil {
		t.Fatal(err)
	}
	defer base2.Close()
	log2, err := OpenFileLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if _, err := Recover(base2, log2); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, store.PageSize)
	if err := base2.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 42 {
		t.Fatal("file-backed recovery lost data")
	}

	// Resume issuing transactions with fresh ids.
	m2, err := ResumeManager(base2, log2)
	if err != nil {
		t.Fatal(err)
	}
	txn2 := m2.Begin()
	if txn2.id <= 1 {
		t.Fatalf("resumed txn id %d must follow the log", txn2.id)
	}
	txn2.Abort()
}

func readFile(path string) ([]byte, error)  { return os.ReadFile(path) }
func writeFile(path string, b []byte) error { return os.WriteFile(path, b, 0o644) }
