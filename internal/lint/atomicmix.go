package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicMixAnalyzer enforces the internal/metrics counter pattern: a
// struct field is either always accessed through sync/atomic or never.
// Mixing an atomic.AddUint64 on one path with a plain read or write on
// another is a data race the race detector only catches when both paths
// run concurrently under -race; the analyzer catches it statically. It
// also flags plain assignment to fields of the sync/atomic types
// (atomic.Uint64 and friends), which bypasses their methods.
var AtomicMixAnalyzer = &Analyzer{
	Name: "atomicmix",
	Doc:  "flags plain reads/writes of struct fields that are elsewhere accessed via sync/atomic",
	Run:  runAtomicMix,
}

// atomicFns are the sync/atomic function-name prefixes that take &field.
var atomicFns = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"}

func runAtomicMix(pass *Pass) error {
	// Pass 1: collect fields used through sync/atomic calls, and the
	// selector nodes of those sanctioned uses.
	atomicFields := map[types.Object]string{} // field → atomic fn observed
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fnName, ok := atomicPkgCall(pass, call)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if sel, obj := addressedField(pass, call.Args[0]); obj != nil {
				atomicFields[obj] = "atomic." + fnName
				sanctioned[sel] = true
			}
			return true
		})
	}

	// Pass 2: flag every other access to those fields, and plain writes
	// to atomic.T-typed fields.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if sanctioned[x] {
					return true
				}
				obj := fieldObject(pass, x)
				if obj == nil {
					return true
				}
				if via, ok := atomicFields[obj]; ok {
					pass.Reportf(x.Pos(),
						"plain access of field %s, which is accessed via %s elsewhere; every access must go through sync/atomic", obj.Name(), via)
				}
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					obj := fieldObject(pass, sel)
					if obj == nil {
						continue
					}
					if t, ok := obj.Type().(*types.Named); ok && t.Obj().Pkg() != nil &&
						t.Obj().Pkg().Path() == "sync/atomic" {
						pass.Reportf(lhs.Pos(),
							"plain write to atomic.%s field %s bypasses its atomic methods", t.Obj().Name(), obj.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}

// atomicPkgCall reports whether call is sync/atomic.<AtomicFn>, returning
// the function name.
func atomicPkgCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return "", false
	}
	for _, prefix := range atomicFns {
		if strings.HasPrefix(sel.Sel.Name, prefix) {
			return sel.Sel.Name, true
		}
	}
	return "", false
}

// addressedField decodes &x.f, returning the selector and the field
// object.
func addressedField(pass *Pass, e ast.Expr) (*ast.SelectorExpr, types.Object) {
	un, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil, nil
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	return sel, fieldObject(pass, sel)
}

// fieldObject returns the struct-field object a selector denotes, or nil.
func fieldObject(pass *Pass, sel *ast.SelectorExpr) types.Object {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj()
}
