// Package linttest runs lint analyzers over fixture packages and checks
// their diagnostics against // want annotations, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture lives in internal/lint/testdata/src/<name>/ and is loaded as
// package path <name>, so a fixture directory named "algebra" exercises
// analyzers scoped to xst/internal/algebra. Expected diagnostics are
// annotated on the offending line:
//
//	ms[0] = m // want `write through the canonical slice`
//
// Each annotation is a regexp (backquoted or double-quoted; several per
// comment allowed) that must match a diagnostic reported on that line,
// and every diagnostic must be matched by an annotation — so the suite
// fails both on false positives and, because unmatched annotations are
// errors, whenever the analyzer is disabled or broken.
package linttest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"xst/internal/lint"
)

// wantArgRx matches one annotation argument: `rx` or "rx".
var wantArgRx = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// Run loads testdata/src/<name> (relative to the caller's directory) as
// package <name>, applies the analyzer, and diffs diagnostics against
// the fixture's // want annotations.
func Run(t *testing.T, l *lint.Loader, a *lint.Analyzer, name string) {
	t.Helper()
	RunAs(t, l, a, name, name)
}

// RunAs is Run with the fixture loaded under an alternate import path:
// testdata/src/goleak loaded as "exec" exercises analyzers scoped to
// xst/internal/exec without colliding with the exec fixture directory.
func RunAs(t *testing.T, l *lint.Loader, a *lint.Analyzer, name, asPath string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := l.LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	findings, err := lint.Run(pkg, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, name, err)
	}

	type want struct {
		rx      *regexp.Regexp
		matched bool
	}
	wants := map[string][]*want{} // "file:line" → expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantArgRx.FindAllStringSubmatch(text[len("want "):], -1) {
					expr := m[1]
					if expr == "" {
						unq, err := strconv.Unquote(`"` + m[2] + `"`)
						if err != nil {
							t.Fatalf("%s: bad want annotation %q: %v", key, c.Text, err)
						}
						expr = unq
					}
					rx, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, expr, err)
					}
					wants[key] = append(wants[key], &want{rx: rx})
				}
			}
		}
	}

	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Position.Filename, f.Position.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.rx.MatchString(f.Diagnostic.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", key, f.Diagnostic.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no %s diagnostic matching %q", key, a.Name, w.rx)
			}
		}
	}
}

// Findings loads a fixture and returns the analyzer's raw findings, for
// tests that assert on suggested fixes rather than messages.
func Findings(t *testing.T, l *lint.Loader, a *lint.Analyzer, name string) []lint.Finding {
	t.Helper()
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", name), name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	findings, err := lint.Run(pkg, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, name, err)
	}
	return findings
}
