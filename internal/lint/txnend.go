package lint

import (
	"go/ast"
	"go/types"
)

// txnendPkgs are the layers that begin WAL transactions: the catalog's
// mutators, the table layer's maintenance paths, and the server's
// statement handlers.
var txnendPkgs = []string{
	"xst/internal/catalog",
	"xst/internal/table",
	"xst/internal/server",
}

// TxnEndAnalyzer enforces the transaction lifecycle: a locally-begun
// transaction (any value whose method set has both Commit and Abort)
// must, on every path out of the function, be Committed, Aborted, or
// escape into an owner (returned, stored into a struct, captured by a
// closure). The paths that slip through review are the validation
// unwinds between Begin and Commit: an early error return that leaves
// the writer lock held and the shadow map staged wedges every later
// writer — a deadlock in slow motion rather than a leak.
//
// `defer tx.Abort()` right after Begin is the sanctioned unwind shape
// (Abort after Commit is a no-op), and a plain Commit/Abort pair on the
// branches works too. Methods on transaction types themselves are
// exempt: Commit and Abort manipulate their own receiver's state under
// a different discipline.
var TxnEndAnalyzer = &Analyzer{
	Name: "txnend",
	Doc:  "flags locally-begun transactions not committed or aborted on every return path",
	Run:  runTxnEnd,
}

func runTxnEnd(pass *Pass) error {
	if !pathMatches(pass.Pkg.Path(), txnendPkgs...) {
		return nil
	}
	for _, f := range pass.Files {
		parents := parentMap(f)
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if fn.Recv != nil && isTxnMethod(pass, fn) {
				continue
			}
			pass.checkLifecyclesRel(fn, parents, isTxnType, "transaction",
				"transaction %s is not committed or aborted on every return path; Abort it on error unwinds (or defer the Abort — it is a no-op after Commit)",
				txnEndsIn(pass))
		}
	}
	return nil
}

// txnEndsIn recognizes the statements that end a transaction's
// lifecycle: a call to Commit, CommitWith or Abort on the tracked
// object, directly or under a defer. Inspection is over the statement's
// shallow node, so a Commit inside one branch of an if is credited to
// that branch only, not to every path through the condition.
func txnEndsIn(pass *Pass) func(ast.Stmt, types.Object) bool {
	return func(st ast.Stmt, obj types.Object) bool {
		n := shallowNode(st)
		if n == nil {
			return false
		}
		ended := false
		ast.Inspect(n, func(nn ast.Node) bool {
			call, ok := nn.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, name := calleeName(call)
			switch name {
			case "Commit", "CommitWith", "Abort":
				if recv != nil && isObj(pass.Info, recv, obj) {
					ended = true
					return false
				}
			}
			return true
		})
		return ended
	}
}

// isTxnMethod reports a method declared on a transaction type.
func isTxnMethod(pass *Pass, fn *ast.FuncDecl) bool {
	obj := pass.Info.Defs[fn.Name]
	if obj == nil {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isTxnType(sig.Recv().Type())
}

// isTxnType reports whether t's method set (value or pointer) contains
// both Commit and Abort — the structural transaction shape, so
// wal.Txn, catalog.Txn, fixtures and future transaction types all
// qualify without this package importing them.
func isTxnType(t types.Type) bool {
	if t == nil {
		return false
	}
	has := func(ms *types.MethodSet) bool {
		found := 0
		for _, name := range []string{"Commit", "Abort"} {
			for i := 0; i < ms.Len(); i++ {
				if ms.At(i).Obj().Name() == name {
					found++
					break
				}
			}
		}
		return found == 2
	}
	if has(types.NewMethodSet(t)) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return has(types.NewMethodSet(types.NewPointer(t)))
	}
	return false
}
