package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sync"
)

// inspectSync walks node like ast.Inspect but skips `go` statement
// subtrees — what a spawned goroutine does is not a synchronous fact
// about the spawning function.
func inspectSync(node ast.Node, f func(ast.Node) bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		return f(n)
	})
}

// The summary layer is xstvet's interprocedural half: per-function facts
// computed from source over every analyzed package, keyed by a stable
// string (pkgPath:Recv.Name) that works whether a callee was
// type-checked from source or only seen through export data. Analyzers
// consult summaries instead of inlining callees — the classic
// bottom-up alternative to whole-program SSA, sized to this module.
//
// Facts are derived in two steps: AddPackage computes each function's
// local facts (what it closes, stores, blocks on), then Finalize runs a
// fixpoint so facts propagate through call chains (exec.Count releases
// its operator because it calls exec.Stream, which does). A small seed
// table covers callees whose source is outside the analyzed set.

// FuncSummary is what the analyzers know about one function.
type FuncSummary struct {
	// ReleasesParams[i] reports that the function takes ownership of
	// parameter i on every path: closes it, stores it into a field,
	// slice, map or struct, returns it, or hands it to a callee that
	// does. Operator and connection arguments passed to such a callee
	// need no local Close.
	ReleasesParams []bool
	// Blocking reports the function (transitively) performs unbounded
	// blocking work: network reads/writes, channel operations, or
	// driving an operator tree (exec.Stream and friends). lockheld
	// flags calls to Blocking functions inside critical sections.
	Blocking bool
	// WgDones / WgWaits are "Type.field" keys of sync.WaitGroup fields
	// the function calls Done/Wait on (receiver fields only; locals are
	// matched syntactically by goleak).
	WgDones []string
	WgWaits []string
	// ClosesChans / RecvsChans are "Type.field" keys of channel fields
	// the function closes / receives from (or ranges over).
	ClosesChans []string
	RecvsChans  []string
	// CtxDoneSelect reports a select with a <-ctx.Done() arm somewhere
	// in the body — the worker shape sendguard and goleak sanction.
	CtxDoneSelect bool
	// TearsDownRecv reports a method that closes a connection held in
	// its receiver's fields (directly or via another teardown method) —
	// how connclose recognizes dropConn-style paired teardowns.
	TearsDownRecv bool
}

// summarized pairs a declaration with what it needs for re-evaluation
// during the fixpoint.
type summarized struct {
	pkg *LoadedPackage
	fn  *ast.FuncDecl
	cfg *funcCFG
	sum *FuncSummary
}

// seedSummary is a summary for a callee identified by package suffix,
// receiver and name rather than an exact key.
type seedSummary struct {
	pkg, recv, name string
	sum             FuncSummary
}

// seedTable covers the sanctioned lifecycle drivers: the exec streaming
// entrypoints own (open, drain and close) the operator they are handed,
// and block for the stream's duration.
var seedTable = []seedSummary{
	{pkg: "xst/internal/exec", name: "Stream", sum: FuncSummary{ReleasesParams: []bool{false, true, false}, Blocking: true}},
	{pkg: "xst/internal/exec", name: "Collect", sum: FuncSummary{ReleasesParams: []bool{false, true}, Blocking: true}},
	{pkg: "xst/internal/exec", name: "Count", sum: FuncSummary{ReleasesParams: []bool{false, true}, Blocking: true}},
}

// applySeeds merges seed facts into a computed summary: a seed states
// contract-level truths syntax can't see (exec.Stream blocks for the
// stream's whole life because its Operator drives arbitrary I/O), so
// they hold even when the function's source is analyzed.
func applySeeds(sum *FuncSummary, pkgPath, recv, name string) {
	for i := range seedTable {
		sd := &seedTable[i]
		if sd.name != name || sd.recv != recv || !pathMatches(pkgPath, sd.pkg) {
			continue
		}
		sum.Blocking = sum.Blocking || sd.sum.Blocking
		sum.CtxDoneSelect = sum.CtxDoneSelect || sd.sum.CtxDoneSelect
		sum.TearsDownRecv = sum.TearsDownRecv || sd.sum.TearsDownRecv
		for i, r := range sd.sum.ReleasesParams {
			if !r {
				continue
			}
			for len(sum.ReleasesParams) <= i {
				sum.ReleasesParams = append(sum.ReleasesParams, false)
			}
			sum.ReleasesParams[i] = true
		}
	}
}

// Summaries is the shared store, safe for concurrent readers after
// Finalize.
type Summaries struct {
	mu    sync.RWMutex
	funcs map[string]*summarized
	// pkgWgWaits / pkgChanRecvs index, per package, which WaitGroup
	// fields are waited on and which channel fields are received from
	// anywhere in the package — the join points goleak matches spawns
	// against.
	pkgWgWaits   map[string]map[string]bool
	pkgChanRecvs map[string]map[string]bool
}

// NewSummaries returns an empty store.
func NewSummaries() *Summaries {
	return &Summaries{
		funcs:        map[string]*summarized{},
		pkgWgWaits:   map[string]map[string]bool{},
		pkgChanRecvs: map[string]map[string]bool{},
	}
}

// funcKey builds the stable summary key.
func funcKey(pkgPath, recv, name string) string { return pkgPath + ":" + recv + "." + name }

// recvTypeName names a receiver's base type ("" when not a method).
func recvTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// keyOfFunc keys a resolved function object.
func keyOfFunc(f *types.Func) string {
	pkg := ""
	if f.Pkg() != nil {
		pkg = f.Pkg().Path()
	}
	recv := ""
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv = recvTypeName(sig.Recv().Type())
	}
	return funcKey(pkg, recv, f.Name())
}

// staticCallee resolves a call to its function object (nil for calls
// through function values or type conversions).
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fn].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fn.Sel].(*types.Func)
		return f
	}
	return nil
}

// AddPackage indexes pkg's functions and computes their local facts.
// Call Finalize after the last package to propagate transitive facts.
func (s *Summaries) AddPackage(pkg *LoadedPackage) {
	s.mu.Lock()
	defer s.mu.Unlock()
	waits := s.pkgWgWaits[pkg.Path]
	if waits == nil {
		waits = map[string]bool{}
		s.pkgWgWaits[pkg.Path] = waits
	}
	recvs := s.pkgChanRecvs[pkg.Path]
	if recvs == nil {
		recvs = map[string]bool{}
		s.pkgChanRecvs[pkg.Path] = recvs
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			sm := &summarized{pkg: pkg, fn: fn, cfg: buildCFG(fn.Body), sum: &FuncSummary{}}
			recv := ""
			if fn.Recv != nil && len(fn.Recv.List) > 0 {
				if obj := pkg.Info.Defs[fn.Name]; obj != nil {
					if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
						recv = recvTypeName(sig.Recv().Type())
					}
				}
			}
			key := funcKey(pkg.Path, recv, fn.Name.Name)
			s.funcs[key] = sm
			s.localFacts(sm, waits, recvs)
			applySeeds(sm.sum, pkg.Path, recv, fn.Name.Name)
		}
	}
}

// fieldKey renders a sync.WaitGroup (or channel) selector expression
// on a named receiver as "Type.field"; "" when e is not such a field.
func fieldKey(info *types.Info, e ast.Expr) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return ""
	}
	base := recvTypeName(tv.Type)
	if base == "" {
		return ""
	}
	return base + "." + sel.Sel.Name
}

// localFacts fills sm.sum with everything derivable from this body
// alone (transitive facts arrive in Finalize).
//
// Two walks with different reach: the package-level join indexes (who
// waits on which WaitGroup field, who receives from which channel
// field) include goroutine bodies — Gather's closer goroutine is
// exactly where g.wg.Wait lives. The function's own synchronous facts
// (Blocking, WgDones, ClosesChans, CtxDoneSelect) skip `go` statement
// subtrees: a Done inside a goroutine the function spawns says nothing
// about the function's callers, and counting it would make
// `go srv.Serve(l)` look joined merely because Serve joins its own
// per-connection workers.
func (s *Summaries) localFacts(sm *summarized, waits, recvs map[string]bool) {
	info := sm.pkg.Info
	sum := sm.sum

	// Walk 1: package-level indexes, goroutine bodies included.
	ast.Inspect(sm.fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if k := fieldKey(info, x.X); k != "" {
					recvs[k] = true
				}
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					if k := fieldKey(info, x.X); k != "" {
						recvs[k] = true
					}
				}
			}
		case *ast.CallExpr:
			if recv, name := calleeName(x); recv != nil && name == "Wait" {
				if tv, ok := info.Types[recv]; ok && namedIn(tv.Type, "WaitGroup", "sync") {
					if k := fieldKey(info, recv); k != "" {
						waits[k] = true
					}
				}
			}
		}
		return true
	})

	// Walk 2: synchronous facts, `go` subtrees skipped.
	inspectSync(sm.fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			sum.Blocking = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				sum.Blocking = true
				if k := fieldKey(info, x.X); k != "" {
					sum.RecvsChans = append(sum.RecvsChans, k)
				}
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					sum.Blocking = true
					if k := fieldKey(info, x.X); k != "" {
						sum.RecvsChans = append(sum.RecvsChans, k)
					}
				}
			}
		case *ast.SelectStmt:
			for _, c := range x.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				if recvFromCtxDone(info, cc.Comm) {
					sum.CtxDoneSelect = true
				}
			}
		case *ast.CallExpr:
			recv, name := calleeName(x)
			// close(ch) on a channel field.
			if recv == nil && name == "close" && len(x.Args) == 1 {
				if k := fieldKey(info, x.Args[0]); k != "" {
					sum.ClosesChans = append(sum.ClosesChans, k)
				}
			}
			if recv != nil {
				tv, ok := info.Types[recv]
				switch {
				case ok && (namedIn(tv.Type, "WaitGroup", "sync")):
					k := fieldKey(info, recv)
					switch name {
					case "Done":
						if k != "" {
							sum.WgDones = append(sum.WgDones, k)
						}
					case "Wait":
						if k != "" {
							sum.WgWaits = append(sum.WgWaits, k)
						}
					}
				case ok && isNetConnMethod(tv.Type, name):
					sum.Blocking = true
				}
			}
		}
		return true
	})
	// Receiver teardown: a method that closes a connection-ish field of
	// its receiver.
	if sm.fn.Recv != nil {
		sum.TearsDownRecv = s.closesRecvConnField(sm)
	}
}

// isNetConnMethod reports a potentially long-blocking I/O method on a
// net.Conn-typed receiver (Close excluded: closing is how teardown
// paths unwedge peers and is fine under a lock).
func isNetConnMethod(t types.Type, name string) bool {
	switch name {
	case "Read", "Write", "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
	default:
		return false
	}
	return namedIn(t, "Conn", "net") || implementsNetConn(t)
}

// implementsNetConn reports whether t satisfies net.Conn, resolved
// through the type's own package imports.
func implementsNetConn(t types.Type) bool {
	base := t
	if ptr, ok := base.(*types.Pointer); ok {
		base = ptr.Elem()
	}
	n, ok := base.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	iface := netConnInterface(n.Obj().Pkg())
	if iface == nil {
		return false
	}
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}

// recvFromCtxDone reports a comm statement receiving from ctx.Done().
func recvFromCtxDone(info *types.Info, comm ast.Stmt) bool {
	var e ast.Expr
	switch c := comm.(type) {
	case *ast.ExprStmt:
		e = c.X
	case *ast.AssignStmt:
		if len(c.Rhs) == 1 {
			e = c.Rhs[0]
		}
	}
	un, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || un.Op.String() != "<-" {
		return false
	}
	call, ok := ast.Unparen(un.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	recv, name := calleeName(call)
	if name != "Done" || recv == nil {
		return false
	}
	tv, ok := info.Types[recv]
	return ok && namedIn(tv.Type, "Context", "context")
}

// isConnValue reports a connection-carrying type: net.Conn (or an
// implementation), or a pointer to a struct wrapping one in a field —
// the siteConn shape.
func isConnValue(t types.Type) bool {
	if t == nil {
		return false
	}
	if namedIn(t, "Conn", "net") || implementsNetConn(t) {
		return true
	}
	base := t
	if ptr, ok := base.(*types.Pointer); ok {
		base = ptr.Elem()
	}
	st, ok := base.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if namedIn(ft, "Conn", "net") {
			return true
		}
	}
	return false
}

// closesRecvConnField reports whether the method closes a conn-ish
// field of its receiver (r.conn.close(), r.conn.Close(), or a call to
// another method already known to).
func (s *Summaries) closesRecvConnField(sm *summarized) bool {
	info := sm.pkg.Info
	found := false
	ast.Inspect(sm.fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		recv, name := calleeName(call)
		if recv == nil || (name != "Close" && name != "close" && name != "halt") {
			return true
		}
		if sel, ok := ast.Unparen(recv).(*ast.SelectorExpr); ok {
			if tv, ok := info.Types[sel]; ok && isConnValue(tv.Type) {
				found = true
			}
		}
		return true
	})
	return found
}

// Finalize propagates transitive facts to a fixpoint: blocking through
// call chains, ownership through delegation, teardown through helper
// methods.
func (s *Summaries) Finalize() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for iter := 0; iter < 10; iter++ {
		changed := false
		for _, sm := range s.funcs {
			if s.sweep(sm) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// sweep re-derives one function's transitive facts; reports change.
func (s *Summaries) sweep(sm *summarized) bool {
	info := sm.pkg.Info
	sum := sm.sum
	changed := false

	// Blocking and teardown through static callees (synchronous calls
	// only — a call inside a spawned goroutine doesn't block the caller).
	if !sum.Blocking || (sm.fn.Recv != nil && !sum.TearsDownRecv) {
		inspectSync(sm.fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := s.lookupLocked(info, call)
			if callee == nil {
				return true
			}
			if callee.Blocking && !sum.Blocking {
				sum.Blocking = true
				changed = true
			}
			if callee.TearsDownRecv && sm.fn.Recv != nil && !sum.TearsDownRecv {
				// Delegation to a teardown helper on the same receiver.
				if recv, _ := calleeName(call); recv != nil {
					if id, ok := ast.Unparen(recv).(*ast.Ident); ok {
						if fieldBase(info, sm.fn, id) {
							sum.TearsDownRecv = true
							changed = true
						}
					}
				}
			}
			return true
		})
	}

	// Ownership of each parameter: released on every exit path?
	params := paramObjects(info, sm.fn)
	for len(sum.ReleasesParams) < len(params) {
		sum.ReleasesParams = append(sum.ReleasesParams, false)
	}
	for i, p := range params {
		if sum.ReleasesParams[i] || p == nil {
			continue
		}
		if sm.cfg.allExitPathsSatisfy(func(st ast.Stmt) bool {
			n := shallowNode(st)
			return n != nil && s.releasesObjLocked(info, n, p)
		}) {
			sum.ReleasesParams[i] = true
			changed = true
		}
	}
	return changed
}

// fieldBase reports whether id is the method's receiver variable.
func fieldBase(info *types.Info, fn *ast.FuncDecl, id *ast.Ident) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return false
	}
	return info.ObjectOf(id) == info.ObjectOf(fn.Recv.List[0].Names[0])
}

// paramObjects lists the function's parameter objects in order.
func paramObjects(info *types.Info, fn *ast.FuncDecl) []types.Object {
	var out []types.Object
	for _, field := range fn.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil) // unnamed parameter
			continue
		}
		for _, name := range field.Names {
			out = append(out, info.ObjectOf(name))
		}
	}
	return out
}

// releasesObjLocked reports whether the node transfers ownership of
// obj: closes it, stores it beyond locals, returns it, sends it, or
// passes it to a callee that releases that parameter. Callers hand it
// shallowNode(stmt) so one branch's release is not credited to paths
// that skip the branch.
func (s *Summaries) releasesObjLocked(info *types.Info, stmt ast.Node, obj types.Object) bool {
	released := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if released {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			// A closure capturing the object keeps it alive beyond this
			// frame — ownership effectively transfers.
			if usesObjectIn(info, x.Body, obj) {
				released = true
			}
			return false
		case *ast.CallExpr:
			recv, name := calleeName(x)
			if recv != nil && (name == "Close" || name == "close") {
				if isObj(info, recv, obj) {
					released = true
					return false
				}
			}
			// append(dst, …, obj, …): the object escapes into a slice
			// whose owner inherits the release obligation.
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" && len(x.Args) > 1 {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					for _, a := range x.Args[1:] {
						if exprUsesObject(info, a, obj) {
							released = true
							return false
						}
					}
				}
			}
			if callee := s.lookupLocked(info, x); callee != nil {
				for i, a := range x.Args {
					if i < len(callee.ReleasesParams) && callee.ReleasesParams[i] && isObj(info, a, obj) {
						released = true
						return false
					}
				}
			}
		case *ast.AssignStmt:
			// obj stored through a selector, index, or composite on the
			// LHS target, or appended into a field slice.
			rhsUses := false
			for _, r := range x.Rhs {
				if exprUsesObject(info, r, obj) {
					rhsUses = true
				}
			}
			if rhsUses {
				for _, l := range x.Lhs {
					switch ast.Unparen(l).(type) {
					case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
						released = true
						return false
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if exprUsesObject(info, r, obj) {
					released = true
					return false
				}
			}
		case *ast.SendStmt:
			if exprUsesObject(info, x.Value, obj) {
				released = true
				return false
			}
		case *ast.CompositeLit:
			for _, e := range x.Elts {
				if exprUsesObject(info, e, obj) {
					released = true
					return false
				}
			}
		}
		return true
	})
	return released
}

// isObj reports e resolving exactly to obj.
func isObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.ObjectOf(id) == obj
}

// exprUsesObject reports any identifier inside e resolving to obj.
func exprUsesObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// usesObjectIn reports any identifier inside node resolving to obj.
func usesObjectIn(info *types.Info, node ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// lookupLocked resolves a call's summary (exact key, then seed table).
// Callers must hold s.mu (read or write).
func (s *Summaries) lookupLocked(info *types.Info, call *ast.CallExpr) *FuncSummary {
	f := staticCallee(info, call)
	if f == nil {
		return nil
	}
	if sm, ok := s.funcs[keyOfFunc(f)]; ok {
		return sm.sum
	}
	pkg := ""
	if f.Pkg() != nil {
		pkg = f.Pkg().Path()
	}
	recv := ""
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv = recvTypeName(sig.Recv().Type())
	}
	for i := range seedTable {
		sd := &seedTable[i]
		if sd.name == f.Name() && sd.recv == recv && pathMatches(pkg, sd.pkg) {
			return &sd.sum
		}
	}
	return nil
}

// ForCall resolves the summary of a call's static callee (nil when
// unresolvable or unanalyzed).
func (s *Summaries) ForCall(info *types.Info, call *ast.CallExpr) *FuncSummary {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lookupLocked(info, call)
}

// AnyWaitsOn reports whether any analyzed function waits on the
// WaitGroup field key ("Type.field").
func (s *Summaries) AnyWaitsOn(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, byKey := range s.pkgWgWaits {
		if byKey[key] {
			return true
		}
	}
	return false
}

// AnyReceivesChan reports whether any analyzed function receives from
// (or ranges over) the channel field key.
func (s *Summaries) AnyReceivesChan(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, byKey := range s.pkgChanRecvs {
		if byKey[key] {
			return true
		}
	}
	return false
}

// ReleasesIn reports whether the statement transfers ownership of obj
// (closes, stores, returns, sends, or delegates it) — the release
// predicate the lifecycle analyzers run over CFG paths. Compound
// statements are inspected shallowly (see shallowNode).
func (s *Summaries) ReleasesIn(info *types.Info, stmt ast.Stmt, obj types.Object) bool {
	n := shallowNode(stmt)
	if n == nil {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.releasesObjLocked(info, n, obj)
}
