package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ctxLoopPkgs are the packages whose hot loops must stay cancellable:
// everything the query server's per-query deadline flows through.
var ctxLoopPkgs = []string{
	"xst/internal/algebra",
	"xst/internal/xsp",
	"xst/internal/xlang",
	"xst/internal/exec",
	"xst/internal/fed",
	"xst/internal/trace",
	"xst/internal/dist",
	"xst/internal/index",
}

// CtxLoopAnalyzer keeps the deadline guarantees from the serving layer
// from rotting as the algebra grows. In internal/{algebra,xsp,xlang,exec,fed}
// it enforces two rules:
//
//  1. Inside any function that receives a context.Context, a loop ranging
//     over set members ([]core.Member, []core.Value, []table.Row) must
//     reference the context somewhere in its body — a ctx.Err() poll (the
//     batched steps%N pattern counts) or delegation to a ctx-taking
//     callee. Loops inside function literals are exempt: callbacks run
//     under their caller's polling regime.
//
//  2. An exported non-Ctx function with a Ctx-suffixed sibling must be a
//     pure delegation wrapper — context.Background() plus the FooCtx
//     call and nothing else — and context.Background()/TODO() must not
//     appear anywhere else in these packages. Any real work in a wrapper
//     is work a deadline can never reach.
var CtxLoopAnalyzer = &Analyzer{
	Name: "ctxloop",
	Doc:  "flags member loops without a cancellation check in ctx-taking functions, and non-Ctx wrappers that do more than delegate",
	Run:  runCtxLoop,
}

func runCtxLoop(pass *Pass) error {
	if !pathMatches(pass.Pkg.Path(), ctxLoopPkgs...) {
		return nil
	}

	// Index declared functions by (receiver, name) so wrappers can find
	// their Ctx siblings across the package's files.
	decls := map[string]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok {
				decls[recvKey(fn)+"."+fn.Name.Name] = fn
			}
		}
	}

	// validWrappers collects the bodies in which context.Background() is
	// sanctioned.
	validWrappers := map[*ast.FuncDecl]bool{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			name := fn.Name.Name
			if !fn.Name.IsExported() || strings.HasSuffix(name, "Ctx") {
				continue
			}
			sibling, ok := decls[recvKey(fn)+"."+name+"Ctx"]
			if !ok {
				continue
			}
			if pass.isPureDelegation(fn, name+"Ctx") {
				validWrappers[fn] = true
			} else {
				pass.Reportf(fn.Pos(),
					"exported wrapper %s must only delegate to %s (declared at %s); any other work is unreachable by a deadline",
					name, name+"Ctx", pass.Fset.Position(sibling.Pos()))
			}
		}
	}

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if ctxObj := ctxParam(pass, fn); ctxObj != nil {
				pass.checkMemberLoops(fn.Body, ctxObj)
			}
			if !validWrappers[fn] {
				pass.checkBackground(fn)
			}
		}
	}
	return nil
}

// recvKey names a method's receiver base type ("" for plain functions).
func recvKey(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// ctxParam returns the context.Context parameter's object, if any.
func ctxParam(pass *Pass, fn *ast.FuncDecl) types.Object {
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.Info.ObjectOf(name)
			if obj != nil && namedIn(obj.Type(), "Context", "context") {
				return obj
			}
		}
	}
	return nil
}

// checkMemberLoops walks body (skipping function literals) and reports
// member-ranging loops that never touch ctx.
func (p *Pass) checkMemberLoops(body *ast.BlockStmt, ctxObj types.Object) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !p.rangesOverMembers(rng.X) {
			return true
		}
		if !p.usesObject(rng.Body, ctxObj) {
			p.Reportf(rng.Pos(),
				"loop over set members in a context-carrying function has no cancellation check; poll %s.Err() (batch with steps%%N if hot)",
				ctxObj.Name())
		}
		return true
	})
}

// rangesOverMembers reports whether e has a set-member element type.
func (p *Pass) rangesOverMembers(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	el := sl.Elem()
	return namedIn(el, "Member", corePkg...) ||
		coreValueType(el) ||
		namedIn(el, "Row", "xst/internal/table")
}

// usesObject reports whether any identifier in n resolves to obj.
func (p *Pass) usesObject(n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// isPureDelegation accepts exactly two wrapper shapes:
//
//	return FooCtx(context.Background(), args…)
//
//	x, _ := FooCtx(context.Background(), args…)
//	return x
func (p *Pass) isPureDelegation(fn *ast.FuncDecl, ctxName string) bool {
	stmts := fn.Body.List
	switch len(stmts) {
	case 1:
		ret, ok := stmts[0].(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return false
		}
		call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr)
		return ok && p.isDelegationCall(call, ctxName)
	case 2:
		asg, ok := stmts[0].(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 {
			return false
		}
		call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
		if !ok || !p.isDelegationCall(call, ctxName) {
			return false
		}
		ret, ok := stmts[1].(*ast.ReturnStmt)
		if !ok {
			return false
		}
		for _, r := range ret.Results {
			if _, ok := ast.Unparen(r).(*ast.Ident); !ok {
				return false
			}
		}
		return true
	}
	return false
}

// isDelegationCall reports whether call is ctxName(context.Background()|
// context.TODO(), …) — possibly through a receiver (p.RunCtx(...)).
func (p *Pass) isDelegationCall(call *ast.CallExpr, ctxName string) bool {
	_, name := calleeName(call)
	if name != ctxName || len(call.Args) == 0 {
		return false
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	return ok && isPkgCall(p.Info, first, "context", "Background", "TODO")
}

// checkBackground flags context.Background()/TODO() outside sanctioned
// delegation wrappers.
func (p *Pass) checkBackground(fn *ast.FuncDecl) {
	if fn.Body == nil {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok && isPkgCall(p.Info, call, "context", "Background", "TODO") {
			p.Reportf(call.Pos(),
				"context.Background() outside a pure delegation wrapper; accept and thread the caller's context instead")
		}
		return true
	})
}
