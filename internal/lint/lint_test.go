package lint_test

import (
	"sync"
	"testing"

	"xst/internal/lint"
	"xst/internal/lint/linttest"
)

// sharedLoader runs one `go list -export` for the whole module; every
// fixture test reuses it.
var sharedLoader = sync.OnceValues(func() (*lint.Loader, error) {
	return lint.NewLoader("../..", "./...")
})

func loader(t *testing.T) *lint.Loader {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	return l
}

func TestSetMutateClients(t *testing.T) {
	linttest.Run(t, loader(t), lint.SetMutateAnalyzer, "clients")
}

func TestSetMutateOwnership(t *testing.T) {
	linttest.Run(t, loader(t), lint.SetMutateAnalyzer, "core")
}

func TestCtxLoop(t *testing.T) {
	linttest.Run(t, loader(t), lint.CtxLoopAnalyzer, "algebra")
}

func TestCtxLoopExec(t *testing.T) {
	linttest.Run(t, loader(t), lint.CtxLoopAnalyzer, "exec")
}

func TestValueEq(t *testing.T) {
	linttest.Run(t, loader(t), lint.ValueEqAnalyzer, "valueeq")
}

func TestLockHeld(t *testing.T) {
	linttest.Run(t, loader(t), lint.LockHeldAnalyzer, "server")
}

func TestAtomicMix(t *testing.T) {
	linttest.Run(t, loader(t), lint.AtomicMixAnalyzer, "atomicmix")
}

func TestSpanClose(t *testing.T) {
	linttest.Run(t, loader(t), lint.SpanCloseAnalyzer, "spanclose")
}

// TestValueEqSuggestedFix pins the ==/!= rewrite the -fix driver applies.
func TestValueEqSuggestedFix(t *testing.T) {
	var eq, neq bool
	for _, f := range linttest.Findings(t, loader(t), lint.ValueEqAnalyzer, "valueeq") {
		if len(f.Edits) != 1 {
			continue
		}
		switch f.Edits[0].NewText {
		case "core.Equal(a, b)":
			eq = true
		case "!core.Equal(a, b)":
			neq = true
		}
	}
	if !eq || !neq {
		t.Errorf("expected core.Equal rewrites for both == and != in the valueeq fixture (eq=%v, neq=%v)", eq, neq)
	}
}

func TestCtxLoopFed(t *testing.T) {
	linttest.Run(t, loader(t), lint.CtxLoopAnalyzer, "fed")
}
