package lint_test

import (
	"path/filepath"
	"sync"
	"testing"

	"xst/internal/lint"
	"xst/internal/lint/linttest"
)

// sharedLoader runs one `go list -export` for the whole module; every
// fixture test reuses it.
var sharedLoader = sync.OnceValues(func() (*lint.Loader, error) {
	return lint.NewLoader("../..", "./...")
})

func loader(t *testing.T) *lint.Loader {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	return l
}

func TestSetMutateClients(t *testing.T) {
	linttest.Run(t, loader(t), lint.SetMutateAnalyzer, "clients")
}

func TestSetMutateOwnership(t *testing.T) {
	linttest.Run(t, loader(t), lint.SetMutateAnalyzer, "core")
}

func TestCtxLoop(t *testing.T) {
	linttest.Run(t, loader(t), lint.CtxLoopAnalyzer, "algebra")
}

func TestCtxLoopExec(t *testing.T) {
	linttest.Run(t, loader(t), lint.CtxLoopAnalyzer, "exec")
}

func TestValueEq(t *testing.T) {
	linttest.Run(t, loader(t), lint.ValueEqAnalyzer, "valueeq")
}

func TestLockHeld(t *testing.T) {
	linttest.Run(t, loader(t), lint.LockHeldAnalyzer, "server")
}

func TestAtomicMix(t *testing.T) {
	linttest.Run(t, loader(t), lint.AtomicMixAnalyzer, "atomicmix")
}

func TestSpanClose(t *testing.T) {
	linttest.Run(t, loader(t), lint.SpanCloseAnalyzer, "spanclose")
}

func TestSpanCloseFed(t *testing.T) {
	linttest.RunAs(t, loader(t), lint.SpanCloseAnalyzer, "spanfed", "fed")
}

func TestSpanCloseSysview(t *testing.T) {
	linttest.RunAs(t, loader(t), lint.SpanCloseAnalyzer, "spansys", "sysview")
}

// TestValueEqSuggestedFix pins the ==/!= rewrite the -fix driver applies.
func TestValueEqSuggestedFix(t *testing.T) {
	var eq, neq bool
	for _, f := range linttest.Findings(t, loader(t), lint.ValueEqAnalyzer, "valueeq") {
		if len(f.Edits) != 1 {
			continue
		}
		switch f.Edits[0].NewText {
		case "core.Equal(a, b)":
			eq = true
		case "!core.Equal(a, b)":
			neq = true
		}
	}
	if !eq || !neq {
		t.Errorf("expected core.Equal rewrites for both == and != in the valueeq fixture (eq=%v, neq=%v)", eq, neq)
	}
}

func TestCtxLoopFed(t *testing.T) {
	linttest.Run(t, loader(t), lint.CtxLoopAnalyzer, "fed")
}

func TestGoLeak(t *testing.T) {
	linttest.RunAs(t, loader(t), lint.GoLeakAnalyzer, "goleak", "exec")
}

func TestSendGuard(t *testing.T) {
	linttest.RunAs(t, loader(t), lint.SendGuardAnalyzer, "sendguard", "exec")
}

func TestOpClose(t *testing.T) {
	linttest.RunAs(t, loader(t), lint.OpCloseAnalyzer, "opclose", "plan")
}

func TestConnClose(t *testing.T) {
	linttest.RunAs(t, loader(t), lint.ConnCloseAnalyzer, "connclose", "fed")
}

func TestTxnEnd(t *testing.T) {
	linttest.RunAs(t, loader(t), lint.TxnEndAnalyzer, "txnend", "catalog")
}

func TestLockHeldTrace(t *testing.T) {
	linttest.Run(t, loader(t), lint.LockHeldAnalyzer, "trace")
}

func TestCtxLoopDist(t *testing.T) {
	linttest.Run(t, loader(t), lint.CtxLoopAnalyzer, "dist")
}

func TestCtxLoopIndex(t *testing.T) {
	linttest.Run(t, loader(t), lint.CtxLoopAnalyzer, "index")
}

func TestOpCloseIndex(t *testing.T) {
	linttest.RunAs(t, loader(t), lint.OpCloseAnalyzer, "indexop", "index")
}

// TestStaleWaiver pins the waiver audit: a live //lint:ignore suppresses
// its diagnostic silently, a stale one is reported with a deletion fix.
func TestStaleWaiver(t *testing.T) {
	l := loader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "waiver"), "server")
	if err != nil {
		t.Fatalf("loading waiver fixture: %v", err)
	}
	findings, err := lint.Run(pkg, []*lint.Analyzer{lint.LockHeldAnalyzer})
	if err != nil {
		t.Fatalf("running lockheld: %v", err)
	}
	var stale []lint.Finding
	for _, f := range findings {
		switch f.Analyzer {
		case "staleignore":
			stale = append(stale, f)
		case "lockheld":
			t.Errorf("live waiver failed to suppress: %v", f)
		default:
			t.Errorf("unexpected finding: %v", f)
		}
	}
	if len(stale) != 1 {
		t.Fatalf("want exactly one stale-waiver finding, got %d: %v", len(stale), stale)
	}
	f := stale[0]
	if len(f.Edits) != 1 || f.Edits[0].NewText != "" {
		t.Errorf("stale waiver should carry a deletion edit, got %+v", f.Edits)
	}
}

// TestRunnerConcurrent exercises the shared summary store and timing
// registry from concurrent Run calls — the cmd/xstvet shape — and is
// meaningful mainly under -race.
func TestRunnerConcurrent(t *testing.T) {
	l := loader(t)
	fixtures := []struct{ dir, as string }{
		{"goleak", "exec"},
		{"opclose", "plan"},
		{"connclose", "fed"},
		{"trace", "trace"},
		{"dist", "dist"},
	}
	r := lint.NewRunner(lint.All())
	var pkgs []*lint.LoadedPackage
	for _, fx := range fixtures {
		pkg, err := l.LoadDir(filepath.Join("testdata", "src", fx.dir), fx.as)
		if err != nil {
			t.Fatalf("loading %s fixture: %v", fx.dir, err)
		}
		pkgs = append(pkgs, pkg)
		r.AddPackage(pkg)
	}
	r.Finalize()

	want := make([]int, len(pkgs))
	for i, pkg := range pkgs {
		fs, err := r.Run(pkg)
		if err != nil {
			t.Fatalf("sequential run of %s: %v", fixtures[i].dir, err)
		}
		want[i] = len(fs)
	}

	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fs, err := r.Run(pkg)
			if err != nil {
				t.Errorf("concurrent run of %s: %v", fixtures[i].dir, err)
				return
			}
			if len(fs) != want[i] {
				t.Errorf("concurrent run of %s: got %d findings, want %d", fixtures[i].dir, len(fs), want[i])
			}
		}()
	}
	wg.Wait()

	if tm := r.Timings(); len(tm) != len(lint.All()) {
		t.Errorf("timings cover %d analyzers, want %d", len(tm), len(lint.All()))
	}
}
