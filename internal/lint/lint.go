// Package lint is xstvet's analysis framework: a deliberately small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, Diagnostic, suggested fixes) plus the five
// analyzers that enforce the algebra's invariants:
//
//	setmutate — canonical slices handed out by (*core.Set).Members and
//	            friends are never mutated or retained, and slices passed
//	            to ownSet/NewSet inside internal/core are not touched
//	            after the ownership transfer.
//	ctxloop   — member loops inside context-carrying functions in
//	            internal/{algebra,xsp,xlang} poll cancellation, and the
//	            non-Ctx convenience wrappers are pure delegations.
//	valueeq   — core.Value operands are compared with core.Equal (or a
//	            digest), never ==/!=/switch, and never used as map keys.
//	lockheld  — no channel sends, net.Conn writes, or xlang.Eval* calls
//	            while a sync.Mutex/RWMutex is held in
//	            internal/{server,catalog,store}.
//	atomicmix — struct fields accessed through sync/atomic are never
//	            also read or written plainly.
//	spanclose — trace spans (trace.NewRoot / Span.Start) are ended on
//	            every return path, so span trees never silently
//	            truncate.
//
// The theory needs these mechanically: Childs' compatibility results
// assume set objects behave like values — canonical, immutable,
// structurally comparable — and the serving layer's latency story
// assumes every hot loop is abortable. A human code-review convention
// cannot keep either true as the codebase grows; a required CI gate can.
//
// Violations that are intentional (e.g. the pointer-identity fast path
// inside core.Equal itself) are waived with a directive comment on the
// same or the preceding line:
//
//	//lint:ignore <analyzer> <reason>
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in reports and ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run reports violations found in the pass's package.
	Run func(*Pass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diagnostics []Diagnostic
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	Fixes   []SuggestedFix
}

// SuggestedFix is an optional safe rewrite for a diagnostic.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// TextEdit replaces the source range [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Report records a violation with optional suggested fixes.
func (p *Pass) Report(d Diagnostic) { p.diagnostics = append(p.diagnostics, d) }

// All returns the six invariant analyzers in report order.
func All() []*Analyzer {
	return []*Analyzer{
		SetMutateAnalyzer,
		CtxLoopAnalyzer,
		ValueEqAnalyzer,
		LockHeldAnalyzer,
		AtomicMixAnalyzer,
		SpanCloseAnalyzer,
	}
}

// Finding is one diagnostic resolved to a file position. Edits carries
// the first suggested fix's edits resolved to byte offsets, ready for a
// driver to apply.
type Finding struct {
	Analyzer   string
	Position   token.Position
	Diagnostic Diagnostic
	Edits      []ResolvedEdit
}

// ResolvedEdit is a TextEdit resolved to byte offsets in a file.
type ResolvedEdit struct {
	Filename   string
	Start, End int
	NewText    string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Diagnostic.Message, f.Analyzer)
}

// Run applies the analyzers to a loaded package and returns the surviving
// findings sorted by position, with //lint:ignore-waived ones removed.
func Run(pkg *LoadedPackage, analyzers []*Analyzer) ([]Finding, error) {
	ignores := collectIgnores(pkg.Fset, pkg.Files)
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range pass.diagnostics {
			position := pkg.Fset.Position(d.Pos)
			if ignores.covers(a.Name, position) {
				continue
			}
			f := Finding{Analyzer: a.Name, Position: position, Diagnostic: d}
			if len(d.Fixes) > 0 {
				for _, e := range d.Fixes[0].Edits {
					start := pkg.Fset.Position(e.Pos)
					end := pkg.Fset.Position(e.End)
					if start.Filename == "" || start.Filename != end.Filename {
						continue
					}
					f.Edits = append(f.Edits, ResolvedEdit{
						Filename: start.Filename,
						Start:    start.Offset,
						End:      end.Offset,
						NewText:  e.NewText,
					})
				}
			}
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Position, out[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// ignoreRx matches waiver directives: //lint:ignore <name> <reason>.
var ignoreRx = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s+\S`)

// ignoreSet maps file → line → analyzer names waived on that line.
type ignoreSet map[string]map[int][]string

func (s ignoreSet) covers(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	for _, l := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[l] {
			if name == analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}

func collectIgnores(fset *token.FileSet, files []*ast.File) ignoreSet {
	out := ignoreSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				byLine := out[p.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					out[p.Filename] = byLine
				}
				byLine[p.Line] = append(byLine[p.Line], m[1])
			}
		}
	}
	return out
}

// --- shared type helpers -------------------------------------------------

// pathMatches reports whether a package path names one of the targets.
// Besides an exact match, a bare fixture path like "algebra" matches the
// target "xst/internal/algebra", so the analyzers behave identically on
// the real tree and on testdata packages.
func pathMatches(pkgPath string, targets ...string) bool {
	for _, t := range targets {
		if pkgPath == t || strings.HasSuffix(t, "/"+pkgPath) {
			return true
		}
	}
	return false
}

// namedIn reports whether t (after pointer indirection) is the named type
// pkgTarget.name, using the same suffix matching as pathMatches.
func namedIn(t types.Type, name string, pkgTargets ...string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return pathMatches(obj.Pkg().Path(), pkgTargets...)
}

// coreValueType reports whether t is the core.Value interface.
func coreValueType(t types.Type) bool {
	return namedIn(t, "Value", "xst/internal/core")
}

// coreSetPtr reports whether t is *core.Set (or core.Set).
func coreSetPtr(t types.Type) bool {
	return namedIn(t, "Set", "xst/internal/core")
}

// calleeName splits a call into (receiver expression, bare function or
// method name). The receiver is nil for plain function calls.
func calleeName(call *ast.CallExpr) (recv ast.Expr, name string) {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return nil, fn.Name
	case *ast.SelectorExpr:
		return fn.X, fn.Sel.Name
	}
	return nil, ""
}

// isPkgCall reports whether the call is a selector call pkg.name where pkg
// resolves to the package with the given path (e.g. "sort", "sync/atomic").
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return true
		}
	}
	return false
}
