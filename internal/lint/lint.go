// Package lint is xstvet's analysis framework: a deliberately small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, Diagnostic, suggested fixes), a lightweight
// intraprocedural CFG (cfg.go) with a summary-based interprocedural
// layer (summary.go), and the ten analyzers that enforce the algebra's
// invariants:
//
//	setmutate — canonical slices handed out by (*core.Set).Members and
//	            friends are never mutated or retained, and slices passed
//	            to ownSet/NewSet inside internal/core are not touched
//	            after the ownership transfer.
//	ctxloop   — member loops inside context-carrying functions in
//	            internal/{algebra,xsp,xlang,exec,fed,trace,dist} poll
//	            cancellation, and the non-Ctx convenience wrappers are
//	            pure delegations.
//	valueeq   — core.Value operands are compared with core.Equal (or a
//	            digest), never ==/!=/switch, and never used as map keys.
//	lockheld  — no channel sends, net.Conn writes, xlang.Eval* calls, or
//	            calls to (transitively) blocking functions while a
//	            sync.Mutex/RWMutex is held in
//	            internal/{server,catalog,store,fed,trace,dist}.
//	atomicmix — struct fields accessed through sync/atomic are never
//	            also read or written plainly.
//	spanclose — trace spans (trace.NewRoot / Span.Start) are ended on
//	            every return path, so span trees never silently
//	            truncate.
//	goleak    — every goroutine in internal/{exec,fed,server} is joined
//	            (WaitGroup, channel drain) or bounded by a ctx-done
//	            select; Gather's drain+join discipline as a contract.
//	opclose   — locally-created exec.Operators are Closed or released on
//	            every return path, including compile-error unwinds.
//	connclose — net.Conn / fed site connections are released on every
//	            path, never abandoned by retry loops, and error-path
//	            teardown of receiver-held conns is symmetric.
//	sendguard — no bare channel send in a worker goroutine without a
//	            ctx-done select arm.
//
// The theory needs these mechanically: Childs' compatibility results
// assume set objects behave like values — canonical, immutable,
// structurally comparable — and the serving layer's latency story
// assumes every hot loop is abortable and every composed operation's
// resources die with their query. A human code-review convention cannot
// keep either true as the codebase grows; a required CI gate can.
//
// Violations that are intentional (e.g. the pointer-identity fast path
// inside core.Equal itself) are waived with a directive comment on the
// same or the preceding line:
//
//	//lint:ignore <analyzer> <reason>
//
// A waiver that suppresses nothing is itself reported (as analyzer
// "staleignore", with a suggested fix deleting the comment) whenever
// its analyzer runs, so waivers cannot outlive the violation they
// excused.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in reports and ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run reports violations found in the pass's package.
	Run func(*Pass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Summaries is the interprocedural fact store. Run builds a
	// single-package store on the fly; a Runner shares one across the
	// whole module so cross-package facts (exec.Stream closes its
	// operator) reach every pass.
	Summaries *Summaries

	diagnostics []Diagnostic
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	Fixes   []SuggestedFix
}

// SuggestedFix is an optional safe rewrite for a diagnostic.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// TextEdit replaces the source range [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Report records a violation with optional suggested fixes.
func (p *Pass) Report(d Diagnostic) { p.diagnostics = append(p.diagnostics, d) }

// All returns the eleven invariant analyzers in report order.
func All() []*Analyzer {
	return []*Analyzer{
		SetMutateAnalyzer,
		CtxLoopAnalyzer,
		ValueEqAnalyzer,
		LockHeldAnalyzer,
		AtomicMixAnalyzer,
		SpanCloseAnalyzer,
		GoLeakAnalyzer,
		OpCloseAnalyzer,
		ConnCloseAnalyzer,
		SendGuardAnalyzer,
		TxnEndAnalyzer,
	}
}

// Finding is one diagnostic resolved to a file position. Edits carries
// the first suggested fix's edits resolved to byte offsets, ready for a
// driver to apply.
type Finding struct {
	Analyzer   string
	Position   token.Position
	Diagnostic Diagnostic
	Edits      []ResolvedEdit
}

// ResolvedEdit is a TextEdit resolved to byte offsets in a file.
type ResolvedEdit struct {
	Filename   string
	Start, End int
	NewText    string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Diagnostic.Message, f.Analyzer)
}

// Run applies the analyzers to a loaded package and returns the surviving
// findings sorted by position, with //lint:ignore-waived ones removed.
// Interprocedural summaries are built from this one package (plus the
// seed table); use a Runner for module-wide facts.
func Run(pkg *LoadedPackage, analyzers []*Analyzer) ([]Finding, error) {
	sums := NewSummaries()
	sums.AddPackage(pkg)
	sums.Finalize()
	return runWith(pkg, analyzers, sums, nil)
}

// Runner shares one interprocedural summary store and per-analyzer
// timing across every package of a run — the cmd/xstvet shape: add all
// packages, Finalize, then Run each.
type Runner struct {
	analyzers []*Analyzer
	sums      *Summaries

	mu      sync.Mutex
	timings map[string]time.Duration
}

// NewRunner prepares a run of the given analyzers.
func NewRunner(analyzers []*Analyzer) *Runner {
	return &Runner{analyzers: analyzers, sums: NewSummaries(), timings: map[string]time.Duration{}}
}

// AddPackage feeds one loaded package's functions into the summary
// store. Call for every package before the first Run.
func (r *Runner) AddPackage(pkg *LoadedPackage) { r.sums.AddPackage(pkg) }

// Finalize propagates transitive summary facts; call once after the
// last AddPackage.
func (r *Runner) Finalize() { r.sums.Finalize() }

// Run applies the runner's analyzers to one package. Safe for
// concurrent use across distinct packages once Finalize has run.
func (r *Runner) Run(pkg *LoadedPackage) ([]Finding, error) {
	return runWith(pkg, r.analyzers, r.sums, r.addTiming)
}

func (r *Runner) addTiming(name string, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.timings[name] += d
}

// Timings returns cumulative wall time per analyzer across all Run
// calls so far.
func (r *Runner) Timings() map[string]time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]time.Duration, len(r.timings))
	for k, v := range r.timings {
		out[k] = v
	}
	return out
}

// runWith is the shared per-package driver: run each analyzer, filter
// waived diagnostics (marking the directives that earned their keep),
// then report any stale waiver for an analyzer that ran.
func runWith(pkg *LoadedPackage, analyzers []*Analyzer, sums *Summaries, timed func(string, time.Duration)) ([]Finding, error) {
	ignores := collectIgnores(pkg.Fset, pkg.Files)
	var out []Finding
	for _, a := range analyzers {
		start := time.Now()
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			Info:      pkg.Info,
			Summaries: sums,
		}
		err := a.Run(pass)
		if timed != nil {
			timed(a.Name, time.Since(start))
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range pass.diagnostics {
			position := pkg.Fset.Position(d.Pos)
			if ignores.covers(a.Name, position) {
				continue
			}
			f := Finding{Analyzer: a.Name, Position: position, Diagnostic: d}
			if len(d.Fixes) > 0 {
				for _, e := range d.Fixes[0].Edits {
					start := pkg.Fset.Position(e.Pos)
					end := pkg.Fset.Position(e.End)
					if start.Filename == "" || start.Filename != end.Filename {
						continue
					}
					f.Edits = append(f.Edits, ResolvedEdit{
						Filename: start.Filename,
						Start:    start.Offset,
						End:      end.Offset,
						NewText:  e.NewText,
					})
				}
			}
			out = append(out, f)
		}
	}
	out = append(out, staleWaivers(pkg, analyzers, ignores)...)
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Position, out[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// staleWaivers reports //lint:ignore directives that suppressed nothing.
// Only directives naming an analyzer that actually ran are assessed
// ("all" waivers only under the full suite), so a single-analyzer
// fixture run never misjudges another analyzer's waiver. Each finding
// carries a fix deleting the directive comment.
func staleWaivers(pkg *LoadedPackage, analyzers []*Analyzer, ignores ignoreSet) []Finding {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	fullSuite := true
	for _, a := range All() {
		if !ran[a.Name] {
			fullSuite = false
			break
		}
	}
	var out []Finding
	for _, byLine := range ignores {
		for _, dirs := range byLine {
			for _, d := range dirs {
				if d.used {
					continue
				}
				if !ran[d.name] && !(d.name == "all" && fullSuite) {
					continue
				}
				out = append(out, Finding{
					Analyzer: "staleignore",
					Position: pkg.Fset.Position(d.pos),
					Diagnostic: Diagnostic{
						Pos:     d.pos,
						Message: fmt.Sprintf("stale //lint:ignore %s — no %s diagnostic here to suppress; delete the waiver", d.name, d.name),
					},
					Edits: []ResolvedEdit{{
						Filename: pkg.Fset.Position(d.pos).Filename,
						Start:    pkg.Fset.Position(d.pos).Offset,
						End:      pkg.Fset.Position(d.end).Offset,
						NewText:  "",
					}},
				})
			}
		}
	}
	return out
}

// ignoreRx matches waiver directives: //lint:ignore <name> <reason>.
var ignoreRx = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s+\S`)

// ignoreDirective is one waiver comment; used tracks whether it
// suppressed at least one diagnostic this run (stale otherwise).
type ignoreDirective struct {
	name     string
	pos, end token.Pos
	used     bool
}

// ignoreSet maps file → line → waiver directives on that line.
type ignoreSet map[string]map[int][]*ignoreDirective

// covers reports whether a diagnostic at pos is waived for the
// analyzer, marking the earning directive as used.
func (s ignoreSet) covers(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	covered := false
	for _, l := range []int{pos.Line, pos.Line - 1} {
		for _, d := range lines[l] {
			if d.name == analyzer || d.name == "all" {
				d.used = true
				covered = true
			}
		}
	}
	return covered
}

func collectIgnores(fset *token.FileSet, files []*ast.File) ignoreSet {
	out := ignoreSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				byLine := out[p.Filename]
				if byLine == nil {
					byLine = map[int][]*ignoreDirective{}
					out[p.Filename] = byLine
				}
				byLine[p.Line] = append(byLine[p.Line], &ignoreDirective{
					name: m[1], pos: c.Pos(), end: c.End(),
				})
			}
		}
	}
	return out
}

// --- shared type helpers -------------------------------------------------

// pathMatches reports whether a package path names one of the targets.
// Besides an exact match, a bare fixture path like "algebra" matches the
// target "xst/internal/algebra", so the analyzers behave identically on
// the real tree and on testdata packages.
func pathMatches(pkgPath string, targets ...string) bool {
	for _, t := range targets {
		if pkgPath == t || strings.HasSuffix(t, "/"+pkgPath) {
			return true
		}
	}
	return false
}

// namedIn reports whether t (after pointer indirection) is the named type
// pkgTarget.name, using the same suffix matching as pathMatches.
func namedIn(t types.Type, name string, pkgTargets ...string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return pathMatches(obj.Pkg().Path(), pkgTargets...)
}

// coreValueType reports whether t is the core.Value interface.
func coreValueType(t types.Type) bool {
	return namedIn(t, "Value", "xst/internal/core")
}

// coreSetPtr reports whether t is *core.Set (or core.Set).
func coreSetPtr(t types.Type) bool {
	return namedIn(t, "Set", "xst/internal/core")
}

// calleeName splits a call into (receiver expression, bare function or
// method name). The receiver is nil for plain function calls.
func calleeName(call *ast.CallExpr) (recv ast.Expr, name string) {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return nil, fn.Name
	case *ast.SelectorExpr:
		return fn.X, fn.Sel.Name
	}
	return nil, ""
}

// isPkgCall reports whether the call is a selector call pkg.name where pkg
// resolves to the package with the given path (e.g. "sort", "sync/atomic").
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return true
		}
	}
	return false
}
