package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanCloseAnalyzer enforces the tracer's lifecycle contract: every
// span obtained from trace.NewRoot, trace.NewRootTrace or
// (*trace.Span).Start is ended — End, EndErr, FinishNs or SetOpStats —
// on every return path. A span that is never ended reports a zero
// duration and silently truncates the trees the slow-query log,
// `.trace` and the distributed-trace wire format serve, so the leak is
// invisible at runtime; this catches it statically.
//
// The check is local to one function: a span whose value escapes
// (returned, passed to a call, stored anywhere other than its defining
// variable) is the callee's or owner's responsibility and is exempt.
// For a non-escaping span the analyzer flags three shapes:
//
//   - the result of Start/NewRoot discarded outright;
//   - a span variable with no ending call at all;
//   - a return statement between Start and the first non-deferred
//     ending call — a path that leaves the span open. `defer sp.End()`
//     (directly or inside a deferred closure) covers every path.
var SpanCloseAnalyzer = &Analyzer{
	Name: "spanclose",
	Doc:  "flags trace spans (NewRoot/Start) not ended on every return path",
	Run:  runSpanClose,
}

// spanEnders are the methods that close a span: End and EndErr measure
// wall time (EndErr noting the error that ended fallible work, the
// federation attempt-span shape), FinishNs and SetOpStats stamp
// synthetic durations.
var spanEnders = map[string]bool{"End": true, "EndErr": true, "FinishNs": true, "SetOpStats": true}

// spanUse records everything one function does with one span variable.
type spanUse struct {
	name     string    // variable name, for messages
	start    token.Pos // the Start/NewRoot call
	fn       ast.Node  // innermost enclosing FuncDecl/FuncLit of the start
	ends     []token.Pos
	deferred bool // some ending call runs under a defer
	escapes  bool
}

func runSpanClose(pass *Pass) error {
	for _, f := range pass.Files {
		parents := parentMap(f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSpanClose(pass, fd, parents)
		}
	}
	return nil
}

func checkSpanClose(pass *Pass, fd *ast.FuncDecl, parents map[ast.Node]ast.Node) {
	uses := map[types.Object]*spanUse{}

	// Pass 1: span-creating calls — tracked when bound to a fresh
	// variable, reported when discarded.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSpanMaker(pass, call) {
			return true
		}
		_, name := calleeName(call)
		switch p := parents[call].(type) {
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "result of %s discarded; the span is never ended", name)
		case *ast.AssignStmt:
			obj := assignedObject(pass, p, call)
			if obj == nil {
				pass.Reportf(call.Pos(), "result of %s discarded; the span is never ended", name)
				return true
			}
			uses[obj] = &spanUse{
				name:  obj.Name(),
				start: call.Pos(),
				fn:    enclosingFunc(parents, call),
			}
		}
		return true
	})
	if len(uses) == 0 {
		return
	}

	// Pass 2: classify every other appearance of the tracked variables —
	// ending calls (deferred or not), benign counter methods, escapes.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		u, tracked := uses[obj]
		if !tracked {
			return true
		}
		sel, isRecv := parents[id].(*ast.SelectorExpr)
		if isRecv && sel.X == id {
			if call, ok := parents[sel].(*ast.CallExpr); ok && call.Fun == sel {
				if spanEnders[sel.Sel.Name] {
					u.ends = append(u.ends, call.Pos())
					if underDefer(parents, call) {
						u.deferred = true
					}
				}
				// Any other method (AddRows, SetNote, …) is a benign use.
				return true
			}
		}
		// Being the target of a (re)assignment overwrites the variable;
		// it does not hand the span value anywhere.
		if as, ok := parents[id].(*ast.AssignStmt); ok {
			for _, l := range as.Lhs {
				if l == id {
					return true
				}
			}
		}
		// Receiver positions and the defining assignment aside, the
		// variable leaving the function's hands makes the span someone
		// else's to close.
		if _, def := pass.Info.Defs[id]; !def {
			u.escapes = true
		}
		return true
	})

	for _, u := range uses {
		if u.escapes {
			continue
		}
		if len(u.ends) == 0 {
			pass.Reportf(u.start, "span %s is started but never ended (End/EndErr/FinishNs/SetOpStats)", u.name)
			continue
		}
		if u.deferred {
			continue
		}
		first := u.ends[0]
		for _, e := range u.ends {
			if e < first {
				first = e
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || ret.Pos() <= u.start || ret.Pos() >= first {
				return true
			}
			if enclosingFunc(parents, ret) != u.fn {
				return true
			}
			pass.Reportf(ret.Pos(), "return leaves span %s open; defer %s.End() or end it before returning", u.name, u.name)
			return true
		})
	}
}

// isSpanMaker reports whether call creates a *trace.Span: trace.NewRoot,
// trace.NewRootTrace (a site joining a distributed trace) or the Start
// method. SpanOf merely looks up an existing span and is not a creation.
func isSpanMaker(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call]
	if !ok || !namedIn(tv.Type, "Span", "xst/internal/trace") {
		return false
	}
	_, name := calleeName(call)
	return name == "Start" || name == "NewRoot" || name == "NewRootTrace"
}

// assignedObject returns the variable object call is bound to in the
// assignment, or nil (blank identifier, multi-value mismatch).
func assignedObject(pass *Pass, as *ast.AssignStmt, call *ast.CallExpr) types.Object {
	for i, rhs := range as.Rhs {
		if ast.Unparen(rhs) != call || i >= len(as.Lhs) {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			return obj
		}
		return pass.Info.Uses[id]
	}
	return nil
}

// parentMap records each node's immediate parent within file.
func parentMap(file *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// underDefer reports whether n is anywhere inside a defer statement —
// directly (`defer sp.End()`) or in a deferred closure's body.
func underDefer(parents map[ast.Node]ast.Node, n ast.Node) bool {
	for p := parents[n]; p != nil; p = parents[p] {
		if _, ok := p.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// enclosingFunc returns the innermost FuncDecl or FuncLit containing n.
func enclosingFunc(parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	for p := parents[n]; p != nil; p = parents[p] {
		switch p.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return p
		}
	}
	return nil
}
