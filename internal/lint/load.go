package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// LoadedPackage is one type-checked package ready for analysis.
type LoadedPackage struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
}

// Loader resolves and type-checks packages without golang.org/x/tools:
// package metadata and compiled export data come from one
// `go list -deps -json -export` invocation, the listed module packages
// are re-parsed from source (so analyzers see syntax), and every import
// is satisfied from export data via the standard gc importer.
type Loader struct {
	Fset *token.FileSet

	dir  string
	meta map[string]*listPkg
	gc   types.Importer
}

// NewLoader runs `go list` in dir over the patterns (plus any extra
// import paths fixtures need) and prepares the importer.
func NewLoader(dir string, patterns ...string) (*Loader, error) {
	args := append([]string{"list", "-deps", "-e", "-json=ImportPath,Dir,Export,GoFiles,Standard,Module", "-export"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}
	l := &Loader{Fset: token.NewFileSet(), dir: dir, meta: map[string]*listPkg{}}
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		l.meta[p.ImportPath] = &p
	}
	l.gc = importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		m, ok := l.meta[path]
		if !ok || m.Export == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(m.Export)
	})
	return l, nil
}

// ModulePackages returns the non-test packages of module modPath among the
// listed ones, sorted by import path.
func (l *Loader) ModulePackages(modPath string) []string {
	var out []string
	for p, m := range l.meta {
		if m.Standard || m.Module == nil || m.Module.Path != modPath {
			continue
		}
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Import satisfies type-checker imports from export data.
func (l *Loader) Import(path string) (*types.Package, error) { return l.gc.Import(path) }

// LoadSource parses and type-checks one listed package from source.
func (l *Loader) LoadSource(path string) (*LoadedPackage, error) {
	m, ok := l.meta[path]
	if !ok {
		return nil, fmt.Errorf("lint: package %q not listed", path)
	}
	files := make([]string, len(m.GoFiles))
	for i, f := range m.GoFiles {
		files[i] = filepath.Join(m.Dir, f)
	}
	return l.check(path, m.Dir, files)
}

// LoadDir parses and type-checks every non-test .go file under dir as the
// package asPath — how test fixtures outside the module's package graph
// (testdata/src/...) are loaded.
func (l *Loader) LoadDir(dir, asPath string) (*LoadedPackage, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return l.check(asPath, dir, files)
}

func (l *Loader) check(path, dir string, filenames []string) (*LoadedPackage, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}
	return &LoadedPackage{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: pkg, Info: info}, nil
}
