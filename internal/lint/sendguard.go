package lint

import (
	"go/ast"
	"go/types"
)

// sendguardPkgs mirror goleak's scope: where producer goroutines live.
var sendguardPkgs = []string{
	"xst/internal/exec",
	"xst/internal/fed",
	"xst/internal/server",
}

// SendGuardAnalyzer keeps producers cancellable: inside a worker — a
// goroutine body, or a function directly called from one — a channel
// send must sit in a select with an escape arm (another comm case or a
// default), the `case ch <- v: case <-ctx.Done():` shape Gather's
// workers use. A bare send in a worker wedges forever once the consumer
// stops draining, which is exactly what happens after cancellation.
//
// Sends on channels made in the same function with a non-zero buffer
// are exempt: the sized-to-producers error-channel idiom cannot block.
// The check is one call deep by design — helpers called from workers
// are audited, the functions they call are their own callers'
// responsibility — so shared utilities (semaphore refills documented as
// never running under a worker's critical path) don't flood the report.
var SendGuardAnalyzer = &Analyzer{
	Name: "sendguard",
	Doc:  "flags bare channel sends in worker goroutines (and functions they call directly) lacking a ctx-done select arm",
	Run:  runSendGuard,
}

func runSendGuard(pass *Pass) error {
	if !pathMatches(pass.Pkg.Path(), sendguardPkgs...) {
		return nil
	}
	decls := packageDecls(pass)

	// Collect worker regions: every goroutine entry body, plus the
	// declarations of functions directly called from one.
	type region struct {
		body *ast.BlockStmt
		file *ast.File
	}
	var regions []region
	seenFuncs := map[types.Object]bool{}
	addCallees := func(body *ast.BlockStmt, file *ast.File) {
		inspectSyncNoLit(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fobj := staticCallee(pass.Info, call); fobj != nil && !seenFuncs[fobj] {
				if fd, ok := decls[fobj]; ok {
					seenFuncs[fobj] = true
					regions = append(regions, region{fd.Body, fileOf(pass, fd)})
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				regions = append(regions, region{lit.Body, f})
				addCallees(lit.Body, f)
			} else if fobj := staticCallee(pass.Info, g.Call); fobj != nil && !seenFuncs[fobj] {
				if fd, ok := decls[fobj]; ok {
					seenFuncs[fobj] = true
					regions = append(regions, region{fd.Body, fileOf(pass, fd)})
					addCallees(fd.Body, fileOf(pass, fd))
				}
			}
			return true
		})
	}

	for _, r := range regions {
		parents := parentMap(r.file)
		inspectSyncNoLit(r.body, func(n ast.Node) bool {
			send, ok := n.(*ast.SendStmt)
			if !ok {
				return true
			}
			if sendGuarded(parents, send) || pass.bufferedLocalChan(send.Chan) {
				return true
			}
			pass.Reportf(send.Pos(),
				"channel send in a worker without a ctx-done select arm; a cancelled query can wedge this producer")
			return true
		})
	}
	return nil
}

// inspectSyncNoLit walks a worker body but stays within it: nested `go`
// statements are their own workers, and nested function literals run
// under whoever invokes them.
func inspectSyncNoLit(node ast.Node, f func(ast.Node) bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false
		}
		return f(n)
	})
}

// fileOf finds the file containing the declaration.
func fileOf(pass *Pass, fd *ast.FuncDecl) *ast.File {
	for _, f := range pass.Files {
		if f.Pos() <= fd.Pos() && fd.End() <= f.End() {
			return f
		}
	}
	return nil
}

// sendGuarded reports whether the send is a select comm case with an
// escape arm: at least one other case (typically <-ctx.Done()) or a
// default.
func sendGuarded(parents map[ast.Node]ast.Node, send *ast.SendStmt) bool {
	cc, ok := parents[send].(*ast.CommClause)
	if !ok || cc.Comm != send {
		return false
	}
	body, ok := parents[cc].(*ast.BlockStmt)
	if !ok {
		return false
	}
	sel, ok := parents[body].(*ast.SelectStmt)
	if !ok {
		return false
	}
	for _, c := range sel.Body.List {
		if other, ok := c.(*ast.CommClause); ok && other != cc {
			return true // another case or a default gives an escape
		}
	}
	return false
}

// bufferedLocalChan reports whether ch resolves to a variable created in
// the analyzed package by make(chan T, n) with a non-zero constant
// buffer — sends on the sized-to-producers idiom cannot block.
func (p *Pass) bufferedLocalChan(ch ast.Expr) bool {
	id, ok := ast.Unparen(ch).(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	buffered := false
	for _, f := range p.Files {
		if buffered {
			break
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if buffered {
				return false
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, l := range as.Lhs {
				if !isObj(p.Info, l, obj) || i >= len(as.Rhs) {
					continue
				}
				call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
				if !ok || len(call.Args) != 2 {
					continue
				}
				if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fid.Name != "make" {
					continue
				}
				if tv, ok := p.Info.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.String() != "0" {
					buffered = true
				}
			}
			return true
		})
	}
	return buffered
}
