// Package fed exercises spanclose over the federation tracing idioms:
// per-attempt spans that close with EndErr on failure paths, and site
// roots minted by NewRootTrace when joining a distributed trace.
package fed

import (
	"errors"

	"xst/internal/trace"
)

// NewRootTrace mints a span exactly like NewRoot: discarding it loses
// the site's whole tree.
func discardedSiteRoot(tid string) {
	trace.NewRootTrace("query", tid) // want `result of NewRootTrace discarded; the span is never ended`
}

func blankedSiteRoot(tid string) {
	_ = trace.NewRootTrace("query", tid) // want `result of NewRootTrace discarded; the span is never ended`
}

// The leak EndErr exists to prevent: an attempt span ended on success
// but left open when the dial fails.
func attemptLeak(parent *trace.Span, dial func() error) error {
	asp := parent.Start("remote[s0]")
	if err := dial(); err != nil {
		return err // want `return leaves span asp open`
	}
	asp.End()
	return nil
}

// good: EndErr closes the failed attempt before the error return, and
// the success path ends with a plain End.
func attemptEndErr(parent *trace.Span, dial func() error) error {
	asp := parent.Start("remote[s0]")
	if err := dial(); err != nil {
		asp.EndErr(err)
		return err
	}
	asp.End()
	return nil
}

// good: a site root ended by a deferred EndErr covers every return —
// the server's fragment-handling shape.
func siteFragment(tid string, run func() error) (err error) {
	root := trace.NewRootTrace("query", tid)
	defer func() { root.EndErr(err) }()
	if err = run(); err != nil {
		return err
	}
	return nil
}

// bad even with counters recorded: EndErr on no path at all.
func attemptNeverEnded(parent *trace.Span, n int) {
	asp := parent.Start("remote[s1]") // want `span asp is started but never ended`
	asp.AddRows(n)
	if n == 0 {
		asp.SetNote("empty fragment")
	}
}

// good: the attempt span escaping into the operator struct hands
// ownership to the operator's Close path.
type remoteOp struct {
	asp *trace.Span
}

func (r *remoteOp) startAttempt(parent *trace.Span) {
	asp := parent.Start("remote[s2]")
	r.asp = asp
}

func (r *remoteOp) endAttempt(err error) {
	if r.asp == nil {
		return
	}
	r.asp.EndErr(err)
	r.asp = nil
}

// errSentinel keeps the errors import honest.
var errSentinel = errors.New("site down")
