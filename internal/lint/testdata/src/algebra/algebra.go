// Package algebra exercises ctxloop: its path suffix puts it in the
// analyzer's scope, so member loops here must poll cancellation and
// non-Ctx wrappers must be pure delegations.
package algebra

import (
	"context"

	"xst/internal/core"
)

// FilterCtx loops over members without ever consulting ctx.
func FilterCtx(ctx context.Context, s *core.Set) (*core.Set, error) {
	b := core.NewBuilder(s.Len())
	for _, m := range s.Members() { // want `loop over set members in a context-carrying function has no cancellation check`
		b.AddMember(m)
	}
	return b.Set(), ctx.Err()
}

// CollectCtx polls with the sanctioned batched pattern.
func CollectCtx(ctx context.Context, s *core.Set) (*core.Set, error) {
	b := core.NewBuilder(s.Len())
	steps := 0
	for _, m := range s.Members() {
		if steps++; steps%256 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		b.AddMember(m)
	}
	return b.Set(), nil
}

// SumCtx delegates cancellation to a ctx-taking callee, which counts.
func SumCtx(ctx context.Context, s *core.Set) error {
	for _, m := range s.Members() {
		if err := stepCtx(ctx, m); err != nil {
			return err
		}
	}
	return nil
}

func stepCtx(ctx context.Context, _ core.Member) error { return ctx.Err() }

// EachCtx is exempt inside the function literal: callbacks run under
// their caller's polling regime.
func EachCtx(ctx context.Context, s *core.Set) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	walk := func(ms []core.Member) {
		for range ms {
		}
	}
	walk(s.Members())
	return nil
}

// Collect is the sanctioned two-statement wrapper shape.
func Collect(s *core.Set) *core.Set {
	out, _ := CollectCtx(context.Background(), s)
	return out
}

// Sum is the sanctioned single-statement wrapper shape.
func Sum(s *core.Set) error {
	return SumCtx(context.Background(), s)
}

// Filter does real work before delegating: a deadline can never reach it.
func Filter(s *core.Set) *core.Set { // want `exported wrapper Filter must only delegate to FilterCtx`
	if s.IsEmpty() {
		return s
	}
	out, _ := FilterCtx(context.Background(), s) // want `context.Background\(\) outside a pure delegation wrapper`
	return out
}

// eager manufactures a root context instead of accepting the caller's.
func eager(s *core.Set) error {
	ctx := context.Background() // want `context.Background\(\) outside a pure delegation wrapper`
	_, err := FilterCtx(ctx, s)
	return err
}
