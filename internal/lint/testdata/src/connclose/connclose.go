// Package fed exercises connclose: connections are released on every
// path, retry loops close before redialing, and sibling error exits
// tear down symmetrically.
package fed

import (
	"errors"
	"net"
)

// wire wraps a raw conn — the siteConn shape the analyzer recognizes as
// conn-carrying. Its own methods are the connection's plumbing and are
// exempt.
type wire struct {
	c net.Conn
}

func (w *wire) close() { w.c.Close() }

func (w *wire) read(p []byte) (int, error) { return w.c.Read(p) }

func dialWire(addr string) (*wire, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &wire{c: c}, nil
}

var errProto = errors.New("proto")

func flaky() bool { return false }

// badAbandon leaks the wire when the post-dial check fails.
func badAbandon(addr string) (*wire, error) {
	w, err := dialWire(addr) // want `connection w is not released on every return path`
	if err != nil {
		return nil, err
	}
	if flaky() {
		return nil, errProto
	}
	return w, nil
}

// badRetry redials on the backoff path without closing the previous
// attempt's conn.
func badRetry(addr string) (*wire, error) {
	for {
		w, err := dialWire(addr) // want `connection w is reassigned on a loop path without being closed first`
		if err != nil {
			return nil, err
		}
		if flaky() {
			continue
		}
		return w, nil
	}
}

// goodRetry closes the dead conn before looping.
func goodRetry(addr string) (*wire, error) {
	for {
		w, err := dialWire(addr)
		if err != nil {
			return nil, err
		}
		if flaky() {
			w.close()
			continue
		}
		return w, nil
	}
}

// goodAbandon releases on the failing path too.
func goodAbandon(addr string) (*wire, error) {
	w, err := dialWire(addr)
	if err != nil {
		return nil, err
	}
	if flaky() {
		w.close()
		return nil, errProto
	}
	return w, nil
}

// client holds a conn in a receiver field; its error exits must tear
// down alike.
type client struct {
	w *wire
}

// drop is the dropConn-style teardown the summary layer recognizes.
func (c *client) drop() {
	if c.w != nil {
		c.w.close()
		c.w = nil
	}
}

// badRecv tears down on the read error but abandons the live conn (and
// whatever watches it) on the protocol error.
func (c *client) badRecv() (byte, error) {
	buf := make([]byte, 1)
	_, err := c.w.read(buf)
	if err != nil {
		c.drop()
		return 0, err
	}
	if buf[0] == 0 {
		return 0, errProto // want `abandons the receiver's live connection`
	}
	return buf[0], nil
}

// goodRecv tears down on every error exit.
func (c *client) goodRecv() (byte, error) {
	buf := make([]byte, 1)
	_, err := c.w.read(buf)
	if err != nil {
		c.drop()
		return 0, err
	}
	if buf[0] == 0 {
		c.drop()
		return 0, errProto
	}
	return buf[0], nil
}

// goodGuard: error returns before the conn is ever touched need no
// teardown.
func (c *client) goodGuard(n int) (byte, error) {
	if n < 0 {
		return 0, errProto
	}
	buf := make([]byte, 1)
	_, err := c.w.read(buf)
	if err != nil {
		c.drop()
		return 0, err
	}
	return buf[0], nil
}
